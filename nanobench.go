// Package nanobench is a Go reproduction of "nanoBench: A Low-Overhead
// Tool for Running Microbenchmarks on x86 Systems" (Abel & Reineke, ISPASS
// 2020), built on a simulated x86 machine.
//
// The public API is organized around the Session type: a session is
// opened once with functional options, owns its pool of simulated
// machines, its scheduler, and its result cache, and evaluates one or
// many microbenchmark configurations under a context.Context:
//
//	s, _ := nanobench.Open(nanobench.WithCPU("Skylake"), nanobench.WithSeed(42))
//	res, _ := s.Run(ctx, nanobench.Config{
//		Code:     nanobench.MustAsm("mov R14, [R14]"),
//		CodeInit: nanobench.MustAsm("mov [R14], R14"),
//		Events:   nanobench.MustParseEvents("D1.01 MEM_LOAD_RETIRED.L1_HIT"),
//	})
//	fmt.Print(res) // Core cycles: 4.00, ...
//
// Families of configurations are generated declaratively with the Sweep
// builder and evaluated with Session.RunBatch (all results at once) or
// Session.Stream (results in config order as they complete; cancelling
// the context returns promptly with the completed prefix). Results are
// typed — a slice of Metric values carrying the event specification, the
// aggregated value, and the raw per-run samples — and serialize with
// Result.MarshalJSON and Result.AppendCSV.
//
// The facade sits over the internal implementation (see
// docs/ARCHITECTURE.md for the layer map and the invariant each layer
// guarantees):
//
//   - internal/sim/* — the simulated hardware (out-of-order core, caches,
//     replacement policies, PMU, physical memory)
//   - internal/x86 — assembler, encoder, decoder, instruction table
//   - internal/nano — nanoBench itself (code generation, runner)
//   - internal/sched — deterministic parallel batch execution with a
//     content-addressed, optionally LRU-bounded result cache
//   - internal/server — the HTTP/JSON front end behind cmd/nanobenchd
//     (wire contract in docs/API.md)
//   - internal/cachetools, internal/instbench — the paper's case studies
//   - internal/uarch — the ten Table I machine models
//
// Config and Sweep carry JSON codecs (strict field checking, assembly
// or base64 code, events in configuration-file syntax), so the same
// types describe an evaluation locally and over the wire; ParseMode and
// ParseAggregate decode the wire format's enum names.
//
// The v1 free functions (NewMachine, NewRunner, RunBatch,
// RunBatchStream) were removed after their deprecation horizon (see
// CHANGES.md); a Session provides every capability they had, and
// Session.NewRunner/Session.NewMachine cover the tools that drive a
// machine directly.
package nanobench

import (
	"nanobench/internal/nano"
	"nanobench/internal/perfcfg"
	"nanobench/internal/sched"
	"nanobench/internal/sim/machine"
	"nanobench/internal/uarch"
)

// Re-exported core types; see the internal packages for full
// documentation.
type (
	// Machine is a simulated x86 system.
	Machine = machine.Machine
	// Runner evaluates microbenchmarks on a machine.
	Runner = nano.Runner
	// Config describes one microbenchmark evaluation.
	Config = nano.Config
	// Result holds the typed, serializable counter values of one
	// evaluation.
	Result = nano.Result
	// Metric is one measured counter of a Result: name, event
	// specification, aggregated value, and raw per-run samples.
	Metric = nano.Metric
	// EventSpec selects a performance event to measure.
	EventSpec = perfcfg.EventSpec
	// Aggregate selects how per-run measurements are combined (Min,
	// Median, Avg).
	Aggregate = nano.Aggregate
	// CPU is a machine model from the catalog.
	CPU = uarch.CPU
	// Mode selects user- or kernel-space operation.
	Mode = machine.Mode
)

// Privilege modes for WithMode.
const (
	User   = machine.User
	Kernel = machine.Kernel
)

// Aggregate functions for Config.Aggregate.
const (
	Min    = nano.Min
	Median = nano.Median
	Avg    = nano.Avg
)

// The tool's per-config defaults, applied by Config.Canonical (see
// internal/nano); cmd/nanobench inherits them for its flag defaults.
const (
	DefaultUnrollCount   = nano.DefaultUnrollCount
	DefaultLoopCount     = nano.DefaultLoopCount
	DefaultNMeasurements = nano.DefaultNMeasurements
	DefaultWarmUpCount   = nano.DefaultWarmUpCount
)

// NoWarmUp as a Config.WarmUpCount requests explicitly zero warm-up runs
// even under a session-wide WithWarmUp default.
const NoWarmUp = nano.NoWarmUp

// CSVHeader is the header row matching Result.AppendCSV's records.
const CSVHeader = nano.CSVHeader

// Asm assembles Intel-syntax source into microbenchmark machine code.
func Asm(src string) ([]byte, error) { return nano.Asm(src) }

// MustAsm is Asm that panics on error.
func MustAsm(src string) []byte { return nano.MustAsm(src) }

// ParseMode parses a privilege-mode name ("user" or "kernel",
// case-insensitive) — the request-side decoder for the wire format's
// "mode" fields (docs/API.md).
func ParseMode(s string) (Mode, error) { return machine.ParseMode(s) }

// ParseAggregate parses an aggregate-function name ("min", "med",
// "avg") — the request-side decoder for the wire format's "aggregate"
// field (docs/API.md).
func ParseAggregate(s string) (Aggregate, error) { return nano.ParseAggregate(s) }

// ParseEvents parses a performance-counter configuration (Section III-J
// syntax: "EvtSel.Umask Name" lines).
func ParseEvents(text string) ([]EventSpec, error) { return perfcfg.Parse(text) }

// MustParseEvents is ParseEvents that panics on error.
func MustParseEvents(text string) []EventSpec { return perfcfg.MustParse(text) }

// CPUNames returns the catalog of machine models (the ten Intel CPUs of
// Table I plus AMD Zen).
func CPUNames() string { return uarch.NameList() }

// Table1 returns the ten Intel CPU models of the paper's Table I.
func Table1() []CPU { return uarch.Table1() }

// Batch execution (internal/sched): sweeps of many configurations fan out
// across a pool of independently-seeded simulated machines with a
// content-addressed result cache. See the sched package documentation for
// the seeding/determinism contract.
type (
	// BatchJob is one (CPU, mode, Config) evaluation in a heterogeneous
	// batch; build an Executor via NewBatchExecutor to run them.
	BatchJob = sched.Job
	// BatchItem is one delivered result of a streaming batch.
	BatchItem = sched.Item
	// BatchOptions configures a batch executor.
	BatchOptions = sched.Options
	// BatchExecutor runs batches of jobs deterministically.
	BatchExecutor = sched.Executor
	// BatchCache memoizes batch results by content key.
	BatchCache = sched.Cache
	// BatchCacheInfo is a snapshot of a cache's occupancy and lookup
	// counters.
	BatchCacheInfo = sched.CacheInfo
)

// DefaultBatchSeed is the root seed sessions derive per-job machine
// seeds from; it matches the seed the repository's experiments use.
const DefaultBatchSeed = 42

// NewBatchCache builds an empty, unbounded content-addressed result
// cache, shareable between sessions via WithCache.
func NewBatchCache() *BatchCache { return sched.NewCache() }

// NewBatchCacheLRU builds a result cache bounded to maxEntries
// evaluations with least-recently-used eviction (0 or negative:
// unbounded). Long-running services sharing one cache across sessions —
// like cmd/nanobenchd — should always set a bound.
func NewBatchCacheLRU(maxEntries int) *BatchCache { return sched.NewCacheLRU(maxEntries) }

// NewBatchExecutor builds a batch executor for heterogeneous jobs (mixed
// CPU models or privilege modes in one batch); homogeneous work is easier
// to run through a Session.
func NewBatchExecutor(opts BatchOptions) *BatchExecutor { return sched.New(opts) }

// PauseCounting and ResumeCounting are the magic byte sequences that
// pause/resume performance counting when embedded in benchmark code
// (kernel mode only; Section III-I).
var (
	PauseCounting  = nano.PauseCountingBytes
	ResumeCounting = nano.ResumeCountingBytes
)
