package nanobench_test

import (
	"context"
	"fmt"

	"nanobench"
)

// ExampleOpen measures the L1 load-to-use latency with the paper's
// Section III-A pointer-chasing load: the init part stores R14 to the
// address it points to, the main part then chases the pointer, so every
// load depends on the previous one. Simulation is deterministic, so the
// printed latency is stable for a given CPU model and seed.
func ExampleOpen() {
	s, err := nanobench.Open(
		nanobench.WithCPU("Skylake"),
		nanobench.WithSeed(42),
	)
	if err != nil {
		panic(err)
	}
	res, err := s.Run(context.Background(), nanobench.Config{
		Code:        nanobench.MustAsm("mov R14, [R14]"),
		CodeInit:    nanobench.MustAsm("mov [R14], R14"),
		WarmUpCount: 1,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("L1 latency: %.0f cycles\n", res.MustGet("Core cycles"))
	// Output: L1 latency: 4 cycles
}

// ExampleSession_RunSweep evaluates a declaratively generated config
// family — two benchmarks at two unroll counts — in one call. Results
// come back in the sweep's expansion order (code-major, then unroll),
// byte-identical for any parallelism.
func ExampleSession_RunSweep() {
	s, err := nanobench.Open(nanobench.WithWarmUp(1))
	if err != nil {
		panic(err)
	}
	sw := nanobench.NewSweep(nanobench.Config{NMeasurements: 3}).
		Asm("add rax, rbx", "imul rax, rbx").
		Unroll(10, 100)
	results, err := s.RunSweep(context.Background(), sw)
	if err != nil {
		panic(err)
	}
	for i, res := range results {
		fmt.Printf("config %d: %.0f cycles/instr\n", i, res.MustGet("Core cycles"))
	}
	// Output:
	// config 0: 1 cycles/instr
	// config 1: 1 cycles/instr
	// config 2: 3 cycles/instr
	// config 3: 3 cycles/instr
}
