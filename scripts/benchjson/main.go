// benchjson converts `go test -bench` output into a stable JSON artifact
// and compares two such artifacts, failing on performance regressions.
// It is the engine behind `make bench` (emits BENCH_9.json) and
// `make bench-compare` (diffs it against the committed baseline in
// bench/BENCH_BASELINE.json and fails the job on a >10% regression in
// any gated benchmark).
//
// Convert:
//
//	go run ./scripts/benchjson -in bench.txt [-in more.txt ...] -out BENCH_9.json
//
// Multiple -in files (and repeated runs via -count) merge; when the same
// benchmark appears more than once, the fastest run (minimum ns/op) wins,
// which keeps single-shot artifacts comparable across noisy machines.
//
// Compare:
//
//	go run ./scripts/benchjson -baseline bench/BENCH_BASELINE.json -against BENCH_9.json \
//	    [-bench BenchmarkStepThroughput ...] [-metric ns/instr] [-tolerance 0.10]
//
// Every benchmark in the baseline whose name starts with one of the
// (repeatable) -bench prefixes is checked: the run under test must not
// exceed baseline×(1+tolerance) on -metric (falling back to ns/op when
// the metric is absent). Exit status 1 on regression, with a
// human-readable table either way.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Entry is one benchmark's measurement.
type Entry struct {
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds custom b.ReportMetric values by unit ("ns/instr",
	// "simulated-MIPS", ...).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Artifact is the JSON shape of a benchmark run.
type Artifact struct {
	Schema     string           `json:"schema"`
	Benchmarks map[string]Entry `json:"benchmarks"`
}

const schema = "nanobench-bench-v1"

// benchLine matches one result line; the -N GOMAXPROCS suffix is folded
// out of the name so artifacts compare across machines.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

func parseFile(path string, into map[string]Entry) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil {
			continue
		}
		name, rest := m[1], strings.Fields(m[3])
		e := Entry{Metrics: map[string]float64{}}
		for i := 0; i+1 < len(rest); i += 2 {
			v, err := strconv.ParseFloat(rest[i], 64)
			if err != nil {
				continue
			}
			if rest[i+1] == "ns/op" {
				e.NsPerOp = v
			} else {
				e.Metrics[rest[i+1]] = v
			}
		}
		if len(e.Metrics) == 0 {
			e.Metrics = nil
		}
		// Fastest run wins on repeats (-count, multiple inputs).
		if prev, ok := into[name]; !ok || e.NsPerOp < prev.NsPerOp {
			into[name] = e
		}
	}
	return sc.Err()
}

func readArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if a.Schema != schema {
		return nil, fmt.Errorf("%s: schema %q, want %q", path, a.Schema, schema)
	}
	return &a, nil
}

// metricOf picks the comparison value: the named custom metric when the
// entry reports it, ns/op otherwise.
func metricOf(e Entry, metric string) (float64, string) {
	if v, ok := e.Metrics[metric]; ok {
		return v, metric
	}
	return e.NsPerOp, "ns/op"
}

type multiFlag []string

func (m *multiFlag) String() string     { return strings.Join(*m, ",") }
func (m *multiFlag) Set(v string) error { *m = append(*m, v); return nil }

func main() {
	var ins multiFlag
	flag.Var(&ins, "in", "benchmark output file to convert (repeatable)")
	out := flag.String("out", "", "JSON artifact to write")
	baseline := flag.String("baseline", "", "baseline artifact for -against comparison")
	against := flag.String("against", "", "artifact to compare against the baseline")
	var benchPrefixes multiFlag
	flag.Var(&benchPrefixes, "bench", "benchmark name prefix the comparison gates on (repeatable; default BenchmarkStepThroughput)")
	metric := flag.String("metric", "ns/instr", "custom metric to compare (ns/op when absent)")
	tolerance := flag.Float64("tolerance", 0.10, "allowed relative regression before failing")
	flag.Parse()

	switch {
	case len(ins) > 0 && *out != "":
		entries := map[string]Entry{}
		for _, in := range ins {
			if err := parseFile(in, entries); err != nil {
				fatal(err)
			}
		}
		if len(entries) == 0 {
			fatal(fmt.Errorf("no benchmark lines found in %s", ins.String()))
		}
		data, err := json.MarshalIndent(Artifact{Schema: schema, Benchmarks: entries}, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d benchmarks to %s\n", len(entries), *out)

	case *baseline != "" && *against != "":
		base, err := readArtifact(*baseline)
		if err != nil {
			fatal(err)
		}
		cur, err := readArtifact(*against)
		if err != nil {
			fatal(err)
		}
		if len(benchPrefixes) == 0 {
			benchPrefixes = multiFlag{"BenchmarkStepThroughput"}
		}
		names := make([]string, 0, len(base.Benchmarks))
		for name := range base.Benchmarks {
			for _, p := range benchPrefixes {
				if strings.HasPrefix(name, p) {
					names = append(names, name)
					break
				}
			}
		}
		sort.Strings(names)
		if len(names) == 0 {
			fatal(fmt.Errorf("%s: no benchmarks match prefixes %q", *baseline, benchPrefixes.String()))
		}
		failed := false
		for _, name := range names {
			be := base.Benchmarks[name]
			ce, ok := cur.Benchmarks[name]
			if !ok {
				fmt.Printf("FAIL %-40s missing from %s\n", name, *against)
				failed = true
				continue
			}
			bv, unit := metricOf(be, *metric)
			cv, curUnit := metricOf(ce, *metric)
			if unit != curUnit {
				fmt.Printf("FAIL %-40s unit mismatch: baseline reports %s, current reports %s\n",
					name, unit, curUnit)
				failed = true
				continue
			}
			change := (cv - bv) / bv
			status := "ok  "
			if cv > bv*(1+*tolerance) {
				status = "FAIL"
				failed = true
			}
			fmt.Printf("%s %-40s %s: %.2f -> %.2f (%+.1f%%, limit +%.0f%%)\n",
				status, name, unit, bv, cv, 100*change, 100**tolerance)
		}
		if failed {
			fmt.Println("benchmark regression gate failed")
			os.Exit(1)
		}
		fmt.Println("benchmark regression gate passed")

	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}
