#!/usr/bin/env bash
# Smoke-test a live nanobenchd against the documented wire examples:
# build the binary, start it with the docs/API.md golden configuration,
# curl /v1/healthz and a small /v1/run, submit a sweep through the async
# jobs API (submit → long-poll → result), scrape /metrics, and diff each
# deterministic response against the corresponding example in
# docs/API.md. (Job records and the metrics body carry wall-clock
# timestamps, so those are checked structurally, not byte-for-byte.)
# CI runs this (make smoke) so the server a user starts and the document
# they read can never drift apart — the same contract TestAPIDocGolden
# enforces in-process, checked once more over a real socket and a real
# process lifecycle.
set -eu

cd "$(dirname "$0")/.."
PORT="${SMOKE_PORT:-18080}"
ADDR="127.0.0.1:$PORT"
BIN="$(mktemp -d)/nanobenchd"

# extract NAME prints the fenced block following "<!-- golden:NAME -->".
extract() {
	awk -v name="$1" '
		$0 == "<!-- golden:" name " -->" { grab = 1; next }
		grab && /^```/ { if (infence) exit; infence = 1; next }
		grab && infence { print }
	' docs/API.md
}

echo "== build"
go build -o "$BIN" ./cmd/nanobenchd

echo "== start on $ADDR (docs/API.md golden configuration)"
"$BIN" -addr "$ADDR" -seed 42 -parallelism 4 -warm_up_count 0 -cache_entries 1024 &
SRV=$!
trap 'kill "$SRV" 2>/dev/null || true' EXIT INT TERM

for i in $(seq 1 50); do
	if curl -sf "http://$ADDR/v1/healthz" >/dev/null 2>&1; then
		break
	fi
	[ "$i" -eq 50 ] && { echo "server never became healthy" >&2; exit 1; }
	sleep 0.1
done

echo "== GET /v1/healthz matches the documented example"
curl -s "http://$ADDR/v1/healthz" | diff <(extract healthz-response) - \
	|| { echo "healthz drifted from docs/API.md" >&2; exit 1; }

echo "== POST /v1/run matches the documented example"
extract run-request | curl -s -X POST --data-binary @- "http://$ADDR/v1/run" \
	| diff <(extract run-response) - \
	|| { echo "/v1/run drifted from docs/API.md" >&2; exit 1; }

echo "== POST /v1/jobs accepts the documented submission"
SUBMIT="$(extract jobs-submit-request | curl -s -X POST --data-binary @- "http://$ADDR/v1/jobs")"
JOB="$(printf '%s' "$SUBMIT" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p' | head -n 1)"
[ -n "$JOB" ] || { echo "submit returned no job id: $SUBMIT" >&2; exit 1; }

echo "== GET /v1/jobs/$JOB/result?wait=1 matches the documented sync sweep"
curl -s "http://$ADDR/v1/jobs/$JOB/result?wait=1" | diff <(extract sweep-response) - \
	|| { echo "async job result drifted from the documented /v1/sweep response" >&2; exit 1; }

echo "== GET /v1/jobs/$JOB reports the job done"
curl -s "http://$ADDR/v1/jobs/$JOB" | grep -q '"state": "done"' \
	|| { echo "job record did not report done" >&2; exit 1; }

echo "== GET /metrics exposes the documented families"
METRICS="$(curl -s "http://$ADDR/metrics")"
for family in \
	nanobenchd_jobs_submitted_total \
	nanobenchd_jobs_finished_total \
	nanobenchd_job_queue_seconds_bucket \
	nanobenchd_job_run_seconds_bucket \
	nanobenchd_cache_hits_total \
	nanobenchd_requests_total; do
	printf '%s' "$METRICS" | grep -q "$family" \
		|| { echo "/metrics is missing $family" >&2; exit 1; }
done

echo "== graceful shutdown"
kill -TERM "$SRV"
wait "$SRV"
trap - EXIT INT TERM
echo "smoke OK"
