package client

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"nanobench"
)

// JobStatus is a job record as served by the /v1/jobs endpoints.
type JobStatus struct {
	ID          string      `json:"id"`
	Kind        string      `json:"kind"`
	State       string      `json:"state"`
	SubmittedNs int64       `json:"submitted_ns"`
	StartedNs   int64       `json:"started_ns,omitempty"`
	FinishedNs  int64       `json:"finished_ns,omitempty"`
	Progress    JobProgress `json:"progress"`
	Err         *ItemError  `json:"error,omitempty"`
}

// Terminal reports whether the status is final (done, failed, or
// canceled).
func (s JobStatus) Terminal() bool {
	return s.State == "done" || s.State == "failed" || s.State == "canceled"
}

// JobProgress counts a job's per-evaluation completion.
type JobProgress struct {
	Total     int `json:"total"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	CacheHits int `json:"cache_hits"`
}

// A Job is a handle to one asynchronous submission. Obtain it from the
// Submit methods; methods are safe for concurrent use.
type Job struct {
	c *Client
	// ID is the server-assigned job id ("j000001").
	ID string
	// Submitted is the job record the 202 answered with.
	Submitted JobStatus
}

// jobSubmitRequest mirrors the server's POST /v1/jobs body: exactly one
// of the synchronous request bodies, keyed by endpoint name.
type jobSubmitRequest struct {
	Run      *RunRequest   `json:"run,omitempty"`
	RunBatch *batchRequest `json:"runbatch,omitempty"`
	Sweep    *sweepRequest `json:"sweep,omitempty"`
}

// SubmitRun submits a single evaluation as an asynchronous job.
func (c *Client) SubmitRun(ctx context.Context, cpu, mode string, cfg nanobench.Config) (*Job, error) {
	return c.submit(ctx, jobSubmitRequest{Run: &RunRequest{CPU: cpu, Mode: mode, Config: cfg}})
}

// SubmitBatch submits a heterogeneous batch as an asynchronous job.
func (c *Client) SubmitBatch(ctx context.Context, jobs []RunRequest) (*Job, error) {
	return c.submit(ctx, jobSubmitRequest{RunBatch: &batchRequest{Jobs: jobs}})
}

// SubmitSweep submits a sweep as an asynchronous job; the server
// shards its evaluation and merges the results back into expansion
// order, byte-identical to the synchronous response.
func (c *Client) SubmitSweep(ctx context.Context, cpu, mode string, sw *nanobench.Sweep) (*Job, error) {
	return c.submit(ctx, jobSubmitRequest{Sweep: &sweepRequest{CPU: cpu, Mode: mode, Sweep: sw}})
}

func (c *Client) submit(ctx context.Context, req jobSubmitRequest) (*Job, error) {
	var snap JobStatus
	if err := c.postJSON(ctx, "/v1/jobs", req, &snap); err != nil {
		return nil, err
	}
	return &Job{c: c, ID: snap.ID, Submitted: snap}, nil
}

// Poll fetches the job's current record (GET /v1/jobs/{id}).
func (j *Job) Poll(ctx context.Context) (JobStatus, error) {
	var snap JobStatus
	if err := j.c.getJSON(ctx, "/v1/jobs/"+j.ID, &snap); err != nil {
		return JobStatus{}, err
	}
	return snap, nil
}

// Result fetches a finished job's response body — exactly the bytes
// the synchronous endpoint would have returned. An unfinished job
// yields an *APIError with code "unavailable"; decode the bytes with
// the response type matching the job's kind (RunResponse,
// BatchResponse, SweepResponse).
func (j *Job) Result(ctx context.Context) ([]byte, error) {
	return j.result(ctx, "/v1/jobs/"+j.ID+"/result")
}

// Wait long-polls until the job is terminal (GET .../result?wait=1)
// and returns the result body. Cancelling ctx abandons the wait but
// leaves the job running.
func (j *Job) Wait(ctx context.Context) ([]byte, error) {
	return j.result(ctx, "/v1/jobs/"+j.ID+"/result?wait=1")
}

// WaitSweep is Wait plus decoding for sweep jobs.
func (j *Job) WaitSweep(ctx context.Context) (*SweepResponse, error) {
	data, err := j.Wait(ctx)
	if err != nil {
		return nil, err
	}
	var out SweepResponse
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("client: decoding sweep result: %w", err)
	}
	return &out, nil
}

// WaitRun is Wait plus decoding for run jobs.
func (j *Job) WaitRun(ctx context.Context) (*RunResponse, error) {
	data, err := j.Wait(ctx)
	if err != nil {
		return nil, err
	}
	var out RunResponse
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("client: decoding run result: %w", err)
	}
	return &out, nil
}

// WaitBatch is Wait plus decoding for runbatch jobs.
func (j *Job) WaitBatch(ctx context.Context) (*BatchResponse, error) {
	data, err := j.Wait(ctx)
	if err != nil {
		return nil, err
	}
	var out BatchResponse
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("client: decoding batch result: %w", err)
	}
	return &out, nil
}

func (j *Job) result(ctx context.Context, path string) ([]byte, error) {
	resp, err := j.c.do(ctx, http.MethodGet, path, nil)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// Cancel requests cancellation (DELETE /v1/jobs/{id}): a queued job is
// parked canceled, a running one winds down between benchmark runs.
// Returns the post-cancel record; cancelling is idempotent.
func (j *Job) Cancel(ctx context.Context) (JobStatus, error) {
	resp, err := j.c.do(ctx, http.MethodDelete, "/v1/jobs/"+j.ID, nil)
	if err != nil {
		return JobStatus{}, err
	}
	defer resp.Body.Close()
	var snap JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return JobStatus{}, err
	}
	return snap, nil
}

// Events fetches the job's transition log (one record per state
// transition).
func (j *Job) Events(ctx context.Context) ([]JobStatus, error) {
	var out struct {
		Events []JobStatus `json:"events"`
	}
	if err := j.c.getJSON(ctx, "/v1/jobs/"+j.ID+"/events", &out); err != nil {
		return nil, err
	}
	return out.Events, nil
}

// Stream follows the job live (GET .../events?stream=1): fn receives
// the transition log so far, then every state or progress change until
// the job is terminal. Delivery is at-least-once. A non-nil error from
// fn stops the stream and is returned; cancelling ctx stops the stream
// without cancelling the job.
func (j *Job) Stream(ctx context.Context, fn func(JobStatus) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	resp, err := j.c.do(ctx, http.MethodGet, "/v1/jobs/"+j.ID+"/events?stream=1", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		var snap JobStatus
		if err := json.Unmarshal(sc.Bytes(), &snap); err != nil {
			return fmt.Errorf("client: event line: %w", err)
		}
		if err := fn(snap); err != nil {
			return err
		}
	}
	return sc.Err()
}

// getJSON issues a GET and decodes a successful response into out.
func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	resp, err := c.do(ctx, http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}
