// Package client is the typed Go client for nanobenchd's wire API
// (docs/API.md): the synchronous evaluation endpoints, and handles for
// the asynchronous /v1/jobs surface — submit, poll, wait, stream
// progress, cancel. Every call takes a context.Context; cancellation
// aborts the HTTP request, and cancelling a Wait or Stream does not
// cancel the job itself (use Job.Cancel for that).
//
//	c := client.New("http://localhost:8080")
//	job, err := c.SubmitSweep(ctx, "", "", sweep)
//	...
//	body, err := job.Wait(ctx) // long-polls; bytes == the sync response
//
// The error of every failed call is an *APIError carrying the server's
// typed envelope (code, message, HTTP status, Retry-After hint), so
// callers can branch on client.IsCode(err, "queue_full") instead of
// string-matching.
package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"nanobench"
)

// Client talks to one nanobenchd server. The zero value is not usable;
// create it with New. Safe for concurrent use.
type Client struct {
	baseURL string
	httpc   *http.Client
}

// New builds a client for the server at baseURL (e.g.
// "http://localhost:8080"). The optional httpc overrides the transport;
// by default http.DefaultClient is used.
func New(baseURL string, httpc ...*http.Client) *Client {
	c := &Client{baseURL: baseURL, httpc: http.DefaultClient}
	if len(httpc) > 0 && httpc[0] != nil {
		c.httpc = httpc[0]
	}
	return c
}

// APIError is the server's typed error envelope, plus the transport
// facts a retry policy needs.
type APIError struct {
	// StatusCode is the HTTP status the envelope arrived under.
	StatusCode int
	// Code is the stable machine-readable code ("queue_full", ...).
	Code string
	// Message is the human-readable description.
	Message string
	// RetryAfter is the server's Retry-After hint in seconds (0: none).
	RetryAfter int
}

func (e *APIError) Error() string {
	return fmt.Sprintf("nanobenchd: %s (%d): %s", e.Code, e.StatusCode, e.Message)
}

// IsCode reports whether err is an *APIError with the given code.
func IsCode(err error, code string) bool {
	var ae *APIError
	return errors.As(err, &ae) && ae.Code == code
}

// RunRequest is one evaluation addressed to a (cpu, mode) session;
// empty strings select the server defaults ("Skylake", "kernel").
type RunRequest struct {
	CPU    string           `json:"cpu,omitempty"`
	Mode   string           `json:"mode,omitempty"`
	Config nanobench.Config `json:"config"`
}

// RunResponse is the body of a successful run (and of a run job's
// result).
type RunResponse struct {
	CPU    string            `json:"cpu"`
	Mode   string            `json:"mode"`
	Result *nanobench.Result `json:"result"`
}

// Item is one evaluation's outcome inside a batch or sweep response.
// Exactly one of Result and Err is set.
type Item struct {
	Index  int               `json:"index"`
	Result *nanobench.Result `json:"result,omitempty"`
	Err    *ItemError        `json:"error,omitempty"`
}

// ItemError is a per-item failure's payload.
type ItemError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// BatchResponse is the body of a successful runbatch.
type BatchResponse struct {
	Results []Item `json:"results"`
}

// SweepResponse is the body of a successful non-streamed sweep.
type SweepResponse struct {
	Count   int    `json:"count"`
	Results []Item `json:"results"`
}

// sweepRequest mirrors the server's sweep request body.
type sweepRequest struct {
	CPU   string           `json:"cpu,omitempty"`
	Mode  string           `json:"mode,omitempty"`
	Sweep *nanobench.Sweep `json:"sweep"`
}

// batchRequest mirrors the server's runbatch request body.
type batchRequest struct {
	Jobs []RunRequest `json:"jobs"`
}

// Run evaluates one config synchronously (POST /v1/run).
func (c *Client) Run(ctx context.Context, cpu, mode string, cfg nanobench.Config) (*RunResponse, error) {
	var out RunResponse
	if err := c.postJSON(ctx, "/v1/run", RunRequest{CPU: cpu, Mode: mode, Config: cfg}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// RunBatch evaluates a heterogeneous batch synchronously
// (POST /v1/runbatch). Results come back in request order with
// per-item errors.
func (c *Client) RunBatch(ctx context.Context, jobs []RunRequest) (*BatchResponse, error) {
	var out BatchResponse
	if err := c.postJSON(ctx, "/v1/runbatch", batchRequest{Jobs: jobs}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Sweep expands and evaluates a sweep synchronously (POST /v1/sweep).
func (c *Client) Sweep(ctx context.Context, cpu, mode string, sw *nanobench.Sweep) (*SweepResponse, error) {
	var out SweepResponse
	if err := c.postJSON(ctx, "/v1/sweep", sweepRequest{CPU: cpu, Mode: mode, Sweep: sw}, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// StreamSweep evaluates a sweep with ?stream=1 and calls fn for every
// NDJSON line, in expansion order, as the results land. A non-nil
// error from fn stops the stream (cancelling the sweep server-side)
// and is returned.
func (c *Client) StreamSweep(ctx context.Context, cpu, mode string, sw *nanobench.Sweep, fn func(Item) error) error {
	ctx, cancel := context.WithCancel(ctx)
	defer cancel() // closing the body mid-stream cancels server-side
	resp, err := c.do(ctx, http.MethodPost, "/v1/sweep?stream=1", sweepRequest{CPU: cpu, Mode: mode, Sweep: sw})
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 16<<20)
	for sc.Scan() {
		var it Item
		if err := json.Unmarshal(sc.Bytes(), &it); err != nil {
			return fmt.Errorf("client: stream line: %w", err)
		}
		if err := fn(it); err != nil {
			return err
		}
	}
	return sc.Err()
}

// postJSON posts body and decodes a successful response into out.
func (c *Client) postJSON(ctx context.Context, path string, body, out any) error {
	resp, err := c.do(ctx, http.MethodPost, path, body)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(out)
}

// do issues the request and turns error envelopes into *APIError. On
// success the caller owns resp.Body.
func (c *Client) do(ctx context.Context, method, path string, body any) (*http.Response, error) {
	var rd io.Reader
	if body != nil {
		data, err := json.Marshal(body)
		if err != nil {
			return nil, fmt.Errorf("client: encoding request: %w", err)
		}
		rd = bytes.NewReader(data)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.baseURL+path, rd)
	if err != nil {
		return nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpc.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode < 200 || resp.StatusCode > 299 {
		defer resp.Body.Close()
		return nil, decodeError(resp)
	}
	return resp, nil
}

// decodeError turns a failed response into an *APIError.
func decodeError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	ae := &APIError{StatusCode: resp.StatusCode}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		ae.RetryAfter, _ = strconv.Atoi(ra)
	}
	var env struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if json.Unmarshal(data, &env) == nil && env.Error.Code != "" {
		ae.Code, ae.Message = env.Error.Code, env.Error.Message
		return ae
	}
	ae.Code = "internal"
	ae.Message = string(data)
	return ae
}
