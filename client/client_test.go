package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"nanobench"
	"nanobench/internal/server"
)

func newClient(t *testing.T, opts server.Options) *Client {
	t.Helper()
	srv, err := server.New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx)
	})
	return New(ts.URL)
}

func TestClientRunAndBatch(t *testing.T) {
	c := newClient(t, server.Options{Seed: 42})
	ctx := context.Background()

	cfg := nanobench.Config{Code: nanobench.MustAsm("add rax, rbx"), NMeasurements: 3}
	run, err := c.Run(ctx, "", "", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if run.CPU != "Skylake" || run.Mode != "kernel" || run.Result == nil {
		t.Fatalf("run = %+v", run)
	}
	if _, ok := run.Result.Get("Core cycles"); !ok {
		t.Error("run result has no Core cycles metric")
	}

	batch, err := c.RunBatch(ctx, []RunRequest{
		{Config: cfg},
		{CPU: "Haswell", Mode: "user", Config: cfg},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 2 || batch.Results[0].Err != nil || batch.Results[1].Err != nil {
		t.Fatalf("batch = %+v", batch)
	}
}

func TestClientErrorEnvelope(t *testing.T) {
	c := newClient(t, server.Options{})
	_, err := c.Run(context.Background(), "Pentium", "", nanobench.Config{Code: nanobench.MustAsm("nop")})
	if err == nil {
		t.Fatal("unknown CPU accepted")
	}
	var ae *APIError
	if !errors.As(err, &ae) {
		t.Fatalf("error is %T, want *APIError: %v", err, err)
	}
	if ae.StatusCode != 422 || ae.Code != "invalid_argument" || ae.Message == "" {
		t.Errorf("envelope = %+v", ae)
	}
	if !IsCode(err, "invalid_argument") || IsCode(err, "queue_full") {
		t.Error("IsCode misclassifies the envelope")
	}
}

func TestClientSweepSyncAsyncAndStream(t *testing.T) {
	c := newClient(t, server.Options{Seed: 42})
	ctx := context.Background()
	sw := nanobench.NewSweep(nanobench.Config{NMeasurements: 3}).
		Asm("add rax, rbx", "imul rax, rbx").
		Unroll(10, 100)

	sync, err := c.Sweep(ctx, "", "", sw)
	if err != nil {
		t.Fatal(err)
	}
	if sync.Count != 4 || len(sync.Results) != 4 {
		t.Fatalf("sync sweep = count %d, %d results", sync.Count, len(sync.Results))
	}

	var streamed []Item
	if err := c.StreamSweep(ctx, "", "", sw, func(it Item) error {
		streamed = append(streamed, it)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(streamed) != 4 {
		t.Fatalf("stream delivered %d items", len(streamed))
	}

	// The async job: raw Wait bytes decode to the same response the sync
	// call produced.
	job, err := c.SubmitSweep(ctx, "", "", sw)
	if err != nil {
		t.Fatal(err)
	}
	if job.ID == "" || job.Submitted.Kind != "sweep" {
		t.Fatalf("job handle = %+v", job)
	}
	raw, err := job.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var fromJob SweepResponse
	if err := json.Unmarshal(raw, &fromJob); err != nil {
		t.Fatal(err)
	}
	syncJSON, _ := json.Marshal(sync)
	jobJSON, _ := json.Marshal(&fromJob)
	if string(syncJSON) != string(jobJSON) {
		t.Errorf("job result decodes differently from the sync sweep:\njob:  %s\nsync: %s", jobJSON, syncJSON)
	}

	// Typed accessors agree with the raw bytes.
	decoded, err := job.WaitSweep(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(decoded, &fromJob) {
		t.Error("WaitSweep disagrees with Wait + Unmarshal")
	}

	// The job is terminal: Poll reports done with full progress, the
	// event log replays the transitions, and Stream ends on a terminal
	// record.
	status, err := job.Poll(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if status.State != "done" || !status.Terminal() || status.Progress.Completed != 4 {
		t.Errorf("status = %+v", status)
	}
	events, err := job.Events(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 3 || events[0].State != "queued" || events[2].State != "done" {
		t.Errorf("events = %+v", events)
	}
	var last JobStatus
	if err := job.Stream(ctx, func(s JobStatus) error { last = s; return nil }); err != nil {
		t.Fatal(err)
	}
	if !last.Terminal() {
		t.Errorf("stream ended on non-terminal record %+v", last)
	}
}

func TestClientCancel(t *testing.T) {
	c := newClient(t, server.Options{Seed: 42, Parallelism: 1, JobWorkers: 1})
	ctx := context.Background()

	// A slow sweep on one worker; cancel it while it runs.
	slow := nanobench.NewSweep(nanobench.Config{Code: nanobench.MustAsm("add rax, rbx")}).
		Loop(1500, 1502, 1504, 1506, 1508, 1510, 1512, 1514)
	job, err := c.SubmitSweep(ctx, "", "", slow)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		s, err := job.Poll(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if s.State == "running" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never started: %+v", s)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, err := job.Cancel(ctx); err != nil {
		t.Fatal(err)
	}
	for {
		s, err := job.Poll(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if s.Terminal() {
			if s.State != "canceled" {
				t.Fatalf("post-cancel state %q", s.State)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never wound down after cancel")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// A canceled job's result is the typed 409 envelope.
	if _, err := job.Result(ctx); !IsCode(err, "canceled") {
		t.Errorf("canceled result error = %v, want code canceled", err)
	}
}
