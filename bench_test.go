// The external test package breaks the would-be cycle: the experiments
// package itself drives the nanobench facade.
package nanobench_test

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (DESIGN.md experiment index E1–E11). Each benchmark runs the
// corresponding experiment and reports its key quantities as custom
// metrics, so `go test -bench=. -benchmem` reproduces the full evaluation:
//
//	BenchmarkExampleL1Latency        — §III-A example (E1)
//	BenchmarkNanoBenchKernelRuntime  — §III-K kernel timing (E2)
//	BenchmarkNanoBenchUserRuntime    — §III-K user timing (E2)
//	BenchmarkTableIPolicies          — Table I (E3, quick subset)
//	BenchmarkFigure1AgeGraph         — Figure 1 (E4, reduced resolution)
//	BenchmarkSerializationCPUIDvsLFENCE — §IV-A1 (E5)
//	BenchmarkInstructionTable        — §V sweep (E6, subset)
//	BenchmarkLoopVsUnroll            — §III-F (E7)
//	BenchmarkNoMemMode               — §III-I (E8)
//	BenchmarkKernelVsUserAccuracy    — §III-D (E9)
//	BenchmarkContiguousAlloc         — §IV-D (E10)
//	BenchmarkSetDueling              — §VI-C3 (E11, quick subset)
//	BenchmarkPolicyCampaign          — §VI campaign job (sharded inference)

import (
	"context"
	"io"
	"testing"

	"nanobench/internal/experiments"
)

func BenchmarkExampleL1Latency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.ExampleL1Latency(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.MustGet("Core cycles"), "L1-latency-cycles")
			b.ReportMetric(res.MustGet("Reference cycles"), "ref-cycles")
		}
	}
}

func BenchmarkNanoBenchKernelRuntime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		kernel, _, err := experiments.NanoBenchTiming(io.Discard, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(kernel.Seconds()*1000, "kernel-ms")
		}
	}
}

func BenchmarkNanoBenchUserRuntime(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, user, err := experiments.NanoBenchTiming(io.Discard, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(user.Seconds()*1000, "user-ms")
		}
	}
}

func BenchmarkTableIPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table1(io.Discard, true)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			ok := 0
			for _, r := range rows {
				if r.L1OK && r.L2OK && r.L3OK {
					ok++
				}
			}
			b.ReportMetric(float64(ok), "CPUs-correct")
			b.ReportMetric(float64(len(rows)), "CPUs-tested")
		}
	}
}

func BenchmarkFigure1AgeGraph(b *testing.B) {
	for i := 0; i < b.N; i++ {
		g, err := experiments.Figure1(io.Discard, true)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			// The signature of the probabilistic policy: B0's survival
			// fraction right after one batch of fresh blocks (paper:
			// ~1/16 of copies survive).
			if frac, ok := g.SurvivalAt(0, 16); ok {
				b.ReportMetric(frac, "B0-survival-frac")
			}
		}
	}
}

func BenchmarkSerializationCPUIDvsLFENCE(b *testing.B) {
	for i := 0; i < b.N; i++ {
		cpuid, lfence, err := experiments.Serialization(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(cpuid, "CPUID-spread-cycles")
			b.ReportMetric(lfence, "LFENCE-spread-cycles")
		}
	}
}

func BenchmarkInstructionTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		total, latOK, portOK, err := experiments.InstructionTable(io.Discard, true)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(total), "variants")
			b.ReportMetric(float64(latOK), "latencies-correct")
			b.ReportMetric(float64(portOK), "ports-correct")
		}
	}
}

func BenchmarkLoopVsUnroll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		out, err := experiments.LoopVsUnroll(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(out["unroll=100, loop=0"], "unroll-cycles-per-instr")
			b.ReportMetric(out["unroll=1, loop=100"], "loop-cycles-per-instr")
		}
	}
}

func BenchmarkNoMemMode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		memHits, noMemHits, err := experiments.NoMemAblation(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(memHits, "mem-mode-hits")
			b.ReportMetric(noMemHits, "nomem-mode-hits")
		}
	}
}

func BenchmarkKernelVsUserAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		kernel, user, err := experiments.KernelVsUserAccuracy(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(kernel, "kernel-spread-cycles")
			b.ReportMetric(user, "user-spread-cycles")
		}
	}
}

func BenchmarkContiguousAlloc(b *testing.B) {
	for i := 0; i < b.N; i++ {
		freshOK, fragFail, rebootOK, err := experiments.ContiguousAlloc(io.Discard)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(boolMetric(freshOK), "fresh-ok")
			b.ReportMetric(boolMetric(fragFail), "frag-fails")
			b.ReportMetric(boolMetric(rebootOK), "reboot-recovers")
		}
	}
}

func BenchmarkSetDueling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := experiments.SetDueling(io.Discard, true)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			correct, total := 0, 0
			for _, r := range results {
				correct += r.Correct
				total += r.Total
			}
			b.ReportMetric(float64(correct), "sets-correct")
			b.ReportMetric(float64(total), "sets-tested")
		}
	}
}

// BenchmarkPolicyCampaign runs the campaign job's workload — sharded
// policy inference over two models at every cache level, plus the
// adaptive model's stochastic-leader age graph — end to end, the same
// code path the server's "campaign" job kind executes.
func BenchmarkPolicyCampaign(b *testing.B) {
	opt := experiments.CampaignOptions{
		CPUs:        []string{"IvyBridge", "Skylake"},
		AgeGraphs:   true,
		AgeMaxFresh: 32, AgeStep: 16, AgeTrials: 4,
	}
	for i := 0; i < b.N; i++ {
		res, err := experiments.PolicyCampaign(context.Background(), opt, nil)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			ok := 0
			for _, c := range res.Cells {
				if c.OK {
					ok++
				}
			}
			b.ReportMetric(float64(ok), "cells-correct")
			b.ReportMetric(float64(len(res.Cells)), "cells-tested")
			b.ReportMetric(float64(len(res.AgeRows)), "age-rows")
		}
	}
}

func boolMetric(v bool) float64 {
	if v {
		return 1
	}
	return 0
}
