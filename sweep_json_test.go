package nanobench

import (
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"
)

func TestSweepJSONRoundTrip(t *testing.T) {
	sw := NewSweep(Config{WarmUpCount: 1, Aggregate: Avg}).
		Asm("add rax, rbx", "imul rax, rbx").
		Unroll(10, 100).
		Loop(0, 5).
		Events(MustParseEvents("D1.01 MEM_LOAD_RETIRED.L1_HIT"), nil)

	data, err := json.Marshal(sw)
	if err != nil {
		t.Fatal(err)
	}
	var back Sweep
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal(%s): %v", data, err)
	}

	want, err := sw.Configs()
	if err != nil {
		t.Fatal(err)
	}
	got, err := back.Configs()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("config families differ after round trip\nwant: %+v\ngot:  %+v", want, got)
	}
	if back.Len() != sw.Len() {
		t.Errorf("Len: got %d, want %d", back.Len(), sw.Len())
	}
}

func TestSweepJSONDecodesAsm(t *testing.T) {
	var sw Sweep
	in := `{"base":{"warm_up_count":1},"asm":["add rax, rbx"],"unrolls":[10,100]}`
	if err := json.Unmarshal([]byte(in), &sw); err != nil {
		t.Fatal(err)
	}
	cfgs, err := sw.Configs()
	if err != nil {
		t.Fatal(err)
	}
	if len(cfgs) != 2 {
		t.Fatalf("got %d configs, want 2", len(cfgs))
	}
	wantCode := MustAsm("add rax, rbx")
	for i, cfg := range cfgs {
		if !reflect.DeepEqual(cfg.Code, wantCode) || cfg.WarmUpCount != 1 {
			t.Errorf("config %d: %+v", i, cfg)
		}
	}
	if cfgs[0].UnrollCount != 10 || cfgs[1].UnrollCount != 100 {
		t.Errorf("unroll counts: %d, %d", cfgs[0].UnrollCount, cfgs[1].UnrollCount)
	}
}

func TestSweepLenSaturatesOnOverflow(t *testing.T) {
	// Four 2^16-entry dimensions multiply past 2^63; a wrapped (negative
	// or small) Len would let a hostile /v1/sweep request slip past the
	// server's MaxBatch check and panic in Configs' capacity hint.
	big := 1 << 16
	sw := NewSweep(Config{}).
		Code(make([][]byte, big)...).
		Unroll(make([]int, big)...).
		Loop(make([]int, big)...).
		Events(make([][]EventSpec, big)...)
	if n := sw.Len(); n != math.MaxInt {
		t.Errorf("Len = %d, want saturation at math.MaxInt", n)
	}
}

// TestSweepWireCoversEveryDimension is the codec's field guard: a new
// Sweep dimension that does not travel in sweepJSON would silently drop
// in /v1/sweep requests. Extend sweepJSON (and docs/API.md) first, then
// this list.
func TestSweepWireCoversEveryDimension(t *testing.T) {
	covered := map[string]bool{
		"base": true, "cpus": true, "modes": true, "codes": true,
		"unrolls": true, "loops": true, "events": true,
		"err": true, // deferred builder error; deliberately not wire state
	}
	typ := reflect.TypeOf(Sweep{})
	for i := 0; i < typ.NumField(); i++ {
		if !covered[typ.Field(i).Name] {
			t.Errorf("Sweep field %q has no wire coverage: extend sweepJSON and this guard", typ.Field(i).Name)
		}
	}
	if typ.NumField() != len(covered) {
		t.Errorf("Sweep has %d fields but the guard lists %d — remove stale entries", typ.NumField(), len(covered))
	}
}

func TestSweepJSONErrors(t *testing.T) {
	var sw Sweep
	if err := json.Unmarshal([]byte(`{"unroll":[10]}`), &sw); err == nil ||
		!strings.Contains(err.Error(), "unknown field") {
		t.Errorf("unknown field: got %v", err)
	}
	// A bad asm entry defers to Configs, mirroring the Asm builder method.
	if err := json.Unmarshal([]byte(`{"asm":["not an instruction"]}`), &sw); err != nil {
		t.Fatalf("asm errors must defer to Configs, got decode error %v", err)
	}
	if _, err := sw.Configs(); err == nil {
		t.Error("Configs did not surface the deferred asm error")
	}
	// A sweep with a deferred error does not marshal.
	if _, err := json.Marshal(&sw); err == nil {
		t.Error("marshalling an errored sweep succeeded")
	}
}
