// Kernel mode: benchmark a privileged instruction (WBINVD) through the
// simulated kernel module's virtual-file interface — something no
// user-space tool can do (Section III-D).
//
//	go run nanobench/examples/kernelmode
package main

import (
	"context"
	"fmt"
	"log"

	"nanobench"
	"nanobench/internal/kmod"
)

func main() {
	s, err := nanobench.Open(nanobench.WithCPU("Skylake"), nanobench.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}
	m, err := s.NewMachine()
	if err != nil {
		log.Fatal(err)
	}

	// Load the simulated kernel module and configure it through its
	// /sys/nb/ files, exactly like kernel-nanoBench.sh does.
	k, err := kmod.Load(m)
	if err != nil {
		log.Fatal(err)
	}
	steps := []struct{ file, value string }{
		{"/sys/nb/asm", "wbinvd"},
		{"/sys/nb/unroll_count", "1"},
		{"/sys/nb/n_measurements", "5"},
		{"/sys/nb/warm_up_count", "1"},
		{"/sys/nb/agg", "min"},
		{"/sys/nb/basic_mode", "1"},
	}
	for _, st := range steps {
		if err := k.WriteFile(st.file, []byte(st.value)); err != nil {
			log.Fatal(err)
		}
	}
	out, err := k.ReadFile("/proc/nanoBench")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("WBINVD (privileged; kernel-space nanoBench):")
	fmt.Print(string(out))

	// The same benchmark through a user-space session faults with #GP.
	u, err := nanobench.Open(nanobench.WithCPU("Skylake"), nanobench.WithMode(nanobench.User))
	if err != nil {
		log.Fatal(err)
	}
	_, err = u.Run(context.Background(), nanobench.Config{
		Code: nanobench.MustAsm("wbinvd"), UnrollCount: 1, NMeasurements: 1,
	})
	fmt.Printf("\nuser-space attempt: %v\n", err)
}
