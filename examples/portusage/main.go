// Port usage: measure which execution ports a handful of instructions
// dispatch to, the way case study I does for the full instruction table.
// The four benchmarks run as one session batch, in parallel across the
// session's machine pool, with deterministic results.
//
//	go run nanobench/examples/portusage
package main

import (
	"context"
	"fmt"
	"log"

	"nanobench"
)

func main() {
	s, err := nanobench.Open(
		nanobench.WithCPU("Skylake"),
		nanobench.WithSeed(7),
		nanobench.WithWarmUp(1),
	)
	if err != nil {
		log.Fatal(err)
	}

	events := nanobench.MustParseEvents(`
A1.01 PORT_0
A1.02 PORT_1
A1.04 PORT_2
A1.08 PORT_3
A1.10 PORT_4
A1.20 PORT_5
A1.40 PORT_6
A1.80 PORT_7`)

	benchmarks := []struct{ name, asm string }{
		{"4x ADD (ALU)", "add r8, 1\nadd r9, 1\nadd r10, 1\nadd r11, 1"},
		{"4x IMUL (multiplier)", "imul r8, rbp\nimul r9, rbp\nimul r10, rbp\nimul r11, rbp"},
		{"4x load", "mov r8, [r14]\nmov r9, [r14+8]\nmov r10, [r14+16]\nmov r11, [r14+24]"},
		{"4x store", "mov [r14], rbp\nmov [r14+8], rbp\nmov [r14+16], rbp\nmov [r14+24], rbp"},
	}
	cfgs := make([]nanobench.Config, len(benchmarks))
	for i, b := range benchmarks {
		cfgs[i] = nanobench.Config{
			Code:        nanobench.MustAsm(b.asm),
			UnrollCount: 25,
			Events:      events,
		}
	}

	results, err := s.RunBatch(context.Background(), cfgs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-22s", "benchmark")
	for p := 0; p < 8; p++ {
		fmt.Printf("  p%d  ", p)
	}
	fmt.Println()
	for i, b := range benchmarks {
		fmt.Printf("%-22s", b.name)
		for p := 0; p < 8; p++ {
			v, _ := results[i].Get(fmt.Sprintf("PORT_%d", p))
			fmt.Printf(" %.2f", v/4) // per instruction
		}
		fmt.Println()
	}
}
