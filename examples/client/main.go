// Client: drive a running nanobenchd over HTTP — a single /v1/run, then
// a streamed /v1/sweep consumed line by line as the results land. Start
// the server first:
//
//	go run nanobench/cmd/nanobenchd -addr :8080 &
//	go run nanobench/examples/client -addr localhost:8080
//
// The wire schema the requests follow is documented in docs/API.md.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"

	"nanobench"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "nanobenchd address")
	flag.Parse()
	base := "http://" + *addr

	// One config, addressed to the default Skylake/kernel session. The
	// request body can be written by hand (see docs/API.md); here the
	// facade types marshal it for us.
	runBody, err := json.Marshal(map[string]any{
		"config": nanobench.Config{
			Code:          nanobench.MustAsm("mov R14, [R14]"),
			CodeInit:      nanobench.MustAsm("mov [R14], R14"),
			WarmUpCount:   1,
			NMeasurements: 3,
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/run", "application/json", bytes.NewReader(runBody))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var run struct {
		CPU    string            `json:"cpu"`
		Mode   string            `json:"mode"`
		Result *nanobench.Result `json:"result"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&run); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("/v1/run on %s (%s):\n%s\n", run.CPU, run.Mode, run.Result)

	// A 2×3 sweep, streamed: each NDJSON line arrives as soon as its
	// evaluation (and all earlier ones) finished.
	sw := nanobench.NewSweep(nanobench.Config{NMeasurements: 3}).
		Asm("add rax, rbx", "imul rax, rbx").
		Unroll(10, 100, 1000)
	sweepBody, err := json.Marshal(map[string]any{"sweep": sw})
	if err != nil {
		log.Fatal(err)
	}
	resp, err = http.Post(base+"/v1/sweep?stream=1", "application/json", bytes.NewReader(sweepBody))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	fmt.Println("/v1/sweep?stream=1:")
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		var item struct {
			Index  int               `json:"index"`
			Result *nanobench.Result `json:"result"`
			Error  *struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if err := json.Unmarshal(sc.Bytes(), &item); err != nil {
			log.Fatal(err)
		}
		if item.Error != nil {
			fmt.Printf("  config %d: %s (%s)\n", item.Index, item.Error.Message, item.Error.Code)
			continue
		}
		cycles, _ := item.Result.Get("Core cycles")
		fmt.Printf("  config %d: %.2f cycles/instr\n", item.Index, cycles)
	}
	if err := sc.Err(); err != nil {
		log.Fatal(err)
	}
}
