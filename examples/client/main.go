// Client: drive a running nanobenchd through the typed client package —
// a synchronous /v1/run, then a sweep submitted as an asynchronous job
// whose progress is streamed while the result is fetched by id. Start
// the server first:
//
//	go run nanobench/cmd/nanobenchd -addr :8080 &
//	go run nanobench/examples/client -addr localhost:8080
//
// The wire schema underneath is documented in docs/API.md; the client
// package wraps it so nothing here touches net/http directly.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"

	"nanobench"
	"nanobench/client"
)

func main() {
	addr := flag.String("addr", "localhost:8080", "nanobenchd address")
	flag.Parse()
	ctx := context.Background()
	c := client.New("http://" + *addr)

	// One config, addressed to the default Skylake/kernel session.
	run, err := c.Run(ctx, "", "", nanobench.Config{
		Code:          nanobench.MustAsm("mov R14, [R14]"),
		CodeInit:      nanobench.MustAsm("mov [R14], R14"),
		WarmUpCount:   1,
		NMeasurements: 3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("/v1/run on %s (%s):\n%s\n", run.CPU, run.Mode, run.Result)

	// The same 2×3 sweep as docs/API.md, submitted as an async job: the
	// server queues it, shards the evaluation, and merges the results
	// back into expansion order.
	sw := nanobench.NewSweep(nanobench.Config{NMeasurements: 3}).
		Asm("add rax, rbx", "imul rax, rbx").
		Unroll(10, 100, 1000)
	job, err := c.SubmitSweep(ctx, "", "", sw)
	if err != nil {
		if client.IsCode(err, "queue_full") {
			log.Fatalf("admission queue full, retry after the server's hint: %v", err)
		}
		log.Fatal(err)
	}
	fmt.Printf("submitted job %s (%s)\n", job.ID, job.Submitted.Kind)

	// Follow the job's state transitions live while it runs.
	err = job.Stream(ctx, func(s client.JobStatus) error {
		fmt.Printf("  %s: %d/%d done (%d cache hits)\n",
			s.State, s.Progress.Completed, s.Progress.Total, s.Progress.CacheHits)
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}

	// The finished job's result is byte-identical to the synchronous
	// /v1/sweep response; WaitSweep long-polls and decodes it.
	sweep, err := job.WaitSweep(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("job %s result (%d configs):\n", job.ID, sweep.Count)
	for _, it := range sweep.Results {
		if it.Err != nil {
			fmt.Printf("  config %d: %s (%s)\n", it.Index, it.Err.Message, it.Err.Code)
			continue
		}
		cycles, _ := it.Result.Get("Core cycles")
		fmt.Printf("  config %d: %.2f cycles/instr\n", it.Index, cycles)
	}
}
