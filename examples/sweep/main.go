// Sweep: generate a config family declaratively — three benchmarks at
// three unroll counts — stream the results as they complete, and emit the
// last one as JSON and CSV. A context deadline bounds the whole sweep;
// on cancellation the stream still delivers the completed prefix in
// order before closing.
//
//	go run nanobench/examples/sweep
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"time"

	"nanobench"
)

func main() {
	s, err := nanobench.Open(
		nanobench.WithCPU("Skylake"),
		nanobench.WithWarmUp(1),
	)
	if err != nil {
		log.Fatal(err)
	}

	sw := nanobench.NewSweep(nanobench.Config{Aggregate: nanobench.Min}).
		Asm("add rax, rbx", "imul rax, rbx", "shl rax, 1").
		Unroll(10, 100, 1000)
	cfgs, err := sw.Configs()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("sweep: %d configs (3 benchmarks x 3 unroll counts)\n\n", len(cfgs))

	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	var last *nanobench.Result
	items, err := s.StreamSweep(ctx, sw)
	if err != nil {
		log.Fatal(err)
	}
	for it := range items {
		if it.Err != nil {
			fmt.Printf("config %d: %v\n", it.Index, it.Err)
			continue
		}
		cyc, _ := it.Result.Get("Core cycles")
		fmt.Printf("config %d: %.2f cycles/instr (cache hit: %v)\n", it.Index, cyc, it.CacheHit)
		last = it.Result
	}

	if last == nil {
		return
	}
	js, err := json.MarshalIndent(last, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlast result as JSON:\n%s\n", js)
	fmt.Printf("\nas CSV:\n%s%s", nanobench.CSVHeader+"\n", last.AppendCSV(nil))

	hits, misses := s.CacheStats()
	fmt.Printf("\nsession cache: %d hits, %d misses\n", hits, misses)
}
