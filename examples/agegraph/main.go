// Age graph: reproduce (a smaller version of) Figure 1 — the survival of
// blocks B0..B11 in an Ivy Bridge L3 set whose replacement policy inserts
// blocks with age 1 with probability 1/16 (QLRU_H11_MR161_R1_U2).
//
//	go run nanobench/examples/agegraph
package main

import (
	"fmt"
	"log"

	"nanobench"
	"nanobench/internal/cachetools"
)

func main() {
	s, err := nanobench.Open(
		nanobench.WithCPU("IvyBridge"),
		nanobench.WithSeed(42),
	)
	if err != nil {
		log.Fatal(err)
	}
	r, err := s.NewRunner()
	if err != nil {
		log.Fatal(err)
	}
	tool, err := cachetools.New(r)
	if err != nil {
		log.Fatal(err)
	}

	// Sets 768-831 use the probabilistic policy (Section VI-D); the
	// access sequence is the paper's "<WBINVD> B0 ... B11".
	prefix := cachetools.MustParseSeq("<wbinvd> B0 B1 B2 B3 B4 B5 B6 B7 B8 B9 B10 B11")
	fmt.Println("measuring block survival in IvyBridge L3 set 768 (slice 0)...")
	g, err := tool.AgeGraphFor(cachetools.L3, 0, 768, prefix, 96, 8, 16)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(g.Format())

	// The signature of the 1/16 probabilistic insertion: most copies of
	// B0 are evicted by the very first fresh block, a small fraction
	// survives much longer.
	if frac, ok := g.SurvivalAt(0, 8); ok {
		fmt.Printf("\nB0 survival after 8 fresh blocks: %.0f%% (policy inserts age-1 with p=1/16)\n", frac*100)
	}
}
