// Cache policy inference: identify the replacement policy of the Skylake
// model's L2 cache purely from performance-counter measurements, the way
// case study II does (Section VI-C1).
//
//	go run nanobench/examples/cachepolicy
package main

import (
	"fmt"
	"log"
	"strings"

	"nanobench"
	"nanobench/internal/cachetools"
	"nanobench/internal/nano"
)

func main() {
	m, err := nanobench.NewMachine("Skylake", 123)
	if err != nil {
		log.Fatal(err)
	}
	r, err := nano.NewRunner(m, nanobench.Kernel)
	if err != nil {
		log.Fatal(err)
	}
	tool, err := cachetools.New(r)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("running access sequences against the L2 and comparing with")
	fmt.Printf("simulations of %d candidate policies...\n\n", len(cachetools.DefaultCandidates(tool.Assoc(cachetools.L2))))

	res, err := tool.InferPolicy(cachetools.L2, 0, 300, cachetools.InferOptions{
		MaxSequences: 150,
		Seed:         123,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("measured sequences: %d\n", res.SequencesUsed)
	if name, ok := res.Unique(); ok {
		fmt.Printf("identified policy:  %s\n", name)
		if len(res.Classes[0]) > 1 {
			fmt.Printf("equivalent names:   %s\n", strings.Join(res.Classes[0], ", "))
		}
	} else {
		fmt.Printf("remaining classes: %v\n", res.Classes)
	}
}
