// Cache policy inference: identify the replacement policy of the Skylake
// model's L2 cache purely from performance-counter measurements, the way
// case study II does (Section VI-C1). The measurement campaign is bounded
// by a context deadline: a stuck inference aborts instead of hanging.
//
//	go run nanobench/examples/cachepolicy
package main

import (
	"context"
	"fmt"
	"log"
	"strings"
	"time"

	"nanobench"
	"nanobench/internal/cachetools"
)

func main() {
	s, err := nanobench.Open(
		nanobench.WithCPU("Skylake"),
		nanobench.WithSeed(123),
	)
	if err != nil {
		log.Fatal(err)
	}
	r, err := s.NewRunner()
	if err != nil {
		log.Fatal(err)
	}
	tool, err := cachetools.New(r)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("running access sequences against the L2 and comparing with")
	fmt.Printf("simulations of %d candidate policies...\n\n", len(cachetools.DefaultCandidates(tool.Assoc(cachetools.L2))))

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()
	res, err := tool.InferPolicyContext(ctx, cachetools.L2, 0, 300, cachetools.InferOptions{
		MaxSequences: 150,
		Seed:         123,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("measured sequences: %d\n", res.SequencesUsed)
	if name, ok := res.Unique(); ok {
		fmt.Printf("identified policy:  %s\n", name)
		if len(res.Classes[0]) > 1 {
			fmt.Printf("equivalent names:   %s\n", strings.Join(res.Classes[0], ", "))
		}
	} else {
		fmt.Printf("remaining classes: %v\n", res.Classes)
	}
}
