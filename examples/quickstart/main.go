// Quickstart: the paper's Section III-A example — measuring the L1 data
// cache latency on a Skylake model with a pointer-chasing load, through
// the Session API (the v1 free functions were removed after their
// deprecation horizon; TestSessionQuickstart pins that this program
// prints the same counter values they did).
//
//	go run nanobench/examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"nanobench"
)

func main() {
	s, err := nanobench.Open(nanobench.WithCPU("Skylake"), nanobench.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}

	// The init part stores R14 to the address R14 points to; the main
	// part then chases that pointer: each load depends on the previous
	// one, so the measured cycles are the L1 load-to-use latency.
	res, err := s.Run(context.Background(), nanobench.Config{
		Code:        nanobench.MustAsm("mov R14, [R14]"),
		CodeInit:    nanobench.MustAsm("mov [R14], R14"),
		WarmUpCount: 1,
		Events: nanobench.MustParseEvents(`
0E.01 UOPS_ISSUED.ANY
A1.04 UOPS_DISPATCHED_PORT.PORT_2
A1.08 UOPS_DISPATCHED_PORT.PORT_3
D1.01 MEM_LOAD_RETIRED.L1_HIT
D1.08 MEM_LOAD_RETIRED.L1_MISS`),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res)
	fmt.Printf("\n=> L1 data cache latency: %.0f cycles\n", res.MustGet("Core cycles"))
}
