// Package experiments regenerates every table and figure of the nanoBench
// paper's evaluation on the simulated machines, plus the ablations listed
// in DESIGN.md. The cmd/experiments binary and the top-level benchmark
// harness both drive these functions; EXPERIMENTS.md records their output
// against the paper's numbers.
package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"time"

	"nanobench"
	"nanobench/internal/cachetools"
	"nanobench/internal/instbench"
	"nanobench/internal/nano"
	"nanobench/internal/perfcfg"
	"nanobench/internal/sched"
	"nanobench/internal/sim/machine"
	"nanobench/internal/sim/policy"
	"nanobench/internal/uarch"
)

// Seed is the machine seed used throughout the experiments.
const Seed = 42

// Workers bounds the parallelism of the sweep experiments (Table1,
// InstructionTable, SetDueling, LoopVsUnroll); 0 means runtime.NumCPU().
// The schedule never influences results — see the sched package docs.
var Workers = 0

// resultCache memoizes batch evaluations across experiment invocations, so
// re-running a sweep (the benchmark harness loops them) hits memory
// instead of re-simulating.
var resultCache = sched.NewCache()

// newRunner opens a facade session for the CPU model and hands out its
// runner: the experiments drive the same public Session API the CLIs and
// examples use.
func newRunner(cpuName string, mode machine.Mode) (*nano.Runner, uarch.CPU, error) {
	cpu, err := uarch.ByName(cpuName)
	if err != nil {
		return nil, cpu, err
	}
	s, err := nanobench.Open(
		nanobench.WithCPU(cpuName),
		nanobench.WithMode(mode),
		nanobench.WithSeed(Seed),
	)
	if err != nil {
		return nil, cpu, err
	}
	r, err := s.NewRunner()
	return r, cpu, err
}

// ExampleL1Latency reproduces the Section III-A example: the paper reports
// Instructions retired 1.00, Core cycles 4.00, Reference cycles 3.52,
// UOPS_ISSUED.ANY 1.00, ports 2/3 at 0.50 each, L1 hits 1.00.
func ExampleL1Latency(w io.Writer) (*nano.Result, error) {
	r, _, err := newRunner("Skylake", machine.Kernel)
	if err != nil {
		return nil, err
	}
	res, err := r.Run(nano.Config{
		Code:        nano.MustAsm("mov R14, [R14]"),
		CodeInit:    nano.MustAsm("mov [R14], R14"),
		WarmUpCount: 1,
		Events: perfcfg.MustParse(`
0E.01 UOPS_ISSUED.ANY
A1.01 UOPS_DISPATCHED_PORT.PORT_0
A1.02 UOPS_DISPATCHED_PORT.PORT_1
A1.04 UOPS_DISPATCHED_PORT.PORT_2
A1.08 UOPS_DISPATCHED_PORT.PORT_3
D1.01 MEM_LOAD_RETIRED.L1_HIT
D1.08 MEM_LOAD_RETIRED.L1_MISS`),
	})
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "## E1: Section III-A example (L1 load latency, Skylake)")
	fmt.Fprint(w, res.String())
	return res, nil
}

// Clock supplies the wall-clock readings NanoBenchTiming times the tool
// with. A nil Clock means the real wall clock; tests inject a fake to
// keep the experiment deterministic (the detrand invariant, docs/LINTS.md).
type Clock func() time.Time

// NanoBenchTiming measures the wall-clock execution time of one nanoBench
// evaluation (Section III-K: one NOP, unrollCount 100, loopCount 0,
// nMeasurements 10, four events; the paper reports ~15 ms kernel / ~50 ms
// user on an i7-8700K). Unlike every other experiment, the measurand here
// is the tool's own elapsed time, so the clock is a parameter rather
// than simulated state.
func NanoBenchTiming(w io.Writer, clock Clock) (kernel, user time.Duration, err error) {
	if clock == nil {
		// E2 quantifies real tool overhead, off the deterministic
		// result path; this default is the CLI behaviour.
		//nanolint:allow detrand E2's measurand is the tool's own wall time (Section III-K); deterministic callers inject a Clock
		clock = time.Now
	}
	cfg := nano.Config{
		Code:          nano.MustAsm("nop"),
		UnrollCount:   100,
		NMeasurements: 10,
		WarmUpCount:   1,
		Events: perfcfg.MustParse(`
0E.01 UOPS_ISSUED.ANY
A1.01 PORT0
A1.02 PORT1
C5.00 BR_MISP`),
	}
	timeIt := func(mode machine.Mode) (time.Duration, error) {
		r, _, err := newRunner("CoffeeLake", mode)
		if err != nil {
			return 0, err
		}
		if _, err := r.Run(cfg); err != nil { // warm the host paths
			return 0, err
		}
		start := clock()
		if _, err := r.Run(cfg); err != nil {
			return 0, err
		}
		return clock().Sub(start), nil
	}
	kernel, err = timeIt(machine.Kernel)
	if err != nil {
		return
	}
	user, err = timeIt(machine.User)
	if err != nil {
		return
	}
	fmt.Fprintln(w, "## E2: execution time of one nanoBench evaluation (Section III-K)")
	fmt.Fprintf(w, "kernel-space: %.1f ms (paper: ~15 ms)\n", kernel.Seconds()*1000)
	fmt.Fprintf(w, "user-space:   %.1f ms (paper: ~50 ms)\n", user.Seconds()*1000)
	return
}

// Table1Row is one row of the reproduced Table I.
type Table1Row struct {
	CPU              string
	L1, L2, L3       string // inferred policy names ("" = inference failed)
	L1OK, L2OK, L3OK bool
}

// Table1 reruns the replacement-policy inference on every Table I machine
// model and compares with the expected (injected) policies. For the
// adaptive Ivy Bridge / Haswell / Broadwell models the deterministic
// leader sets are inferred; the probabilistic leaders are reported as
// "probabilistic" (the paper refers to the age graphs for those).
func Table1(w io.Writer, quick bool) ([]Table1Row, error) {
	cpus := uarch.Table1()
	if quick {
		cpus = []uarch.CPU{cpus[3], cpus[6]} // IvyBridge, Skylake
	}
	maxSeq := 120

	// Each CPU's inference runs on its own machine and is deterministic in
	// isolation, so the rows fan out across workers; lines are buffered
	// per index and emitted in catalog order.
	rows := make([]Table1Row, len(cpus))
	lines := make([]string, len(cpus))
	err := sched.ForEach(len(cpus), Workers, func(ci int) error {
		cpu := cpus[ci]
		r, _, err := newRunner(cpu.Name, machine.Kernel)
		if err != nil {
			return err
		}
		tool, err := cachetools.New(r)
		if err != nil {
			return err
		}
		row := Table1Row{CPU: cpu.Name}

		infer := func(level cachetools.Level, slice, set int) (string, bool, error) {
			res, err := tool.InferPolicy(level, slice, set, cachetools.InferOptions{
				MaxSequences: maxSeq, Seed: Seed,
			})
			if err != nil {
				return "", false, err
			}
			if len(res.Classes) == 0 {
				return "probabilistic", false, nil
			}
			name, unique := res.Unique()
			return name, unique, nil
		}

		row.L1, _, err = infer(cachetools.L1, 0, 37)
		if err != nil {
			return err
		}
		row.L1OK = policiesEquivalent(row.L1, cpu.L1Policy, tool.Assoc(cachetools.L1))

		// L2 set 300 exists on every model (the older generations have
		// only 512 L2 sets) and is clear of the code region's lines.
		row.L2, _, err = infer(cachetools.L2, 0, 300)
		if err != nil {
			return err
		}
		row.L2OK = policiesEquivalent(row.L2, cpu.L2Policy, tool.Assoc(cachetools.L2))

		// L3: for adaptive models, infer the deterministic leader set and
		// probe the probabilistic one.
		l3Set, l3Slice := 600, 0
		expectedL3 := cpu.L3Policy
		if cpu.L3Adaptive != nil {
			l3Set, l3Slice = 520, leaderSlice(cpu)
			expectedL3 = cpu.L3Adaptive.PolicyA
		}
		row.L3, _, err = infer(cachetools.L3, l3Slice, l3Set)
		if err != nil {
			return err
		}
		row.L3OK = policiesEquivalent(row.L3, expectedL3, tool.Assoc(cachetools.L3))
		if cpu.L3Adaptive != nil {
			// The stochastic leader must defeat every deterministic
			// candidate.
			bName, _, err := infer(cachetools.L3, bLeaderSlice(cpu), 780)
			if err != nil {
				return err
			}
			if bName == "probabilistic" {
				row.L3 += " + probabilistic leaders"
			} else {
				row.L3 += " + UNEXPECTED " + bName
				row.L3OK = false
			}
		}
		mark := func(ok bool) string {
			if ok {
				return "✓"
			}
			return "✗"
		}
		lines[ci] = fmt.Sprintf("%-12s %-6s %-22s %-22s %s\n", cpu.Name,
			mark(row.L1OK)+mark(row.L2OK)+mark(row.L3OK), row.L1, row.L2, row.L3)
		rows[ci] = row
		return nil
	})
	fmt.Fprintln(w, "## E3: Table I — replacement policies by level")
	fmt.Fprintf(w, "%-12s %-6s %-22s %-22s %s\n", "CPU", "", "L1", "L2", "L3")
	for _, line := range lines {
		fmt.Fprint(w, line)
	}
	return rows, err
}

// policiesEquivalent reports whether two policy names behave identically
// on a probe suite of random sequences. The inference reports one
// representative per behavioural class, which may be a different (but
// observationally equivalent) name than the injected ground truth.
func policiesEquivalent(a, b string, assoc int) bool {
	if a == b {
		return true
	}
	pa, errA := policy.New(a, assoc, rand.New(rand.NewSource(1)))
	pb, errB := policy.New(b, assoc, rand.New(rand.NewSource(1)))
	if errA != nil || errB != nil {
		return false
	}
	rng := rand.New(rand.NewSource(77))
	for i := 0; i < 400; i++ {
		n := 2*assoc + rng.Intn(assoc)
		seq := make([]int, n)
		for j := range seq {
			seq[j] = rng.Intn(assoc + 4)
		}
		if policy.CountHits(pa, seq) != policy.CountHits(pb, seq) {
			return false
		}
	}
	return true
}

func leaderSlice(cpu uarch.CPU) int {
	for _, r := range cpu.L3Adaptive.ARanges {
		if r.Lo <= 520 && 520 <= r.Hi {
			if r.Slice == -1 {
				return 0
			}
			return r.Slice
		}
	}
	return 0
}

func bLeaderSlice(cpu uarch.CPU) int {
	for _, r := range cpu.L3Adaptive.BRanges {
		if r.Lo <= 780 && 780 <= r.Hi {
			if r.Slice == -1 {
				return 0
			}
			return r.Slice
		}
	}
	return 0
}

// Figure1 regenerates the Ivy Bridge age graph (Section VI-D, Figure 1):
// access sequence <WBINVD> B0..B11 in an L3 set with the probabilistic
// QLRU_H11_MR161_R1_U2 policy, measuring how long each block survives as
// fresh blocks stream in.
func Figure1(w io.Writer, quick bool) (*cachetools.AgeGraph, error) {
	r, _, err := newRunner("IvyBridge", machine.Kernel)
	if err != nil {
		return nil, err
	}
	tool, err := cachetools.New(r)
	if err != nil {
		return nil, err
	}
	// The (block, fresh-count) groups are independent (each restreams the
	// simulated hierarchy first), so they shard across sibling machines;
	// the graph is byte-identical at any worker count.
	tool.Workers = Workers
	if tool.Workers == 0 {
		tool.Workers = runtime.NumCPU()
	}
	tool.NewSibling = func() (*cachetools.Tool, error) {
		sr, _, err := newRunner("IvyBridge", machine.Kernel)
		if err != nil {
			return nil, err
		}
		return cachetools.New(sr)
	}
	maxFresh, step, trials := 200, 8, 32
	if quick {
		maxFresh, step, trials = 64, 16, 8
	}
	prefix := cachetools.SeqOf(true, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11)
	g, err := tool.AgeGraphFor(cachetools.L3, 0, 768, prefix, maxFresh, step, trials)
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "## E4: Figure 1 — Ivy Bridge age graph, L3 set 768 (probabilistic leader)")
	fmt.Fprintf(w, "# trials per point: %d\n", trials)
	fmt.Fprint(w, g.Format())
	return g, nil
}

// Serialization demonstrates the Section IV-A1 claim: CPUID's execution
// time varies by hundreds of cycles between runs, LFENCE's does not, so
// CPUID-serialized measurements of short code are unreliable.
func Serialization(w io.Writer) (cpuidSpread, lfenceSpread float64, err error) {
	spread := func(asm string) (float64, error) {
		r, _, err := newRunner("Skylake", machine.Kernel)
		if err != nil {
			return 0, err
		}
		lo, hi := 0.0, 0.0
		for i := 0; i < 20; i++ {
			res, err := r.Run(nano.Config{
				Code:          nano.MustAsm(asm),
				UnrollCount:   10,
				NMeasurements: 1,
				WarmUpCount:   1,
			})
			if err != nil {
				return 0, err
			}
			v, _ := res.Get("Core cycles")
			if i == 0 || v < lo {
				lo = v
			}
			if i == 0 || v > hi {
				hi = v
			}
		}
		return hi - lo, nil
	}
	cpuidSpread, err = spread("mov rax, 0\ncpuid")
	if err != nil {
		return
	}
	lfenceSpread, err = spread("lfence")
	if err != nil {
		return
	}
	fmt.Fprintln(w, "## E5: serialization instructions (Section IV-A1)")
	fmt.Fprintf(w, "CPUID  per-instruction cycle spread over 20 runs: %.1f cycles\n", cpuidSpread)
	fmt.Fprintf(w, "LFENCE per-instruction cycle spread over 20 runs: %.1f cycles\n", lfenceSpread)
	fmt.Fprintln(w, "(paper: CPUID varies by hundreds of cycles; LFENCE is stable)")
	return
}

// InstructionTable runs the case-study-I sweep and summarizes agreement
// with the simulator's ground-truth instruction table (Section V's
// latency/throughput/port-usage characterization).
func InstructionTable(w io.Writer, quick bool) (total, latOK, portOK int, err error) {
	cpu, err := uarch.ByName("Skylake")
	if err != nil {
		return
	}
	variants := instbench.Variants()
	if quick {
		variants = variants[:20]
	}
	// The per-variant evaluations fan out through the batch scheduler;
	// repeated sweeps (identical encodings, benchmark-harness loops) hit
	// the content-addressed result cache.
	ms, err := instbench.SweepVariantsContext(context.Background(), cpu.Name, machine.Kernel, variants,
		sched.Options{Workers: Workers, RootSeed: Seed, Cache: resultCache})
	if err != nil {
		return
	}
	latTotal := 0
	for _, m := range ms {
		want := instbench.ExpectedLatency(m.Variant)
		if want >= 0 && m.Latency >= 0 {
			latTotal++
			if diff(m.Latency, want) <= 0.25 {
				latOK++
			}
		}
		if m.Variant.Form != instbench.FormNone {
			exp := instbench.ExpectedPorts(m.Variant)
			if m.PortSet()&^exp == 0 && m.PortSet() != 0 {
				portOK++
			}
		}
	}
	total = len(ms)
	fmt.Fprintf(w, "## E6: instruction characterization sweep (%s)\n", cpu.Name)
	fmt.Fprintf(w, "variants measured: %d\n", total)
	fmt.Fprintf(w, "latencies matching ground truth: %d/%d\n", latOK, latTotal)
	fmt.Fprintf(w, "port sets within ground truth:   %d/%d\n", portOK, total)
	fmt.Fprint(w, instbench.FormatTable(ms))
	return
}

func diff(a, b float64) float64 {
	if a > b {
		return a - b
	}
	return b - a
}

// LoopVsUnroll reproduces the Section III-F trade-off for a port-usage
// benchmark: shift µops issue only to ports 0 and 6, and the loop's JNZ
// also needs port 6, so measuring with a loop both slows the benchmark
// down and skews its port distribution — "the µops of the loop code
// compete for ports with the µops of the benchmark".
func LoopVsUnroll(w io.Writer) (map[string]float64, error) {
	out := map[string]float64{}
	events := perfcfg.MustParse("A1.01 PORT0\nA1.40 PORT6")
	body := "shl r8, 1\nshl r9, 1\nshl r10, 1\nshl r11, 1"
	cases := []struct {
		name         string
		loop, unroll int
	}{
		{"unroll=100, loop=0", 0, 100},
		{"unroll=1, loop=100", 100, 1},
		{"unroll=10, loop=10", 10, 10},
	}
	// The three configurations run through a facade session sharing the
	// experiments' result cache; results are deterministic for any
	// parallelism level.
	s, err := nanobench.Open(
		nanobench.WithCPU("Skylake"),
		nanobench.WithSeed(Seed),
		nanobench.WithParallelism(Workers),
		nanobench.WithCache(resultCache),
	)
	if err != nil {
		return nil, err
	}
	cfgs := make([]nano.Config, len(cases))
	for i, c := range cases {
		cfgs[i] = nano.Config{
			Code:        nano.MustAsm(body),
			UnrollCount: c.unroll,
			LoopCount:   c.loop,
			WarmUpCount: 2,
			BasicMode:   true, // include the loop context in the measurement
			Events:      events,
		}
	}
	results, err := s.RunBatch(context.Background(), cfgs)
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "## E7: loops vs unrolling (Section III-F), benchmark: 4 independent SHLs")
	fmt.Fprintf(w, "%-22s %12s %12s %12s\n", "configuration", "cycles/instr", "port0/instr", "port6/instr")
	for i, c := range cases {
		res := results[i]
		cyc, _ := res.Get("Core cycles")
		p0, _ := res.Get("PORT0")
		p6, _ := res.Get("PORT6")
		out[c.name] = cyc / 4
		fmt.Fprintf(w, "%-22s %12.3f %12.3f %12.3f\n", c.name, cyc/4, p0/4, p6/4)
	}
	fmt.Fprintln(w, "(the loop configuration under-reports the true 0.5 cycles/instr reciprocal")
	fmt.Fprintln(w, "throughput: the loop's DEC/JNZ µops interleave with the benchmark's on ports")
	fmt.Fprintln(w, "0/6, so \"using only unrolling is better\" for port-bound benchmarks, §III-F)")
	return out, nil
}

// NoMemAblation reproduces the Section III-I problem: when the benchmark's
// accesses map to the same L1 set as the counter-storage lines, storing
// counters to memory perturbs the measured cache state; the noMem mode
// avoids it.
func NoMemAblation(w io.Writer) (memHits, noMemHits float64, err error) {
	r, _, err := newRunner("Skylake", machine.Kernel)
	if err != nil {
		return
	}
	// Addresses in the R14 area that share the L1 set of the counter
	// array at nano.AuxBase+0x280.
	auxPhys, _ := r.M.Mem.Translate(nano.AuxBase + 0x280)
	set := r.M.Hier.L1D.SetIndex(auxPhys)
	basePhys, _ := r.M.Mem.Translate(nano.R14DefaultArea())
	first := (set - r.M.Hier.L1D.SetIndex(basePhys) + 64) % 64 * 64
	var initAsm, benchAsm string
	for i := 0; i < 8; i++ {
		off := first + i*4096
		initAsm += fmt.Sprintf("mov rbx, [r14+%d]\n", off)
		benchAsm += fmt.Sprintf("mov rbx, [r14+%d]\n", off)
	}
	run := func(noMem bool) (float64, error) {
		res, err := r.Run(nano.Config{
			Code:          nano.MustAsm(benchAsm),
			CodeInit:      nano.MustAsm(initAsm),
			UnrollCount:   1,
			NMeasurements: 1,
			BasicMode:     true,
			NoMem:         noMem,
			Events:        perfcfg.MustParse("D1.01 L1_HIT"),
		})
		if err != nil {
			return 0, err
		}
		v, _ := res.Get("L1_HIT")
		return v, nil
	}
	memHits, err = run(false)
	if err != nil {
		return
	}
	noMemHits, err = run(true)
	if err != nil {
		return
	}
	fmt.Fprintln(w, "## E8: noMem mode (Section III-I)")
	fmt.Fprintf(w, "8 loads conflicting with the counter-storage set, after priming:\n")
	fmt.Fprintf(w, "memory mode: %.0f / 8 L1 hits (counter writes evicted benchmark lines)\n", memHits)
	fmt.Fprintf(w, "noMem mode:  %.0f / 8 L1 hits\n", noMemHits)
	return
}

// KernelVsUserAccuracy reproduces the Section III-D accuracy claim: with
// interrupts disabled (kernel mode) repeated measurements are exact; in
// user mode timer interrupts perturb them.
func KernelVsUserAccuracy(w io.Writer) (kernelSpread, userSpread float64, err error) {
	measureSpread := func(mode machine.Mode) (float64, error) {
		r, _, err := newRunner("Skylake", mode)
		if err != nil {
			return 0, err
		}
		cfg := nano.Config{
			Code:          nano.MustAsm("mov r14, [r14]"),
			CodeInit:      nano.MustAsm("mov [r14], r14"),
			UnrollCount:   100,
			LoopCount:     100,
			NMeasurements: 1,
			WarmUpCount:   1,
		}
		lo, hi := 0.0, 0.0
		for i := 0; i < 20; i++ {
			res, err := r.Run(cfg)
			if err != nil {
				return 0, err
			}
			v, _ := res.Get("Core cycles")
			if i == 0 || v < lo {
				lo = v
			}
			if i == 0 || v > hi {
				hi = v
			}
		}
		return hi - lo, nil
	}
	kernelSpread, err = measureSpread(machine.Kernel)
	if err != nil {
		return
	}
	userSpread, err = measureSpread(machine.User)
	if err != nil {
		return
	}
	fmt.Fprintln(w, "## E9: kernel vs user accuracy (Section III-D)")
	fmt.Fprintf(w, "pointer chase, 10k loads, per-load cycle spread over 20 runs:\n")
	fmt.Fprintf(w, "kernel mode (interrupts off): %.3f cycles\n", kernelSpread)
	fmt.Fprintf(w, "user mode (timer interrupts): %.3f cycles\n", userSpread)
	return
}

// ContiguousAlloc reproduces the Section IV-D behaviour: the greedy
// physically-contiguous allocator succeeds after boot, fails under
// fragmentation, and recovers after a reboot.
func ContiguousAlloc(w io.Writer) (freshOK, fragFail, rebootOK bool, err error) {
	r, _, err := newRunner("Skylake", machine.Kernel)
	if err != nil {
		return
	}
	err1 := r.AllocBigArea(32 << 20)
	freshOK = err1 == nil

	r2, _, err := newRunner("KabyLake", machine.Kernel)
	if err != nil {
		return
	}
	r2.M.Alloc.Fragment(0.02)
	err2 := r2.AllocBigArea(32 << 20)
	fragFail = err2 != nil
	if fragFail {
		if err3 := r2.RebootAndRemap(); err3 == nil {
			rebootOK = r2.AllocBigArea(32<<20) == nil
		}
	}
	fmt.Fprintln(w, "## E10: physically-contiguous allocation (Section IV-D)")
	fmt.Fprintf(w, "fresh system, 32 MB via repeated 4 MB kmalloc: success=%v\n", freshOK)
	fmt.Fprintf(w, "fragmented system: failure=%v (reboot recommended)\n", fragFail)
	fmt.Fprintf(w, "after reboot: success=%v\n", rebootOK)
	return
}

// DuelingResult summarizes one set-dueling scan.
type DuelingResult struct {
	CPU    string
	Report *cachetools.DuelingReport
	// Correct counts classifications matching the injected configuration.
	Correct, Total int
}

// SetDueling reruns the leader-set detection on the three adaptive models
// (Section VI-D: Ivy Bridge has dedicated sets 512-575 and 768-831 in all
// slices; Haswell only in slice 0; Broadwell crossed between slices).
func SetDueling(w io.Writer, quick bool) ([]DuelingResult, error) {
	sets := []int{500, 512, 544, 575, 600, 704, 768, 800, 831, 900}
	if quick {
		sets = []int{512, 575, 600, 768, 831}
	}
	// The three adaptive models are probed concurrently, one machine per
	// model; output blocks are buffered and emitted in model order.
	names := []string{"IvyBridge", "Haswell", "Broadwell"}
	out := make([]DuelingResult, len(names))
	blocks := make([]string, len(names))
	err := sched.ForEach(len(names), Workers, func(ni int) error {
		name := names[ni]
		r, cpu, err := newRunner(name, machine.Kernel)
		if err != nil {
			return err
		}
		tool, err := cachetools.New(r)
		if err != nil {
			return err
		}
		slices := []int{0, 1}
		trials := 5 // stochastic leaders need several samples to reveal variance
		if quick {
			trials = 3
		}
		rep, err := tool.FindDedicatedSets(slices, sets, trials)
		if err != nil {
			return err
		}
		res := DuelingResult{CPU: name, Report: rep}
		for k, class := range rep.Class {
			res.Total++
			_, dedicated := cpu.ExpectedL3Policy(k[0], k[1])
			var want cachetools.SetClass
			switch {
			case !dedicated:
				want = cachetools.ClassFollower
			default:
				pol, _ := cpu.ExpectedL3Policy(k[0], k[1])
				if pol == cpu.L3Adaptive.PolicyA {
					want = cachetools.ClassDeterministic
				} else {
					want = cachetools.ClassStochastic
				}
			}
			if class == want {
				res.Correct++
			}
		}
		blocks[ni] = fmt.Sprintf("%s: %d/%d sets classified correctly\n%s",
			name, res.Correct, res.Total, rep.String())
		out[ni] = res
		return nil
	})
	fmt.Fprintln(w, "## E11: set-dueling leader detection (Section VI-C3/VI-D)")
	for _, b := range blocks {
		fmt.Fprint(w, b)
	}
	return out, err
}
