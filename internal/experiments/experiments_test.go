package experiments

import (
	"bytes"
	"io"
	"math"
	"strings"
	"testing"
	"time"

	"nanobench/internal/cachetools"
	"nanobench/internal/sched"
	"nanobench/internal/sim/machine"
)

// The experiments are exercised end-to-end by the benchmark harness in the
// repository root; these tests cover the fast ones and the report
// formatting.

// withWorkers runs fn at each worker count, capturing the experiment
// output, and fails if any count changes a single byte. It is for the
// sequential (non-Parallel) tests only: Workers is package state.
func withWorkers(t *testing.T, counts []int, fn func(w io.Writer) error) []string {
	t.Helper()
	old, oldCache := Workers, resultCache
	defer func() { Workers, resultCache = old, oldCache }()
	var outs []string
	for _, n := range counts {
		Workers = n
		// A fresh cache per worker count: a warm cache would make the
		// byte-equality vacuous (served clones are equal by construction).
		resultCache = sched.NewCache()
		var buf bytes.Buffer
		if err := fn(&buf); err != nil {
			t.Fatalf("workers=%d: %v", n, err)
		}
		outs = append(outs, buf.String())
		if outs[0] != outs[len(outs)-1] {
			t.Errorf("output at %d workers differs from %d workers:\n%s\nvs\n%s",
				n, counts[0], outs[len(outs)-1], outs[0])
		}
	}
	return outs
}

// TestTable1QuickDeterministicAcrossWorkers: the scheduler contract,
// end-to-end — the Table I sweep emits byte-identical reports at any
// worker count.
func TestTable1QuickDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker Table I sweep; run without -short")
	}
	var rows []Table1Row
	withWorkers(t, []int{1, 4}, func(w io.Writer) error {
		var err error
		rows, err = Table1(w, true)
		return err
	})
	if len(rows) != 2 {
		t.Fatalf("quick Table I produced %d rows", len(rows))
	}
	for _, r := range rows {
		if !r.L1OK || !r.L2OK || !r.L3OK {
			t.Errorf("%s: inference failed: L1=%q(%v) L2=%q(%v) L3=%q(%v)",
				r.CPU, r.L1, r.L1OK, r.L2, r.L2OK, r.L3, r.L3OK)
		}
	}
}

// TestFigure1QuickDeterministicAcrossWorkers pins the age-graph sharding
// contract: each (block, fresh-count) group restreams the simulated
// hierarchy to a group-derived RNG stream, so the rendered graph is
// byte-identical whether groups run sequentially or across sibling
// machines.
func TestFigure1QuickDeterministicAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-worker age-graph sweep; run without -short")
	}
	var g *cachetools.AgeGraph
	withWorkers(t, []int{1, 3}, func(w io.Writer) error {
		var err error
		g, err = Figure1(w, true)
		return err
	})
	if g == nil || len(g.BlockIDs) != 12 {
		t.Fatalf("quick Figure 1 graph malformed: %+v", g)
	}
}

// TestInstructionTableQuickDeterministicAcrossWorkers covers the batch
// path of the case-study-I sweep the same way.
func TestInstructionTableQuickDeterministicAcrossWorkers(t *testing.T) {
	var total, latOK, portOK int
	withWorkers(t, []int{1, 4, 16}, func(w io.Writer) error {
		var err error
		total, latOK, portOK, err = InstructionTable(w, true)
		return err
	})
	if total != 20 {
		t.Fatalf("quick sweep measured %d variants", total)
	}
	if latOK < 9 || portOK < 19 {
		t.Errorf("quick sweep agreement dropped: lat %d, ports %d of %d", latOK, portOK, total)
	}
}

func TestLoopVsUnrollShape(t *testing.T) {
	out, err := LoopVsUnroll(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	unroll := out["unroll=100, loop=0"]
	loop := out["unroll=1, loop=100"]
	if math.Abs(unroll-0.5) > 0.05 {
		t.Errorf("unrolled SHL throughput = %.3f cycles/instr, want ~0.5", unroll)
	}
	if loop >= unroll {
		t.Errorf("loop configuration (%.3f) should under-report vs unrolled (%.3f), §III-F", loop, unroll)
	}
}

func TestExampleMatchesPaper(t *testing.T) {
	t.Parallel()
	var sb strings.Builder
	res, err := ExampleL1Latency(&sb)
	if err != nil {
		t.Fatal(err)
	}
	checks := map[string]float64{
		"Instructions retired":        1.00,
		"Core cycles":                 4.00,
		"Reference cycles":            3.52,
		"UOPS_ISSUED.ANY":             1.00,
		"UOPS_DISPATCHED_PORT.PORT_2": 0.50,
		"UOPS_DISPATCHED_PORT.PORT_3": 0.50,
		"MEM_LOAD_RETIRED.L1_HIT":     1.00,
		"MEM_LOAD_RETIRED.L1_MISS":    0.00,
	}
	for name, want := range checks {
		got := res.MustGet(name)
		if math.Abs(got-want) > 0.1 {
			t.Errorf("%s = %.2f, want %.2f", name, got, want)
		}
	}
	if !strings.Contains(sb.String(), "E1") {
		t.Error("missing report header")
	}
}

func TestSerializationShape(t *testing.T) {
	t.Parallel()
	cpuid, lfence, err := Serialization(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cpuid < 20 {
		t.Errorf("CPUID spread %.1f too small; the paper reports hundreds of cycles", cpuid)
	}
	if lfence > 1 {
		t.Errorf("LFENCE spread %.1f; should be stable", lfence)
	}
}

// TestSerializationCounterEquivalence pins the §IV-A1 spreads to the
// exact values the pre-watermark PMU (full cycle-stamped event streams,
// O(history) reads) produced on the same seeds. The watermark-counter
// redesign settles events eagerly but must be observationally identical,
// including the unfenced-RDPMC undercount this experiment measures; any
// drift here means the O(1) accounting changed measurement semantics.
//
// These are explicitly trace-mode pins: the machines under these
// experiments run the default engine, asserted below to be the trace
// tier (block dispatch + schedule replay), which must reproduce the
// stream-counter reference bit-for-bit.
func TestSerializationCounterEquivalence(t *testing.T) {
	t.Parallel()
	if e := new(machine.Machine).Engine(); e != machine.EngineTrace {
		t.Fatalf("default engine = %v, want trace (these values pin trace-mode execution)", e)
	}
	cpuid, lfence, err := Serialization(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	const wantCPUID = 169.39999999999998 // captured from the stream-based PMU
	if cpuid != wantCPUID {
		t.Errorf("CPUID spread = %v, want %v (stream-counter reference)", cpuid, wantCPUID)
	}
	if lfence != 0 {
		t.Errorf("LFENCE spread = %v, want 0 (stream-counter reference)", lfence)
	}
	kernel, user, err := KernelVsUserAccuracy(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if kernel != 0 {
		t.Errorf("kernel spread = %v, want 0 (stream-counter reference)", kernel)
	}
	const wantUser = 1.4218000000000002
	if user != wantUser {
		t.Errorf("user spread = %v, want %v (stream-counter reference)", user, wantUser)
	}
}

func TestNoMemShape(t *testing.T) {
	t.Parallel()
	memHits, noMemHits, err := NoMemAblation(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if noMemHits < 7.5 {
		t.Errorf("noMem hits = %.1f, want 8 (unperturbed)", noMemHits)
	}
	if memHits >= noMemHits {
		t.Errorf("memory mode (%.1f hits) should lose lines to counter writes vs noMem (%.1f)", memHits, noMemHits)
	}
}

func TestKernelVsUserShape(t *testing.T) {
	t.Parallel()
	kernel, user, err := KernelVsUserAccuracy(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if kernel != 0 {
		t.Errorf("kernel spread = %.3f, want 0 (interrupts off, deterministic)", kernel)
	}
	if user <= 0 {
		t.Errorf("user spread = %.3f, want > 0 (timer interrupts)", user)
	}
}

func TestContiguousAllocShape(t *testing.T) {
	t.Parallel()
	fresh, frag, reboot, err := ContiguousAlloc(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !fresh || !frag || !reboot {
		t.Errorf("alloc experiment: fresh=%v fragFail=%v rebootOK=%v", fresh, frag, reboot)
	}
}

func TestPoliciesEquivalent(t *testing.T) {
	t.Parallel()
	if !policiesEquivalent("LRU", "LRU", 8) {
		t.Error("identity")
	}
	if policiesEquivalent("LRU", "FIFO", 8) {
		t.Error("LRU vs FIFO should differ")
	}
	// R0 and R1 with U0 are observationally equivalent (Section VI-B2).
	if !policiesEquivalent("QLRU_H00_M1_R0_U0", "QLRU_H00_M1_R1_U0", 8) {
		t.Error("R0/R1 with U0 should be equivalent")
	}
	if policiesEquivalent("LRU", "NOPE", 8) {
		t.Error("unknown name must not be equivalent")
	}
}

// TestNanoBenchTimingInjectedClock pins E2's clock injection (the detrand
// invariant's sanctioned escape): with a stepped fake clock the reported
// durations are a pure function of the clock sequence, byte-identical on
// every run.
func TestNanoBenchTimingInjectedClock(t *testing.T) {
	t.Parallel()
	var ticks int64
	clock := func() time.Time {
		ticks++
		return time.Unix(0, ticks*int64(time.Millisecond))
	}
	kernel, user, err := NanoBenchTiming(io.Discard, clock)
	if err != nil {
		t.Fatal(err)
	}
	// Each mode reads the clock twice (start, end), one tick apart.
	if kernel != time.Millisecond || user != time.Millisecond {
		t.Errorf("kernel=%v user=%v, want 1ms each from the stepped clock", kernel, user)
	}
	if ticks != 4 {
		t.Errorf("clock read %d times, want 4 (start/end per mode)", ticks)
	}
}
