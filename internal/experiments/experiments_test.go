package experiments

import (
	"io"
	"math"
	"strings"
	"testing"
)

// The experiments are exercised end-to-end by the benchmark harness in the
// repository root; these tests cover the fast ones and the report
// formatting.

func TestExampleMatchesPaper(t *testing.T) {
	var sb strings.Builder
	res, err := ExampleL1Latency(&sb)
	if err != nil {
		t.Fatal(err)
	}
	checks := map[string]float64{
		"Instructions retired":        1.00,
		"Core cycles":                 4.00,
		"Reference cycles":            3.52,
		"UOPS_ISSUED.ANY":             1.00,
		"UOPS_DISPATCHED_PORT.PORT_2": 0.50,
		"UOPS_DISPATCHED_PORT.PORT_3": 0.50,
		"MEM_LOAD_RETIRED.L1_HIT":     1.00,
		"MEM_LOAD_RETIRED.L1_MISS":    0.00,
	}
	for name, want := range checks {
		got := res.MustGet(name)
		if math.Abs(got-want) > 0.1 {
			t.Errorf("%s = %.2f, want %.2f", name, got, want)
		}
	}
	if !strings.Contains(sb.String(), "E1") {
		t.Error("missing report header")
	}
}

func TestSerializationShape(t *testing.T) {
	cpuid, lfence, err := Serialization(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if cpuid < 20 {
		t.Errorf("CPUID spread %.1f too small; the paper reports hundreds of cycles", cpuid)
	}
	if lfence > 1 {
		t.Errorf("LFENCE spread %.1f; should be stable", lfence)
	}
}

func TestNoMemShape(t *testing.T) {
	memHits, noMemHits, err := NoMemAblation(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if noMemHits < 7.5 {
		t.Errorf("noMem hits = %.1f, want 8 (unperturbed)", noMemHits)
	}
	if memHits >= noMemHits {
		t.Errorf("memory mode (%.1f hits) should lose lines to counter writes vs noMem (%.1f)", memHits, noMemHits)
	}
}

func TestKernelVsUserShape(t *testing.T) {
	kernel, user, err := KernelVsUserAccuracy(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if kernel != 0 {
		t.Errorf("kernel spread = %.3f, want 0 (interrupts off, deterministic)", kernel)
	}
	if user <= 0 {
		t.Errorf("user spread = %.3f, want > 0 (timer interrupts)", user)
	}
}

func TestContiguousAllocShape(t *testing.T) {
	fresh, frag, reboot, err := ContiguousAlloc(io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if !fresh || !frag || !reboot {
		t.Errorf("alloc experiment: fresh=%v fragFail=%v rebootOK=%v", fresh, frag, reboot)
	}
}

func TestPoliciesEquivalent(t *testing.T) {
	if !policiesEquivalent("LRU", "LRU", 8) {
		t.Error("identity")
	}
	if policiesEquivalent("LRU", "FIFO", 8) {
		t.Error("LRU vs FIFO should differ")
	}
	// R0 and R1 with U0 are observationally equivalent (Section VI-B2).
	if !policiesEquivalent("QLRU_H00_M1_R0_U0", "QLRU_H00_M1_R1_U0", 8) {
		t.Error("R0/R1 with U0 should be equivalent")
	}
	if policiesEquivalent("LRU", "NOPE", 8) {
		t.Error("unknown name must not be equivalent")
	}
}
