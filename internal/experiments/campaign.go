package experiments

import (
	"context"
	"fmt"
	"io"
	"runtime"

	"nanobench/internal/cachetools"
	"nanobench/internal/sched"
	"nanobench/internal/sim/machine"
	"nanobench/internal/uarch"
)

// Campaign-scale policy inference (Section VI): one sharded run of the
// Table I replacement-policy inference over every requested uarch model
// and cache level, optionally extended with Figure-1-style age graphs of
// the adaptive models' stochastic leader sets. Each (CPU, level) cell
// builds its own runner and tool from the fixed experiment seed, so a
// cell's outcome is a pure function of the cell — never of scheduling —
// and the campaign is byte-identical at any worker count. The jobs API
// exposes campaigns as the "campaign" job kind.

// CampaignOptions selects the campaign's extent. Zero values mean: every
// Table I model, all three levels, the Table I sequence budget and seed,
// the package worker default, and no age graphs.
type CampaignOptions struct {
	// CPUs are uarch model names; empty means every Table I model.
	CPUs []string
	// Levels restricts the probed cache levels; empty means L1, L2, L3.
	Levels []cachetools.Level
	// MaxSequences is the per-cell inference budget (default 120).
	MaxSequences int
	// Seed is the inference sequence-generator seed (default Seed).
	Seed int64
	// Workers bounds the fan-out; 0 falls back to the package Workers
	// variable, then to runtime.NumCPU().
	Workers int
	// AgeGraphs adds, for each adaptive model in the selection, an age
	// graph of its stochastic L3 leader set (set 780).
	AgeGraphs bool
	// AgeMaxFresh / AgeStep / AgeTrials size the age-graph rows
	// (defaults 64 / 16 / 8).
	AgeMaxFresh, AgeStep, AgeTrials int
}

// CampaignCell is one (CPU, level) inference outcome.
type CampaignCell struct {
	CPU       string `json:"cpu"`
	Level     string `json:"level"`
	Slice     int    `json:"slice"`
	Set       int    `json:"set"`
	Policy    string `json:"policy"`
	OK        bool   `json:"ok"`
	Sequences int    `json:"sequences"`
}

// CampaignAgeRow is one adaptive model's stochastic-leader age graph.
type CampaignAgeRow struct {
	CPU   string               `json:"cpu"`
	Slice int                  `json:"slice"`
	Set   int                  `json:"set"`
	Graph *cachetools.AgeGraph `json:"graph"`
}

// CampaignResult is a campaign's full outcome, in deterministic order:
// cells by (CPU catalog order, level), age rows by CPU catalog order.
type CampaignResult struct {
	Cells   []CampaignCell   `json:"cells"`
	AgeRows []CampaignAgeRow `json:"age_rows,omitempty"`
}

// CampaignSize returns the number of progress steps a campaign with these
// options performs (one per cell, one per age row), so job submitters can
// size the progress denominator before running anything.
func CampaignSize(opt CampaignOptions) (int, error) {
	cpus, err := campaignCPUs(opt.CPUs)
	if err != nil {
		return 0, err
	}
	levels := campaignLevels(opt.Levels)
	n := len(cpus) * len(levels)
	if opt.AgeGraphs {
		for _, cpu := range cpus {
			if cpu.L3Adaptive != nil {
				n++
			}
		}
	}
	return n, nil
}

func campaignCPUs(names []string) ([]uarch.CPU, error) {
	if len(names) == 0 {
		return uarch.Table1(), nil
	}
	cpus := make([]uarch.CPU, len(names))
	for i, n := range names {
		cpu, err := uarch.ByName(n)
		if err != nil {
			return nil, err
		}
		cpus[i] = cpu
	}
	return cpus, nil
}

func campaignLevels(levels []cachetools.Level) []cachetools.Level {
	if len(levels) == 0 {
		return []cachetools.Level{cachetools.L1, cachetools.L2, cachetools.L3}
	}
	return levels
}

// ParseLevels converts wire-format level names ("L1", "L2", "L3") to
// cache levels, for callers (the server's campaign job) that accept
// campaign selections as JSON.
func ParseLevels(names []string) ([]cachetools.Level, error) {
	out := make([]cachetools.Level, len(names))
	for i, n := range names {
		switch n {
		case "L1":
			out[i] = cachetools.L1
		case "L2":
			out[i] = cachetools.L2
		case "L3":
			out[i] = cachetools.L3
		default:
			return nil, fmt.Errorf(`unknown cache level %q (want "L1", "L2", or "L3")`, n)
		}
	}
	return out, nil
}

// campaignTarget resolves the probed (slice, set) and the model's injected
// ground-truth policy for one cell, matching Table1's choices: L1 set 37,
// L2 set 300, L3 set 600 — or the deterministic leader set 520 on
// adaptive models.
func campaignTarget(cpu uarch.CPU, level cachetools.Level) (slice, set int, expected string) {
	switch level {
	case cachetools.L1:
		return 0, 37, cpu.L1Policy
	case cachetools.L2:
		return 0, 300, cpu.L2Policy
	default:
		if cpu.L3Adaptive != nil {
			return leaderSlice(cpu), 520, cpu.L3Adaptive.PolicyA
		}
		return 0, 600, cpu.L3Policy
	}
}

// PolicyCampaign runs the campaign. step, if non-nil, is called once per
// finished cell and age row (the jobs API forwards it to the job's
// progress counter). Cells fan out across Workers; each age row instead
// shards its independent (block, fresh-count) groups across sibling tools
// (cachetools.Tool.Workers/NewSibling), keeping the machines saturated
// when the campaign tail narrows to a few adaptive models.
func PolicyCampaign(ctx context.Context, opt CampaignOptions, step func()) (*CampaignResult, error) {
	cpus, err := campaignCPUs(opt.CPUs)
	if err != nil {
		return nil, err
	}
	levels := campaignLevels(opt.Levels)
	maxSeq := opt.MaxSequences
	if maxSeq <= 0 {
		maxSeq = 120
	}
	seed := opt.Seed
	if seed == 0 {
		seed = Seed
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = Workers
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}

	type cellSpec struct {
		cpu   uarch.CPU
		level cachetools.Level
	}
	specs := make([]cellSpec, 0, len(cpus)*len(levels))
	for _, cpu := range cpus {
		for _, level := range levels {
			specs = append(specs, cellSpec{cpu, level})
		}
	}
	cells := make([]CampaignCell, len(specs))
	err = sched.ForEach(len(specs), workers, func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		sp := specs[i]
		r, cpu, err := newRunner(sp.cpu.Name, machine.Kernel)
		if err != nil {
			return err
		}
		tool, err := cachetools.New(r)
		if err != nil {
			return err
		}
		slice, set, expected := campaignTarget(cpu, sp.level)
		res, err := tool.InferPolicyContext(ctx, sp.level, slice, set, cachetools.InferOptions{
			MaxSequences: maxSeq, Seed: seed,
		})
		if err != nil {
			return err
		}
		name := "probabilistic"
		if len(res.Classes) > 0 {
			name, _ = res.Unique()
		}
		cells[i] = CampaignCell{
			CPU:       cpu.Name,
			Level:     sp.level.String(),
			Slice:     slice,
			Set:       set,
			Policy:    name,
			OK:        policiesEquivalent(name, expected, tool.Assoc(sp.level)),
			Sequences: res.SequencesUsed,
		}
		if step != nil {
			step()
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	result := &CampaignResult{Cells: cells}
	if !opt.AgeGraphs {
		return result, nil
	}

	maxFresh, ageStep, trials := opt.AgeMaxFresh, opt.AgeStep, opt.AgeTrials
	if maxFresh <= 0 {
		maxFresh = 64
	}
	if ageStep <= 0 {
		ageStep = 16
	}
	if trials <= 0 {
		trials = 8
	}
	prefix := cachetools.SeqOf(true, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11)
	for _, cpu := range cpus {
		if cpu.L3Adaptive == nil {
			continue
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		name := cpu.Name
		r, _, err := newRunner(name, machine.Kernel)
		if err != nil {
			return nil, err
		}
		tool, err := cachetools.New(r)
		if err != nil {
			return nil, err
		}
		tool.Workers = workers
		tool.NewSibling = func() (*cachetools.Tool, error) {
			sr, _, err := newRunner(name, machine.Kernel)
			if err != nil {
				return nil, err
			}
			return cachetools.New(sr)
		}
		slice, set := bLeaderSlice(cpu), 780
		g, err := tool.AgeGraphFor(cachetools.L3, slice, set, prefix, maxFresh, ageStep, trials)
		if err != nil {
			return nil, err
		}
		result.AgeRows = append(result.AgeRows, CampaignAgeRow{CPU: name, Slice: slice, Set: set, Graph: g})
		if step != nil {
			step()
		}
	}
	return result, nil
}

// FormatCampaign renders a campaign result as the experiments' text
// report format.
func FormatCampaign(w io.Writer, res *CampaignResult) {
	fmt.Fprintln(w, "## Policy-inference campaign")
	fmt.Fprintf(w, "%-12s %-5s %-6s %-5s %-4s %-22s %s\n", "CPU", "Level", "Slice", "Set", "OK", "Policy", "Seqs")
	for _, c := range res.Cells {
		mark := "✗"
		if c.OK {
			mark = "✓"
		}
		fmt.Fprintf(w, "%-12s %-5s %-6d %-5d %-4s %-22s %d\n",
			c.CPU, c.Level, c.Slice, c.Set, mark, c.Policy, c.Sequences)
	}
	for _, a := range res.AgeRows {
		fmt.Fprintf(w, "age graph %s slice %d set %d (trials %d):\n%s",
			a.CPU, a.Slice, a.Set, a.Graph.Trials, a.Graph.Format())
	}
}
