// Package kmod simulates the nanoBench kernel module's interface
// (Section IV-C): while the module is loaded it exposes virtual files under
// /sys/nb/ for configuration, and reading /proc/nanoBench generates the
// benchmark code, runs it, and returns the formatted results.
//
// The shell-script and Python front ends of the real tool talk to these
// files; here the CLI in cmd/nanobench does the same, which keeps the
// user-visible flow identical to the paper's.
package kmod

import (
	"fmt"
	"strconv"
	"strings"

	"nanobench/internal/nano"
	"nanobench/internal/perfcfg"
	"nanobench/internal/sim/machine"
)

// Module is a loaded kernel module instance bound to one machine.
type Module struct {
	runner *nano.Runner

	code     []byte
	codeInit []byte
	cfg      nano.Config
	events   []perfcfg.EventSpec
}

// Load initializes the module on a machine (the machine switches to kernel
// mode, mirroring insmod of the real module).
func Load(m *machine.Machine) (*Module, error) {
	r, err := nano.NewRunner(m, machine.Kernel)
	if err != nil {
		return nil, err
	}
	return &Module{runner: r, cfg: nano.Config{}}, nil
}

// Runner exposes the underlying runner (the Python-interface equivalent).
func (k *Module) Runner() *nano.Runner { return k.runner }

// WriteFile writes to one of the module's virtual configuration files.
// Supported paths (all under /sys/nb/): asm, code (raw machine code),
// asm_init, init, loop_count, unroll_count, n_measurements, warm_up_count,
// agg, basic_mode, no_mem, config.
func (k *Module) WriteFile(path string, data []byte) error {
	name := strings.TrimPrefix(path, "/sys/nb/")
	text := strings.TrimSpace(string(data))
	switch name {
	case "asm":
		code, err := nano.Asm(text)
		if err != nil {
			return fmt.Errorf("kmod: %s: %w", path, err)
		}
		k.code = code
	case "code":
		k.code = append([]byte(nil), data...)
	case "asm_init":
		code, err := nano.Asm(text)
		if err != nil {
			return fmt.Errorf("kmod: %s: %w", path, err)
		}
		k.codeInit = code
	case "init":
		k.codeInit = append([]byte(nil), data...)
	case "loop_count":
		return k.setInt(&k.cfg.LoopCount, text)
	case "unroll_count":
		return k.setInt(&k.cfg.UnrollCount, text)
	case "n_measurements":
		return k.setInt(&k.cfg.NMeasurements, text)
	case "warm_up_count":
		return k.setInt(&k.cfg.WarmUpCount, text)
	case "agg":
		agg, err := nano.ParseAggregate(text)
		if err != nil {
			return err
		}
		k.cfg.Aggregate = agg
	case "basic_mode":
		k.cfg.BasicMode = text == "1" || text == "true"
	case "no_mem":
		k.cfg.NoMem = text == "1" || text == "true"
	case "config":
		evs, err := perfcfg.Parse(string(data))
		if err != nil {
			return err
		}
		k.events = evs
	default:
		return fmt.Errorf("kmod: no such file %q", path)
	}
	return nil
}

func (k *Module) setInt(dst *int, text string) error {
	v, err := strconv.Atoi(text)
	if err != nil {
		return fmt.Errorf("kmod: bad integer %q", text)
	}
	*dst = v
	return nil
}

// ReadFile reads a virtual file. Reading /proc/nanoBench runs the
// configured benchmark and returns the formatted result.
func (k *Module) ReadFile(path string) ([]byte, error) {
	switch strings.TrimPrefix(path, "/sys/nb/") {
	case "/proc/nanoBench", "nanoBench":
		res, err := k.Run()
		if err != nil {
			return nil, err
		}
		return []byte(res.String()), nil
	case "loop_count":
		return []byte(strconv.Itoa(k.cfg.LoopCount)), nil
	case "unroll_count":
		return []byte(strconv.Itoa(k.cfg.UnrollCount)), nil
	case "n_measurements":
		return []byte(strconv.Itoa(k.cfg.NMeasurements)), nil
	case "warm_up_count":
		return []byte(strconv.Itoa(k.cfg.WarmUpCount)), nil
	}
	return nil, fmt.Errorf("kmod: no such file %q", path)
}

// Run evaluates the currently configured benchmark (what reading
// /proc/nanoBench triggers).
func (k *Module) Run() (*nano.Result, error) {
	cfg := k.cfg
	cfg.Code = k.code
	cfg.CodeInit = k.codeInit
	cfg.Events = k.events
	return k.runner.Run(cfg)
}
