package kmod

import (
	"strings"
	"testing"

	"nanobench/internal/uarch"
)

func loadModule(t *testing.T) *Module {
	t.Helper()
	cpu, err := uarch.ByName("Skylake")
	if err != nil {
		t.Fatal(err)
	}
	m, err := cpu.NewMachine(31)
	if err != nil {
		t.Fatal(err)
	}
	k, err := Load(m)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestVirtualFileFlow(t *testing.T) {
	k := loadModule(t)
	// The Section III-A example, through the virtual-file interface.
	steps := []struct{ path, data string }{
		{"/sys/nb/asm", "mov R14, [R14]"},
		{"/sys/nb/asm_init", "mov [R14], R14"},
		{"/sys/nb/unroll_count", "100"},
		{"/sys/nb/n_measurements", "10"},
		{"/sys/nb/warm_up_count", "1"},
		{"/sys/nb/agg", "min"},
		{"/sys/nb/config", "D1.01 MEM_LOAD_RETIRED.L1_HIT\nD1.08 MEM_LOAD_RETIRED.L1_MISS"},
	}
	for _, s := range steps {
		if err := k.WriteFile(s.path, []byte(s.data)); err != nil {
			t.Fatalf("write %s: %v", s.path, err)
		}
	}
	out, err := k.ReadFile("/proc/nanoBench")
	if err != nil {
		t.Fatal(err)
	}
	text := string(out)
	if !strings.Contains(text, "Core cycles: 4.0") {
		t.Errorf("missing L1 latency in output:\n%s", text)
	}
	if !strings.Contains(text, "MEM_LOAD_RETIRED.L1_HIT: 1.00") {
		t.Errorf("missing L1 hit counter:\n%s", text)
	}
}

func TestReadBackConfig(t *testing.T) {
	k := loadModule(t)
	if err := k.WriteFile("/sys/nb/loop_count", []byte("25")); err != nil {
		t.Fatal(err)
	}
	out, err := k.ReadFile("/sys/nb/loop_count")
	if err != nil {
		t.Fatal(err)
	}
	if string(out) != "25" {
		t.Fatalf("loop_count = %q", out)
	}
}

func TestErrors(t *testing.T) {
	k := loadModule(t)
	if err := k.WriteFile("/sys/nb/bogus", []byte("1")); err == nil {
		t.Error("expected error for unknown file")
	}
	if err := k.WriteFile("/sys/nb/asm", []byte("bogus instr")); err == nil {
		t.Error("expected error for bad assembly")
	}
	if err := k.WriteFile("/sys/nb/loop_count", []byte("abc")); err == nil {
		t.Error("expected error for bad integer")
	}
	if err := k.WriteFile("/sys/nb/agg", []byte("bogus")); err == nil {
		t.Error("expected error for bad aggregate")
	}
	if _, err := k.ReadFile("/sys/nb/bogus"); err == nil {
		t.Error("expected error for unknown read")
	}
	// Running with no code configured fails cleanly.
	if _, err := k.Run(); err == nil {
		t.Error("expected error for empty benchmark")
	}
}

func TestRawCodeBytes(t *testing.T) {
	k := loadModule(t)
	// Binary machine-code input (Section III-E): a NOP.
	if err := k.WriteFile("/sys/nb/code", []byte{0x90}); err != nil {
		t.Fatal(err)
	}
	if err := k.WriteFile("/sys/nb/unroll_count", []byte("100")); err != nil {
		t.Fatal(err)
	}
	res, err := k.Run()
	if err != nil {
		t.Fatal(err)
	}
	if v := res.MustGet("Instructions retired"); v < 0.9 || v > 1.1 {
		t.Fatalf("NOP instructions = %.2f", v)
	}
}
