package cachetools

import (
	"context"
	"fmt"
	"sort"
)

// SetClass classifies a cache set in an adaptive cache.
type SetClass byte

// Set classes.
const (
	// ClassFollower marks sets whose behaviour changes with the duel
	// state.
	ClassFollower SetClass = 'F'
	// ClassDeterministic marks dedicated sets with a fixed deterministic
	// policy.
	ClassDeterministic SetClass = 'A'
	// ClassStochastic marks dedicated sets with a fixed non-deterministic
	// (probabilistic-insertion) policy.
	ClassStochastic SetClass = 'B'
)

// DuelingReport is the result of a leader-set scan.
type DuelingReport struct {
	// Class maps (slice, set) to its classification.
	Class map[[2]int]SetClass
}

// DedicatedSets returns the sorted dedicated sets of a slice for one
// class.
func (r *DuelingReport) DedicatedSets(slice int, class SetClass) []int {
	var out []int
	for k, c := range r.Class {
		if k[0] == slice && c == class {
			out = append(out, k[1])
		}
	}
	sort.Ints(out)
	return out
}

// setKey identifies a (slice, set) pair.
type setKey = [2]int

// FindDedicatedSets scans the given L3 sets for dedicated (leader) sets of
// an adaptive cache, following the approach of Section VI-C3 (after Wong,
// extended with per-C-Box support for the Haswell/Broadwell layouts):
//
//  1. A thrashing workload is run in bulk; misses in the leader sets
//     saturate the policy-selection counter to one side, so followers
//     adopt one policy ("state 1").
//  2. Every set is classified by a deterministic-valued discriminating
//     sequence. The minority value cluster contains the leaders of the
//     currently losing policy; the majority cluster holds the winning
//     leaders plus all followers.
//  3. The thrashing workload is re-run only on the majority cluster.
//     Follower misses never move the selection counter, so this drives it
//     through the misses of the enclosed leader sets to the opposite side
//     ("state 2"), flipping the followers.
//  4. Re-classification: sets whose behaviour changed are followers; the
//     invariant ones are dedicated, split into deterministic and
//     stochastic (probabilistic-insertion) policies by their
//     trial-to-trial variance on a recency-sensitive sequence.
//
// The scanned range must contain leader sets of both policies; otherwise
// the duel state cannot be steered and every set reports as dedicated.
func (t *Tool) FindDedicatedSets(slices, sets []int, trials int) (*DuelingReport, error) {
	if trials < 3 {
		trials = 3
	}
	assoc := t.Assoc(L3)

	// Thrash: cyclic over assoc+2 blocks; deterministic hit counts under
	// the QLRU family, with strongly policy-dependent values.
	var th []int
	for r := 0; r < 4; r++ {
		for b := 0; b < assoc+2; b++ {
			th = append(th, b)
		}
	}
	thrash := SeqOf(true, th...)
	// Stochasticity probe: one fill pass, then repeated overflow + probe
	// rounds (the probe of round r refills the set for round r+1). Each
	// overflow insertion is an independent probabilistic age draw, so
	// policies with probabilistic insertion virtually never produce the
	// same hit count twice, while deterministic policies always do. Eight
	// overflow blocks over six rounds push the chance of every sample
	// coinciding below 0.2% per set while keeping the sequence short
	// enough that the generated code stays clear of the measured sets
	// (checkCodeClean).
	var st []int
	for b := 0; b < assoc; b++ {
		st = append(st, b)
	}
	for r := 0; r < 6; r++ {
		for o := 0; o < 8; o++ {
			st = append(st, assoc+o)
		}
		for b := 0; b < assoc; b++ {
			st = append(st, b)
		}
	}
	stochProbe := SeqOf(true, st...)

	all := []setKey{}
	for _, sl := range slices {
		for _, s := range sets {
			all = append(all, setKey{sl, s})
		}
	}

	measure := func(k setKey, seq Seq) (int, error) {
		res, err := t.RunSeq(L3, k[0], k[1], seq.AllMeasured())
		return res.Hits, err
	}

	// classifyWith batches each set's n trials into one nanoBench
	// invocation (RunSeqTrials); the trial-to-trial cache evolution is
	// identical to n sequential measurements.
	classifyWith := func(keys []setKey, seq Seq, n int) (map[setKey][]int, error) {
		out := map[setKey][]int{}
		m := seq.AllMeasured()
		for _, k := range keys {
			res, err := t.RunSeqTrials(context.Background(), L3, k[0], k[1], m, n)
			if err != nil {
				return nil, err
			}
			vals := make([]int, n)
			for i, r := range res {
				vals[i] = r.Hits
			}
			out[k] = vals
		}
		return out, nil
	}

	prime := func(targets []setKey, passes int) error {
		for p := 0; p < passes; p++ {
			for _, k := range targets {
				if _, err := t.RunSeq(L3, k[0], k[1], thrash); err != nil {
					return err
				}
			}
		}
		return nil
	}

	// Phase 1: saturate the duel toward one side, then classify. The
	// classification traffic itself reinforces the saturation (thrashing
	// the losing policy's leaders generates more misses there).
	if err := prime(all, 2); err != nil {
		return nil, err
	}
	th1, err := classifyWith(all, thrash, trials)
	if err != nil {
		return nil, err
	}
	rec1, err := classifyWith(all, stochProbe, trials+1)
	if err != nil {
		return nil, err
	}

	// Majority thrash-value cluster: the winning policy's leaders plus
	// all followers. The minority cluster holds the losing leaders.
	counts := map[int]int{}
	for _, k := range all {
		counts[modeValue(th1[k])]++
	}
	mode, best := 0, -1
	for v, n := range counts {
		if n > best {
			mode, best = v, n
		}
	}
	var majority, minority []setKey
	for _, k := range all {
		if modeValue(th1[k]) == mode {
			majority = append(majority, k)
		} else {
			minority = append(minority, k)
		}
	}

	// Phase 2: flip the duel by thrashing only the majority cluster
	// (follower misses never move the selection counter; the cluster's
	// leader misses do). Prime adaptively until a majority set's
	// discriminator value changes, proving the flip.
	const maxPasses = 48
	flipped := false
	for p := 0; p < maxPasses && !flipped; p++ {
		if err := prime(majority, 1); err != nil {
			return nil, err
		}
		spot := majority[p%len(majority)]
		v, err := measure(spot, thrash)
		if err != nil {
			return nil, err
		}
		if v != modeValue(th1[spot]) {
			flipped = true
		}
	}
	_ = flipped // no followers in range (or none flippable): fall through

	// Re-classify, majority first: measuring the minority (the losing
	// leaders from phase 1) drives the duel back and must come last.
	th2, err := classifyWith(majority, thrash, trials)
	if err != nil {
		return nil, err
	}
	th2min, err := classifyWith(minority, thrash, trials)
	if err != nil {
		return nil, err
	}
	for k, v := range th2min {
		th2[k] = v
	}
	rec2, err := classifyWith(all, stochProbe, trials+1)
	if err != nil {
		return nil, err
	}

	rep := &DuelingReport{Class: map[setKey]SetClass{}}
	for _, k := range all {
		// Followers flip their thrash value between the phases; for the
		// invariant (dedicated) sets, stochasticity is judged over both
		// phases' probe samples together.
		union := append(append([]int{}, rec1[k]...), rec2[k]...)
		switch {
		case modeValue(th1[k]) != modeValue(th2[k]):
			rep.Class[k] = ClassFollower
		case !allEqual(union):
			rep.Class[k] = ClassStochastic
		default:
			rep.Class[k] = ClassDeterministic
		}
	}
	return rep, nil
}

func allEqual(vals []int) bool {
	for _, v := range vals[1:] {
		if v != vals[0] {
			return false
		}
	}
	return true
}

// modeValue returns the most frequent value (ties: the smallest).
func modeValue(vals []int) int {
	counts := map[int]int{}
	for _, v := range vals {
		counts[v]++
	}
	mode, best := 0, -1
	for v, n := range counts {
		if n > best || (n == best && v < mode) {
			mode, best = v, n
		}
	}
	return mode
}

// String summarizes the report as contiguous dedicated ranges per slice.
func (r *DuelingReport) String() string {
	slices := map[int]bool{}
	for k := range r.Class {
		slices[k[0]] = true
	}
	var sl []int
	for s := range slices {
		sl = append(sl, s)
	}
	sort.Ints(sl)
	out := ""
	for _, s := range sl {
		out += fmt.Sprintf("slice %d: deterministic=%v stochastic=%v\n",
			s, ranges(r.DedicatedSets(s, ClassDeterministic)), ranges(r.DedicatedSets(s, ClassStochastic)))
	}
	return out
}

// ranges compresses a sorted int slice into "lo-hi" range strings.
func ranges(v []int) []string {
	var out []string
	for i := 0; i < len(v); {
		j := i
		for j+1 < len(v) && v[j+1] == v[j]+1 {
			j++
		}
		if i == j {
			out = append(out, fmt.Sprintf("%d", v[i]))
		} else {
			out = append(out, fmt.Sprintf("%d-%d", v[i], v[j]))
		}
		i = j + 1
	}
	return out
}
