package cachetools

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// AgeGraph holds the data of a Figure-1-style age graph: for every block
// of an access sequence, the number of trials (out of Trials) in which the
// block still hit after n fresh blocks were accessed.
type AgeGraph struct {
	// FreshCounts are the x-axis values.
	FreshCounts []int `json:"fresh_counts"`
	// Hits[b][k] is the hit count of prefix block b after FreshCounts[k]
	// fresh blocks.
	Hits [][]int `json:"hits"`
	// BlockIDs are the measured prefix blocks, in prefix order.
	BlockIDs []int `json:"block_ids"`
	Trials   int   `json:"trials"`
}

// AgeSample runs one age experiment (Section VI-C2): execute the prefix
// sequence, access fresh distinct blocks, then probe one prefix block and
// report whether it still hits at the target level.
func (t *Tool) AgeSample(level Level, slice, set int, prefix Seq, block, fresh int) (bool, error) {
	maxIdx := 0
	for _, a := range prefix.Accesses {
		if a.Block > maxIdx {
			maxIdx = a.Block
		}
	}
	seq := Seq{WbInvd: prefix.WbInvd}
	seq.Accesses = append(seq.Accesses, prefix.Accesses...)
	for i := range seq.Accesses {
		seq.Accesses[i].Measured = false
	}
	for f := 0; f < fresh; f++ {
		seq.Accesses = append(seq.Accesses, Access{Block: maxIdx + 1 + f})
	}
	seq.Accesses = append(seq.Accesses, Access{Block: block, Measured: true})
	res, err := t.RunSeq(level, slice, set, seq)
	if err != nil {
		return false, err
	}
	return res.Hits > 0, nil
}

// AgeGraphFor measures an age graph for every distinct block of the prefix
// sequence. These graphs are the tool of choice for non-deterministic
// policies (Section VI-C2, Figure 1): each point is the number of trials
// in which the block survived n fresh misses.
//
// Each (block, fresh-count) group is measured independently: the
// simulated hierarchy is first restreamed to an RNG stream derived from
// the group index (so the group's outcome is a pure function of the
// machine seed and the group, not of any previously simulated work), and
// the group's trials run as one batched nanoBench invocation. This makes
// the graph byte-identical at any worker count, so groups shard freely
// across sibling tools when Workers and NewSibling are set.
func (t *Tool) AgeGraphFor(level Level, slice, set int, prefix Seq, maxFresh, step, trials int) (*AgeGraph, error) {
	if step < 1 {
		step = 1
	}
	seen := map[int]bool{}
	var blocks []int
	maxIdx := 0
	for _, a := range prefix.Accesses {
		if !seen[a.Block] {
			seen[a.Block] = true
			blocks = append(blocks, a.Block)
		}
		if a.Block > maxIdx {
			maxIdx = a.Block
		}
	}
	g := &AgeGraph{BlockIDs: blocks, Trials: trials}
	for n := 0; n <= maxFresh; n += step {
		g.FreshCounts = append(g.FreshCounts, n)
	}
	g.Hits = make([][]int, len(blocks))
	for bi := range blocks {
		g.Hits[bi] = make([]int, len(g.FreshCounts))
	}

	type group struct{ bi, ki int }
	var groups []group
	for bi := range blocks {
		for ki := range g.FreshCounts {
			groups = append(groups, group{bi, ki})
		}
	}
	runGroup := func(tt *Tool, gi int) error {
		gr := groups[gi]
		seq := Seq{WbInvd: prefix.WbInvd}
		seq.Accesses = append(seq.Accesses, prefix.Accesses...)
		for i := range seq.Accesses {
			seq.Accesses[i].Measured = false
		}
		for f := 0; f < g.FreshCounts[gr.ki]; f++ {
			seq.Accesses = append(seq.Accesses, Access{Block: maxIdx + 1 + f})
		}
		seq.Accesses = append(seq.Accesses, Access{Block: blocks[gr.bi], Measured: true})
		tt.R.M.Hier.Restream(int64(gi) + 1)
		res, err := tt.RunSeqTrials(context.Background(), level, slice, set, seq, trials)
		if err != nil {
			return err
		}
		hits := 0
		for _, r := range res {
			if r.Hits > 0 {
				hits++
			}
		}
		g.Hits[gr.bi][gr.ki] = hits
		return nil
	}

	workers := t.Workers
	if workers > len(groups) {
		workers = len(groups)
	}
	if workers <= 1 || t.NewSibling == nil {
		for gi := range groups {
			if err := runGroup(t, gi); err != nil {
				return nil, err
			}
		}
		return g, nil
	}

	// Shard groups over sibling tools with an atomic work counter. Every
	// group writes a distinct (bi, ki) cell, and its value is independent
	// of which worker ran it (see above), so the only synchronization
	// needed is the counter and the error slot.
	var next int64
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tt := t
			if w > 0 {
				var err error
				if tt, err = t.NewSibling(); err != nil {
					errs[w] = err
					return
				}
			}
			for {
				gi := int(atomic.AddInt64(&next, 1)) - 1
				if gi >= len(groups) {
					return
				}
				if err := runGroup(tt, gi); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return g, nil
}

// Format renders the graph as a gnuplot-ready table: one row per fresh
// count, one column per block.
func (g *AgeGraph) Format() string {
	var sb strings.Builder
	sb.WriteString("# fresh")
	for _, b := range g.BlockIDs {
		fmt.Fprintf(&sb, "\tB%d", b)
	}
	sb.WriteByte('\n')
	for ki, n := range g.FreshCounts {
		fmt.Fprintf(&sb, "%d", n)
		for bi := range g.BlockIDs {
			fmt.Fprintf(&sb, "\t%d", g.Hits[bi][ki])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// SurvivalAt returns the fraction of trials in which block bi survived n
// fresh blocks (n must be one of the sampled fresh counts).
func (g *AgeGraph) SurvivalAt(bi, n int) (float64, bool) {
	for ki, fc := range g.FreshCounts {
		if fc == n {
			return float64(g.Hits[bi][ki]) / float64(g.Trials), true
		}
	}
	return 0, false
}
