// Package cachetools implements the cache-analysis tools of case study II
// (Section VI): cacheSeq, which measures the hits and misses an access
// sequence generates in a chosen cache set; replacement-policy inference by
// comparing measurements against simulated candidate policies; age graphs
// (Figure 1); permutation-policy verification; and detection of the
// dedicated leader sets of adaptive (set-dueling) caches.
package cachetools

import (
	"context"
	"fmt"

	"nanobench/internal/nano"
	"nanobench/internal/perfcfg"
	"nanobench/internal/sim/machine"
	"nanobench/internal/x86"
)

// Level selects the cache level a tool operates on.
type Level int

// Cache levels.
const (
	L1 Level = 1
	L2 Level = 2
	L3 Level = 3
)

func (l Level) String() string {
	return [4]string{"?", "L1", "L2", "L3"}[l]
}

// Tool runs cache microbenchmarks through the kernel-space nanoBench
// runner. It owns a large physically-contiguous memory area from which it
// draws same-set blocks, and it disables the hardware prefetchers
// (Section IV-A2).
type Tool struct {
	R *nano.Runner

	// Workers bounds the parallelism of shardable campaigns (currently
	// AgeGraphFor): independent (block, fresh-count) groups are
	// distributed over sibling tools. 0 or 1 runs sequentially. Because
	// every group restreams the simulated hierarchy to a group-derived
	// RNG stream first, results are byte-identical at any worker count.
	Workers int
	// NewSibling builds an independent tool on its own machine with the
	// same specification and seed; required for Workers > 1.
	NewSibling func() (*Tool, error)

	// blockCache memoizes block addresses per (level, slice, set).
	blockCache map[blockKey][]uint32
	evictCache map[evictKey][]uint32
	// evictCodeCache memoizes the encoded eviction-load block per target.
	evictCodeCache map[evictKey][]byte
	// sigSuite/sigCache memoize the per-associativity probe suite and each
	// candidate policy's simulated hit-count signature over it (infer.go).
	sigSuite map[int][][]int
	sigCache map[sigKey]string
}

type blockKey struct {
	level Level
	slice int
	set   int
}

type evictKey struct {
	level Level
	phys  uint64
}

// DefaultBigArea is the physically-contiguous region the tool reserves; it
// bounds how many same-set blocks are available (the Figure 1 age graphs
// need >200 blocks in one L3 set and slice).
const DefaultBigArea = 128 << 20

// New prepares a cache-analysis tool on the given machine. The runner must
// be (and is checked to be) in kernel mode: cacheSeq needs WBINVD, the
// pause/resume magic bytes, and uncore counters.
func New(r *nano.Runner) (*Tool, error) {
	if r.Mode() != machine.Kernel {
		return nil, fmt.Errorf("cachetools: kernel-space runner required")
	}
	if r.BigAreaSize() == 0 {
		if err := r.AllocBigArea(DefaultBigArea); err != nil {
			return nil, err
		}
	}
	if err := r.SetPrefetchersEnabled(false); err != nil {
		return nil, err
	}
	return &Tool{
		R:              r,
		blockCache:     map[blockKey][]uint32{},
		evictCache:     map[evictKey][]uint32{},
		evictCodeCache: map[evictKey][]byte{},
		sigSuite:       map[int][][]int{},
		sigCache:       map[sigKey]string{},
	}, nil
}

// geom returns the cache geometry for a level.
func (t *Tool) geom(level Level) (sets, assoc int) {
	h := t.R.M.Hier
	switch level {
	case L1:
		return h.L1D.Geom.Sets(), h.L1D.Geom.Assoc
	case L2:
		return h.L2.Geom.Sets(), h.L2.Geom.Assoc
	default:
		return h.L3[0].Geom.Sets(), h.L3[0].Geom.Assoc
	}
}

// Assoc returns the associativity of a level.
func (t *Tool) Assoc(level Level) int {
	_, a := t.geom(level)
	return a
}

// Sets returns the number of sets (per slice for L3) of a level.
func (t *Tool) Sets(level Level) int {
	s, _ := t.geom(level)
	return s
}

// Slices returns the number of L3 slices.
func (t *Tool) Slices() int { return len(t.R.M.Hier.L3) }

// setOf returns the set index of a physical address at the given level.
func (t *Tool) setOf(level Level, phys uint64) int {
	h := t.R.M.Hier
	switch level {
	case L1:
		return h.L1D.SetIndex(phys)
	case L2:
		return h.L2.SetIndex(phys)
	default:
		return h.L3[0].SetIndex(phys)
	}
}

// Blocks returns n distinct virtual line addresses inside the big area
// that map to the given set (and, for L3, slice).
func (t *Tool) Blocks(level Level, slice, set, n int) ([]uint32, error) {
	key := blockKey{level, slice, set}
	have := t.blockCache[key]
	if len(have) >= n {
		return have[:n], nil
	}
	h := t.R.M.Hier
	size := t.R.BigAreaSize()
	base, ok := t.R.BigAreaPhys(0)
	if !ok {
		return nil, fmt.Errorf("cachetools: big area not mapped")
	}
	// Lines of one set recur at a fixed stride (set counts are powers of
	// two), so only every sets-th line is a candidate; the slice hash is
	// the only per-candidate filter left for L3.
	sets, _ := t.geom(level)
	stride := uint64(sets) * 64
	start := uint64(0)
	for ; start < stride && start < size; start += 64 {
		if t.setOf(level, base+start) == set {
			break
		}
	}
	var out []uint32
	for off := start; off < size && len(out) < n; off += stride {
		phys := base + off
		if t.setOf(level, phys) != set {
			continue
		}
		if level == L3 && h.Slice(phys) != slice {
			continue
		}
		out = append(out, nano.BigAreaBase+uint32(off))
	}
	if len(out) < n {
		return nil, fmt.Errorf("cachetools: only %d of %d blocks available for %s set %d slice %d (grow the big area)",
			len(out), n, level, set, slice)
	}
	t.blockCache[key] = out
	return out, nil
}

// evictAddrs returns the virtual addresses of the lines that evict the
// block at phys from the levels above the target level:
//
//	L2 target: lines in the same L1 set but a different L2 set
//	L3 target: lines in the same L2 set (hence same L1 set) but a
//	           different L3 set
//
// These accesses are inserted, with counting paused, between consecutive
// same-set accesses so that every measured access actually reaches the
// target level (Section VI-C).
func (t *Tool) evictAddrs(level Level, physTarget uint64) ([]uint32, error) {
	key := evictKey{level, physTarget >> 6}
	if addrs, ok := t.evictCache[key]; ok {
		return addrs, nil
	}
	h := t.R.M.Hier
	var want int
	match := func(p uint64) bool { return false }
	switch level {
	case L1:
		t.evictCache[key] = nil
		return nil, nil
	case L2:
		want = 2 * h.L1D.Geom.Assoc
		match = func(p uint64) bool {
			return h.L1D.SetIndex(p) == h.L1D.SetIndex(physTarget) &&
				h.L2.SetIndex(p) != h.L2.SetIndex(physTarget)
		}
	case L3:
		// The same lines must displace the target from both the L1 and
		// the L2 (they share the L2 set, hence the L1 set). They must not
		// land in the measured L3 set of the measured slice — a different
		// set or a different slice both qualify (on models whose per-slice
		// L3 has exactly the L2's index bits, only the slice can differ).
		want = 2 * h.L1D.Geom.Assoc
		if w := 2 * h.L2.Geom.Assoc; w > want {
			want = w
		}
		tSet := h.L3[0].SetIndex(physTarget)
		tSlice := h.Slice(physTarget)
		match = func(p uint64) bool {
			return h.L2.SetIndex(p) == h.L2.SetIndex(physTarget) &&
				!(h.L3[0].SetIndex(p) == tSet && h.Slice(p) == tSlice)
		}
	}
	size := t.R.BigAreaSize()
	base, _ := t.R.BigAreaPhys(0)
	// Every candidate shares the target's L1 (L2 target) or L2 (L3
	// target) set, so candidates recur at that cache's set stride
	// starting from the target's own offset; match stays the correctness
	// filter over the few remaining candidates.
	stride := uint64(h.L1D.Geom.Sets()) * 64
	if level == L3 {
		stride = uint64(h.L2.Geom.Sets()) * 64
	}
	start := (physTarget - base) % stride
	var out []uint32
	for off := start; off < size && len(out) < want; off += stride {
		if match(base + off) {
			out = append(out, nano.BigAreaBase+uint32(off))
		}
	}
	if len(out) < want {
		return nil, fmt.Errorf("cachetools: only %d of %d eviction lines for %s", len(out), want, level)
	}
	t.evictCache[key] = out
	return out, nil
}

// checkCodeClean verifies that no line of the generated benchmark (plus
// the measurement prologue/epilogue nanoBench adds) maps to the measured
// set: code fetches fill the unified L2/L3 and would perturb it.
func (t *Tool) checkCodeClean(level Level, slice, set, codeLen int) error {
	h := t.R.M.Hier
	const prologueSlack = 2048 // nanoBench save/init/read/restore code
	for off := 0; off < codeLen+prologueSlack; off += 64 {
		phys, ok := t.R.M.Mem.Translate(nano.CodeBase + uint32(off))
		if !ok {
			break
		}
		if t.setOf(level, phys) != set {
			continue
		}
		if level == L3 && h.Slice(phys) != slice {
			continue
		}
		return fmt.Errorf("cachetools: generated code maps to measured %s set %d (slice %d); choose a different set",
			level, set, slice)
	}
	return nil
}

// hitEventFor returns the counter configuration measuring hits at a level.
func hitEventFor(level Level) (perfcfg.EventSpec, string) {
	switch level {
	case L1:
		return perfcfg.EventSpec{Kind: perfcfg.Core, EvtSel: 0xD1, Umask: 0x01, Name: "HITS"}, "HITS"
	case L2:
		return perfcfg.EventSpec{Kind: perfcfg.Core, EvtSel: 0xD1, Umask: 0x02, Name: "HITS"}, "HITS"
	default:
		return perfcfg.EventSpec{Kind: perfcfg.Core, EvtSel: 0xD1, Umask: 0x04, Name: "HITS"}, "HITS"
	}
}

// loadTemplate is the encoding of "MOV RBX, [abs addr]" with the 32-bit
// absolute address at loadAddrOff, computed once at init. encodeLoad runs
// on the sequence-generation hot path (every access of every trial emits
// one to ~32 of these), so it patches the template instead of re-running
// the instruction encoder.
var (
	loadTemplate []byte
	loadAddrOff  int
)

func init() {
	a, err := x86.EncodeInstr(nil, x86.I(x86.MOV, x86.RBX, x86.MemAt(0x11223344)))
	if err != nil {
		panic(err)
	}
	b, err := x86.EncodeInstr(nil, x86.I(x86.MOV, x86.RBX, x86.MemAt(0x55667788)))
	if err != nil {
		panic(err)
	}
	if len(a) != len(b) || len(a) < 4 {
		panic("cachetools: absolute-load encoding is not fixed-length")
	}
	// The encodings differ exactly in the 4 displacement bytes.
	off := -1
	for i := range a {
		if a[i] != b[i] {
			if off == -1 {
				off = i
			} else if i >= off+4 {
				panic("cachetools: absolute-load displacement not contiguous")
			}
		}
	}
	le := func(c []byte, v uint32) bool {
		return c[off] == byte(v) && c[off+1] == byte(v>>8) &&
			c[off+2] == byte(v>>16) && c[off+3] == byte(v>>24)
	}
	if off < 0 || off+4 > len(a) || !le(a, 0x11223344) || !le(b, 0x55667788) {
		panic("cachetools: cannot locate disp32 in absolute-load encoding")
	}
	loadTemplate, loadAddrOff = a, off
}

// encodeLoad appends "MOV RBX, [abs addr]" (RBX is not reserved in noMem
// mode) by patching the pre-encoded template.
func encodeLoad(code []byte, addr uint32) []byte {
	n := len(code)
	code = append(code, loadTemplate...)
	code[n+loadAddrOff] = byte(addr)
	code[n+loadAddrOff+1] = byte(addr >> 8)
	code[n+loadAddrOff+2] = byte(addr >> 16)
	code[n+loadAddrOff+3] = byte(addr >> 24)
	return code
}

// SeqResult reports one cacheSeq evaluation.
type SeqResult struct {
	Hits     int // hits at the target level among measured accesses
	Measured int // number of measured accesses
}

// Misses returns the number of measured accesses that missed.
func (r SeqResult) Misses() int { return r.Measured - r.Hits }

// RunSeq evaluates an access sequence in the given set (and slice, for
// L3). It generates the microbenchmark — WBINVD and inter-access
// higher-level evictions with counting paused, measured accesses with
// counting enabled — and runs it through kernel-space nanoBench
// (Section VI-C).
func (t *Tool) RunSeq(level Level, slice, set int, seq Seq) (SeqResult, error) {
	return t.RunSeqContext(context.Background(), level, slice, set, seq)
}

// RunSeqContext is RunSeq bounded by a context; long sequence campaigns
// (policy inference, age graphs) pass their caller's context through it.
func (t *Tool) RunSeqContext(ctx context.Context, level Level, slice, set int, seq Seq) (SeqResult, error) {
	res, err := t.RunSeqTrials(ctx, level, slice, set, seq, 1)
	if err != nil {
		return SeqResult{}, err
	}
	return res[0], nil
}

// seqCode generates the microbenchmark for an access sequence: WBINVD and
// inter-access higher-level evictions with counting paused, measured
// accesses with counting enabled (Section VI-C).
func (t *Tool) seqCode(level Level, slice, set int, seq Seq) (code []byte, measured int, err error) {
	maxIdx := -1
	for _, a := range seq.Accesses {
		if a.Block > maxIdx {
			maxIdx = a.Block
		}
	}
	if maxIdx < 0 {
		return nil, 0, fmt.Errorf("cachetools: empty access sequence")
	}
	blocks, err := t.Blocks(level, slice, set, maxIdx+1)
	if err != nil {
		return nil, 0, err
	}
	// evictCode is the pre-encoded block of loads that displaces the
	// target set's lines from the higher-level caches: one pass over
	// twice the upper-level associativity in distinct lines displaces
	// them under any of the modelled policies (validated by the
	// cross-check tests against ground-truth simulation). It is emitted
	// between consecutive accesses, so it dominates the generated code;
	// encode it once per (level, target) and memoize.
	var evictCode []byte
	if level > L1 {
		phys, _ := t.R.M.Mem.Translate(blocks[0])
		key := evictKey{level, phys >> 6}
		var ok bool
		if evictCode, ok = t.evictCodeCache[key]; !ok {
			evict, err := t.evictAddrs(level, phys)
			if err != nil {
				return nil, 0, err
			}
			for _, e := range evict {
				evictCode = encodeLoad(evictCode, e)
			}
			t.evictCodeCache[key] = evictCode
		}
	}

	code = make([]byte, 0, len(nano.PauseCountingBytes)+
		len(seq.Accesses)*(len(evictCode)+len(loadTemplate)+2*len(nano.PauseCountingBytes))+
		len(nano.ResumeCountingBytes)+16)
	code = append(code, nano.PauseCountingBytes...)
	if seq.WbInvd {
		code, err = x86.EncodeInstr(code, x86.I(x86.WBINVD))
		if err != nil {
			return nil, 0, err
		}
	}
	for _, a := range seq.Accesses {
		code = append(code, evictCode...)
		if a.Measured {
			measured++
			code = append(code, nano.ResumeCountingBytes...)
			code = encodeLoad(code, blocks[a.Block])
			code = append(code, nano.PauseCountingBytes...)
		} else {
			code = encodeLoad(code, blocks[a.Block])
		}
	}
	code = append(code, nano.ResumeCountingBytes...)

	// Instruction fetches travel through the unified L2 and L3: refuse to
	// measure a set the generated code itself maps to (the paper's
	// experiments use sets 512-831, far from the low sets the code region
	// occupies).
	if level > L1 {
		if err := t.checkCodeClean(level, slice, set, len(code)); err != nil {
			return nil, 0, err
		}
	}
	return code, measured, nil
}

// RunSeqTrials evaluates an access sequence n times in one nanoBench
// invocation (NMeasurements=n) and returns the per-trial results in run
// order. Because the benchmark's B-variant is empty in basic mode, a
// batch of n trials drives the simulated caches through exactly the same
// access stream as n sequential RunSeq calls: per-set policy RNG streams
// advance identically, so the per-trial hit counts are decision-identical
// to unbatched runs. Batching amortizes code generation, result handling,
// and runner round-trips across the trials — the bulk of the cost of
// trial-repeated campaigns (set-dueling classification, age graphs).
func (t *Tool) RunSeqTrials(ctx context.Context, level Level, slice, set int, seq Seq, n int) ([]SeqResult, error) {
	if n < 1 {
		return nil, fmt.Errorf("cachetools: trial count %d", n)
	}
	code, measured, err := t.seqCode(level, slice, set, seq)
	if err != nil {
		return nil, err
	}
	ev, name := hitEventFor(level)
	cfg := nano.Config{
		Code:          code,
		UnrollCount:   1,
		NMeasurements: n,
		BasicMode:     true,
		NoMem:         true,
		Aggregate:     nano.Min,
		Events:        []perfcfg.EventSpec{ev},
	}
	// The seq-replay fast path returns the same per-trial hit samples
	// bit-identically while skipping instruction simulation for verified
	// images; ok=false falls back to the full nanoBench run.
	samples, ok, err := t.R.RunSeqHits(ctx, cfg)
	if err != nil {
		return nil, err
	}
	if !ok {
		res, err := t.R.RunContext(ctx, cfg)
		if err != nil {
			return nil, err
		}
		m, found := res.Lookup(name)
		if !found {
			return nil, fmt.Errorf("cachetools: hit counter missing")
		}
		samples = m.Samples
	}
	if len(samples) != n {
		return nil, fmt.Errorf("cachetools: %d trial samples, want %d", len(samples), n)
	}
	out := make([]SeqResult, n)
	for k, s := range samples {
		out[k] = SeqResult{Hits: int(s + 0.5), Measured: measured}
	}
	return out, nil
}
