package cachetools

import (
	"fmt"
	"strconv"
	"strings"
)

// Access is one element of a cacheSeq access sequence: the index of an
// abstract same-set block, and whether the access is included in the
// performance-counter measurement (Section VI-C: "for each element of the
// access sequence, it is possible to specify whether the corresponding
// access should be included in the measurement results").
type Access struct {
	Block    int
	Measured bool
}

// Seq is a cacheSeq access sequence.
type Seq struct {
	// WbInvd executes WBINVD at the start of the sequence, flushing all
	// caches (a privileged instruction; kernel mode only).
	WbInvd   bool
	Accesses []Access
}

// ParseSeq parses the textual sequence syntax used throughout the paper's
// examples, e.g. "<wbinvd> B0 B1 B2? B0?": an optional <wbinvd> prefix,
// then blocks named B<i>; a trailing '?' marks the access as measured.
func ParseSeq(s string) (Seq, error) {
	var seq Seq
	for _, tok := range strings.Fields(s) {
		lower := strings.ToLower(tok)
		if lower == "<wbinvd>" {
			if len(seq.Accesses) > 0 {
				return seq, fmt.Errorf("cachetools: <wbinvd> must come first in %q", s)
			}
			seq.WbInvd = true
			continue
		}
		measured := false
		if strings.HasSuffix(tok, "?") {
			measured = true
			tok = tok[:len(tok)-1]
		}
		if len(tok) < 2 || (tok[0] != 'B' && tok[0] != 'b') {
			return seq, fmt.Errorf("cachetools: bad token %q (want B<i> or B<i>?)", tok)
		}
		idx, err := strconv.Atoi(tok[1:])
		if err != nil || idx < 0 {
			return seq, fmt.Errorf("cachetools: bad block index in %q", tok)
		}
		seq.Accesses = append(seq.Accesses, Access{Block: idx, Measured: measured})
	}
	if len(seq.Accesses) == 0 {
		return seq, fmt.Errorf("cachetools: empty sequence %q", s)
	}
	return seq, nil
}

// MustParseSeq is ParseSeq that panics on error.
func MustParseSeq(s string) Seq {
	seq, err := ParseSeq(s)
	if err != nil {
		panic(err)
	}
	return seq
}

// String renders the sequence in the paper's syntax.
func (s Seq) String() string {
	var sb strings.Builder
	if s.WbInvd {
		sb.WriteString("<wbinvd>")
	}
	for _, a := range s.Accesses {
		if sb.Len() > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "B%d", a.Block)
		if a.Measured {
			sb.WriteByte('?')
		}
	}
	return sb.String()
}

// Blocks returns the block indices referenced by the sequence, as a plain
// int slice (the form the policy simulators consume).
func (s Seq) Blocks() []int {
	out := make([]int, len(s.Accesses))
	for i, a := range s.Accesses {
		out[i] = a.Block
	}
	return out
}

// AllMeasured returns a copy of the sequence with every access measured.
func (s Seq) AllMeasured() Seq {
	out := Seq{WbInvd: s.WbInvd, Accesses: append([]Access(nil), s.Accesses...)}
	for i := range out.Accesses {
		out.Accesses[i].Measured = true
	}
	return out
}

// SeqOf builds a sequence from block indices (all unmeasured) with an
// optional WBINVD prefix.
func SeqOf(wbinvd bool, blocks ...int) Seq {
	s := Seq{WbInvd: wbinvd}
	for _, b := range blocks {
		s.Accesses = append(s.Accesses, Access{Block: b})
	}
	return s
}
