package cachetools

import (
	"fmt"

	"nanobench/internal/sim/policy"
)

// PermCheck is the result of verifying a permutation-policy model against
// hardware-counter measurements (Section VI-C1, first tool; the algorithm
// family of Abel & Reineke, RTAS 2013).
type PermCheck struct {
	// Positions is the number of hit positions verified (plus the base
	// fill state).
	Positions int
	// Mismatches lists human-readable descriptions of deviations.
	Mismatches []string
}

// OK reports whether the model explained every measurement.
func (p *PermCheck) OK() bool { return len(p.Mismatches) == 0 }

// VerifyPermutations validates a permutation-policy specification against
// the cache: for the base fill state and for the state after a hit at each
// order position, it measures the eviction age of every filled block (via
// fresh-miss elimination experiments) and compares with the model's
// prediction.
//
// The RTAS'13 paper searches for the permutations; here the candidate
// produced by InferPolicy is verified instead, which exercises the same
// measurements (this substitution is recorded in DESIGN.md).
func (t *Tool) VerifyPermutations(level Level, slice, set int, perms policy.Perms) (*PermCheck, error) {
	assoc := perms.Assoc
	check := &PermCheck{}

	fill := make([]int, assoc)
	for i := range fill {
		fill[i] = i
	}

	// verifyState measures the eviction ages of blocks 0..assoc-1 after
	// running prefix, and compares them with the model.
	verifyState := func(label string, prefix []int) error {
		model := policy.NewPermutation("model", perms)
		want := policy.EliminationOrder(model, prefix, assoc+2)
		for b := 0; b < assoc; b++ {
			// Eviction age of block b: smallest n such that b misses
			// after n fresh blocks.
			age := -1
			for n := 1; n <= assoc+1; n++ {
				hit, err := t.AgeSample(level, slice, set, SeqOf(true, prefix...), b, n)
				if err != nil {
					return err
				}
				if !hit {
					age = n
					break
				}
			}
			if want[b] != age {
				check.Mismatches = append(check.Mismatches,
					fmt.Sprintf("%s: block %d evicted after %d fresh misses, model predicts %d",
						label, b, age, want[b]))
			}
		}
		return nil
	}

	if err := verifyState("fill", fill); err != nil {
		return nil, err
	}
	check.Positions++

	// One hit at every position of the just-filled state.
	model := policy.NewPermutation("model", perms)
	policy.SimulateSeq(model, fill)
	for pos := 0; pos < assoc; pos++ {
		// Determine which block sits at order position pos in the model
		// by testing each block's hit there... the permutation spec is
		// position-based, so replay the fill on a fresh model instance
		// and hit block b; blocks are identified directly.
		prefix := append(append([]int{}, fill...), pos)
		if err := verifyState(fmt.Sprintf("hit B%d after fill", pos), prefix); err != nil {
			return nil, err
		}
		check.Positions++
	}
	return check, nil
}
