package cachetools

import (
	"math/rand"
	"reflect"
	"testing"

	"nanobench/internal/nano"
	"nanobench/internal/sim/machine"
	"nanobench/internal/sim/policy"
	"nanobench/internal/uarch"
)

// newTool builds a tool on the given CPU model with a smaller big area
// (tests never need the full Figure-1 block count).
func newTool(t *testing.T, cpuName string) *Tool {
	t.Helper()
	cpu, err := uarch.ByName(cpuName)
	if err != nil {
		t.Fatal(err)
	}
	m, err := cpu.NewMachine(11)
	if err != nil {
		t.Fatal(err)
	}
	r, err := nano.NewRunner(m, machine.Kernel)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.AllocBigArea(32 << 20); err != nil {
		t.Fatal(err)
	}
	tool, err := New(r)
	if err != nil {
		t.Fatal(err)
	}
	return tool
}

func TestParseSeq(t *testing.T) {
	seq, err := ParseSeq("<wbinvd> B0 B1 B2? b0?")
	if err != nil {
		t.Fatal(err)
	}
	want := Seq{WbInvd: true, Accesses: []Access{
		{0, false}, {1, false}, {2, true}, {0, true},
	}}
	if !reflect.DeepEqual(seq, want) {
		t.Fatalf("ParseSeq = %+v", seq)
	}
	if seq.String() != "<wbinvd> B0 B1 B2? B0?" {
		t.Fatalf("String() = %q", seq.String())
	}
	for _, bad := range []string{"", "X1", "B", "B-1", "B0 <wbinvd>"} {
		if _, err := ParseSeq(bad); err == nil {
			t.Errorf("ParseSeq(%q): expected error", bad)
		}
	}
}

func TestBlocksDistinctAndMapped(t *testing.T) {
	tool := newTool(t, "Skylake")
	for _, lvl := range []Level{L1, L2, L3} {
		set := 20
		if lvl != L1 {
			set = 520
		}
		blocks, err := tool.Blocks(lvl, 0, set, 12)
		if err != nil {
			t.Fatalf("%s: %v", lvl, err)
		}
		seen := map[uint32]bool{}
		for _, b := range blocks {
			if seen[b] {
				t.Fatalf("%s: duplicate block %#x", lvl, b)
			}
			seen[b] = true
			phys, ok := tool.R.M.Mem.Translate(b)
			if !ok {
				t.Fatalf("%s: unmapped block %#x", lvl, b)
			}
			if got := tool.setOf(lvl, phys); got != set {
				t.Fatalf("%s: block %#x in set %d, want %d", lvl, b, got, set)
			}
			if lvl == L3 {
				if s := tool.R.M.Hier.Slice(phys); s != 0 {
					t.Fatalf("block %#x in slice %d, want 0", b, s)
				}
			}
		}
	}
}

func TestRunSeqBasicHit(t *testing.T) {
	tool := newTool(t, "Skylake")
	res, err := tool.RunSeq(L1, 0, 20, MustParseSeq("<wbinvd> B0 B0? B1? B0?"))
	if err != nil {
		t.Fatal(err)
	}
	// B0 hit, B1 cold miss, B0 hit again.
	if res.Hits != 2 || res.Measured != 3 {
		t.Fatalf("RunSeq = %+v, want 2 hits of 3", res)
	}
}

// crossCheck compares hardware-counter measurements with the pure policy
// simulation of the ground-truth policy, on a batch of random sequences —
// the key validation that cacheSeq observes exactly the modelled policy.
func crossCheck(t *testing.T, tool *Tool, level Level, slice, set int, groundTruth string, seqs, seqLen int) {
	t.Helper()
	assoc := tool.Assoc(level)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < seqs; i++ {
		var blocks []int
		for j := 0; j < seqLen; j++ {
			blocks = append(blocks, rng.Intn(assoc+3))
		}
		seq := SeqOf(true, blocks...).AllMeasured()
		res, err := tool.RunSeq(level, slice, set, seq)
		if err != nil {
			t.Fatal(err)
		}
		ref := policy.MustNew(groundTruth, assoc, rand.New(rand.NewSource(1)))
		want := policy.CountHits(ref, blocks)
		if res.Hits != want {
			t.Fatalf("%s seq %d (%v): measured %d hits, ground-truth %s predicts %d",
				level, i, blocks, res.Hits, groundTruth, want)
		}
	}
}

func TestCrossCheckL1(t *testing.T) {
	tool := newTool(t, "Skylake")
	crossCheck(t, tool, L1, 0, 37, "PLRU", 8, 20)
}

func TestCrossCheckL2(t *testing.T) {
	if testing.Short() {
		t.Skip("slow cache experiment; run without -short")
	}
	tool := newTool(t, "Skylake")
	crossCheck(t, tool, L2, 0, 520, "QLRU_H00_M1_R2_U1", 6, 12)
}

func TestCrossCheckL3(t *testing.T) {
	if testing.Short() {
		t.Skip("slow cache experiment; run without -short")
	}
	tool := newTool(t, "Skylake")
	crossCheck(t, tool, L3, 1, 600, "QLRU_H11_M1_R0_U0", 5, 24)
}

func TestCrossCheckL3Nehalem(t *testing.T) {
	tool := newTool(t, "Nehalem")
	crossCheck(t, tool, L3, 0, 700, "MRU", 4, 24)
}

func TestCodeCleanGuard(t *testing.T) {
	tool := newTool(t, "Skylake")
	// Sets near 0 collide with the code region's cache lines.
	_, err := tool.RunSeq(L3, 0, 1, MustParseSeq("<wbinvd> B0 B0?"))
	if err == nil {
		t.Skip("code region does not cover set 1 on this layout")
	}
}

func TestInferPolicyL1(t *testing.T) {
	tool := newTool(t, "Skylake")
	res, err := tool.InferPolicy(L1, 0, 37, InferOptions{MaxSequences: 60, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Contains("PLRU") {
		t.Fatalf("PLRU not among matches: %v", res.Classes)
	}
	if len(res.Classes) != 1 {
		t.Fatalf("inference not unique: %v", res.Classes)
	}
}

func TestInferPolicyL2Skylake(t *testing.T) {
	tool := newTool(t, "Skylake")
	res, err := tool.InferPolicy(L2, 0, 520, InferOptions{MaxSequences: 60, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Contains("QLRU_H00_M1_R2_U1") {
		t.Fatalf("ground truth not among matches: %v", res.Classes)
	}
	if len(res.Classes) != 1 {
		t.Fatalf("inference not unique: %v", res.Classes)
	}
}

func TestInferPolicyRejectsWrongCandidates(t *testing.T) {
	tool := newTool(t, "Skylake")
	// Against an L1 PLRU cache, a candidate list without PLRU must end up
	// empty.
	res, err := tool.InferPolicy(L1, 0, 37, InferOptions{
		MaxSequences: 30, Seed: 5,
		Candidates: []string{"LRU", "FIFO", "MRU"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Matches()) != 0 {
		t.Fatalf("expected no survivors, got %v", res.Classes)
	}
}

func TestAgeSampleL1(t *testing.T) {
	tool := newTool(t, "Skylake")
	prefix := MustParseSeq("<wbinvd> B0 B1 B2 B3 B4 B5 B6 B7")
	// Immediately after the fill, every block hits (0 fresh blocks).
	hit, err := tool.AgeSample(L1, 0, 37, prefix, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("block 7 should hit with 0 fresh blocks")
	}
	// After assoc fresh blocks, the first-filled block is long gone.
	hit, err = tool.AgeSample(L1, 0, 37, prefix, 0, 8)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("block 0 should be evicted after 8 fresh blocks")
	}
}

func TestAgeGraphShape(t *testing.T) {
	tool := newTool(t, "Skylake")
	prefix := MustParseSeq("<wbinvd> B0 B1 B2 B3 B4 B5 B6 B7")
	g, err := tool.AgeGraphFor(L1, 0, 37, prefix, 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.BlockIDs) != 8 || len(g.FreshCounts) != 5 {
		t.Fatalf("graph shape: %d blocks, %d points", len(g.BlockIDs), len(g.FreshCounts))
	}
	// Survival is monotone for PLRU: full at n=0, empty at n=8.
	for bi := range g.BlockIDs {
		if g.Hits[bi][0] != g.Trials {
			t.Fatalf("block %d: %d/%d hits at n=0", bi, g.Hits[bi][0], g.Trials)
		}
		if g.Hits[bi][len(g.FreshCounts)-1] != 0 {
			t.Fatalf("block %d still alive after 8 fresh blocks", bi)
		}
	}
	if s := g.Format(); len(s) == 0 {
		t.Fatal("empty format")
	}
	if v, ok := g.SurvivalAt(0, 0); !ok || v != 1.0 {
		t.Fatalf("SurvivalAt(0,0) = %v, %v", v, ok)
	}
}

func TestVerifyPermutationsPLRU(t *testing.T) {
	if testing.Short() {
		t.Skip("slow cache experiment; run without -short")
	}
	tool := newTool(t, "Skylake")
	perms, err := policy.PLRUPerms(8)
	if err != nil {
		t.Fatal(err)
	}
	check, err := tool.VerifyPermutations(L1, 0, 37, perms)
	if err != nil {
		t.Fatal(err)
	}
	if !check.OK() {
		t.Fatalf("PLRU permutations rejected: %v", check.Mismatches)
	}
	// The LRU permutations must NOT verify against a PLRU cache.
	check, err = tool.VerifyPermutations(L1, 0, 37, policy.LRUPerms(8))
	if err != nil {
		t.Fatal(err)
	}
	if check.OK() {
		t.Fatal("LRU permutations wrongly verified against a PLRU cache")
	}
}

func TestFindDedicatedSetsIvyBridge(t *testing.T) {
	if testing.Short() {
		t.Skip("slow cache experiment; run without -short")
	}
	tool := newTool(t, "IvyBridge")
	sets := []int{500, 512, 540, 575, 600, 768, 800, 831, 900}
	rep, err := tool.FindDedicatedSets([]int{0}, sets, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []int{512, 540, 575} {
		if got := rep.Class[[2]int{0, s}]; got != ClassDeterministic {
			t.Errorf("set %d: class %c, want A (deterministic leader)", s, got)
		}
	}
	for _, s := range []int{768, 800, 831} {
		if got := rep.Class[[2]int{0, s}]; got != ClassStochastic {
			t.Errorf("set %d: class %c, want B (stochastic leader)", s, got)
		}
	}
	for _, s := range []int{500, 600, 900} {
		if got := rep.Class[[2]int{0, s}]; got != ClassFollower {
			t.Errorf("set %d: class %c, want F (follower)", s, got)
		}
	}
	if rep.String() == "" {
		t.Error("empty report")
	}
}

func TestDuelingHaswellSliceDifference(t *testing.T) {
	if testing.Short() {
		t.Skip("slow cache experiment; run without -short")
	}
	tool := newTool(t, "Haswell")
	// Haswell's dedicated sets exist only in slice 0 (Section VI-D).
	rep, err := tool.FindDedicatedSets([]int{0, 1}, []int{520, 780}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Class[[2]int{0, 520}]; got != ClassDeterministic {
		t.Errorf("slice 0 set 520: %c, want A", got)
	}
	if got := rep.Class[[2]int{0, 780}]; got != ClassStochastic {
		t.Errorf("slice 0 set 780: %c, want B", got)
	}
	for _, s := range []int{520, 780} {
		if got := rep.Class[[2]int{1, s}]; got != ClassFollower {
			t.Errorf("slice 1 set %d: %c, want F", s, got)
		}
	}
}
