package cachetools

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"nanobench/internal/sim/policy"
)

// InferOptions tunes the replacement-policy identification tool
// (Section VI-C1, second tool).
type InferOptions struct {
	// MaxSequences bounds the number of measured random sequences.
	MaxSequences int
	// PoolBlocks is the number of distinct blocks random sequences draw
	// from (0: associativity + 4).
	PoolBlocks int
	// SeqLen is the length of each random sequence (0: 2×assoc + 8).
	SeqLen int
	// Seed drives sequence generation.
	Seed int64
	// Candidates overrides the candidate policy names (nil: all
	// deterministic built-ins plus every meaningful QLRU variant).
	Candidates []string
}

// InferenceResult reports the surviving candidates of a policy inference.
type InferenceResult struct {
	// Matches are the candidate policies consistent with every measured
	// sequence, grouped into behavioural equivalence classes: all
	// candidates in one inner slice behave identically on the probe
	// suite.
	Classes [][]string
	// SequencesUsed is the number of hardware measurements taken.
	SequencesUsed int
}

// Unique reports whether the measurements narrowed the policy down to a
// single behavioural class, and returns a representative name.
func (r *InferenceResult) Unique() (string, bool) {
	if len(r.Classes) != 1 || len(r.Classes[0]) == 0 {
		return "", false
	}
	return r.Classes[0][0], true
}

// Matches flattens the equivalence classes.
func (r *InferenceResult) Matches() []string {
	var out []string
	for _, c := range r.Classes {
		out = append(out, c...)
	}
	return out
}

// Contains reports whether name survived.
func (r *InferenceResult) Contains(name string) bool {
	for _, c := range r.Classes {
		for _, n := range c {
			if n == name {
				return true
			}
		}
	}
	return false
}

// DefaultCandidates returns the deterministic candidate policies: the
// classic ones plus all meaningful QLRU variants (Section VI-B2).
func DefaultCandidates(assoc int) []string {
	names := []string{"LRU", "FIFO", "MRU", "MRU*"}
	if assoc&(assoc-1) == 0 {
		names = append(names, "PLRU")
	}
	return append(names, policy.EnumerateQLRU()...)
}

// InferPolicy identifies the replacement policy of one cache set by
// generating random access sequences, measuring their hit counts with
// cacheSeq, and comparing against simulations of every candidate policy
// (Section VI-C1). It stops once a single behavioural class remains or the
// sequence budget is exhausted.
func (t *Tool) InferPolicy(level Level, slice, set int, opt InferOptions) (*InferenceResult, error) {
	return t.InferPolicyContext(context.Background(), level, slice, set, opt)
}

// InferPolicyContext is InferPolicy bounded by a context: cancellation
// aborts between measured sequences with the context's error.
func (t *Tool) InferPolicyContext(ctx context.Context, level Level, slice, set int, opt InferOptions) (*InferenceResult, error) {
	assoc := t.Assoc(level)
	if opt.MaxSequences == 0 {
		opt.MaxSequences = 200
	}
	if opt.PoolBlocks == 0 {
		opt.PoolBlocks = assoc + 4
	}
	if opt.SeqLen == 0 {
		opt.SeqLen = 2*assoc + 8
	}
	cands := opt.Candidates
	if cands == nil {
		cands = DefaultCandidates(assoc)
	}

	var alive []candidate
	for _, n := range cands {
		s, err := policy.NewSingle(n, assoc, policy.LazyRNG(1))
		if err != nil {
			return nil, fmt.Errorf("cachetools: candidate %s: %w", n, err)
		}
		alive = append(alive, candidate{n, s})
	}

	rng := rand.New(rand.NewSource(opt.Seed))
	structured := len(t.structuredSequences(assoc))
	used := 0
	for used < opt.MaxSequences && len(alive) > 1 {
		var seq Seq
		if used >= structured+8 && len(alive) <= 64 {
			// Few candidates left: search, in simulation, for a sequence
			// the survivors disagree on, and measure that one. If none
			// exists, the survivors are observationally equivalent.
			var ok bool
			seq, ok = t.discriminatingSequence(alive, assoc)
			if !ok {
				break
			}
		} else {
			seq = t.genSequence(rng, assoc, opt.PoolBlocks, opt.SeqLen, used)
		}
		res, err := t.RunSeqContext(ctx, level, slice, set, seq.AllMeasured())
		if err != nil {
			return nil, err
		}
		used++
		blocks := seq.Blocks()
		var next []candidate
		for _, c := range alive {
			if c.sim.CountHitsBatch(blocks) == res.Hits {
				next = append(next, c)
			}
		}
		if len(next) == 0 {
			// No deterministic candidate matches: likely a probabilistic
			// or adaptive policy; report the empty result.
			return &InferenceResult{SequencesUsed: used}, nil
		}
		alive = next
	}

	names := aliveNames(alive)
	return &InferenceResult{
		Classes:       t.equivClasses(names, assoc),
		SequencesUsed: used,
	}, nil
}

// candidate pairs a policy name with a reusable flat-state simulator.
type candidate struct {
	name string
	sim  *policy.Single
}

func aliveNames(cands []candidate) []string {
	out := make([]string, len(cands))
	for i, c := range cands {
		out[i] = c.name
	}
	return out
}

// sigKey identifies one candidate's probe-suite signature.
type sigKey struct {
	name  string
	assoc int
}

// probeSuite returns the canonical per-associativity probe suite: the
// fixed set of random sequences that defines observational equivalence
// between candidate policies. Both the discriminating-sequence search and
// the final equivalence grouping run on this suite, so "no discriminating
// sequence exists" and "the survivors form one class" are the same
// statement by construction.
func (t *Tool) probeSuite(assoc int) [][]int {
	if s, ok := t.sigSuite[assoc]; ok {
		return s
	}
	rng := rand.New(rand.NewSource(99))
	suite := make([][]int, 300)
	for i := range suite {
		n := 2*assoc + 8 + rng.Intn(2*assoc+8)
		s := make([]int, n)
		for j := range s {
			s[j] = rng.Intn(assoc + 4)
		}
		suite[i] = s
	}
	t.sigSuite[assoc] = suite
	return suite
}

// signature memoizes a candidate's hit counts over the probe suite, one
// byte per sequence. Candidates are deterministic (DefaultCandidates
// enumerates no probabilistic variant), so a fresh simulator's counts are
// the candidate's counts.
func (t *Tool) signature(name string, assoc int) (string, bool) {
	k := sigKey{name, assoc}
	if s, ok := t.sigCache[k]; ok {
		return s, s != ""
	}
	suite := t.probeSuite(assoc)
	p, err := policy.NewSingle(name, assoc, policy.LazyRNG(1))
	if err != nil {
		t.sigCache[k] = ""
		return "", false
	}
	key := make([]byte, 0, len(suite))
	for _, s := range suite {
		key = append(key, byte(p.CountHitsBatch(s)))
	}
	t.sigCache[k] = string(key)
	return string(key), true
}

// discriminatingSequence returns a probe-suite sequence on which the
// surviving candidates predict different hit counts, or ok=false when
// their suite signatures all agree (the survivors are observationally
// equivalent and will be grouped into one class).
func (t *Tool) discriminatingSequence(alive []candidate, assoc int) (Seq, bool) {
	suite := t.probeSuite(assoc)
	first, ok := t.signature(alive[0].name, assoc)
	if !ok {
		return Seq{}, false
	}
	for _, c := range alive[1:] {
		sig, ok := t.signature(c.name, assoc)
		if !ok {
			continue
		}
		for i := 0; i < len(sig) && i < len(first); i++ {
			if sig[i] != first[i] {
				return SeqOf(true, suite[i]...), true
			}
		}
	}
	return Seq{}, false
}

// genSequence produces the i-th test sequence: a few structured patterns
// first (fills, refills, single promotions — these split the big policy
// families quickly), then random sequences.
func (t *Tool) genSequence(rng *rand.Rand, assoc, pool, length, i int) Seq {
	structured := t.structuredSequences(assoc)
	if i < len(structured) {
		return structured[i]
	}
	s := Seq{WbInvd: true}
	for j := 0; j < length; j++ {
		s.Accesses = append(s.Accesses, Access{Block: rng.Intn(pool)})
	}
	return s
}

// structuredSequences returns hand-shaped discriminating sequences.
func (t *Tool) structuredSequences(assoc int) []Seq {
	fill := make([]int, assoc)
	for i := range fill {
		fill[i] = i
	}
	var out []Seq
	// Fill then re-access in order: separates policies by insertion and
	// promotion behaviour.
	out = append(out, SeqOf(true, append(append([]int{}, fill...), fill...)...))
	// Fill, one extra block, then probe all: shows the first victim.
	probe := append(append([]int{}, fill...), assoc)
	probe = append(probe, fill...)
	out = append(out, SeqOf(true, probe...))
	// Fill, promote block 0, insert extra, probe: hit-promotion shape.
	promo := append(append([]int{}, fill...), 0, assoc)
	promo = append(promo, fill...)
	out = append(out, SeqOf(true, promo...))
	// Double-length thrash: cyclic access of assoc+1 blocks.
	var thrash []int
	for r := 0; r < 3; r++ {
		for b := 0; b <= assoc; b++ {
			thrash = append(thrash, b)
		}
	}
	out = append(out, SeqOf(true, thrash...))
	return out
}

// equivClasses groups candidate names whose simulations agree on a probe
// suite of random sequences (some QLRU variants are observationally
// equivalent, as the paper notes for R0/R1 with U0).
func (t *Tool) equivClasses(names []string, assoc int) [][]string {
	if len(names) <= 1 {
		if len(names) == 0 {
			return nil
		}
		return [][]string{names}
	}
	sig := map[string]string{}
	for _, n := range names {
		if s, ok := t.signature(n, assoc); ok {
			sig[n] = s
		}
	}
	groups := map[string][]string{}
	for _, n := range names {
		groups[sig[n]] = append(groups[sig[n]], n)
	}
	var out [][]string
	for _, g := range groups {
		sort.Strings(g)
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}
