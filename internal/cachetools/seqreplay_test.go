package cachetools

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
)

// The seq-replay fast path (nano.RunSeqHits) must be a pure optimization:
// hit counts bit-identical to full machine simulation, and the machine
// left in an equivalent state so that later experiments — with or without
// intervening restreams — see no difference. These tests run the same
// campaigns on a replay-enabled and a replay-disabled tool built from the
// same machine seed and require identical results throughout.

// TestSeqReplayMatchesFullSimTrials interleaves repeated-trial runs of
// random sequences across all three levels without restreaming, so any
// state divergence left by a replayed run would surface in a later
// sequence's counts.
func TestSeqReplayMatchesFullSimTrials(t *testing.T) {
	fast := newTool(t, "Skylake")
	slow := newTool(t, "Skylake")
	slow.R.SetSeqReplay(false)

	type probe struct {
		level Level
		slice int
		set   int
	}
	probes := []probe{{L1, 0, 37}, {L2, 0, 520}, {L3, 0, 600}}
	rng := rand.New(rand.NewSource(7))
	for round := 0; round < 3; round++ {
		for _, p := range probes {
			assoc := fast.Assoc(p.level)
			var blocks []int
			for j := 0; j < assoc+6; j++ {
				blocks = append(blocks, rng.Intn(assoc+3))
			}
			seq := SeqOf(true, blocks...).AllMeasured()
			const trials = 4
			got, err := fast.RunSeqTrials(context.Background(), p.level, p.slice, p.set, seq, trials)
			if err != nil {
				t.Fatal(err)
			}
			want, err := slow.RunSeqTrials(context.Background(), p.level, p.slice, p.set, seq, trials)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("round %d %s set %d (%v): replay %+v, full sim %+v",
					round, p.level, p.set, blocks, got, want)
			}
		}
	}
	if replays, _ := fast.R.SeqReplayStats(); replays == 0 {
		t.Fatal("fast path never replayed a run")
	}
	if replays, _ := slow.R.SeqReplayStats(); replays != 0 {
		t.Fatalf("disabled fast path replayed %d runs", replays)
	}
}

// TestSeqReplayMatchesFullSimAgeGraph reruns a small Figure-1-style age
// graph (Ivy Bridge L3 set 768, probabilistic adaptive leader) both ways.
// Age-graph groups restream the hierarchy and batch trials — the exact
// shape the fast path serves in campaigns.
func TestSeqReplayMatchesFullSimAgeGraph(t *testing.T) {
	fast := newTool(t, "IvyBridge")
	slow := newTool(t, "IvyBridge")
	slow.R.SetSeqReplay(false)

	prefix := SeqOf(true, 0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11)
	got, err := fast.AgeGraphFor(L3, 0, 768, prefix, 32, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	want, err := slow.AgeGraphFor(L3, 0, 768, prefix, 32, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("age graphs differ:\nreplay:   %+v\nfull sim: %+v", got, want)
	}
	if replays, _ := fast.R.SeqReplayStats(); replays == 0 {
		t.Fatal("fast path never replayed a run")
	}
}

// TestSeqReplayMatchesFullSimDueling reruns a miniature set-dueling
// classification (the steering phases hammer the same images dozens of
// times — the fast path's main beneficiary) both ways.
func TestSeqReplayMatchesFullSimDueling(t *testing.T) {
	if testing.Short() {
		t.Skip("slow cache experiment; run without -short")
	}
	fast := newTool(t, "IvyBridge")
	slow := newTool(t, "IvyBridge")
	slow.R.SetSeqReplay(false)

	sets := []int{512, 600, 768}
	got, err := fast.FindDedicatedSets([]int{0}, sets, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := slow.FindDedicatedSets([]int{0}, sets, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("dueling reports differ:\nreplay:   %+v\nfull sim: %+v", got, want)
	}
	if replays, _ := fast.R.SeqReplayStats(); replays == 0 {
		t.Fatal("fast path never replayed a run")
	}
}
