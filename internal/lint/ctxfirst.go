package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CtxFirst enforces the context discipline on the blocking API surfaces
// (facade, client, sched, jobs, server): an exported function or
// interface method that accepts a context.Context takes it as the first
// parameter, and no struct stores a context.Context field — contexts
// flow down call chains, they are not captured (storing one detaches
// cancellation from the call that should own it).
var CtxFirst = &Analyzer{
	Name: "ctxfirst",
	Doc:  "exported blocking APIs take context.Context first and never store it in a struct",
	Run:  runCtxFirst,
}

func runCtxFirst(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if !n.Name.IsExported() {
					return true
				}
				obj, ok := pass.Info.Defs[n.Name].(*types.Func)
				if !ok {
					return true
				}
				sig, ok := obj.Type().(*types.Signature)
				if !ok {
					return true
				}
				checkCtxPosition(pass, n.Name.Pos(), n.Name.Name, sig)
			case *ast.TypeSpec:
				switch t := n.Type.(type) {
				case *ast.StructType:
					checkCtxFields(pass, t)
				case *ast.InterfaceType:
					checkCtxInterface(pass, n.Name.Name, t)
				}
			}
			return true
		})
	}
}

// checkCtxPosition flags a signature that takes a context.Context
// anywhere but parameter zero.
func checkCtxPosition(pass *Pass, pos token.Pos, name string, sig *types.Signature) {
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if isContextType(params.At(i).Type()) {
			if i != 0 {
				pass.Report(pos, "%s takes context.Context as parameter %d; context must be the first parameter", name, i+1)
			}
			return
		}
	}
}

// checkCtxFields flags struct fields of type context.Context.
func checkCtxFields(pass *Pass, st *ast.StructType) {
	for _, field := range st.Fields.List {
		tv, ok := pass.Info.Types[field.Type]
		if !ok || !isContextType(tv.Type) {
			continue
		}
		pass.Report(field.Pos(), "context.Context stored in a struct field; pass it per call instead (stored contexts detach cancellation)")
	}
}

// checkCtxInterface applies the first-parameter rule to exported
// interface methods.
func checkCtxInterface(pass *Pass, typeName string, it *ast.InterfaceType) {
	for _, m := range it.Methods.List {
		ft, ok := m.Type.(*ast.FuncType)
		if !ok || len(m.Names) == 0 || !m.Names[0].IsExported() {
			continue
		}
		tv, ok := pass.Info.Types[ft]
		if !ok {
			continue
		}
		sig, ok := tv.Type.(*types.Signature)
		if !ok {
			continue
		}
		checkCtxPosition(pass, m.Names[0].Pos(), typeName+"."+m.Names[0].Name, sig)
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
