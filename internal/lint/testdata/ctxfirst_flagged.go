package fixture

import "context"

func RunJob(name string, ctx context.Context) error { // want `RunJob takes context\.Context as parameter 2`
	_ = name
	return ctx.Err()
}

type holder struct {
	ctx context.Context // want `context\.Context stored in a struct field`
}

func (h holder) use() error { return h.ctx.Err() }

type Runner interface {
	Execute(name string, ctx context.Context) error // want `Runner\.Execute takes context\.Context as parameter 2`
}
