package fixture2

import "context"

// Context first: the shape every blocking API in the repo uses.
func Run(ctx context.Context, name string) error {
	_ = name
	return ctx.Err()
}

// No context at all is fine too.
func Stat(name string) int { return len(name) }

// The first-parameter rule binds exported APIs; unexported helpers are
// out of contract (but get no struct-storage exemption).
func helper(name string, ctx context.Context) error {
	_ = name
	return ctx.Err()
}

type Waiter interface {
	Wait(ctx context.Context, id string) error
}

var _ = helper
