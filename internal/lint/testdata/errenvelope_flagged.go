package fixture

import "net/http"

func fail(w http.ResponseWriter) {
	http.Error(w, "boom", http.StatusInternalServerError) // want `http\.Error bypasses the apiError envelope`
	w.WriteHeader(500)                                    // want `naked WriteHeader\(500\) bypasses the apiError envelope`
	w.WriteHeader(http.StatusServiceUnavailable)          // want `naked WriteHeader\(503\) bypasses the apiError envelope`
}
