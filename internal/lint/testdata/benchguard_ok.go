package fixture2

import "fmt"

type fault struct{ reason string }

func (f *fault) Error() string { return f.reason }

// Error construction inside a return statement is off the hot path by
// construction: the run is already aborting.
func load(addr uint64, mapped bool) (uint64, error) {
	if !mapped {
		return 0, &fault{reason: fmt.Sprintf("#PF: load from unmapped %#x", addr)}
	}
	return addr, nil
}

// So are panic arguments.
func mustAssoc(assoc int) {
	if assoc <= 0 {
		panic(fmt.Sprintf("bad assoc %d", assoc))
	}
}

// Plain concatenation never boxes.
func duelName(a, b string) string {
	return "DUEL(" + a + "," + b + ")"
}
