package fixture

import (
	"fmt"
	"math/rand"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want `time\.Now on a deterministic package`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since on a deterministic package`
}

func deadline(t time.Time) time.Duration {
	return time.Until(t) // want `time\.Until on a deterministic package`
}

func globalDraw() int {
	return rand.Intn(4) // want `global math/rand draw rand\.Intn`
}

func reseed() {
	rand.Seed(1) // want `rand\.Seed reseeds the shared global stream`
}

var results []string

func leakToGlobal(m map[string]int) {
	for k := range m {
		results = append(results, k) // want `write to results \(declared outside the function\) inside range over a map`
	}
}

func leakToCaptured(m map[string]int) func() {
	var keys []string
	return func() {
		for k := range m {
			keys = append(keys, k) // want `write to keys \(declared outside the function\) inside range over a map`
		}
	}
}

func emitInOrder(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `fmt\.Println inside range over a map`
	}
}

func sendInOrder(m map[string]int, ch chan string) {
	for k := range m {
		ch <- k // want `channel send inside range over a map`
	}
}
