package fixture2

import (
	"encoding/json"
	"net/http"
)

// The envelope path itself: an explicit status with a typed JSON body.
// Success statuses and client-error statuses written by the envelope
// encoder are fine; only http.Error and naked 5xx writes are barred.
func writeEnvelope(w http.ResponseWriter, status int, v any) {
	data, _ := json.Marshal(v)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(data)
}

func okPath(w http.ResponseWriter) {
	w.WriteHeader(http.StatusOK)
	w.WriteHeader(http.StatusNotFound)
}
