package fixture

import (
	"fmt"
	"log"
)

type engine struct{ name string }

func (e *engine) setName(a, b string) {
	e.name = fmt.Sprintf("DUEL(%s,%s)", a, b) // want `fmt\.Sprintf on a hot-path package boxes its arguments`
}

func traceStep(step int) {
	log.Printf("step %d", step) // want `log\.Printf on a hot-path package boxes its arguments`
}

func describe(assoc int) string {
	s := fmt.Sprint(assoc) // want `fmt\.Sprint on a hot-path package boxes its arguments`
	return s
}
