package fixture2

import (
	"math/rand"
	"sort"
	"time"
)

// Options carries an injected clock — the sanctioned escape for code that
// needs timestamps (the jobs.Options.Now pattern).
type Options struct{ Now func() int64 }

func stamp(o Options) int64 { return o.Now() }

func span(d time.Duration) time.Duration { return 2 * d }

// Explicit streams are fine: rand.New/rand.NewSource construct seeded
// streams, the forbidden thing is drawing from the shared global one.
func explicitStream(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(4)
}

// Collect-then-sort: the append target is function-local, so iteration
// order never escapes.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Per-key writes land at the same place regardless of iteration order.
func perKeyWrite(dst, src map[string]int) {
	for k, v := range src {
		dst[k] = v * 2
	}
}

// Commutative reduction into a function-local.
func pureReduce(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}
