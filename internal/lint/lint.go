// Package lint is nanolint: a suite of static analyzers that mechanically
// enforce the repository's determinism, context, and wire-discipline
// invariants (docs/LINTS.md). The analyzers mirror the golang.org/x/tools
// go/analysis shape — Analyzer, Pass, Diagnostic — but are self-hosted on
// the standard library's go/ast + go/types so the module keeps its
// zero-dependency go.mod; packages are type-checked offline from the
// compiler's export data (see loader.go).
//
// Violations are suppressed only by an explicit waiver directive:
//
//	//nanolint:allow <check> <reason>
//
// The reason is mandatory, the check name must be one of the registered
// analyzers, and the waiver covers exactly one statement: the statement
// (or declaration, or struct field) it trails, or — when the directive
// sits on its own line — the next one below it. Waivers that suppress
// nothing are themselves errors, so stale annotations cannot accumulate.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one named check. Run inspects a type-checked package via the
// Pass and reports findings through pass.Report.
type Analyzer struct {
	Name string // the check name used in diagnostics and waiver directives
	Doc  string // one-line summary shown by `nanolint -list`
	Run  func(*Pass)
}

// Pass carries one package through one analyzer.
type Pass struct {
	Fset  *token.FileSet
	Files []*ast.File // non-test source files of the package
	Pkg   *types.Package
	Info  *types.Info

	report func(Diagnostic)
	check  string
}

// Report records one finding of the running analyzer.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Check: p.check, Message: fmt.Sprintf(format, args...)})
}

// Diagnostic is one finding: a position, the check that produced it, and
// the message.
type Diagnostic struct {
	Pos     token.Pos
	Check   string
	Message string
}

// DirectiveCheck is the pseudo-check name of the waiver machinery itself.
// Malformed or unused //nanolint:allow directives are reported under this
// name and cannot be waived.
const DirectiveCheck = "nanolint"

// Analyzers returns the full suite, in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{Detrand, CtxFirst, ErrEnvelope, BenchGuard}
}

// Rule scopes one analyzer to a set of import paths. A match entry either
// names a package exactly or, with a trailing slash, every package under
// that prefix.
type Rule struct {
	Analyzer *Analyzer
	Match    []string
}

func (r Rule) matches(pkgPath string) bool {
	for _, m := range r.Match {
		if strings.HasSuffix(m, "/") {
			if strings.HasPrefix(pkgPath, m) {
				return true
			}
		} else if pkgPath == m {
			return true
		}
	}
	return false
}

// DefaultRules maps each analyzer to the packages whose invariants it
// encodes. This table is the single source of truth shared by
// cmd/nanolint, `make lint`, and the self-clean test; docs/LINTS.md is
// its prose twin.
func DefaultRules() []Rule {
	return []Rule{
		// Deterministic packages: everything on the result path. A stray
		// wall-clock read or global-RNG draw here breaks byte-identical
		// replay at any worker/shard count.
		{Analyzer: Detrand, Match: []string{
			"nanobench",
			"nanobench/internal/sched",
			"nanobench/internal/sim/",
			"nanobench/internal/cachetools",
			"nanobench/internal/nano",
			"nanobench/internal/experiments",
			"nanobench/internal/jobs",
			"nanobench/internal/server",
			"nanobench/internal/uarch",
			"nanobench/internal/x86",
			"nanobench/internal/perfcfg",
			"nanobench/internal/instbench",
		}},
		// Blocking API surfaces: context flows in as the first parameter
		// and never hides in a struct.
		{Analyzer: CtxFirst, Match: []string{
			"nanobench",
			"nanobench/client",
			"nanobench/internal/sched",
			"nanobench/internal/jobs",
			"nanobench/internal/server",
		}},
		// The wire contract: errors leave internal/server only through the
		// typed apiError envelope.
		{Analyzer: ErrEnvelope, Match: []string{
			"nanobench/internal/server",
		}},
		// The flat-engine hot paths: no fmt/log boxing outside error
		// construction and panics.
		{Analyzer: BenchGuard, Match: []string{
			"nanobench/internal/sim/policy",
			"nanobench/internal/sim/machine",
		}},
	}
}

// waiver is one parsed //nanolint:allow directive.
type waiver struct {
	pos    token.Pos // position of the directive comment
	check  string
	reason string
	lo, hi token.Pos // statement span the waiver covers (0,0 = nothing)
	used   bool
	bad    bool // malformed: already reported, never "unused"
}

const directivePrefix = "//nanolint:allow"

// RunPackage executes every rule-selected analyzer on pkg, applies the
// waiver directives, validates the directives themselves, and returns the
// surviving diagnostics sorted by position.
func RunPackage(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, rules []Rule) []Diagnostic {
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	ran := make(map[string]bool)

	var raw []Diagnostic
	for _, r := range rules {
		if !r.matches(pkg.Path()) {
			continue
		}
		ran[r.Analyzer.Name] = true
		pass := &Pass{
			Fset:  fset,
			Files: files,
			Pkg:   pkg,
			Info:  info,
			check: r.Analyzer.Name,
			report: func(d Diagnostic) {
				raw = append(raw, d)
			},
		}
		r.Analyzer.Run(pass)
	}

	var out []Diagnostic
	var waivers []*waiver
	for _, f := range files {
		ws, diags := fileWaivers(fset, f, known)
		waivers = append(waivers, ws...)
		out = append(out, diags...)
	}

	// Apply waivers: a diagnostic is suppressed when a well-formed waiver
	// for its check covers its position.
	for _, d := range raw {
		suppressed := false
		for _, w := range waivers {
			if w.bad || w.check != d.Check {
				continue
			}
			if d.Pos >= w.lo && d.Pos < w.hi {
				w.used = true
				suppressed = true
			}
		}
		if !suppressed {
			out = append(out, d)
		}
	}

	// A waiver for a check that ran here but matched nothing is stale.
	for _, w := range waivers {
		if !w.bad && !w.used && ran[w.check] {
			out = append(out, Diagnostic{
				Pos:     w.pos,
				Check:   DirectiveCheck,
				Message: fmt.Sprintf("unused nanolint:allow directive: no %s finding on the covered statement", w.check),
			})
		}
	}

	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// fileWaivers parses every //nanolint:allow directive in f, computing the
// statement span each one covers, and reports malformed directives.
func fileWaivers(fset *token.FileSet, f *ast.File, known map[string]bool) ([]*waiver, []Diagnostic) {
	var ws []*waiver
	var diags []Diagnostic
	spans := coverageSpans(f)

	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, directivePrefix) {
				continue
			}
			rest := strings.TrimPrefix(c.Text, directivePrefix)
			w := &waiver{pos: c.Pos()}
			ws = append(ws, w)
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				// e.g. //nanolint:allowed — not ours, but close enough to
				// a typo that silence would be dangerous.
				w.bad = true
				diags = append(diags, Diagnostic{c.Pos(), DirectiveCheck,
					"malformed nanolint directive: want //nanolint:allow <check> <reason>"})
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				w.bad = true
				diags = append(diags, Diagnostic{c.Pos(), DirectiveCheck,
					"nanolint:allow directive is missing a check name and reason"})
				continue
			}
			w.check = fields[0]
			if !known[w.check] {
				w.bad = true
				diags = append(diags, Diagnostic{c.Pos(), DirectiveCheck,
					fmt.Sprintf("nanolint:allow names unknown check %q (have %s)", w.check, checkNames())})
				continue
			}
			w.reason = strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), w.check))
			if w.reason == "" {
				w.bad = true
				diags = append(diags, Diagnostic{c.Pos(), DirectiveCheck,
					fmt.Sprintf("nanolint:allow %s needs a reason: //nanolint:allow %s <why this is sound>", w.check, w.check)})
				continue
			}
			w.lo, w.hi = waiverSpan(fset, c, spans)
		}
	}
	return ws, diags
}

func checkNames() string {
	var names []string
	for _, a := range Analyzers() {
		names = append(names, a.Name)
	}
	return strings.Join(names, ", ")
}

// span is the source range of one waivable node: a statement, a top-level
// declaration, an inner spec, or a struct field.
type span struct{ lo, hi token.Pos }

// coverageSpans collects the positions a waiver may attach to.
func coverageSpans(f *ast.File) []span {
	var spans []span
	ast.Inspect(f, func(n ast.Node) bool {
		switch n.(type) {
		case ast.Stmt, ast.Decl, ast.Spec, *ast.Field:
			spans = append(spans, span{n.Pos(), n.End()})
		}
		return true
	})
	sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })
	return spans
}

// waiverSpan resolves the one statement a directive covers. A trailing
// directive (code earlier on its line) covers the innermost node that
// starts on that line; an own-line directive covers the next node below
// it — and nothing further.
func waiverSpan(fset *token.FileSet, c *ast.Comment, spans []span) (lo, hi token.Pos) {
	line := fset.Position(c.Pos()).Line
	// Trailing: the latest node that starts on the directive's line,
	// before the directive itself.
	for i := len(spans) - 1; i >= 0; i-- {
		s := spans[i]
		if s.lo < c.Pos() && fset.Position(s.lo).Line == line {
			return s.lo, s.hi
		}
	}
	// Own-line: the first node that starts after the directive.
	for _, s := range spans {
		if s.lo > c.Pos() {
			return s.lo, s.hi
		}
	}
	return 0, 0
}
