package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Detrand enforces the determinism contract on result-path packages:
// byte-identical output at any worker count, shard count, or
// set-initialization order. Three sources of hidden nondeterminism are
// forbidden:
//
//  1. Wall-clock reads: time.Now, time.Since, time.Until. The sanctioned
//     escape is an injected clock (the jobs.Options.Now pattern).
//  2. The global math/rand stream: any package-level draw (rand.Intn,
//     rand.Perm, rand.Shuffle, ...) and rand.Seed. Constructing explicit
//     streams (rand.New, rand.NewSource, rand.NewZipf) is allowed — the
//     sanctioned streams derive from policy.SetSeed or
//     sched.DeriveSeed.
//  3. Map iteration whose order escapes the function: sends, writes to
//     output streams, and writes to variables declared outside the
//     enclosing function from inside a `range` over a map. Accumulating
//     into a function-local (collect-then-sort) stays legal; per-key
//     index writes are order-independent and stay legal too.
var Detrand = &Analyzer{
	Name: "detrand",
	Doc:  "forbid wall-clock reads, global math/rand, and escaping map-iteration order on deterministic packages",
	Run:  runDetrand,
}

var detrandTimeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// Package-level math/rand functions that only construct explicit streams.
var detrandRandOK = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func runDetrand(pass *Pass) {
	// Uses covers selector references, dot imports, and method values
	// uniformly; RunPackage sorts diagnostics, so map order is harmless.
	for id, obj := range pass.Info.Uses {
		fn, ok := obj.(*types.Func)
		if !ok || fn.Pkg() == nil {
			continue
		}
		if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
			continue // methods (e.g. on *rand.Rand) are stream-explicit
		}
		switch fn.Pkg().Path() {
		case "time":
			if detrandTimeFuncs[fn.Name()] {
				pass.Report(id.Pos(), "time.%s on a deterministic package: inject a clock (jobs.Options.Now pattern)", fn.Name())
			}
		case "math/rand", "math/rand/v2":
			if fn.Name() == "Seed" {
				pass.Report(id.Pos(), "rand.Seed reseeds the shared global stream; derive explicit streams via policy.SetSeed / sched.DeriveSeed")
			} else if !detrandRandOK[fn.Name()] {
				pass.Report(id.Pos(), "global math/rand draw rand.%s on a deterministic package: use an explicit *rand.Rand seeded via policy.SetSeed / sched.DeriveSeed", fn.Name())
			}
		}
	}

	for _, f := range pass.Files {
		detrandMapRanges(pass, f, nil)
	}
}

// detrandMapRanges walks n tracking the innermost enclosing function
// scope, and checks every `range` over a map against the escape rules.
func detrandMapRanges(pass *Pass, n ast.Node, fnScope *types.Scope) {
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.FuncDecl:
			detrandMapRanges(pass, c.Body, pass.Info.Scopes[c.Type])
			return false
		case *ast.FuncLit:
			detrandMapRanges(pass, c.Body, pass.Info.Scopes[c.Type])
			return false
		case *ast.RangeStmt:
			tv, ok := pass.Info.Types[c.X]
			if !ok || tv.Type == nil {
				return true
			}
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				detrandCheckRangeBody(pass, c, fnScope)
			}
		}
		return true
	})
}

// detrandCheckRangeBody flags order-dependent escapes inside one
// map-range body.
func detrandCheckRangeBody(pass *Pass, rs *ast.RangeStmt, fnScope *types.Scope) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its own scope; judged when (if) it runs
		case *ast.SendStmt:
			pass.Report(n.Pos(), "channel send inside range over a map publishes iteration order; iterate sorted keys")
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue // per-key index/field writes are order-independent
				}
				obj := pass.Info.ObjectOf(id)
				if obj == nil || declaredWithin(obj, fnScope) {
					continue
				}
				pass.Report(id.Pos(), "write to %s (declared outside the function) inside range over a map leaks iteration order; accumulate locally and sort", id.Name)
			}
		case *ast.CallExpr:
			if name, ok := emitterCall(pass, n); ok {
				pass.Report(n.Pos(), "%s inside range over a map emits in iteration order; iterate sorted keys", name)
			}
		}
		return true
	})
}

// declaredWithin reports whether obj's declaration scope lies inside
// fnScope.
func declaredWithin(obj types.Object, fnScope *types.Scope) bool {
	if fnScope == nil {
		return false
	}
	for s := obj.Parent(); s != nil; s = s.Parent() {
		if s == fnScope {
			return true
		}
	}
	return false
}

// Output-stream method names whose call order is observable.
var emitterMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true,
}

// emitterCall recognizes calls that make iteration order observable:
// fmt printing and writer/encoder methods.
func emitterCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	if obj, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok && obj.Pkg() != nil {
		if obj.Pkg().Path() == "fmt" && (strings.HasPrefix(obj.Name(), "Print") || strings.HasPrefix(obj.Name(), "Fprint")) {
			return "fmt." + obj.Name(), true
		}
		if sig, _ := obj.Type().(*types.Signature); sig != nil && sig.Recv() != nil && emitterMethods[obj.Name()] {
			return "." + obj.Name() + " call", true
		}
	}
	return "", false
}
