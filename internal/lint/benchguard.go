package lint

import (
	"go/ast"
	"go/types"
)

// BenchGuard keeps the PR 5/7 flat-engine wins from silently regressing:
// on the simulator hot-path packages (internal/sim/policy,
// internal/sim/machine) calls into fmt and log are forbidden — both
// box their arguments into interfaces and allocate on every call. Two
// positions are sanctioned because they are off the hot path by
// construction: inside a return statement (error/fault construction on
// a path that already aborts the run) and inside the arguments of a
// panic. Anything else — notably formatting into a variable on the
// access path — needs a //nanolint:allow waiver explaining why the call
// site is cold.
var BenchGuard = &Analyzer{
	Name: "benchguard",
	Doc:  "no fmt/log boxing on simulator hot paths outside return statements and panics",
	Run:  runBenchGuard,
}

func runBenchGuard(pass *Pass) {
	for _, f := range pass.Files {
		benchGuardWalk(pass, f, false)
	}
}

// benchGuardWalk visits n; escaped marks positions already inside a
// return statement or panic argument list.
func benchGuardWalk(pass *Pass, n ast.Node, escaped bool) {
	ast.Inspect(n, func(c ast.Node) bool {
		switch c := c.(type) {
		case *ast.ReturnStmt:
			for _, r := range c.Results {
				benchGuardWalk(pass, r, true)
			}
			return false
		case *ast.CallExpr:
			if isPanicCall(pass, c) {
				for _, a := range c.Args {
					benchGuardWalk(pass, a, true)
				}
				return false
			}
			if !escaped {
				if pkg, name, ok := boxingCall(pass, c); ok {
					pass.Report(c.Pos(), "%s.%s on a hot-path package boxes its arguments; move it into a return/panic or waive with the cold-path reason", pkg, name)
				}
			}
		}
		return true
	})
}

// boxingCall reports a call to any fmt or log package-level function.
func boxingCall(pass *Pass, call *ast.CallExpr) (pkg, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	obj, isFn := pass.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || obj.Pkg() == nil {
		return "", "", false
	}
	if sig, _ := obj.Type().(*types.Signature); sig == nil || sig.Recv() != nil {
		return "", "", false
	}
	switch obj.Pkg().Path() {
	case "fmt", "log":
		return obj.Pkg().Name(), obj.Name(), true
	}
	return "", "", false
}

// isPanicCall reports whether call is the builtin panic.
func isPanicCall(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	_, isBuiltin := pass.Info.Uses[id].(*types.Builtin)
	return isBuiltin && id.Name == "panic"
}
