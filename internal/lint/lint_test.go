package lint_test

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"

	"nanobench/internal/lint"
)

// ---- offline type-checking for fixtures and inline sources ----
//
// Fixtures import only the standard library; export data is resolved on
// demand via `go list -export` and cached for the test process, the same
// mechanism the loader uses for full-repo runs.

var (
	testFset    = token.NewFileSet()
	exportMu    sync.Mutex
	exportCache = map[string]string{}
	testImp     = importer.ForCompiler(testFset, "gc", func(path string) (io.ReadCloser, error) {
		exportMu.Lock()
		f, ok := exportCache[path]
		exportMu.Unlock()
		if !ok {
			out, err := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path).Output()
			if err != nil {
				return nil, fmt.Errorf("no export data for %q: %v", path, err)
			}
			f = strings.TrimSpace(string(out))
			exportMu.Lock()
			exportCache[path] = f
			exportMu.Unlock()
		}
		return os.Open(f)
	})
)

func typecheck(t *testing.T, pkgPath, filename string, src any) (*ast.File, *types.Package, *types.Info) {
	t.Helper()
	f, err := parser.ParseFile(testFset, filename, src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse %s: %v", filename, err)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: testImp}
	pkg, err := conf.Check(pkgPath, testFset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-check %s: %v", filename, err)
	}
	return f, pkg, info
}

// lintSource runs rules over one inline source string.
func lintSource(t *testing.T, pkgPath, src string, rules []lint.Rule) []lint.Diagnostic {
	t.Helper()
	f, pkg, info := typecheck(t, pkgPath, pkgPath+"/src.go", src)
	return lint.RunPackage(testFset, []*ast.File{f}, pkg, info, rules)
}

func ruleFor(a *lint.Analyzer, pkgPath string) []lint.Rule {
	return []lint.Rule{{Analyzer: a, Match: []string{pkgPath}}}
}

func messages(diags []lint.Diagnostic) []string {
	var out []string
	for _, d := range diags {
		pos := testFset.Position(d.Pos)
		out = append(out, fmt.Sprintf("%d: [%s] %s", pos.Line, d.Check, d.Message))
	}
	return out
}

// ---- analysistest-style fixture runner ----

// want is one expected-diagnostic annotation: `// want "regex"` (double-
// or back-quoted, several per comment), attached to its source line.
type want struct {
	line    int
	re      *regexp.Regexp
	matched bool
}

func parseWants(t *testing.T, f *ast.File) []*want {
	t.Helper()
	var wants []*want
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, "// want ")
			if !ok {
				continue
			}
			line := testFset.Position(c.Pos()).Line
			for {
				rest = strings.TrimSpace(rest)
				if rest == "" {
					break
				}
				end := strings.IndexByte(rest[1:], rest[0])
				if (rest[0] != '"' && rest[0] != '`') || end < 0 {
					t.Fatalf("line %d: malformed want annotation %q", line, c.Text)
				}
				pat, err := strconv.Unquote(rest[:end+2])
				if err != nil {
					t.Fatalf("line %d: unquoting %q: %v", line, rest[:end+2], err)
				}
				wants = append(wants, &want{line: line, re: regexp.MustCompile(pat)})
				rest = rest[end+2:]
			}
		}
	}
	return wants
}

// runFixture checks that the analyzer produces exactly the diagnostics
// the fixture's want annotations describe.
func runFixture(t *testing.T, filename string, a *lint.Analyzer) {
	t.Helper()
	path := "fixture/" + strings.TrimSuffix(filename, ".go")
	f, pkg, info := typecheck(t, path, filepath.Join("testdata", filename), nil)
	diags := lint.RunPackage(testFset, []*ast.File{f}, pkg, info, ruleFor(a, path))
	wants := parseWants(t, f)

	for _, d := range diags {
		pos := testFset.Position(d.Pos)
		found := false
		for _, w := range wants {
			if !w.matched && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.matched = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s:%d: unexpected diagnostic: [%s] %s", filename, pos.Line, d.Check, d.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: no diagnostic matched %q", filename, w.line, w.re)
		}
	}
}

func TestDetrandFixtures(t *testing.T) {
	runFixture(t, "detrand_flagged.go", lint.Detrand)
	runFixture(t, "detrand_ok.go", lint.Detrand)
}

func TestCtxFirstFixtures(t *testing.T) {
	runFixture(t, "ctxfirst_flagged.go", lint.CtxFirst)
	runFixture(t, "ctxfirst_ok.go", lint.CtxFirst)
}

func TestErrEnvelopeFixtures(t *testing.T) {
	runFixture(t, "errenvelope_flagged.go", lint.ErrEnvelope)
	runFixture(t, "errenvelope_ok.go", lint.ErrEnvelope)
}

func TestBenchGuardFixtures(t *testing.T) {
	runFixture(t, "benchguard_flagged.go", lint.BenchGuard)
	runFixture(t, "benchguard_ok.go", lint.BenchGuard)
}

// ---- the waiver directive machinery (satellite: its own coverage) ----

const clockSrc = `package p

import "time"

func Stamp() int64 {
	%s
	return 0
}
`

func TestWaiverSuppresses(t *testing.T) {
	src := `package p

import "time"

func Stamp() time.Time {
	return time.Now() //nanolint:allow detrand fixture exercising the waiver path
}
`
	diags := lintSource(t, "p", src, ruleFor(lint.Detrand, "p"))
	if len(diags) != 0 {
		t.Fatalf("waived violation still reported: %v", messages(diags))
	}
}

func TestWaiverOwnLineCoversNextStatement(t *testing.T) {
	src := `package p

import "time"

func Stamps() (time.Time, time.Time) {
	//nanolint:allow detrand first statement is waived
	a := time.Now()
	b := time.Now()
	return a, b
}
`
	diags := lintSource(t, "p", src, ruleFor(lint.Detrand, "p"))
	if len(diags) != 1 {
		t.Fatalf("want exactly the second time.Now flagged, got %v", messages(diags))
	}
	if line := testFset.Position(diags[0].Pos).Line; line != 8 {
		t.Errorf("surviving diagnostic on line %d, want 8 (the statement after the waived one)", line)
	}
}

func TestWaiverCoversMultilineStatement(t *testing.T) {
	src := `package p

import "time"

func Sum(a, b time.Time) bool {
	//nanolint:allow detrand whole next statement is covered, however many lines it spans
	eq := a.Equal(
		time.Now(),
	)
	return eq
}
`
	diags := lintSource(t, "p", src, ruleFor(lint.Detrand, "p"))
	if len(diags) != 0 {
		t.Fatalf("violation inside covered multi-line statement still reported: %v", messages(diags))
	}
}

func TestWaiverMissingReasonRejected(t *testing.T) {
	src := fmt.Sprintf(clockSrc, `_ = time.Now() //nanolint:allow detrand`)
	diags := lintSource(t, "p", src, ruleFor(lint.Detrand, "p"))
	assertDiagCounts(t, diags, map[string]int{
		lint.DirectiveCheck: 1, // needs a reason
		"detrand":           1, // and the bad waiver suppresses nothing
	})
	if !strings.Contains(diags[1].Message, "needs a reason") {
		t.Errorf("unexpected directive message: %q", diags[1].Message)
	}
}

func TestWaiverUnknownCheckRejected(t *testing.T) {
	src := fmt.Sprintf(clockSrc, `_ = time.Now() //nanolint:allow nosuchcheck some reason`)
	diags := lintSource(t, "p", src, ruleFor(lint.Detrand, "p"))
	assertDiagCounts(t, diags, map[string]int{
		lint.DirectiveCheck: 1,
		"detrand":           1,
	})
	if !strings.Contains(diags[1].Message, `unknown check "nosuchcheck"`) {
		t.Errorf("unexpected directive message: %q", diags[1].Message)
	}
}

func TestWaiverMalformedSpellingRejected(t *testing.T) {
	src := fmt.Sprintf(clockSrc, `_ = time.Now() //nanolint:allowing detrand reason`)
	diags := lintSource(t, "p", src, ruleFor(lint.Detrand, "p"))
	assertDiagCounts(t, diags, map[string]int{
		lint.DirectiveCheck: 1,
		"detrand":           1,
	})
}

func TestWaiverUnusedRejected(t *testing.T) {
	src := `package p

func Stamp() int64 {
	_ = 1 //nanolint:allow detrand nothing here actually violates
	return 0
}
`
	diags := lintSource(t, "p", src, ruleFor(lint.Detrand, "p"))
	assertDiagCounts(t, diags, map[string]int{lint.DirectiveCheck: 1})
	if !strings.Contains(diags[0].Message, "unused nanolint:allow") {
		t.Errorf("unexpected directive message: %q", diags[0].Message)
	}
}

func TestWaiverForCheckThatDidNotRunIsNotUnused(t *testing.T) {
	// A benchguard waiver in a package where only detrand runs: the
	// check's scope rules decide, so the waiver is dormant, not stale.
	src := `package p

func Stamp() int64 {
	_ = 1 //nanolint:allow benchguard dormant outside benchguard scope
	return 0
}
`
	diags := lintSource(t, "p", src, ruleFor(lint.Detrand, "p"))
	if len(diags) != 0 {
		t.Fatalf("dormant waiver reported: %v", messages(diags))
	}
}

func TestWaiverOnStructField(t *testing.T) {
	src := `package p

import "context"

type request struct {
	ctx context.Context //nanolint:allow ctxfirst fixture: field-scoped waiver
	id  int
}

var _ = request{}
`
	diags := lintSource(t, "p", src, ruleFor(lint.CtxFirst, "p"))
	if len(diags) != 0 {
		t.Fatalf("waived struct field still reported: %v", messages(diags))
	}
}

func assertDiagCounts(t *testing.T, diags []lint.Diagnostic, want map[string]int) {
	t.Helper()
	got := map[string]int{}
	for _, d := range diags {
		got[d.Check]++
	}
	for check, n := range want {
		if got[check] != n {
			t.Errorf("check %s: got %d diagnostics, want %d (all: %v)", check, got[check], n, messages(diags))
		}
	}
	for check := range got {
		if _, ok := want[check]; !ok {
			t.Errorf("unexpected %s diagnostics: %v", check, messages(diags))
		}
	}
}

// ---- the acceptance gates ----

// A deliberate time.Now in internal/sched must fail the suite under the
// real DefaultRules scope table.
func TestDefaultRulesCatchSchedWallClock(t *testing.T) {
	src := `package sched

import "time"

// Seed derives a worker seed (fixture for the scope table).
func Seed() int64 { return time.Now().UnixNano() }
`
	diags := lintSource(t, "nanobench/internal/sched", src, lint.DefaultRules())
	if len(diags) != 1 || diags[0].Check != "detrand" {
		t.Fatalf("time.Now in internal/sched: got %v, want one detrand finding", messages(diags))
	}
}

// The suite runs self-clean on the repository: every violation is either
// fixed or carries a reasoned waiver. This is the in-process twin of
// `make lint`.
func TestSuiteSelfClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	diags, err := lint.Run(".", lint.DefaultRules(), "nanobench/...")
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
