package lint

import (
	"go/ast"
	"go/constant"
	"go/types"
)

// ErrEnvelope enforces the wire contract of internal/server: every error
// a handler surfaces goes through the typed apiError envelope
// (writeError), never through http.Error or a naked 5xx WriteHeader —
// docs/API.md documents the envelope as the only error shape clients
// will ever see, and the golden tests replay it byte-for-byte.
var ErrEnvelope = &Analyzer{
	Name: "errenvelope",
	Doc:  "server errors go through the typed apiError envelope, not http.Error or naked 5xx WriteHeader",
	Run:  runErrEnvelope,
}

func runErrEnvelope(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			obj, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok {
				return true
			}
			if obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Error" {
				pass.Report(call.Pos(), "http.Error bypasses the apiError envelope; use writeError (docs/API.md error schema)")
				return true
			}
			if sig, _ := obj.Type().(*types.Signature); sig != nil && sig.Recv() != nil && obj.Name() == "WriteHeader" && len(call.Args) == 1 {
				if tv, ok := pass.Info.Types[call.Args[0]]; ok && tv.Value != nil && tv.Value.Kind() == constant.Int {
					if code, ok := constant.Int64Val(tv.Value); ok && code >= 500 {
						pass.Report(call.Pos(), "naked WriteHeader(%d) bypasses the apiError envelope; use writeError (docs/API.md error schema)", code)
					}
				}
			}
			return true
		})
	}
}
