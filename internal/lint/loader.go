package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// The loader type-checks the packages under analysis from source while
// resolving every import — stdlib and module-internal alike — from the
// compiler's export data, located via `go list -export`. That keeps
// nanolint dependency-free (no golang.org/x/tools) and fully offline:
// the toolchain that built the package is the same one whose export
// format we read back.

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File // parsed non-test GoFiles
	Pkg   *types.Package
	Info  *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
	Export     string
	Standard   bool
	Module     *struct{ Path string }
}

// Load lists patterns in dir (any directory inside the module), resolves
// export data for the full dependency graph, and type-checks every
// module-local matched package from source. Test files are not loaded:
// the invariants nanolint encodes guard production code paths.
func Load(dir string, patterns ...string) ([]*Package, error) {
	listArgs := append([]string{"list", "-e", "-export", "-deps", "-json=ImportPath,Dir,Name,GoFiles,Export,Standard,Module"}, patterns...)
	deps, err := goList(dir, listArgs)
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string)
	for _, p := range deps {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}

	// -deps flattens the graph; re-list without it to know which packages
	// the patterns actually name.
	matched, err := goList(dir, append([]string{"list", "-json=ImportPath,Dir,Name,GoFiles,Export,Standard,Module"}, patterns...))
	if err != nil {
		return nil, err
	}

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			// A path outside the pre-listed graph (shouldn't happen for
			// well-formed packages); resolve it on demand.
			out, err := exec.Command("go", "list", "-export", "-f", "{{.Export}}", path).Output()
			if err != nil {
				return nil, fmt.Errorf("lint: no export data for %q: %v", path, err)
			}
			f = strings.TrimSpace(string(out))
			exports[path] = f
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	var pkgs []*Package
	for _, lp := range matched {
		if lp.Standard || lp.Name == "" || len(lp.GoFiles) == 0 {
			continue
		}
		p, err := checkPackage(fset, imp, lp)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

func goList(dir string, args []string) ([]*listedPackage, error) {
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go %s: %v\n%s", strings.Join(args[:2], " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		pkgs = append(pkgs, &p)
	}
	return pkgs, nil
}

// checkPackage parses and type-checks one package's non-test files.
func checkPackage(fset *token.FileSet, imp types.Importer, lp *listedPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range lp.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := newInfo()
	conf := types.Config{Importer: imp, Sizes: types.SizesFor("gc", "amd64")}
	pkg, err := conf.Check(lp.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", lp.ImportPath, err)
	}
	return &Package{Path: lp.ImportPath, Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// Run loads the pattern-matched packages and returns every diagnostic the
// rule-scoped suite produces, formatted and sorted. It is the engine
// behind both cmd/nanolint and the self-clean test.
func Run(dir string, rules []Rule, patterns ...string) ([]string, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, p := range pkgs {
		for _, d := range RunPackage(p.Fset, p.Files, p.Pkg, p.Info, rules) {
			pos := p.Fset.Position(d.Pos)
			out = append(out, fmt.Sprintf("%s:%d:%d: [%s] %s", pos.Filename, pos.Line, pos.Column, d.Check, d.Message))
		}
	}
	return out, nil
}
