package perfcfg

import "testing"

// FuzzParse feeds hostile counter-configuration files to the event
// parser (the wire format of a config's "events", via
// nano.ParseEventLines). Invariants: no panic; accepted specs render
// back (String/Code) to text that re-parses to the identical specs —
// the property the Config JSON codec's event round-trip rests on.
func FuzzParse(f *testing.F) {
	f.Add("2E.4F LONGEST_LAT_CACHE.REFERENCE")
	f.Add("0E.01 UOPS_ISSUED.ANY\nA1.01 PORT0\nC5.00 BR_MISP")
	f.Add("CBO.LOOKUP LLC_LOOKUPS\nCBO.MISS LLC_MISSES")
	f.Add("MSR.E8 APERF\nMSR.E7 MPERF")
	f.Add("# comment only\n\n  \n")
	f.Add("d1.01 lower case code")
	f.Add("0E.01")
	f.Add("0E.01 name with  spaces   # trailing comment")
	f.Add("ZZ.01 BAD")
	f.Add("MSR.XYZ BAD")
	f.Fuzz(func(t *testing.T, text string) {
		specs, err := Parse(text)
		if err != nil {
			return
		}
		rendered := ""
		for _, s := range specs {
			rendered += s.String() + "\n"
		}
		specs2, err := Parse(rendered)
		if err != nil {
			t.Fatalf("rendered form does not re-parse: %v\n%s", err, rendered)
		}
		if len(specs2) != len(specs) {
			t.Fatalf("round trip changed spec count: %d != %d", len(specs2), len(specs))
		}
		for i := range specs {
			if specs[i] != specs2[i] {
				t.Fatalf("spec %d changed in round trip: %+v != %+v", i, specs[i], specs2[i])
			}
		}
	})
}
