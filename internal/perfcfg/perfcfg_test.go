package perfcfg

import (
	"reflect"
	"testing"
)

func TestParseCoreEvents(t *testing.T) {
	specs, err := Parse(`
# Skylake events
0E.01 UOPS_ISSUED.ANY
A1.04 UOPS_DISPATCHED_PORT.PORT_2   # trailing comment
d1.01 MEM_LOAD_RETIRED.L1_HIT
C0.00
`)
	if err != nil {
		t.Fatal(err)
	}
	want := []EventSpec{
		{Kind: Core, EvtSel: 0x0E, Umask: 0x01, Name: "UOPS_ISSUED.ANY"},
		{Kind: Core, EvtSel: 0xA1, Umask: 0x04, Name: "UOPS_DISPATCHED_PORT.PORT_2"},
		{Kind: Core, EvtSel: 0xD1, Umask: 0x01, Name: "MEM_LOAD_RETIRED.L1_HIT"},
		{Kind: Core, EvtSel: 0xC0, Umask: 0x00, Name: "C0.00"},
	}
	if !reflect.DeepEqual(specs, want) {
		t.Fatalf("Parse = %+v", specs)
	}
}

func TestParseUncoreAndMSR(t *testing.T) {
	specs, err := Parse(`
CBO.LOOKUP LLC_LOOKUPS
CBO.MISS LLC_MISSES
MSR.E8 APERF
MSR.E7 MPERF
`)
	if err != nil {
		t.Fatal(err)
	}
	if specs[0].Kind != CBo || specs[0].CBoEv != "LOOKUP" {
		t.Fatalf("CBO spec: %+v", specs[0])
	}
	if specs[2].Kind != MSR || specs[2].Addr != 0xE8 || specs[2].Name != "APERF" {
		t.Fatalf("MSR spec: %+v", specs[2])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"XYZ",
		"GG.01 name",
		"0E.ZZ name",
		"CBO.WRONG name",
		"MSR.XYZ name",
	}
	for _, b := range bad {
		if _, err := Parse(b); err == nil {
			t.Errorf("Parse(%q): expected error", b)
		}
	}
}

func TestStringRoundTrip(t *testing.T) {
	in := "2E.4F LONGEST_LAT_CACHE.REFERENCE"
	specs := MustParse(in)
	if specs[0].String() != in {
		t.Fatalf("String() = %q, want %q", specs[0].String(), in)
	}
	if MustParse("CBO.LOOKUP X")[0].String() != "CBO.LOOKUP X" {
		t.Fatal("CBO string")
	}
	if MustParse("MSR.E8 APERF")[0].String() != "MSR.E8 APERF" {
		t.Fatal("MSR string")
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	MustParse("not an event")
}
