// Package perfcfg parses nanoBench performance-counter configuration
// files. Events are not hard-coded (Section III-J): adapting the tool to a
// new CPU only requires a new configuration file.
//
// Syntax, one event per line (comments start with '#'):
//
//	2E.4F LONGEST_LAT_CACHE.REFERENCE   core event: EvtSel.Umask in hex
//	CBO.LOOKUP LLC_LOOKUPS              uncore C-Box event (kernel only)
//	CBO.MISS LLC_MISSES                 uncore C-Box event (kernel only)
//	MSR.E8 APERF                        free-running MSR counter (kernel only)
package perfcfg

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind classifies an event specification.
type Kind int

// Event kinds.
const (
	// Core is a programmable core event (EvtSel.Umask).
	Core Kind = iota
	// CBo is an uncore C-Box event, readable only in kernel space.
	CBo
	// MSR is a free-running MSR counter (APERF/MPERF), kernel only.
	MSR
)

// EventSpec is one event from a configuration file.
type EventSpec struct {
	Kind   Kind
	EvtSel uint8  // Core
	Umask  uint8  // Core
	CBoEv  string // CBo: "LOOKUP" or "MISS"
	Addr   uint32 // MSR address
	Name   string
}

// String renders the spec in configuration-file syntax.
func (e EventSpec) String() string {
	code := e.Code()
	if code == "?" {
		return "?"
	}
	return code + " " + e.Name
}

// Code renders only the event selector in configuration-file syntax
// ("D1.01", "CBO.LOOKUP", "MSR.E8") without the name; Parse(e.Code()+" "+
// e.Name) reconstructs the spec.
func (e EventSpec) Code() string {
	switch e.Kind {
	case Core:
		return fmt.Sprintf("%02X.%02X", e.EvtSel, e.Umask)
	case CBo:
		return "CBO." + e.CBoEv
	case MSR:
		return fmt.Sprintf("MSR.%X", e.Addr)
	}
	return "?"
}

// Parse parses a configuration file's contents.
func Parse(text string) ([]EventSpec, error) {
	var out []EventSpec
	for lineNo, raw := range strings.Split(text, "\n") {
		line := raw
		if i := strings.Index(line, "#"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		spec, err := parseSpec(fields)
		if err != nil {
			return nil, fmt.Errorf("perfcfg: line %d: %w", lineNo+1, err)
		}
		out = append(out, spec)
	}
	return out, nil
}

func parseSpec(fields []string) (EventSpec, error) {
	code := strings.ToUpper(fields[0])
	name := code
	if len(fields) > 1 {
		name = strings.Join(fields[1:], " ")
	}

	switch {
	case strings.HasPrefix(code, "CBO."):
		ev := strings.TrimPrefix(code, "CBO.")
		if ev != "LOOKUP" && ev != "MISS" {
			return EventSpec{}, fmt.Errorf("unknown C-Box event %q (want LOOKUP or MISS)", ev)
		}
		return EventSpec{Kind: CBo, CBoEv: ev, Name: name}, nil

	case strings.HasPrefix(code, "MSR."):
		addr, err := strconv.ParseUint(strings.TrimPrefix(code, "MSR."), 16, 32)
		if err != nil {
			return EventSpec{}, fmt.Errorf("bad MSR address in %q", code)
		}
		return EventSpec{Kind: MSR, Addr: uint32(addr), Name: name}, nil
	}

	parts := strings.SplitN(code, ".", 2)
	if len(parts) != 2 {
		return EventSpec{}, fmt.Errorf("malformed event %q (want EvtSel.Umask)", code)
	}
	ev, err := strconv.ParseUint(parts[0], 16, 8)
	if err != nil {
		return EventSpec{}, fmt.Errorf("bad event select in %q", code)
	}
	um, err := strconv.ParseUint(parts[1], 16, 8)
	if err != nil {
		return EventSpec{}, fmt.Errorf("bad umask in %q", code)
	}
	return EventSpec{Kind: Core, EvtSel: uint8(ev), Umask: uint8(um), Name: name}, nil
}

// MustParse is Parse that panics on error (for built-in configurations).
func MustParse(text string) []EventSpec {
	s, err := Parse(text)
	if err != nil {
		panic(err)
	}
	return s
}
