package policy

// SimulateSeq plays an access sequence of abstract block IDs against a
// fresh instance of the policy and reports, for each access, whether it
// hit. This is the pure-model simulation the case-study-II matcher compares
// hardware-counter measurements against.
func SimulateSeq(p Policy, seq []int) []bool {
	p.Reset()
	wayOf := map[int]int{}
	blockAt := map[int]int{}
	hits := make([]bool, len(seq))
	for i, b := range seq {
		if w, ok := wayOf[b]; ok {
			hits[i] = true
			p.OnHit(w)
			continue
		}
		w := p.Victim()
		if old, ok := blockAt[w]; ok {
			delete(wayOf, old)
		}
		wayOf[b] = w
		blockAt[w] = b
		p.OnFill(w)
	}
	return hits
}

// CountHits plays the sequence and returns the total number of hits.
func CountHits(p Policy, seq []int) int {
	n := 0
	for _, h := range SimulateSeq(p, seq) {
		if h {
			n++
		}
	}
	return n
}

// EliminationOrder plays prefix (block IDs) against a fresh policy, then
// feeds fresh misses and records the order in which the prefix blocks are
// evicted. Blocks never evicted within maxFresh misses get rank -1. The
// returned slice maps each distinct prefix block (in first-access order) to
// the number of fresh misses after which it was no longer cached.
func EliminationOrder(p Policy, prefix []int, maxFresh int) map[int]int {
	p.Reset()
	wayOf := map[int]int{}
	blockAt := map[int]int{}
	access := func(b int) {
		if w, ok := wayOf[b]; ok {
			p.OnHit(w)
			return
		}
		w := p.Victim()
		if old, ok := blockAt[w]; ok {
			delete(wayOf, old)
		}
		wayOf[b] = w
		blockAt[w] = b
		p.OnFill(w)
	}
	for _, b := range prefix {
		access(b)
	}
	rank := map[int]int{}
	seen := map[int]bool{}
	var order []int
	for _, b := range prefix {
		if !seen[b] {
			seen[b] = true
			order = append(order, b)
			rank[b] = -1
		}
	}
	fresh := 1 << 30 // block IDs disjoint from any realistic prefix
	for n := 1; n <= maxFresh; n++ {
		access(fresh)
		fresh++
		for _, b := range order {
			if rank[b] == -1 {
				if _, cached := wayOf[b]; !cached {
					rank[b] = n
				}
			}
		}
	}
	return rank
}
