package policy

import (
	"math/bits"
	"math/rand"
)

// This file holds the flat-state kernels behind NewEngine. Each kernel
// packs the replacement state of every set into contiguous arrays indexed
// by set*assoc+way (ages, stamps) or one word per set (occupancy,
// tree/status bits), replacing per-set heap objects and interface calls.
// Kernels require assoc ≤ 64 so occupancy fits a word; newKernel routes
// anything wider to the reference engine.

// setOcc tracks per-set way occupancy as one bitmask word per set.
type setOcc struct {
	words []uint64
	full  uint64
}

func newSetOcc(sets, assoc int) setOcc {
	return setOcc{words: make([]uint64, sets), full: fullMask(assoc)}
}

func fullMask(assoc int) uint64 {
	if assoc >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(assoc) - 1
}

func (o *setOcc) isFull(set int) bool    { return o.words[set] == o.full }
func (o *setOcc) test(set, way int) bool { return o.words[set]>>uint(way)&1 != 0 }
func (o *setOcc) mark(set, way int)      { o.words[set] |= 1 << uint(way) }
func (o *setOcc) clear(set, way int)     { o.words[set] &^= 1 << uint(way) }
func (o *setOcc) reset(set int)          { o.words[set] = 0 }
func (o *setOcc) leftmostEmpty(set int) int {
	return bits.TrailingZeros64(^o.words[set] & o.full)
}
func (o *setOcc) rightmostEmpty(set int) int {
	return 63 - bits.LeadingZeros64(^o.words[set]&o.full)
}

// stampEngine implements LRU and FIFO (fifo=true: hits do not update).
// Stamps are uint32 (half the reference's footprint); the per-set clock
// is renormalized by rank on the wrap no real workload reaches.
type stampEngine struct {
	name   string
	fifo   bool
	assoc  int
	occ    setOcc
	stamps []uint32
	clock  []uint32
}

func newStampEngine(name string, sets, assoc int, fifo bool) *stampEngine {
	return &stampEngine{
		name: name, fifo: fifo, assoc: assoc,
		occ:    newSetOcc(sets, assoc),
		stamps: make([]uint32, sets*assoc),
		clock:  make([]uint32, sets),
	}
}

func (e *stampEngine) Name() string { return e.name }

func (e *stampEngine) bump(set, way int) {
	if e.clock[set] == ^uint32(0) {
		e.renorm(set)
	}
	e.clock[set]++
	e.stamps[set*e.assoc+way] = e.clock[set]
}

// renorm rank-compresses a set's stamps, preserving their order, so the
// clock can restart. Recency order — the only thing Victim consults — is
// unchanged.
func (e *stampEngine) renorm(set int) {
	base := set * e.assoc
	old := append([]uint32(nil), e.stamps[base:base+e.assoc]...)
	for w := 0; w < e.assoc; w++ {
		rank := uint32(1)
		for v := 0; v < e.assoc; v++ {
			if old[v] < old[w] {
				rank++
			}
		}
		e.stamps[base+w] = rank
	}
	e.clock[set] = uint32(e.assoc) + 1
}

func (e *stampEngine) OnHit(set, way int) {
	if e.fifo {
		return
	}
	e.bump(set, way)
}

func (e *stampEngine) Victim(set int) int {
	if !e.occ.isFull(set) {
		return e.occ.leftmostEmpty(set)
	}
	base := set * e.assoc
	victim, best := 0, e.stamps[base]
	for w := 1; w < e.assoc; w++ {
		if s := e.stamps[base+w]; s < best {
			victim, best = w, s
		}
	}
	return victim
}

func (e *stampEngine) OnFill(set, way int) {
	e.occ.mark(set, way)
	e.bump(set, way)
}

func (e *stampEngine) OnInvalidate(set, way int) {
	e.occ.clear(set, way)
	e.stamps[set*e.assoc+way] = 0
}

func (e *stampEngine) Reset(set int) {
	e.occ.reset(set)
	e.clock[set] = 0
	base := set * e.assoc
	for w := 0; w < e.assoc; w++ {
		e.stamps[base+w] = 0
	}
}

func (e *stampEngine) Restream() {}

// plruEngine implements tree-PLRU with each set's tree bits packed into
// one word (bit n = heap node n, 1 ≡ "points right/away").
type plruEngine struct {
	assoc int
	occ   setOcc
	tree  []uint64
	// touchSet/touchClr[way] precompute touch(way)'s tree update: the
	// walk's path and bit polarities depend only on the way index, so the
	// per-access walk collapses to two masked operations.
	touchSet []uint64
	touchClr []uint64
}

func newPLRUEngine(sets, assoc int) *plruEngine {
	e := &plruEngine{assoc: assoc, occ: newSetOcc(sets, assoc), tree: make([]uint64, sets)}
	e.touchSet = make([]uint64, assoc)
	e.touchClr = make([]uint64, assoc)
	for way := 0; way < assoc; way++ {
		node := 1
		lo, hi := 0, assoc
		for hi-lo > 1 {
			mid := (lo + hi) / 2
			if way < mid {
				e.touchSet[way] |= 1 << uint(node) // point right, away from the leaf
				node = 2 * node
				hi = mid
			} else {
				e.touchClr[way] |= 1 << uint(node)
				node = 2*node + 1
				lo = mid
			}
		}
	}
	return e
}

func (e *plruEngine) Name() string { return "PLRU" }

func (e *plruEngine) touch(set, way int) {
	e.tree[set] = e.tree[set]&^e.touchClr[way] | e.touchSet[way]
}

func (e *plruEngine) OnHit(set, way int) { e.touch(set, way) }

func (e *plruEngine) Victim(set int) int {
	if !e.occ.isFull(set) {
		return e.occ.leftmostEmpty(set)
	}
	word := e.tree[set]
	node := 1
	lo, hi := 0, e.assoc
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if word>>uint(node)&1 == 0 { // points left
			node = 2 * node
			hi = mid
		} else {
			node = 2*node + 1
			lo = mid
		}
	}
	return lo
}

func (e *plruEngine) OnFill(set, way int) {
	e.occ.mark(set, way)
	e.touch(set, way)
}

func (e *plruEngine) OnInvalidate(set, way int) { e.occ.clear(set, way) }

func (e *plruEngine) Reset(set int) {
	e.occ.reset(set)
	e.tree[set] = 0
}

func (e *plruEngine) Restream() {}

// mruEngine implements MRU/bit-PLRU and the Sandy Bridge MRU* variant
// with one status word per set (bit w = 1 ≡ replacement candidate).
type mruEngine struct {
	name  string
	sb    bool
	assoc int
	occ   setOcc
	cand  []uint64
}

func newMRUEngine(name string, sets, assoc int, sb bool) *mruEngine {
	e := &mruEngine{name: name, sb: sb, assoc: assoc, occ: newSetOcc(sets, assoc), cand: make([]uint64, sets)}
	// Power-on state: every line is a replacement candidate.
	for s := range e.cand {
		e.cand[s] = e.occ.full
	}
	return e
}

func (e *mruEngine) Name() string { return e.name }

func (e *mruEngine) access(set, way int) {
	word := e.cand[set] &^ (1 << uint(way))
	if word == 0 {
		// Last candidate bit was cleared: all other lines become
		// candidates again.
		word = e.occ.full &^ (1 << uint(way))
	}
	e.cand[set] = word
}

func (e *mruEngine) OnHit(set, way int) { e.access(set, way) }

func (e *mruEngine) Victim(set int) int {
	if !e.occ.isFull(set) {
		return e.occ.leftmostEmpty(set)
	}
	word := e.cand[set]
	if word == 0 {
		return 0
	}
	return bits.TrailingZeros64(word)
}

func (e *mruEngine) OnFill(set, way int) {
	e.occ.mark(set, way)
	if e.sb && !e.occ.isFull(set) {
		e.cand[set] = e.occ.full
		return
	}
	e.access(set, way)
}

func (e *mruEngine) OnInvalidate(set, way int) { e.occ.clear(set, way) }

func (e *mruEngine) Reset(set int) {
	e.occ.reset(set)
	e.cand[set] = e.occ.full
}

func (e *mruEngine) Restream() {}

// randomEngine implements RANDOM replacement with one lazily-derived RNG
// stream per set.
type randomEngine struct {
	assoc    int
	occ      setOcc
	provider RNGFor
	rngs     []*rand.Rand
}

func newRandomEngine(sets, assoc int, rng RNGFor) *randomEngine {
	return &randomEngine{assoc: assoc, occ: newSetOcc(sets, assoc), provider: rng, rngs: make([]*rand.Rand, sets)}
}

func (e *randomEngine) Name() string { return "RANDOM" }

func (e *randomEngine) rng(set int) *rand.Rand {
	if e.rngs[set] == nil {
		e.rngs[set] = e.provider(set)
	}
	return e.rngs[set]
}

func (e *randomEngine) OnHit(set, way int) {}

func (e *randomEngine) Victim(set int) int {
	if !e.occ.isFull(set) {
		return e.occ.leftmostEmpty(set)
	}
	return e.rng(set).Intn(e.assoc)
}

func (e *randomEngine) OnFill(set, way int)       { e.occ.mark(set, way) }
func (e *randomEngine) OnInvalidate(set, way int) { e.occ.clear(set, way) }
func (e *randomEngine) Reset(set int)             { e.occ.reset(set) }

func (e *randomEngine) Restream() {
	for i := range e.rngs {
		e.rngs[i] = nil
	}
}
