// Package policy implements cache replacement policies: the textbook
// policies (LRU, FIFO, tree-PLRU, random), the MRU/bit-PLRU policy and its
// Sandy Bridge variant, the full QLRU family described in Section VI-B2 of
// the nanoBench paper, the permutation-policy framework of Abel & Reineke
// (RTAS 2013), and an adaptive set-dueling combinator.
//
// These implementations serve two roles: they are the ground truth wired
// into the simulated machines' caches, and they are the candidate models
// the case-study-II inference tools compare measurements against.
//
// Each policy exists in two forms: the per-set Policy objects below (the
// reference implementations) and the flat-state Engine kernels built by
// NewEngine, which pack all sets' state of one cache into contiguous
// arrays for the simulation hot paths. The two are pinned bit-identical
// by TestEngineMatchesReference; the Single type exposes the same kernels
// for single-set trace simulation (CountHits/Simulate).
//
// Randomized decisions follow the per-set seeding contract documented in
// rng.go: each set's stream is derived from (root seed, slice, set,
// stream index) via SetSeed, so decisions do not depend on the order sets
// are first touched or on how work is split across workers.
package policy

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
)

// Policy models the replacement state of a single cache set.
//
// The cache informs the policy of hits, fills, and invalidations; the
// policy answers victim queries. Way indices are 0-based; "leftmost" in the
// paper's terminology is the lowest index.
type Policy interface {
	// Name returns the canonical policy name.
	Name() string
	// Assoc returns the associativity the policy was built for.
	Assoc() int
	// OnHit informs the policy that way was accessed and hit.
	OnHit(way int)
	// Victim returns the way a new block should be placed in. It may be an
	// invalid (empty) way. The cache must call Victim exactly once per
	// miss, followed by OnFill on the returned way: some policies (QLRU
	// _UMO variants) perform their miss-time age adjustment inside Victim.
	// On replacement the cache does not call OnInvalidate for the evicted
	// block; OnInvalidate is reserved for explicit flushes.
	Victim() int
	// OnFill informs the policy that a new block was filled into way.
	OnFill(way int)
	// OnInvalidate informs the policy that the block in way was removed
	// (CLFLUSH or WBINVD).
	OnInvalidate(way int)
	// Reset restores the power-on state.
	Reset()
}

// Factory constructs a policy instance for one cache set.
type Factory func(assoc int, rng *rand.Rand) Policy

var registry = map[string]func(assoc int, rng *rand.Rand) (Policy, error){}

func register(name string, f func(assoc int, rng *rand.Rand) (Policy, error)) {
	registry[strings.ToUpper(name)] = f
}

// New builds a policy by name. Recognized names: LRU, FIFO, PLRU, RANDOM,
// MRU, MRU* (alias MRU_SB), and any QLRU variant name such as
// "QLRU_H11_M1_R1_U2" or "QLRU_H11_MR161_R1_U2_UMO".
func New(name string, assoc int, rng *rand.Rand) (Policy, error) {
	upper := strings.ToUpper(strings.TrimSpace(name))
	if strings.HasPrefix(upper, "QLRU_") {
		p, err := ParseQLRU(upper)
		if err != nil {
			return nil, err
		}
		return p.New(assoc, rng), nil
	}
	f, ok := registry[upper]
	if !ok {
		return nil, fmt.Errorf("policy: unknown policy %q", name)
	}
	return f(assoc, rng)
}

// MustNew is New that panics on error.
func MustNew(name string, assoc int, rng *rand.Rand) Policy {
	p, err := New(name, assoc, rng)
	if err != nil {
		panic(err)
	}
	return p
}

// Names returns the registered non-QLRU policy names, sorted.
func Names() []string {
	var out []string
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// validTracker is embedded by policies to track occupancy.
type validTracker struct {
	valid []bool
}

func newValidTracker(assoc int) validTracker {
	return validTracker{valid: make([]bool, assoc)}
}

func (v *validTracker) full() bool {
	for _, ok := range v.valid {
		if !ok {
			return false
		}
	}
	return true
}

func (v *validTracker) leftmostEmpty() int {
	for i, ok := range v.valid {
		if !ok {
			return i
		}
	}
	return -1
}

func (v *validTracker) rightmostEmpty() int {
	for i := len(v.valid) - 1; i >= 0; i-- {
		if !v.valid[i] {
			return i
		}
	}
	return -1
}

func (v *validTracker) reset() {
	for i := range v.valid {
		v.valid[i] = false
	}
}
