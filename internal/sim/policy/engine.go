package policy

import (
	"fmt"
	"math/rand"
	"strings"
	"sync/atomic"
)

// Engine owns the replacement state of every set of one cache as packed
// flat arrays, replacing one heap-allocated Policy object (and an
// interface dispatch) per set. The per-set call contract is identical to
// Policy's: Victim exactly once per miss, followed by OnFill on the
// returned way; eviction does not imply OnInvalidate.
//
// Engines are obtained from NewEngine, which compiles a Spec into a
// specialized kernel for the dominant families (LRU, FIFO, tree-PLRU,
// MRU/MRU*, RANDOM, the full QLRU grid, and the set-dueling combinator)
// and transparently falls back to the reference per-set Policy path for
// anything else. Every kernel is pinned bit-identical to its reference
// implementation by TestEngineMatchesReference.
type Engine interface {
	// Name returns the policy name the engine was compiled from.
	Name() string
	// OnHit records a hit on way of set.
	OnHit(set, way int)
	// Victim returns the fill way for a miss in set.
	Victim(set int) int
	// OnFill records a fill into way of set.
	OnFill(set, way int)
	// OnInvalidate records an explicit removal (CLFLUSH) from way of set.
	OnInvalidate(set, way int)
	// Reset restores the power-on replacement state of one set. RNG
	// streams persist across Reset, matching Policy.Reset.
	Reset(set int)
	// Restream drops every memoized per-set RNG so the next draw
	// re-derives its stream from the RNGFor provider, and restores any
	// cross-set state (the dueling PSEL) to its power-on value. The
	// caller must Reset (or otherwise invalidate) all sets alongside.
	Restream()
	// AccessBatch plays a run of same-set accesses in one call. seq[i]
	// is the abstract block ID of access i; wayOf (block → way) and
	// blockAt (way → block) carry the caller's residency mapping with -1
	// meaning "absent", and are updated in place exactly as the scalar
	// OnHit/Victim/OnFill protocol would update them. If hits is non-nil
	// it must have len(seq); hits[i] is set for accesses that hit (never
	// cleared — callers pass zeroed slices). Returns the hit count.
	// Decisions are bit-identical to the equivalent per-access calls.
	AccessBatch(set int, seq []int32, wayOf, blockAt []int32, hits []bool) int
}

// Spec declaratively describes the replacement policy of a whole cache:
// either a plain policy name, or a set-dueling configuration.
type Spec struct {
	// Name is a policy name accepted by New ("LRU", "QLRU_H11_M1_R1_U2",
	// ...). Ignored when Duel is set.
	Name string
	// Duel, if non-nil, selects the adaptive set-dueling combinator.
	Duel *DuelSpec
}

// DuelSpec describes an adaptive (set-dueling) policy: two candidate
// policies, the shared selection counter, and the leader-set map.
type DuelSpec struct {
	PolicyA, PolicyB string
	// PSel is the selection counter, shared across every cache (slice)
	// built from this spec.
	PSel *PSel
	// Leader classifies a set: 'A' or 'B' for leader sets, anything else
	// for followers.
	Leader func(slice, set int) byte
}

// NewEngine compiles a spec into an engine for a cache of sets×assoc
// lines in slice. rng provides per-set RNG streams; engines call it
// lazily, only for sets whose policy actually draws.
func NewEngine(spec Spec, slice, sets, assoc int, rng RNGFor) (Engine, error) {
	if spec.Duel != nil {
		return newDuelEngine(spec.Duel, slice, sets, assoc, rng)
	}
	return newKernel(spec.Name, sets, assoc, rng)
}

// newKernel builds the specialized kernel for a plain policy name, or the
// reference engine when no kernel applies (associativities above 64 ways,
// future unspecialized policies).
func newKernel(name string, sets, assoc int, rng RNGFor) (Engine, error) {
	upper := strings.ToUpper(strings.TrimSpace(name))
	if assoc > 0 && assoc <= 64 {
		if strings.HasPrefix(upper, "QLRU_") {
			q, err := ParseQLRU(upper)
			if err != nil {
				return nil, err
			}
			return newQLRUEngine(q, sets, assoc, rng), nil
		}
		switch upper {
		case "LRU":
			return newStampEngine(upper, sets, assoc, false), nil
		case "FIFO":
			return newStampEngine(upper, sets, assoc, true), nil
		case "PLRU":
			if assoc&(assoc-1) != 0 {
				return nil, errNonPow2(assoc)
			}
			return newPLRUEngine(sets, assoc), nil
		case "RANDOM":
			return newRandomEngine(sets, assoc, rng), nil
		case "MRU":
			return newMRUEngine(upper, sets, assoc, false), nil
		case "MRU*", "MRU_SB":
			return newMRUEngine(upper, sets, assoc, true), nil
		}
	}
	if assoc > 64 && assoc <= 256 {
		// Wide-associativity kernels: multi-word occupancy/tree bitmaps,
		// 16-bit stamps (see kernels_wide.go).
		switch upper {
		case "LRU":
			return newStampEngineW(upper, sets, assoc, false), nil
		case "FIFO":
			return newStampEngineW(upper, sets, assoc, true), nil
		case "PLRU":
			if assoc&(assoc-1) != 0 {
				return nil, errNonPow2(assoc)
			}
			return newPLRUEngineW(sets, assoc), nil
		}
	}
	// Validate the name eagerly so misconfiguration fails at build time,
	// then fall back to the reference per-set path. The fallback is
	// deliberate but observable: EngineFallbacks counts it, and
	// IsReference identifies fallen-back engines.
	if _, err := New(upper, assoc, nil); err != nil {
		return nil, err
	}
	engineFallbacks.Add(1)
	return NewReferenceEngine(upper, sets, func(set int, rng *rand.Rand) Policy {
		return MustNew(upper, assoc, rng)
	}, rng), nil
}

// engineFallbacks counts newKernel calls that fell back to the reference
// per-set engine (no specialized kernel for the name × associativity).
var engineFallbacks atomic.Uint64

// EngineFallbacks returns the process-wide count of NewEngine/NewSingle
// compilations that fell back to the reference per-set engine. The >64-way
// fallback used to be silent; campaigns can now assert they run on
// specialized kernels by checking the counter (or IsReference) after
// construction.
func EngineFallbacks() uint64 { return engineFallbacks.Load() }

// IsReference reports whether e is (or, for the dueling combinator,
// contains) the reference per-set fallback rather than a specialized
// flat-state kernel.
func IsReference(e Engine) bool {
	switch v := e.(type) {
	case *refEngine:
		return true
	case *duelEngine:
		return IsReference(v.a) || IsReference(v.b)
	}
	return false
}

// SetFactory builds the reference Policy of one set.
type SetFactory func(set int, rng *rand.Rand) Policy

// NewReferenceEngine adapts per-set reference Policy objects to the
// Engine interface. It is the fallback for policies without a specialized
// kernel, and the oracle the equivalence tests compare kernels against.
// Policies materialize lazily on first touch (matching the pre-engine
// cache behaviour) and are rebuilt with fresh RNG streams after Restream.
func NewReferenceEngine(name string, sets int, f SetFactory, rng RNGFor) Engine {
	return &refEngine{
		name: name, f: f, rng: rng,
		pols: make([]Policy, sets),
		gen:  make([]uint32, sets),
	}
}

type refEngine struct {
	name string
	f    SetFactory
	rng  RNGFor
	pols []Policy
	// gen/cur implement O(1) Restream: a set whose gen lags cur is
	// rebuilt (power-on state, fresh RNG) on next touch.
	gen []uint32
	cur uint32
}

func (e *refEngine) pol(set int) Policy {
	if e.pols[set] == nil || e.gen[set] != e.cur {
		e.pols[set] = e.f(set, e.rng(set))
		e.gen[set] = e.cur
	}
	return e.pols[set]
}

func (e *refEngine) Name() string              { return e.name }
func (e *refEngine) OnHit(set, way int)        { e.pol(set).OnHit(way) }
func (e *refEngine) Victim(set int) int        { return e.pol(set).Victim() }
func (e *refEngine) OnFill(set, way int)       { e.pol(set).OnFill(way) }
func (e *refEngine) OnInvalidate(set, way int) { e.pol(set).OnInvalidate(way) }
func (e *refEngine) Restream()                 { e.cur++ }

func (e *refEngine) Reset(set int) {
	if e.pols[set] == nil || e.gen[set] != e.cur {
		// Not yet materialized (or stale): the next touch builds it in
		// power-on state anyway.
		return
	}
	e.pols[set].Reset()
}

// Single drives a one-set engine with abstract block IDs: the flat-state
// replacement for map-based SimulateSeq/CountHits on the inference hot
// paths. A Single is reusable; each Count/Simulate call starts from a
// fresh (Reset) set, while RNG streams persist across calls exactly like
// a reused Policy instance.
type Single struct {
	eng     Engine
	name    string
	assoc   int
	wayOf   []int32 // block ID -> way, or -1
	blockAt []int32 // way -> block ID, or -1
	seq32   []int32 // reusable AccessBatch input buffer
}

// NewSingle builds a single-set simulator for a named policy.
func NewSingle(name string, assoc int, rng RNGFor) (*Single, error) {
	eng, err := newKernel(name, 1, assoc, rng)
	if err != nil {
		return nil, err
	}
	return &Single{
		eng:     eng,
		name:    eng.Name(),
		assoc:   assoc,
		blockAt: make([]int32, assoc),
	}, nil
}

// Name returns the canonical policy name.
func (s *Single) Name() string { return s.name }

// Assoc returns the associativity the simulator was built for.
func (s *Single) Assoc() int { return s.assoc }

func (s *Single) prepare(seq []int) {
	maxB := 0
	for _, b := range seq {
		if b >= maxB {
			maxB = b + 1
		}
	}
	if maxB > len(s.wayOf) {
		s.wayOf = make([]int32, maxB)
	}
	for i := range s.wayOf {
		s.wayOf[i] = -1
	}
	for i := range s.blockAt {
		s.blockAt[i] = -1
	}
	s.eng.Reset(0)
}

// step plays one access and reports whether it hit.
func (s *Single) step(b int) bool {
	if w := s.wayOf[b]; w >= 0 {
		s.eng.OnHit(0, int(w))
		return true
	}
	w := s.eng.Victim(0)
	if old := s.blockAt[w]; old >= 0 {
		s.wayOf[old] = -1
	}
	s.wayOf[b] = int32(w)
	s.blockAt[w] = int32(b)
	s.eng.OnFill(0, w)
	return false
}

// CountHits plays seq against a fresh set and returns the number of hits.
// Block IDs must be non-negative.
func (s *Single) CountHits(seq []int) int {
	s.prepare(seq)
	hits := 0
	for _, b := range seq {
		if s.step(b) {
			hits++
		}
	}
	return hits
}

// Simulate plays seq against a fresh set and reports per-access hits.
func (s *Single) Simulate(seq []int) []bool {
	s.prepare(seq)
	hits := make([]bool, len(seq))
	for i, b := range seq {
		hits[i] = s.step(b)
	}
	return hits
}

// batchSeq widens seq into the reusable int32 buffer AccessBatch takes.
func (s *Single) batchSeq(seq []int) []int32 {
	if cap(s.seq32) < len(seq) {
		s.seq32 = make([]int32, len(seq))
	}
	s.seq32 = s.seq32[:len(seq)]
	for i, b := range seq {
		s.seq32[i] = int32(b)
	}
	return s.seq32
}

// CountHitsBatch is CountHits through the engine's batch entry point:
// one AccessBatch call instead of an interface dispatch per access.
// Results are bit-identical to CountHits (pinned by
// TestBatchMatchesScalar); the inference hot paths use this form.
func (s *Single) CountHitsBatch(seq []int) int {
	s.prepare(seq)
	return s.eng.AccessBatch(0, s.batchSeq(seq), s.wayOf, s.blockAt, nil)
}

// SimulateBatch is Simulate through the engine's batch entry point.
func (s *Single) SimulateBatch(seq []int) []bool {
	s.prepare(seq)
	hits := make([]bool, len(seq))
	s.eng.AccessBatch(0, s.batchSeq(seq), s.wayOf, s.blockAt, hits)
	return hits
}

// MustSingle is NewSingle that panics on error.
func MustSingle(name string, assoc int, rng RNGFor) *Single {
	s, err := NewSingle(name, assoc, rng)
	if err != nil {
		panic(fmt.Sprintf("policy: %v", err))
	}
	return s
}
