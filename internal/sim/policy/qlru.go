package policy

import (
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// QLRUParams describes one variant of the Quad-Age LRU (QLRU / 2-bit RRIP)
// policy family, following the naming scheme of Section VI-B2 of the
// nanoBench paper: QLRU_Hxy_M{x|Rpx}_R{0,1,2}_U{0,1,2,3}[_UMO].
type QLRUParams struct {
	// HitX and HitY define the hit promotion function:
	//   H(3) = HitX, H(2) = HitY, H(a) = 0 otherwise.
	HitX, HitY uint8
	// InsertAge is the age assigned to a block on a miss.
	InsertAge uint8
	// InsertProb, if nonzero, makes insertion probabilistic (the MRpx
	// form): the block is inserted with age InsertAge with probability
	// 1/InsertProb, and with age 3 otherwise.
	InsertProb int
	// RVariant selects where a block is inserted on a miss:
	//   R0: leftmost empty way; when full, leftmost age-3 way (undefined
	//       when no age-3 way exists).
	//   R1: like R0, but when full and no age-3 way exists, the leftmost
	//       way is replaced.
	//   R2: like R0, but blocks are inserted in the rightmost empty way.
	RVariant uint8
	// UVariant selects how ages are adjusted when, after an access, no
	// block with age 3 remains (i is the accessed block, M the maximum
	// current age):
	//   U0: age'(b) = age(b) + (3-M) for all b
	//   U1: like U0 but age(i) is unchanged
	//   U2: age'(b) = age(b) + 1 for all b
	//   U3: like U2 but age(i) is unchanged
	UVariant uint8
	// UpdateOnMissOnly (the _UMO suffix) applies the age adjustment only
	// on a miss, before victim selection, rather than after every access.
	UpdateOnMissOnly bool
}

// Validate checks parameter ranges and the combination rules from the
// paper (R0 requires an age-3 block to always exist, so it cannot be
// combined with U2 or U3).
func (q QLRUParams) Validate() error {
	if q.HitX > 2 {
		return fmt.Errorf("policy: QLRU hit promotion x must be 0..2, got %d", q.HitX)
	}
	if q.HitY > 1 {
		return fmt.Errorf("policy: QLRU hit promotion y must be 0..1, got %d", q.HitY)
	}
	if q.InsertAge > 3 {
		return fmt.Errorf("policy: QLRU insertion age must be 0..3, got %d", q.InsertAge)
	}
	if q.RVariant > 2 {
		return fmt.Errorf("policy: QLRU R variant must be 0..2, got %d", q.RVariant)
	}
	if q.UVariant > 3 {
		return fmt.Errorf("policy: QLRU U variant must be 0..3, got %d", q.UVariant)
	}
	if q.RVariant == 0 && (q.UVariant == 2 || q.UVariant == 3) {
		return fmt.Errorf("policy: QLRU R0 cannot be combined with U2/U3 (no age-3 block guaranteed)")
	}
	if q.InsertProb < 0 {
		return fmt.Errorf("policy: QLRU insertion probability must be positive")
	}
	return nil
}

// Name renders the canonical variant name. Built with strconv rather
// than fmt so engines may render names without boxing (benchguard).
func (q QLRUParams) Name() string {
	var sb strings.Builder
	sb.WriteString("QLRU_H")
	sb.WriteString(strconv.Itoa(int(q.HitX)))
	sb.WriteString(strconv.Itoa(int(q.HitY)))
	sb.WriteString("_M")
	if q.InsertProb > 0 {
		sb.WriteString("R")
		sb.WriteString(strconv.Itoa(q.InsertProb))
		sb.WriteString(strconv.Itoa(int(q.InsertAge)))
	} else {
		sb.WriteString(strconv.Itoa(int(q.InsertAge)))
	}
	sb.WriteString("_R")
	sb.WriteString(strconv.Itoa(int(q.RVariant)))
	sb.WriteString("_U")
	sb.WriteString(strconv.Itoa(int(q.UVariant)))
	if q.UpdateOnMissOnly {
		sb.WriteString("_UMO")
	}
	return sb.String()
}

// ParseQLRU parses a variant name such as "QLRU_H11_M1_R1_U2" or
// "QLRU_H11_MR161_R1_U2_UMO" (probabilistic insertion with p=16, age=1).
func ParseQLRU(name string) (QLRUParams, error) {
	var q QLRUParams
	upper := strings.ToUpper(strings.TrimSpace(name))
	parts := strings.Split(upper, "_")
	if len(parts) < 5 || parts[0] != "QLRU" {
		return q, fmt.Errorf("policy: malformed QLRU name %q", name)
	}
	if len(parts) == 6 {
		if parts[5] != "UMO" {
			return q, fmt.Errorf("policy: malformed QLRU suffix in %q", name)
		}
		q.UpdateOnMissOnly = true
	} else if len(parts) > 6 {
		return q, fmt.Errorf("policy: malformed QLRU name %q", name)
	}

	h := parts[1]
	if len(h) != 3 || h[0] != 'H' {
		return q, fmt.Errorf("policy: malformed hit promotion %q in %q", h, name)
	}
	q.HitX = h[1] - '0'
	q.HitY = h[2] - '0'

	m := parts[2]
	if len(m) < 2 || m[0] != 'M' {
		return q, fmt.Errorf("policy: malformed insertion age %q in %q", m, name)
	}
	if m[1] == 'R' {
		digits := m[2:]
		if len(digits) < 2 {
			return q, fmt.Errorf("policy: malformed probabilistic insertion %q in %q", m, name)
		}
		p, err := strconv.Atoi(digits[:len(digits)-1])
		if err != nil || p < 2 {
			return q, fmt.Errorf("policy: malformed probability in %q", name)
		}
		q.InsertProb = p
		q.InsertAge = digits[len(digits)-1] - '0'
	} else {
		v, err := strconv.Atoi(m[1:])
		if err != nil {
			return q, fmt.Errorf("policy: malformed insertion age in %q", name)
		}
		q.InsertAge = uint8(v)
	}

	r := parts[3]
	if len(r) != 2 || r[0] != 'R' {
		return q, fmt.Errorf("policy: malformed R variant %q in %q", r, name)
	}
	q.RVariant = r[1] - '0'

	u := parts[4]
	if len(u) != 2 || u[0] != 'U' {
		return q, fmt.Errorf("policy: malformed U variant %q in %q", u, name)
	}
	q.UVariant = u[1] - '0'

	if err := q.Validate(); err != nil {
		return q, err
	}
	return q, nil
}

// New builds a policy instance for one cache set. rng is required only for
// probabilistic insertion variants.
func (q QLRUParams) New(assoc int, rng *rand.Rand) Policy {
	return &qlru{
		QLRUParams:   q,
		validTracker: newValidTracker(assoc),
		ages:         make([]uint8, assoc),
		rng:          rng,
	}
}

// qlru implements one QLRU variant for a single set.
type qlru struct {
	QLRUParams
	validTracker
	ages []uint8
	rng  *rand.Rand
}

func (p *qlru) Assoc() int { return len(p.valid) }

func (p *qlru) hitPromote(a uint8) uint8 {
	switch a {
	case 3:
		return p.HitX
	case 2:
		return p.HitY
	default:
		return 0
	}
}

// hasAge3 reports whether any valid block has age 3.
func (p *qlru) hasAge3() bool {
	for w, ok := range p.valid {
		if ok && p.ages[w] == 3 {
			return true
		}
	}
	return false
}

// update applies the U-variant age adjustment. i is the accessed way, or
// -1 when the adjustment runs on a miss (UMO variants).
func (p *qlru) update(i int) {
	if p.hasAge3() {
		return
	}
	var maxAge uint8
	any := false
	for w, ok := range p.valid {
		if ok {
			any = true
			if p.ages[w] > maxAge {
				maxAge = p.ages[w]
			}
		}
	}
	if !any {
		return
	}
	delta := 3 - maxAge
	for w, ok := range p.valid {
		if !ok {
			continue
		}
		switch p.UVariant {
		case 0:
			p.ages[w] += delta
		case 1:
			if w != i {
				p.ages[w] += delta
			}
		case 2:
			p.ages[w]++
		case 3:
			if w != i {
				p.ages[w]++
			}
		}
		if p.ages[w] > 3 {
			p.ages[w] = 3
		}
	}
}

func (p *qlru) OnHit(way int) {
	p.ages[way] = p.hitPromote(p.ages[way])
	if !p.UpdateOnMissOnly {
		p.update(way)
	}
}

func (p *qlru) Victim() int {
	if !p.full() {
		if p.RVariant == 2 {
			return p.rightmostEmpty()
		}
		return p.leftmostEmpty()
	}
	if p.UpdateOnMissOnly {
		p.update(-1)
	}
	for w := range p.valid {
		if p.ages[w] == 3 {
			return w
		}
	}
	// No age-3 block. R1 replaces the leftmost block; for R0/R2 the paper
	// leaves this undefined — we also use the leftmost way so behaviour is
	// deterministic.
	return 0
}

func (p *qlru) insertionAge() uint8 {
	if p.InsertProb > 0 {
		if p.rng != nil && p.rng.Intn(p.InsertProb) == 0 {
			return p.InsertAge
		}
		return 3
	}
	return p.InsertAge
}

func (p *qlru) OnFill(way int) {
	p.valid[way] = true
	p.ages[way] = p.insertionAge()
	if !p.UpdateOnMissOnly {
		p.update(way)
	}
}

func (p *qlru) OnInvalidate(way int) {
	p.valid[way] = false
	p.ages[way] = 0
}

func (p *qlru) Reset() {
	p.reset()
	for i := range p.ages {
		p.ages[i] = 0
	}
}

// Ages returns a copy of the current age bits (valid ways only are
// meaningful); used by tests and debugging output.
func (p *qlru) Ages() []uint8 { return append([]uint8(nil), p.ages...) }

// EnumerateQLRU returns the canonical names of all meaningful deterministic
// QLRU variants: 6 hit-promotion functions × 4 insertion ages × 3 R
// variants × 4 U variants × {“”, UMO}, minus the invalid R0+U2/U3
// combinations.
func EnumerateQLRU() []string {
	var out []string
	for _, hx := range []uint8{0, 1, 2} {
		for _, hy := range []uint8{0, 1} {
			for m := uint8(0); m <= 3; m++ {
				for r := uint8(0); r <= 2; r++ {
					for u := uint8(0); u <= 3; u++ {
						if r == 0 && (u == 2 || u == 3) {
							continue
						}
						for _, umo := range []bool{false, true} {
							q := QLRUParams{HitX: hx, HitY: hy, InsertAge: m,
								RVariant: r, UVariant: u, UpdateOnMissOnly: umo}
							out = append(out, q.Name())
						}
					}
				}
			}
		}
	}
	return out
}
