package policy

import (
	"fmt"
	"math/rand"
	"testing"
)

// engineSeeds is how many randomized traces each policy is checked with.
func engineSeeds(t *testing.T) int {
	if testing.Short() {
		return 6
	}
	return 40
}

// probabilisticVariants samples the MRpx (probabilistic-insertion) corner
// of the QLRU family, which EnumerateQLRU does not cover.
var probabilisticVariants = []string{
	"QLRU_H11_MR161_R1_U2",
	"QLRU_H21_MR42_R2_U1_UMO",
	"QLRU_H10_MR81_R1_U0",
	"QLRU_H00_MR32_R2_U3_UMO",
}

// checkEngineTrace drives one randomized hit/miss/invalidate/reset/
// restream trace through the flat engine and the per-set reference
// policies and requires identical victim decisions throughout.
func checkEngineTrace(t *testing.T, sets, assoc int, seed int64,
	mkEngine func(stream *int64) Engine,
	mkRef func(stream int64) []Policy,
	onRefRestream func()) {
	t.Helper()

	stream := int64(0)
	eng := mkEngine(&stream)
	pols := mkRef(0)

	valid := make([][]bool, sets)
	nvalid := make([]int, sets)
	for s := range valid {
		valid[s] = make([]bool, assoc)
	}
	clearSet := func(s int) {
		for w := range valid[s] {
			valid[s][w] = false
		}
		nvalid[s] = 0
	}
	pickValid := func(rng *rand.Rand, s int) int {
		k := rng.Intn(nvalid[s])
		for w := 0; w < assoc; w++ {
			if valid[s][w] {
				if k == 0 {
					return w
				}
				k--
			}
		}
		t.Fatalf("no valid way in set %d", s)
		return -1
	}

	rng := rand.New(rand.NewSource(seed))
	for op := 0; op < 300; op++ {
		s := rng.Intn(sets)
		switch r := rng.Intn(100); {
		case r < 55: // access: hit a cached way or miss (victim + fill)
			if nvalid[s] > 0 && rng.Intn(100) < 45 {
				w := pickValid(rng, s)
				eng.OnHit(s, w)
				pols[s].OnHit(w)
				continue
			}
			wv := eng.Victim(s)
			wr := pols[s].Victim()
			if wv != wr {
				t.Fatalf("op %d (seed %d): set %d victim mismatch: engine %d, reference %d", op, seed, s, wv, wr)
			}
			eng.OnFill(s, wv)
			pols[s].OnFill(wv)
			if !valid[s][wv] {
				valid[s][wv] = true
				nvalid[s]++
			}
		case r < 70: // CLFLUSH one cached way
			if nvalid[s] == 0 {
				continue
			}
			w := pickValid(rng, s)
			eng.OnInvalidate(s, w)
			pols[s].OnInvalidate(w)
			valid[s][w] = false
			nvalid[s]--
		case r < 85: // reset one set
			eng.Reset(s)
			pols[s].Reset()
			clearSet(s)
		case r < 93: // WBINVD: reset every set
			for i := 0; i < sets; i++ {
				eng.Reset(i)
				pols[i].Reset()
				clearSet(i)
			}
		default: // restream: fresh RNG streams everywhere
			stream++
			eng.Restream()
			for i := 0; i < sets; i++ {
				eng.Reset(i)
				clearSet(i)
			}
			pols = mkRef(stream)
			if onRefRestream != nil {
				onRefRestream()
			}
		}
	}
}

func checkNamedEngine(t *testing.T, name string, sets, assoc int, seed int64) {
	t.Helper()
	root := seed * 977
	checkEngineTrace(t, sets, assoc, seed,
		func(stream *int64) Engine {
			eng, err := NewEngine(Spec{Name: name}, 0, sets, assoc, func(set int) *rand.Rand {
				return NewSetRand(root, 0, set, *stream)
			})
			if err != nil {
				t.Fatalf("NewEngine(%s): %v", name, err)
			}
			return eng
		},
		func(stream int64) []Policy {
			pols := make([]Policy, sets)
			for s := range pols {
				pols[s] = MustNew(name, assoc, NewSetRand(root, 0, s, stream))
			}
			return pols
		},
		nil)
}

// TestEngineMatchesReference pins every specialized kernel bit-identical
// to its reference Policy implementation: all registered policy names,
// the full deterministic QLRU variant grid, sampled probabilistic QLRU
// variants, and the set-dueling combinator, each across randomized traces
// for ≥40 seeds (see engineSeeds).
func TestEngineMatchesReference(t *testing.T) {
	names := append(Names(), EnumerateQLRU()...)
	names = append(names, probabilisticVariants...)
	seeds := engineSeeds(t)
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for seed := 0; seed < seeds; seed++ {
				checkNamedEngine(t, name, 4, 8, int64(seed)+1)
			}
		})
	}
	// Non-power-of-two associativity (PLRU excluded by construction).
	t.Run("assoc6", func(t *testing.T) {
		t.Parallel()
		for _, name := range []string{"LRU", "FIFO", "MRU", "MRU*", "RANDOM",
			"QLRU_H11_M1_R1_U2", "QLRU_H00_M1_R0_U0_UMO", "QLRU_H11_MR161_R1_U2"} {
			for seed := 0; seed < seeds; seed++ {
				checkNamedEngine(t, name, 3, 6, int64(seed)+1)
			}
		}
	})
}

// TestDuelEngineMatchesReference pins the flat set-dueling combinator
// against the reference leader/follower wrappers, including PSEL
// evolution, per-set RNG sharing between the two candidate policies, and
// Restream resetting the duel.
func TestDuelEngineMatchesReference(t *testing.T) {
	duels := []struct{ a, b string }{
		{"QLRU_H11_M1_R1_U2", "QLRU_H11_MR161_R1_U2"}, // Ivy Bridge L3 duel
		{"LRU", "MRU"},
		{"QLRU_H21_M2_R1_U1_UMO", "RANDOM"},
	}
	leaderOf := func(slice, set int) byte {
		switch set % 4 {
		case 0:
			return 'A'
		case 1:
			return 'B'
		}
		return 0
	}
	const sets, assoc = 8, 8
	for _, d := range duels {
		d := d
		t.Run(fmt.Sprintf("DUEL(%s,%s)", d.a, d.b), func(t *testing.T) {
			t.Parallel()
			for seed := 0; seed < engineSeeds(t); seed++ {
				root := int64(seed)*977 + 13
				pselR := NewPSel(64)
				checkEngineTrace(t, sets, assoc, int64(seed)+1,
					func(stream *int64) Engine {
						eng, err := NewEngine(Spec{Duel: &DuelSpec{
							PolicyA: d.a, PolicyB: d.b,
							PSel:   NewPSel(64),
							Leader: leaderOf,
						}}, 0, sets, assoc, func(set int) *rand.Rand {
							return NewSetRand(root, 0, set, *stream)
						})
						if err != nil {
							t.Fatalf("NewEngine: %v", err)
						}
						return eng
					},
					func(stream int64) []Policy {
						pols := make([]Policy, sets)
						for s := range pols {
							rng := NewSetRand(root, 0, s, stream)
							switch leaderOf(0, s) {
							case 'A':
								pols[s] = NewLeader(MustNew(d.a, assoc, rng), pselR, true)
							case 'B':
								pols[s] = NewLeader(MustNew(d.b, assoc, rng), pselR, false)
							default:
								f, err := NewFollower(MustNew(d.a, assoc, rng), MustNew(d.b, assoc, rng), pselR)
								if err != nil {
									t.Fatalf("NewFollower: %v", err)
								}
								pols[s] = f
							}
						}
						return pols
					},
					pselR.Reset)
			}
		})
	}
}

// TestSingleMatchesSimulateSeq pins the flat single-set trace simulator
// against the map-based SimulateSeq reference, including state reuse
// across calls (both sides keep their RNG streams between sequences).
func TestSingleMatchesSimulateSeq(t *testing.T) {
	names := append(Names(), EnumerateQLRU()...)
	names = append(names, probabilisticVariants...)
	const assoc = 8
	seeds := engineSeeds(t) / 4
	if seeds < 2 {
		seeds = 2
	}
	for _, name := range names {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for seed := 0; seed < seeds; seed++ {
				sd := int64(seed)*31 + 7
				sim, err := NewSingle(name, assoc, LazyRNG(sd))
				if err != nil {
					t.Fatalf("NewSingle(%s): %v", name, err)
				}
				ref := MustNew(name, assoc, rand.New(rand.NewSource(sd)))
				rng := rand.New(rand.NewSource(sd * 131))
				for round := 0; round < 3; round++ {
					seq := make([]int, 120)
					for i := range seq {
						seq[i] = rng.Intn(assoc + 4)
					}
					got := sim.Simulate(seq)
					want := SimulateSeq(ref, seq)
					for i := range want {
						if got[i] != want[i] {
							t.Fatalf("%s seed %d round %d: access %d: Single hit=%v, reference hit=%v",
								name, sd, round, i, got[i], want[i])
						}
					}
					if h := sim.CountHits(seq); h != countTrue(SimulateSeq(ref, seq)) {
						t.Fatalf("%s: CountHits mismatch", name)
					}
				}
			}
		})
	}
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}
