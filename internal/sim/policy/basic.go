package policy

import "math/rand"

func init() {
	register("LRU", func(assoc int, _ *rand.Rand) (Policy, error) { return NewLRU(assoc), nil })
	register("FIFO", func(assoc int, _ *rand.Rand) (Policy, error) { return NewFIFO(assoc), nil })
	register("PLRU", func(assoc int, _ *rand.Rand) (Policy, error) { return NewPLRU(assoc) })
	register("RANDOM", func(assoc int, rng *rand.Rand) (Policy, error) { return NewRandom(assoc, rng), nil })
	register("MRU", func(assoc int, _ *rand.Rand) (Policy, error) { return NewMRU(assoc, false), nil })
	register("MRU*", func(assoc int, _ *rand.Rand) (Policy, error) { return NewMRU(assoc, true), nil })
	register("MRU_SB", func(assoc int, _ *rand.Rand) (Policy, error) { return NewMRU(assoc, true), nil })
}

// lru implements true least-recently-used replacement.
type lru struct {
	validTracker
	// stamp[w] is a logical access time; the victim is the valid way with
	// the smallest stamp.
	stamp []uint64
	clock uint64
}

// NewLRU returns a least-recently-used policy.
func NewLRU(assoc int) Policy {
	return &lru{validTracker: newValidTracker(assoc), stamp: make([]uint64, assoc)}
}

func (p *lru) Name() string { return "LRU" }
func (p *lru) Assoc() int   { return len(p.valid) }

func (p *lru) OnHit(way int) {
	p.clock++
	p.stamp[way] = p.clock
}

func (p *lru) Victim() int {
	if w := p.leftmostEmpty(); w >= 0 {
		return w
	}
	victim, best := 0, p.stamp[0]
	for w := 1; w < len(p.stamp); w++ {
		if p.stamp[w] < best {
			victim, best = w, p.stamp[w]
		}
	}
	return victim
}

func (p *lru) OnFill(way int) {
	p.valid[way] = true
	p.clock++
	p.stamp[way] = p.clock
}

func (p *lru) OnInvalidate(way int) { p.valid[way] = false; p.stamp[way] = 0 }

func (p *lru) Reset() {
	p.reset()
	p.clock = 0
	for i := range p.stamp {
		p.stamp[i] = 0
	}
}

// fifo implements first-in first-out replacement: hits do not update state.
type fifo struct {
	validTracker
	stamp []uint64
	clock uint64
}

// NewFIFO returns a first-in-first-out policy.
func NewFIFO(assoc int) Policy {
	return &fifo{validTracker: newValidTracker(assoc), stamp: make([]uint64, assoc)}
}

func (p *fifo) Name() string  { return "FIFO" }
func (p *fifo) Assoc() int    { return len(p.valid) }
func (p *fifo) OnHit(way int) {}

func (p *fifo) Victim() int {
	if w := p.leftmostEmpty(); w >= 0 {
		return w
	}
	victim, best := 0, p.stamp[0]
	for w := 1; w < len(p.stamp); w++ {
		if p.stamp[w] < best {
			victim, best = w, p.stamp[w]
		}
	}
	return victim
}

func (p *fifo) OnFill(way int) {
	p.valid[way] = true
	p.clock++
	p.stamp[way] = p.clock
}

func (p *fifo) OnInvalidate(way int) { p.valid[way] = false; p.stamp[way] = 0 }

func (p *fifo) Reset() {
	p.reset()
	p.clock = 0
	for i := range p.stamp {
		p.stamp[i] = 0
	}
}

// plru implements tree-based pseudo-LRU for power-of-two associativities.
//
// The tree is stored as a heap: node 1 is the root, node n has children 2n
// and 2n+1. A bit value of 0 points to the left subtree (the next victim
// direction); accessing a leaf sets every bit on its root path to point
// away from the leaf.
type plru struct {
	validTracker
	bits []bool // index 1..assoc-1
}

// NewPLRU returns a tree-PLRU policy. The associativity must be a power of
// two.
func NewPLRU(assoc int) (Policy, error) {
	if assoc <= 0 || assoc&(assoc-1) != 0 {
		return nil, errNonPow2(assoc)
	}
	return &plru{validTracker: newValidTracker(assoc), bits: make([]bool, assoc)}, nil
}

type errNonPow2 int

func (e errNonPow2) Error() string { return "policy: PLRU requires power-of-two associativity" }

func (p *plru) Name() string { return "PLRU" }
func (p *plru) Assoc() int   { return len(p.valid) }

// touch updates the tree bits so they point away from way.
func (p *plru) touch(way int) {
	assoc := len(p.valid)
	node := 1
	// Walk from the root to the leaf. At each level the leaf lies in the
	// left half (bit should point right = true... we encode "points left"
	// as false) or right half.
	lo, hi := 0, assoc
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if way < mid {
			p.bits[node] = true // point right, away from the accessed leaf
			node = 2 * node
			hi = mid
		} else {
			p.bits[node] = false // point left
			node = 2*node + 1
			lo = mid
		}
	}
}

func (p *plru) OnHit(way int) { p.touch(way) }

func (p *plru) Victim() int {
	if w := p.leftmostEmpty(); w >= 0 {
		return w
	}
	assoc := len(p.valid)
	node := 1
	lo, hi := 0, assoc
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if !p.bits[node] { // points left
			node = 2 * node
			hi = mid
		} else {
			node = 2*node + 1
			lo = mid
		}
	}
	return lo
}

func (p *plru) OnFill(way int) {
	p.valid[way] = true
	p.touch(way)
}

func (p *plru) OnInvalidate(way int) { p.valid[way] = false }

func (p *plru) Reset() {
	p.reset()
	for i := range p.bits {
		p.bits[i] = false
	}
}

// randomPolicy evicts a uniformly random way.
type randomPolicy struct {
	validTracker
	rng *rand.Rand
}

// NewRandom returns a random-replacement policy using rng (which must not
// be nil).
func NewRandom(assoc int, rng *rand.Rand) Policy {
	return &randomPolicy{validTracker: newValidTracker(assoc), rng: rng}
}

func (p *randomPolicy) Name() string       { return "RANDOM" }
func (p *randomPolicy) Assoc() int         { return len(p.valid) }
func (p *randomPolicy) OnHit(int)          {}
func (p *randomPolicy) OnFill(w int)       { p.valid[w] = true }
func (p *randomPolicy) OnInvalidate(w int) { p.valid[w] = false }
func (p *randomPolicy) Reset()             { p.reset() }

func (p *randomPolicy) Victim() int {
	if w := p.leftmostEmpty(); w >= 0 {
		return w
	}
	return p.rng.Intn(len(p.valid))
}

// mru implements the MRU policy (also known as bit-PLRU, PLRUm, or NRU).
//
// One status bit per line; 1 means the line is a replacement candidate.
// An access clears the line's bit; when the last 1-bit is cleared, all
// other lines' bits are set. The victim is the leftmost line with bit 1.
//
// With sandyBridge set, the policy implements the MRU* variant observed on
// Sandy Bridge L3 caches: while the set is not yet full (after WBINVD),
// every fill sets all status bits to 1.
type mru struct {
	validTracker
	bits        []bool
	sandyBridge bool
}

// NewMRU returns the MRU/bit-PLRU policy; sandyBridge selects the MRU*
// variant.
func NewMRU(assoc int, sandyBridge bool) Policy {
	p := &mru{validTracker: newValidTracker(assoc), bits: make([]bool, assoc), sandyBridge: sandyBridge}
	p.Reset()
	return p
}

func (p *mru) Name() string {
	if p.sandyBridge {
		return "MRU*"
	}
	return "MRU"
}

func (p *mru) Assoc() int { return len(p.valid) }

func (p *mru) access(way int) {
	p.bits[way] = false
	for i, b := range p.bits {
		if b && i != way {
			return
		}
	}
	// Last 1-bit was cleared: set all other bits.
	for i := range p.bits {
		if i != way {
			p.bits[i] = true
		}
	}
}

func (p *mru) OnHit(way int) { p.access(way) }

func (p *mru) Victim() int {
	if w := p.leftmostEmpty(); w >= 0 {
		return w
	}
	for i, b := range p.bits {
		if b {
			return i
		}
	}
	return 0
}

func (p *mru) OnFill(way int) {
	p.valid[way] = true
	if p.sandyBridge && !p.full() {
		for i := range p.bits {
			p.bits[i] = true
		}
		return
	}
	p.access(way)
}

func (p *mru) OnInvalidate(way int) { p.valid[way] = false }

func (p *mru) Reset() {
	p.reset()
	for i := range p.bits {
		p.bits[i] = true
	}
}
