package policy

import (
	"math/rand"
	"testing"
)

// benchTrace is a fixed synthetic access stream: (set, block) pairs drawn
// from a pool slightly larger than the associativity, so the trace mixes
// hits, capacity misses, and evictions the way the cache-policy
// experiments do.
func benchTrace(sets, assoc, n int) [][2]int {
	rng := rand.New(rand.NewSource(7))
	trace := make([][2]int, n)
	for i := range trace {
		trace[i] = [2]int{rng.Intn(sets), rng.Intn(assoc + 4)}
	}
	return trace
}

// BenchmarkPolicyEngine isolates the replacement-policy layer from the
// cache and experiment code: one representative name per specialized
// kernel family runs the same trace through the flat-state engine
// (/engine) and through per-set reference Policy objects (/reference),
// so the interface-dispatch overhead the engine removes is measurable
// directly.
func BenchmarkPolicyEngine(b *testing.B) {
	const sets, assoc = 64, 8
	trace := benchTrace(sets, assoc, 1<<14)
	rngFor := func(set int) *rand.Rand { return NewSetRand(1, 0, set, 0) }

	for _, name := range []string{"LRU", "PLRU", "QLRU_H11_M1_R0_U0"} {
		b.Run(name+"/engine", func(b *testing.B) {
			eng, err := NewEngine(Spec{Name: name}, 0, sets, assoc, rngFor)
			if err != nil {
				b.Fatal(err)
			}
			lines := make([]int, sets*assoc)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, blk := trace[i%len(trace)][0], trace[i%len(trace)][1]
				hit := -1
				for w := 0; w < assoc; w++ {
					if lines[s*assoc+w] == blk+1 {
						hit = w
						break
					}
				}
				if hit >= 0 {
					eng.OnHit(s, hit)
					continue
				}
				w := eng.Victim(s)
				eng.OnFill(s, w)
				lines[s*assoc+w] = blk + 1
			}
		})
		b.Run(name+"/reference", func(b *testing.B) {
			pols := make([]Policy, sets)
			for s := range pols {
				pols[s] = MustNew(name, assoc, rngFor(s))
			}
			lines := make([]int, sets*assoc)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				s, blk := trace[i%len(trace)][0], trace[i%len(trace)][1]
				hit := -1
				for w := 0; w < assoc; w++ {
					if lines[s*assoc+w] == blk+1 {
						hit = w
						break
					}
				}
				if hit >= 0 {
					pols[s].OnHit(hit)
					continue
				}
				w := pols[s].Victim()
				pols[s].OnFill(w)
				lines[s*assoc+w] = blk + 1
			}
		})
	}
}

// BenchmarkPolicyEngineBatch runs the same trace through Engine.AccessBatch
// (per-set runs of the stream, residency maintained by the batch kernel)
// against the equivalent scalar OnHit/Victim/OnFill loop, so the per-set
// state hoisting the batch kernels perform is measurable directly.
// ns/op is per access for both variants.
func BenchmarkPolicyEngineBatch(b *testing.B) {
	const sets, assoc = 64, 8
	trace := benchTrace(sets, assoc, 1<<14)
	rngFor := func(set int) *rand.Rand { return NewSetRand(1, 0, set, 0) }

	// Split the trace into per-set block sequences: the batch entry point
	// probes one set's run at a time, as the single-set experiments do.
	perSet := make([][]int32, sets)
	for _, sb := range trace {
		perSet[sb[0]] = append(perSet[sb[0]], int32(sb[1]))
	}

	for _, name := range []string{"LRU", "PLRU", "QLRU_H11_M1_R0_U0"} {
		b.Run(name+"/batch", func(b *testing.B) {
			eng, err := NewEngine(Spec{Name: name}, 0, sets, assoc, rngFor)
			if err != nil {
				b.Fatal(err)
			}
			wayOf := make([]int32, sets*(assoc+4))
			blockAt := make([]int32, sets*assoc)
			for i := range wayOf {
				wayOf[i] = -1
			}
			for i := range blockAt {
				blockAt[i] = -1
			}
			b.ResetTimer()
			done := 0
			for done < b.N {
				for s := 0; s < sets && done < b.N; s++ {
					seq := perSet[s]
					if len(seq) == 0 {
						continue
					}
					eng.AccessBatch(s, seq, wayOf[s*(assoc+4):(s+1)*(assoc+4)], blockAt[s*assoc:(s+1)*assoc], nil)
					done += len(seq)
				}
			}
		})
		b.Run(name+"/scalar", func(b *testing.B) {
			eng, err := NewEngine(Spec{Name: name}, 0, sets, assoc, rngFor)
			if err != nil {
				b.Fatal(err)
			}
			wayOf := make([]int32, sets*(assoc+4))
			blockAt := make([]int32, sets*assoc)
			for i := range wayOf {
				wayOf[i] = -1
			}
			for i := range blockAt {
				blockAt[i] = -1
			}
			b.ResetTimer()
			done := 0
			for done < b.N {
				for s := 0; s < sets && done < b.N; s++ {
					seq := perSet[s]
					if len(seq) == 0 {
						continue
					}
					accessBatchScalar(eng, s, seq, wayOf[s*(assoc+4):(s+1)*(assoc+4)], blockAt[s*assoc:(s+1)*assoc], nil)
					done += len(seq)
				}
			}
		})
	}
}
