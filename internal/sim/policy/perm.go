package policy

import (
	"fmt"
	"math/rand"
)

// Perms specifies a permutation policy in the sense of Abel & Reineke
// (RTAS 2013): the policy maintains a total order over the blocks in a set;
// a hit at order position p applies permutation Hit[p]; a miss replaces the
// block at position 0 (the "smallest" block) and applies Miss.
//
// Permutations map current positions to new positions: after applying π,
// the element formerly at position q is at position π[q].
type Perms struct {
	Assoc int
	Hit   [][]int
	Miss  []int
}

// LRUPerms returns the permutation representation of LRU.
func LRUPerms(assoc int) Perms {
	p := Perms{Assoc: assoc, Hit: make([][]int, assoc)}
	moveToTop := func(pos int) []int {
		π := make([]int, assoc)
		for q := 0; q < assoc; q++ {
			switch {
			case q < pos:
				π[q] = q
			case q == pos:
				π[q] = assoc - 1
			default:
				π[q] = q - 1
			}
		}
		return π
	}
	for pos := 0; pos < assoc; pos++ {
		p.Hit[pos] = moveToTop(pos)
	}
	p.Miss = moveToTop(0)
	return p
}

// FIFOPerms returns the permutation representation of FIFO: hits leave the
// order unchanged; a miss inserts the new block at the top.
func FIFOPerms(assoc int) Perms {
	p := Perms{Assoc: assoc, Hit: make([][]int, assoc)}
	for pos := 0; pos < assoc; pos++ {
		π := make([]int, assoc)
		for q := range π {
			π[q] = q
		}
		p.Hit[pos] = π
	}
	π := make([]int, assoc)
	for q := 0; q < assoc; q++ {
		if q == 0 {
			π[q] = assoc - 1
		} else {
			π[q] = q - 1
		}
	}
	p.Miss = π
	return p
}

// PLRUPerms derives the permutation representation of tree-PLRU by
// simulating accesses on a reference tree. Tree-PLRU is a permutation
// policy: the tree state corresponds to a total order via the rank
// construction below, and the rank changes caused by an access depend only
// on the accessed rank. assoc must be a power of two.
func PLRUPerms(assoc int) (Perms, error) {
	if assoc <= 0 || assoc&(assoc-1) != 0 {
		return Perms{}, errNonPow2(assoc)
	}
	p := Perms{Assoc: assoc, Hit: make([][]int, assoc)}
	for pos := 0; pos < assoc; pos++ {
		π, err := plruPermForAccess(assoc, pos)
		if err != nil {
			return Perms{}, err
		}
		p.Hit[pos] = π
	}
	// A PLRU miss fills the victim (rank 0) and touches it, which is
	// exactly an access at position 0.
	p.Miss = p.Hit[0]
	return p, nil
}

// plruRank computes, for the given tree state, the order position of each
// leaf: rank 0 is the leaf all tree bits point toward (the victim).
func plruRank(t *plru) []int {
	assoc := len(t.valid)
	ranks := make([]int, assoc)
	for leaf := 0; leaf < assoc; leaf++ {
		node := 1
		lo, hi := 0, assoc
		rank := 0
		for hi-lo > 1 {
			mid := (lo + hi) / 2
			towardLeft := !t.bits[node]
			inLeft := leaf < mid
			rank <<= 1
			if towardLeft != inLeft {
				rank |= 1 // bit points away from this leaf
			}
			if inLeft {
				node = 2 * node
				hi = mid
			} else {
				node = 2*node + 1
				lo = mid
			}
		}
		ranks[leaf] = rank
	}
	return ranks
}

// plruProbeRoot tags the probe-RNG seed derivation below in the root slot
// of the package seeding contract (SetSeed), so the stream can never
// collide with a cache set's stream.
const plruProbeRoot = 0x706C7275 // "plru"

// plruPermForAccess computes the rank permutation caused by accessing the
// leaf at rank pos, and verifies state-independence on random tree states.
// The probe RNG derives from SetSeed — (assoc, pos) locating the probe the
// way (slice, set) locate a cache stream — rather than an ad-hoc linear
// seed: any fixed derivation works (the permutation is verified
// state-independent below), but sharing SetSeed keeps every non-test RNG
// in the package on the one audited scheme (rng.go).
func plruPermForAccess(assoc, pos int) ([]int, error) {
	rng := rand.New(&splitmixSource{s: uint64(SetSeed(plruProbeRoot, assoc, pos, 0))})
	var ref []int
	for trial := 0; trial < 16; trial++ {
		pp, _ := NewPLRU(assoc)
		t := pp.(*plru)
		for i := range t.bits {
			t.bits[i] = rng.Intn(2) == 1
		}
		before := plruRank(t)
		leafAt := make([]int, assoc)
		for leaf, r := range before {
			leafAt[r] = leaf
		}
		t.touch(leafAt[pos])
		after := plruRank(t)
		π := make([]int, assoc)
		for leaf, r := range before {
			π[r] = after[leaf]
		}
		if ref == nil {
			ref = π
			continue
		}
		for q := range π {
			if π[q] != ref[q] {
				return nil, fmt.Errorf("policy: PLRU rank permutation is state-dependent (assoc %d, pos %d)", assoc, pos)
			}
		}
	}
	return ref, nil
}

// permPolicy interprets a Perms specification as a Policy.
type permPolicy struct {
	validTracker
	perms Perms
	name  string
	seq   []int // seq[pos] = way at this order position
}

// NewPermutation builds a policy from its permutation specification.
func NewPermutation(name string, perms Perms) Policy {
	p := &permPolicy{
		validTracker: newValidTracker(perms.Assoc),
		perms:        perms,
		name:         name,
		seq:          make([]int, perms.Assoc),
	}
	p.Reset()
	return p
}

func (p *permPolicy) Name() string { return p.name }
func (p *permPolicy) Assoc() int   { return p.perms.Assoc }

func (p *permPolicy) apply(π []int) {
	newSeq := make([]int, len(p.seq))
	for q, way := range p.seq {
		newSeq[π[q]] = way
	}
	copy(p.seq, newSeq)
}

func (p *permPolicy) posOf(way int) int {
	for pos, w := range p.seq {
		if w == way {
			return pos
		}
	}
	return -1
}

func (p *permPolicy) OnHit(way int) {
	if pos := p.posOf(way); pos >= 0 {
		p.apply(p.perms.Hit[pos])
	}
}

func (p *permPolicy) Victim() int {
	if w := p.leftmostEmpty(); w >= 0 {
		return w
	}
	return p.seq[0]
}

func (p *permPolicy) OnFill(way int) {
	replacing := p.valid[way]
	p.valid[way] = true
	pos := p.posOf(way)
	if replacing {
		// Replacement: the victim is at position 0; the new block takes
		// its place and the miss permutation is applied. Be robust if the
		// cache chose a different way than Victim() suggested.
		if pos != 0 {
			p.seq[pos], p.seq[0] = p.seq[0], p.seq[pos]
		}
		p.apply(p.perms.Miss)
		return
	}
	// Filling an empty way behaves like an access at the way's current
	// order position (tree-PLRU fills touch the tree exactly like a hit;
	// for FIFO the hit permutation is the identity, which combined with
	// leftmost-empty fill order reproduces insertion order).
	p.apply(p.perms.Hit[pos])
}

func (p *permPolicy) OnInvalidate(way int) { p.valid[way] = false }

func (p *permPolicy) Reset() {
	p.reset()
	for i := range p.seq {
		p.seq[i] = i
	}
}
