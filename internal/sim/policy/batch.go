package policy

import (
	"math/bits"
	"math/rand"
)

// This file holds the AccessBatch implementations: one engine call plays
// a whole run of same-set accesses, hoisting the per-set state load (and
// any per-set invariants: the stamp-clock wrap check, the QLRU age-bias
// slices, the dueling leader classification and PSEL winner) out of the
// inner loop. cachetools.RunSeqTrials and the inference/age-graph paths
// generate exactly this shape — long block-ID sequences confined to one
// set — so the batch loops remove an interface dispatch plus several
// indexed loads per access. Every loop is pinned bit-identical to the
// scalar OnHit/Victim/OnFill protocol by TestBatchMatchesScalar.

// accessBatchScalar implements the AccessBatch contract through the
// scalar per-access entry points. It is the reference the specialized
// loops are tested against, and the fallback for engines without one.
func accessBatchScalar(e Engine, set int, seq, wayOf, blockAt []int32, hits []bool) int {
	n := 0
	for i, b := range seq {
		if w := wayOf[b]; w >= 0 {
			e.OnHit(set, int(w))
			n++
			if hits != nil {
				hits[i] = true
			}
			continue
		}
		w := int32(e.Victim(set))
		if old := blockAt[w]; old >= 0 {
			wayOf[old] = -1
		}
		wayOf[b] = w
		blockAt[w] = b
		e.OnFill(set, int(w))
	}
	return n
}

func (e *refEngine) AccessBatch(set int, seq, wayOf, blockAt []int32, hits []bool) int {
	// Hoist the per-set policy lookup (lazy materialization + two array
	// loads) out of the loop; the reference Policy calls stay scalar.
	p := e.pol(set)
	n := 0
	for i, b := range seq {
		if w := wayOf[b]; w >= 0 {
			p.OnHit(int(w))
			n++
			if hits != nil {
				hits[i] = true
			}
			continue
		}
		w := int32(p.Victim())
		if old := blockAt[w]; old >= 0 {
			wayOf[old] = -1
		}
		wayOf[b] = w
		blockAt[w] = b
		p.OnFill(int(w))
	}
	return n
}

func (e *stampEngine) AccessBatch(set int, seq, wayOf, blockAt []int32, hits []bool) int {
	base := set * e.assoc
	st := e.stamps[base : base+e.assoc]
	clock := e.clock[set]
	occ := e.occ.words[set]
	full := e.occ.full
	n := 0
	for i, b := range seq {
		if w := wayOf[b]; w >= 0 {
			if !e.fifo {
				if clock == ^uint32(0) {
					e.clock[set] = clock
					e.renorm(set)
					clock = e.clock[set]
				}
				clock++
				st[w] = clock
			}
			n++
			if hits != nil {
				hits[i] = true
			}
			continue
		}
		var w int32
		if occ != full {
			w = int32(bits.TrailingZeros64(^occ & full))
		} else {
			best := st[0]
			w = 0
			for v := 1; v < e.assoc; v++ {
				if s := st[v]; s < best {
					w, best = int32(v), s
				}
			}
		}
		if old := blockAt[w]; old >= 0 {
			wayOf[old] = -1
		}
		wayOf[b] = w
		blockAt[w] = b
		occ |= 1 << uint(w)
		if clock == ^uint32(0) {
			e.clock[set] = clock
			e.renorm(set)
			clock = e.clock[set]
		}
		clock++
		st[w] = clock
	}
	e.clock[set] = clock
	e.occ.words[set] = occ
	return n
}

func (e *plruEngine) AccessBatch(set int, seq, wayOf, blockAt []int32, hits []bool) int {
	word := e.tree[set]
	occ := e.occ.words[set]
	full := e.occ.full
	assoc := e.assoc
	n := 0
	for i, b := range seq {
		if w := wayOf[b]; w >= 0 {
			way := int(w)
			node := 1
			lo, hi := 0, assoc
			for hi-lo > 1 {
				mid := (lo + hi) / 2
				if way < mid {
					word |= 1 << uint(node)
					node = 2 * node
					hi = mid
				} else {
					word &^= 1 << uint(node)
					node = 2*node + 1
					lo = mid
				}
			}
			n++
			if hits != nil {
				hits[i] = true
			}
			continue
		}
		var w int
		if occ != full {
			w = bits.TrailingZeros64(^occ & full)
		} else {
			node := 1
			lo, hi := 0, assoc
			for hi-lo > 1 {
				mid := (lo + hi) / 2
				if word>>uint(node)&1 == 0 {
					node = 2 * node
					hi = mid
				} else {
					node = 2*node + 1
					lo = mid
				}
			}
			w = lo
		}
		if old := blockAt[w]; old >= 0 {
			wayOf[old] = -1
		}
		wayOf[b] = int32(w)
		blockAt[w] = b
		occ |= 1 << uint(w)
		node := 1
		lo, hi := 0, assoc
		for hi-lo > 1 {
			mid := (lo + hi) / 2
			if w < mid {
				word |= 1 << uint(node)
				node = 2 * node
				hi = mid
			} else {
				word &^= 1 << uint(node)
				node = 2*node + 1
				lo = mid
			}
		}
	}
	e.tree[set] = word
	e.occ.words[set] = occ
	return n
}

func (e *mruEngine) AccessBatch(set int, seq, wayOf, blockAt []int32, hits []bool) int {
	cand := e.cand[set]
	occ := e.occ.words[set]
	full := e.occ.full
	n := 0
	for i, b := range seq {
		if w := wayOf[b]; w >= 0 {
			word := cand &^ (1 << uint(w))
			if word == 0 {
				word = full &^ (1 << uint(w))
			}
			cand = word
			n++
			if hits != nil {
				hits[i] = true
			}
			continue
		}
		var w int
		switch {
		case occ != full:
			w = bits.TrailingZeros64(^occ & full)
		case cand == 0:
			w = 0
		default:
			w = bits.TrailingZeros64(cand)
		}
		if old := blockAt[w]; old >= 0 {
			wayOf[old] = -1
		}
		wayOf[b] = int32(w)
		blockAt[w] = b
		occ |= 1 << uint(w)
		if e.sb && occ != full {
			cand = full
			continue
		}
		word := cand &^ (1 << uint(w))
		if word == 0 {
			word = full &^ (1 << uint(w))
		}
		cand = word
	}
	e.cand[set] = cand
	e.occ.words[set] = occ
	return n
}

func (e *randomEngine) AccessBatch(set int, seq, wayOf, blockAt []int32, hits []bool) int {
	occ := e.occ.words[set]
	full := e.occ.full
	var r *rand.Rand // materialized only by a full-set miss, like rng(set)
	n := 0
	for i, b := range seq {
		if w := wayOf[b]; w >= 0 {
			n++
			if hits != nil {
				hits[i] = true
			}
			continue
		}
		var w int
		if occ != full {
			w = bits.TrailingZeros64(^occ & full)
		} else {
			if r == nil {
				r = e.rng(set)
			}
			w = r.Intn(e.assoc)
		}
		if old := blockAt[w]; old >= 0 {
			wayOf[old] = -1
		}
		wayOf[b] = int32(w)
		blockAt[w] = b
		occ |= 1 << uint(w)
	}
	e.occ.words[set] = occ
	return n
}

func (e *qlruEngine) AccessBatch(set int, seq, wayOf, blockAt []int32, hits []bool) int {
	// ages/h alias the engine's backing arrays, so the update/renorm
	// helpers (which age through the bias and histogram) stay coherent
	// with the hoisted views. The bias itself is reloaded per use — the
	// U-variant aging mutates it mid-batch.
	base := set * e.assoc
	ages := e.ages[base : base+e.assoc]
	h := e.hist[set*4 : set*4+4]
	umo := e.q.UpdateOnMissOnly
	n := 0
	for i, b := range seq {
		if w := wayOf[b]; w >= 0 {
			old := ages[w] - e.bias[set]
			nw := int16(e.hitTab[old])
			if nw != old {
				ages[w] = nw + e.bias[set]
				h[old]--
				h[nw]++
			}
			if !umo && h[3] == 0 {
				e.update(set, int(w))
			}
			n++
			if hits != nil {
				hits[i] = true
			}
			continue
		}
		var w int32
		if !e.occ.isFull(set) {
			if e.q.RVariant == 2 {
				w = int32(e.occ.rightmostEmpty(set))
			} else {
				w = int32(e.occ.leftmostEmpty(set))
			}
		} else {
			if umo {
				e.update(set, -1)
			}
			if h[3] == 0 {
				w = 0
			} else {
				want := 3 + e.bias[set]
				w = 0
				for v := 0; v < e.assoc; v++ {
					if ages[v] == want {
						w = int32(v)
						break
					}
				}
			}
		}
		if old := blockAt[w]; old >= 0 {
			wayOf[old] = -1
		}
		wayOf[b] = w
		blockAt[w] = b
		if e.occ.test(set, int(w)) {
			h[ages[w]-e.bias[set]]--
		}
		e.occ.mark(set, int(w))
		a := int16(e.insertionAge(set))
		ages[w] = a + e.bias[set]
		h[a]++
		if !umo && h[3] == 0 {
			e.update(set, int(w))
		}
	}
	return n
}

func (e *duelEngine) AccessBatch(set int, seq, wayOf, blockAt []int32, hits []bool) int {
	switch e.leader(set) {
	case 'A':
		return e.leaderBatch(e.a, true, set, seq, wayOf, blockAt, hits)
	case 'B':
		return e.leaderBatch(e.b, false, set, seq, wayOf, blockAt, hits)
	}
	// Follower set: PSEL moves only on leader fills, which a single-set
	// batch cannot contain, so the duel winner is constant for the whole
	// batch and the lookup hoists out of the loop. Only the winner is
	// asked for victims (the loser's RNG must not advance); both policies
	// observe every hit and fill, as in the scalar follower path.
	win := e.a
	if e.psel.UseB() {
		win = e.b
	}
	n := 0
	for i, b := range seq {
		if w := wayOf[b]; w >= 0 {
			e.a.OnHit(set, int(w))
			e.b.OnHit(set, int(w))
			n++
			if hits != nil {
				hits[i] = true
			}
			continue
		}
		w := int32(win.Victim(set))
		if old := blockAt[w]; old >= 0 {
			wayOf[old] = -1
		}
		wayOf[b] = w
		blockAt[w] = b
		e.a.OnFill(set, int(w))
		e.b.OnFill(set, int(w))
	}
	return n
}

// leaderBatch plays a batch on a leader set: only the leader's own policy
// is driven, and every fill bumps PSEL toward the other policy.
func (e *duelEngine) leaderBatch(p Engine, isA bool, set int, seq, wayOf, blockAt []int32, hits []bool) int {
	n := 0
	for i, b := range seq {
		if w := wayOf[b]; w >= 0 {
			p.OnHit(set, int(w))
			n++
			if hits != nil {
				hits[i] = true
			}
			continue
		}
		w := int32(p.Victim(set))
		if old := blockAt[w]; old >= 0 {
			wayOf[old] = -1
		}
		wayOf[b] = w
		blockAt[w] = b
		if isA {
			e.psel.MissA()
		} else {
			e.psel.MissB()
		}
		p.OnFill(set, int(w))
	}
	return n
}
