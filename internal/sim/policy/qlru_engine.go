package policy

import "math/rand"

// qlruEngine is the compiled flat-state kernel for one QLRU variant. The
// parsed spec is baked into a hit-promotion table and pre-branched
// R/U-variant fields instead of being re-interpreted per access, and the
// U-variant aging rule runs in O(1) instead of an O(assoc) sweep: each
// set's ages are stored relative to a per-set bias (aging every valid way
// by delta is one bias decrement), and a per-set histogram of effective
// ages keeps both the "an age-3 block exists" early-out and the
// delta = 3 - maxAge computation constant-time.
type qlruEngine struct {
	q     QLRUParams
	name  string
	assoc int
	occ   setOcc
	// ages[set*assoc+way] is the stored age; the way's effective age is
	// ages[i] - bias[set]. Valid ways always have effective ages in
	// [0, 3]; stored values of invalid ways are never read before being
	// rewritten by OnFill.
	ages []int16
	bias []int16
	// hist[set*4+a] counts the valid ways of set whose effective age is a.
	hist []int32
	// hitTab[age] is the post-hit age: {0, 0, HitY, HitX}.
	hitTab   [4]uint8
	provider RNGFor
	rngs     []*rand.Rand // memoized per-set streams (probabilistic only)
}

// biasRenorm triggers re-basing a set's stored ages. Aging decrements the
// bias by at most 3, so stored values stay comfortably inside int16 and
// the O(assoc) renormalization amortizes to nothing.
const biasRenorm = -16000

func newQLRUEngine(q QLRUParams, sets, assoc int, rng RNGFor) *qlruEngine {
	e := &qlruEngine{
		q: q, name: q.Name(), assoc: assoc,
		occ:      newSetOcc(sets, assoc),
		ages:     make([]int16, sets*assoc),
		bias:     make([]int16, sets),
		hist:     make([]int32, sets*4),
		hitTab:   [4]uint8{0, 0, q.HitY, q.HitX},
		provider: rng,
	}
	if q.InsertProb > 0 {
		e.rngs = make([]*rand.Rand, sets)
	}
	return e
}

func (e *qlruEngine) Name() string { return e.name }

// update applies the U-variant age adjustment; i is the accessed way, or
// -1 on a UMO miss. The histogram makes every step O(1): the early-out is
// hist[3] > 0, the U0/U1 delta comes from the highest occupied bucket,
// and aging all valid ways is a bias decrement plus a histogram shift
// (the accessed way, when the variant exempts it, is compensated back).
func (e *qlruEngine) update(set, i int) {
	h := e.hist[set*4 : set*4+4]
	if h[3] > 0 {
		return
	}
	if e.occ.words[set] == 0 {
		return
	}
	delta := int16(1)
	if e.q.UVariant < 2 {
		// delta = 3 - maxAge; some valid way exists, so a bucket is
		// occupied and maxAge ≤ 2 (h[3] == 0 here).
		switch {
		case h[2] > 0:
			delta = 1
		case h[1] > 0:
			delta = 2
		default:
			delta = 3
		}
	}
	skip := -1
	if (e.q.UVariant == 1 || e.q.UVariant == 3) && i >= 0 {
		skip = i
	}
	var skipAge int16
	if skip >= 0 && e.occ.test(set, skip) {
		skipAge = e.ages[set*e.assoc+skip] - e.bias[set]
		h[skipAge]--
	} else {
		skip = -1
	}
	// Shift the histogram up by delta; no valid way has age 3, so
	// age+delta ≤ 3 (delta = 3-maxAge for U0/U1, 1 for U2/U3) and the
	// reference clamp can never fire.
	for a := 3 - delta; a >= 0; a-- {
		h[a+delta] = h[a]
	}
	for a := int16(0); a < delta; a++ {
		h[a] = 0
	}
	e.bias[set] -= delta
	if skip >= 0 {
		// The exempted way keeps its effective age: the bias decrement
		// raised every effective age by delta, so its stored age drops.
		e.ages[set*e.assoc+skip] -= delta
		h[skipAge]++
	}
	if e.bias[set] <= biasRenorm {
		e.renorm(set)
	}
}

// renorm rewrites a set's stored ages as plain effective ages and resets
// the bias. Stored values of invalid ways may be stale; clamping them
// into [0, 3] is safe (they are rewritten before any read) and keeps
// every stored value small.
func (e *qlruEngine) renorm(set int) {
	base := set * e.assoc
	b := e.bias[set]
	for w := 0; w < e.assoc; w++ {
		a := e.ages[base+w] - b
		if a < 0 {
			a = 0
		} else if a > 3 {
			a = 3
		}
		e.ages[base+w] = a
	}
	e.bias[set] = 0
}

func (e *qlruEngine) OnHit(set, way int) {
	i := set*e.assoc + way
	old := e.ages[i] - e.bias[set]
	nw := int16(e.hitTab[old])
	if nw != old {
		e.ages[i] = nw + e.bias[set]
		e.hist[set*4+int(old)]--
		e.hist[set*4+int(nw)]++
	}
	if !e.q.UpdateOnMissOnly && e.hist[set*4+3] == 0 {
		e.update(set, way)
	}
}

func (e *qlruEngine) Victim(set int) int {
	if !e.occ.isFull(set) {
		if e.q.RVariant == 2 {
			return e.occ.rightmostEmpty(set)
		}
		return e.occ.leftmostEmpty(set)
	}
	if e.q.UpdateOnMissOnly {
		e.update(set, -1)
	}
	if e.hist[set*4+3] == 0 {
		// No age-3 block: R1 (and, for determinism, R0/R2) replaces the
		// leftmost way.
		return 0
	}
	base := set * e.assoc
	want := 3 + e.bias[set]
	for w := 0; w < e.assoc; w++ {
		if e.ages[base+w] == want {
			return w
		}
	}
	return 0
}

func (e *qlruEngine) rng(set int) *rand.Rand {
	if e.rngs[set] == nil {
		e.rngs[set] = e.provider(set)
	}
	return e.rngs[set]
}

func (e *qlruEngine) insertionAge(set int) uint8 {
	if e.q.InsertProb > 0 {
		if r := e.rng(set); r != nil && r.Intn(e.q.InsertProb) == 0 {
			return e.q.InsertAge
		}
		return 3
	}
	return e.q.InsertAge
}

func (e *qlruEngine) OnFill(set, way int) {
	i := set*e.assoc + way
	if e.occ.test(set, way) {
		// Replacing a valid line (eviction fill): drop its old age.
		e.hist[set*4+int(e.ages[i]-e.bias[set])]--
	}
	e.occ.mark(set, way)
	a := int16(e.insertionAge(set))
	e.ages[i] = a + e.bias[set]
	e.hist[set*4+int(a)]++
	if !e.q.UpdateOnMissOnly && e.hist[set*4+3] == 0 {
		e.update(set, way)
	}
}

func (e *qlruEngine) OnInvalidate(set, way int) {
	i := set*e.assoc + way
	if e.occ.test(set, way) {
		e.hist[set*4+int(e.ages[i]-e.bias[set])]--
	}
	e.occ.clear(set, way)
	e.ages[i] = e.bias[set]
}

func (e *qlruEngine) Reset(set int) {
	e.occ.reset(set)
	base := set * e.assoc
	ages := e.ages[base : base+e.assoc]
	for i := range ages {
		ages[i] = 0
	}
	e.bias[set] = 0
	hist := e.hist[set*4 : set*4+4]
	for i := range hist {
		hist[i] = 0
	}
}

func (e *qlruEngine) Restream() {
	for i := range e.rngs {
		e.rngs[i] = nil
	}
}
