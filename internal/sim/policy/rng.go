package policy

import "math/rand"

// Per-set RNG seeding contract
//
// Randomized policies (RANDOM victims, probabilistic QLRU insertion) draw
// from a dedicated stream per cache set, never from a shared machine RNG.
// The stream of a set is a pure function of four values:
//
//	SetSeed(root, slice, set, stream)
//
// where root is the owning machine's seed, (slice, set) locate the set
// within its cache, and stream is an experiment index (0 at construction;
// Cache.Restream selects another). Because the seed does not depend on
// when — or whether — other sets are touched, policy decisions are
// reproducible independent of set-initialization order, and independent
// sets can be simulated on any number of workers with byte-identical
// results. The derivation mirrors internal/sched's index-derived seeds:
// one SplitMix64 finalizer application per component.

const golden = 0x9E3779B97F4A7C15 // SplitMix64 increment

// mix64 is the SplitMix64 finalizer (same mixing as sched.DeriveSeed).
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// SetSeed derives the deterministic RNG seed of one cache set under the
// package seeding contract (see above).
func SetSeed(root int64, slice, set int, stream int64) int64 {
	z := mix64(uint64(root) + golden*uint64(slice+1))
	z = mix64(z + golden*uint64(set+1))
	z = mix64(z + golden*(uint64(stream)+1))
	return int64(z)
}

// splitmixSource is a SplitMix64 rand.Source64. Its 8 bytes of state make
// per-set streams ~600× cheaper to create than the default Go source
// (which allocates a 607-word lagged-Fibonacci table per stream).
type splitmixSource struct{ s uint64 }

func (p *splitmixSource) Uint64() uint64 {
	p.s += golden
	return mix64(p.s)
}

func (p *splitmixSource) Int63() int64    { return int64(p.Uint64() >> 1) }
func (p *splitmixSource) Seed(seed int64) { p.s = uint64(seed) }

// NewSetRand returns the RNG of one cache set under the seeding contract.
func NewSetRand(root int64, slice, set int, stream int64) *rand.Rand {
	return rand.New(&splitmixSource{s: uint64(SetSeed(root, slice, set, stream))})
}

// RNGFor hands an Engine the RNG of one set. Engines call it at most once
// per set between Restream calls and memoize the result, so providers may
// construct the stream on demand.
type RNGFor func(set int) *rand.Rand

// FixedRNG adapts a single shared *rand.Rand to an RNGFor (every set draws
// from the same stream, in access order — the pre-engine behaviour).
func FixedRNG(rng *rand.Rand) RNGFor {
	return func(int) *rand.Rand { return rng }
}

// LazyRNG returns an RNGFor that materializes one shared stream seeded
// with seed on first draw. Deterministic policies never trigger the
// construction, which keeps building large candidate pools cheap.
func LazyRNG(seed int64) RNGFor {
	var r *rand.Rand
	return func(int) *rand.Rand {
		if r == nil {
			r = rand.New(rand.NewSource(seed))
		}
		return r
	}
}
