package policy

import "fmt"

// PSel is the shared policy-selection counter for adaptive (set-dueling)
// caches. Misses in leader sets of policy A increment it; misses in leader
// sets of policy B decrement it. Follower sets use policy B while the
// counter is in the upper half of its range (policy A is "losing").
type PSel struct {
	v   int
	max int
}

// NewPSel returns a selection counter with the given saturation bound.
func NewPSel(max int) *PSel {
	return &PSel{v: max / 2, max: max}
}

// MissA records a miss in an A-leader set.
func (s *PSel) MissA() {
	if s.v < s.max {
		s.v++
	}
}

// MissB records a miss in a B-leader set.
func (s *PSel) MissB() {
	if s.v > 0 {
		s.v--
	}
}

// UseB reports whether follower sets should currently use policy B.
func (s *PSel) UseB() bool { return s.v > s.max/2 }

// Reset restores the counter to its power-on midpoint.
func (s *PSel) Reset() { s.v = s.max / 2 }

// leader wraps a fixed policy and reports its misses to the selector.
type leader struct {
	Policy
	psel *PSel
	isA  bool
}

// NewLeader wraps p as a dueling leader set; fills (misses) update psel.
func NewLeader(p Policy, psel *PSel, isA bool) Policy {
	return &leader{Policy: p, psel: psel, isA: isA}
}

func (l *leader) OnFill(way int) {
	if l.isA {
		l.psel.MissA()
	} else {
		l.psel.MissB()
	}
	l.Policy.OnFill(way)
}

// follower maintains the state of both candidate policies and takes victim
// decisions from whichever policy currently leads the duel. Both policy
// states observe every access, which matches hardware where the per-line
// state bits are shared between the two (structurally similar) policies.
type follower struct {
	a, b Policy
	psel *PSel
}

// NewFollower builds a follower-set policy for the duel described by psel.
func NewFollower(a, b Policy, psel *PSel) (Policy, error) {
	if a.Assoc() != b.Assoc() {
		return nil, fmt.Errorf("policy: follower policies have different associativity")
	}
	return &follower{a: a, b: b, psel: psel}, nil
}

func (f *follower) Name() string {
	return fmt.Sprintf("DUEL(%s,%s)", f.a.Name(), f.b.Name())
}

func (f *follower) Assoc() int { return f.a.Assoc() }

func (f *follower) OnHit(way int) {
	f.a.OnHit(way)
	f.b.OnHit(way)
}

func (f *follower) Victim() int {
	if f.psel.UseB() {
		return f.b.Victim()
	}
	return f.a.Victim()
}

func (f *follower) OnFill(way int) {
	f.a.OnFill(way)
	f.b.OnFill(way)
}

func (f *follower) OnInvalidate(way int) {
	f.a.OnInvalidate(way)
	f.b.OnInvalidate(way)
}

func (f *follower) Reset() {
	f.a.Reset()
	f.b.Reset()
}
