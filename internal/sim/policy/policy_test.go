package policy

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLRUBasics(t *testing.T) {
	p := NewLRU(4)
	// Fill 0..3, then access 0; victim must be 1 (least recently used).
	hits := SimulateSeq(p, []int{0, 1, 2, 3, 0, 4, 1})
	want := []bool{false, false, false, false, true, false, false}
	for i := range want {
		if hits[i] != want[i] {
			t.Fatalf("LRU hits = %v, want %v", hits, want)
		}
	}
}

func TestLRUThrashing(t *testing.T) {
	// Cyclic access to assoc+1 blocks always misses under LRU.
	p := NewLRU(4)
	var seq []int
	for r := 0; r < 5; r++ {
		for b := 0; b < 5; b++ {
			seq = append(seq, b)
		}
	}
	if n := CountHits(p, seq); n != 0 {
		t.Fatalf("LRU cyclic thrashing: got %d hits, want 0", n)
	}
}

func TestFIFOIgnoresHits(t *testing.T) {
	p := NewFIFO(2)
	// Fill 0,1; hit 0 repeatedly; miss 2 must still evict 0 (first in).
	hits := SimulateSeq(p, []int{0, 1, 0, 0, 0, 2, 1, 0})
	// After 2 is filled (evicting 0), 1 must still be present, 0 not.
	want := []bool{false, false, true, true, true, false, true, false}
	for i := range want {
		if hits[i] != want[i] {
			t.Fatalf("FIFO hits = %v, want %v", hits, want)
		}
	}
}

func TestPLRUKnownPattern(t *testing.T) {
	pp, err := NewPLRU(4)
	if err != nil {
		t.Fatal(err)
	}
	// Fill 0,1,2,3 (touching each). After touching 3 last, the tree points
	// to the left half and within it to leaf 0.
	hits := SimulateSeq(pp, []int{0, 1, 2, 3, 4, 1})
	// 4 must evict way 0's block (block 0); block 1 shares the left half
	// with block 0... after filling 4 into way 0, the tree points right.
	if hits[4] {
		t.Fatal("access to fresh block 4 should miss")
	}
	if !hits[5] {
		t.Fatal("block 1 should still be cached after one miss")
	}
}

func TestPLRURejectsNonPow2(t *testing.T) {
	if _, err := NewPLRU(12); err == nil {
		t.Fatal("expected error for associativity 12")
	}
	if _, err := PLRUPerms(6); err == nil {
		t.Fatal("expected error for associativity 6")
	}
}

func TestMRUPaperExample(t *testing.T) {
	// Paper: access sets bit to 0; when the last 1-bit is cleared, all
	// other bits are set to 1. Victim is the leftmost 1-bit.
	p := NewMRU(2, false)
	hits := SimulateSeq(p, []int{0, 1, 2, 1, 3})
	// fill 0 -> way0 bit0=0, bit1=1; fill 1 -> way1, last 1 cleared so
	// bit0=1; miss 2 evicts way0 (leftmost 1).
	want := []bool{false, false, false, true, false}
	for i := range want {
		if hits[i] != want[i] {
			t.Fatalf("MRU hits = %v, want %v", hits, want)
		}
	}
}

func TestMRUStarDiffersFromMRU(t *testing.T) {
	// The Sandy Bridge variant sets all bits to 1 while the set is not yet
	// full; find a sequence distinguishing the two.
	seqs := [][]int{}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		var s []int
		for j := 0; j < 20; j++ {
			s = append(s, rng.Intn(10))
		}
		seqs = append(seqs, s)
	}
	differ := false
	for _, s := range seqs {
		a := CountHits(NewMRU(8, false), s)
		b := CountHits(NewMRU(8, true), s)
		if a != b {
			differ = true
			break
		}
	}
	if !differ {
		t.Fatal("MRU and MRU* behaved identically on all random sequences")
	}
}

func TestQLRUNameRoundTrip(t *testing.T) {
	names := EnumerateQLRU()
	if len(names) != 480 {
		t.Fatalf("EnumerateQLRU: got %d variants, want 480", len(names))
	}
	seen := map[string]bool{}
	for _, n := range names {
		if seen[n] {
			t.Fatalf("duplicate variant name %s", n)
		}
		seen[n] = true
		q, err := ParseQLRU(n)
		if err != nil {
			t.Fatalf("ParseQLRU(%s): %v", n, err)
		}
		if q.Name() != n {
			t.Fatalf("name round trip: %s -> %s", n, q.Name())
		}
	}
}

func TestQLRUProbabilisticName(t *testing.T) {
	q, err := ParseQLRU("QLRU_H11_MR161_R1_U2")
	if err != nil {
		t.Fatal(err)
	}
	if q.InsertProb != 16 || q.InsertAge != 1 || q.HitX != 1 || q.HitY != 1 ||
		q.RVariant != 1 || q.UVariant != 2 || q.UpdateOnMissOnly {
		t.Fatalf("unexpected params: %+v", q)
	}
	if q.Name() != "QLRU_H11_MR161_R1_U2" {
		t.Fatalf("name: %s", q.Name())
	}
}

func TestQLRUInvalidNames(t *testing.T) {
	bad := []string{
		"QLRU_H11_M1_R0_U2", // R0 with U2 invalid
		"QLRU_H11_M1_R0_U3",
		"QLRU_H31_M1_R1_U0", // x out of range
		"QLRU_H12_M1_R1_U0", // y out of range
		"QLRU_H11_M5_R1_U0", // age out of range
		"QLRU_H11_M1_R4_U0",
		"QLRU_H11_M1_R1_U7",
		"QLRU_H11_M1_R1",
		"QLRU_H11_M1_R1_U0_XYZ",
		"LRUQ_H11_M1_R1_U0",
	}
	for _, n := range bad {
		if _, err := ParseQLRU(n); err == nil {
			t.Errorf("ParseQLRU(%s): expected error", n)
		}
	}
}

func TestQLRUSRRIPBehaviour(t *testing.T) {
	// 2-bit SRRIP-HP is QLRU_H00_M2_R0_U0_UMO. Insertion age 2, hit
	// promotes to 0, victim = leftmost age 3 after U0 adjustment.
	q, err := ParseQLRU("QLRU_H00_M2_R0_U0_UMO")
	if err != nil {
		t.Fatal(err)
	}
	p := q.New(4, nil)
	// Fill 0..3 (ages all 2). Miss on 4: U0 raises all to 3; leftmost
	// (block 0) is evicted.
	hits := SimulateSeq(p, []int{0, 1, 2, 3, 4, 1, 2, 3})
	want := []bool{false, false, false, false, false, true, true, true}
	for i := range want {
		if hits[i] != want[i] {
			t.Fatalf("SRRIP hits = %v, want %v", hits, want)
		}
	}
}

func TestQLRUR2InsertsRightmost(t *testing.T) {
	q, err := ParseQLRU("QLRU_H00_M1_R2_U1")
	if err != nil {
		t.Fatal(err)
	}
	p := q.New(4, nil).(*qlru)
	p.Reset()
	w := p.Victim()
	if w != 3 {
		t.Fatalf("R2 first insertion way = %d, want 3 (rightmost)", w)
	}
	p.OnFill(w)
	if w2 := p.Victim(); w2 != 2 {
		t.Fatalf("R2 second insertion way = %d, want 2", w2)
	}
}

func TestQLRUProbabilisticInsertion(t *testing.T) {
	q, err := ParseQLRU("QLRU_H11_MR161_R1_U2")
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	ageCount := map[uint8]int{}
	for trial := 0; trial < 3200; trial++ {
		p := q.New(4, rng).(*qlru)
		w := p.Victim()
		p.OnFill(w)
		ageCount[p.ages[w]]++
	}
	// Expect roughly 1/16 insertions at age 1... but the U2 update runs
	// after the fill when no age-3 block exists, which bumps a lone age-1
	// to age 2 and age-3 stays. Count only the distribution shape: age-3
	// should dominate.
	if ageCount[3] < 2500 {
		t.Fatalf("age-3 insertions = %d, want ~15/16 of 3200", ageCount[3])
	}
	if ageCount[3] > 3150 {
		t.Fatalf("age-3 insertions = %d; low-age insertions should occur", ageCount[3])
	}
}

// equivalence checks that two policies behave identically on random
// sequences (same hits), which validates the permutation representation
// against the direct implementations.
func equivalence(t *testing.T, mk1, mk2 func() Policy, blocks int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	for trial := 0; trial < 100; trial++ {
		n := 5 + rng.Intn(40)
		seq := make([]int, n)
		for i := range seq {
			seq[i] = rng.Intn(blocks)
		}
		h1 := SimulateSeq(mk1(), seq)
		h2 := SimulateSeq(mk2(), seq)
		for i := range h1 {
			if h1[i] != h2[i] {
				t.Fatalf("divergence on seq %v at index %d: %v vs %v", seq, i, h1, h2)
			}
		}
	}
}

func TestLRUPermEquivalence(t *testing.T) {
	for _, assoc := range []int{2, 4, 8} {
		a := assoc
		equivalence(t,
			func() Policy { return NewLRU(a) },
			func() Policy { return NewPermutation("LRU-perm", LRUPerms(a)) },
			a+3, int64(a))
	}
}

func TestFIFOPermEquivalence(t *testing.T) {
	for _, assoc := range []int{2, 4, 8} {
		a := assoc
		equivalence(t,
			func() Policy { return NewFIFO(a) },
			func() Policy { return NewPermutation("FIFO-perm", FIFOPerms(a)) },
			a+3, int64(a)+100)
	}
}

func TestPLRUPermEquivalence(t *testing.T) {
	for _, assoc := range []int{2, 4, 8} {
		a := assoc
		perms, err := PLRUPerms(a)
		if err != nil {
			t.Fatal(err)
		}
		equivalence(t,
			func() Policy { p, _ := NewPLRU(a); return p },
			func() Policy { return NewPermutation("PLRU-perm", perms) },
			a+3, int64(a)+200)
	}
}

func TestSetDueling(t *testing.T) {
	psel := NewPSel(1024)
	a := NewLeader(NewLRU(4), psel, true)
	b := NewLeader(NewFIFO(4), psel, false)
	// Workload that hits under LRU but thrashes under FIFO: fill, then
	// alternate hits with conflict misses.
	rng := rand.New(rand.NewSource(3))
	seqA := make([]int, 0, 4000)
	for i := 0; i < 1000; i++ {
		seqA = append(seqA, rng.Intn(5))
	}
	missesA := len(seqA) - CountHits(a, seqA)
	missesB := len(seqA) - CountHits(b, seqA)
	if missesA == missesB {
		t.Skip("workload does not separate LRU and FIFO")
	}
	// The policy with fewer misses should win the duel.
	wantB := missesB < missesA
	if psel.UseB() != wantB {
		t.Fatalf("UseB() = %v, want %v (missesA=%d missesB=%d)", psel.UseB(), wantB, missesA, missesB)
	}
	f, err := NewFollower(NewLRU(4), NewFIFO(4), psel)
	if err != nil {
		t.Fatal(err)
	}
	if f.Assoc() != 4 {
		t.Fatal("follower assoc")
	}
	CountHits(f, seqA) // exercise follower paths
}

func TestRegistryNames(t *testing.T) {
	for _, name := range []string{"LRU", "FIFO", "PLRU", "RANDOM", "MRU", "MRU*", "MRU_SB", "lru", "QLRU_H11_M1_R0_U0"} {
		rng := rand.New(rand.NewSource(1))
		p, err := New(name, 8, rng)
		if err != nil {
			t.Errorf("New(%s): %v", name, err)
			continue
		}
		if p.Assoc() != 8 {
			t.Errorf("New(%s).Assoc() = %d", name, p.Assoc())
		}
	}
	if _, err := New("NOPE", 8, nil); err == nil {
		t.Error("expected error for unknown policy")
	}
	if len(Names()) < 6 {
		t.Errorf("Names() too short: %v", Names())
	}
}

// TestPolicyInvariants property-tests all registered policies plus a QLRU
// sample: victims are in range, non-full victims are empty ways, and hit
// counts are consistent with cache capacity.
func TestPolicyInvariants(t *testing.T) {
	mkPolicies := func(assoc int, rng *rand.Rand) []Policy {
		ps := []Policy{
			NewLRU(assoc), NewFIFO(assoc), NewRandom(assoc, rng),
			NewMRU(assoc, false), NewMRU(assoc, true),
		}
		if assoc&(assoc-1) == 0 {
			pp, _ := NewPLRU(assoc)
			ps = append(ps, pp)
		}
		for _, name := range []string{"QLRU_H11_M1_R0_U0", "QLRU_H00_M1_R2_U1", "QLRU_H21_M2_R1_U3_UMO", "QLRU_H11_M3_R1_U2"} {
			q, err := ParseQLRU(name)
			if err != nil {
				t.Fatal(err)
			}
			ps = append(ps, q.New(assoc, rng))
		}
		return ps
	}

	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		assoc := []int{2, 4, 8, 12, 16}[rng.Intn(5)]
		for _, p := range mkPolicies(assoc, rng) {
			p.Reset()
			occupied := map[int]bool{}
			for step := 0; step < 200; step++ {
				if rng.Intn(2) == 0 && len(occupied) > 0 {
					// Hit a random occupied way.
					for w := range occupied {
						p.OnHit(w)
						break
					}
					continue
				}
				w := p.Victim()
				if w < 0 || w >= assoc {
					t.Logf("%s: victim %d out of range (assoc %d)", p.Name(), w, assoc)
					return false
				}
				if len(occupied) < assoc && occupied[w] {
					t.Logf("%s: victim %d is occupied while empty ways remain", p.Name(), w)
					return false
				}
				occupied[w] = true
				p.OnFill(w)
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestEliminationOrderLRU(t *testing.T) {
	p := NewLRU(4)
	ranks := EliminationOrder(p, []int{0, 1, 2, 3}, 10)
	// Under LRU, block 0 (oldest) is evicted by the 1st fresh miss,
	// block 3 by the 4th.
	for b := 0; b < 4; b++ {
		if ranks[b] != b+1 {
			t.Fatalf("EliminationOrder ranks = %v", ranks)
		}
	}
}

func TestSimulateSeqRepeatHits(t *testing.T) {
	for _, name := range []string{"LRU", "FIFO", "PLRU", "MRU", "QLRU_H11_M1_R0_U0"} {
		p := MustNew(name, 8, rand.New(rand.NewSource(1)))
		hits := SimulateSeq(p, []int{5, 5, 5, 5})
		if hits[0] {
			t.Errorf("%s: first access hit", name)
		}
		for i := 1; i < 4; i++ {
			if !hits[i] {
				t.Errorf("%s: repeat access %d missed", name, i)
			}
		}
	}
}
