package policy

import (
	"fmt"
	"math/rand"
	"testing"
)

// batchNames is the name pool the batch and wide-assoc equivalence tests
// run over: every registered policy, the full deterministic QLRU grid,
// and sampled probabilistic variants.
func batchNames() []string {
	names := append(Names(), EnumerateQLRU()...)
	return append(names, probabilisticVariants...)
}

// checkBatchTrace plays the same random block sequences through a scalar
// Single and a batch Single built from identical RNG streams and requires
// bit-identical per-access hits, including residency-state carryover
// effects across rounds (RNG streams persist on both sides).
func checkBatchTrace(t *testing.T, name string, assoc int, seed int64) {
	t.Helper()
	scalar, err := NewSingle(name, assoc, LazyRNG(seed))
	if err != nil {
		t.Fatalf("NewSingle(%s): %v", name, err)
	}
	batch := MustSingle(name, assoc, LazyRNG(seed))
	rng := rand.New(rand.NewSource(seed * 613))
	for round := 0; round < 3; round++ {
		seq := make([]int, 100+rng.Intn(60))
		for i := range seq {
			seq[i] = rng.Intn(assoc + 4)
		}
		want := scalar.Simulate(seq)
		got := batch.SimulateBatch(seq)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s assoc %d seed %d round %d: access %d: batch hit=%v, scalar hit=%v",
					name, assoc, seed, round, i, got[i], want[i])
			}
		}
		if h, w := batch.CountHitsBatch(seq), scalar.CountHits(seq); h != w {
			t.Fatalf("%s assoc %d seed %d round %d: CountHitsBatch=%d, CountHits=%d",
				name, assoc, seed, round, h, w)
		}
	}
}

// TestBatchMatchesScalar pins AccessBatch (through Single.SimulateBatch /
// CountHitsBatch) bit-identical to the scalar per-access protocol for
// every specialized kernel and the reference fallback, across ≥40 seeds
// (see engineSeeds) and the full QLRU grid.
func TestBatchMatchesScalar(t *testing.T) {
	seeds := engineSeeds(t)
	for _, name := range batchNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			for seed := 0; seed < seeds; seed++ {
				checkBatchTrace(t, name, 8, int64(seed)+1)
			}
		})
	}
}

// TestBatchMatchesScalarMultiSet drives AccessBatch against the scalar
// protocol on a multi-set engine (including the set-dueling combinator,
// whose PSEL and leader bitmaps are cross-set state), interleaving
// batches on different sets.
func TestBatchMatchesScalarMultiSet(t *testing.T) {
	const sets, assoc = 8, 8
	leaderOf := func(slice, set int) byte {
		switch set % 4 {
		case 0:
			return 'A'
		case 1:
			return 'B'
		}
		return 0
	}
	specs := []struct {
		label string
		mk    func() Spec
	}{
		{"LRU", func() Spec { return Spec{Name: "LRU"} }},
		{"PLRU", func() Spec { return Spec{Name: "PLRU"} }},
		{"QLRU_H11_M1_R1_U2", func() Spec { return Spec{Name: "QLRU_H11_M1_R1_U2"} }},
		{"QLRU_H21_MR42_R2_U1_UMO", func() Spec { return Spec{Name: "QLRU_H21_MR42_R2_U1_UMO"} }},
		{"DUEL", func() Spec {
			return Spec{Duel: &DuelSpec{
				PolicyA: "QLRU_H11_M1_R1_U2", PolicyB: "QLRU_H11_MR161_R1_U2",
				PSel: NewPSel(64), Leader: leaderOf,
			}}
		}},
	}
	for _, sp := range specs {
		sp := sp
		t.Run(sp.label, func(t *testing.T) {
			t.Parallel()
			for seed := 0; seed < engineSeeds(t); seed++ {
				root := int64(seed)*977 + 3
				rngFor := func(set int) *rand.Rand { return NewSetRand(root, 0, set, 0) }
				engS, err := NewEngine(sp.mk(), 0, sets, assoc, rngFor)
				if err != nil {
					t.Fatalf("NewEngine: %v", err)
				}
				engB, err := NewEngine(sp.mk(), 0, sets, assoc, rngFor)
				if err != nil {
					t.Fatalf("NewEngine: %v", err)
				}
				for s := 0; s < sets; s++ {
					engS.Reset(s)
					engB.Reset(s)
				}
				const blocks = assoc + 4
				mkState := func() ([]int32, []int32) {
					wayOf := make([]int32, blocks)
					blockAt := make([]int32, assoc)
					for i := range wayOf {
						wayOf[i] = -1
					}
					for i := range blockAt {
						blockAt[i] = -1
					}
					return wayOf, blockAt
				}
				wayS := make([][]int32, sets)
				blkS := make([][]int32, sets)
				wayB := make([][]int32, sets)
				blkB := make([][]int32, sets)
				for s := 0; s < sets; s++ {
					wayS[s], blkS[s] = mkState()
					wayB[s], blkB[s] = mkState()
				}
				rng := rand.New(rand.NewSource(root + 5))
				for round := 0; round < 12; round++ {
					set := rng.Intn(sets)
					seq := make([]int32, 20+rng.Intn(40))
					for i := range seq {
						seq[i] = int32(rng.Intn(blocks))
					}
					hitsB := make([]bool, len(seq))
					nB := engB.AccessBatch(set, seq, wayB[set], blkB[set], hitsB)
					nS := accessBatchScalar(engS, set, seq, wayS[set], blkS[set], nil)
					if nB != nS {
						t.Fatalf("%s seed %d round %d set %d: batch hits=%d, scalar hits=%d",
							sp.label, seed, round, set, nB, nS)
					}
					for i := range wayS[set] {
						if wayS[set][i] != wayB[set][i] {
							t.Fatalf("%s seed %d round %d set %d: wayOf[%d] diverged: scalar %d, batch %d",
								sp.label, seed, round, set, i, wayS[set][i], wayB[set][i])
						}
					}
				}
			}
		})
	}
}

// TestWideKernelsMatchReference pins the wide-associativity stamp and
// tree-PLRU kernels bit-identical to the per-set reference policies at
// 96, 128, and 256 ways (PLRU only at its power-of-two widths).
func TestWideKernelsMatchReference(t *testing.T) {
	cases := []struct {
		name  string
		assoc int
	}{
		{"LRU", 96}, {"LRU", 128}, {"LRU", 256},
		{"FIFO", 96}, {"FIFO", 128}, {"FIFO", 256},
		{"PLRU", 128}, {"PLRU", 256},
	}
	seeds := engineSeeds(t) / 4
	if seeds < 4 {
		seeds = 4
	}
	for _, c := range cases {
		c := c
		t.Run(fmt.Sprintf("%s/%d", c.name, c.assoc), func(t *testing.T) {
			t.Parallel()
			for seed := 0; seed < seeds; seed++ {
				checkNamedEngine(t, c.name, 2, c.assoc, int64(seed)+1)
			}
			for seed := 0; seed < seeds; seed++ {
				checkBatchTrace(t, c.name, c.assoc, int64(seed)+11)
			}
		})
	}
}

// TestStampWideRenorm forces the 16-bit stamp clock through its wrap and
// checks LRU order survives the rank renormalization.
func TestStampWideRenorm(t *testing.T) {
	const assoc = 96
	eng := newStampEngineW("LRU", 1, assoc, false)
	for w := 0; w < assoc; w++ {
		if v := eng.Victim(0); v != w {
			t.Fatalf("cold fill: victim %d, want %d", v, w)
		}
		eng.OnFill(0, w)
	}
	// Spin hits on way 0 until just before the wrap, then touch every way
	// in order: way 0 must become the LRU victim after renormalization.
	for eng.clock[0] < ^uint16(0)-1 {
		eng.OnHit(0, 0)
	}
	for w := 1; w < assoc; w++ {
		eng.OnHit(0, w) // crosses the wrap; renorm preserves order
	}
	if v := eng.Victim(0); v != 0 {
		t.Fatalf("post-renorm victim %d, want 0", v)
	}
}

// TestEngineSpecialization pins the fallback matrix: which name ×
// associativity pairs compile to specialized kernels and which fall back
// to the reference engine (now observable via IsReference and the
// EngineFallbacks counter).
func TestEngineSpecialization(t *testing.T) {
	cases := []struct {
		name     string
		assoc    int
		fallback bool
	}{
		{"LRU", 8, false},
		{"LRU", 64, false},
		{"LRU", 96, false},
		{"LRU", 256, false},
		{"LRU", 512, true}, // beyond the wide kernels
		{"FIFO", 128, false},
		{"PLRU", 16, false},
		{"PLRU", 128, false},
		{"PLRU", 256, false},
		{"RANDOM", 8, false},
		{"RANDOM", 128, true}, // no wide RANDOM kernel
		{"MRU", 8, false},
		{"MRU", 96, true}, // no wide MRU kernel
		{"QLRU_H11_M1_R1_U2", 16, false},
		{"QLRU_H11_M1_R1_U2", 96, true}, // no wide QLRU kernel
	}
	rngFor := LazyRNG(1)
	for _, c := range cases {
		before := EngineFallbacks()
		eng, err := NewEngine(Spec{Name: c.name}, 0, 2, c.assoc, rngFor)
		if err != nil {
			t.Fatalf("NewEngine(%s, assoc %d): %v", c.name, c.assoc, err)
		}
		counted := EngineFallbacks() - before
		if got := IsReference(eng); got != c.fallback {
			t.Errorf("%s assoc %d: IsReference=%v, want %v", c.name, c.assoc, got, c.fallback)
		}
		if (counted > 0) != c.fallback {
			t.Errorf("%s assoc %d: EngineFallbacks advanced by %d, want fallback=%v",
				c.name, c.assoc, counted, c.fallback)
		}
	}
	// The dueling combinator reports a fallback if either side fell back.
	duel := func(a, b string, assoc int) Engine {
		eng, err := NewEngine(Spec{Duel: &DuelSpec{
			PolicyA: a, PolicyB: b, PSel: NewPSel(64),
			Leader: func(slice, set int) byte { return 0 },
		}}, 0, 2, assoc, rngFor)
		if err != nil {
			t.Fatalf("NewEngine(duel %s/%s): %v", a, b, err)
		}
		return eng
	}
	if IsReference(duel("LRU", "MRU", 8)) {
		t.Errorf("DUEL(LRU,MRU) assoc 8: unexpectedly reference")
	}
	if !IsReference(duel("LRU", "MRU", 96)) {
		t.Errorf("DUEL(LRU,MRU) assoc 96: MRU side should fall back")
	}
}
