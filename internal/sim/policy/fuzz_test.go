package policy

import "testing"

// FuzzParseQLRU feeds hostile variant names to the QLRU spec parser
// (QLRU_Hxy_M{x|Rpx}_R{0,1,2}_U{0,1,2,3}[_UMO]). Invariants: no panic;
// an accepted spec validates, builds a policy, and its canonical Name()
// round-trips to the identical spec.
func FuzzParseQLRU(f *testing.F) {
	f.Add("QLRU_H11_M1_R1_U2")
	f.Add("QLRU_H00_M0_R0_U0")
	f.Add("QLRU_H11_MR161_R1_U2_UMO")
	f.Add("qlru_h21_m1_r2_u3")
	f.Add("QLRU_H11_M1_R1_U2_UMO_EXTRA")
	f.Add("QLRU_H1_M1_R1_U2")
	f.Add("QLRU_H11_MR1_R1_U2")
	f.Add("QLRU_H11_M-1_R1_U2")
	f.Add("LRU")
	f.Add("")
	f.Fuzz(func(t *testing.T, name string) {
		q, err := ParseQLRU(name)
		if err != nil {
			return
		}
		if verr := q.Validate(); verr != nil {
			t.Fatalf("ParseQLRU(%q) accepted an invalid spec: %v", name, verr)
		}
		canonical := q.Name()
		q2, err := ParseQLRU(canonical)
		if err != nil {
			t.Fatalf("canonical name %q of accepted %q does not re-parse: %v", canonical, name, err)
		}
		if q2 != q {
			t.Fatalf("round trip through %q changed the spec: %+v != %+v", canonical, q2, q)
		}
		// Building a policy from an accepted spec must not panic, with or
		// without a stream (probabilistic variants draw lazily).
		p := q.New(8, NewSetRand(1, 0, 0, 0))
		p.OnFill(p.Victim())
	})
}
