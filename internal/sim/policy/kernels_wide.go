package policy

import "math/bits"

// This file extends the stamp (LRU/FIFO) and tree-PLRU kernels to
// associativities in (64, 256]: occupancy becomes a multi-word bitmap,
// PLRU tree bits span up to four words per set, and stamps shrink to
// uint16 (renormalized by rank on wrap, which at 16 bits is actually
// reachable in long campaigns). Everything else — victim selection order,
// power-on state, invalidate semantics — matches the narrow kernels and
// the per-set reference policies bit-for-bit.

// setOccW tracks per-set way occupancy as (assoc+63)/64 words per set.
type setOccW struct {
	words []uint64
	nw    int
	assoc int
	last  uint64 // valid-bit mask of the final word
}

func newSetOccW(sets, assoc int) setOccW {
	nw := (assoc + 63) / 64
	last := ^uint64(0)
	if r := assoc & 63; r != 0 {
		last = 1<<uint(r) - 1
	}
	return setOccW{words: make([]uint64, sets*nw), nw: nw, assoc: assoc, last: last}
}

func (o *setOccW) mask(k int) uint64 {
	if k == o.nw-1 {
		return o.last
	}
	return ^uint64(0)
}

func (o *setOccW) isFull(set int) bool {
	base := set * o.nw
	for k := 0; k < o.nw; k++ {
		if o.words[base+k] != o.mask(k) {
			return false
		}
	}
	return true
}

func (o *setOccW) test(set, way int) bool {
	return o.words[set*o.nw+way>>6]>>uint(way&63)&1 != 0
}

func (o *setOccW) mark(set, way int)  { o.words[set*o.nw+way>>6] |= 1 << uint(way&63) }
func (o *setOccW) clear(set, way int) { o.words[set*o.nw+way>>6] &^= 1 << uint(way&63) }

func (o *setOccW) reset(set int) {
	base := set * o.nw
	for k := 0; k < o.nw; k++ {
		o.words[base+k] = 0
	}
}

func (o *setOccW) leftmostEmpty(set int) int {
	base := set * o.nw
	for k := 0; k < o.nw; k++ {
		if w := ^o.words[base+k] & o.mask(k); w != 0 {
			return k*64 + bits.TrailingZeros64(w)
		}
	}
	return 0 // unreachable: callers check isFull first
}

// stampEngineW is the wide-associativity stamp kernel (LRU, FIFO).
type stampEngineW struct {
	name   string
	fifo   bool
	assoc  int
	occ    setOccW
	stamps []uint16
	clock  []uint16
}

func newStampEngineW(name string, sets, assoc int, fifo bool) *stampEngineW {
	return &stampEngineW{
		name: name, fifo: fifo, assoc: assoc,
		occ:    newSetOccW(sets, assoc),
		stamps: make([]uint16, sets*assoc),
		clock:  make([]uint16, sets),
	}
}

func (e *stampEngineW) Name() string { return e.name }

func (e *stampEngineW) bump(set, way int) {
	if e.clock[set] == ^uint16(0) {
		e.renorm(set)
	}
	e.clock[set]++
	e.stamps[set*e.assoc+way] = e.clock[set]
}

// renorm rank-compresses a set's stamps so the 16-bit clock can restart;
// recency order is unchanged (stamps of valid ways are distinct, so ranks
// are too).
func (e *stampEngineW) renorm(set int) {
	base := set * e.assoc
	old := append([]uint16(nil), e.stamps[base:base+e.assoc]...)
	for w := 0; w < e.assoc; w++ {
		rank := uint16(1)
		for v := 0; v < e.assoc; v++ {
			if old[v] < old[w] {
				rank++
			}
		}
		e.stamps[base+w] = rank
	}
	e.clock[set] = uint16(e.assoc) + 1
}

func (e *stampEngineW) OnHit(set, way int) {
	if e.fifo {
		return
	}
	e.bump(set, way)
}

func (e *stampEngineW) Victim(set int) int {
	if !e.occ.isFull(set) {
		return e.occ.leftmostEmpty(set)
	}
	base := set * e.assoc
	victim, best := 0, e.stamps[base]
	for w := 1; w < e.assoc; w++ {
		if s := e.stamps[base+w]; s < best {
			victim, best = w, s
		}
	}
	return victim
}

func (e *stampEngineW) OnFill(set, way int) {
	e.occ.mark(set, way)
	e.bump(set, way)
}

func (e *stampEngineW) OnInvalidate(set, way int) {
	e.occ.clear(set, way)
	e.stamps[set*e.assoc+way] = 0
}

func (e *stampEngineW) Reset(set int) {
	e.occ.reset(set)
	e.clock[set] = 0
	base := set * e.assoc
	for w := 0; w < e.assoc; w++ {
		e.stamps[base+w] = 0
	}
}

func (e *stampEngineW) Restream() {}

func (e *stampEngineW) AccessBatch(set int, seq, wayOf, blockAt []int32, hits []bool) int {
	base := set * e.assoc
	st := e.stamps[base : base+e.assoc]
	clock := e.clock[set]
	n := 0
	for i, b := range seq {
		if w := wayOf[b]; w >= 0 {
			if !e.fifo {
				if clock == ^uint16(0) {
					e.clock[set] = clock
					e.renorm(set)
					clock = e.clock[set]
				}
				clock++
				st[w] = clock
			}
			n++
			if hits != nil {
				hits[i] = true
			}
			continue
		}
		var w int32
		if !e.occ.isFull(set) {
			w = int32(e.occ.leftmostEmpty(set))
		} else {
			best := st[0]
			w = 0
			for v := 1; v < e.assoc; v++ {
				if s := st[v]; s < best {
					w, best = int32(v), s
				}
			}
		}
		if old := blockAt[w]; old >= 0 {
			wayOf[old] = -1
		}
		wayOf[b] = w
		blockAt[w] = b
		e.occ.mark(set, int(w))
		if clock == ^uint16(0) {
			e.clock[set] = clock
			e.renorm(set)
			clock = e.clock[set]
		}
		clock++
		st[w] = clock
	}
	e.clock[set] = clock
	return n
}

// plruEngineW is the wide-associativity tree-PLRU kernel: the heap-coded
// tree bits of one set span nw = assoc/64 words (assoc is a power of two
// above 64, so node indexes run 1..assoc-1).
type plruEngineW struct {
	assoc int
	nw    int
	occ   setOccW
	tree  []uint64
}

func newPLRUEngineW(sets, assoc int) *plruEngineW {
	return &plruEngineW{
		assoc: assoc,
		nw:    (assoc + 63) / 64,
		occ:   newSetOccW(sets, assoc),
		tree:  make([]uint64, sets*(assoc+63)/64),
	}
}

func (e *plruEngineW) Name() string { return "PLRU" }

func (e *plruEngineW) touch(set, way int) {
	base := set * e.nw
	node := 1
	lo, hi := 0, e.assoc
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if way < mid {
			e.tree[base+node>>6] |= 1 << uint(node&63) // point right, away
			node = 2 * node
			hi = mid
		} else {
			e.tree[base+node>>6] &^= 1 << uint(node&63)
			node = 2*node + 1
			lo = mid
		}
	}
}

func (e *plruEngineW) OnHit(set, way int) { e.touch(set, way) }

func (e *plruEngineW) Victim(set int) int {
	if !e.occ.isFull(set) {
		return e.occ.leftmostEmpty(set)
	}
	base := set * e.nw
	node := 1
	lo, hi := 0, e.assoc
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		if e.tree[base+node>>6]>>uint(node&63)&1 == 0 { // points left
			node = 2 * node
			hi = mid
		} else {
			node = 2*node + 1
			lo = mid
		}
	}
	return lo
}

func (e *plruEngineW) OnFill(set, way int) {
	e.occ.mark(set, way)
	e.touch(set, way)
}

func (e *plruEngineW) OnInvalidate(set, way int) { e.occ.clear(set, way) }

func (e *plruEngineW) Reset(set int) {
	e.occ.reset(set)
	base := set * e.nw
	for k := 0; k < e.nw; k++ {
		e.tree[base+k] = 0
	}
}

func (e *plruEngineW) Restream() {}

func (e *plruEngineW) AccessBatch(set int, seq, wayOf, blockAt []int32, hits []bool) int {
	n := 0
	for i, b := range seq {
		if w := wayOf[b]; w >= 0 {
			e.touch(set, int(w))
			n++
			if hits != nil {
				hits[i] = true
			}
			continue
		}
		w := int32(e.Victim(set))
		if old := blockAt[w]; old >= 0 {
			wayOf[old] = -1
		}
		wayOf[b] = w
		blockAt[w] = b
		e.occ.mark(set, int(w))
		e.touch(set, int(w))
	}
	return n
}
