package policy

import (
	"fmt"
	"math/rand"
)

// duelEngine is the flat-state set-dueling combinator: leader-set
// membership precomputed into two bitmaps, PSEL as a plain shared
// counter, and the two candidate policies compiled to sub-kernels that
// each own all sets' state. Per-set call routing mirrors the reference
// leader/follower wrappers exactly: leader sets drive only their own
// policy (bumping PSEL on fills), follower sets drive both policies and
// take victims from whichever currently wins — so only the winning
// policy's RNG stream advances on a follower miss, as in hardware where
// the losing policy is never asked for a victim.
type duelEngine struct {
	name     string
	a, b     Engine
	psel     *PSel
	aMask    []uint64
	bMask    []uint64
	provider RNGFor
	// rngs memoizes one stream per set, shared by both sub-kernels (the
	// per-line state bits are shared between the two policies, and so is
	// their randomness — matching the reference follower wiring).
	rngs []*rand.Rand
}

func newDuelEngine(d *DuelSpec, slice, sets, assoc int, rng RNGFor) (*duelEngine, error) {
	if d.PSel == nil || d.Leader == nil {
		return nil, fmt.Errorf("policy: dueling spec needs PSel and Leader")
	}
	e := &duelEngine{
		psel:     d.PSel,
		aMask:    make([]uint64, (sets+63)/64),
		bMask:    make([]uint64, (sets+63)/64),
		provider: rng,
		rngs:     make([]*rand.Rand, sets),
	}
	for s := 0; s < sets; s++ {
		switch d.Leader(slice, s) {
		case 'A':
			e.aMask[s>>6] |= 1 << uint(s&63)
		case 'B':
			e.bMask[s>>6] |= 1 << uint(s&63)
		}
	}
	shared := RNGFor(e.rng)
	var err error
	if e.a, err = newKernel(d.PolicyA, sets, assoc, shared); err != nil {
		return nil, err
	}
	if e.b, err = newKernel(d.PolicyB, sets, assoc, shared); err != nil {
		return nil, err
	}
	e.name = "DUEL(" + e.a.Name() + "," + e.b.Name() + ")"
	return e, nil
}

func (e *duelEngine) rng(set int) *rand.Rand {
	if e.rngs[set] == nil {
		e.rngs[set] = e.provider(set)
	}
	return e.rngs[set]
}

// leader returns 'A'/'B' for leader sets, 0 for followers.
func (e *duelEngine) leader(set int) byte {
	if e.aMask[set>>6]>>uint(set&63)&1 != 0 {
		return 'A'
	}
	if e.bMask[set>>6]>>uint(set&63)&1 != 0 {
		return 'B'
	}
	return 0
}

func (e *duelEngine) Name() string { return e.name }

func (e *duelEngine) OnHit(set, way int) {
	switch e.leader(set) {
	case 'A':
		e.a.OnHit(set, way)
	case 'B':
		e.b.OnHit(set, way)
	default:
		e.a.OnHit(set, way)
		e.b.OnHit(set, way)
	}
}

func (e *duelEngine) Victim(set int) int {
	switch e.leader(set) {
	case 'A':
		return e.a.Victim(set)
	case 'B':
		return e.b.Victim(set)
	}
	if e.psel.UseB() {
		return e.b.Victim(set)
	}
	return e.a.Victim(set)
}

func (e *duelEngine) OnFill(set, way int) {
	switch e.leader(set) {
	case 'A':
		e.psel.MissA()
		e.a.OnFill(set, way)
	case 'B':
		e.psel.MissB()
		e.b.OnFill(set, way)
	default:
		e.a.OnFill(set, way)
		e.b.OnFill(set, way)
	}
}

func (e *duelEngine) OnInvalidate(set, way int) {
	switch e.leader(set) {
	case 'A':
		e.a.OnInvalidate(set, way)
	case 'B':
		e.b.OnInvalidate(set, way)
	default:
		e.a.OnInvalidate(set, way)
		e.b.OnInvalidate(set, way)
	}
}

func (e *duelEngine) Reset(set int) {
	switch e.leader(set) {
	case 'A':
		e.a.Reset(set)
	case 'B':
		e.b.Reset(set)
	default:
		e.a.Reset(set)
		e.b.Reset(set)
	}
}

func (e *duelEngine) Restream() {
	for i := range e.rngs {
		e.rngs[i] = nil
	}
	e.psel.Reset()
	e.a.Restream()
	e.b.Restream()
}
