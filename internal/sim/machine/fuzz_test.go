package machine

import "testing"

// FuzzParseMode covers the wire-format privilege-mode parser. Invariants:
// no panic; accepted names round-trip through Mode.String; acceptance is
// case-insensitive exactly.
func FuzzParseMode(f *testing.F) {
	f.Add("user")
	f.Add("kernel")
	f.Add("KERNEL")
	f.Add("User ")
	f.Add("")
	f.Add("ring0")
	f.Fuzz(func(t *testing.T, s string) {
		m, err := ParseMode(s)
		if err != nil {
			return
		}
		back, err := ParseMode(m.String())
		if err != nil || back != m {
			t.Fatalf("ParseMode(%q) = %v, but %q does not round-trip: %v %v", s, m, m.String(), back, err)
		}
	})
}
