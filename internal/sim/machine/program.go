package machine

import (
	"fmt"

	"nanobench/internal/x86"
)

// program is the pre-decoded form of the most recently installed code
// image. WriteCode decodes the image eagerly, front to back, into a flat
// slice of fused-µop entries (x86.DecodedInstr: flat µop array, resolved
// branch targets, cached line spans); byteIdx maps each code offset that
// starts an instruction to its slice index, and links chains every entry
// to its fallthrough and branch-target successors by index. The
// steady-state front end therefore never maps a RIP at all: straight-line
// entries run as a chain of fall links (the decode-time basic blocks) and
// taken branches jump block-to-block through tgt links.
//
// Entries reached outside the eager scan (a jump into the middle of an
// encoded instruction, code past an undecodable byte) are decoded lazily
// on first execution and their links resolved — and then cached — by the
// run loop.
//
// Any write into [base, base+size) — a WriteData call or a store executed
// by simulated code — drops the program (self-modifying code then runs
// through the slow decode path until the next WriteCode reinstalls it).
type program struct {
	base uint32
	size uint32
	// byteIdx[off] is the index into instrs of the instruction starting at
	// base+off, or -1 if that offset has not been decoded.
	byteIdx []int32
	instrs  []x86.DecodedInstr
	// links[i] chains instrs[i] to its successors by index; -1 marks a
	// successor not yet resolved (or outside the program).
	links []link
	// blocks are the trace-mode execution blocks discovered over this
	// program (see trace.go); blockOf[i] maps instrs[i] to the block it
	// heads (blockNone: not built yet, blockNoTrace: not worth tracing).
	// Living inside program means every install/drop — and therefore
	// every decVersion bump from a code write — discards all cached
	// blocks and their recorded port schedules before the next dispatch.
	blocks  []traceBlock
	blockOf []int32
}

// link holds the chained successors of one pre-decoded entry: fall is the
// entry at the fallthrough address (instrs[i].Next), tgt the entry at the
// pre-resolved branch target (instrs[i].Target).
type link struct {
	fall int32
	tgt  int32
}

// install resets the program to cover size bytes at base, reusing the
// backing arrays from the previous installation.
func (p *program) install(base uint32, size int) {
	p.base = base
	p.size = uint32(size)
	if cap(p.byteIdx) < size {
		p.byteIdx = make([]int32, size)
	}
	p.byteIdx = p.byteIdx[:size]
	for i := range p.byteIdx {
		p.byteIdx[i] = -1
	}
	p.instrs = p.instrs[:0]
	p.links = p.links[:0]
	p.blocks = p.blocks[:0]
	p.blockOf = p.blockOf[:0]
}

// drop invalidates the program entirely.
func (p *program) drop() {
	p.size = 0
	p.byteIdx = p.byteIdx[:0]
	p.instrs = p.instrs[:0]
	p.links = p.links[:0]
	p.blocks = p.blocks[:0]
	p.blockOf = p.blockOf[:0]
}

// overlaps reports whether the n bytes at addr intersect the program.
func (p *program) overlaps(addr uint32, n int) bool {
	return p.size > 0 && addr < p.base+p.size && addr+uint32(n) > p.base
}

// noteCodeWrite invalidates cached decodes covering the n bytes written at
// addr. The program-region check is two compares on the store hot path;
// invalidation itself is rare (self-modifying code).
func (m *Machine) noteCodeWrite(addr uint32, n int) {
	if m.prog.overlaps(addr, n) {
		m.prog.drop()
		m.decVersion++
	}
}

// predecodeImage decodes the freshly installed image front to back and
// wires the chain links: the linear scan yields the decode-time basic
// blocks (fall links between contiguous entries), and the second pass
// resolves every pre-resolved branch target that lands on a decoded
// entry. Decoding stops at the first undecodable byte; anything past it
// is left to the lazy path (and faults only if actually executed, exactly
// as before).
func (m *Machine) predecodeImage() {
	p := &m.prog
	for off := uint32(0); off < p.size; {
		d, err := m.decodeRaw(p.base + off)
		if err != nil {
			break
		}
		p.instrs = append(p.instrs, d)
		p.links = append(p.links, link{fall: -1, tgt: -1})
		p.blockOf = append(p.blockOf, blockNone)
		p.byteIdx[off] = int32(len(p.instrs) - 1)
		off += uint32(d.Len)
	}
	for i := range p.instrs {
		d := &p.instrs[i]
		if fOff := d.Next - p.base; fOff < p.size {
			p.links[i].fall = p.byteIdx[fOff]
		}
		if d.TargetOK {
			if tOff := d.Target - p.base; tOff < p.size {
				p.links[i].tgt = p.byteIdx[tOff]
			}
		}
	}
}

// progIndexAt returns the program entry index for rip, decoding lazily on
// first execution. It returns -1 (and no error) for addresses outside the
// installed program; those run through the slow decode path.
func (m *Machine) progIndexAt(rip uint32) (int32, error) {
	p := &m.prog
	off := rip - p.base
	if off >= p.size {
		return -1, nil
	}
	if i := p.byteIdx[off]; i >= 0 {
		return i, nil
	}
	if _, err := m.decodeInto(rip, off); err != nil {
		return -1, err
	}
	return p.byteIdx[off], nil
}

// decodedAt returns the pre-decoded instruction at rip. Inside the
// installed program this is two array loads after the first execution;
// other addresses fall back to a versioned map cache.
func (m *Machine) decodedAt(rip uint32) (*x86.DecodedInstr, error) {
	p := &m.prog
	if off := rip - p.base; off < p.size {
		if i := p.byteIdx[off]; i >= 0 {
			return &p.instrs[i], nil
		}
		return m.decodeInto(rip, off)
	}
	return m.decodeSlow(rip)
}

// decodeInto decodes the instruction at rip (program offset off) into the
// program's flat instruction store, with an unresolved link entry.
func (m *Machine) decodeInto(rip, off uint32) (*x86.DecodedInstr, error) {
	d, err := m.decodeRaw(rip)
	if err != nil {
		return nil, err
	}
	m.prog.instrs = append(m.prog.instrs, d)
	m.prog.links = append(m.prog.links, link{fall: -1, tgt: -1})
	m.prog.blockOf = append(m.prog.blockOf, blockNone)
	i := int32(len(m.prog.instrs) - 1)
	m.prog.byteIdx[off] = i
	return &m.prog.instrs[i], nil
}

// decodeSlow serves code outside the installed program through a
// rip-keyed map, invalidated by version bumps on code writes.
func (m *Machine) decodeSlow(rip uint32) (*x86.DecodedInstr, error) {
	if e, ok := m.decCache[rip]; ok && e.version == m.decVersion {
		return &e.d, nil
	}
	d, err := m.decodeRaw(rip)
	if err != nil {
		return nil, err
	}
	e := &decEntry{version: m.decVersion, d: d}
	m.decCache[rip] = e
	return &e.d, nil
}

// decKey identifies a decode-memo entry: the raw code-byte window an
// instruction was decoded from (n valid bytes, zero-padded). Decoding is
// a pure function of the window, so identical windows always produce the
// same instruction up to the address-derived fields, which RelocAt
// recomputes on every hit.
type decKey struct {
	b [15]byte
	n uint8
}

// decMemoCap bounds the content-keyed decode memo; when full, the map is
// reset rather than evicted entry-by-entry (the working set of distinct
// instruction encodings in any one experiment is far below the cap).
const decMemoCap = 1 << 16

// decodeRaw decodes and pre-decodes the instruction at rip from simulated
// memory, resolving its fallthrough/target addresses and line span.
//
// Results are memoized by code-byte content, not by address: experiment
// drivers regenerate near-identical images for every access sequence, and
// the eager predecode in WriteCode would otherwise re-run the full decoder
// over thousands of repeated MOV/branch encodings. The memo never needs
// invalidation — changed bytes are a different key.
func (m *Machine) decodeRaw(rip uint32) (x86.DecodedInstr, error) {
	var key decKey
	n := 15
	for ; n > 0; n-- {
		if m.Mem.Read(rip, key.b[:n]) {
			break
		}
	}
	if n == 0 {
		return x86.DecodedInstr{}, &Fault{RIP: rip, Reason: "code read from unmapped memory"}
	}
	key.n = uint8(n)
	if d, ok := m.decMemo[key]; ok {
		d.RelocAt(rip, m.lineShift)
		return d, nil
	}
	in, ln, err := x86.Decode(key.b[:n])
	if err != nil {
		return x86.DecodedInstr{}, &Fault{RIP: rip, Reason: fmt.Sprintf("undecodable instruction: %v", err)}
	}
	d, err := x86.PredecodeAt(in, ln, rip, m.lineShift)
	if err != nil {
		return x86.DecodedInstr{}, &Fault{RIP: rip, Reason: err.Error()}
	}
	if len(m.decMemo) >= decMemoCap {
		m.decMemo = make(map[decKey]x86.DecodedInstr, decMemoCap)
	}
	m.decMemo[key] = d
	return d, nil
}
