package machine

import (
	"fmt"

	"nanobench/internal/x86"
)

// program is the pre-decoded form of the most recently installed code
// image. Instructions are decoded once on first execution and stored in a
// flat slice; byteIdx maps each code offset that starts an instruction to
// its slice index, so the steady-state front end is two array loads — no
// map lookups, no per-step Spec resolution, and no operand type
// assertions.
//
// Any write into [base, base+size) — a WriteData call or a store executed
// by simulated code — drops the program (self-modifying code then runs
// through the slow decode path until the next WriteCode reinstalls it).
type program struct {
	base uint32
	size uint32
	// byteIdx[off] is the index into instrs of the instruction starting at
	// base+off, or -1 if that offset has not been decoded.
	byteIdx []int32
	instrs  []x86.DecodedInstr
}

// install resets the program to cover size bytes at base, reusing the
// backing arrays from the previous installation.
func (p *program) install(base uint32, size int) {
	p.base = base
	p.size = uint32(size)
	if cap(p.byteIdx) < size {
		p.byteIdx = make([]int32, size)
	}
	p.byteIdx = p.byteIdx[:size]
	for i := range p.byteIdx {
		p.byteIdx[i] = -1
	}
	p.instrs = p.instrs[:0]
}

// drop invalidates the program entirely.
func (p *program) drop() {
	p.size = 0
	p.byteIdx = p.byteIdx[:0]
	p.instrs = p.instrs[:0]
}

// overlaps reports whether the n bytes at addr intersect the program.
func (p *program) overlaps(addr uint32, n int) bool {
	return p.size > 0 && addr < p.base+p.size && addr+uint32(n) > p.base
}

// noteCodeWrite invalidates cached decodes covering the n bytes written at
// addr. The program-region check is two compares on the store hot path;
// invalidation itself is rare (self-modifying code).
func (m *Machine) noteCodeWrite(addr uint32, n int) {
	if m.prog.overlaps(addr, n) {
		m.prog.drop()
		m.decVersion++
	}
}

// decodedAt returns the pre-decoded instruction at rip. Inside the
// installed program this is two array loads after the first execution;
// other addresses fall back to a versioned map cache.
func (m *Machine) decodedAt(rip uint32) (*x86.DecodedInstr, error) {
	p := &m.prog
	if off := rip - p.base; off < p.size {
		if i := p.byteIdx[off]; i >= 0 {
			return &p.instrs[i], nil
		}
		return m.decodeInto(rip, off)
	}
	return m.decodeSlow(rip)
}

// decodeInto decodes the instruction at rip (program offset off) into the
// program's flat instruction store.
func (m *Machine) decodeInto(rip, off uint32) (*x86.DecodedInstr, error) {
	d, err := m.decodeRaw(rip)
	if err != nil {
		return nil, err
	}
	m.prog.instrs = append(m.prog.instrs, d)
	i := int32(len(m.prog.instrs) - 1)
	m.prog.byteIdx[off] = i
	return &m.prog.instrs[i], nil
}

// decodeSlow serves code outside the installed program through a
// rip-keyed map, invalidated by version bumps on code writes.
func (m *Machine) decodeSlow(rip uint32) (*x86.DecodedInstr, error) {
	if e, ok := m.decCache[rip]; ok && e.version == m.decVersion {
		return &e.d, nil
	}
	d, err := m.decodeRaw(rip)
	if err != nil {
		return nil, err
	}
	e := &decEntry{version: m.decVersion, d: d}
	m.decCache[rip] = e
	return &e.d, nil
}

// decodeRaw decodes and pre-decodes the instruction at rip from simulated
// memory.
func (m *Machine) decodeRaw(rip uint32) (x86.DecodedInstr, error) {
	code := m.readCodeBytes(rip)
	if len(code) == 0 {
		return x86.DecodedInstr{}, &Fault{RIP: rip, Reason: "code read from unmapped memory"}
	}
	in, n, err := x86.Decode(code)
	if err != nil {
		return x86.DecodedInstr{}, &Fault{RIP: rip, Reason: fmt.Sprintf("undecodable instruction: %v", err)}
	}
	d, err := x86.Predecode(in, n)
	if err != nil {
		return x86.DecodedInstr{}, &Fault{RIP: rip, Reason: err.Error()}
	}
	return d, nil
}
