package machine

import (
	"nanobench/internal/sim/pmu"
	"nanobench/internal/x86"
)

// predictor is a table of 2-bit saturating counters indexed by a hash of
// the branch address. Counters start at 0 (strongly not-taken), so the
// first iterations of a loop mispredict until the counter saturates —
// which is exactly why nanoBench's warm-up runs help (Section III-H).
type predictor struct {
	table [4096]uint8
}

func (p *predictor) idx(rip uint32) int {
	return int((rip ^ rip>>12) & 4095)
}

func (p *predictor) predict(rip uint32) bool {
	return p.table[p.idx(rip)] >= 2
}

func (p *predictor) update(rip uint32, taken bool) {
	i := p.idx(rip)
	if taken {
		if p.table[i] < 3 {
			p.table[i]++
		}
	} else if p.table[i] > 0 {
		p.table[i]--
	}
}

// execBranch executes JMP and conditional branches. It returns whether the
// branch is taken and its target — the absolute address pre-resolved from
// the rel-immediate at decode time, so the taken path does no address
// arithmetic.
func (m *Machine) execBranch(d *x86.DecodedInstr) (bool, uint32, error) {
	c := &m.core
	if !d.TargetOK {
		return false, 0, &Fault{RIP: c.rip, Reason: "branch with unresolved label"}
	}
	target := d.Target
	var ready int64
	if d.ReadsFlags {
		ready = c.flagReady
	}
	u := &d.Uops[0]
	issue, portEv, start, done := m.dispatchQuiet(u.Ports, ready, u.Latency, u.Occupancy)

	taken := true
	misp := false
	if d.Op != x86.JMP {
		taken = m.evalCond(d.Op)
		pred := c.pred.predict(c.rip)
		c.pred.update(c.rip, taken)
		if pred != taken {
			c.feCycle = maxI64(c.feCycle, done+int64(m.Spec.MispredictPenalty))
			c.feSlots = 0
			misp = true
		}
	}
	at := m.retireQuiet(done)
	m.PMU.RecordBranch(issue, portEv, start, at, misp, done)
	return taken, target, nil
}

// execCall pushes the return address (the entry's pre-computed
// fallthrough) and jumps to the pre-resolved target.
func (m *Machine) execCall(d *x86.DecodedInstr) (uint32, error) {
	c := &m.core
	if !d.TargetOK {
		return 0, &Fault{RIP: c.rip, Reason: "call with unresolved label"}
	}
	target := d.Target
	returnRIP := d.Next

	newRSP := c.regs[x86.RSP] - 8
	rspReady := c.regReady[x86.RSP]
	sdone, err := m.store(uint32(newRSP), 8, uint64(returnRIP), rspReady, 0)
	if err != nil {
		return 0, err
	}
	_, rspDone := m.dispatch(x86.PortsALU, rspReady, 1, 1)
	m.setReg(x86.RSP, newRSP, rspDone)

	u := d.Uops[0]
	_, bdone := m.dispatch(u.Ports, 0, u.Latency, u.Occupancy)
	at := m.retire(maxI64(sdone, bdone))
	m.PMU.Record(pmu.EvBrRetired, at)
	return target, nil
}

// execRet pops the return address and jumps to it. Returns are predicted
// by a return-stack buffer on real hardware, so no mispredict penalty is
// modelled.
func (m *Machine) execRet() (uint32, error) {
	c := &m.core
	rsp := c.regs[x86.RSP]
	v, ldone, _, err := m.load(uint32(rsp), 8, c.regReady[x86.RSP])
	if err != nil {
		return 0, err
	}
	_, rspDone := m.dispatch(x86.PortsALU, c.regReady[x86.RSP], 1, 1)
	m.setReg(x86.RSP, rsp+8, rspDone)

	u := x86.SpecPtr(x86.RET).Uops[0]
	_, bdone := m.dispatch(u.Ports, ldone, u.Latency, u.Occupancy)
	at := m.retire(maxI64(ldone, bdone))
	m.PMU.Record(pmu.EvBrRetired, at)
	return uint32(v), nil
}

// execPush pushes a register.
func (m *Machine) execPush(d *x86.DecodedInstr) error {
	c := &m.core
	r := d.Reg[0]
	newRSP := c.regs[x86.RSP] - 8
	sdone, err := m.store(uint32(newRSP), 8, c.regs[r], c.regReady[x86.RSP], c.regReady[r])
	if err != nil {
		return err
	}
	_, rspDone := m.dispatch(x86.PortsALU, c.regReady[x86.RSP], 1, 1)
	m.setReg(x86.RSP, newRSP, rspDone)
	m.retire(maxI64(sdone, rspDone))
	return nil
}

// execPop pops into a register.
func (m *Machine) execPop(d *x86.DecodedInstr) error {
	c := &m.core
	r := d.Reg[0]
	rsp := c.regs[x86.RSP]
	v, ldone, _, err := m.load(uint32(rsp), 8, c.regReady[x86.RSP])
	if err != nil {
		return err
	}
	_, rspDone := m.dispatch(x86.PortsALU, c.regReady[x86.RSP], 1, 1)
	m.setReg(x86.RSP, rsp+8, rspDone)
	m.setReg(r, v, ldone)
	m.retire(maxI64(ldone, rspDone))
	return nil
}
