package machine

import (
	"math/bits"

	"nanobench/internal/sim/pmu"
	"nanobench/internal/x86"
)

// Trace-mode execution: the top tier of the three-tier engine.
//
//   - step()   — the reference interpreter: resolves every instruction
//     from c.rip. Never optimized; every other tier is property-tested
//     against it (TestChainedMatchesSingleStep, FuzzTraceMatchesStep).
//   - chained  — Run's successor-link dispatch (PR 5): no per-step RIP
//     resolution, per-instruction execution.
//   - trace    — this file: maximal runs of fused single-µop entries
//     (x86.FastKind) execute as one block, with budget/IRQ/decVersion
//     re-validated only at block boundaries, one PMU.Advance per block,
//     and the whole block's PMU events delivered in one RecordBlock walk.
//     Steady-state blocks additionally replay a recorded port schedule
//     ("port-pick cache"), skipping per-µop port selection entirely.
//
// Why block granularity is bit-identical:
//
//   - Fused instructions cannot store, fault (their lines were fetched to
//     decode them; translate failures surface identically through the
//     per-step fetch of record mode), or touch privileged state, so no
//     decVersion bump, IRQ window check, or budget fault can occur inside
//     a block: a budget precheck at entry (with per-instruction fallback)
//     and Run's existing checks at block boundaries observe exactly what
//     the chained loop observes. Blocks are only dispatched when user-mode
//     timer interrupts cannot fire.
//   - PMU.Advance(w) is a promise that no future counter read samples
//     below w; raising the watermark less often (once per block instead of
//     once per instruction) settles events later but never changes any
//     counted value. Counter adds commute, so batching the block's issued/
//     port/retired events into one RecordBlock equals the per-instruction
//     RecordFusedStep deliveries.
//
// Why schedule replay is bit-identical: every cycle a block of ReplaySafe
// fused instructions computes — port picks, dispatch starts, completions,
// retirements — is a pure function of the entry timing state visible to
// it: the issue-slot phase, barrier, retire cycle, flag-ready cycle, the
// portFree/portUse entries of the ports its µop masks cover, and the
// ready cycles of its live-in registers (all taken relative to the entry
// front-end cycle; port tie-breaks compare portUse differences only).
// That state is the replay key: on a key match the recorded per-step
// cycles are re-based and applied, the architectural values are recomputed
// through the same ALU helpers, and the exit timing state is restored from
// recorded deltas. Blocks never span an I-cache line (buildBlock splits
// at line boundaries), so one entry fetch covers the whole block;
// instructions whose ready-cycle updates depend on register values
// (BSF/BSR, CL-count shifts — see x86.ReplaySafe) make a block
// record-only.
//
// Blocks and their recorded schedules live inside program, so every
// install/drop — every decVersion bump from a self-modifying write —
// discards them before the next dispatch.

// blockOf sentinels (see program.blockOf).
const (
	blockNone    = -1 // block not built yet
	blockNoTrace = -2 // entry not worth tracing (short run of fused entries)
)

// traceMinBlock is the shortest run of fused entries worth block
// dispatch; traceMaxBlock bounds block (and recorded-schedule) size.
const (
	traceMinBlock = 2
	traceMaxBlock = 4096
)

// traceSlots is the number of recorded schedules kept per block. The
// issue-slot phase (feSlots) cycles with period up to issueWidth across
// loop iterations, and the port-use rotation composes with it, so a
// single slot would thrash on any loop whose µop count is not a multiple
// of the issue width, and the port-use rank/gap states multiply that
// period; sixteen slots cover the composed steady-state period of every
// loop shape in the test battery.
const traceSlots = 16

// traceSlot is one recorded (entry key → schedule, exit state) pair. The
// schedule is stored as parallel delta arrays (relative to the entry
// front-end cycle) in the exact shape PMU delivery consumes: a replay
// hands issuedD/retiredD/portD straight to RecordBlockDeltas without
// copying a single event, and walks doneD for the value-completion cycles
// the architectural writes need.
type traceSlot struct {
	valid    bool
	key      []int64
	doneD    []int64 // per step: value completion (feeds regReady/flagReady)
	issuedD  []int64 // per step: issue slot
	retiredD []int64 // per step: retirement
	portD    [pmu.NumPortEvents][]int64
	portMask uint32
	// Exit timing state, as deltas against the entry front-end cycle.
	feD     int64
	feSlots int
	retD    int64 // exit retireCycle
	maxDnD  int64 // max raw µop completion: folds into lastCompletion
	// Exit portFree deltas and portUse increments, indexed like portSet.
	portFreeD  []int64
	portUseInc []int64
}

// traceBlock is one maximal run of fused entries executed in a single
// pass by Run's trace tier.
type traceBlock struct {
	steps   []int32 // program entry indices, in execution order
	lastIdx int32   // steps[len-1]: its fall link is the block successor
	exitRIP uint32
	// replayable: every step is x86.ReplaySafe (the block is single-line
	// by construction), so a schedule recorded at an identical entry key
	// can be replayed without per-step fetch or dispatch.
	replayable bool
	line       uint64
	portSet    []uint8 // ascending ports of the union of the steps' µop masks
	liveIn     []uint8 // registers read before written, ascending
	keyLen     int     // replay-key length: fixed per block, set at build
	slots      [traceSlots]traceSlot
	nextSlot   int
	// Slot-sequence predictor: steady-state loops cycle through their
	// recorded slots in a fixed rotation, so the slot that followed the
	// previous hit is probed first. lastHit is the most recent hit;
	// nextOf[s] the slot that last followed a hit on s.
	lastHit int
	nextOf  [traceSlots]uint8
}

// blockEvents accumulates one block's PMU events for a single
// RecordBlock delivery at block exit.
type blockEvents struct {
	issued  []int64
	retired []int64
	port    [pmu.NumPortEvents][]int64
	mask    uint32
}

// Engine selects Run's execution tier. The zero value is EngineTrace:
// trace mode is the default engine; the seam exists so the differential
// tests (and callers debugging a suspected engine divergence) can force
// the chained or reference tier.
type Engine uint8

// Execution tiers, fastest first. All three produce bit-identical
// architectural state, cycles, and counter values.
const (
	EngineTrace   Engine = iota // block dispatch + schedule replay (default)
	EngineChained               // per-instruction chained dispatch (PR 5)
	EngineStep                  // reference interpreter, resolves from c.rip
)

// String names the tier (benchmark sub-names, test labels).
func (e Engine) String() string {
	switch e {
	case EngineTrace:
		return "trace"
	case EngineChained:
		return "chained"
	case EngineStep:
		return "step"
	}
	return "Engine(?)"
}

// SetEngine forces an execution tier; it maps onto the noChain/noTrace
// hooks the Run loop branches on.
func (m *Machine) SetEngine(e Engine) {
	m.noChain = e == EngineStep
	m.noTrace = e != EngineTrace
}

// Engine reports the execution tier Run uses.
func (m *Machine) Engine() Engine {
	switch {
	case m.noChain:
		return EngineStep
	case m.noTrace:
		return EngineChained
	}
	return EngineTrace
}

// buildBlock discovers the trace block headed by program entry idx by
// following fall links over fused entries, records its metadata (port
// set, live-in registers, replayability), and caches the result in
// blockOf. Blocks never span an I-cache line: the walk stops at the
// first entry outside the head's line, so one entry fetch covers the
// whole block and a straight-line stream splits into per-line blocks
// that can each replay a recorded schedule. (Block granularity is
// identity-safe at any split — boundaries only set the batching of
// budget/IRQ checks and PMU delivery.) Fall links strictly increase the
// instruction address, so the walk terminates. Returns the block index
// or blockNoTrace.
func (m *Machine) buildBlock(idx int32) int32 {
	p := &m.prog
	line := uint64(p.instrs[idx].LineFirst)
	var steps []int32
	for j := idx; j >= 0 && len(steps) < traceMaxBlock; j = p.links[j].fall {
		d := &p.instrs[j]
		if d.Fast == x86.FastNone || uint64(d.LineFirst) != line || d.LineLast != d.LineFirst {
			break
		}
		steps = append(steps, j)
	}
	if len(steps) < traceMinBlock {
		p.blockOf[idx] = blockNoTrace
		return blockNoTrace
	}
	last := steps[len(steps)-1]
	b := traceBlock{
		steps:      steps,
		lastIdx:    last,
		exitRIP:    p.instrs[last].Next,
		replayable: true,
		line:       line,
	}
	var portMask uint32
	var liveIn, written uint16
	for _, i := range steps {
		d := &p.instrs[i]
		portMask |= uint32(d.Uops[0].Ports)
		liveIn |= d.ReadRegs &^ written
		written |= d.WriteRegs
		if !d.ReplaySafe {
			b.replayable = false
		}
	}
	for mb := portMask; mb != 0; mb &= mb - 1 {
		b.portSet = append(b.portSet, uint8(bits.TrailingZeros32(mb)))
	}
	for mb := liveIn; mb != 0; mb &= mb - 1 {
		b.liveIn = append(b.liveIn, uint8(bits.TrailingZeros16(mb)))
	}
	// Key layout (captureKey): 4 scalars, one portFree delta per portSet
	// entry, the packed port-rank words (the first holds rank 0 plus three
	// 16-bit rank/gap fields, each later one holds four), then one regReady
	// delta per live-in register.
	b.keyLen = 4 + len(b.portSet) + len(b.liveIn)
	if n := len(b.portSet); n > 1 {
		words := 1
		for f := n - 4; f > 0; f -= 4 { // n-1 fields: 3 fit word 0, 4 each after
			words++
		}
		b.keyLen += words
	}
	p.blocks = append(p.blocks, b)
	bi := int32(len(p.blocks) - 1)
	p.blockOf[idx] = bi
	return bi
}

// captureKey writes the block's replay key — the entry timing state its
// execution depends on, relative to the entry front-end cycle — into buf
// (grown if needed; the length is fixed per block, see keyLen).
//
// Deltas at or below zero are clamped to zero: every µop's dispatch lower
// bound is at least its issue slot, which is at least the entry
// front-end cycle, so a ready/barrier/port-free cycle in the past is
// indistinguishable from one exactly at entry. Without the clamp,
// throughput-bound loops — whose dependency chains lag ever further
// behind the front end — would drift the raw deltas monotonically and
// never repeat a key.
func (m *Machine) captureKey(b *traceBlock, buf []int64) []int64 {
	c := &m.core
	base := c.feCycle
	if cap(buf) < b.keyLen {
		buf = make([]int64, b.keyLen)
	}
	buf = buf[:b.keyLen]
	buf[0] = int64(c.feSlots)
	buf[1] = clamp0(c.barrier - base)
	buf[2] = clamp0(c.retireCycle - base)
	buf[3] = clamp0(c.flagReady - base)
	k := 4
	for _, p := range b.portSet {
		buf[k] = clamp0(c.portFree[p] - base)
		k++
	}
	// Port tie-breaks compare use counters pairwise, so what the block can
	// observe is the sign of each pairwise difference as its own
	// dispatches move it — by at most len(steps) in total. The canonical
	// exact form is the rank order of the portSet's use counters plus the
	// gaps between rank neighbours, each gap saturated at len(steps)+1: a
	// pair whose true difference fits below the saturation point is
	// reconstructed exactly from the gap sum, and one at or beyond it can
	// never change sign inside the block, so the saturated form decides
	// every comparison identically. Without saturation the counters' slow
	// drift (code outside the block lands on one port more than another)
	// would keep keys from ever repeating.
	// The ranks and saturated gaps are small by construction (rank < 8,
	// gap ≤ traceMaxBlock+1 < 2^13), so they bit-pack into 16-bit fields —
	// one key word per four portSet entries. Packing is deterministic per
	// block, so packed keys compare by plain slice equality.
	if n := len(b.portSet); n > 1 {
		var use [x86.NumPorts]int64
		var ord [x86.NumPorts]uint8
		for i, p := range b.portSet {
			use[i] = c.portUse[p]
			ord[i] = uint8(i)
		}
		for i := 1; i < n; i++ { // insertion sort: n ≤ NumPorts, ties keep portSet order
			for j := i; j > 0 && use[ord[j]] < use[ord[j-1]]; j-- {
				ord[j], ord[j-1] = ord[j-1], ord[j]
			}
		}
		lim := int64(len(b.steps) + 1)
		w := int64(ord[0])
		shift := uint(3)
		for i := 1; i < n; i++ {
			gap := use[ord[i]] - use[ord[i-1]]
			if gap > lim {
				gap = lim
			}
			if shift+16 > 64 {
				buf[k] = w
				k++
				w, shift = 0, 0
			}
			w |= (int64(ord[i]) | gap<<3) << shift
			shift += 16
		}
		buf[k] = w
		k++
	}
	for _, r := range b.liveIn {
		buf[k] = clamp0(c.regReady[r] - base)
		k++
	}
	return buf
}

// matchKey reports whether the live entry state matches a recorded
// slot's key, recomputing each element in lockstep with captureKey —
// which it must mirror exactly — and bailing at the first mismatch.
// This fused compare is the replay fast path: the predicted-slot hit
// never materializes a key buffer at all. (The differential battery and
// FuzzTraceMatchesStep pin the two functions' agreement.)
func (m *Machine) matchKey(b *traceBlock, key []int64) bool {
	c := &m.core
	base := c.feCycle
	if key[0] != int64(c.feSlots) || key[1] != clamp0(c.barrier-base) ||
		key[2] != clamp0(c.retireCycle-base) || key[3] != clamp0(c.flagReady-base) {
		return false
	}
	k := 4
	for _, p := range b.portSet {
		if key[k] != clamp0(c.portFree[p]-base) {
			return false
		}
		k++
	}
	if n := len(b.portSet); n > 1 {
		var use [x86.NumPorts]int64
		var ord [x86.NumPorts]uint8
		for i, p := range b.portSet {
			use[i] = c.portUse[p]
			ord[i] = uint8(i)
		}
		for i := 1; i < n; i++ {
			for j := i; j > 0 && use[ord[j]] < use[ord[j-1]]; j-- {
				ord[j], ord[j-1] = ord[j-1], ord[j]
			}
		}
		lim := int64(len(b.steps) + 1)
		w := int64(ord[0])
		shift := uint(3)
		for i := 1; i < n; i++ {
			gap := use[ord[i]] - use[ord[i-1]]
			if gap > lim {
				gap = lim
			}
			if shift+16 > 64 {
				if key[k] != w {
					return false
				}
				k++
				w, shift = 0, 0
			}
			w |= (int64(ord[i]) | gap<<3) << shift
			shift += 16
		}
		if key[k] != w {
			return false
		}
		k++
	}
	for _, r := range b.liveIn {
		if key[k] != clamp0(c.regReady[r]-base) {
			return false
		}
		k++
	}
	return true
}

func clamp0(v int64) int64 {
	if v < 0 {
		return 0
	}
	return v
}

// execBlock runs one trace block: a single watermark Advance, then either
// a schedule replay (key hit) or a recording pass.
func (m *Machine) execBlock(b *traceBlock) error {
	m.PMU.Advance(m.core.feCycle)
	pmuOn := m.PMU.AnyActive()
	if b.replayable {
		// Bring the block's line in up front — exactly the record path's
		// first-step fetch, including any front-end bubble and cache-state
		// update. Every later fetch in the single-line block is a no-op,
		// so the schedule can replay even when control just arrived from
		// another line.
		if err := m.fetch(&m.prog.instrs[b.steps[0]]); err != nil {
			return err
		}
		if m.replayBlock(b, pmuOn) {
			return nil
		}
		return m.execBlockRecord(b, pmuOn, true)
	}
	return m.execBlockRecord(b, pmuOn, false)
}

// execBlockRecord executes the block's steps through the same per-step
// fetch and fused execution as the chained tier, accumulating PMU events
// for one end-of-block delivery and (when record is set) capturing the
// port schedule into the block's next replay slot. A recording pass fills
// the slot's event arrays regardless of pmuOn — counters may be active
// when the schedule is later replayed — and delivers straight from them;
// the non-replayable path buffers through m.bev instead.
func (m *Machine) execBlockRecord(b *traceBlock, pmuOn, record bool) error {
	c := &m.core
	base := c.feCycle
	var slot *traceSlot
	if record {
		slot = &b.slots[b.nextSlot]
		slot.valid = false
		slot.key = m.captureKey(b, slot.key[:0])
		slot.doneD = slot.doneD[:0]
		slot.issuedD = slot.issuedD[:0]
		slot.retiredD = slot.retiredD[:0]
		for mb := slot.portMask; mb != 0; mb &= mb - 1 {
			pt := bits.TrailingZeros32(mb)
			slot.portD[pt] = slot.portD[pt][:0]
		}
		slot.portMask = 0
		slot.maxDnD = 0
		for _, p := range b.portSet {
			m.puEntry[p] = c.portUse[p]
		}
	}
	bev := &m.bev
	instrs := m.prog.instrs
	for _, i := range b.steps {
		d := &instrs[i]
		// Inlined fetch fast path: an entry on the already-fetched line is
		// free, and in a block that is nearly every step.
		if !(c.hasFetchLine && uint64(d.LineFirst) == c.fetchLine && d.LineLast == d.LineFirst) {
			if err := m.fetch(d); err != nil {
				if record {
					if pmuOn {
						m.PMU.RecordBlockDeltas(base, slot.issuedD, slot.retiredD, &slot.portD, slot.portMask)
					}
				} else {
					m.flushBlock(pmuOn)
				}
				return err
			}
		}
		issue, portEv, start, done, dn, ret := m.execFusedStep(d)
		pt := uint8(portEv - pmu.EvUopsPort0)
		if record {
			slot.issuedD = append(slot.issuedD, issue-base)
			slot.portD[pt] = append(slot.portD[pt], start-base)
			slot.portMask |= 1 << pt
			slot.retiredD = append(slot.retiredD, ret-base)
			slot.doneD = append(slot.doneD, done-base)
			if dn-base > slot.maxDnD {
				slot.maxDnD = dn - base
			}
		} else if pmuOn {
			bev.issued = append(bev.issued, issue)
			bev.port[pt] = append(bev.port[pt], start)
			bev.mask |= 1 << pt
			bev.retired = append(bev.retired, ret)
		}
		c.rip = d.Next
	}
	if record {
		if pmuOn {
			m.PMU.RecordBlockDeltas(base, slot.issuedD, slot.retiredD, &slot.portD, slot.portMask)
		}
		slot.feD = c.feCycle - base
		slot.feSlots = c.feSlots
		slot.retD = c.retireCycle - base
		slot.portFreeD = slot.portFreeD[:0]
		slot.portUseInc = slot.portUseInc[:0]
		for _, p := range b.portSet {
			slot.portFreeD = append(slot.portFreeD, c.portFree[p]-base)
			slot.portUseInc = append(slot.portUseInc, c.portUse[p]-m.puEntry[p])
		}
		slot.valid = true
		b.nextSlot = (b.nextSlot + 1) % traceSlots
	} else {
		m.flushBlock(pmuOn)
	}
	return nil
}

// replayBlock replays a recorded schedule if the current entry state
// matches a slot's key: per-step events and value-completion cycles are
// re-based onto the current front-end cycle, architectural values are
// recomputed through the same ALU helpers, and the exit timing state is
// applied from recorded deltas. Returns false on a key miss (the caller
// records a fresh schedule).
func (m *Machine) replayBlock(b *traceBlock, pmuOn bool) bool {
	c := &m.core
	// execBlock fetched the block's line, so every per-step fetch would be
	// a no-op; the key (captured after any fetch bubble) covers the rest.
	// The predicted slot is checked with the fused matchKey compare; only
	// a prediction miss materializes the key to scan the other slots.
	var slot *traceSlot
	pred := int(b.nextOf[b.lastHit])
	if s := &b.slots[pred]; s.valid && m.matchKey(b, s.key) {
		slot = s
		b.lastHit = pred
	} else {
		key := m.captureKey(b, m.keyBuf)
		m.keyBuf = key
		for si := range b.slots {
			if si == pred {
				continue
			}
			s := &b.slots[si]
			if s.valid && int64SliceEq(s.key, key) {
				slot = s
				b.nextOf[b.lastHit] = uint8(si)
				b.lastHit = si
				break
			}
		}
		if slot == nil {
			return false
		}
	}
	base := c.feCycle
	instrs := m.prog.instrs
	for k, i := range b.steps {
		m.replayFusedStep(&instrs[i], base+slot.doneD[k])
	}
	if pmuOn {
		m.PMU.RecordBlockDeltas(base, slot.issuedD, slot.retiredD, &slot.portD, slot.portMask)
	}
	c.feCycle = base + slot.feD
	c.feSlots = slot.feSlots
	c.retireCycle = base + slot.retD
	if lc := base + slot.maxDnD; lc > c.lastCompletion {
		c.lastCompletion = lc
	}
	for k, p := range b.portSet {
		c.portFree[p] = base + slot.portFreeD[k]
		c.portUse[p] += slot.portUseInc[k]
	}
	c.instructions += uint64(len(b.steps))
	c.rip = b.exitRIP
	return true
}

// replayFusedStep applies one replayed instruction's architectural
// effects: values go through the same ALU helpers as execFusedStep, with
// the recorded value-completion cycle standing in for the dispatch
// computation. Only ReplaySafe shapes reach here, so the destination
// write (and, inside the helpers, the flag-ready update) happens exactly
// as it did during recording.
func (m *Machine) replayFusedStep(d *x86.DecodedInstr, done int64) {
	c := &m.core
	switch d.Fast {
	case x86.FastALU2:
		r := d.Reg[0]
		var src uint64
		if d.Kind[1] == x86.ArgGP {
			src = c.regs[d.Reg[1]]
		} else {
			src = uint64(d.Imm)
		}
		res, write := m.aluBinary(d.Op, c.regs[r], src, done)
		if write && d.WritesDst {
			c.regs[r] = res
			c.regReady[r] = done
		}
	case x86.FastUnary:
		r := d.Reg[0]
		c.regs[r] = m.aluUnary(d.Op, c.regs[r], done)
		c.regReady[r] = done
	case x86.FastMOVRR:
		c.regs[d.Reg[0]] = c.regs[d.Reg[1]]
		c.regReady[d.Reg[0]] = done
	case x86.FastMOVRI:
		c.regs[d.Reg[0]] = uint64(d.Imm)
		c.regReady[d.Reg[0]] = done
	case x86.FastShift:
		// ReplaySafe shifts have an immediate count (CL counts are
		// value-dependent and excluded at classification).
		r := d.Reg[0]
		c.regs[r] = m.shiftCompute(d.Op, c.regs[r], uint64(d.Imm)&63, done)
		c.regReady[r] = done
	}
}

// flushBlock delivers the buffered block events in one RecordBlock walk
// and resets the buffers. No-op when no counter is active (nothing was
// buffered).
func (m *Machine) flushBlock(pmuOn bool) {
	if !pmuOn {
		return
	}
	bev := &m.bev
	m.PMU.RecordBlock(bev.issued, bev.retired, &bev.port, bev.mask)
	bev.issued = bev.issued[:0]
	bev.retired = bev.retired[:0]
	for mb := bev.mask; mb != 0; mb &= mb - 1 {
		pt := bits.TrailingZeros32(mb)
		bev.port[pt] = bev.port[pt][:0]
	}
	bev.mask = 0
}

func int64SliceEq(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i, v := range a {
		if v != b[i] {
			return false
		}
	}
	return true
}
