// Package machine assembles the simulated x86 system: physical memory and
// paging, the cache hierarchy, the PMU, MSRs, and an out-of-order core
// timing model that executes real machine-code bytes produced by the
// assembler in internal/x86.
//
// The timing model is the substrate substitution for real hardware (see
// DESIGN.md): performance counters are sampled at the cycle the reading
// µop executes, so measurement code exhibits the same serialization
// hazards, overheads, and interrupt noise the nanoBench paper addresses.
package machine

import (
	"fmt"
	"math/bits"
	"math/rand"
	"strings"

	"nanobench/internal/sim/cache"
	"nanobench/internal/sim/mem"
	"nanobench/internal/sim/pmu"
	"nanobench/internal/x86"
)

// Mode is the privilege mode code runs in.
type Mode int

// Privilege modes.
const (
	User Mode = iota
	Kernel
)

// String renders the mode by its wire-format name ("user" or "kernel"),
// the form ParseMode accepts.
func (m Mode) String() string {
	switch m {
	case User:
		return "user"
	case Kernel:
		return "kernel"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ParseMode parses a privilege-mode name ("user" or "kernel",
// case-insensitive).
func ParseMode(s string) (Mode, error) {
	switch strings.ToLower(s) {
	case "user":
		return User, nil
	case "kernel":
		return Kernel, nil
	}
	return User, fmt.Errorf("machine: unknown mode %q (want user or kernel)", s)
}

// Spec configures a simulated machine.
type Spec struct {
	Name  string
	Cache cache.Config
	// NumProgCounters is the number of programmable performance counters
	// (2..8 on Intel, 6 on AMD family 17h).
	NumProgCounters int
	// RefRatio is the reference-clock to core-clock ratio (<1 when the
	// core runs above base frequency).
	RefRatio float64
	// PhysMem is the physical memory size.
	PhysMem uint64
	// EventTable maps perfevtsel encodings (event | umask<<8) to events.
	EventTable map[uint16]pmu.Event
	// InterruptInterval is the mean cycle distance between timer
	// interrupts in user mode (0 disables them).
	InterruptInterval int64
	// Seed for all machine-internal pseudo-randomness.
	Seed int64
	// MispredictPenalty is the front-end bubble after a mispredicted
	// branch.
	MispredictPenalty int
}

// Virtual memory layout of the machine-owned regions. Everything lives
// below 2 GB so absolute disp32 addressing reaches it.
const (
	// StackBase is a small machine-provided stack so generated code can
	// RET (and use CALL) before it switches to its own memory areas.
	StackBase = 0x0008_0000
	StackSize = 0x4000
	// SentinelRIP is the return address the machine pushes before
	// starting a run; executing RET with this target ends the run.
	SentinelRIP = 0x7FFF_FFF0
)

// Machine is one simulated x86 system with a single active core.
type Machine struct {
	Spec  Spec
	Mem   *mem.Memory
	Alloc *mem.Allocator
	Hier  *cache.Hierarchy
	PMU   *pmu.PMU
	CBox  []*pmu.CBox

	rng  *rand.Rand
	mode Mode
	ifEn bool // interrupt flag
	// cr4pce mirrors CR4.PCE: RDPMC allowed in user mode.
	cr4pce bool

	msr map[uint32]uint64 // raw storage for MSRs without special handling

	core coreState

	// prog is the pre-decoded form of the code image installed by the most
	// recent WriteCode; decVersion/decCache back the slow path for code
	// executed outside it. Both are invalidated when code memory is
	// rewritten.
	prog       program
	decVersion uint64
	decCache   map[uint32]*decEntry
	// decMemo caches decode results by code-byte content (see decodeRaw);
	// it survives WriteCode because changed bytes change the key.
	decMemo map[decKey]x86.DecodedInstr
	// lineShift is log2 of the L1I line size, folded into every decoded
	// entry's line span at predecode time.
	lineShift uint8
	// noChain makes Run execute through step() — resolving every
	// instruction from c.rip — instead of the chained dispatcher; noTrace
	// keeps the chained dispatcher but disables block (trace) execution.
	// Together they form the engine-selection seam (SetEngine/Engine in
	// trace.go) the differential property tests force each tier through.
	noChain bool
	noTrace bool

	// Trace-mode scratch: the per-block PMU event buffers, the replay-key
	// buffer, and the entry port-use snapshot (see trace.go).
	bev     blockEvents
	keyBuf  []int64
	puEntry [x86.NumPorts]int64

	// MaxInstructions bounds one Run (a runaway-loop backstop).
	MaxInstructions uint64

	// sink, when non-nil, records every cache-hierarchy operation and
	// counter read the executing code performs (see cache.TraceSink). The
	// nano seq-replay fast path installs it around real runs to learn an
	// image's hierarchy trace; nil costs one predictable branch per site.
	sink *cache.TraceSink

	nextIrq int64
	// irqScratch is a physical region the fake interrupt handler touches
	// to perturb the caches.
	irqScratch uint64
}

type decEntry struct {
	version uint64
	d       x86.DecodedInstr
}

// New builds a machine from the spec. The low megabyte of physical memory
// is reserved for the machine itself (interrupt-handler working set).
func New(spec Spec) (*Machine, error) {
	if spec.NumProgCounters <= 0 {
		return nil, fmt.Errorf("machine: need at least one programmable counter")
	}
	if spec.RefRatio <= 0 || spec.RefRatio > 1.5 {
		return nil, fmt.Errorf("machine: implausible RefRatio %v", spec.RefRatio)
	}
	if spec.MispredictPenalty == 0 {
		spec.MispredictPenalty = 16
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	memory, err := mem.NewMemory(spec.PhysMem, 1<<31)
	if err != nil {
		return nil, err
	}
	hier, err := cache.NewHierarchy(spec.Cache, spec.Seed)
	if err != nil {
		return nil, err
	}
	lineSz := hier.LineSize()
	lineShift := uint8(bits.TrailingZeros(uint(lineSz)))
	if lineSz <= 0 || 1<<lineShift != lineSz {
		return nil, fmt.Errorf("machine: L1I line size %d is not a power of two", lineSz)
	}
	m := &Machine{
		Spec:            spec,
		Mem:             memory,
		Alloc:           mem.NewAllocator(spec.PhysMem, 1<<20, rng),
		Hier:            hier,
		PMU:             pmu.New(spec.NumProgCounters, spec.RefRatio),
		rng:             rng,
		msr:             map[uint32]uint64{},
		decCache:        map[uint32]*decEntry{},
		decMemo:         map[decKey]x86.DecodedInstr{},
		MaxInstructions: 64 << 20,
		lineShift:       lineShift,
		irqScratch:      0x40000, // inside the reserved low megabyte
	}
	for i := 0; i < spec.Cache.L3Slices; i++ {
		m.CBox = append(m.CBox, pmu.NewCBox())
	}
	// Machine-owned stack: map it at identical phys addresses inside the
	// reserved region.
	if err := m.Mem.Map(StackBase, 0x10000, StackSize); err != nil {
		return nil, err
	}
	m.scheduleIrq()
	return m, nil
}

// SetMode selects the privilege mode subsequent runs execute in. Kernel
// mode starts with interrupts disabled (the kernel-space nanoBench
// disables them around measurements); user mode always has them enabled.
func (m *Machine) SetMode(mode Mode) {
	m.mode = mode
	m.ifEn = mode == User
}

// Mode returns the current privilege mode.
func (m *Machine) Mode() Mode { return m.mode }

// SetCR4PCE controls whether RDPMC is allowed in user mode.
func (m *Machine) SetCR4PCE(on bool) { m.cr4pce = on }

// Cycle returns the current core cycle.
func (m *Machine) Cycle() int64 { return m.core.cycleFloor() }

// Rand exposes the machine's deterministic random source (tests and
// tooling use it so everything derives from one seed).
func (m *Machine) Rand() *rand.Rand { return m.rng }

// SetTraceSink installs (or, with nil, removes) a hierarchy-trace
// recorder: while installed, every cache access, flush, and counter read
// of executed code is appended to it.
func (m *Machine) SetTraceSink(s *cache.TraceSink) { m.sink = s }

// FetchLineMemo returns the core's single-line fetch memo: the virtual
// line address of the most recent instruction fetch, if any. The memo
// persists across runs and suppresses a refetch of that one line, so a
// recorded hierarchy trace is only valid for replay when the memo
// condition at run entry matches the recording's.
func (m *Machine) FetchLineMemo() (uint64, bool) {
	return m.core.fetchLine, m.core.hasFetchLine
}

// SetFetchLineMemo overwrites the fetch memo; trace replay uses it to
// leave the core exactly as the recorded run would have (memo = last
// code line the run fetched).
func (m *Machine) SetFetchLineMemo(line uint64) {
	m.core.fetchLine = line
	m.core.hasFetchLine = true
}

// WriteCode copies machine code into virtual memory and installs it as
// the machine's pre-decoded program: the image is decoded eagerly, front
// to back, into a flat array of fused-µop entries chained by successor
// links (see program), so the run loop dispatches block to block without
// re-resolving addresses. Previously cached decodes are invalidated.
func (m *Machine) WriteCode(virt uint32, code []byte) error {
	if !m.Mem.Write(virt, code) {
		return fmt.Errorf("machine: code write to unmapped address %#x", virt)
	}
	m.prog.install(virt, len(code))
	m.decVersion++
	m.predecodeImage()
	return nil
}

// WriteData writes data bytes to virtual memory. A write that lands in
// the installed code region invalidates the pre-decoded program so the
// modified bytes are re-decoded.
func (m *Machine) WriteData(virt uint32, data []byte) error {
	if !m.Mem.Write(virt, data) {
		return fmt.Errorf("machine: data write to unmapped address %#x", virt)
	}
	m.noteCodeWrite(virt, len(data))
	return nil
}

// Reboot resets the allocator freelist (the paper's remedy for failed
// physically-contiguous allocations), flushes the caches, and clears
// counters. Mappings of machine-owned regions survive, but the installed
// code does not (regions are re-mapped to fresh frames), so the
// pre-decoded program is dropped.
func (m *Machine) Reboot() {
	m.Alloc.Reboot()
	m.Hier.Flush()
	m.PMU.ResetAll(m.core.cycleFloor())
	for _, b := range m.CBox {
		b.ResetAll()
	}
	m.prog.drop()
	m.decVersion++
}

// ProgramValid reports whether the pre-decoded program installed by the
// last WriteCode still covers exactly size bytes at base. Because every
// write into the code region drops the program, a valid program also
// certifies that the installed bytes are unmodified.
func (m *Machine) ProgramValid(base uint32, size int) bool {
	return m.prog.size > 0 && m.prog.base == base && m.prog.size == uint32(size)
}

// scheduleIrq draws the next timer-interrupt cycle.
func (m *Machine) scheduleIrq() {
	if m.Spec.InterruptInterval <= 0 {
		m.nextIrq = 1 << 62
		return
	}
	iv := m.Spec.InterruptInterval
	jitter := m.rng.Int63n(iv) - iv/2
	m.nextIrq = m.core.cycleFloor() + iv + jitter
}

// Fault is a simulated CPU exception.
type Fault struct {
	RIP    uint32
	Reason string
}

func (f *Fault) Error() string {
	return fmt.Sprintf("machine: fault at %#x: %s", f.RIP, f.Reason)
}

// RunResult summarizes one Run.
type RunResult struct {
	Instructions uint64
	Cycles       int64
	Interrupts   int
}

// Run executes code at entry until the top-level RET (or fault/instruction
// budget). The machine pushes a sentinel return address onto its private
// stack; generated nanoBench code saves and restores all registers, so RSP
// is back on this stack when the final RET executes.
func (m *Machine) Run(entry uint32) (RunResult, error) {
	c := &m.core
	startInstr := c.instructions
	// Runs do not overlap: the driver work between runs (configuring
	// counters, reading results) serializes the pipeline.
	c.feCycle = c.cycleFloor()
	c.feSlots = 0
	c.barrier = maxI64(c.barrier, c.feCycle)
	startCycle := c.cycleFloor()
	irqs := 0
	// Settle the uncore event tails: any counter read this run samples at
	// a dispatch cycle at or above the current front-end cycle.
	for _, b := range m.CBox {
		b.Advance(c.feCycle)
	}

	// Set up stack with the sentinel return address.
	stackTop := uint32(StackBase + StackSize - 64)
	m.Mem.Write64(stackTop, SentinelRIP)
	c.regs[x86.RSP] = uint64(stackTop)
	c.regReady[x86.RSP] = c.feCycle
	c.rip = entry

	// The dispatch loop is chained: the current instruction's program
	// entry index is carried between iterations and the next index comes
	// from the entry's successor links (fall for straight-line/not-taken,
	// tgt for the pre-resolved branch target), so the steady state runs
	// basic blocks in a tight loop and jumps block to block without
	// re-resolving RIPs. idx < 0 means "resolve c.rip from scratch" —
	// the entry path, dynamic targets (RET), code outside the program,
	// and everything after an invalidation. Links discovered at run time
	// (lazily decoded entries) are resolved once and cached via prevIdx.
	ver := m.decVersion
	idx := int32(-1)
	prevIdx := int32(-1) // entry whose missing link the next resolution fills
	prevTaken := false   // which link of prevIdx: tgt (true) or fall
	for {
		if c.instructions-startInstr > m.MaxInstructions {
			return RunResult{}, &Fault{RIP: c.rip, Reason: "instruction budget exceeded (runaway loop?)"}
		}
		// Timer interrupts (user mode with IF set).
		if m.ifEn && m.mode == User && c.feCycle >= m.nextIrq {
			m.deliverInterrupt()
			irqs++
		}
		if m.noChain {
			stop, err := m.step()
			if err != nil {
				return RunResult{}, err
			}
			if stop {
				break
			}
			continue
		}
		if ver != m.decVersion { // program dropped (self-modifying code)
			ver = m.decVersion
			idx, prevIdx = -1, -1
		}
		var d *x86.DecodedInstr
		if idx < 0 {
			var err error
			idx, err = m.progIndexAt(c.rip)
			if err != nil {
				return RunResult{}, err
			}
			if idx >= 0 && prevIdx >= 0 {
				if prevTaken {
					m.prog.links[prevIdx].tgt = idx
				} else {
					m.prog.links[prevIdx].fall = idx
				}
			}
			prevIdx = -1
			if idx < 0 {
				if d, err = m.decodeSlow(c.rip); err != nil {
					return RunResult{}, err
				}
			}
		}
		if idx >= 0 {
			d = &m.prog.instrs[idx]
			// Trace tier: a fused entry heading a block executes the whole
			// block in one pass. Blocks are skipped — never split — when
			// user-mode timer interrupts could fire (their delivery window
			// is per instruction) or when the block could cross the
			// instruction budget (the per-instruction path faults at
			// exactly the chained tier's point).
			if !m.noTrace && d.Fast != x86.FastNone &&
				!(m.ifEn && m.mode == User && m.Spec.InterruptInterval > 0) {
				if bi := m.prog.blockOf[idx]; bi != blockNoTrace {
					if bi < 0 {
						bi = m.buildBlock(idx)
					}
					if bi >= 0 {
						b := &m.prog.blocks[bi]
						if c.instructions-startInstr+uint64(len(b.steps)) <= m.MaxInstructions {
							if err := m.execBlock(b); err != nil {
								return RunResult{}, err
							}
							if nk := m.prog.links[b.lastIdx].fall; nk >= 0 {
								idx = nk
							} else {
								prevIdx, prevTaken = b.lastIdx, false
								idx = -1
							}
							continue
						}
					}
				}
			}
		}
		stop, err := m.execOne(d)
		if err != nil {
			return RunResult{}, err
		}
		if stop {
			break
		}
		if idx >= 0 && ver == m.decVersion {
			lk := m.prog.links[idx]
			switch {
			case c.rip == d.Next:
				if lk.fall >= 0 {
					idx = lk.fall
					continue
				}
				prevIdx, prevTaken = idx, false
			case d.TargetOK && c.rip == d.Target:
				if lk.tgt >= 0 {
					idx = lk.tgt
					continue
				}
				prevIdx, prevTaken = idx, true
			}
		} else {
			prevIdx = -1
		}
		idx = -1
	}
	return RunResult{
		Instructions: c.instructions - startInstr,
		Cycles:       c.cycleFloor() - startCycle,
		Interrupts:   irqs,
	}, nil
}

// deliverInterrupt models a timer interrupt: the handler runs for a few
// thousand cycles with the counters still active, retires instructions,
// and displaces cache lines.
func (m *Machine) deliverInterrupt() {
	c := &m.core
	cost := int64(2000 + m.rng.Int63n(6000))
	instrs := cost / 3
	start := c.feCycle
	// Retired instructions spread across the handler's execution.
	step := cost / maxI64(instrs, 1)
	if step == 0 {
		step = 1
	}
	for t := int64(0); t < instrs; t++ {
		m.PMU.Record(pmu.EvInstRetired, start+t*step)
	}
	// The handler touches a working set, evicting user lines.
	lines := 16 + m.rng.Intn(48)
	for i := 0; i < lines; i++ {
		addr := m.irqScratch + uint64(m.rng.Intn(512))*64
		m.Hier.Data(addr, i%4 == 0)
	}
	c.feCycle = start + cost
	c.barrier = maxI64(c.barrier, c.feCycle)
	c.lastCompletion = maxI64(c.lastCompletion, c.feCycle)
	c.retireCycle = maxI64(c.retireCycle, c.feCycle)
	m.scheduleIrq()
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
