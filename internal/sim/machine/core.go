package machine

import (
	"fmt"
	"math/bits"

	"nanobench/internal/sim/cache"
	"nanobench/internal/sim/pmu"
	"nanobench/internal/x86"
)

// coreState is the architectural and timing state of the simulated core.
//
// The timing model is a simplified out-of-order scheduler: every µop gets a
// dispatch cycle no earlier than its issue slot, its operands' ready
// cycles, the current serialization barrier, and the earliest free cycle of
// a compatible execution port. Architectural effects are applied in program
// order, so values are always exact; only the cycle bookkeeping models the
// out-of-order pipeline.
type coreState struct {
	regs [x86.NumGP]uint64
	xmm  [x86.NumXMM][2]uint64
	zf   bool
	sf   bool
	cf   bool
	of   bool
	rip  uint32

	regReady  [x86.NumGP]int64
	xmmReady  [x86.NumXMM]int64
	flagReady int64

	portFree [x86.NumPorts]int64
	portUse  [x86.NumPorts]int64

	feCycle        int64 // front-end: cycle the next issue slot is in
	feSlots        int   // µops issued in the current front-end cycle
	lastCompletion int64 // max completion cycle over all µops
	lastStoreDone  int64
	barrier        int64 // µops may not dispatch before this cycle
	retireCycle    int64

	instructions uint64
	fetchLine    uint64
	hasFetchLine bool

	// stbuf is a small ring of recent stores used for store-to-load
	// forwarding: a load overlapping a recent store cannot begin before
	// the store's data is ready. stbufLen counts the occupied entries
	// (saturating at the ring size) so loads skip the scan entirely until
	// the first store. stbufLo/stbufHi bound the address ranges of all
	// entries ever buffered (expanded on insert, never shrunk): a load
	// outside the bounds cannot be contained in any entry and skips the
	// scan. The bounds go stale as entries are overwritten, which only
	// costs unnecessary scans, never wrong forwarding — load-only
	// microbenchmark regions (e.g. the cache tools' big area) stay
	// outside the prologue's store range, making their loads O(1) here.
	stbuf    [storeBufSize]storeEntry
	stbufPos int
	stbufLen int
	stbufLo  uint64
	stbufHi  uint64

	pred predictor
}

// storeBufSize approximates the store-buffer depth of the modelled core.
const storeBufSize = 56

// fwdLatency is the store-to-load forwarding latency in cycles.
const fwdLatency = 5

type storeEntry struct {
	addr uint32
	size uint8
	done int64
}

// issueWidth is the front-end issue width in µops per cycle.
const issueWidth = 4

func (c *coreState) cycleFloor() int64 {
	v := c.feCycle
	if c.retireCycle > v {
		v = c.retireCycle
	}
	if c.lastCompletion > v {
		v = c.lastCompletion
	}
	return v
}

var portEvents = [x86.NumPorts]pmu.Event{
	pmu.EvUopsPort0, pmu.EvUopsPort1, pmu.EvUopsPort2, pmu.EvUopsPort3,
	pmu.EvUopsPort4, pmu.EvUopsPort5, pmu.EvUopsPort6, pmu.EvUopsPort7,
}

// issueSlot consumes one front-end issue slot and returns its cycle.
func (m *Machine) issueSlot() int64 {
	c := &m.core
	cyc := c.feCycle
	m.PMU.Record(pmu.EvUopsIssued, cyc)
	c.feSlots++
	if c.feSlots >= issueWidth {
		c.feCycle++
		c.feSlots = 0
	}
	return cyc
}

// pickPort chooses the execution port of the mask that can start
// earliest at or after lb; ties break by least total use, like a
// load-balancing scheduler. This yields the steady 50/50 split on ports
// 2/3 for load streams and the even spread of ALU µops across ports
// 0/1/5/6. Ports are scanned in ascending index order (bit iteration),
// matching the precomputed port-list order exactly.
func (c *coreState) pickPort(ports x86.PortMask, lb int64) (int, int64) {
	best := -1
	var bestStart int64
	for mb := uint(ports); mb != 0; mb &= mb - 1 {
		p := bits.TrailingZeros(mb)
		s := lb
		if c.portFree[p] > s {
			s = c.portFree[p]
		}
		if best < 0 || s < bestStart || (s == bestStart && c.portUse[p] < c.portUse[best]) {
			best, bestStart = p, s
		}
	}
	return best, bestStart
}

// dispatch schedules one µop: it takes an issue slot, waits for operands
// (ready), the serialization barrier, and a free port from the mask, and
// returns the dispatch and completion cycles. The µop's issued and
// port-dispatch events are delivered in one batched PMU call.
func (m *Machine) dispatch(ports x86.PortMask, ready int64, lat, occ int) (start, done int64) {
	if ports == 0 {
		c := &m.core
		issue := m.issueSlot()
		start = maxI64(maxI64(ready, issue), c.barrier)
		done = start + int64(lat)
		if done > c.lastCompletion {
			c.lastCompletion = done
		}
		return start, done
	}
	issue, portEv, bestStart, done := m.dispatchQuiet(ports, ready, lat, occ)
	m.PMU.RecordUop(issue, portEv, bestStart)
	return bestStart, done
}

// dispatchQuiet is dispatch minus the PMU deliveries: the fused
// single-µop paths batch the whole instruction's events (issue, port,
// retirement) into one RecordFusedStep call instead. The mask must be
// non-empty (every fused shape has a real port set).
func (m *Machine) dispatchQuiet(ports x86.PortMask, ready int64, lat, occ int) (issue int64, portEv pmu.Event, start, done int64) {
	c := &m.core
	issue = c.feCycle
	c.feSlots++
	if c.feSlots >= issueWidth {
		c.feCycle++
		c.feSlots = 0
	}
	lb := maxI64(maxI64(ready, issue), c.barrier)
	best, bestStart := c.pickPort(ports, lb)
	if occ < 1 {
		occ = 1
	}
	c.portFree[best] = bestStart + int64(occ)
	c.portUse[best]++
	done = bestStart + int64(lat)
	if done > c.lastCompletion {
		c.lastCompletion = done
	}
	return issue, portEvents[best], bestStart, done
}

// dispatchAll dispatches every µop of the decoded entry's flat µop array
// with a common operand-ready cycle and returns the earliest dispatch
// start (the cycle counter-read instructions sample at) and the latest
// completion.
func (m *Machine) dispatchAll(d *x86.DecodedInstr, ready int64) (start, done int64) {
	first := true
	for i := 0; i < int(d.NUops); i++ {
		u := &d.Uops[i]
		s, dn := m.dispatch(u.Ports, ready, u.Latency, u.Occupancy)
		if first || s < start {
			start = s
		}
		first = false
		if dn > done {
			done = dn
		}
	}
	return start, done
}

// retire completes an instruction whose last µop finishes at done, records
// the retirement event, and returns the retire cycle.
func (m *Machine) retire(done int64) int64 {
	at := m.retireQuiet(done)
	m.PMU.Record(pmu.EvInstRetired, at)
	return at
}

// retireQuiet is retire without the PMU delivery, for the fused paths
// that batch the retirement event with the µop events.
func (m *Machine) retireQuiet(done int64) int64 {
	c := &m.core
	if done > c.retireCycle {
		c.retireCycle = done
	}
	if c.feCycle > c.retireCycle {
		c.retireCycle = c.feCycle
	}
	c.instructions++
	return c.retireCycle
}

// fetch models instruction fetch through the L1I for the lines the
// decoded entry spans. The span is pre-computed at decode time
// (d.LineFirst/d.LineLast), so the dominant case — execution staying
// within the line fetched last — is a single compare instead of per-step
// line arithmetic.
func (m *Machine) fetch(d *x86.DecodedInstr) error {
	c := &m.core
	if c.hasFetchLine && uint64(d.LineFirst) == c.fetchLine && d.LineLast == d.LineFirst {
		return nil
	}
	lineSz := uint64(m.Hier.LineSize())
	for line := uint64(d.LineFirst); line <= uint64(d.LineLast); line += lineSz {
		if c.hasFetchLine && line == c.fetchLine {
			continue
		}
		phys, ok := m.Mem.Translate(uint32(line))
		if !ok {
			return &Fault{RIP: c.rip, Reason: "instruction fetch from unmapped memory"}
		}
		res := m.Hier.Code(phys)
		if m.sink != nil {
			m.sink.Code(line, phys, res.Level)
		}
		if res.Level > 1 {
			// Fetch bubble: the front end stalls for the extra latency.
			c.feCycle += int64(res.Latency - m.Hier.L1I.Geom.Latency)
			c.feSlots = 0
		}
		c.fetchLine = line
		c.hasFetchLine = true
	}
	return nil
}

// step executes the single instruction at c.rip, resolving it through
// the pre-decoded program (or the slow decode path). It returns done=true
// when the top-level RET transfers to the sentinel address. Run's chained
// loop bypasses the per-step resolution; step is the reference engine the
// chained dispatcher is property-tested against.
func (m *Machine) step() (bool, error) {
	d, err := m.decodedAt(m.core.rip)
	if err != nil {
		return false, err
	}
	return m.execOne(d)
}

// execOne executes one pre-decoded instruction. Everything the scheduler
// needs — the flat µop array, the flags dependency, the fallthrough and
// branch-target addresses, the L1I line span — is read from the entry
// itself; the spec pointer is only for cold paths. It returns done=true
// when the top-level RET transfers to the sentinel address.
func (m *Machine) execOne(d *x86.DecodedInstr) (bool, error) {
	c := &m.core
	// Every future counter read samples at a dispatch cycle, which cannot
	// be below the current front-end cycle: tell the PMU so it can settle
	// its out-of-order event tails (see pmu.EventCounter). This watermark
	// contract is per instruction, chained dispatch or not.
	m.PMU.Advance(c.feCycle)
	if err := m.fetch(d); err != nil {
		return false, err
	}

	op := d.Op
	if op.IsPrivileged() && m.mode != Kernel {
		return false, &Fault{RIP: c.rip, Reason: fmt.Sprintf("#GP: %s is privileged", op)}
	}

	// Fused shapes (register-only single-µop data processing) skip the
	// class dispatch and the generic operand walk entirely.
	if d.Fast != x86.FastNone {
		issue, portEv, start, _, _, retired := m.execFusedStep(d)
		m.PMU.RecordFusedStep(issue, portEv, start, retired)
		c.rip = d.Next
		return false, nil
	}

	nextRIP := d.Next

	switch d.Class {
	case x86.ClassNop:
		m.issueSlot()
		m.retire(c.feCycle)

	case x86.ClassPause:
		m.issueSlot()
		c.feCycle += 30
		c.feSlots = 0
		m.retire(c.feCycle)

	case x86.ClassUD2:
		return false, &Fault{RIP: c.rip, Reason: "#UD: UD2 executed"}

	case x86.ClassLFence:
		m.issueSlot()
		done := maxI64(c.lastCompletion, c.feCycle) + 1
		c.barrier = maxI64(c.barrier, done)
		c.lastCompletion = done
		// LFENCE gates execution of everything that follows; the issue
		// clock advances with it so post-fence instruction timing starts
		// at the fence, not at the (long since passed) issue slots.
		c.feCycle = maxI64(c.feCycle, done)
		c.feSlots = 0
		m.retire(done)

	case x86.ClassMFence:
		m.issueSlot()
		done := maxI64(maxI64(c.lastCompletion, c.lastStoreDone), c.feCycle) + 3
		c.barrier = maxI64(c.barrier, done)
		c.lastCompletion = done
		c.feCycle = maxI64(c.feCycle, done)
		c.feSlots = 0
		m.retire(done)

	case x86.ClassSFence:
		m.issueSlot()
		done := maxI64(c.lastStoreDone, c.feCycle) + 1
		c.barrier = maxI64(c.barrier, done)
		c.lastCompletion = done
		c.feCycle = maxI64(c.feCycle, done)
		c.feSlots = 0
		m.retire(done)

	case x86.ClassSerialize: // CPUID
		m.issueSlot()
		lat := m.cpuidLatency()
		done := maxI64(c.lastCompletion, c.feCycle) + lat
		c.barrier = maxI64(c.barrier, done)
		c.lastCompletion = done
		m.execCPUID(done)
		c.feCycle = maxI64(c.feCycle, done)
		c.feSlots = 0
		m.retire(done)

	case x86.ClassRDTSC:
		// The TSC is sampled at the earliest µop dispatch, like RDPMC.
		start, done := m.dispatchAll(d, c.feCycle)
		tsc := uint64(float64(start) * m.Spec.RefRatio)
		m.setReg(x86.RAX, tsc&0xFFFFFFFF, done)
		m.setReg(x86.RDX, tsc>>32, done)
		m.retire(done)

	case x86.ClassRDPMC:
		if m.mode != Kernel && !m.cr4pce {
			return false, &Fault{RIP: c.rip, Reason: "#GP: RDPMC with CR4.PCE=0 in user mode"}
		}
		start, done := m.dispatchAll(d, c.regReady[x86.RCX])
		idx := uint32(c.regs[x86.RCX])
		// The counter value is sampled at the µop's dispatch cycle: this
		// is what makes unfenced reads unreliable.
		v, ok := m.PMU.ReadPMC(idx, start)
		if !ok {
			return false, &Fault{RIP: c.rip, Reason: fmt.Sprintf("#GP: RDPMC index %#x", idx)}
		}
		if m.sink != nil {
			m.sink.CtrRead(idx, false)
		}
		m.setReg(x86.RAX, v&0xFFFFFFFF, done)
		m.setReg(x86.RDX, v>>32, done)
		m.retire(done)

	case x86.ClassRDMSR:
		ready := c.regReady[x86.RCX]
		u := d.Uops[0]
		start, done := m.dispatch(u.Ports, ready, u.Latency, u.Occupancy)
		v, ok := m.readMSR(uint32(c.regs[x86.RCX]), start)
		if !ok {
			return false, &Fault{RIP: c.rip, Reason: fmt.Sprintf("#GP: RDMSR %#x", uint32(c.regs[x86.RCX]))}
		}
		if m.sink != nil {
			m.sink.CtrRead(uint32(c.regs[x86.RCX]), true)
		}
		m.setReg(x86.RAX, v&0xFFFFFFFF, done)
		m.setReg(x86.RDX, v>>32, done)
		m.retire(done)

	case x86.ClassWRMSR:
		m.issueSlot()
		ready := maxI64(c.regReady[x86.RCX], maxI64(c.regReady[x86.RAX], c.regReady[x86.RDX]))
		done := maxI64(maxI64(c.lastCompletion, ready), c.feCycle) + 150
		c.barrier = maxI64(c.barrier, done)
		c.lastCompletion = done
		v := c.regs[x86.RDX]<<32 | c.regs[x86.RAX]&0xFFFFFFFF
		if ok := m.writeMSR(uint32(c.regs[x86.RCX]), v, done); !ok {
			return false, &Fault{RIP: c.rip, Reason: fmt.Sprintf("#GP: WRMSR %#x", uint32(c.regs[x86.RCX]))}
		}
		c.feCycle = maxI64(c.feCycle, done)
		c.feSlots = 0
		m.retire(done)

	case x86.ClassWBINVD:
		m.issueSlot()
		flushed := m.Hier.Flush()
		if m.sink != nil {
			m.sink.Flush()
		}
		done := maxI64(c.lastCompletion, c.feCycle) + 1000 + 2*int64(flushed)
		c.barrier = maxI64(c.barrier, done)
		c.lastCompletion = done
		c.feCycle = maxI64(c.feCycle, done)
		c.feSlots = 0
		m.retire(done)

	case x86.ClassCLFLUSH:
		addr, aready, err := m.memOperandAddr(d.Mem)
		if err != nil {
			return false, err
		}
		phys, ok := m.Mem.Translate(addr)
		if !ok {
			return false, &Fault{RIP: c.rip, Reason: fmt.Sprintf("#PF: CLFLUSH of unmapped %#x", addr)}
		}
		m.Hier.FlushLine(phys)
		if m.sink != nil {
			m.sink.FlushLine(phys)
		}
		u := d.Uops[0]
		_, done := m.dispatch(u.Ports, aready, u.Latency, u.Occupancy)
		m.retire(done)

	case x86.ClassPrefetch:
		addr, aready, err := m.memOperandAddr(d.Mem)
		if err != nil {
			return false, err
		}
		if phys, ok := m.Mem.Translate(addr); ok {
			res := m.Hier.Data(phys, false) // prefetches fill but raise no load events
			if m.sink != nil {
				m.sink.Data(phys, false, false, res.Level)
			}
		}
		_, done := m.dispatch(x86.PortsLoad, aready, 1, 1)
		m.retire(done)

	case x86.ClassCLI:
		m.issueSlot()
		m.ifEn = false
		m.retire(c.feCycle)

	case x86.ClassSTI:
		m.issueSlot()
		m.ifEn = true
		m.retire(c.feCycle)

	case x86.ClassBranch:
		taken, target, err := m.execBranch(d)
		if err != nil {
			return false, err
		}
		if taken {
			nextRIP = target
		}

	case x86.ClassCall:
		target, err := m.execCall(d)
		if err != nil {
			return false, err
		}
		nextRIP = target

	case x86.ClassRet:
		target, err := m.execRet()
		if err != nil {
			return false, err
		}
		if target == SentinelRIP {
			c.rip = target
			return true, nil
		}
		nextRIP = target

	case x86.ClassPush:
		if err := m.execPush(d); err != nil {
			return false, err
		}

	case x86.ClassPop:
		if err := m.execPop(d); err != nil {
			return false, err
		}

	default:
		if err := m.execNormal(d); err != nil {
			return false, err
		}
	}

	c.rip = nextRIP
	return false, nil
}

// cpuidLatency models CPUID's variable execution time: a base cost plus a
// noisy component, occasionally spiking by hundreds of cycles (Paoloni's
// observation, Section IV-A1).
func (m *Machine) cpuidLatency() int64 {
	lat := int64(120 + m.rng.Intn(40))
	if m.rng.Intn(8) == 0 {
		lat += int64(m.rng.Intn(400))
	}
	return lat
}

func (m *Machine) execCPUID(done int64) {
	c := &m.core
	leaf := uint32(c.regs[x86.RAX])
	var a, b, cx, d uint64
	switch leaf {
	case 0:
		a, b, cx, d = 0x16, 0x756E6547, 0x6C65746E, 0x49656E69 // "GenuineIntel"
	case 1:
		a = 0x000506E3 // family/model/stepping of a Skylake part
		b, cx, d = 0, 0x7FFAFBBF, 0xBFEBFBFF
	default:
		a, b, cx, d = 0, 0, 0, 0
	}
	m.setReg(x86.RAX, a, done)
	m.setReg(x86.RBX, b, done)
	m.setReg(x86.RCX, cx, done)
	m.setReg(x86.RDX, d, done)
}

// setReg writes a register value and its ready cycle.
func (m *Machine) setReg(r x86.Reg, v uint64, ready int64) {
	m.core.regs[r] = v
	m.core.regReady[r] = ready
}

// memOperandAddr computes the effective address of a memory operand and
// the cycle its address registers are ready.
func (m *Machine) memOperandAddr(mo x86.Mem) (uint32, int64, error) {
	c := &m.core
	if mo.AbsValid {
		return mo.Abs, 0, nil
	}
	var addr uint64
	var ready int64
	if mo.Base != x86.RegNone {
		addr += c.regs[mo.Base]
		ready = c.regReady[mo.Base]
	}
	if mo.Index != x86.RegNone {
		scale := uint64(mo.Scale)
		if scale == 0 {
			scale = 1
		}
		addr += c.regs[mo.Index] * scale
		if c.regReady[mo.Index] > ready {
			ready = c.regReady[mo.Index]
		}
	}
	addr += uint64(int64(mo.Disp))
	if addr >= 1<<32 {
		return 0, 0, &Fault{RIP: c.rip, Reason: fmt.Sprintf("#GP: effective address %#x above 4 GB", addr)}
	}
	return uint32(addr), ready, nil
}

// load dispatches a load µop for size bytes at virtual address addr and
// returns the value, the completion cycle, and the hierarchy result.
func (m *Machine) load(addr uint32, size int, addrReady int64) (uint64, int64, cache.Result, error) {
	c := &m.core
	phys, ok := m.Mem.Translate(addr)
	if !ok {
		return 0, 0, cache.Result{}, &Fault{RIP: c.rip, Reason: fmt.Sprintf("#PF: load from unmapped %#x", addr)}
	}
	res := m.Hier.Data(phys, false)
	if m.sink != nil {
		m.sink.Data(phys, false, m.PMU.AnyActive(), res.Level)
	}
	// Store-to-load forwarding: a load overlapping a buffered store waits
	// for the store data and bypasses the cache latency. The ring is
	// walked newest-first with a plain decrement-and-wrap cursor, and not
	// at all before the first store.
	lat := res.Latency
	ready := addrReady
	if c.stbufLen > 0 && uint64(addr) >= c.stbufLo && uint64(addr)+uint64(size) <= c.stbufHi {
		idx := c.stbufPos
		for k := 0; k < c.stbufLen; k++ {
			idx--
			if idx < 0 {
				idx = storeBufSize - 1
			}
			e := &c.stbuf[idx]
			if addr >= e.addr && addr+uint32(size) <= e.addr+uint32(e.size) {
				if e.done > ready {
					ready = e.done
				}
				if lat > fwdLatency {
					lat = fwdLatency
				}
				break
			}
		}
	}
	start, done := m.dispatch(x86.PortsLoad, ready, lat, 1)
	_ = start
	var v uint64
	switch size {
	case 8:
		v, _ = m.Mem.Read64(addr)
	default:
		var buf [8]byte
		if !m.Mem.Read(addr, buf[:size]) {
			return 0, 0, res, &Fault{RIP: c.rip, Reason: "#PF: partial load"}
		}
		for i := size - 1; i >= 0; i-- {
			v = v<<8 | uint64(buf[i])
		}
	}
	m.recordLoadEvents(res)
	return v, done, res, nil
}

// recordLoadEvents records the retired-load hit/miss events and uncore
// lookups for one demand load. The core events are gathered into one
// per-event count vector and delivered through a single PMU.RecordBatch
// walk instead of up to six Record calls.
func (m *Machine) recordLoadEvents(res cache.Result) {
	c := &m.core
	at := c.retireCycle
	if c.feCycle > at {
		at = c.feCycle
	}
	if !m.PMU.AnyActive() {
		// Counting paused (or no core counter programmed): only the
		// uncore C-Box counters can observe this load.
		if res.Slice >= 0 && res.Slice < len(m.CBox) {
			m.CBox[res.Slice].Record(pmu.CBoLookup, at)
			if res.Level == 4 {
				m.CBox[res.Slice].Record(pmu.CBoMiss, at)
			}
		}
		return
	}
	var counts [pmu.NumEvents]uint16
	counts[pmu.EvLoadRetired] = 1
	if res.Level == 1 {
		counts[pmu.EvLoadL1Hit] = 1
	} else {
		counts[pmu.EvLoadL1Miss] = 1
	}
	if res.Level >= 2 {
		if res.Level == 2 {
			counts[pmu.EvLoadL2Hit] = 1
		} else {
			counts[pmu.EvLoadL2Miss] = 1
		}
	}
	if res.Level >= 3 {
		if res.Level == 3 {
			counts[pmu.EvLoadL3Hit] = 1
		} else {
			counts[pmu.EvLoadL3Miss] = 1
		}
	}
	if res.Prefetched > 0 {
		counts[pmu.EvL2Prefetch] = uint16(res.Prefetched)
	}
	m.PMU.RecordBatch(&counts, at)
	if res.Slice >= 0 && res.Slice < len(m.CBox) {
		m.CBox[res.Slice].Record(pmu.CBoLookup, at)
		if res.Level == 4 {
			m.CBox[res.Slice].Record(pmu.CBoMiss, at)
		}
	}
}

// store dispatches store-address and store-data µops and performs the
// write. Stores complete into the store buffer; the pipeline does not wait
// for the cache fill, matching write-allocate hardware.
func (m *Machine) store(addr uint32, size int, v uint64, addrReady, dataReady int64) (int64, error) {
	c := &m.core
	phys, ok := m.Mem.Translate(addr)
	if !ok {
		return 0, &Fault{RIP: c.rip, Reason: fmt.Sprintf("#PF: store to unmapped %#x", addr)}
	}
	res := m.Hier.Data(phys, true)
	if m.sink != nil {
		m.sink.Data(phys, true, false, res.Level)
	}
	_, staDone := m.dispatch(x86.PortsSTA, addrReady, 1, 1)
	_, stdDone := m.dispatch(x86.PortsSTD, dataReady, 1, 1)
	done := maxI64(staDone, stdDone)
	if done > c.lastStoreDone {
		c.lastStoreDone = done
	}
	c.stbuf[c.stbufPos] = storeEntry{addr: addr, size: uint8(size), done: done}
	c.stbufPos = (c.stbufPos + 1) % storeBufSize
	if c.stbufLen == 0 || uint64(addr) < c.stbufLo {
		c.stbufLo = uint64(addr)
	}
	if c.stbufLen == 0 || uint64(addr)+uint64(size) > c.stbufHi {
		c.stbufHi = uint64(addr) + uint64(size)
	}
	if c.stbufLen < storeBufSize {
		c.stbufLen++
	}
	var buf [8]byte
	for i := 0; i < size; i++ {
		buf[i] = byte(v >> (8 * i))
	}
	if !m.Mem.Write(addr, buf[:size]) {
		return 0, &Fault{RIP: c.rip, Reason: "#PF: partial store"}
	}
	// Self-modifying code: a store into the installed code region drops
	// the pre-decoded program.
	m.noteCodeWrite(addr, size)
	at := c.retireCycle
	if c.feCycle > at {
		at = c.feCycle
	}
	m.PMU.Record(pmu.EvStoreRetired, at)
	if res.Slice >= 0 && res.Slice < len(m.CBox) {
		m.CBox[res.Slice].Record(pmu.CBoLookup, at)
		if res.Level == 4 {
			m.CBox[res.Slice].Record(pmu.CBoMiss, at)
		}
	}
	return done, nil
}
