package machine

import (
	"errors"
	"strings"
	"testing"

	"nanobench/internal/sim/cache"
	"nanobench/internal/sim/pmu"
	"nanobench/internal/x86"
)

const (
	testCodeBase = 0x0010_0000
	testDataBase = 0x0100_0000
)

func testEventTable() map[uint16]pmu.Event {
	return map[uint16]pmu.Event{
		EvtSelKey(0xA1, 0x01): pmu.EvUopsPort0,
		EvtSelKey(0xA1, 0x02): pmu.EvUopsPort1,
		EvtSelKey(0xA1, 0x04): pmu.EvUopsPort2,
		EvtSelKey(0xA1, 0x08): pmu.EvUopsPort3,
		EvtSelKey(0xD1, 0x01): pmu.EvLoadL1Hit,
		EvtSelKey(0xD1, 0x08): pmu.EvLoadL1Miss,
		EvtSelKey(0x0E, 0x01): pmu.EvUopsIssued,
		EvtSelKey(0xC5, 0x00): pmu.EvBrMispRetired,
	}
}

func testSpec() Spec {
	return Spec{
		Name: "test-skl",
		Cache: cache.Config{
			L1I:            cache.Geometry{Name: "L1I", Size: 32 << 10, Assoc: 8, LineSize: 64, Latency: 4},
			L1D:            cache.Geometry{Name: "L1D", Size: 32 << 10, Assoc: 8, LineSize: 64, Latency: 4},
			L2:             cache.Geometry{Name: "L2", Size: 256 << 10, Assoc: 8, LineSize: 64, Latency: 12},
			L3:             cache.Geometry{Name: "L3", Size: 1 << 20, Assoc: 16, LineSize: 64, Latency: 26},
			L3Slices:       2,
			SliceHash:      cache.DefaultSliceHash(2),
			MemLatency:     180,
			L1IPolicy:      cache.SimplePolicy("PLRU"),
			L1DPolicy:      cache.SimplePolicy("PLRU"),
			L2Policy:       cache.SimplePolicy("PLRU"),
			L3Policy:       cache.SimplePolicy("QLRU_H11_M1_R0_U0"),
			PrefetchDegree: 2,
		},
		NumProgCounters: 4,
		RefRatio:        0.88,
		PhysMem:         64 << 20,
		EventTable:      testEventTable(),
		Seed:            12345,
	}
}

// newTestMachine builds a kernel-mode machine with code and data regions
// mapped and the prefetcher disabled (most tests want deterministic cache
// behaviour).
func newTestMachine(t *testing.T) *Machine {
	t.Helper()
	m, err := New(testSpec())
	if err != nil {
		t.Fatal(err)
	}
	m.SetMode(Kernel)
	if err := m.Mem.Map(testCodeBase, 0x200000, 1<<20); err != nil {
		t.Fatal(err)
	}
	if err := m.Mem.Map(testDataBase, 0x400000, 4<<20); err != nil {
		t.Fatal(err)
	}
	m.Hier.Prefetcher.Enabled = false
	return m
}

func run(t *testing.T, m *Machine, asm string) RunResult {
	t.Helper()
	code := x86.MustAssemble(asm + "\nret")
	if err := m.WriteCode(testCodeBase, code); err != nil {
		t.Fatal(err)
	}
	res, err := m.Run(testCodeBase)
	if err != nil {
		t.Fatalf("run failed: %v\nasm:\n%s", err, asm)
	}
	return res
}

func TestRunBasicArithmetic(t *testing.T) {
	m := newTestMachine(t)
	run(t, m, `
		mov rax, 10
		mov rbx, 32
		add rax, rbx
		shl rax, 1
		sub rax, 4
	`)
	if got := m.Reg(x86.RAX); got != 80 {
		t.Fatalf("RAX = %d, want 80", got)
	}
}

func TestRunLoop(t *testing.T) {
	m := newTestMachine(t)
	res := run(t, m, `
		mov r15, 10
		mov rax, 0
	loop_start:
		add rax, 2
		dec r15
		jnz loop_start
	`)
	if got := m.Reg(x86.RAX); got != 20 {
		t.Fatalf("RAX = %d, want 20", got)
	}
	if res.Instructions != 2+3*10+1 {
		t.Fatalf("Instructions = %d, want %d", res.Instructions, 2+3*10+1)
	}
}

func TestRunMemory(t *testing.T) {
	m := newTestMachine(t)
	run(t, m, `
		mov r14, 0x1000000
		mov rbx, 77
		mov [r14+8], rbx
		mov rcx, [r14+8]
	`)
	if got := m.Reg(x86.RCX); got != 77 {
		t.Fatalf("RCX = %d, want 77", got)
	}
}

func TestPointerChaseLatency(t *testing.T) {
	m := newTestMachine(t)
	// Self-pointing location: each load has latency L1 = 4 cycles and
	// depends on the previous one.
	m.Mem.Write64(testDataBase, testDataBase)
	const n = 100
	asm := "mov r14, " + itoa(testDataBase) + "\n" +
		"mov r14, [r14]\n" + // warm the line
		"lfence\n" +
		strings.Repeat("mov r14, [r14]\n", n)
	run(t, m, asm) // warm-up run: code lines and data line into the caches
	res := run(t, m, asm)
	perLoad := float64(res.Cycles) / n
	if perLoad < 3.5 || perLoad > 5.0 {
		t.Fatalf("pointer-chase latency = %.2f cycles/load, want ~4", perLoad)
	}
}

func TestLoadPortBalance(t *testing.T) {
	m := newTestMachine(t)
	// Program counters 0/1 to ports 2/3 µops.
	m.WriteMSR(MSRPerfEvtSel0+0, uint64(0xA1)|0x04<<8|PerfEvtSelEN)
	m.WriteMSR(MSRPerfEvtSel0+1, uint64(0xA1)|0x08<<8|PerfEvtSelEN)
	m.WriteMSR(MSRFixedCtrCtrl, 0x333)
	m.WriteMSR(MSRPerfGlobalCtl, 0x7<<32|0xF)
	m.Mem.Write64(testDataBase, testDataBase)
	asm := "mov r14, " + itoa(testDataBase) + "\n" +
		strings.Repeat("mov r14, [r14]\n", 100)
	run(t, m, asm)
	p2, _ := m.ReadMSR(MSRPmc0 + 0)
	p3, _ := m.ReadMSR(MSRPmc0 + 1)
	total := p2 + p3
	if total < 100 {
		t.Fatalf("port 2+3 µops = %d, want >= 100", total)
	}
	ratio := float64(p2) / float64(total)
	if ratio < 0.4 || ratio > 0.6 {
		t.Fatalf("port balance p2=%d p3=%d, want ~50/50", p2, p3)
	}
}

func TestPrivilegedFaultsInUserMode(t *testing.T) {
	m := newTestMachine(t)
	m.SetMode(User)
	code := x86.MustAssemble("rdmsr\nret")
	if err := m.WriteCode(testCodeBase, code); err != nil {
		t.Fatal(err)
	}
	_, err := m.Run(testCodeBase)
	var f *Fault
	if !errors.As(err, &f) || !strings.Contains(f.Reason, "privileged") {
		t.Fatalf("expected #GP fault, got %v", err)
	}
}

func TestRDPMCPrivilege(t *testing.T) {
	m := newTestMachine(t)
	m.SetMode(User)
	m.SetCR4PCE(false)
	code := x86.MustAssemble("mov rcx, 0x40000000\nrdpmc\nret")
	if err := m.WriteCode(testCodeBase, code); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(testCodeBase); err == nil {
		t.Fatal("expected fault for RDPMC with CR4.PCE=0")
	}
	m.SetCR4PCE(true)
	if _, err := m.Run(testCodeBase); err != nil {
		t.Fatalf("RDPMC with CR4.PCE=1: %v", err)
	}
}

func TestCounterSamplingSerializationHazard(t *testing.T) {
	// The core claim of Section IV-A1: reading a counter without a fence
	// can miss events from long-latency instructions still in flight;
	// LFENCE prevents this.
	readCycles := func(fenced bool) uint64 {
		m := newTestMachine(t)
		m.WriteMSR(MSRFixedCtrCtrl, 0x333)
		m.WriteMSR(MSRPerfGlobalCtl, 0x7<<32)
		fence := ""
		if fenced {
			fence = "lfence\n"
		}
		// A long dependent chain of multiplies is still executing when
		// the unfenced RDPMC samples the cycle counter.
		asm := `
			mov rcx, 0x40000001
			mov rax, 7
			mov rbx, 3
		` + strings.Repeat("imul rax, rbx\n", 50) + fence + `
			rdpmc
			shl rdx, 32
			or rax, rdx
			mov r8, rax
		`
		run(t, m, asm) // warm-up: code fetch misses would otherwise dominate
		m.WriteMSR(MSRFixedCtr1, 0)
		run(t, m, asm)
		return m.Reg(x86.R8)
	}
	unfenced := readCycles(false)
	fenced := readCycles(true)
	if fenced <= unfenced {
		t.Fatalf("fenced read (%d cycles) should observe more than unfenced (%d)", fenced, unfenced)
	}
	if fenced-unfenced < 50 {
		t.Fatalf("fence effect too small: fenced=%d unfenced=%d", fenced, unfenced)
	}
}

func TestCPUIDLatencyVariance(t *testing.T) {
	m := newTestMachine(t)
	m.WriteMSR(MSRFixedCtrCtrl, 0x333)
	m.WriteMSR(MSRPerfGlobalCtl, 0x7<<32)
	// Measure CPUID-serialized empty region repeatedly; the CPUID jitter
	// must show up as run-to-run variance.
	var vals []int64
	for i := 0; i < 20; i++ {
		res := run(t, m, "mov rax, 0\ncpuid\nmov rax, 0\ncpuid")
		vals = append(vals, res.Cycles)
	}
	min, max := vals[0], vals[0]
	for _, v := range vals {
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if max-min < 20 {
		t.Fatalf("CPUID latency shows no variance: min=%d max=%d", min, max)
	}
}

func TestBranchPredictorWarmup(t *testing.T) {
	m := newTestMachine(t)
	m.WriteMSR(MSRPerfEvtSel0+0, uint64(0xC5)|0x00<<8|PerfEvtSelEN)
	m.WriteMSR(MSRFixedCtrCtrl, 0x333)
	m.WriteMSR(MSRPerfGlobalCtl, 0x7<<32|0x1)
	asm := `
		mov r15, 50
	l:
		dec r15
		jnz l
	`
	run(t, m, asm)
	first, _ := m.ReadMSR(MSRPmc0)
	run(t, m, asm)
	second, _ := m.ReadMSR(MSRPmc0)
	run(t, m, asm)
	third, _ := m.ReadMSR(MSRPmc0)
	if first == 0 {
		t.Fatal("first run should mispredict while the predictor warms up")
	}
	d2, d3 := second-first, third-second
	if d2 < d3 {
		t.Fatalf("mispredicts should not increase: run2=%d run3=%d", d2, d3)
	}
	if d3 > 2 {
		t.Fatalf("trained loop still mispredicts %d times per run", d3)
	}
}

func TestUserModeInterruptNoise(t *testing.T) {
	spec := testSpec()
	spec.InterruptInterval = 20000
	m, err := New(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Mem.Map(testCodeBase, 0x200000, 1<<20); err != nil {
		t.Fatal(err)
	}
	m.SetMode(User)
	asm := strings.Repeat("nop\n", 1000) // ~250 cycles per run
	code := x86.MustAssemble(asm + "ret")
	if err := m.WriteCode(testCodeBase, code); err != nil {
		t.Fatal(err)
	}
	irqs := 0
	for i := 0; i < 400; i++ {
		res, err := m.Run(testCodeBase)
		if err != nil {
			t.Fatal(err)
		}
		irqs += res.Interrupts
	}
	if irqs == 0 {
		t.Fatal("user mode with timer interrupts saw none")
	}
	// Kernel mode must see none.
	m.SetMode(Kernel)
	for i := 0; i < 100; i++ {
		res, err := m.Run(testCodeBase)
		if err != nil {
			t.Fatal(err)
		}
		if res.Interrupts != 0 {
			t.Fatal("kernel mode took an interrupt")
		}
	}
}

func TestWBINVDAndCacheCounters(t *testing.T) {
	m := newTestMachine(t)
	m.WriteMSR(MSRPerfEvtSel0+0, uint64(0xD1)|0x01<<8|PerfEvtSelEN)
	m.WriteMSR(MSRPerfEvtSel0+1, uint64(0xD1)|0x08<<8|PerfEvtSelEN)
	m.WriteMSR(MSRFixedCtrCtrl, 0x333)
	m.WriteMSR(MSRPerfGlobalCtl, 0x7<<32|0x3)
	m.Mem.Write64(testDataBase, testDataBase)
	addr := itoa(testDataBase)
	// Warm load, then hit it; then WBINVD and load again (miss).
	run(t, m, `
		mov r14, `+addr+`
		mov r14, [r14]
		mov r14, [r14]
		wbinvd
		mov r14, [r14]
	`)
	hits, _ := m.ReadMSR(MSRPmc0 + 0)
	misses, _ := m.ReadMSR(MSRPmc0 + 1)
	if hits != 1 {
		t.Fatalf("L1 hits = %d, want 1 (second load)", hits)
	}
	// Three misses: the cold load, the post-WBINVD load, and the final
	// RET's load from the machine stack (a real load event, just like the
	// measurement overhead nanoBench's two-run subtraction removes).
	if misses != 3 {
		t.Fatalf("L1 misses = %d, want 3 (cold + post-WBINVD + RET)", misses)
	}
}

func TestPauseResumeCounting(t *testing.T) {
	m := newTestMachine(t)
	m.WriteMSR(MSRFixedCtrCtrl, 0x333)
	m.WriteMSR(MSRPerfGlobalCtl, 0x7<<32)
	// Disable counting around a block of instructions using WRMSR to the
	// global control MSR (this is how nanoBench's pause/resume magic
	// bytes are implemented).
	run(t, m, `
		`+strings.Repeat("nop\n", 10)+`
		mov rcx, 0x38F
		mov rax, 0
		mov rdx, 0
		wrmsr
		`+strings.Repeat("nop\n", 100)+`
		mov rcx, 0x38F
		mov rax, 0
		mov rdx, 7
		wrmsr
		`+strings.Repeat("nop\n", 10)+`
	`)
	instr, _ := m.ReadMSR(MSRFixedCtr0)
	if instr < 15 || instr > 40 {
		t.Fatalf("instructions counted with pause = %d, want ~20-30 (not ~130)", instr)
	}
}

func TestDecodeCacheInvalidation(t *testing.T) {
	m := newTestMachine(t)
	run(t, m, "mov rax, 1")
	if m.Reg(x86.RAX) != 1 {
		t.Fatal("first code version")
	}
	run(t, m, "mov rax, 2")
	if m.Reg(x86.RAX) != 2 {
		t.Fatal("decode cache returned stale instruction")
	}
}

func TestDivideError(t *testing.T) {
	m := newTestMachine(t)
	code := x86.MustAssemble("mov rax, 1\nmov rdx, 0\nmov rbx, 0\ndiv rbx\nret")
	m.WriteCode(testCodeBase, code)
	_, err := m.Run(testCodeBase)
	var f *Fault
	if !errors.As(err, &f) || !strings.Contains(f.Reason, "#DE") {
		t.Fatalf("expected divide fault, got %v", err)
	}
}

func TestRunawayLoopBudget(t *testing.T) {
	m := newTestMachine(t)
	m.MaxInstructions = 10000
	code := x86.MustAssemble("self: jmp self\nret")
	m.WriteCode(testCodeBase, code)
	if _, err := m.Run(testCodeBase); err == nil {
		t.Fatal("expected instruction-budget fault")
	}
}

func TestCallRet(t *testing.T) {
	m := newTestMachine(t)
	run(t, m, `
		mov rax, 1
		call sub1
		add rax, 100
		jmp end
	sub1:
		add rax, 10
		ret
	end:
	`)
	if got := m.Reg(x86.RAX); got != 111 {
		t.Fatalf("RAX = %d, want 111", got)
	}
}

func TestFlagsAndConditions(t *testing.T) {
	m := newTestMachine(t)
	run(t, m, `
		mov rax, 0
		mov rbx, 5
		cmp rbx, 5
		jnz not_taken
		mov rax, 1
	not_taken:
		cmp rbx, 10
		jge not_taken2
		add rax, 2
	not_taken2:
		mov rcx, -1
		test rcx, rcx
		jns not_taken3
		add rax, 4
	not_taken3:
	`)
	if got := m.Reg(x86.RAX); got != 7 {
		t.Fatalf("RAX = %d, want 7", got)
	}
}

func TestMulDivSemantics(t *testing.T) {
	m := newTestMachine(t)
	run(t, m, `
		mov rax, 7
		mov rbx, 6
		mul rbx
		mov rcx, rax
		mov rdx, 0
		mov rbx, 5
		div rbx
	`)
	if got := m.Reg(x86.RCX); got != 42 {
		t.Fatalf("mul: %d, want 42", got)
	}
	if got := m.Reg(x86.RAX); got != 8 {
		t.Fatalf("div quotient: %d, want 8", got)
	}
	if got := m.Reg(x86.RDX); got != 2 {
		t.Fatalf("div remainder: %d, want 2", got)
	}
}

func TestSSEALU(t *testing.T) {
	m := newTestMachine(t)
	run(t, m, `
		mov rax, 3
		movq xmm0, rax
		mov rbx, 4
		movq xmm1, rbx
		paddq xmm0, xmm1
		movq rcx, xmm0
	`)
	if got := m.Reg(x86.RCX); got != 7 {
		t.Fatalf("PADDQ result = %d, want 7", got)
	}
}

func TestRefCycleRatio(t *testing.T) {
	m := newTestMachine(t)
	m.WriteMSR(MSRFixedCtrCtrl, 0x333)
	m.WriteMSR(MSRPerfGlobalCtl, 0x7<<32)
	res := run(t, m, strings.Repeat("nop\n", 4000))
	core, _ := m.ReadMSR(MSRFixedCtr1)
	ref, _ := m.ReadMSR(MSRFixedCtr2)
	_ = res
	if core == 0 || ref == 0 {
		t.Fatalf("core=%d ref=%d", core, ref)
	}
	ratio := float64(ref) / float64(core)
	if ratio < 0.85 || ratio > 0.91 {
		t.Fatalf("ref/core ratio = %.3f, want ~0.88", ratio)
	}
}

func TestAperfMperf(t *testing.T) {
	m := newTestMachine(t)
	run(t, m, strings.Repeat("nop\n", 1000))
	a, ok := m.ReadMSR(MSRAperf)
	if !ok || a == 0 {
		t.Fatal("APERF not counting")
	}
	mp, ok := m.ReadMSR(MSRMperf)
	if !ok || mp == 0 {
		t.Fatal("MPERF not counting")
	}
	if mp >= a {
		t.Fatalf("MPERF (%d) should be below APERF (%d) at ratio 0.88", mp, a)
	}
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var b [24]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
