package machine

import (
	"math/rand"
	"testing"
)

// FuzzTraceMatchesStep fuzzes the trace tier against the reference
// single-step interpreter: each seed drives the same randomized program
// generator as TestChainedMatchesSingleStep (branches, loops, CL shifts,
// BSF/BSR, self-modifying code), and the two engines must agree on every
// observable — registers, instruction and cycle counts, PMU counter
// values, and error strings. The corpus seeds cover the property test's
// deterministic seed range; the fuzzer then explores the seed space.
func FuzzTraceMatchesStep(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Add(int64(1) << 40)
	f.Add(int64(-1))
	f.Fuzz(func(t *testing.T, seed int64) {
		code := randProgram(t, rand.New(rand.NewSource(seed)))
		stepped, errS := runProgramEngine(t, code, EngineStep)
		traced, errT := runProgramEngine(t, code, EngineTrace)
		if (errS == nil) != (errT == nil) ||
			(errS != nil && errS.Error() != errT.Error()) {
			t.Fatalf("error divergence: step=%v trace=%v", errS, errT)
		}
		if traced != stepped {
			t.Fatalf("state divergence:\nstep:\n%s\ntrace:\n%s", stepped, traced)
		}
	})
}
