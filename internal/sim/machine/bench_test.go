package machine

import (
	"fmt"
	"strings"
	"testing"

	"nanobench/internal/x86"
)

// benchMachine builds a kernel-mode machine with the code and data regions
// mapped and a realistic counter configuration: the three fixed counters
// plus all four programmable counters enabled, as every nanoBench
// measurement run has them.
func benchMachine(b *testing.B) *Machine {
	b.Helper()
	m, err := New(testSpec())
	if err != nil {
		b.Fatal(err)
	}
	m.SetMode(Kernel)
	if err := m.Mem.Map(testCodeBase, 0x200000, 1<<20); err != nil {
		b.Fatal(err)
	}
	if err := m.Mem.Map(testDataBase, 0x400000, 4<<20); err != nil {
		b.Fatal(err)
	}
	m.Hier.Prefetcher.Enabled = false
	// Program the port-usage counters 0..3 and enable everything, like the
	// runner's programCounters does before a measurement series.
	for i, sel := range []uint64{0xA1 | 0x01<<8, 0xA1 | 0x02<<8, 0xA1 | 0x04<<8, 0xA1 | 0x08<<8} {
		m.WriteMSR(MSRPerfEvtSel0+uint32(i), sel|PerfEvtSelEN)
	}
	m.WriteMSR(MSRFixedCtrCtrl, 0x333)
	m.WriteMSR(MSRPerfGlobalCtl, 0x7<<32|0xF)
	return m
}

// benchWorkloads are the two shapes of the loop-vs-unroll experiment
// (Section III-F): the same ALU body executed from a dec/jnz loop and as a
// straight unrolled stream.
func benchWorkloads() []struct{ name, asm string } {
	body := "add rax, rbx\nadd rcx, rdx\nxor r8, r9\ninc r10\n"
	var unrolled strings.Builder
	for i := 0; i < 256; i++ {
		unrolled.WriteString(body)
	}
	unrolled.WriteString("ret")
	loop := fmt.Sprintf(`
		mov r15, 256
	loop_start:
		%s
		dec r15
		jnz loop_start
		ret`, body)
	return []struct{ name, asm string }{
		{"loop", loop},
		{"unroll", unrolled.String()},
	}
}

// BenchmarkStepThroughput measures the simulator's per-instruction cost on
// the loop-vs-unroll workload. The ns/instr and simulated-MIPS metrics are
// the repo's headline engine-performance numbers (see README, "Simulator
// architecture & performance").
func BenchmarkStepThroughput(b *testing.B) {
	for _, w := range benchWorkloads() {
		b.Run(w.name, func(b *testing.B) {
			benchRunWorkload(b, w.asm, EngineTrace)
		})
	}
}

// BenchmarkEngineThroughput measures the loop workload under each of the
// three execution tiers, so the per-tier cost of trace mode's block
// dispatch and schedule replay is visible (and gated) separately from the
// headline number.
func BenchmarkEngineThroughput(b *testing.B) {
	loop := benchWorkloads()[0]
	for _, e := range []Engine{EngineStep, EngineChained, EngineTrace} {
		b.Run(e.String(), func(b *testing.B) {
			benchRunWorkload(b, loop.asm, e)
		})
	}
}

func benchRunWorkload(b *testing.B, asm string, e Engine) {
	b.Helper()
	m := benchMachine(b)
	m.SetEngine(e)
	code := x86.MustAssemble(asm)
	if err := m.WriteCode(testCodeBase, code); err != nil {
		b.Fatal(err)
	}
	// One warm-up run so branch predictors and caches settle.
	if _, err := m.Run(testCodeBase); err != nil {
		b.Fatal(err)
	}
	var instrs uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.PMU.ResetAll(m.Cycle())
		res, err := m.Run(testCodeBase)
		if err != nil {
			b.Fatal(err)
		}
		instrs += res.Instructions
	}
	b.StopTimer()
	if instrs > 0 {
		ns := float64(b.Elapsed().Nanoseconds())
		b.ReportMetric(ns/float64(instrs), "ns/instr")
		b.ReportMetric(float64(instrs)*1000/ns, "simulated-MIPS")
	}
}
