package machine

import (
	"fmt"
	"math"
	"math/bits"

	"nanobench/internal/x86"
)

// execNormal handles data-processing instructions (integer ALU, moves,
// shifts, multiply/divide, and SSE arithmetic) for all operand shapes.
func (m *Machine) execNormal(in x86.Instr, spec x86.InstrSpec) error {
	switch in.Op {
	case x86.MOV, x86.MOVAPS, x86.MOVQ:
		return m.execMove(in, spec)
	case x86.LEA:
		return m.execLEA(in, spec)
	case x86.XCHG:
		return m.execXCHG(in, spec)
	case x86.MUL, x86.DIV:
		return m.execMulDiv(in, spec)
	}
	if len(in.Args) > 0 {
		if r, ok := in.Args[0].(x86.Reg); ok && r.IsXMM() {
			return m.execSSE(in, spec)
		}
	}
	return m.execIntALU(in, spec)
}

// readOperand reads a source operand value and its ready cycle,
// dispatching a load µop for memory operands.
func (m *Machine) readOperand(a x86.Arg) (uint64, int64, error) {
	c := &m.core
	switch v := a.(type) {
	case x86.Reg:
		if v.IsXMM() {
			return c.xmm[v-x86.XMM0][0], c.xmmReady[v-x86.XMM0], nil
		}
		return c.regs[v], c.regReady[v], nil
	case x86.Imm:
		return uint64(v), 0, nil
	case x86.Mem:
		addr, aready, err := m.memOperandAddr(v)
		if err != nil {
			return 0, 0, err
		}
		val, done, _, err := m.load(addr, 8, aready)
		return val, done, err
	}
	return 0, 0, &Fault{RIP: c.rip, Reason: "unsupported operand"}
}

// dispatchCompute dispatches the instruction's compute µops with the given
// operand-ready cycle and returns the completion cycle of the result.
func (m *Machine) dispatchCompute(spec x86.InstrSpec, ready int64) int64 {
	done := ready
	for _, u := range spec.Uops {
		_, d := m.dispatch(u.Ports, ready, u.Latency, u.Occupancy)
		if d > done {
			done = d
		}
	}
	if len(spec.Uops) == 0 {
		m.issueSlot()
	}
	return done
}

func (m *Machine) execMove(in x86.Instr, spec x86.InstrSpec) error {
	c := &m.core
	dst, src := in.Args[0], in.Args[1]
	switch d := dst.(type) {
	case x86.Reg:
		switch s := src.(type) {
		case x86.Mem:
			addr, aready, err := m.memOperandAddr(s)
			if err != nil {
				return err
			}
			if d.IsXMM() {
				// 128-bit (MOVAPS) or 64-bit (MOVQ) load.
				v, done, _, err := m.load(addr, 8, aready)
				if err != nil {
					return err
				}
				var hi uint64
				if in.Op == x86.MOVAPS {
					hi, _ = m.Mem.Read64(addr + 8)
				}
				c.xmm[d-x86.XMM0] = [2]uint64{v, hi}
				c.xmmReady[d-x86.XMM0] = done
				m.retire(done)
				return nil
			}
			v, done, _, err := m.load(addr, 8, aready)
			if err != nil {
				return err
			}
			m.setReg(d, v, done)
			m.retire(done)
			return nil
		case x86.Reg:
			var v [2]uint64
			var ready int64
			if s.IsXMM() {
				v = c.xmm[s-x86.XMM0]
				ready = c.xmmReady[s-x86.XMM0]
			} else {
				v = [2]uint64{c.regs[s], 0}
				ready = c.regReady[s]
			}
			done := m.dispatchCompute(spec, ready)
			if d.IsXMM() {
				if in.Op == x86.MOVQ {
					v[1] = 0
				}
				c.xmm[d-x86.XMM0] = v
				c.xmmReady[d-x86.XMM0] = done
			} else {
				m.setReg(d, v[0], done)
			}
			m.retire(done)
			return nil
		case x86.Imm:
			done := m.dispatchCompute(spec, 0)
			m.setReg(d, uint64(s), done)
			m.retire(done)
			return nil
		}
	case x86.Mem:
		addr, aready, err := m.memOperandAddr(d)
		if err != nil {
			return err
		}
		var val uint64
		var hi uint64
		var vready int64
		writeHi := false
		switch s := src.(type) {
		case x86.Reg:
			if s.IsXMM() {
				val, hi = c.xmm[s-x86.XMM0][0], c.xmm[s-x86.XMM0][1]
				vready = c.xmmReady[s-x86.XMM0]
				writeHi = in.Op == x86.MOVAPS
			} else {
				val, vready = c.regs[s], c.regReady[s]
			}
		case x86.Imm:
			val = uint64(s)
		}
		done, err := m.store(addr, 8, val, aready, vready)
		if err != nil {
			return err
		}
		if writeHi {
			if !m.Mem.Write64(addr+8, hi) {
				return &Fault{RIP: c.rip, Reason: "#PF: partial vector store"}
			}
		}
		m.retire(done)
		return nil
	}
	return &Fault{RIP: c.rip, Reason: fmt.Sprintf("unsupported MOV form %s", in.String())}
}

func (m *Machine) execLEA(in x86.Instr, spec x86.InstrSpec) error {
	dst := in.Args[0].(x86.Reg)
	mo := in.Args[1].(x86.Mem)
	addr, aready, err := m.memOperandAddr(mo)
	if err != nil {
		return err
	}
	done := m.dispatchCompute(spec, aready)
	m.setReg(dst, uint64(addr), done)
	m.retire(done)
	return nil
}

func (m *Machine) execXCHG(in x86.Instr, spec x86.InstrSpec) error {
	c := &m.core
	a0, a1 := in.Args[0], in.Args[1]
	r0, ok0 := a0.(x86.Reg)
	r1, ok1 := a1.(x86.Reg)
	if ok0 && ok1 {
		ready := maxI64(c.regReady[r0], c.regReady[r1])
		done := m.dispatchCompute(spec, ready)
		c.regs[r0], c.regs[r1] = c.regs[r1], c.regs[r0]
		c.regReady[r0], c.regReady[r1] = done, done
		m.retire(done)
		return nil
	}
	// One memory operand: load, swap, store (no LOCK semantics needed on
	// a single simulated core).
	var reg x86.Reg
	var mo x86.Mem
	if ok0 {
		reg, mo = r0, a1.(x86.Mem)
	} else {
		reg, mo = r1, a0.(x86.Mem)
	}
	addr, aready, err := m.memOperandAddr(mo)
	if err != nil {
		return err
	}
	old, ldone, _, err := m.load(addr, 8, aready)
	if err != nil {
		return err
	}
	done := m.dispatchCompute(spec, maxI64(ldone, c.regReady[reg]))
	sdone, err := m.store(addr, 8, c.regs[reg], aready, done)
	if err != nil {
		return err
	}
	m.setReg(reg, old, done)
	m.retire(maxI64(done, sdone))
	return nil
}

func (m *Machine) execMulDiv(in x86.Instr, spec x86.InstrSpec) error {
	c := &m.core
	src, sready, err := m.readOperand(in.Args[0])
	if err != nil {
		return err
	}
	ready := maxI64(sready, c.regReady[x86.RAX])
	if in.Op == x86.DIV {
		ready = maxI64(ready, c.regReady[x86.RDX])
	}
	done := m.dispatchCompute(spec, ready)
	switch in.Op {
	case x86.MUL:
		hi, lo := bits.Mul64(c.regs[x86.RAX], src)
		m.setReg(x86.RAX, lo, done)
		m.setReg(x86.RDX, hi, done)
		c.cf, c.of = hi != 0, hi != 0
	case x86.DIV:
		hi, lo := c.regs[x86.RDX], c.regs[x86.RAX]
		if src == 0 || hi >= src {
			return &Fault{RIP: c.rip, Reason: "#DE: divide error"}
		}
		q, r := bits.Div64(hi, lo, src)
		m.setReg(x86.RAX, q, done)
		m.setReg(x86.RDX, r, done)
	}
	c.flagReady = done
	m.retire(done)
	return nil
}

// execIntALU handles the generic integer ALU patterns.
func (m *Machine) execIntALU(in x86.Instr, spec x86.InstrSpec) error {
	c := &m.core
	op := in.Op

	// Unary register/memory forms.
	if len(in.Args) == 1 {
		switch d := in.Args[0].(type) {
		case x86.Reg:
			ready := c.regReady[d]
			if spec.ReadsFlags {
				ready = maxI64(ready, c.flagReady)
			}
			done := m.dispatchCompute(spec, ready)
			res := m.aluUnary(op, c.regs[d], done)
			m.setReg(d, res, done)
			m.retire(done)
			return nil
		case x86.Mem:
			addr, aready, err := m.memOperandAddr(d)
			if err != nil {
				return err
			}
			val, ldone, _, err := m.load(addr, 8, aready)
			if err != nil {
				return err
			}
			done := m.dispatchCompute(spec, ldone)
			res := m.aluUnary(op, val, done)
			sdone, err := m.store(addr, 8, res, aready, done)
			if err != nil {
				return err
			}
			m.retire(maxI64(done, sdone))
			return nil
		}
	}

	if len(in.Args) != 2 {
		return &Fault{RIP: c.rip, Reason: fmt.Sprintf("unsupported form %s", in.String())}
	}

	// Shift instructions: the count is an immediate or CL.
	if op == x86.SHL || op == x86.SHR || op == x86.SAR || op == x86.ROL || op == x86.ROR {
		return m.execShift(in, spec)
	}

	dst := in.Args[0]
	src := in.Args[1]
	srcVal, sready, err := m.readOperand(src)
	if err != nil {
		return err
	}

	// Is the destination read? CMP/TEST read both but write none;
	// POPCNT/BSF/BSR only read the source.
	readsDst := true
	writesDst := true
	switch op {
	case x86.CMP, x86.TEST:
		writesDst = false
	case x86.POPCNT, x86.BSF, x86.BSR:
		readsDst = false
	}

	switch d := dst.(type) {
	case x86.Reg:
		ready := sready
		if readsDst {
			ready = maxI64(ready, c.regReady[d])
		}
		if spec.ReadsFlags {
			ready = maxI64(ready, c.flagReady)
		}
		done := m.dispatchCompute(spec, ready)
		res, write := m.aluBinary(op, c.regs[d], srcVal, done)
		if write && writesDst {
			m.setReg(d, res, done)
		}
		m.retire(done)
		return nil
	case x86.Mem:
		addr, aready, err := m.memOperandAddr(d)
		if err != nil {
			return err
		}
		val, ldone, _, err := m.load(addr, 8, aready)
		if err != nil {
			return err
		}
		ready := maxI64(ldone, sready)
		if spec.ReadsFlags {
			ready = maxI64(ready, c.flagReady)
		}
		done := m.dispatchCompute(spec, ready)
		res, write := m.aluBinary(op, val, srcVal, done)
		if write && writesDst {
			sdone, err := m.store(addr, 8, res, aready, done)
			if err != nil {
				return err
			}
			done = maxI64(done, sdone)
		}
		m.retire(done)
		return nil
	}
	return &Fault{RIP: c.rip, Reason: fmt.Sprintf("unsupported form %s", in.String())}
}

func (m *Machine) execShift(in x86.Instr, spec x86.InstrSpec) error {
	c := &m.core
	var count uint64
	var cready int64
	switch s := in.Args[1].(type) {
	case x86.Imm:
		count = uint64(s)
	case x86.Reg: // CL
		count = c.regs[x86.RCX]
		cready = c.regReady[x86.RCX]
	}
	count &= 63

	apply := func(val uint64, done int64) uint64 {
		if count == 0 {
			return val
		}
		var res uint64
		switch in.Op {
		case x86.SHL:
			res = val << count
			c.cf = (val>>(64-count))&1 == 1
		case x86.SHR:
			res = val >> count
			c.cf = (val>>(count-1))&1 == 1
		case x86.SAR:
			res = uint64(int64(val) >> count)
			c.cf = (val>>(count-1))&1 == 1
		case x86.ROL:
			res = bits.RotateLeft64(val, int(count))
			c.cf = res&1 == 1
		case x86.ROR:
			res = bits.RotateLeft64(val, -int(count))
			c.cf = res>>63 == 1
		}
		if in.Op != x86.ROL && in.Op != x86.ROR {
			c.zf = res == 0
			c.sf = res>>63 == 1
			c.of = false
		}
		c.flagReady = done
		return res
	}

	switch d := in.Args[0].(type) {
	case x86.Reg:
		ready := maxI64(c.regReady[d], cready)
		done := m.dispatchCompute(spec, ready)
		m.setReg(d, apply(c.regs[d], done), done)
		m.retire(done)
		return nil
	case x86.Mem:
		addr, aready, err := m.memOperandAddr(d)
		if err != nil {
			return err
		}
		val, ldone, _, err := m.load(addr, 8, aready)
		if err != nil {
			return err
		}
		done := m.dispatchCompute(spec, maxI64(ldone, cready))
		res := apply(val, done)
		sdone, err := m.store(addr, 8, res, aready, done)
		if err != nil {
			return err
		}
		m.retire(maxI64(done, sdone))
		return nil
	}
	return &Fault{RIP: c.rip, Reason: "unsupported shift form"}
}

// aluUnary computes unary integer operations and sets flags; done is the
// cycle the flags become ready.
func (m *Machine) aluUnary(op x86.Op, a uint64, done int64) uint64 {
	c := &m.core
	var res uint64
	switch op {
	case x86.INC:
		res = a + 1
		c.zf, c.sf = res == 0, res>>63 == 1
		c.of = res == 1<<63
		c.flagReady = done // CF preserved
	case x86.DEC:
		res = a - 1
		c.zf, c.sf = res == 0, res>>63 == 1
		c.of = res == 1<<63-1
		c.flagReady = done
	case x86.NEG:
		res = -a
		c.cf = a != 0
		c.zf, c.sf = res == 0, res>>63 == 1
		c.of = a == 1<<63
		c.flagReady = done
	case x86.NOT:
		res = ^a // no flags
	case x86.BSWAP:
		res = bits.ReverseBytes64(a) // no flags
	default:
		res = a
	}
	return res
}

// aluBinary computes binary integer operations. It returns the result and
// whether the destination is written (CMP/TEST return false).
func (m *Machine) aluBinary(op x86.Op, a, b uint64, done int64) (uint64, bool) {
	c := &m.core
	setAddFlags := func(res uint64, carry uint64) {
		c.cf = carry != 0
		c.zf = res == 0
		c.sf = res>>63 == 1
		c.of = (a^res)&(b^res)>>63 != 0
		c.flagReady = done
	}
	setSubFlags := func(res uint64, borrow uint64) {
		c.cf = borrow != 0
		c.zf = res == 0
		c.sf = res>>63 == 1
		c.of = (a^b)&(a^res)>>63 != 0
		c.flagReady = done
	}
	setLogicFlags := func(res uint64) {
		c.cf, c.of = false, false
		c.zf = res == 0
		c.sf = res>>63 == 1
		c.flagReady = done
	}
	switch op {
	case x86.ADD:
		res, carry := bits.Add64(a, b, 0)
		setAddFlags(res, carry)
		return res, true
	case x86.ADC:
		carryIn := uint64(0)
		if c.cf {
			carryIn = 1
		}
		res, carry := bits.Add64(a, b, carryIn)
		setAddFlags(res, carry)
		return res, true
	case x86.SUB:
		res, borrow := bits.Sub64(a, b, 0)
		setSubFlags(res, borrow)
		return res, true
	case x86.SBB:
		borrowIn := uint64(0)
		if c.cf {
			borrowIn = 1
		}
		res, borrow := bits.Sub64(a, b, borrowIn)
		setSubFlags(res, borrow)
		return res, true
	case x86.CMP:
		res, borrow := bits.Sub64(a, b, 0)
		setSubFlags(res, borrow)
		return res, false
	case x86.AND:
		res := a & b
		setLogicFlags(res)
		return res, true
	case x86.OR:
		res := a | b
		setLogicFlags(res)
		return res, true
	case x86.XOR:
		res := a ^ b
		setLogicFlags(res)
		return res, true
	case x86.TEST:
		setLogicFlags(a & b)
		return 0, false
	case x86.IMUL:
		x, y := int64(a), int64(b)
		res := x * y
		ovf := x != 0 && res/x != y
		c.cf, c.of = ovf, ovf
		c.flagReady = done
		return uint64(res), true
	case x86.POPCNT:
		res := uint64(bits.OnesCount64(b))
		c.zf = b == 0
		c.cf, c.sf, c.of = false, false, false
		c.flagReady = done
		return res, true
	case x86.BSF:
		if b == 0 {
			c.zf = true
			c.flagReady = done
			return a, false
		}
		c.zf = false
		c.flagReady = done
		return uint64(bits.TrailingZeros64(b)), true
	case x86.BSR:
		if b == 0 {
			c.zf = true
			c.flagReady = done
			return a, false
		}
		c.zf = false
		c.flagReady = done
		return uint64(63 - bits.LeadingZeros64(b)), true
	}
	return a, false
}

// execSSE handles vector arithmetic with an XMM destination.
func (m *Machine) execSSE(in x86.Instr, spec x86.InstrSpec) error {
	c := &m.core
	dst := in.Args[0].(x86.Reg) - x86.XMM0
	var src [2]uint64
	var sready int64
	switch s := in.Args[1].(type) {
	case x86.Reg:
		src = c.xmm[s-x86.XMM0]
		sready = c.xmmReady[s-x86.XMM0]
	case x86.Mem:
		addr, aready, err := m.memOperandAddr(s)
		if err != nil {
			return err
		}
		lo, done, _, err := m.load(addr, 8, aready)
		if err != nil {
			return err
		}
		hi, _ := m.Mem.Read64(addr + 8)
		src = [2]uint64{lo, hi}
		sready = done
	}
	ready := maxI64(sready, c.xmmReady[dst])
	done := m.dispatchCompute(spec, ready)
	c.xmm[dst] = vecCompute(in.Op, c.xmm[dst], src)
	c.xmmReady[dst] = done
	m.retire(done)
	return nil
}

func vecCompute(op x86.Op, a, b [2]uint64) [2]uint64 {
	ps := func(f func(x, y float32) float32) [2]uint64 {
		var out [2]uint64
		for w := 0; w < 2; w++ {
			lo := f(math.Float32frombits(uint32(a[w])), math.Float32frombits(uint32(b[w])))
			hi := f(math.Float32frombits(uint32(a[w]>>32)), math.Float32frombits(uint32(b[w]>>32)))
			out[w] = uint64(math.Float32bits(lo)) | uint64(math.Float32bits(hi))<<32
		}
		return out
	}
	pd := func(f func(x, y float64) float64) [2]uint64 {
		var out [2]uint64
		for w := 0; w < 2; w++ {
			out[w] = math.Float64bits(f(math.Float64frombits(a[w]), math.Float64frombits(b[w])))
		}
		return out
	}
	sd := func(f func(x, y float64) float64) [2]uint64 {
		return [2]uint64{math.Float64bits(f(math.Float64frombits(a[0]), math.Float64frombits(b[0]))), a[1]}
	}
	switch op {
	case x86.ADDPS:
		return ps(func(x, y float32) float32 { return x + y })
	case x86.MULPS:
		return ps(func(x, y float32) float32 { return x * y })
	case x86.DIVPS:
		return ps(func(x, y float32) float32 { return x / y })
	case x86.SQRTPS:
		return ps(func(_, y float32) float32 { return float32(math.Sqrt(float64(y))) })
	case x86.ADDPD:
		return pd(func(x, y float64) float64 { return x + y })
	case x86.MULPD:
		return pd(func(x, y float64) float64 { return x * y })
	case x86.DIVPD:
		return pd(func(x, y float64) float64 { return x / y })
	case x86.ADDSD:
		return sd(func(x, y float64) float64 { return x + y })
	case x86.MULSD:
		return sd(func(x, y float64) float64 { return x * y })
	case x86.DIVSD:
		return sd(func(x, y float64) float64 { return x / y })
	case x86.SQRTSD:
		return sd(func(_, y float64) float64 { return math.Sqrt(y) })
	case x86.PADDQ:
		return [2]uint64{a[0] + b[0], a[1] + b[1]}
	case x86.PAND:
		return [2]uint64{a[0] & b[0], a[1] & b[1]}
	case x86.PXOR:
		return [2]uint64{a[0] ^ b[0], a[1] ^ b[1]}
	}
	return a
}

// evalCond evaluates a conditional-branch predicate against the flags.
func (m *Machine) evalCond(op x86.Op) bool {
	c := &m.core
	switch op {
	case x86.JZ:
		return c.zf
	case x86.JNZ:
		return !c.zf
	case x86.JC:
		return c.cf
	case x86.JNC:
		return !c.cf
	case x86.JS:
		return c.sf
	case x86.JNS:
		return !c.sf
	case x86.JL:
		return c.sf != c.of
	case x86.JGE:
		return c.sf == c.of
	case x86.JLE:
		return c.zf || c.sf != c.of
	case x86.JG:
		return !c.zf && c.sf == c.of
	}
	return false
}
