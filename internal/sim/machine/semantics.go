package machine

import (
	"fmt"
	"math"
	"math/bits"

	"nanobench/internal/sim/pmu"
	"nanobench/internal/x86"
)

// execNormal handles data-processing instructions (integer ALU, moves,
// shifts, multiply/divide, and SSE arithmetic) for all operand shapes.
// Operands arrive pre-classified in the decoded instruction, so no
// interface dispatch happens on this path.
func (m *Machine) execNormal(d *x86.DecodedInstr) error {
	switch d.Op {
	case x86.MOV, x86.MOVAPS, x86.MOVQ:
		return m.execMove(d)
	case x86.LEA:
		return m.execLEA(d)
	case x86.XCHG:
		return m.execXCHG(d)
	case x86.MUL, x86.DIV:
		return m.execMulDiv(d)
	}
	if d.NArgs > 0 && d.Kind[0] == x86.ArgX {
		return m.execSSE(d)
	}
	return m.execIntALU(d)
}

// readArg reads the source operand at index i and its ready cycle,
// dispatching a load µop for memory operands.
func (m *Machine) readArg(d *x86.DecodedInstr, i int) (uint64, int64, error) {
	c := &m.core
	switch d.Kind[i] {
	case x86.ArgGP:
		r := d.Reg[i]
		return c.regs[r], c.regReady[r], nil
	case x86.ArgX:
		x := d.Reg[i] - x86.XMM0
		return c.xmm[x][0], c.xmmReady[x], nil
	case x86.ArgI:
		return uint64(d.Imm), 0, nil
	case x86.ArgM:
		addr, aready, err := m.memOperandAddr(d.Mem)
		if err != nil {
			return 0, 0, err
		}
		val, done, _, err := m.load(addr, 8, aready)
		return val, done, err
	}
	return 0, 0, &Fault{RIP: c.rip, Reason: "unsupported operand"}
}

// dispatchCompute dispatches the decoded entry's compute µops — the flat
// array folded in at predecode time — with the given operand-ready cycle
// and returns the completion cycle of the result.
func (m *Machine) dispatchCompute(d *x86.DecodedInstr, ready int64) int64 {
	done := ready
	for i := 0; i < int(d.NUops); i++ {
		u := &d.Uops[i]
		_, dn := m.dispatch(u.Ports, ready, u.Latency, u.Occupancy)
		if dn > done {
			done = dn
		}
	}
	if d.NUops == 0 {
		m.issueSlot()
	}
	return done
}

func (m *Machine) execMove(d *x86.DecodedInstr) error {
	c := &m.core
	switch d.Kind[0] {
	case x86.ArgGP, x86.ArgX:
		dst := d.Reg[0]
		switch d.Kind[1] {
		case x86.ArgM:
			addr, aready, err := m.memOperandAddr(d.Mem)
			if err != nil {
				return err
			}
			if d.Kind[0] == x86.ArgX {
				// 128-bit (MOVAPS) or 64-bit (MOVQ) load.
				v, done, _, err := m.load(addr, 8, aready)
				if err != nil {
					return err
				}
				var hi uint64
				if d.Op == x86.MOVAPS {
					hi, _ = m.Mem.Read64(addr + 8)
				}
				c.xmm[dst-x86.XMM0] = [2]uint64{v, hi}
				c.xmmReady[dst-x86.XMM0] = done
				m.retire(done)
				return nil
			}
			v, done, _, err := m.load(addr, 8, aready)
			if err != nil {
				return err
			}
			m.setReg(dst, v, done)
			m.retire(done)
			return nil
		case x86.ArgGP, x86.ArgX:
			src := d.Reg[1]
			var v [2]uint64
			var ready int64
			if d.Kind[1] == x86.ArgX {
				v = c.xmm[src-x86.XMM0]
				ready = c.xmmReady[src-x86.XMM0]
			} else {
				v = [2]uint64{c.regs[src], 0}
				ready = c.regReady[src]
			}
			done := m.dispatchCompute(d, ready)
			if d.Kind[0] == x86.ArgX {
				if d.Op == x86.MOVQ {
					v[1] = 0
				}
				c.xmm[dst-x86.XMM0] = v
				c.xmmReady[dst-x86.XMM0] = done
			} else {
				m.setReg(dst, v[0], done)
			}
			m.retire(done)
			return nil
		case x86.ArgI:
			done := m.dispatchCompute(d, 0)
			m.setReg(dst, uint64(d.Imm), done)
			m.retire(done)
			return nil
		}
	case x86.ArgM:
		addr, aready, err := m.memOperandAddr(d.Mem)
		if err != nil {
			return err
		}
		var val uint64
		var hi uint64
		var vready int64
		writeHi := false
		switch d.Kind[1] {
		case x86.ArgGP:
			val, vready = c.regs[d.Reg[1]], c.regReady[d.Reg[1]]
		case x86.ArgX:
			s := d.Reg[1] - x86.XMM0
			val, hi = c.xmm[s][0], c.xmm[s][1]
			vready = c.xmmReady[s]
			writeHi = d.Op == x86.MOVAPS
		case x86.ArgI:
			val = uint64(d.Imm)
		}
		done, err := m.store(addr, 8, val, aready, vready)
		if err != nil {
			return err
		}
		if writeHi {
			if !m.Mem.Write64(addr+8, hi) {
				return &Fault{RIP: c.rip, Reason: "#PF: partial vector store"}
			}
			m.noteCodeWrite(addr+8, 8)
		}
		m.retire(done)
		return nil
	}
	return &Fault{RIP: c.rip, Reason: fmt.Sprintf("unsupported MOV form %s", d.String())}
}

func (m *Machine) execLEA(d *x86.DecodedInstr) error {
	if d.Kind[0] != x86.ArgGP || d.Kind[1] != x86.ArgM {
		return &Fault{RIP: m.core.rip, Reason: fmt.Sprintf("unsupported LEA form %s", d.String())}
	}
	addr, aready, err := m.memOperandAddr(d.Mem)
	if err != nil {
		return err
	}
	done := m.dispatchCompute(d, aready)
	m.setReg(d.Reg[0], uint64(addr), done)
	m.retire(done)
	return nil
}

func (m *Machine) execXCHG(d *x86.DecodedInstr) error {
	c := &m.core
	if d.Kind[0] == x86.ArgGP && d.Kind[1] == x86.ArgGP {
		r0, r1 := d.Reg[0], d.Reg[1]
		ready := maxI64(c.regReady[r0], c.regReady[r1])
		done := m.dispatchCompute(d, ready)
		c.regs[r0], c.regs[r1] = c.regs[r1], c.regs[r0]
		c.regReady[r0], c.regReady[r1] = done, done
		m.retire(done)
		return nil
	}
	// One memory operand: load, swap, store (no LOCK semantics needed on
	// a single simulated core).
	var reg x86.Reg
	if d.Kind[0] == x86.ArgGP {
		reg = d.Reg[0]
	} else {
		reg = d.Reg[1]
	}
	addr, aready, err := m.memOperandAddr(d.Mem)
	if err != nil {
		return err
	}
	old, ldone, _, err := m.load(addr, 8, aready)
	if err != nil {
		return err
	}
	done := m.dispatchCompute(d, maxI64(ldone, c.regReady[reg]))
	sdone, err := m.store(addr, 8, c.regs[reg], aready, done)
	if err != nil {
		return err
	}
	m.setReg(reg, old, done)
	m.retire(maxI64(done, sdone))
	return nil
}

func (m *Machine) execMulDiv(d *x86.DecodedInstr) error {
	c := &m.core
	src, sready, err := m.readArg(d, 0)
	if err != nil {
		return err
	}
	ready := maxI64(sready, c.regReady[x86.RAX])
	if d.Op == x86.DIV {
		ready = maxI64(ready, c.regReady[x86.RDX])
	}
	done := m.dispatchCompute(d, ready)
	switch d.Op {
	case x86.MUL:
		hi, lo := bits.Mul64(c.regs[x86.RAX], src)
		m.setReg(x86.RAX, lo, done)
		m.setReg(x86.RDX, hi, done)
		c.cf, c.of = hi != 0, hi != 0
	case x86.DIV:
		hi, lo := c.regs[x86.RDX], c.regs[x86.RAX]
		if src == 0 || hi >= src {
			return &Fault{RIP: c.rip, Reason: "#DE: divide error"}
		}
		q, r := bits.Div64(hi, lo, src)
		m.setReg(x86.RAX, q, done)
		m.setReg(x86.RDX, r, done)
	}
	c.flagReady = done
	m.retire(done)
	return nil
}

// execIntALU handles the generic integer ALU patterns.
func (m *Machine) execIntALU(d *x86.DecodedInstr) error {
	c := &m.core
	op := d.Op

	// Unary register/memory forms.
	if d.NArgs == 1 {
		switch d.Kind[0] {
		case x86.ArgGP:
			r := d.Reg[0]
			ready := c.regReady[r]
			if d.ReadsFlags {
				ready = maxI64(ready, c.flagReady)
			}
			done := m.dispatchCompute(d, ready)
			res := m.aluUnary(op, c.regs[r], done)
			m.setReg(r, res, done)
			m.retire(done)
			return nil
		case x86.ArgM:
			addr, aready, err := m.memOperandAddr(d.Mem)
			if err != nil {
				return err
			}
			val, ldone, _, err := m.load(addr, 8, aready)
			if err != nil {
				return err
			}
			done := m.dispatchCompute(d, ldone)
			res := m.aluUnary(op, val, done)
			sdone, err := m.store(addr, 8, res, aready, done)
			if err != nil {
				return err
			}
			m.retire(maxI64(done, sdone))
			return nil
		}
	}

	if d.NArgs != 2 {
		return &Fault{RIP: c.rip, Reason: fmt.Sprintf("unsupported form %s", d.String())}
	}

	// Shift instructions: the count is an immediate or CL.
	if op == x86.SHL || op == x86.SHR || op == x86.SAR || op == x86.ROL || op == x86.ROR {
		return m.execShift(d)
	}

	srcVal, sready, err := m.readArg(d, 1)
	if err != nil {
		return err
	}

	// Is the destination read? CMP/TEST read both but write none;
	// POPCNT/BSF/BSR only read the source.
	readsDst := true
	writesDst := true
	switch op {
	case x86.CMP, x86.TEST:
		writesDst = false
	case x86.POPCNT, x86.BSF, x86.BSR:
		readsDst = false
	}

	switch d.Kind[0] {
	case x86.ArgGP:
		r := d.Reg[0]
		ready := sready
		if readsDst {
			ready = maxI64(ready, c.regReady[r])
		}
		if d.ReadsFlags {
			ready = maxI64(ready, c.flagReady)
		}
		done := m.dispatchCompute(d, ready)
		res, write := m.aluBinary(op, c.regs[r], srcVal, done)
		if write && writesDst {
			m.setReg(r, res, done)
		}
		m.retire(done)
		return nil
	case x86.ArgM:
		addr, aready, err := m.memOperandAddr(d.Mem)
		if err != nil {
			return err
		}
		val, ldone, _, err := m.load(addr, 8, aready)
		if err != nil {
			return err
		}
		ready := maxI64(ldone, sready)
		if d.ReadsFlags {
			ready = maxI64(ready, c.flagReady)
		}
		done := m.dispatchCompute(d, ready)
		res, write := m.aluBinary(op, val, srcVal, done)
		if write && writesDst {
			sdone, err := m.store(addr, 8, res, aready, done)
			if err != nil {
				return err
			}
			done = maxI64(done, sdone)
		}
		m.retire(done)
		return nil
	}
	return &Fault{RIP: c.rip, Reason: fmt.Sprintf("unsupported form %s", d.String())}
}

func (m *Machine) execShift(d *x86.DecodedInstr) error {
	c := &m.core
	count, cready := m.shiftCount(d)

	switch d.Kind[0] {
	case x86.ArgGP:
		r := d.Reg[0]
		ready := maxI64(c.regReady[r], cready)
		done := m.dispatchCompute(d, ready)
		m.setReg(r, m.shiftCompute(d.Op, c.regs[r], count, done), done)
		m.retire(done)
		return nil
	case x86.ArgM:
		addr, aready, err := m.memOperandAddr(d.Mem)
		if err != nil {
			return err
		}
		val, ldone, _, err := m.load(addr, 8, aready)
		if err != nil {
			return err
		}
		done := m.dispatchCompute(d, maxI64(ldone, cready))
		res := m.shiftCompute(d.Op, val, count, done)
		sdone, err := m.store(addr, 8, res, aready, done)
		if err != nil {
			return err
		}
		m.retire(maxI64(done, sdone))
		return nil
	}
	return &Fault{RIP: c.rip, Reason: "unsupported shift form"}
}

// shiftCount resolves a shift's count operand (imm or CL) and the cycle
// it is ready.
func (m *Machine) shiftCount(d *x86.DecodedInstr) (uint64, int64) {
	c := &m.core
	switch d.Kind[1] {
	case x86.ArgI:
		return uint64(d.Imm) & 63, 0
	case x86.ArgGP: // CL
		return c.regs[x86.RCX] & 63, c.regReady[x86.RCX]
	}
	return 0, 0
}

// shiftCompute applies a shift/rotate of count bits and sets flags; done
// is the cycle the flags become ready. A count of zero leaves value and
// flags untouched, like hardware.
func (m *Machine) shiftCompute(op x86.Op, val, count uint64, done int64) uint64 {
	c := &m.core
	if count == 0 {
		return val
	}
	var res uint64
	switch op {
	case x86.SHL:
		res = val << count
		c.cf = (val>>(64-count))&1 == 1
	case x86.SHR:
		res = val >> count
		c.cf = (val>>(count-1))&1 == 1
	case x86.SAR:
		res = uint64(int64(val) >> count)
		c.cf = (val>>(count-1))&1 == 1
	case x86.ROL:
		res = bits.RotateLeft64(val, int(count))
		c.cf = res&1 == 1
	case x86.ROR:
		res = bits.RotateLeft64(val, -int(count))
		c.cf = res>>63 == 1
	}
	if op != x86.ROL && op != x86.ROR {
		c.zf = res == 0
		c.sf = res>>63 == 1
		c.of = false
	}
	c.flagReady = done
	return res
}

// execFusedStep runs the fused single-µop shapes classified at predecode
// time (x86.FastKind): register-only data processing whose operand-ready
// dependency slots were folded flat into the entry. Each arm performs
// exactly the operations of its generic counterpart — same µop dispatch,
// same ALU helper, same retire — in the same order, so timing and
// counter values are bit-identical; only the per-step operand walk and
// call chain are gone.
//
// The instruction's PMU events are returned, not delivered: execOne
// forwards them to one RecordFusedStep call, while trace-mode block
// execution buffers them for a single end-of-block RecordBlock delivery
// (counter adds commute, so the deferral is observationally identical).
// dn is the µop's raw dispatch completion (what lastCompletion tracks)
// and done the value-ready cycle max(ready, dn); trace recording stores
// both to reproduce exit state and operand ready cycles on replay.
func (m *Machine) execFusedStep(d *x86.DecodedInstr) (issue int64, portEv pmu.Event, start, done, dn, retired int64) {
	c := &m.core
	u := &d.Uops[0]
	var ready int64
	switch d.Fast {
	case x86.FastALU2:
		r := d.Reg[0]
		var src uint64
		if d.Kind[1] == x86.ArgGP {
			s := d.Reg[1]
			src, ready = c.regs[s], c.regReady[s]
		} else {
			src = uint64(d.Imm)
		}
		if d.ReadsDst && c.regReady[r] > ready {
			ready = c.regReady[r]
		}
		if d.ReadsFlags && c.flagReady > ready {
			ready = c.flagReady
		}
		issue, portEv, start, dn = m.dispatchQuiet(u.Ports, ready, u.Latency, u.Occupancy)
		done = maxI64(ready, dn)
		res, write := m.aluBinary(d.Op, c.regs[r], src, done)
		if write && d.WritesDst {
			c.regs[r] = res
			c.regReady[r] = done
		}
	case x86.FastUnary:
		r := d.Reg[0]
		ready = c.regReady[r]
		if d.ReadsFlags && c.flagReady > ready {
			ready = c.flagReady
		}
		issue, portEv, start, dn = m.dispatchQuiet(u.Ports, ready, u.Latency, u.Occupancy)
		done = maxI64(ready, dn)
		res := m.aluUnary(d.Op, c.regs[r], done)
		c.regs[r] = res
		c.regReady[r] = done
	case x86.FastMOVRR:
		s := d.Reg[1]
		v := c.regs[s]
		ready = c.regReady[s]
		issue, portEv, start, dn = m.dispatchQuiet(u.Ports, ready, u.Latency, u.Occupancy)
		done = maxI64(ready, dn)
		c.regs[d.Reg[0]] = v
		c.regReady[d.Reg[0]] = done
	case x86.FastMOVRI:
		issue, portEv, start, dn = m.dispatchQuiet(u.Ports, 0, u.Latency, u.Occupancy)
		done = dn
		c.regs[d.Reg[0]] = uint64(d.Imm)
		c.regReady[d.Reg[0]] = done
	case x86.FastShift:
		count, cready := m.shiftCount(d)
		r := d.Reg[0]
		ready = maxI64(c.regReady[r], cready)
		issue, portEv, start, dn = m.dispatchQuiet(u.Ports, ready, u.Latency, u.Occupancy)
		done = maxI64(ready, dn)
		res := m.shiftCompute(d.Op, c.regs[r], count, done)
		c.regs[r] = res
		c.regReady[r] = done
	}
	retired = m.retireQuiet(done)
	return issue, portEv, start, done, dn, retired
}

// aluUnary computes unary integer operations and sets flags; done is the
// cycle the flags become ready.
func (m *Machine) aluUnary(op x86.Op, a uint64, done int64) uint64 {
	c := &m.core
	var res uint64
	switch op {
	case x86.INC:
		res = a + 1
		c.zf, c.sf = res == 0, res>>63 == 1
		c.of = res == 1<<63
		c.flagReady = done // CF preserved
	case x86.DEC:
		res = a - 1
		c.zf, c.sf = res == 0, res>>63 == 1
		c.of = res == 1<<63-1
		c.flagReady = done
	case x86.NEG:
		res = -a
		c.cf = a != 0
		c.zf, c.sf = res == 0, res>>63 == 1
		c.of = a == 1<<63
		c.flagReady = done
	case x86.NOT:
		res = ^a // no flags
	case x86.BSWAP:
		res = bits.ReverseBytes64(a) // no flags
	default:
		res = a
	}
	return res
}

// aluBinary computes binary integer operations. It returns the result and
// whether the destination is written (CMP/TEST return false).
func (m *Machine) aluBinary(op x86.Op, a, b uint64, done int64) (uint64, bool) {
	c := &m.core
	setAddFlags := func(res uint64, carry uint64) {
		c.cf = carry != 0
		c.zf = res == 0
		c.sf = res>>63 == 1
		c.of = (a^res)&(b^res)>>63 != 0
		c.flagReady = done
	}
	setSubFlags := func(res uint64, borrow uint64) {
		c.cf = borrow != 0
		c.zf = res == 0
		c.sf = res>>63 == 1
		c.of = (a^b)&(a^res)>>63 != 0
		c.flagReady = done
	}
	setLogicFlags := func(res uint64) {
		c.cf, c.of = false, false
		c.zf = res == 0
		c.sf = res>>63 == 1
		c.flagReady = done
	}
	switch op {
	case x86.ADD:
		res, carry := bits.Add64(a, b, 0)
		setAddFlags(res, carry)
		return res, true
	case x86.ADC:
		carryIn := uint64(0)
		if c.cf {
			carryIn = 1
		}
		res, carry := bits.Add64(a, b, carryIn)
		setAddFlags(res, carry)
		return res, true
	case x86.SUB:
		res, borrow := bits.Sub64(a, b, 0)
		setSubFlags(res, borrow)
		return res, true
	case x86.SBB:
		borrowIn := uint64(0)
		if c.cf {
			borrowIn = 1
		}
		res, borrow := bits.Sub64(a, b, borrowIn)
		setSubFlags(res, borrow)
		return res, true
	case x86.CMP:
		res, borrow := bits.Sub64(a, b, 0)
		setSubFlags(res, borrow)
		return res, false
	case x86.AND:
		res := a & b
		setLogicFlags(res)
		return res, true
	case x86.OR:
		res := a | b
		setLogicFlags(res)
		return res, true
	case x86.XOR:
		res := a ^ b
		setLogicFlags(res)
		return res, true
	case x86.TEST:
		setLogicFlags(a & b)
		return 0, false
	case x86.IMUL:
		x, y := int64(a), int64(b)
		res := x * y
		ovf := x != 0 && res/x != y
		c.cf, c.of = ovf, ovf
		c.flagReady = done
		return uint64(res), true
	case x86.POPCNT:
		res := uint64(bits.OnesCount64(b))
		c.zf = b == 0
		c.cf, c.sf, c.of = false, false, false
		c.flagReady = done
		return res, true
	case x86.BSF:
		if b == 0 {
			c.zf = true
			c.flagReady = done
			return a, false
		}
		c.zf = false
		c.flagReady = done
		return uint64(bits.TrailingZeros64(b)), true
	case x86.BSR:
		if b == 0 {
			c.zf = true
			c.flagReady = done
			return a, false
		}
		c.zf = false
		c.flagReady = done
		return uint64(63 - bits.LeadingZeros64(b)), true
	}
	return a, false
}

// execSSE handles vector arithmetic with an XMM destination.
func (m *Machine) execSSE(d *x86.DecodedInstr) error {
	c := &m.core
	dst := d.Reg[0] - x86.XMM0
	var src [2]uint64
	var sready int64
	switch d.Kind[1] {
	case x86.ArgX:
		s := d.Reg[1] - x86.XMM0
		src = c.xmm[s]
		sready = c.xmmReady[s]
	case x86.ArgM:
		addr, aready, err := m.memOperandAddr(d.Mem)
		if err != nil {
			return err
		}
		lo, done, _, err := m.load(addr, 8, aready)
		if err != nil {
			return err
		}
		hi, _ := m.Mem.Read64(addr + 8)
		src = [2]uint64{lo, hi}
		sready = done
	}
	ready := maxI64(sready, c.xmmReady[dst])
	done := m.dispatchCompute(d, ready)
	c.xmm[dst] = vecCompute(d.Op, c.xmm[dst], src)
	c.xmmReady[dst] = done
	m.retire(done)
	return nil
}

func vecCompute(op x86.Op, a, b [2]uint64) [2]uint64 {
	ps := func(f func(x, y float32) float32) [2]uint64 {
		var out [2]uint64
		for w := 0; w < 2; w++ {
			lo := f(math.Float32frombits(uint32(a[w])), math.Float32frombits(uint32(b[w])))
			hi := f(math.Float32frombits(uint32(a[w]>>32)), math.Float32frombits(uint32(b[w]>>32)))
			out[w] = uint64(math.Float32bits(lo)) | uint64(math.Float32bits(hi))<<32
		}
		return out
	}
	pd := func(f func(x, y float64) float64) [2]uint64 {
		var out [2]uint64
		for w := 0; w < 2; w++ {
			out[w] = math.Float64bits(f(math.Float64frombits(a[w]), math.Float64frombits(b[w])))
		}
		return out
	}
	sd := func(f func(x, y float64) float64) [2]uint64 {
		return [2]uint64{math.Float64bits(f(math.Float64frombits(a[0]), math.Float64frombits(b[0]))), a[1]}
	}
	switch op {
	case x86.ADDPS:
		return ps(func(x, y float32) float32 { return x + y })
	case x86.MULPS:
		return ps(func(x, y float32) float32 { return x * y })
	case x86.DIVPS:
		return ps(func(x, y float32) float32 { return x / y })
	case x86.SQRTPS:
		return ps(func(_, y float32) float32 { return float32(math.Sqrt(float64(y))) })
	case x86.ADDPD:
		return pd(func(x, y float64) float64 { return x + y })
	case x86.MULPD:
		return pd(func(x, y float64) float64 { return x * y })
	case x86.DIVPD:
		return pd(func(x, y float64) float64 { return x / y })
	case x86.ADDSD:
		return sd(func(x, y float64) float64 { return x + y })
	case x86.MULSD:
		return sd(func(x, y float64) float64 { return x * y })
	case x86.DIVSD:
		return sd(func(x, y float64) float64 { return x / y })
	case x86.SQRTSD:
		return sd(func(_, y float64) float64 { return math.Sqrt(y) })
	case x86.PADDQ:
		return [2]uint64{a[0] + b[0], a[1] + b[1]}
	case x86.PAND:
		return [2]uint64{a[0] & b[0], a[1] & b[1]}
	case x86.PXOR:
		return [2]uint64{a[0] ^ b[0], a[1] ^ b[1]}
	}
	return a
}

// evalCond evaluates a conditional-branch predicate against the flags.
func (m *Machine) evalCond(op x86.Op) bool {
	c := &m.core
	switch op {
	case x86.JZ:
		return c.zf
	case x86.JNZ:
		return !c.zf
	case x86.JC:
		return c.cf
	case x86.JNC:
		return !c.cf
	case x86.JS:
		return c.sf
	case x86.JNS:
		return !c.sf
	case x86.JL:
		return c.sf != c.of
	case x86.JGE:
		return c.sf == c.of
	case x86.JLE:
		return c.zf || c.sf != c.of
	case x86.JG:
		return !c.zf && c.sf == c.of
	}
	return false
}
