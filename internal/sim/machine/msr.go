package machine

import (
	"nanobench/internal/x86"
)

// Model-specific register addresses implemented by the simulated machine,
// following the Intel layout where one exists.
const (
	MSRMperf         = 0xE7
	MSRAperf         = 0xE8
	MSRPrefetchCtl   = 0x1A4 // bits 0..3 disable the prefetchers
	MSRPmc0          = 0xC1  // .. 0xC8
	MSRPerfEvtSel0   = 0x186 // .. 0x18D
	MSRFixedCtr0     = 0x309 // instructions retired
	MSRFixedCtr1     = 0x30A // core cycles
	MSRFixedCtr2     = 0x30B // reference cycles
	MSRFixedCtrCtrl  = 0x38D
	MSRPerfGlobalCtl = 0x38F
	// Uncore C-Box blocks: box b at MSRCBoxBase + b*MSRCBoxStride;
	// +0 control (any write clears the box counters), +6 lookup counter,
	// +7 miss counter.
	MSRCBoxBase   = 0x700
	MSRCBoxStride = 0x10
)

// PerfEvtSelEN is the enable bit in IA32_PERFEVTSELx.
const PerfEvtSelEN = 1 << 22

// EvtSelKey builds the EventTable key for an event/umask pair.
func EvtSelKey(event, umask uint8) uint16 {
	return uint16(event) | uint16(umask)<<8
}

// readMSR implements RDMSR; cycle is the reading µop's execute cycle.
func (m *Machine) readMSR(addr uint32, cycle int64) (uint64, bool) {
	switch {
	case addr == MSRMperf:
		return m.PMU.MPerf.Read(cycle), true
	case addr == MSRAperf:
		return m.PMU.APerf.Read(cycle), true
	case addr == MSRFixedCtr0:
		return m.PMU.FixedInst.Read(cycle), true
	case addr == MSRFixedCtr1:
		return m.PMU.FixedCyc.Read(cycle), true
	case addr == MSRFixedCtr2:
		return m.PMU.FixedRef.Read(cycle), true
	case addr >= MSRPmc0 && int(addr-MSRPmc0) < len(m.PMU.Prog):
		return m.PMU.Prog[addr-MSRPmc0].Read(cycle), true
	case addr >= MSRCBoxBase && addr < MSRCBoxBase+uint32(len(m.CBox))*MSRCBoxStride:
		box := int(addr-MSRCBoxBase) / MSRCBoxStride
		switch (addr - MSRCBoxBase) % MSRCBoxStride {
		case 0:
			return m.msr[addr], true
		case 6:
			return m.CBox[box].Lookups.Read(cycle), true
		case 7:
			return m.CBox[box].Misses.Read(cycle), true
		}
		return 0, false
	case addr == MSRPerfGlobalCtl, addr == MSRFixedCtrCtrl, addr == MSRPrefetchCtl:
		return m.msr[addr], true
	case addr >= MSRPerfEvtSel0 && int(addr-MSRPerfEvtSel0) < len(m.PMU.Prog):
		return m.msr[addr], true
	}
	return 0, false
}

// writeMSR implements WRMSR; cycle is the (serializing) write's cycle.
func (m *Machine) writeMSR(addr uint32, v uint64, cycle int64) bool {
	switch {
	case addr == MSRMperf:
		m.PMU.MPerf.Write(v, cycle)
	case addr == MSRAperf:
		m.PMU.APerf.Write(v, cycle)
	case addr == MSRFixedCtr0:
		m.PMU.FixedInst.Write(v)
	case addr == MSRFixedCtr1:
		m.PMU.FixedCyc.Write(v, cycle)
	case addr == MSRFixedCtr2:
		m.PMU.FixedRef.Write(v, cycle)
	case addr >= MSRPmc0 && int(addr-MSRPmc0) < len(m.PMU.Prog):
		m.PMU.Prog[addr-MSRPmc0].Write(v)
	case addr == MSRPerfGlobalCtl, addr == MSRFixedCtrCtrl:
		m.msr[addr] = v
		m.applyCounterEnables(cycle)
	case addr == MSRPrefetchCtl:
		m.msr[addr] = v
		m.Hier.Prefetcher.Enabled = v&0xF == 0
	case addr >= MSRPerfEvtSel0 && int(addr-MSRPerfEvtSel0) < len(m.PMU.Prog):
		i := int(addr - MSRPerfEvtSel0)
		old := m.msr[addr]
		m.msr[addr] = v
		if old&^PerfEvtSelEN != v&^PerfEvtSelEN {
			// Event selection changed: reprogram (clears the counter).
			ev := m.Spec.EventTable[EvtSelKey(uint8(v), uint8(v>>8))]
			m.PMU.Prog[i].Configure(ev)
		}
		m.applyCounterEnables(cycle)
	case addr >= MSRCBoxBase && addr < MSRCBoxBase+uint32(len(m.CBox))*MSRCBoxStride:
		box := int(addr-MSRCBoxBase) / MSRCBoxStride
		if (addr-MSRCBoxBase)%MSRCBoxStride == 0 {
			m.msr[addr] = v
			m.CBox[box].ResetAll()
		}
	default:
		return false
	}
	return true
}

// applyCounterEnables recomputes effective counter enables from
// IA32_PERF_GLOBAL_CTRL and IA32_FIXED_CTR_CTRL.
func (m *Machine) applyCounterEnables(cycle int64) {
	g := m.msr[MSRPerfGlobalCtl]
	f := m.msr[MSRFixedCtrCtrl]
	for i, c := range m.PMU.Prog {
		sel := m.msr[MSRPerfEvtSel0+uint32(i)]
		c.SetEnabled(g>>uint(i)&1 == 1 && sel&PerfEvtSelEN != 0)
	}
	m.PMU.FixedInst.SetEnabled(g>>32&1 == 1 && f&0xF != 0)
	m.PMU.FixedCyc.SetEnabled(g>>33&1 == 1 && f>>4&0xF != 0, cycle)
	m.PMU.FixedRef.SetEnabled(g>>34&1 == 1 && f>>8&0xF != 0, cycle)
}

// Driver-level accessors: these model the kernel module configuring the
// machine with privileged writes outside of measured code.

// WriteMSR performs a driver-context MSR write at the current cycle.
func (m *Machine) WriteMSR(addr uint32, v uint64) bool {
	return m.writeMSR(addr, v, m.core.cycleFloor())
}

// ReadMSR performs a driver-context MSR read at the current cycle.
func (m *Machine) ReadMSR(addr uint32) (uint64, bool) {
	return m.readMSR(addr, m.core.cycleFloor())
}

// SetReg sets an architectural register (driver context).
func (m *Machine) SetReg(r x86.Reg, v uint64) {
	if r.IsXMM() {
		m.core.xmm[r-x86.XMM0] = [2]uint64{v, 0}
		return
	}
	m.core.regs[r] = v
}

// Reg reads an architectural register (driver context).
func (m *Machine) Reg(r x86.Reg) uint64 {
	if r.IsXMM() {
		return m.core.xmm[r-x86.XMM0][0]
	}
	return m.core.regs[r]
}
