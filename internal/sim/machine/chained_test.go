package machine

import (
	"fmt"
	"math/rand"
	"testing"

	"nanobench/internal/x86"
)

// The chained dispatcher (Run following the program's successor links)
// must be observationally identical to single-step execution (resolving
// every instruction from c.rip). randProgram generates terminating
// programs that stress exactly the cases where the two could diverge:
// straight-line runs, taken and not-taken branches, backward loop edges,
// jumps resolved lazily, and stores into the code region that drop the
// pre-decoded program mid-run.

// progGen emits encodable instructions and tracks patchable slots.
type progGen struct {
	t   *testing.T
	rng *rand.Rand
	buf []byte
	// patchOff is the offset of the imm64 field of a MOV RAX, imm64 slot
	// that self-modifying stores patch (0: none emitted yet).
	patchOff int
}

func (g *progGen) emit(in x86.Instr) {
	g.t.Helper()
	out, err := x86.EncodeInstr(g.buf, in)
	if err != nil {
		g.t.Fatalf("encode %s: %v", in.String(), err)
	}
	g.buf = out
}

// safeRegs excludes RSP (machine stack), R13 (loop counter), and R15.
var safeRegs = []x86.Reg{
	x86.RAX, x86.RBX, x86.RCX, x86.RDX, x86.RSI, x86.RDI,
	x86.R8, x86.R9, x86.R10, x86.R11, x86.R12, x86.R14,
}

func (g *progGen) reg() x86.Reg { return safeRegs[g.rng.Intn(len(safeRegs))] }

// dataSlot picks an 8-byte-aligned address inside the mapped data area.
func (g *progGen) dataSlot() uint32 {
	return testDataBase + uint32(g.rng.Intn(512))*8
}

// emitRandom appends one random instruction (or short branch pattern).
func (g *progGen) emitRandom() {
	switch g.rng.Intn(11) {
	case 0: // mov reg, imm
		g.emit(x86.I(x86.MOV, g.reg(), x86.Imm(g.rng.Int63n(1<<40))))
	case 1: // load
		g.emit(x86.I(x86.MOV, g.reg(), x86.MemAt(g.dataSlot())))
	case 2: // store
		g.emit(x86.I(x86.MOV, x86.MemAt(g.dataSlot()), g.reg()))
	case 3: // shift: immediate count (ReplaySafe) or CL count (record-only)
		ops := []x86.Op{x86.SHL, x86.SHR, x86.SAR, x86.ROL, x86.ROR}
		op := ops[g.rng.Intn(len(ops))]
		if g.rng.Intn(2) == 0 {
			g.emit(x86.I(op, g.reg(), x86.RCX))
		} else {
			g.emit(x86.I(op, g.reg(), x86.Imm(int64(g.rng.Intn(32)))))
		}
	case 4: // unary
		ops := []x86.Op{x86.INC, x86.DEC, x86.NEG, x86.NOT, x86.BSWAP}
		g.emit(x86.I(ops[g.rng.Intn(len(ops))], g.reg()))
	case 5: // bit scan / popcount (BSF/BSR are not ReplaySafe: their
		// destination write depends on the source value)
		ops := []x86.Op{x86.POPCNT, x86.BSF, x86.BSR}
		g.emit(x86.I(ops[g.rng.Intn(len(ops))], g.reg(), g.reg()))
	case 6: // forward conditional branch skipping one ALU instruction
		skip, err := x86.EncodeInstr(nil, x86.I(x86.ADD, g.reg(), g.reg()))
		if err != nil {
			g.t.Fatal(err)
		}
		conds := []x86.Op{x86.JZ, x86.JNZ, x86.JS, x86.JNS, x86.JC, x86.JNC}
		g.emit(x86.I(conds[g.rng.Intn(len(conds))], x86.Imm(int64(len(skip)))))
		g.buf = append(g.buf, skip...)
	case 7: // self-modifying store: patch the MOV RAX, imm64 slot's immediate
		if g.patchOff > 0 {
			g.emit(x86.I(x86.MOV, x86.MemAt(testCodeBase+uint32(g.patchOff)), g.reg()))
			break
		}
		fallthrough
	default: // binary ALU
		ops := []x86.Op{x86.ADD, x86.SUB, x86.AND, x86.OR, x86.XOR, x86.CMP, x86.TEST, x86.ADC, x86.SBB, x86.IMUL}
		op := ops[g.rng.Intn(len(ops))]
		if op == x86.IMUL || g.rng.Intn(2) == 0 { // IMUL has no imm form
			g.emit(x86.I(op, g.reg(), g.reg()))
		} else {
			g.emit(x86.I(op, g.reg(), x86.Imm(int64(g.rng.Intn(1<<16)))))
		}
	}
}

// randProgram builds a terminating random program: an init block, a
// patchable MOV RAX, imm64 slot, then a bounded loop whose body is a
// random instruction mix (possibly patching the slot), closed by DEC/JNZ
// and RET.
func randProgram(t *testing.T, rng *rand.Rand) []byte {
	g := &progGen{t: t, rng: rng}
	for _, r := range safeRegs {
		g.emit(x86.I(x86.MOV, r, x86.Imm(rng.Int63n(1<<32))))
	}
	// Patch slot: an imm64 MOV whose immediate field self-modifying
	// stores overwrite (immediates above 2^32 force the 10-byte form).
	slotStart := len(g.buf)
	g.emit(x86.I(x86.MOV, x86.RAX, x86.Imm(1<<40|int64(rng.Intn(1<<20)))))
	if len(g.buf)-slotStart != 10 {
		t.Fatalf("patch slot encoded to %d bytes, want 10", len(g.buf)-slotStart)
	}
	g.patchOff = slotStart + 2 // REX.W + opcode, then imm64

	g.emit(x86.I(x86.MOV, x86.R13, x86.Imm(int64(2+rng.Intn(3)))))
	loopStart := len(g.buf)
	n := 4 + rng.Intn(12)
	for i := 0; i < n; i++ {
		g.emitRandom()
	}
	g.emit(x86.I(x86.DEC, x86.R13))
	// JNZ back to loopStart: rel32 form is 6 bytes.
	g.emit(x86.I(x86.JNZ, x86.Imm(int64(loopStart)-int64(len(g.buf)+6))))
	g.emit(x86.I(x86.RET))
	return g.buf
}

// machineState snapshots everything the two engines must agree on.
func machineState(t *testing.T, m *Machine, res RunResult) string {
	t.Helper()
	out := fmt.Sprintf("instr=%d cycles=%d irqs=%d floor=%d\n",
		res.Instructions, res.Cycles, res.Interrupts, m.Cycle())
	for _, r := range safeRegs {
		out += fmt.Sprintf("%v=%#x ", r, m.Reg(r))
	}
	out += "\n"
	cy := m.Cycle()
	for _, idx := range []uint32{1<<30 | 0, 1<<30 | 1, 1<<30 | 2, 0, 1, 2, 3} {
		v, ok := m.PMU.ReadPMC(idx, cy)
		out += fmt.Sprintf("pmc[%#x]=%d,%v ", idx, v, ok)
	}
	return out
}

// runProgramEngine executes code twice on a fresh machine under the given
// engine tier and returns the combined observable state (the second run
// executes with a possibly patched image and warm predictors).
func runProgramEngine(t *testing.T, code []byte, e Engine) (string, error) {
	t.Helper()
	m := benchmarkishMachine(t)
	m.SetEngine(e)
	if err := m.WriteCode(testCodeBase, code); err != nil {
		t.Fatal(err)
	}
	var state string
	for i := 0; i < 2; i++ {
		res, err := m.Run(testCodeBase)
		if err != nil {
			return "", err
		}
		state += machineState(t, m, res)
	}
	return state, nil
}

// TestChainedMatchesSingleStep is the engine-equivalence property test:
// for randomized programs (random branches, loops, loads/stores, and
// code-region self-writes triggering invalidation), all three execution
// tiers — the reference single-step interpreter, the chained dispatcher,
// and trace mode — must produce identical registers, cycle counts,
// counter values, and error strings.
func TestChainedMatchesSingleStep(t *testing.T) {
	engines := []Engine{EngineStep, EngineChained, EngineTrace}
	for seed := int64(0); seed < 40; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			code := randProgram(t, rand.New(rand.NewSource(seed)))
			ref, errRef := runProgramEngine(t, code, engines[0])
			for _, e := range engines[1:] {
				got, err := runProgramEngine(t, code, e)
				if (errRef == nil) != (err == nil) ||
					(errRef != nil && errRef.Error() != err.Error()) {
					t.Fatalf("error divergence: %v=%v %v=%v", engines[0], errRef, e, err)
				}
				if got != ref {
					t.Fatalf("state divergence:\n%v:\n%s\n%v:\n%s", engines[0], ref, e, got)
				}
			}
		})
	}
}

// benchmarkishMachine is newTestMachine plus the realistic counter
// configuration of benchMachine (fixed counters and four programmable
// port counters enabled), so the equivalence check covers PMU recording.
func benchmarkishMachine(t *testing.T) *Machine {
	t.Helper()
	m := newTestMachine(t)
	for i, sel := range []uint64{0xA1 | 0x01<<8, 0xA1 | 0x02<<8, 0xA1 | 0x04<<8, 0xA1 | 0x08<<8} {
		m.WriteMSR(MSRPerfEvtSel0+uint32(i), sel|PerfEvtSelEN)
	}
	m.WriteMSR(MSRFixedCtrCtrl, 0x333)
	m.WriteMSR(MSRPerfGlobalCtl, 0x7<<32|0xF)
	return m
}
