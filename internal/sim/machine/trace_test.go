package machine

import (
	"testing"

	"nanobench/internal/x86"
)

// TestEngineDefaultIsTrace pins trace mode as the default engine: the
// zero-value Machine runs the trace tier, and SetEngine round-trips all
// three tiers. The serialization counter values and golden experiment
// outputs elsewhere in the suite are therefore all produced — and pinned
// — under trace mode.
func TestEngineDefaultIsTrace(t *testing.T) {
	m := newTestMachine(t)
	if got := m.Engine(); got != EngineTrace {
		t.Fatalf("default engine = %v, want %v", got, EngineTrace)
	}
	for _, e := range []Engine{EngineStep, EngineChained, EngineTrace} {
		m.SetEngine(e)
		if got := m.Engine(); got != e {
			t.Fatalf("SetEngine(%v) round-trips to %v", e, got)
		}
	}
}

// TestTraceBlocksDroppedOnCodeWrite is the port-pick-cache invalidation
// regression test: trace blocks (and their recorded schedules) are built
// during Run, and any write into the code region — here a WriteData call
// — must discard them with the program before the next dispatch.
func TestTraceBlocksDroppedOnCodeWrite(t *testing.T) {
	m := newTestMachine(t)
	code := x86.MustAssemble(`
		mov r13, 8
	loop:
		add rax, 1
		add rbx, 2
		dec r13
		jnz loop
		ret`)
	if err := m.WriteCode(testCodeBase, code); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(testCodeBase); err != nil {
		t.Fatal(err)
	}
	if len(m.prog.blocks) == 0 {
		t.Fatal("no trace blocks built by a trace-mode run")
	}

	// A data write outside the program leaves the blocks alone...
	if err := m.WriteData(testDataBase, []byte{1}); err != nil {
		t.Fatal(err)
	}
	if len(m.prog.blocks) == 0 {
		t.Fatal("data write outside the program dropped trace blocks")
	}
	// ...but one byte into the code region drops every block and schedule.
	ver := m.decVersion
	if err := m.WriteData(testCodeBase, code[:1]); err != nil {
		t.Fatal(err)
	}
	if len(m.prog.blocks) != 0 || len(m.prog.blockOf) != 0 {
		t.Fatalf("code write left %d trace blocks cached", len(m.prog.blocks))
	}
	if m.decVersion == ver {
		t.Fatal("code write did not bump decVersion")
	}
	// The next run executes through the slow decode path (no program, no
	// blocks); reinstalling the image rebuilds blocks from scratch.
	if _, err := m.Run(testCodeBase); err != nil {
		t.Fatal(err)
	}
	if len(m.prog.blocks) != 0 {
		t.Fatal("trace blocks cached without an installed program")
	}
	if err := m.WriteCode(testCodeBase, code); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(testCodeBase); err != nil {
		t.Fatal(err)
	}
	if len(m.prog.blocks) == 0 {
		t.Fatal("no trace blocks rebuilt after reinstall")
	}
}

// TestTraceSelfModifyingLoopMatchesStep runs a loop that patches the
// imm64 field of a MOV inside its own trace block: the store must drop
// the cached block mid-run, the patched semantics must take effect on the
// next iteration, and all three engines must agree on the final state.
// This is the invalidation path a stale port-pick cache would break.
func TestTraceSelfModifyingLoopMatchesStep(t *testing.T) {
	var buf []byte
	emit := func(in x86.Instr) {
		out, err := x86.EncodeInstr(buf, in)
		if err != nil {
			t.Fatalf("encode %s: %v", in.String(), err)
		}
		buf = out
	}
	const patched = 0xDEAD
	emit(x86.I(x86.MOV, x86.RCX, x86.Imm(patched)))
	emit(x86.I(x86.MOV, x86.RBX, x86.Imm(0)))
	emit(x86.I(x86.MOV, x86.R13, x86.Imm(3)))
	loopStart := len(buf)
	// Patch slot: the imm64 of this MOV (2 bytes of REX.W+opcode, then 8
	// bytes of immediate) is overwritten by the store below.
	slotStart := len(buf)
	const initial = 1<<40 | 0x1111
	emit(x86.I(x86.MOV, x86.RAX, x86.Imm(initial)))
	if len(buf)-slotStart != 10 {
		t.Fatalf("patch slot encoded to %d bytes, want 10", len(buf)-slotStart)
	}
	emit(x86.I(x86.ADD, x86.RBX, x86.RAX))
	emit(x86.I(x86.MOV, x86.MemAt(testCodeBase+uint32(slotStart)+2), x86.RCX))
	emit(x86.I(x86.DEC, x86.R13))
	emit(x86.I(x86.JNZ, x86.Imm(int64(loopStart)-int64(len(buf)+6))))
	emit(x86.I(x86.RET))

	states := make(map[Engine]string)
	for _, e := range []Engine{EngineStep, EngineChained, EngineTrace} {
		m := benchmarkishMachine(t)
		m.SetEngine(e)
		if err := m.WriteCode(testCodeBase, buf); err != nil {
			t.Fatal(err)
		}
		res, err := m.Run(testCodeBase)
		if err != nil {
			t.Fatalf("%v: %v", e, err)
		}
		// Iteration 1 adds the original immediate and patches the slot;
		// iterations 2 and 3 load and add the patched value.
		if got := m.Reg(x86.RAX); got != patched {
			t.Fatalf("%v: RAX = %#x, want patched %#x", e, got, uint64(patched))
		}
		if got, want := m.Reg(x86.RBX), uint64(initial+2*patched); got != want {
			t.Fatalf("%v: RBX = %#x, want %#x", e, got, want)
		}
		states[e] = machineState(t, m, res)
	}
	if states[EngineChained] != states[EngineStep] {
		t.Fatalf("chained diverges from step:\nstep:\n%s\nchained:\n%s",
			states[EngineStep], states[EngineChained])
	}
	if states[EngineTrace] != states[EngineStep] {
		t.Fatalf("trace diverges from step:\nstep:\n%s\ntrace:\n%s",
			states[EngineStep], states[EngineTrace])
	}
}
