package machine

import (
	"testing"

	"nanobench/internal/x86"
)

func encode(t *testing.T, buf []byte, in x86.Instr) []byte {
	t.Helper()
	out, err := x86.EncodeInstr(buf, in)
	if err != nil {
		t.Fatalf("encode %s: %v", in.String(), err)
	}
	return out
}

// TestWriteCodeReinstallsProgram regenerates code at the same base (as the
// runner does between unroll variants) and checks the new image executes,
// not a stale pre-decoded program.
func TestWriteCodeReinstallsProgram(t *testing.T) {
	m := newTestMachine(t)
	run(t, m, "mov rax, 1\nmov rbx, 2\nadd rax, rbx")
	if got := m.Reg(x86.RAX); got != 3 {
		t.Fatalf("first image: RAX = %d, want 3", got)
	}
	// Shorter, different image at the same base.
	run(t, m, "mov rax, 5")
	if got := m.Reg(x86.RAX); got != 5 {
		t.Fatalf("regenerated image: RAX = %d, want 5 (stale program executed?)", got)
	}
}

// TestWriteDataIntoCodeInvalidates patches installed code with WriteData
// and checks the patched bytes are re-decoded.
func TestWriteDataIntoCodeInvalidates(t *testing.T) {
	m := newTestMachine(t)
	ins1 := encode(t, nil, x86.I(x86.MOV, x86.RAX, x86.Imm(1)))
	ins7 := encode(t, nil, x86.I(x86.MOV, x86.RAX, x86.Imm(7)))
	if len(ins1) != len(ins7) {
		t.Fatalf("encodings differ in length: %d vs %d", len(ins1), len(ins7))
	}
	code := encode(t, append([]byte(nil), ins1...), x86.I(x86.RET))
	if err := m.WriteCode(testCodeBase, code); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(testCodeBase); err != nil {
		t.Fatal(err)
	}
	if got := m.Reg(x86.RAX); got != 1 {
		t.Fatalf("RAX = %d, want 1", got)
	}
	if !m.ProgramValid(testCodeBase, len(code)) {
		t.Fatal("program should be valid after install and run")
	}
	// Patch the first instruction in place.
	if err := m.WriteData(testCodeBase, ins7); err != nil {
		t.Fatal(err)
	}
	if m.ProgramValid(testCodeBase, len(code)) {
		t.Fatal("program should be invalid after a write into the code region")
	}
	if _, err := m.Run(testCodeBase); err != nil {
		t.Fatal(err)
	}
	if got := m.Reg(x86.RAX); got != 7 {
		t.Fatalf("after patch: RAX = %d, want 7 (stale decode executed?)", got)
	}
}

// TestSelfModifyingStoreInvalidates runs a loop whose body patches the
// immediate of an already-executed (and therefore already pre-decoded)
// instruction; the second iteration must see the patched value.
func TestSelfModifyingStoreInvalidates(t *testing.T) {
	m := newTestMachine(t)
	var buf []byte
	buf = encode(t, buf, x86.I(x86.MOV, x86.RCX, x86.Imm(2)))
	buf = encode(t, buf, x86.I(x86.MOV, x86.RBX, x86.Imm(9)))
	xOff := len(buf) // offset of the patched MOV RAX, imm64
	// An immediate above 2^32 forces the 10-byte REX.W B8 imm64 form, so
	// the 8-byte store below patches exactly the immediate field.
	buf = encode(t, buf, x86.I(x86.MOV, x86.RAX, x86.Imm(1<<40)))
	if len(buf)-xOff != 10 {
		t.Fatalf("MOV RAX, imm64 encoded to %d bytes, want 10", len(buf)-xOff)
	}
	immOff := xOff + 2 // REX.W + opcode, then imm64
	buf = encode(t, buf, x86.I(x86.MOV, x86.MemAt(testCodeBase+uint32(immOff)), x86.RBX))
	buf = encode(t, buf, x86.I(x86.DEC, x86.RCX))
	buf = encode(t, buf, x86.I(x86.JNZ, x86.Imm(int64(xOff)-int64(len(buf)+6))))
	buf = encode(t, buf, x86.I(x86.RET))

	if err := m.WriteCode(testCodeBase, buf); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(testCodeBase); err != nil {
		t.Fatal(err)
	}
	// Iteration 1 executes MOV RAX, 1<<40 and then patches it to MOV RAX,
	// 9; iteration 2 must re-decode and load 9.
	if got := m.Reg(x86.RAX); got != 9 {
		t.Fatalf("RAX = %d, want 9 (stale pre-decoded program executed)", got)
	}
	if m.ProgramValid(testCodeBase, len(buf)) {
		t.Fatal("program should be dropped after self-modifying store")
	}
}

// TestRebootDropsProgram checks Reboot invalidates the pre-decoded
// program: the code region is re-mapped onto fresh frames, so the old
// decodes describe bytes that no longer exist.
func TestRebootDropsProgram(t *testing.T) {
	m := newTestMachine(t)
	code := encode(t, encode(t, nil, x86.I(x86.MOV, x86.RAX, x86.Imm(1))), x86.I(x86.RET))
	if err := m.WriteCode(testCodeBase, code); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Run(testCodeBase); err != nil {
		t.Fatal(err)
	}
	if !m.ProgramValid(testCodeBase, len(code)) {
		t.Fatal("program should be valid after run")
	}
	m.Reboot()
	if m.ProgramValid(testCodeBase, len(code)) {
		t.Fatal("program should be dropped by Reboot")
	}
}
