package cache

// Prefetcher is a stream prefetcher modelled after the Intel L2 streamer:
// it tracks access streams within 4 KB pages and, when it detects two
// consecutive lines accessed in ascending or descending order, prefetches
// the next Degree lines of the stream. It can be disabled through MSR
// 0x1A4, as the paper's cache tools require (Section IV-A2).
type Prefetcher struct {
	Enabled bool
	Degree  int
	entries [16]streamEntry
	clock   uint64
}

type streamEntry struct {
	valid    bool
	page     uint64
	lastLine int
	dir      int
	conf     int
	lastUse  uint64
}

// NewPrefetcher returns an enabled stream prefetcher with the given
// prefetch degree.
func NewPrefetcher(degree int) *Prefetcher {
	return &Prefetcher{Enabled: true, Degree: degree}
}

// Observe records a demand access at the L2 and returns the physical line
// addresses to prefetch (possibly none).
func (p *Prefetcher) Observe(phys uint64, lineSize int) []uint64 {
	if !p.Enabled || p.Degree <= 0 {
		return nil
	}
	p.clock++
	page := phys >> 12
	lineInPage := int(phys>>6) & ((4096 / lineSize) - 1)

	// Find or allocate the stream entry for this page.
	var e *streamEntry
	victim := 0
	var oldest uint64 = ^uint64(0)
	for i := range p.entries {
		if p.entries[i].valid && p.entries[i].page == page {
			e = &p.entries[i]
			break
		}
		if p.entries[i].lastUse < oldest {
			oldest = p.entries[i].lastUse
			victim = i
		}
	}
	if e == nil {
		p.entries[victim] = streamEntry{valid: true, page: page, lastLine: lineInPage, lastUse: p.clock}
		return nil
	}
	e.lastUse = p.clock

	var out []uint64
	switch {
	case lineInPage == e.lastLine+1:
		if e.dir == 1 {
			e.conf++
		} else {
			e.dir, e.conf = 1, 1
		}
	case lineInPage == e.lastLine-1:
		if e.dir == -1 {
			e.conf++
		} else {
			e.dir, e.conf = -1, 1
		}
	default:
		e.conf = 0
	}
	if e.conf >= 1 {
		linesPerPage := 4096 / lineSize
		for d := 1; d <= p.Degree; d++ {
			next := lineInPage + e.dir*d
			if next < 0 || next >= linesPerPage {
				break
			}
			out = append(out, page<<12|uint64(next*lineSize))
		}
	}
	e.lastLine = lineInPage
	return out
}

// Reset clears the stream table.
func (p *Prefetcher) Reset() {
	for i := range p.entries {
		p.entries[i] = streamEntry{}
	}
	p.clock = 0
}
