// Package cache implements the simulated memory hierarchy: set-associative
// caches with pluggable replacement policies, a sliced last-level cache
// with an XOR-bits slice-hash function, and a disableable stream
// prefetcher. The hierarchy reports per-access results that the core
// translates into performance-counter events.
package cache

import (
	"fmt"
	"math/rand"

	"nanobench/internal/sim/policy"
)

// PolicyFactory builds the replacement policy for one set of a cache.
// slice is the cache slice (0 for unsliced caches), set the set index
// within the slice.
type PolicyFactory func(slice, set int, assoc int, rng *rand.Rand) policy.Policy

// SimplePolicy adapts a policy name to a PolicyFactory.
func SimplePolicy(name string) PolicyFactory {
	return func(_, _ int, assoc int, rng *rand.Rand) policy.Policy {
		return policy.MustNew(name, assoc, rng)
	}
}

// Geometry describes one cache level (or one slice of a sliced cache).
type Geometry struct {
	Name     string
	Size     uint64 // bytes for this cache (per-slice size for slices)
	Assoc    int
	LineSize int
	Latency  int // access latency in cycles on a hit at this level
}

// Sets returns the number of sets implied by the geometry.
func (g Geometry) Sets() int {
	return int(g.Size) / (g.Assoc * g.LineSize)
}

// Validate checks the geometry for consistency.
func (g Geometry) Validate() error {
	if g.LineSize == 0 || g.LineSize&(g.LineSize-1) != 0 {
		return fmt.Errorf("cache %s: line size must be a power of two", g.Name)
	}
	if g.Assoc <= 0 {
		return fmt.Errorf("cache %s: bad associativity %d", g.Name, g.Assoc)
	}
	sets := g.Sets()
	if sets <= 0 || uint64(sets*g.Assoc*g.LineSize) != g.Size {
		return fmt.Errorf("cache %s: size %d not divisible into %d-way sets of %d-byte lines",
			g.Name, g.Size, g.Assoc, g.LineSize)
	}
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d must be a power of two", g.Name, sets)
	}
	return nil
}

type line struct {
	valid bool
	dirty bool
	tag   uint64
}

type cacheSet struct {
	lines []line
	pol   policy.Policy
	epoch uint32
	valid int // valid lines in this set
}

// Cache is one set-associative cache (a single slice of a sliced cache).
type Cache struct {
	Geom     Geometry
	Slice    int
	sets     []cacheSet
	setMask  uint64
	lineBits uint
	// epoch implements O(1) whole-cache invalidation (WBINVD): sets whose
	// epoch lags are cleared lazily on first touch.
	epoch      uint32
	validCount int
	// pf and rng materialize sets on first touch: building every set's
	// policy eagerly would dominate machine construction for megabyte
	// caches (thousands of sets), and a benchmark touches only a few.
	pf  PolicyFactory
	rng *rand.Rand
}

// New builds a cache whose per-set policies come from the factory; sets
// materialize lazily on first touch. Policy constructors must not draw
// from rng (none do — draws happen on accesses, in execution order), so
// lazy construction is observationally identical to eager.
func New(geom Geometry, slice int, pf PolicyFactory, rng *rand.Rand) (*Cache, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	nSets := geom.Sets()
	c := &Cache{
		Geom:    geom,
		Slice:   slice,
		sets:    make([]cacheSet, nSets),
		setMask: uint64(nSets - 1),
		pf:      pf,
		rng:     rng,
	}
	for ls := geom.LineSize; ls > 1; ls >>= 1 {
		c.lineBits++
	}
	return c, nil
}

// SetIndex returns the set index for a physical address. For sliced caches
// the caller must select the slice first; the set index uses the address
// bits above the line offset.
func (c *Cache) SetIndex(phys uint64) int {
	return int((phys >> c.lineBits) & c.setMask)
}

func (c *Cache) tag(phys uint64) uint64 {
	return phys >> c.lineBits
}

// set returns the set for an index, materializing it on first touch and
// applying any pending epoch-based invalidation first.
func (c *Cache) set(si int) *cacheSet {
	s := &c.sets[si]
	if s.pol == nil {
		s.lines = make([]line, c.Geom.Assoc)
		s.pol = c.pf(c.Slice, si, c.Geom.Assoc, c.rng)
		s.epoch = c.epoch
		return s
	}
	if s.epoch != c.epoch {
		for i := range s.lines {
			s.lines[i] = line{}
		}
		s.pol.Reset()
		s.valid = 0
		s.epoch = c.epoch
	}
	return s
}

// Probe reports whether the line containing phys is present, without
// touching replacement state.
func (c *Cache) Probe(phys uint64) bool {
	set := c.set(c.SetIndex(phys))
	t := c.tag(phys)
	for i := range set.lines {
		if set.lines[i].valid && set.lines[i].tag == t {
			return true
		}
	}
	return false
}

// Access looks up phys; on a hit it updates replacement state and returns
// hit=true. On a miss it fills the line, updating replacement state, and
// returns the evicted line's physical base address (evicted=true if a
// valid, line was replaced; wbPhys is meaningful only if dirty).
func (c *Cache) Access(phys uint64, write bool) (hit bool, evicted bool, evictedDirty bool, evictedPhys uint64) {
	si := c.SetIndex(phys)
	set := c.set(si)
	t := c.tag(phys)
	for i := range set.lines {
		if set.lines[i].valid && set.lines[i].tag == t {
			set.pol.OnHit(i)
			if write {
				set.lines[i].dirty = true
			}
			return true, false, false, 0
		}
	}
	w := set.pol.Victim()
	ln := &set.lines[w]
	if ln.valid {
		evicted = true
		evictedDirty = ln.dirty
		evictedPhys = ln.tag << c.lineBits
	} else {
		set.valid++
		c.validCount++
	}
	ln.valid = true
	ln.dirty = write
	ln.tag = t
	set.pol.OnFill(w)
	return false, evicted, evictedDirty, evictedPhys
}

// Fill inserts the line containing phys without counting as a demand
// access (prefetch fills use this too). Replacement state is updated as a
// fill. If the line is already present, only the dirty bit may be updated.
func (c *Cache) Fill(phys uint64, dirty bool) (evicted bool, evictedDirty bool, evictedPhys uint64) {
	si := c.SetIndex(phys)
	set := c.set(si)
	t := c.tag(phys)
	for i := range set.lines {
		if set.lines[i].valid && set.lines[i].tag == t {
			if dirty {
				set.lines[i].dirty = true
			}
			return false, false, 0
		}
	}
	w := set.pol.Victim()
	ln := &set.lines[w]
	if ln.valid {
		evicted = true
		evictedDirty = ln.dirty
		evictedPhys = ln.tag << c.lineBits
	} else {
		set.valid++
		c.validCount++
	}
	ln.valid = true
	ln.dirty = dirty
	ln.tag = t
	set.pol.OnFill(w)
	return
}

// InvalidateLine removes the line containing phys if present, returning
// whether it was present and dirty.
func (c *Cache) InvalidateLine(phys uint64) (present, dirty bool) {
	set := c.set(c.SetIndex(phys))
	t := c.tag(phys)
	for i := range set.lines {
		if set.lines[i].valid && set.lines[i].tag == t {
			present, dirty = true, set.lines[i].dirty
			set.lines[i] = line{}
			set.pol.OnInvalidate(i)
			set.valid--
			c.validCount--
			return
		}
	}
	return
}

// InvalidateAll clears the whole cache (WBINVD) in O(1) by bumping the
// epoch; sets are cleared lazily on their next access. It returns the
// number of lines that were valid (used to model WBINVD latency).
func (c *Cache) InvalidateAll() int {
	n := c.validCount
	c.epoch++
	c.validCount = 0
	return n
}

// ValidLines counts the currently valid lines (for tests and WBINVD cost).
func (c *Cache) ValidLines() int { return c.validCount }
