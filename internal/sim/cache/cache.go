// Package cache implements the simulated memory hierarchy: set-associative
// caches with pluggable replacement policies, a sliced last-level cache
// with an XOR-bits slice-hash function, and a disableable stream
// prefetcher. The hierarchy reports per-access results that the core
// translates into performance-counter events.
//
// Replacement decisions run on the flat-state policy.Engine: all sets'
// replacement state for one cache lives in packed arrays, and line
// tags/flags are flat per-cache arrays indexed by set*assoc+way. Policy
// randomness follows the per-set seeding contract of internal/sim/policy:
// each set's RNG stream is derived from (machine seed, slice, set, stream
// index), never from a shared RNG, so decisions are independent of
// set-touch order and of how experiments are sharded across workers.
package cache

import (
	"fmt"
	"math/rand"

	"nanobench/internal/sim/policy"
)

// PolicyFactory describes the replacement policy of a cache. Spec exposes
// the declarative form compiled into a flat policy.Engine kernel; New
// builds the reference per-set Policy object (the equivalence oracle, and
// the execution path for factories without a Spec).
type PolicyFactory interface {
	// New builds the reference policy of one set. slice is the cache
	// slice (0 for unsliced caches), set the set index within the slice.
	New(slice, set, assoc int, rng *rand.Rand) policy.Policy
	// Spec returns the declarative policy description, if the factory
	// has one. Factories returning ok=false run on the reference engine.
	Spec() (policy.Spec, bool)
}

// SimplePolicy adapts a policy name to a PolicyFactory.
func SimplePolicy(name string) PolicyFactory { return simplePolicy{name} }

type simplePolicy struct{ name string }

func (p simplePolicy) New(_, _, assoc int, rng *rand.Rand) policy.Policy {
	return policy.MustNew(p.name, assoc, rng)
}

func (p simplePolicy) Spec() (policy.Spec, bool) { return policy.Spec{Name: p.name}, true }

// AdaptivePolicy adapts a set-dueling description to a PolicyFactory.
func AdaptivePolicy(d policy.DuelSpec) PolicyFactory { return adaptivePolicy{d} }

type adaptivePolicy struct{ d policy.DuelSpec }

func (p adaptivePolicy) New(slice, set, assoc int, rng *rand.Rand) policy.Policy {
	switch p.d.Leader(slice, set) {
	case 'A':
		return policy.NewLeader(policy.MustNew(p.d.PolicyA, assoc, rng), p.d.PSel, true)
	case 'B':
		return policy.NewLeader(policy.MustNew(p.d.PolicyB, assoc, rng), p.d.PSel, false)
	}
	f, err := policy.NewFollower(policy.MustNew(p.d.PolicyA, assoc, rng), policy.MustNew(p.d.PolicyB, assoc, rng), p.d.PSel)
	if err != nil {
		panic(err)
	}
	return f
}

func (p adaptivePolicy) Spec() (policy.Spec, bool) {
	d := p.d
	return policy.Spec{Duel: &d}, true
}

// FuncPolicy wraps an arbitrary per-set policy constructor. Caches built
// from it run on the reference per-set engine (no flat kernel); tests use
// it to force the reference path.
func FuncPolicy(f func(slice, set, assoc int, rng *rand.Rand) policy.Policy) PolicyFactory {
	return funcPolicy{f}
}

type funcPolicy struct {
	f func(slice, set, assoc int, rng *rand.Rand) policy.Policy
}

func (p funcPolicy) New(slice, set, assoc int, rng *rand.Rand) policy.Policy {
	return p.f(slice, set, assoc, rng)
}

func (p funcPolicy) Spec() (policy.Spec, bool) { return policy.Spec{}, false }

// Geometry describes one cache level (or one slice of a sliced cache).
type Geometry struct {
	Name     string
	Size     uint64 // bytes for this cache (per-slice size for slices)
	Assoc    int
	LineSize int
	Latency  int // access latency in cycles on a hit at this level
}

// Sets returns the number of sets implied by the geometry.
func (g Geometry) Sets() int {
	return int(g.Size) / (g.Assoc * g.LineSize)
}

// Validate checks the geometry for consistency.
func (g Geometry) Validate() error {
	if g.LineSize == 0 || g.LineSize&(g.LineSize-1) != 0 {
		return fmt.Errorf("cache %s: line size must be a power of two", g.Name)
	}
	if g.Assoc <= 0 {
		return fmt.Errorf("cache %s: bad associativity %d", g.Name, g.Assoc)
	}
	sets := g.Sets()
	if sets <= 0 || uint64(sets*g.Assoc*g.LineSize) != g.Size {
		return fmt.Errorf("cache %s: size %d not divisible into %d-way sets of %d-byte lines",
			g.Name, g.Size, g.Assoc, g.LineSize)
	}
	if sets&(sets-1) != 0 {
		return fmt.Errorf("cache %s: set count %d must be a power of two", g.Name, sets)
	}
	return nil
}

const (
	flagValid = 1 << 0
	flagDirty = 1 << 1
)

// invalidTag marks an invalid way in the tags array, so lookup scans test
// one word per way instead of a flag byte plus a tag word. Real tags are
// phys >> lineBits with phys far below 2^63; the sentinel can't collide.
const invalidTag = ^uint64(0)

// Cache is one set-associative cache (a single slice of a sliced cache).
// Line state is held in flat arrays indexed by set*assoc+way; replacement
// state lives in the policy engine.
type Cache struct {
	Geom     Geometry
	Slice    int
	setMask  uint64
	lineBits uint
	assoc    int

	tags  []uint64
	flags []uint8

	// epoch implements O(1) whole-cache invalidation (WBINVD): sets whose
	// setEpoch lags are cleared lazily on first touch.
	epoch      uint32
	setEpoch   []uint32
	setValid   []int32
	validCount int

	eng policy.Engine
	// seed/stream parameterize the per-set RNG streams (policy.SetSeed);
	// Restream bumps stream to re-derive them.
	seed   int64
	stream int64
}

// New builds a cache for the factory's policy, compiled to a flat engine
// kernel when the factory exposes a Spec. seed is the root of the per-set
// RNG streams (policy.SetSeed seeding contract).
func New(geom Geometry, slice int, pf PolicyFactory, seed int64) (*Cache, error) {
	if err := geom.Validate(); err != nil {
		return nil, err
	}
	nSets := geom.Sets()
	c := &Cache{
		Geom:     geom,
		Slice:    slice,
		setMask:  uint64(nSets - 1),
		assoc:    geom.Assoc,
		tags:     make([]uint64, nSets*geom.Assoc),
		flags:    make([]uint8, nSets*geom.Assoc),
		setEpoch: make([]uint32, nSets),
		setValid: make([]int32, nSets),
		seed:     seed,
	}
	for ls := geom.LineSize; ls > 1; ls >>= 1 {
		c.lineBits++
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	rngFor := func(set int) *rand.Rand {
		return policy.NewSetRand(c.seed, c.Slice, set, c.stream)
	}
	var err error
	if spec, ok := pf.Spec(); ok {
		c.eng, err = policy.NewEngine(spec, slice, nSets, geom.Assoc, rngFor)
	} else {
		c.eng = policy.NewReferenceEngine("custom", nSets, func(set int, rng *rand.Rand) policy.Policy {
			return pf.New(slice, set, geom.Assoc, rng)
		}, rngFor)
	}
	if err != nil {
		return nil, err
	}
	return c, nil
}

// SetIndex returns the set index for a physical address. For sliced caches
// the caller must select the slice first; the set index uses the address
// bits above the line offset.
func (c *Cache) SetIndex(phys uint64) int {
	return int((phys >> c.lineBits) & c.setMask)
}

func (c *Cache) tag(phys uint64) uint64 {
	return phys >> c.lineBits
}

// ensure applies any pending epoch-based invalidation to a set and
// returns its base index into the line arrays. The epoch check is kept
// inlinable; the clear itself is the cold path.
func (c *Cache) ensure(si int) int {
	if c.setEpoch[si] != c.epoch {
		c.clearSet(si)
	}
	return si * c.assoc
}

func (c *Cache) clearSet(si int) {
	base := si * c.assoc
	flags := c.flags[base : base+c.assoc]
	for i := range flags {
		flags[i] = 0
	}
	tags := c.tags[base : base+c.assoc]
	for i := range tags {
		tags[i] = invalidTag
	}
	c.setValid[si] = 0
	c.eng.Reset(si)
	c.setEpoch[si] = c.epoch
}

// Probe reports whether the line containing phys is present, without
// touching replacement state.
func (c *Cache) Probe(phys uint64) bool {
	base := c.ensure(c.SetIndex(phys))
	t := c.tag(phys)
	for i := base; i < base+c.assoc; i++ {
		if c.tags[i] == t {
			return true
		}
	}
	return false
}

// Access looks up phys; on a hit it updates replacement state and returns
// hit=true. On a miss it fills the line, updating replacement state, and
// returns the evicted line's physical base address (evicted=true if a
// valid line was replaced; wbPhys is meaningful only if dirty).
func (c *Cache) Access(phys uint64, write bool) (hit bool, evicted bool, evictedDirty bool, evictedPhys uint64) {
	return c.access(c.SetIndex(phys), c.tag(phys), write)
}

// accessTag is Access keyed by line tag (phys >> lineBits): the trace
// replay walk pre-shifts addresses once at compile time, so per-op lookup
// is a mask instead of a shift+mask per level.
func (c *Cache) accessTag(t uint64, write bool) (hit bool, evicted bool, evictedDirty bool, evictedPhys uint64) {
	return c.access(int(t&c.setMask), t, write)
}

func (c *Cache) access(si int, t uint64, write bool) (hit bool, evicted bool, evictedDirty bool, evictedPhys uint64) {
	base := c.ensure(si)
	// Subslicing lets the compiler drop the per-way bounds checks in the
	// lookup scan, the hottest loop of both execution and trace replay.
	tags := c.tags[base : base+c.assoc]
	for w, tag := range tags {
		if tag == t {
			c.eng.OnHit(si, w)
			if write {
				c.flags[base+w] |= flagDirty
			}
			return true, false, false, 0
		}
	}
	w := c.eng.Victim(si)
	i := base + w
	if c.flags[i]&flagValid != 0 {
		evicted = true
		evictedDirty = c.flags[i]&flagDirty != 0
		evictedPhys = c.tags[i] << c.lineBits
	} else {
		c.setValid[si]++
		c.validCount++
	}
	c.flags[i] = flagValid
	if write {
		c.flags[i] |= flagDirty
	}
	c.tags[i] = t
	c.eng.OnFill(si, w)
	return false, evicted, evictedDirty, evictedPhys
}

// Fill inserts the line containing phys without counting as a demand
// access (prefetch fills use this too). Replacement state is updated as a
// fill. If the line is already present, only the dirty bit may be updated.
func (c *Cache) Fill(phys uint64, dirty bool) (evicted bool, evictedDirty bool, evictedPhys uint64) {
	si := c.SetIndex(phys)
	base := c.ensure(si)
	t := c.tag(phys)
	for i := base; i < base+c.assoc; i++ {
		if c.tags[i] == t {
			if dirty {
				c.flags[i] |= flagDirty
			}
			return false, false, 0
		}
	}
	w := c.eng.Victim(si)
	i := base + w
	if c.flags[i]&flagValid != 0 {
		evicted = true
		evictedDirty = c.flags[i]&flagDirty != 0
		evictedPhys = c.tags[i] << c.lineBits
	} else {
		c.setValid[si]++
		c.validCount++
	}
	c.flags[i] = flagValid
	if dirty {
		c.flags[i] |= flagDirty
	}
	c.tags[i] = t
	c.eng.OnFill(si, w)
	return
}

// InvalidateLine removes the line containing phys if present, returning
// whether it was present and dirty.
func (c *Cache) InvalidateLine(phys uint64) (present, dirty bool) {
	si := c.SetIndex(phys)
	base := c.ensure(si)
	t := c.tag(phys)
	for i := base; i < base+c.assoc; i++ {
		if c.tags[i] == t {
			present, dirty = true, c.flags[i]&flagDirty != 0
			c.flags[i] = 0
			c.tags[i] = invalidTag
			c.eng.OnInvalidate(si, i-base)
			c.setValid[si]--
			c.validCount--
			return
		}
	}
	return
}

// InvalidateAll clears the whole cache (WBINVD) in O(1) by bumping the
// epoch; sets are cleared lazily on their next access. It returns the
// number of lines that were valid (used to model WBINVD latency).
func (c *Cache) InvalidateAll() int {
	n := c.validCount
	c.epoch++
	c.validCount = 0
	return n
}

// Restream invalidates the cache and re-derives every set's RNG stream
// for experiment index stream (policy.SetSeed seeding contract). The
// post-Restream state is a pure function of (seed, slice, stream),
// independent of anything simulated before — the invariant that lets
// set-sweeping experiments shard (block, set) groups across workers with
// byte-identical results at any worker count.
func (c *Cache) Restream(stream int64) {
	c.stream = stream
	c.epoch++
	c.validCount = 0
	c.eng.Restream()
}

// ValidLines counts the currently valid lines (for tests and WBINVD cost).
func (c *Cache) ValidLines() int { return c.validCount }

// PolicyName returns the name of the compiled policy engine.
func (c *Cache) PolicyName() string { return c.eng.Name() }
