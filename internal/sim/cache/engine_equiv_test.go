package cache

import (
	"fmt"
	"math/rand"
	"testing"

	"nanobench/internal/sim/policy"
)

// refFactory wraps a factory's per-set constructor in FuncPolicy, hiding
// its Spec so the cache runs on the reference per-set engine.
func refFactory(pf PolicyFactory) PolicyFactory { return FuncPolicy(pf.New) }

// TestCacheEngineMatchesReference drives identical random access/fill/
// invalidate/flush/restream workloads through an engine-backed cache and
// a reference-path cache (same policy forced through FuncPolicy) and
// requires identical observable results throughout.
func TestCacheEngineMatchesReference(t *testing.T) {
	geom := Geometry{Name: "t", Size: 64 << 10, Assoc: 8, LineSize: 64, Latency: 4}
	duel := func() PolicyFactory {
		return AdaptivePolicy(policy.DuelSpec{
			PolicyA: "QLRU_H11_M1_R1_U2",
			PolicyB: "QLRU_H11_MR161_R1_U2",
			PSel:    policy.NewPSel(64),
			Leader: func(slice, set int) byte {
				switch set % 8 {
				case 0:
					return 'A'
				case 1:
					return 'B'
				}
				return 0
			},
		})
	}
	cases := []struct {
		name     string
		eng, ref PolicyFactory
	}{
		{"LRU", SimplePolicy("LRU"), refFactory(SimplePolicy("LRU"))},
		{"PLRU", SimplePolicy("PLRU"), refFactory(SimplePolicy("PLRU"))},
		{"MRU*", SimplePolicy("MRU*"), refFactory(SimplePolicy("MRU*"))},
		{"RANDOM", SimplePolicy("RANDOM"), refFactory(SimplePolicy("RANDOM"))},
		{"QLRU_H11_MR161_R1_U2", SimplePolicy("QLRU_H11_MR161_R1_U2"), refFactory(SimplePolicy("QLRU_H11_MR161_R1_U2"))},
		{"QLRU_H21_M2_R1_U1_UMO", SimplePolicy("QLRU_H21_M2_R1_U1_UMO"), refFactory(SimplePolicy("QLRU_H21_M2_R1_U1_UMO"))},
		// Separate DuelSpec instances so the two caches do not share PSEL.
		{"adaptive", duel(), refFactory(duel())},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			for seed := int64(1); seed <= 5; seed++ {
				ce, err := New(geom, 0, tc.eng, seed)
				if err != nil {
					t.Fatal(err)
				}
				cr, err := New(geom, 0, tc.ref, seed)
				if err != nil {
					t.Fatal(err)
				}
				rng := rand.New(rand.NewSource(seed * 997))
				addr := func() uint64 {
					// 16 sets × 12 tags keeps sets contended.
					return uint64(rng.Intn(16))<<6 | uint64(rng.Intn(12))<<14
				}
				stream := int64(0)
				for op := 0; op < 4000; op++ {
					switch r := rng.Intn(100); {
					case r < 60:
						a, w := addr(), rng.Intn(4) == 0
						h1, e1, d1, p1 := ce.Access(a, w)
						h2, e2, d2, p2 := cr.Access(a, w)
						if h1 != h2 || e1 != e2 || d1 != d2 || p1 != p2 {
							t.Fatalf("seed %d op %d: Access(%#x) engine=(%v,%v,%v,%#x) reference=(%v,%v,%v,%#x)",
								seed, op, a, h1, e1, d1, p1, h2, e2, d2, p2)
						}
					case r < 75:
						a, d := addr(), rng.Intn(3) == 0
						e1, d1, p1 := ce.Fill(a, d)
						e2, d2, p2 := cr.Fill(a, d)
						if e1 != e2 || d1 != d2 || p1 != p2 {
							t.Fatalf("seed %d op %d: Fill(%#x) mismatch", seed, op, a)
						}
					case r < 85:
						a := addr()
						pr1, d1 := ce.InvalidateLine(a)
						pr2, d2 := cr.InvalidateLine(a)
						if pr1 != pr2 || d1 != d2 {
							t.Fatalf("seed %d op %d: InvalidateLine(%#x) mismatch", seed, op, a)
						}
					case r < 90:
						a := addr()
						if ce.Probe(a) != cr.Probe(a) {
							t.Fatalf("seed %d op %d: Probe(%#x) mismatch", seed, op, a)
						}
					case r < 96:
						if n1, n2 := ce.InvalidateAll(), cr.InvalidateAll(); n1 != n2 {
							t.Fatalf("seed %d op %d: InvalidateAll %d vs %d", seed, op, n1, n2)
						}
					default:
						stream++
						ce.Restream(stream)
						cr.Restream(stream)
					}
					if ce.ValidLines() != cr.ValidLines() {
						t.Fatalf("seed %d op %d: ValidLines %d vs %d", seed, op, ce.ValidLines(), cr.ValidLines())
					}
				}
			}
		})
	}
}

// TestPerSetRNGOrderIndependence pins the seeding contract: a set's
// random policy decisions do not depend on the order sets are first
// touched (or on which other sets are touched at all).
func TestPerSetRNGOrderIndependence(t *testing.T) {
	geom := Geometry{Name: "t", Size: 16 << 10, Assoc: 8, LineSize: 64, Latency: 4}
	// victims returns the eviction sequence of one set under a thrashing
	// workload, with warm-up touches to the given other sets first.
	victims := func(set int, touchFirst []int) []uint64 {
		c, err := New(geom, 0, SimplePolicy("RANDOM"), 7)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range touchFirst {
			c.Access(uint64(s)<<6, false)
		}
		var out []uint64
		for tag := 0; tag < 40; tag++ {
			a := uint64(set)<<6 | uint64(tag)<<12
			_, ev, _, phys := c.Access(a, false)
			if ev {
				out = append(out, phys)
			}
		}
		return out
	}
	base := victims(5, nil)
	if len(base) == 0 {
		t.Fatal("thrash workload evicted nothing")
	}
	for _, order := range [][]int{{0, 1, 2, 3}, {31, 17, 2}, {12}} {
		got := victims(5, order)
		if fmt.Sprint(got) != fmt.Sprint(base) {
			t.Fatalf("set 5 eviction order changed with touch order %v:\n  base %v\n  got  %v", order, base, got)
		}
	}
}
