package cache

import (
	"fmt"

	"nanobench/internal/sim/policy"
)

// Config describes a full cache hierarchy. L3 geometry is per slice.
type Config struct {
	L1I, L1D, L2 Geometry
	L3           Geometry
	L3Slices     int
	SliceHash    SliceHash
	MemLatency   int

	L1IPolicy PolicyFactory
	L1DPolicy PolicyFactory
	L2Policy  PolicyFactory
	L3Policy  PolicyFactory

	PrefetchDegree int
}

// Result reports where a memory access was served and its cost.
type Result struct {
	// Level is 1, 2, or 3 for a cache hit at that level, 4 for memory.
	Level int
	// Latency is the total access latency in cycles.
	Latency int
	// Slice is the L3 slice consulted, or -1 when the access was served
	// before reaching the L3.
	Slice int
	// Prefetched is the number of prefetch fills triggered by this access.
	Prefetched int
}

// Hierarchy is the simulated cache hierarchy of one core plus the shared
// sliced L3.
type Hierarchy struct {
	L1I *Cache
	L1D *Cache
	L2  *Cache
	L3  []*Cache

	hash       SliceHash
	memLatency int
	Prefetcher *Prefetcher
	lineSize   int
}

// NewHierarchy builds the hierarchy from the configuration. seed is the
// root of every cache's per-set policy RNG streams (policy.SetSeed).
func NewHierarchy(cfg Config, seed int64) (*Hierarchy, error) {
	if cfg.L3Slices != cfg.SliceHash.Slices() {
		return nil, fmt.Errorf("cache: %d slices but hash addresses %d", cfg.L3Slices, cfg.SliceHash.Slices())
	}
	if cfg.L1D.LineSize != cfg.L2.LineSize || cfg.L2.LineSize != cfg.L3.LineSize || cfg.L1I.LineSize != cfg.L1D.LineSize {
		return nil, fmt.Errorf("cache: all levels must share one line size")
	}
	h := &Hierarchy{
		hash:       cfg.SliceHash,
		memLatency: cfg.MemLatency,
		Prefetcher: NewPrefetcher(cfg.PrefetchDegree),
		lineSize:   cfg.L1D.LineSize,
	}
	// Each level gets its own derived root so (slice, set) pairs at
	// different levels (L1I, L1D, and L2 are all slice 0) never share an
	// RNG stream; L3 slices are differentiated by their slice index.
	levelSeed := func(level int) int64 { return policy.SetSeed(seed, 0, 0, int64(level)) }
	var err error
	if h.L1I, err = New(cfg.L1I, 0, cfg.L1IPolicy, levelSeed(0)); err != nil {
		return nil, err
	}
	if h.L1D, err = New(cfg.L1D, 0, cfg.L1DPolicy, levelSeed(1)); err != nil {
		return nil, err
	}
	if h.L2, err = New(cfg.L2, 0, cfg.L2Policy, levelSeed(2)); err != nil {
		return nil, err
	}
	for s := 0; s < cfg.L3Slices; s++ {
		c, err := New(cfg.L3, s, cfg.L3Policy, levelSeed(3))
		if err != nil {
			return nil, err
		}
		h.L3 = append(h.L3, c)
	}
	return h, nil
}

// Restream invalidates every level and re-derives all per-set policy RNG
// streams for experiment index stream (see Cache.Restream): the hierarchy
// state becomes a pure function of (machine seed, stream), independent of
// previously simulated work. Set-sweeping experiments use one stream
// index per independent (block, set) group so results are byte-identical
// at any worker count.
func (h *Hierarchy) Restream(stream int64) {
	h.L1I.Restream(stream)
	h.L1D.Restream(stream)
	h.L2.Restream(stream)
	for _, c := range h.L3 {
		c.Restream(stream)
	}
	h.Prefetcher.Reset()
}

// Slice returns the L3 slice for a physical address.
func (h *Hierarchy) Slice(phys uint64) int { return h.hash.Slice(phys) }

// fillL3 inserts a line into its L3 slice (writebacks and prefetches).
func (h *Hierarchy) fillL3(phys uint64, dirty bool) {
	h.L3[h.hash.Slice(phys)].Fill(phys, dirty)
}

// l2Writeback handles a dirty eviction out of the L2.
func (h *Hierarchy) l2Writeback(phys uint64) {
	h.fillL3(phys, true)
}

// l1Writeback handles a dirty eviction out of the L1D.
func (h *Hierarchy) l1Writeback(phys uint64) {
	_, ev, evDirty, evPhys := h.L2.Access(phys, true)
	if ev && evDirty {
		h.l2Writeback(evPhys)
	}
}

// Data performs a demand data access (load or store) and reports where it
// was served. The hierarchy is non-inclusive; dirty evictions write back
// into the next level.
func (h *Hierarchy) Data(phys uint64, write bool) Result {
	res := Result{Slice: -1}

	hit, ev, evDirty, evPhys := h.L1D.Access(phys, write)
	if ev && evDirty {
		h.l1Writeback(evPhys)
	}
	res.Latency = h.L1D.Geom.Latency
	if hit {
		res.Level = 1
		return res
	}

	// L2 lookup; the stream prefetcher observes demand traffic here.
	hit2, ev2, ev2Dirty, ev2Phys := h.L2.Access(phys, false)
	if ev2 && ev2Dirty {
		h.l2Writeback(ev2Phys)
	}
	for _, pf := range h.Prefetcher.Observe(phys, h.lineSize) {
		if !h.L2.Probe(pf) {
			ev, dirty, wb := h.L2.Fill(pf, false)
			if ev && dirty {
				h.l2Writeback(wb)
			}
			h.fillL3(pf, false)
			res.Prefetched++
		}
	}
	res.Latency += h.L2.Geom.Latency
	if hit2 {
		res.Level = 2
		return res
	}

	slice := h.hash.Slice(phys)
	res.Slice = slice
	hit3, _, _, _ := h.L3[slice].Access(phys, false)
	res.Latency += h.L3[slice].Geom.Latency
	if hit3 {
		res.Level = 3
		return res
	}

	res.Level = 4
	res.Latency += h.memLatency
	return res
}

// Code performs an instruction fetch for the line containing phys.
func (h *Hierarchy) Code(phys uint64) Result {
	res := Result{Slice: -1}
	hit, _, _, _ := h.L1I.Access(phys, false)
	res.Latency = h.L1I.Geom.Latency
	if hit {
		res.Level = 1
		return res
	}
	hit2, ev2, ev2Dirty, ev2Phys := h.L2.Access(phys, false)
	if ev2 && ev2Dirty {
		h.l2Writeback(ev2Phys)
	}
	res.Latency += h.L2.Geom.Latency
	if hit2 {
		res.Level = 2
		return res
	}
	slice := h.hash.Slice(phys)
	res.Slice = slice
	hit3, _, _, _ := h.L3[slice].Access(phys, false)
	res.Latency += h.L3[slice].Geom.Latency
	if hit3 {
		res.Level = 3
		return res
	}
	res.Level = 4
	res.Latency += h.memLatency
	return res
}

// Flush invalidates the entire hierarchy (WBINVD) and returns the number
// of lines that were valid, which determines the instruction's latency.
func (h *Hierarchy) Flush() int {
	n := h.L1I.InvalidateAll() + h.L1D.InvalidateAll() + h.L2.InvalidateAll()
	for _, c := range h.L3 {
		n += c.InvalidateAll()
	}
	h.Prefetcher.Reset()
	return n
}

// FlushLine removes the line containing phys from every level (CLFLUSH).
func (h *Hierarchy) FlushLine(phys uint64) {
	h.L1I.InvalidateLine(phys)
	h.L1D.InvalidateLine(phys)
	h.L2.InvalidateLine(phys)
	h.L3[h.hash.Slice(phys)].InvalidateLine(phys)
}

// LineSize returns the common line size of the hierarchy.
func (h *Hierarchy) LineSize() int { return h.lineSize }
