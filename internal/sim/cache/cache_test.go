package cache

import (
	"testing"
)

func testGeom(name string, size uint64, assoc, lat int) Geometry {
	return Geometry{Name: name, Size: size, Assoc: assoc, LineSize: 64, Latency: lat}
}

func newTestCache(t *testing.T, size uint64, assoc int, pol string) *Cache {
	t.Helper()
	c, err := New(testGeom("test", size, assoc, 4), 0, SimplePolicy(pol), 1)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestGeometryValidate(t *testing.T) {
	good := testGeom("L1", 32<<10, 8, 4)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	if good.Sets() != 64 {
		t.Fatalf("Sets() = %d, want 64", good.Sets())
	}
	bad := []Geometry{
		{Name: "x", Size: 32 << 10, Assoc: 8, LineSize: 60},
		{Name: "x", Size: 32 << 10, Assoc: 0, LineSize: 64},
		{Name: "x", Size: 33 << 10, Assoc: 8, LineSize: 64},
		{Name: "x", Size: 3 << 10, Assoc: 8, LineSize: 64}, // 6 sets: not pow2
	}
	for _, g := range bad {
		if err := g.Validate(); err == nil {
			t.Errorf("Validate(%+v): expected error", g)
		}
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := newTestCache(t, 32<<10, 8, "LRU")
	hit, _, _, _ := c.Access(0x1000, false)
	if hit {
		t.Fatal("cold access hit")
	}
	hit, _, _, _ = c.Access(0x1000, false)
	if !hit {
		t.Fatal("second access missed")
	}
	// Same line, different offset.
	hit, _, _, _ = c.Access(0x103F, false)
	if !hit {
		t.Fatal("same-line access missed")
	}
	// Next line.
	hit, _, _, _ = c.Access(0x1040, false)
	if hit {
		t.Fatal("next-line access hit")
	}
}

func TestCacheEviction(t *testing.T) {
	c := newTestCache(t, 32<<10, 8, "LRU") // 64 sets, stride 64*64 = 4096
	const stride = 4096
	// Fill set 0 with 8 lines plus one more; the first must be evicted.
	for i := 0; i < 9; i++ {
		hit, ev, _, evPhys := c.Access(uint64(i)*stride, false)
		if hit {
			t.Fatalf("fill %d hit", i)
		}
		if i == 8 {
			if !ev || evPhys != 0 {
				t.Fatalf("9th fill: evicted=%v phys=%#x, want block 0", ev, evPhys)
			}
		} else if ev {
			t.Fatalf("fill %d evicted unexpectedly", i)
		}
	}
	if c.Probe(0) {
		t.Fatal("block 0 still present after eviction")
	}
	if !c.Probe(stride) {
		t.Fatal("block 1 missing")
	}
}

func TestInvalidate(t *testing.T) {
	c := newTestCache(t, 32<<10, 8, "LRU")
	c.Access(0x2000, true) // dirty
	present, dirty := c.InvalidateLine(0x2000)
	if !present || !dirty {
		t.Fatalf("InvalidateLine = %v, %v", present, dirty)
	}
	if c.Probe(0x2000) {
		t.Fatal("line still present")
	}
	c.Access(0x2000, false)
	c.Access(0x3000, false)
	if n := c.InvalidateAll(); n != 2 {
		t.Fatalf("InvalidateAll flushed %d lines, want 2", n)
	}
	if c.ValidLines() != 0 {
		t.Fatal("lines remain after InvalidateAll")
	}
}

func TestSliceHash(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		h := DefaultSliceHash(n)
		if h.Slices() != n {
			t.Fatalf("Slices() = %d, want %d", h.Slices(), n)
		}
		counts := make([]int, n)
		for a := uint64(0); a < 1<<20; a += 64 {
			s := h.Slice(a)
			if s < 0 || s >= n {
				t.Fatalf("slice %d out of range", s)
			}
			counts[s]++
		}
		if n > 1 {
			for s, c := range counts {
				if c == 0 {
					t.Fatalf("slice %d never selected", s)
				}
			}
		}
		// Deterministic.
		if h.Slice(0x12340) != h.Slice(0x12340) {
			t.Fatal("hash not deterministic")
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for slice count 3")
		}
	}()
	DefaultSliceHash(3)
}

func defaultConfig() Config {
	return Config{
		L1I:            testGeom("L1I", 32<<10, 8, 4),
		L1D:            testGeom("L1D", 32<<10, 8, 4),
		L2:             testGeom("L2", 256<<10, 8, 8),
		L3:             testGeom("L3", 1<<20, 16, 26),
		L3Slices:       2,
		SliceHash:      DefaultSliceHash(2),
		MemLatency:     200,
		L1IPolicy:      SimplePolicy("PLRU"),
		L1DPolicy:      SimplePolicy("PLRU"),
		L2Policy:       SimplePolicy("PLRU"),
		L3Policy:       SimplePolicy("QLRU_H11_M1_R0_U0"),
		PrefetchDegree: 2,
	}
}

func newTestHierarchy(t *testing.T) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(defaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	h.Prefetcher.Enabled = false
	return h
}

func TestHierarchyLevels(t *testing.T) {
	h := newTestHierarchy(t)
	r := h.Data(0x10000, false)
	if r.Level != 4 {
		t.Fatalf("cold access level = %d, want 4", r.Level)
	}
	if r.Latency != 4+8+26+200 {
		t.Fatalf("cold latency = %d", r.Latency)
	}
	if r.Slice < 0 {
		t.Fatal("cold access should consult an L3 slice")
	}
	r = h.Data(0x10000, false)
	if r.Level != 1 || r.Latency != 4 {
		t.Fatalf("warm access level=%d latency=%d", r.Level, r.Latency)
	}
}

func TestHierarchyL2Hit(t *testing.T) {
	h := newTestHierarchy(t)
	// Load a block, then evict it from L1 by filling its L1 set (64 sets,
	// 8 ways; L2 has 512 sets so stride 4096 maps to distinct L2 sets...
	// use stride of L1-set-size with varied L2 sets so only L1 conflicts).
	h.Data(0x0, false)
	for i := 1; i <= 8; i++ {
		h.Data(uint64(i)*4096, false)
	}
	r := h.Data(0x0, false)
	if r.Level != 2 {
		t.Fatalf("after L1 eviction, level = %d, want 2 (L2 hit)", r.Level)
	}
}

func TestHierarchyWriteback(t *testing.T) {
	h := newTestHierarchy(t)
	h.Data(0x0, true) // dirty in L1
	// Evict from L1 with 8 conflicting fills; the dirty line must be
	// written back into L2 and hit there afterwards.
	for i := 1; i <= 8; i++ {
		h.Data(uint64(i)*4096, false)
	}
	r := h.Data(0x0, false)
	if r.Level != 2 {
		t.Fatalf("written-back line: level = %d, want 2", r.Level)
	}
}

func TestHierarchyFlush(t *testing.T) {
	h := newTestHierarchy(t)
	h.Data(0x40, false)
	h.Data(0x80, false)
	if n := h.Flush(); n == 0 {
		t.Fatal("Flush reported zero lines")
	}
	r := h.Data(0x40, false)
	if r.Level != 4 {
		t.Fatalf("after WBINVD, level = %d, want 4", r.Level)
	}
}

func TestHierarchyFlushLine(t *testing.T) {
	h := newTestHierarchy(t)
	h.Data(0x40, false)
	h.FlushLine(0x40)
	if r := h.Data(0x40, false); r.Level != 4 {
		t.Fatalf("after CLFLUSH, level = %d, want 4", r.Level)
	}
}

func TestHierarchyCodePath(t *testing.T) {
	h := newTestHierarchy(t)
	r := h.Code(0x100000)
	if r.Level != 4 {
		t.Fatalf("cold fetch level = %d", r.Level)
	}
	r = h.Code(0x100000)
	if r.Level != 1 {
		t.Fatalf("warm fetch level = %d, want 1 (L1I)", r.Level)
	}
	// Code and data caches are separate: a data access to the same line
	// must miss the L1D.
	rd := h.Data(0x100000, false)
	if rd.Level == 1 {
		t.Fatal("data access hit L1 after only instruction fetches")
	}
}

func TestPrefetcherStream(t *testing.T) {
	h, err := NewHierarchy(defaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential misses within a page: the streamer should kick in.
	total := 0
	for i := 0; i < 8; i++ {
		r := h.Data(uint64(0x40*i), false)
		total += r.Prefetched
	}
	if total == 0 {
		t.Fatal("stream prefetcher never fired")
	}
	// A later sequential line should now hit in L2 (prefetched), after
	// evicting it from L1... it was never in L1, so a fresh line:
	r := h.Data(uint64(0x40*9), false)
	if r.Level > 2 {
		t.Fatalf("prefetched line served from level %d", r.Level)
	}

	// Disabled prefetcher must not prefetch.
	h2, _ := NewHierarchy(defaultConfig(), 1)
	h2.Prefetcher.Enabled = false
	total = 0
	for i := 0; i < 8; i++ {
		total += h2.Data(uint64(0x40*i), false).Prefetched
	}
	if total != 0 {
		t.Fatal("disabled prefetcher issued prefetches")
	}
}

func TestPrefetcherDescending(t *testing.T) {
	p := NewPrefetcher(1)
	base := uint64(0x10000)
	p.Observe(base+5*64, 64)
	p.Observe(base+4*64, 64)
	out := p.Observe(base+3*64, 64)
	if len(out) != 1 || out[0] != base+2*64 {
		t.Fatalf("descending prefetch = %#v", out)
	}
}

func TestHierarchyConfigValidation(t *testing.T) {
	cfg := defaultConfig()
	cfg.L3Slices = 4 // hash says 2
	if _, err := NewHierarchy(cfg, 1); err == nil {
		t.Error("expected slice/hash mismatch error")
	}
	cfg = defaultConfig()
	cfg.L2.LineSize = 128
	if _, err := NewHierarchy(cfg, 1); err == nil {
		t.Error("expected line-size mismatch error")
	}
}
