package cache

import "math/bits"

// Hierarchy access tracing and set-local replay.
//
// The cache tools' single-set experiments (RunSeqTrials: age graphs,
// policy inference, set dueling) re-execute the same generated kernel
// image dozens of times per (block, set) group, and in kernel mode the
// sequence of hierarchy operations an image performs — addresses, order,
// and which loads the PMU counts — is state-independent: it depends only
// on the image bytes, not on what the caches contain. The machine can
// therefore record one run's operations through a TraceSink, verify the
// recording against a second real run, and then *replay* the operations
// directly against the live hierarchy: the replay walk mutates cache
// state exactly as the real run would (same lookups, fills, dirty
// writebacks, and invalidations, in the same order) while skipping
// instruction execution, address translation, latency accounting, and
// slice-hash recomputation. Hit counts come out bit-identical by
// construction because the walk runs the same code paths minus the parts
// that cannot affect placement decisions. internal/nano owns the
// record/verify/replay protocol; this file owns the mechanism.

// OpKind classifies one recorded hierarchy operation.
type OpKind uint8

const (
	// OpData is a demand data access (load, store, or software prefetch).
	OpData OpKind = iota
	// OpCode is an instruction-line fetch.
	OpCode
	// OpFlush is a whole-hierarchy invalidation (WBINVD).
	OpFlush
	// OpFlushLine is a single-line invalidation (CLFLUSH).
	OpFlushLine
	// OpCtrRead marks a counter read (RDPMC/RDMSR); it does not touch the
	// hierarchy but delimits the measurement window during replay.
	OpCtrRead
)

// TraceOp is one recorded operation. Level records where the access was
// served on the recorded run; it is diagnostic only and excluded from
// trace equality, since placement varies run to run while the operation
// sequence does not.
type TraceOp struct {
	Kind     OpKind
	Write    bool
	Counting bool // a PMU-visible load (stores and prefetches never count)
	MSR      bool // CtrRead came from RDMSR rather than RDPMC
	Idx      uint32
	Phys     uint64
	Level    uint8
}

// TraceSink collects the hierarchy operations of one machine run. The
// machine calls the record methods from its cache-touching instruction
// paths when a sink is installed (Machine.SetTraceSink).
type TraceSink struct {
	Ops []TraceOp
	// LastCodeLine is the virtual line address of the most recent code
	// fetch; after a replayed run the machine's single-line fetch memo is
	// restored to this value so post-run core state matches a real run.
	LastCodeLine uint64
	HasCode      bool
}

// Reset clears the sink for a new recording.
func (s *TraceSink) Reset() {
	s.Ops = s.Ops[:0]
	s.LastCodeLine = 0
	s.HasCode = false
}

// Data records a demand data access.
func (s *TraceSink) Data(phys uint64, write, counting bool, level int) {
	s.Ops = append(s.Ops, TraceOp{Kind: OpData, Write: write, Counting: counting, Phys: phys, Level: uint8(level)})
}

// Code records an instruction fetch of the line at phys; virtLine is the
// virtual line address the core's fetch memo tracks.
func (s *TraceSink) Code(virtLine, phys uint64, level int) {
	s.Ops = append(s.Ops, TraceOp{Kind: OpCode, Phys: phys, Level: uint8(level)})
	s.LastCodeLine = virtLine
	s.HasCode = true
}

// Flush records a WBINVD.
func (s *TraceSink) Flush() { s.Ops = append(s.Ops, TraceOp{Kind: OpFlush}) }

// FlushLine records a CLFLUSH of the line at phys.
func (s *TraceSink) FlushLine(phys uint64) {
	s.Ops = append(s.Ops, TraceOp{Kind: OpFlushLine, Phys: phys})
}

// CtrRead records a counter read (window delimiter).
func (s *TraceSink) CtrRead(idx uint32, msr bool) {
	s.Ops = append(s.Ops, TraceOp{Kind: OpCtrRead, MSR: msr, Idx: idx})
}

// TraceEqual reports whether two recordings describe the same operation
// sequence. Levels are excluded: they depend on cache state, which
// legitimately differs between runs of the same image.
func TraceEqual(a, b []TraceOp) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.Kind != y.Kind || x.Write != y.Write || x.Counting != y.Counting ||
			x.MSR != y.MSR || x.Idx != y.Idx || x.Phys != y.Phys {
			return false
		}
	}
	return true
}

// PredictHits computes, from a recording's levels, the sample a run would
// report on a counter programmed for "served at level want": counting
// data ops at that level strictly between the first and second reads of
// counter idx. Used to cross-check recordings against real samples.
func PredictHits(ops []TraceOp, idx uint32, want int) int {
	hits, window := 0, 0
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case OpCtrRead:
			if !op.MSR && op.Idx == idx {
				window++
			}
		case OpData:
			if window == 1 && op.Counting && int(op.Level) == want {
				hits++
			}
		}
	}
	return hits
}

// resolvedOp is one compiled trace operation: the line tag replaces the
// address, and the L3 slice hash is precomputed, so the replay walk does
// no hashing and no shifting beyond a set-mask AND per level.
type resolvedOp struct {
	kind   OpKind
	write  bool
	count  bool // counting data access (contributes to the sample window)
	marker bool // CtrRead of the counted index
	slice  int32
	tag    uint64
}

// ResolvedTrace is a recording compiled against one hierarchy's geometry
// (line size and slice hash). It stays valid across Restream/Flush —
// the operations are address-level and state-independent — but must be
// recompiled if the hierarchy itself is rebuilt.
type ResolvedTrace struct {
	ops  []resolvedOp
	want uint8
}

// CompileTrace resolves a recording for replay against h, with the
// sample window delimited by reads of counter countIdx and hits counted
// at wantLevel. Counter reads other than countIdx's are dropped; they
// neither touch the hierarchy nor delimit the window.
func (h *Hierarchy) CompileTrace(ops []TraceOp, countIdx uint32, wantLevel int) *ResolvedTrace {
	lineShift := uint(bits.TrailingZeros(uint(h.lineSize)))
	rt := &ResolvedTrace{ops: make([]resolvedOp, 0, len(ops)), want: uint8(wantLevel)}
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case OpData, OpCode:
			rt.ops = append(rt.ops, resolvedOp{
				kind:  op.Kind,
				write: op.Write,
				count: op.Counting,
				slice: int32(h.hash.Slice(op.Phys)),
				tag:   op.Phys >> lineShift,
			})
		case OpFlush:
			rt.ops = append(rt.ops, resolvedOp{kind: OpFlush})
		case OpFlushLine:
			rt.ops = append(rt.ops, resolvedOp{
				kind:  OpFlushLine,
				slice: int32(h.hash.Slice(op.Phys)),
				tag:   op.Phys >> lineShift,
			})
		case OpCtrRead:
			if !op.MSR && op.Idx == countIdx {
				rt.ops = append(rt.ops, resolvedOp{kind: OpCtrRead, marker: true})
			}
		}
	}
	return rt
}

// Replay walks a compiled trace through the live hierarchy, mutating
// cache and replacement state exactly as the recorded run would, and
// returns the hit count the run's sample window would report. ok=false
// (hierarchy untouched) if the prefetcher is active: prefetch fills
// depend on L2 hit/miss state, which would make the operation sequence
// state-dependent and the recording unsound.
func (h *Hierarchy) Replay(rt *ResolvedTrace) (hits int, ok bool) {
	if h.Prefetcher.Enabled && h.Prefetcher.Degree > 0 {
		return 0, false
	}
	lineShift := uint(bits.TrailingZeros(uint(h.lineSize)))
	want := rt.want
	window := 0
	for i := range rt.ops {
		op := &rt.ops[i]
		switch op.kind {
		case OpData:
			// Mirrors Hierarchy.Data minus latency accounting and the
			// (gated-off) prefetcher observation.
			hit, ev, evDirty, evPhys := h.L1D.accessTag(op.tag, op.write)
			if ev && evDirty {
				h.l1Writeback(evPhys)
			}
			level := uint8(1)
			if !hit {
				hit2, ev2, ev2Dirty, ev2Phys := h.L2.accessTag(op.tag, false)
				if ev2 && ev2Dirty {
					h.l2Writeback(ev2Phys)
				}
				if hit2 {
					level = 2
				} else if hit3, _, _, _ := h.L3[op.slice].accessTag(op.tag, false); hit3 {
					level = 3
				} else {
					level = 4
				}
			}
			if window == 1 && op.count && level == want {
				hits++
			}
		case OpCode:
			// Mirrors Hierarchy.Code minus latency accounting.
			if hit, _, _, _ := h.L1I.accessTag(op.tag, false); !hit {
				hit2, ev2, ev2Dirty, ev2Phys := h.L2.accessTag(op.tag, false)
				if ev2 && ev2Dirty {
					h.l2Writeback(ev2Phys)
				}
				if !hit2 {
					h.L3[op.slice].accessTag(op.tag, false)
				}
			}
		case OpFlush:
			h.Flush()
		case OpFlushLine:
			phys := op.tag << lineShift
			h.L1I.InvalidateLine(phys)
			h.L1D.InvalidateLine(phys)
			h.L2.InvalidateLine(phys)
			h.L3[op.slice].InvalidateLine(phys)
		case OpCtrRead:
			window++
		}
	}
	return hits, true
}
