package cache

import "math/bits"

// SliceHash maps physical addresses to last-level cache slices.
// Bit i of the slice number is the XOR (parity) of the physical address
// bits selected by Masks[i], following the form of the hash functions
// reverse-engineered for Intel CPUs (Hund et al. 2013, Maurice et al.
// 2015). The number of slices is 1<<len(Masks).
type SliceHash struct {
	Masks []uint64
}

// Slices returns the number of slices addressed by the hash.
func (h SliceHash) Slices() int { return 1 << len(h.Masks) }

// Slice returns the slice index for a physical address.
func (h SliceHash) Slice(phys uint64) int {
	s := 0
	for i, m := range h.Masks {
		s |= (bits.OnesCount64(phys&m) & 1) << i
	}
	return s
}

// Published XOR masks for the 2-slice Intel hash (Maurice et al., RAID
// 2015) and the additional bit-selection vectors for 4- and 8-slice
// parts. Only bits within the simulated physical address range
// contribute; the hash still distributes lines across slices via the low
// bits (>= bit 6), which is the property the cache tools depend on.
var (
	sliceMaskBit0 = uint64(0x1B5F575440)
	sliceMaskBit1 = uint64(0x2EB5FAA880)
	sliceMaskBit2 = uint64(0x3CCCC93100)
)

// DefaultSliceHash returns a hash for 1, 2, 4, or 8 slices.
func DefaultSliceHash(slices int) SliceHash {
	switch slices {
	case 1:
		return SliceHash{}
	case 2:
		return SliceHash{Masks: []uint64{sliceMaskBit0}}
	case 4:
		return SliceHash{Masks: []uint64{sliceMaskBit0, sliceMaskBit1}}
	case 8:
		return SliceHash{Masks: []uint64{sliceMaskBit0, sliceMaskBit1, sliceMaskBit2}}
	}
	panic("cache: slice count must be 1, 2, 4, or 8")
}
