// Package pmu models the performance monitoring unit of the simulated CPU:
// three fixed-function counters (instructions retired, core cycles,
// reference cycles), a configurable number of programmable counters, the
// APERF/MPERF MSR counters, and per-C-Box uncore counters.
//
// Event counters are modelled as streams of cycle-stamped events. Reading a
// counter samples the number of events whose cycle is not after the read's
// execute cycle. Because the core computes execute cycles out of order, an
// unfenced RDPMC can logically precede the completion of earlier
// instructions and undercount — exactly the serialization hazard Section
// IV-A1 of the paper describes.
package pmu

import "math/bits"

// Event identifies a countable core event.
type Event uint8

// Core performance events of the simulated CPU.
const (
	EvNone Event = iota
	EvInstRetired
	EvUopsIssued
	EvUopsPort0
	EvUopsPort1
	EvUopsPort2
	EvUopsPort3
	EvUopsPort4
	EvUopsPort5
	EvUopsPort6
	EvUopsPort7
	EvLoadRetired
	EvStoreRetired
	EvLoadL1Hit
	EvLoadL1Miss
	EvLoadL2Hit
	EvLoadL2Miss
	EvLoadL3Hit
	EvLoadL3Miss
	EvBrRetired
	EvBrMispRetired
	EvL2Prefetch
	NumEvents
)

var eventNames = [NumEvents]string{
	EvNone:          "NONE",
	EvInstRetired:   "INST_RETIRED",
	EvUopsIssued:    "UOPS_ISSUED.ANY",
	EvUopsPort0:     "UOPS_DISPATCHED_PORT.PORT_0",
	EvUopsPort1:     "UOPS_DISPATCHED_PORT.PORT_1",
	EvUopsPort2:     "UOPS_DISPATCHED_PORT.PORT_2",
	EvUopsPort3:     "UOPS_DISPATCHED_PORT.PORT_3",
	EvUopsPort4:     "UOPS_DISPATCHED_PORT.PORT_4",
	EvUopsPort5:     "UOPS_DISPATCHED_PORT.PORT_5",
	EvUopsPort6:     "UOPS_DISPATCHED_PORT.PORT_6",
	EvUopsPort7:     "UOPS_DISPATCHED_PORT.PORT_7",
	EvLoadRetired:   "MEM_INST_RETIRED.ALL_LOADS",
	EvStoreRetired:  "MEM_INST_RETIRED.ALL_STORES",
	EvLoadL1Hit:     "MEM_LOAD_RETIRED.L1_HIT",
	EvLoadL1Miss:    "MEM_LOAD_RETIRED.L1_MISS",
	EvLoadL2Hit:     "MEM_LOAD_RETIRED.L2_HIT",
	EvLoadL2Miss:    "MEM_LOAD_RETIRED.L2_MISS",
	EvLoadL3Hit:     "MEM_LOAD_RETIRED.L3_HIT",
	EvLoadL3Miss:    "MEM_LOAD_RETIRED.L3_MISS",
	EvBrRetired:     "BR_INST_RETIRED.ALL_BRANCHES",
	EvBrMispRetired: "BR_MISP_RETIRED.ALL_BRANCHES",
	EvL2Prefetch:    "L2_PREFETCH.REQUESTS",
}

// String returns the canonical event name.
func (e Event) String() string {
	if int(e) < len(eventNames) {
		return eventNames[e]
	}
	return "Event(?)"
}

// minCompactLen is the smallest out-of-order tail length worth a
// compaction pass.
const minCompactLen = 64

// EventCounter counts occurrences of one event while enabled.
//
// Events used to be kept as a full cycle-stamped stream, with reads doing
// an O(history) scan; at 3–6 events per retired instruction the
// measurement machinery dominated the measured code. The stream is now a
// watermark counter: `settled` holds the events every possible future
// read will count, and only the bounded out-of-order tail — events
// stamped after the watermark, which a not-yet-executed read µop could
// still logically precede — keeps explicit cycles. Record is a counter
// bump or a bounded append, reads scan O(tail) instead of O(history), and
// the unfenced-RDPMC undercount semantics of Section IV-A1 are preserved
// bit-for-bit: settling only ever moves events whose cycle is at or below
// the watermark, and the core guarantees (via Advance) that no future
// read samples below it.
type EventCounter struct {
	base    uint64
	ev      Event
	enabled bool

	// settled counts events at cycles <= watermark: every future read
	// samples at or above the watermark, so these are unconditionally
	// visible and need no cycle stamps.
	settled   uint64
	watermark int64
	// tail holds the cycles of events above the watermark, in record
	// order (approximately but not strictly increasing).
	tail []int64
	// max is the highest cycle ever recorded; reads at or above it take
	// the O(1) fast path.
	max int64
	// compactAt is the tail length that triggers the next compaction
	// sweep; it doubles with the surviving tail so sweeps amortize to
	// O(1) per recorded event.
	compactAt int

	// owner, when the counter belongs to a PMU, is notified on
	// Configure/SetEnabled so the PMU can rebuild its per-event listener
	// lists. Standalone counters (uncore boxes, tests) have no owner.
	owner *PMU
}

// add records one event occurrence at the given cycle.
func (c *EventCounter) add(cycle int64) {
	if cycle <= c.watermark {
		c.settled++
	} else {
		c.tail = append(c.tail, cycle)
	}
	if cycle > c.max {
		c.max = cycle
	}
}

// addN records n event occurrences at the given cycle; it is
// observationally identical to n add calls.
func (c *EventCounter) addN(cycle int64, n uint64) {
	if cycle <= c.watermark {
		c.settled += n
	} else {
		for ; n > 0; n-- {
			c.tail = append(c.tail, cycle)
		}
	}
	if cycle > c.max {
		c.max = cycle
	}
}

// advance raises the watermark: the caller promises that no future Read
// will sample below cycle w.
func (c *EventCounter) advance(w int64) {
	if w <= c.watermark {
		return
	}
	c.watermark = w
	if len(c.tail) >= c.compactAt {
		c.compact()
	}
}

// compact settles tail events at or below the watermark.
func (c *EventCounter) compact() {
	keep := c.tail[:0]
	for _, ec := range c.tail {
		if ec <= c.watermark {
			c.settled++
		} else {
			keep = append(keep, ec)
		}
	}
	c.tail = keep
	c.compactAt = 2 * len(keep)
	if c.compactAt < minCompactLen {
		c.compactAt = minCompactLen
	}
}

// countUpTo counts recorded events with cycle <= cy.
func (c *EventCounter) countUpTo(cy int64) uint64 {
	n := c.settled
	if cy >= c.max {
		return n + uint64(len(c.tail))
	}
	for _, ec := range c.tail {
		if ec <= cy {
			n++
		}
	}
	return n
}

// clear discards accumulated events; the watermark survives (it is a
// promise about future reads, not about recorded history). The
// compaction threshold resets so one run with a deep out-of-order tail
// does not inflate the tail bound of later runs.
func (c *EventCounter) clear() {
	c.settled = 0
	c.tail = c.tail[:0]
	c.max = 0
	c.compactAt = minCompactLen
}

// Advance declares that no future Read will sample below cycle w (the
// core calls this with its front-end cycle, which lower-bounds every
// later dispatch).
func (c *EventCounter) Advance(w int64) { c.advance(w) }

// Configure programs the counter to count ev; it clears accumulated state.
func (c *EventCounter) Configure(ev Event) {
	c.ev = ev
	c.base = 0
	c.clear()
	if c.owner != nil {
		c.owner.listenersStale = true
	}
}

// Event returns the configured event.
func (c *EventCounter) Event() Event { return c.ev }

// SetEnabled switches counting on or off.
func (c *EventCounter) SetEnabled(on bool) {
	c.enabled = on
	if c.owner != nil {
		c.owner.listenersStale = true
	}
}

// Enabled reports whether the counter is counting.
func (c *EventCounter) Enabled() bool { return c.enabled }

// Record adds one event occurrence at the given cycle if the counter is
// enabled and programmed for ev.
func (c *EventCounter) Record(ev Event, cycle int64) {
	if c.enabled && c.ev == ev {
		c.add(cycle)
	}
}

// RecordAlways adds one occurrence regardless of the configured event; it
// is used by uncore counters, which have dedicated event streams.
func (c *EventCounter) RecordAlways(cycle int64) {
	if c.enabled {
		c.add(cycle)
	}
}

// Read samples the counter at the given cycle.
func (c *EventCounter) Read(cycle int64) uint64 {
	return c.base + c.countUpTo(cycle)
}

// Write sets the counter's architectural value and discards event history.
func (c *EventCounter) Write(v uint64) {
	c.base = v
	c.clear()
}

// CycleCounter counts cycles (optionally scaled, for reference-cycle
// counters) across enable/disable windows.
type CycleCounter struct {
	base     uint64
	ratio    float64 // ticks per core cycle (1.0 for core cycles)
	enabled  bool
	sinceCyc int64
	accum    float64
	alwaysOn bool // APERF/MPERF ignore enable control
}

// NewCycleCounter returns a cycle counter; ratio scales core cycles to
// counter ticks (1.0 for the core-cycle counter, <1 for reference cycles).
func NewCycleCounter(ratio float64, alwaysOn bool) *CycleCounter {
	c := &CycleCounter{ratio: ratio, alwaysOn: alwaysOn}
	if alwaysOn {
		c.enabled = true
	}
	return c
}

// SetEnabled switches the counter on or off, effective at the given cycle.
func (c *CycleCounter) SetEnabled(on bool, cycle int64) {
	if c.alwaysOn {
		return
	}
	if on == c.enabled {
		return
	}
	if on {
		c.sinceCyc = cycle
	} else {
		c.accum += float64(cycle-c.sinceCyc) * c.ratio
	}
	c.enabled = on
}

// Read samples the counter at the given cycle.
func (c *CycleCounter) Read(cycle int64) uint64 {
	v := c.accum
	if c.enabled && cycle > c.sinceCyc {
		v += float64(cycle-c.sinceCyc) * c.ratio
	}
	return c.base + uint64(v)
}

// Write sets the architectural value and restarts accumulation.
func (c *CycleCounter) Write(v uint64, cycle int64) {
	c.base = v
	c.accum = 0
	c.sinceCyc = cycle
}

// Reset clears value and history; enabled state is preserved.
func (c *CycleCounter) Reset(cycle int64) {
	c.base = 0
	c.accum = 0
	c.sinceCyc = cycle
}

// PMU is the per-core performance monitoring unit.
type PMU struct {
	// Fixed-function counters, RDPMC indices 0x40000000..2:
	// instructions retired, core cycles, reference cycles.
	FixedInst *EventCounter
	FixedCyc  *CycleCounter
	FixedRef  *CycleCounter
	// Programmable counters, RDPMC indices 0..n-1.
	Prog []*EventCounter
	// APERF/MPERF (MSR-only, kernel mode).
	APerf *CycleCounter
	MPerf *CycleCounter

	// listeners maps each event to the counters currently programmed and
	// enabled for it, so Record touches only counters that will actually
	// count instead of testing every counter per event. Rebuilt lazily
	// after any Configure/SetEnabled.
	listeners      [NumEvents][]*EventCounter
	listenersStale bool
	// active is the flat list of enabled, programmed counters;
	// RecordBatch walks it once per call instead of once per event.
	active []*EventCounter
	// lastAdvance short-circuits Advance while the front-end cycle has
	// not moved.
	lastAdvance int64
}

// New creates a PMU with nProg programmable counters; refRatio is the
// reference-clock to core-clock ratio.
func New(nProg int, refRatio float64) *PMU {
	p := &PMU{
		FixedInst: &EventCounter{ev: EvInstRetired},
		FixedCyc:  NewCycleCounter(1.0, false),
		FixedRef:  NewCycleCounter(refRatio, false),
		APerf:     NewCycleCounter(1.0, true),
		MPerf:     NewCycleCounter(refRatio, true),
	}
	p.FixedInst.owner = p
	for i := 0; i < nProg; i++ {
		p.Prog = append(p.Prog, &EventCounter{owner: p})
	}
	p.listenersStale = true
	return p
}

// rebuildListeners recomputes the per-event listener lists and the flat
// active-counter list.
func (p *PMU) rebuildListeners() {
	for ev := range p.listeners {
		p.listeners[ev] = p.listeners[ev][:0]
	}
	p.active = p.active[:0]
	add := func(c *EventCounter) {
		if c.enabled && c.ev != EvNone {
			p.listeners[c.ev] = append(p.listeners[c.ev], c)
			p.active = append(p.active, c)
		}
	}
	add(p.FixedInst)
	for _, c := range p.Prog {
		add(c)
	}
	p.listenersStale = false
}

// Advance declares that no future Read of any core counter will sample
// below cycle w, letting the event counters settle their out-of-order
// tails. The core calls it once per simulated instruction with its
// front-end cycle (every later read µop dispatches at or above it).
func (p *PMU) Advance(w int64) {
	if w <= p.lastAdvance {
		return
	}
	p.advanceSlow(w)
}

// advanceSlow raises every core counter's watermark. Split from Advance
// so the hot early-out (the front-end cycle advances only every
// issue-width µops) inlines into the interpreter's step.
func (p *PMU) advanceSlow(w int64) {
	p.lastAdvance = w
	p.FixedInst.advance(w)
	for _, c := range p.Prog {
		c.advance(w)
	}
}

// Record delivers a core event to the counters programmed for it.
func (p *PMU) Record(ev Event, cycle int64) {
	if p.listenersStale {
		p.rebuildListeners()
	}
	for _, c := range p.listeners[ev] {
		c.add(cycle)
	}
}

// RecordUop delivers one dispatched µop's pair of events — issued at the
// issue-slot cycle, executed on its port at the dispatch cycle — in a
// single call. Counter adds commute, so batching the two listener walks
// is observationally identical to two Record calls; it exists because
// the interpreter issues one pair per simulated µop.
func (p *PMU) RecordUop(issue int64, portEv Event, start int64) {
	if p.listenersStale {
		p.rebuildListeners()
	}
	for _, c := range p.listeners[EvUopsIssued] {
		c.add(issue)
	}
	for _, c := range p.listeners[portEv] {
		c.add(start)
	}
}

// RecordBranch delivers the event set of one retired branch — µop
// issued, port dispatch, instruction retired, branch retired, and
// (when misp) the mispredict — in one listener-walk call, identical to
// the individual Record calls it replaces.
func (p *PMU) RecordBranch(issue int64, portEv Event, start, retired int64, misp bool, mispAt int64) {
	if p.listenersStale {
		p.rebuildListeners()
	}
	for _, c := range p.listeners[EvUopsIssued] {
		c.add(issue)
	}
	for _, c := range p.listeners[portEv] {
		c.add(start)
	}
	for _, c := range p.listeners[EvInstRetired] {
		c.add(retired)
	}
	for _, c := range p.listeners[EvBrRetired] {
		c.add(retired)
	}
	if misp {
		for _, c := range p.listeners[EvBrMispRetired] {
			c.add(mispAt)
		}
	}
}

// RecordFusedStep delivers the full event set of one fused single-µop
// instruction — µop issued, port dispatch, instruction retired — in one
// listener-walk call. Identical to the three Record calls it replaces
// (adds commute and no read can intervene mid-instruction).
func (p *PMU) RecordFusedStep(issue int64, portEv Event, start, retired int64) {
	if p.listenersStale {
		p.rebuildListeners()
	}
	for _, c := range p.listeners[EvUopsIssued] {
		c.add(issue)
	}
	for _, c := range p.listeners[portEv] {
		c.add(start)
	}
	for _, c := range p.listeners[EvInstRetired] {
		c.add(retired)
	}
}

// NumPortEvents is the number of per-port dispatch events
// (EvUopsPort0..EvUopsPort7, contiguous).
const NumPortEvents = 8

// RecordBlock delivers the batched event set of one trace-executed block
// of fused single-µop instructions — the µop-issued cycles, the per-port
// dispatch cycles (ports[p] for every port p with a set bit in portMask),
// and the instruction-retirement cycles — in one listener walk per event
// instead of one RecordFusedStep walk per instruction. Counter adds
// commute and no counter read can execute mid-block (fused shapes cannot
// read counters), so this is observationally identical to the
// per-instruction deliveries it replaces.
func (p *PMU) RecordBlock(issued, retired []int64, ports *[NumPortEvents][]int64, portMask uint32) {
	if p.listenersStale {
		p.rebuildListeners()
	}
	for _, c := range p.listeners[EvUopsIssued] {
		for _, cy := range issued {
			c.add(cy)
		}
	}
	for mb := portMask; mb != 0; mb &= mb - 1 {
		pt := bits.TrailingZeros32(mb)
		for _, c := range p.listeners[EvUopsPort0+Event(pt)] {
			for _, cy := range ports[pt] {
				c.add(cy)
			}
		}
	}
	for _, c := range p.listeners[EvInstRetired] {
		for _, cy := range retired {
			c.add(cy)
		}
	}
}

// RecordBlockDeltas is RecordBlock for a replayed trace block: the cycle
// arrays were recorded relative to the recording's block-entry front-end
// cycle, and base (the replaying entry's front-end cycle) is added during
// delivery, so replay hands the recorded arrays over without copying.
func (p *PMU) RecordBlockDeltas(base int64, issued, retired []int64, ports *[NumPortEvents][]int64, portMask uint32) {
	if p.listenersStale {
		p.rebuildListeners()
	}
	for _, c := range p.listeners[EvUopsIssued] {
		for _, cy := range issued {
			c.add(base + cy)
		}
	}
	for mb := portMask; mb != 0; mb &= mb - 1 {
		pt := bits.TrailingZeros32(mb)
		for _, c := range p.listeners[EvUopsPort0+Event(pt)] {
			for _, cy := range ports[pt] {
				c.add(base + cy)
			}
		}
	}
	for _, c := range p.listeners[EvInstRetired] {
		for _, cy := range retired {
			c.add(base + cy)
		}
	}
}

// RecordBatch delivers a vector of per-event occurrence counts, all
// stamped with the same cycle, in a single walk of the active-counter
// list. It is observationally identical to calling Record counts[ev]
// times for every event, but costs one pass over the (at most handful of)
// enabled counters regardless of how many events fired — the machine's
// per-load event recording uses it to fold up to six Record calls into
// one.
func (p *PMU) RecordBatch(counts *[NumEvents]uint16, cycle int64) {
	if p.listenersStale {
		p.rebuildListeners()
	}
	for _, c := range p.active {
		if n := counts[c.ev]; n != 0 {
			c.addN(cycle, uint64(n))
		}
	}
}

// AnyActive reports whether any event counter is enabled and programmed:
// when false, Record/RecordBatch deliveries are no-ops and callers may
// skip assembling event vectors entirely.
func (p *PMU) AnyActive() bool {
	if p.listenersStale {
		p.rebuildListeners()
	}
	return len(p.active) > 0
}

// SetGlobalEnable enables or disables all fixed and programmable counters
// at the given cycle (the IA32_PERF_GLOBAL_CTRL model used for nanoBench's
// pause/resume feature).
func (p *PMU) SetGlobalEnable(on bool, cycle int64) {
	p.FixedInst.SetEnabled(on)
	p.FixedCyc.SetEnabled(on, cycle)
	p.FixedRef.SetEnabled(on, cycle)
	for _, c := range p.Prog {
		c.SetEnabled(on)
	}
}

// ResetAll clears all counters (between benchmark runs).
func (p *PMU) ResetAll(cycle int64) {
	p.FixedInst.Write(0)
	p.FixedCyc.Reset(cycle)
	p.FixedRef.Reset(cycle)
	for _, c := range p.Prog {
		c.Write(0)
	}
}

// ReadPMC implements RDPMC index semantics: indices 0..len(Prog)-1 select
// programmable counters; 0x40000000+i selects fixed counter i.
func (p *PMU) ReadPMC(index uint32, cycle int64) (uint64, bool) {
	const fixedFlag = 1 << 30
	if index&fixedFlag != 0 {
		switch index &^ fixedFlag {
		case 0:
			return p.FixedInst.Read(cycle), true
		case 1:
			return p.FixedCyc.Read(cycle), true
		case 2:
			return p.FixedRef.Read(cycle), true
		}
		return 0, false
	}
	if int(index) < len(p.Prog) {
		return p.Prog[index].Read(cycle), true
	}
	return 0, false
}

// CBox is one uncore C-Box performance monitoring block.
type CBox struct {
	// Lookup events for the L3 slice(s) behind this C-Box.
	Lookups *EventCounter
	Misses  *EventCounter
}

// CBoxEvent identifies an uncore event.
type CBoxEvent uint8

// Uncore events.
const (
	CBoLookup CBoxEvent = iota
	CBoMiss
)

// NewCBox returns an enabled C-Box counter block.
func NewCBox() *CBox {
	l := &EventCounter{}
	m := &EventCounter{}
	l.SetEnabled(true)
	m.SetEnabled(true)
	return &CBox{Lookups: l, Misses: m}
}

// Advance declares that no future read of this box's counters will
// sample below cycle w. The machine calls it at the start of each run:
// uncore events are orders of magnitude rarer than core events, so
// per-run settling bounds the tails without a per-instruction cost.
func (b *CBox) Advance(w int64) {
	b.Lookups.advance(w)
	b.Misses.advance(w)
}

// Record delivers an uncore event at the given cycle.
func (b *CBox) Record(ev CBoxEvent, cycle int64) {
	switch ev {
	case CBoLookup:
		b.Lookups.RecordAlways(cycle)
	case CBoMiss:
		b.Misses.RecordAlways(cycle)
	}
}

// ResetAll clears the C-Box counters.
func (b *CBox) ResetAll() {
	b.Lookups.Write(0)
	b.Misses.Write(0)
}
