// Package pmu models the performance monitoring unit of the simulated CPU:
// three fixed-function counters (instructions retired, core cycles,
// reference cycles), a configurable number of programmable counters, the
// APERF/MPERF MSR counters, and per-C-Box uncore counters.
//
// Event counters are modelled as streams of cycle-stamped events. Reading a
// counter samples the number of events whose cycle is not after the read's
// execute cycle. Because the core computes execute cycles out of order, an
// unfenced RDPMC can logically precede the completion of earlier
// instructions and undercount — exactly the serialization hazard Section
// IV-A1 of the paper describes.
package pmu

// Event identifies a countable core event.
type Event uint8

// Core performance events of the simulated CPU.
const (
	EvNone Event = iota
	EvInstRetired
	EvUopsIssued
	EvUopsPort0
	EvUopsPort1
	EvUopsPort2
	EvUopsPort3
	EvUopsPort4
	EvUopsPort5
	EvUopsPort6
	EvUopsPort7
	EvLoadRetired
	EvStoreRetired
	EvLoadL1Hit
	EvLoadL1Miss
	EvLoadL2Hit
	EvLoadL2Miss
	EvLoadL3Hit
	EvLoadL3Miss
	EvBrRetired
	EvBrMispRetired
	EvL2Prefetch
	NumEvents
)

var eventNames = [NumEvents]string{
	EvNone:          "NONE",
	EvInstRetired:   "INST_RETIRED",
	EvUopsIssued:    "UOPS_ISSUED.ANY",
	EvUopsPort0:     "UOPS_DISPATCHED_PORT.PORT_0",
	EvUopsPort1:     "UOPS_DISPATCHED_PORT.PORT_1",
	EvUopsPort2:     "UOPS_DISPATCHED_PORT.PORT_2",
	EvUopsPort3:     "UOPS_DISPATCHED_PORT.PORT_3",
	EvUopsPort4:     "UOPS_DISPATCHED_PORT.PORT_4",
	EvUopsPort5:     "UOPS_DISPATCHED_PORT.PORT_5",
	EvUopsPort6:     "UOPS_DISPATCHED_PORT.PORT_6",
	EvUopsPort7:     "UOPS_DISPATCHED_PORT.PORT_7",
	EvLoadRetired:   "MEM_INST_RETIRED.ALL_LOADS",
	EvStoreRetired:  "MEM_INST_RETIRED.ALL_STORES",
	EvLoadL1Hit:     "MEM_LOAD_RETIRED.L1_HIT",
	EvLoadL1Miss:    "MEM_LOAD_RETIRED.L1_MISS",
	EvLoadL2Hit:     "MEM_LOAD_RETIRED.L2_HIT",
	EvLoadL2Miss:    "MEM_LOAD_RETIRED.L2_MISS",
	EvLoadL3Hit:     "MEM_LOAD_RETIRED.L3_HIT",
	EvLoadL3Miss:    "MEM_LOAD_RETIRED.L3_MISS",
	EvBrRetired:     "BR_INST_RETIRED.ALL_BRANCHES",
	EvBrMispRetired: "BR_MISP_RETIRED.ALL_BRANCHES",
	EvL2Prefetch:    "L2_PREFETCH.REQUESTS",
}

// String returns the canonical event name.
func (e Event) String() string {
	if int(e) < len(eventNames) {
		return eventNames[e]
	}
	return "Event(?)"
}

// stream is a cycle-stamped event stream. Events are appended in program
// order; their cycles are approximately but not strictly increasing.
type stream struct {
	cycles []int64
	max    int64
}

func (s *stream) add(cycle int64) {
	s.cycles = append(s.cycles, cycle)
	if cycle > s.max {
		s.max = cycle
	}
}

// countUpTo counts events with cycle <= c.
func (s *stream) countUpTo(c int64) uint64 {
	if c >= s.max {
		return uint64(len(s.cycles))
	}
	var n uint64
	for _, ec := range s.cycles {
		if ec <= c {
			n++
		}
	}
	return n
}

func (s *stream) reset() {
	s.cycles = s.cycles[:0]
	s.max = 0
}

// EventCounter counts occurrences of one event while enabled.
type EventCounter struct {
	base    uint64
	ev      Event
	enabled bool
	str     stream
}

// Configure programs the counter to count ev; it clears accumulated state.
func (c *EventCounter) Configure(ev Event) {
	c.ev = ev
	c.base = 0
	c.str.reset()
}

// Event returns the configured event.
func (c *EventCounter) Event() Event { return c.ev }

// SetEnabled switches counting on or off.
func (c *EventCounter) SetEnabled(on bool) { c.enabled = on }

// Enabled reports whether the counter is counting.
func (c *EventCounter) Enabled() bool { return c.enabled }

// Record adds one event occurrence at the given cycle if the counter is
// enabled and programmed for ev.
func (c *EventCounter) Record(ev Event, cycle int64) {
	if c.enabled && c.ev == ev {
		c.str.add(cycle)
	}
}

// RecordAlways adds one occurrence regardless of the configured event; it
// is used by uncore counters, which have dedicated event streams.
func (c *EventCounter) RecordAlways(cycle int64) {
	if c.enabled {
		c.str.add(cycle)
	}
}

// Read samples the counter at the given cycle.
func (c *EventCounter) Read(cycle int64) uint64 {
	return c.base + c.str.countUpTo(cycle)
}

// Write sets the counter's architectural value and discards event history.
func (c *EventCounter) Write(v uint64) {
	c.base = v
	c.str.reset()
}

// CycleCounter counts cycles (optionally scaled, for reference-cycle
// counters) across enable/disable windows.
type CycleCounter struct {
	base     uint64
	ratio    float64 // ticks per core cycle (1.0 for core cycles)
	enabled  bool
	sinceCyc int64
	accum    float64
	alwaysOn bool // APERF/MPERF ignore enable control
}

// NewCycleCounter returns a cycle counter; ratio scales core cycles to
// counter ticks (1.0 for the core-cycle counter, <1 for reference cycles).
func NewCycleCounter(ratio float64, alwaysOn bool) *CycleCounter {
	c := &CycleCounter{ratio: ratio, alwaysOn: alwaysOn}
	if alwaysOn {
		c.enabled = true
	}
	return c
}

// SetEnabled switches the counter on or off, effective at the given cycle.
func (c *CycleCounter) SetEnabled(on bool, cycle int64) {
	if c.alwaysOn {
		return
	}
	if on == c.enabled {
		return
	}
	if on {
		c.sinceCyc = cycle
	} else {
		c.accum += float64(cycle-c.sinceCyc) * c.ratio
	}
	c.enabled = on
}

// Read samples the counter at the given cycle.
func (c *CycleCounter) Read(cycle int64) uint64 {
	v := c.accum
	if c.enabled && cycle > c.sinceCyc {
		v += float64(cycle-c.sinceCyc) * c.ratio
	}
	return c.base + uint64(v)
}

// Write sets the architectural value and restarts accumulation.
func (c *CycleCounter) Write(v uint64, cycle int64) {
	c.base = v
	c.accum = 0
	c.sinceCyc = cycle
}

// Reset clears value and history; enabled state is preserved.
func (c *CycleCounter) Reset(cycle int64) {
	c.base = 0
	c.accum = 0
	c.sinceCyc = cycle
}

// PMU is the per-core performance monitoring unit.
type PMU struct {
	// Fixed-function counters, RDPMC indices 0x40000000..2:
	// instructions retired, core cycles, reference cycles.
	FixedInst *EventCounter
	FixedCyc  *CycleCounter
	FixedRef  *CycleCounter
	// Programmable counters, RDPMC indices 0..n-1.
	Prog []*EventCounter
	// APERF/MPERF (MSR-only, kernel mode).
	APerf *CycleCounter
	MPerf *CycleCounter
}

// New creates a PMU with nProg programmable counters; refRatio is the
// reference-clock to core-clock ratio.
func New(nProg int, refRatio float64) *PMU {
	p := &PMU{
		FixedInst: &EventCounter{ev: EvInstRetired},
		FixedCyc:  NewCycleCounter(1.0, false),
		FixedRef:  NewCycleCounter(refRatio, false),
		APerf:     NewCycleCounter(1.0, true),
		MPerf:     NewCycleCounter(refRatio, true),
	}
	for i := 0; i < nProg; i++ {
		p.Prog = append(p.Prog, &EventCounter{})
	}
	return p
}

// Record delivers a core event to every counter.
func (p *PMU) Record(ev Event, cycle int64) {
	p.FixedInst.Record(ev, cycle)
	for _, c := range p.Prog {
		c.Record(ev, cycle)
	}
}

// SetGlobalEnable enables or disables all fixed and programmable counters
// at the given cycle (the IA32_PERF_GLOBAL_CTRL model used for nanoBench's
// pause/resume feature).
func (p *PMU) SetGlobalEnable(on bool, cycle int64) {
	p.FixedInst.SetEnabled(on)
	p.FixedCyc.SetEnabled(on, cycle)
	p.FixedRef.SetEnabled(on, cycle)
	for _, c := range p.Prog {
		c.SetEnabled(on)
	}
}

// ResetAll clears all counters (between benchmark runs).
func (p *PMU) ResetAll(cycle int64) {
	p.FixedInst.Write(0)
	p.FixedCyc.Reset(cycle)
	p.FixedRef.Reset(cycle)
	for _, c := range p.Prog {
		c.Write(0)
	}
}

// ReadPMC implements RDPMC index semantics: indices 0..len(Prog)-1 select
// programmable counters; 0x40000000+i selects fixed counter i.
func (p *PMU) ReadPMC(index uint32, cycle int64) (uint64, bool) {
	const fixedFlag = 1 << 30
	if index&fixedFlag != 0 {
		switch index &^ fixedFlag {
		case 0:
			return p.FixedInst.Read(cycle), true
		case 1:
			return p.FixedCyc.Read(cycle), true
		case 2:
			return p.FixedRef.Read(cycle), true
		}
		return 0, false
	}
	if int(index) < len(p.Prog) {
		return p.Prog[index].Read(cycle), true
	}
	return 0, false
}

// CBox is one uncore C-Box performance monitoring block.
type CBox struct {
	// Lookup events for the L3 slice(s) behind this C-Box.
	Lookups *EventCounter
	Misses  *EventCounter
}

// CBoxEvent identifies an uncore event.
type CBoxEvent uint8

// Uncore events.
const (
	CBoLookup CBoxEvent = iota
	CBoMiss
)

// NewCBox returns an enabled C-Box counter block.
func NewCBox() *CBox {
	l := &EventCounter{}
	m := &EventCounter{}
	l.SetEnabled(true)
	m.SetEnabled(true)
	return &CBox{Lookups: l, Misses: m}
}

// Record delivers an uncore event at the given cycle.
func (b *CBox) Record(ev CBoxEvent, cycle int64) {
	switch ev {
	case CBoLookup:
		b.Lookups.RecordAlways(cycle)
	case CBoMiss:
		b.Misses.RecordAlways(cycle)
	}
}

// ResetAll clears the C-Box counters.
func (b *CBox) ResetAll() {
	b.Lookups.Write(0)
	b.Misses.Write(0)
}
