package pmu

import (
	"math/rand"
	"testing"
)

func TestEventCounterSampling(t *testing.T) {
	var c EventCounter
	c.Configure(EvUopsIssued)
	c.SetEnabled(true)
	// Events out of cycle order, as an out-of-order core produces them.
	c.Record(EvUopsIssued, 10)
	c.Record(EvUopsIssued, 30)
	c.Record(EvUopsIssued, 20)
	if got := c.Read(15); got != 1 {
		t.Fatalf("Read(15) = %d, want 1", got)
	}
	if got := c.Read(25); got != 2 {
		t.Fatalf("Read(25) = %d, want 2 (the cycle-30 event is in flight)", got)
	}
	if got := c.Read(100); got != 3 {
		t.Fatalf("Read(100) = %d, want 3", got)
	}
	// Wrong event: ignored.
	c.Record(EvInstRetired, 5)
	if got := c.Read(100); got != 3 {
		t.Fatalf("wrong-event record counted: %d", got)
	}
	// Disabled: ignored.
	c.SetEnabled(false)
	c.Record(EvUopsIssued, 40)
	if got := c.Read(100); got != 3 {
		t.Fatalf("disabled record counted: %d", got)
	}
	c.Write(1000)
	if got := c.Read(100); got != 1000 {
		t.Fatalf("Write base = %d", got)
	}
}

func TestCycleCounterWindows(t *testing.T) {
	c := NewCycleCounter(1.0, false)
	c.SetEnabled(true, 100)
	if got := c.Read(150); got != 50 {
		t.Fatalf("Read(150) = %d, want 50", got)
	}
	c.SetEnabled(false, 200)
	if got := c.Read(500); got != 100 {
		t.Fatalf("disabled Read = %d, want 100", got)
	}
	c.SetEnabled(true, 1000)
	if got := c.Read(1010); got != 110 {
		t.Fatalf("re-enabled Read = %d, want 110", got)
	}
	// Double-enable is a no-op.
	c.SetEnabled(true, 2000)
	if got := c.Read(1010); got != 110 {
		t.Fatalf("double enable changed value: %d", got)
	}
}

func TestCycleCounterRatio(t *testing.T) {
	c := NewCycleCounter(0.5, false)
	c.SetEnabled(true, 0)
	if got := c.Read(1000); got != 500 {
		t.Fatalf("ratio Read = %d, want 500", got)
	}
}

func TestAlwaysOnCounters(t *testing.T) {
	c := NewCycleCounter(1.0, true)
	c.SetEnabled(false, 10) // ignored for always-on counters
	if got := c.Read(100); got != 100 {
		t.Fatalf("always-on Read = %d, want 100", got)
	}
}

func TestPMUReadPMCIndices(t *testing.T) {
	p := New(4, 0.9)
	p.FixedInst.SetEnabled(true)
	p.Record(EvInstRetired, 5)
	v, ok := p.ReadPMC(1<<30|0, 10)
	if !ok || v != 1 {
		t.Fatalf("fixed 0 = %d, %v", v, ok)
	}
	if _, ok := p.ReadPMC(1<<30|7, 10); ok {
		t.Fatal("bad fixed index accepted")
	}
	if _, ok := p.ReadPMC(99, 10); ok {
		t.Fatal("bad programmable index accepted")
	}
	p.Prog[2].Configure(EvUopsPort0)
	p.Prog[2].SetEnabled(true)
	p.Record(EvUopsPort0, 7)
	v, ok = p.ReadPMC(2, 10)
	if !ok || v != 1 {
		t.Fatalf("prog 2 = %d, %v", v, ok)
	}
}

func TestGlobalEnableAndReset(t *testing.T) {
	p := New(2, 1.0)
	p.Prog[0].Configure(EvUopsIssued)
	p.SetGlobalEnable(true, 0)
	p.Record(EvUopsIssued, 5)
	if v, _ := p.ReadPMC(0, 10); v != 1 {
		t.Fatalf("enabled count = %d", v)
	}
	p.SetGlobalEnable(false, 20)
	p.Record(EvUopsIssued, 25)
	if v, _ := p.ReadPMC(0, 100); v != 1 {
		t.Fatalf("count after disable = %d", v)
	}
	p.ResetAll(100)
	if v, _ := p.ReadPMC(0, 200); v != 0 {
		t.Fatalf("count after reset = %d", v)
	}
}

func TestCBox(t *testing.T) {
	b := NewCBox()
	b.Record(CBoLookup, 5)
	b.Record(CBoLookup, 9)
	b.Record(CBoMiss, 9)
	if v := b.Lookups.Read(10); v != 2 {
		t.Fatalf("lookups = %d", v)
	}
	if v := b.Misses.Read(10); v != 1 {
		t.Fatalf("misses = %d", v)
	}
	b.ResetAll()
	if v := b.Lookups.Read(10); v != 0 {
		t.Fatalf("lookups after reset = %d", v)
	}
}

// refCounter is the pre-watermark stream model: every event keeps its
// cycle stamp and reads scan the full history. The watermark counter must
// be observationally identical to it as long as reads respect the Advance
// contract.
type refCounter struct{ cycles []int64 }

func (r *refCounter) add(c int64) { r.cycles = append(r.cycles, c) }
func (r *refCounter) countUpTo(c int64) uint64 {
	var n uint64
	for _, ec := range r.cycles {
		if ec <= c {
			n++
		}
	}
	return n
}

// TestWatermarkEquivalence drives a watermark counter and the reference
// stream model with an identical out-of-order event pattern — including
// reads below the newest recorded cycle, the §IV-A1 unfenced-RDPMC
// undercount situation — and requires identical samples everywhere.
func TestWatermarkEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var c EventCounter
	c.Configure(EvUopsIssued)
	c.SetEnabled(true)
	var ref refCounter

	cur := int64(0) // the simulated front-end cycle: monotone
	for i := 0; i < 20000; i++ {
		cur += rng.Int63n(4)
		// The core promises every later read samples at >= cur.
		c.Advance(cur)
		// Events are stamped at or above the front-end cycle (dispatch,
		// completion, and retire cycles all are), with out-of-order skew.
		ev := cur + rng.Int63n(300)
		c.Record(EvUopsIssued, ev)
		ref.add(ev)
		if i%7 == 0 {
			// An unfenced read: it may logically precede events recorded
			// with higher cycle stamps and must undercount identically.
			rc := cur + rng.Int63n(150)
			got, want := c.Read(rc), ref.countUpTo(rc)
			if got != want {
				t.Fatalf("step %d: Read(%d) = %d, reference = %d", i, rc, got, want)
			}
		}
	}
	// Final settled read.
	if got, want := c.Read(cur+1000), uint64(len(ref.cycles)); got != want {
		t.Fatalf("final Read = %d, want %d", got, want)
	}
}

// TestWatermarkTailBounded checks that Advance keeps the out-of-order
// tail bounded by the event skew, not by the run length.
func TestWatermarkTailBounded(t *testing.T) {
	var c EventCounter
	c.Configure(EvInstRetired)
	c.SetEnabled(true)
	for i := int64(0); i < 100000; i++ {
		c.Advance(i)
		c.Record(EvInstRetired, i+20) // constant skew of 20 cycles
	}
	if len(c.tail) > 2*minCompactLen+20 {
		t.Fatalf("tail grew to %d entries; should stay bounded by the skew", len(c.tail))
	}
	if got := c.Read(100020); got != 100000 {
		t.Fatalf("Read = %d, want 100000", got)
	}
}

// TestResetKeepsWatermark checks that resetting a counter between runs
// (the runner does this NMeasurements×(warmup+runs) times) preserves
// counting correctness and reuses the tail storage.
func TestResetKeepsWatermark(t *testing.T) {
	var c EventCounter
	c.Configure(EvInstRetired)
	c.SetEnabled(true)
	for run := 0; run < 10; run++ {
		base := int64(run * 1000)
		c.Advance(base)
		c.Write(0)
		for i := int64(0); i < 100; i++ {
			c.Record(EvInstRetired, base+i)
		}
		if got := c.Read(base + 1000); got != 100 {
			t.Fatalf("run %d: Read = %d, want 100", run, got)
		}
	}
}

// TestListenerRebuild checks that reprogramming and re-enabling counters
// keeps the PMU's per-event listener lists coherent.
func TestListenerRebuild(t *testing.T) {
	p := New(2, 1.0)
	p.Prog[0].Configure(EvUopsIssued)
	p.SetGlobalEnable(true, 0)
	p.Record(EvUopsIssued, 5)
	if v, _ := p.ReadPMC(0, 10); v != 1 {
		t.Fatalf("count = %d, want 1", v)
	}
	// Reprogram counter 0 to a different event: old event must no longer
	// be delivered, new one must be.
	p.Prog[0].Configure(EvLoadL1Hit)
	p.Prog[0].SetEnabled(true)
	p.Record(EvUopsIssued, 20)
	p.Record(EvLoadL1Hit, 21)
	if v, _ := p.ReadPMC(0, 30); v != 1 {
		t.Fatalf("after reprogram: count = %d, want 1", v)
	}
	// Disabling removes the listener.
	p.Prog[0].SetEnabled(false)
	p.Record(EvLoadL1Hit, 40)
	if v, _ := p.ReadPMC(0, 50); v != 1 {
		t.Fatalf("after disable: count = %d, want 1", v)
	}
}

func TestEventNames(t *testing.T) {
	for e := Event(0); e < NumEvents; e++ {
		if e.String() == "" || e.String() == "Event(?)" {
			t.Errorf("event %d has no name", e)
		}
	}
}

// TestRecordBatchMatchesRecord: a RecordBatch delivery must be
// observationally identical — at every sampling cycle, through
// reconfiguration, with multi-count events — to the equivalent sequence
// of Record calls.
func TestRecordBatchMatchesRecord(t *testing.T) {
	events := []Event{EvLoadRetired, EvLoadL1Hit, EvLoadL1Miss, EvLoadL2Hit, EvL2Prefetch}
	build := func() *PMU {
		p := New(4, 0.8)
		for i, ev := range events[:4] {
			p.Prog[i].Configure(ev)
		}
		p.SetGlobalEnable(true, 0)
		// EvL2Prefetch has no listener: batch counts for it must be dropped.
		return p
	}
	a, b := build(), build()

	rng := rand.New(rand.NewSource(5))
	cycle, watermark := int64(0), int64(0)
	for i := 0; i < 500; i++ {
		cycle += int64(rng.Intn(4))
		var counts [NumEvents]uint16
		for _, ev := range events {
			counts[ev] = uint16(rng.Intn(3))
		}
		a.RecordBatch(&counts, cycle)
		for _, ev := range events {
			for n := counts[ev]; n > 0; n-- {
				b.Record(ev, cycle)
			}
		}
		if rng.Intn(16) == 0 {
			w := cycle - int64(rng.Intn(8))
			if w > watermark {
				watermark = w
			}
			a.Advance(w)
			b.Advance(w)
		}
		// Honour the Advance contract: never sample below the watermark.
		at := cycle - int64(rng.Intn(6))
		if at < watermark {
			at = watermark
		}
		for idx := uint32(0); idx < 4; idx++ {
			av, _ := a.ReadPMC(idx, at)
			bv, _ := b.ReadPMC(idx, at)
			if av != bv {
				t.Fatalf("step %d: counter %d: batch %d vs record %d at cycle %d", i, idx, av, bv, at)
			}
		}
	}
}

func BenchmarkPMURecordBatchLoad(b *testing.B) {
	p := New(4, 0.8)
	p.Prog[0].Configure(EvLoadRetired)
	p.Prog[1].Configure(EvLoadL1Hit)
	p.SetGlobalEnable(true, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var counts [NumEvents]uint16
		counts[EvLoadRetired] = 1
		counts[EvLoadL1Hit] = 1
		p.RecordBatch(&counts, int64(i))
		if i%64 == 0 {
			p.Advance(int64(i))
		}
	}
}
