package pmu

import "testing"

func TestEventCounterSampling(t *testing.T) {
	var c EventCounter
	c.Configure(EvUopsIssued)
	c.SetEnabled(true)
	// Events out of cycle order, as an out-of-order core produces them.
	c.Record(EvUopsIssued, 10)
	c.Record(EvUopsIssued, 30)
	c.Record(EvUopsIssued, 20)
	if got := c.Read(15); got != 1 {
		t.Fatalf("Read(15) = %d, want 1", got)
	}
	if got := c.Read(25); got != 2 {
		t.Fatalf("Read(25) = %d, want 2 (the cycle-30 event is in flight)", got)
	}
	if got := c.Read(100); got != 3 {
		t.Fatalf("Read(100) = %d, want 3", got)
	}
	// Wrong event: ignored.
	c.Record(EvInstRetired, 5)
	if got := c.Read(100); got != 3 {
		t.Fatalf("wrong-event record counted: %d", got)
	}
	// Disabled: ignored.
	c.SetEnabled(false)
	c.Record(EvUopsIssued, 40)
	if got := c.Read(100); got != 3 {
		t.Fatalf("disabled record counted: %d", got)
	}
	c.Write(1000)
	if got := c.Read(100); got != 1000 {
		t.Fatalf("Write base = %d", got)
	}
}

func TestCycleCounterWindows(t *testing.T) {
	c := NewCycleCounter(1.0, false)
	c.SetEnabled(true, 100)
	if got := c.Read(150); got != 50 {
		t.Fatalf("Read(150) = %d, want 50", got)
	}
	c.SetEnabled(false, 200)
	if got := c.Read(500); got != 100 {
		t.Fatalf("disabled Read = %d, want 100", got)
	}
	c.SetEnabled(true, 1000)
	if got := c.Read(1010); got != 110 {
		t.Fatalf("re-enabled Read = %d, want 110", got)
	}
	// Double-enable is a no-op.
	c.SetEnabled(true, 2000)
	if got := c.Read(1010); got != 110 {
		t.Fatalf("double enable changed value: %d", got)
	}
}

func TestCycleCounterRatio(t *testing.T) {
	c := NewCycleCounter(0.5, false)
	c.SetEnabled(true, 0)
	if got := c.Read(1000); got != 500 {
		t.Fatalf("ratio Read = %d, want 500", got)
	}
}

func TestAlwaysOnCounters(t *testing.T) {
	c := NewCycleCounter(1.0, true)
	c.SetEnabled(false, 10) // ignored for always-on counters
	if got := c.Read(100); got != 100 {
		t.Fatalf("always-on Read = %d, want 100", got)
	}
}

func TestPMUReadPMCIndices(t *testing.T) {
	p := New(4, 0.9)
	p.FixedInst.SetEnabled(true)
	p.Record(EvInstRetired, 5)
	v, ok := p.ReadPMC(1<<30|0, 10)
	if !ok || v != 1 {
		t.Fatalf("fixed 0 = %d, %v", v, ok)
	}
	if _, ok := p.ReadPMC(1<<30|7, 10); ok {
		t.Fatal("bad fixed index accepted")
	}
	if _, ok := p.ReadPMC(99, 10); ok {
		t.Fatal("bad programmable index accepted")
	}
	p.Prog[2].Configure(EvUopsPort0)
	p.Prog[2].SetEnabled(true)
	p.Record(EvUopsPort0, 7)
	v, ok = p.ReadPMC(2, 10)
	if !ok || v != 1 {
		t.Fatalf("prog 2 = %d, %v", v, ok)
	}
}

func TestGlobalEnableAndReset(t *testing.T) {
	p := New(2, 1.0)
	p.Prog[0].Configure(EvUopsIssued)
	p.SetGlobalEnable(true, 0)
	p.Record(EvUopsIssued, 5)
	if v, _ := p.ReadPMC(0, 10); v != 1 {
		t.Fatalf("enabled count = %d", v)
	}
	p.SetGlobalEnable(false, 20)
	p.Record(EvUopsIssued, 25)
	if v, _ := p.ReadPMC(0, 100); v != 1 {
		t.Fatalf("count after disable = %d", v)
	}
	p.ResetAll(100)
	if v, _ := p.ReadPMC(0, 200); v != 0 {
		t.Fatalf("count after reset = %d", v)
	}
}

func TestCBox(t *testing.T) {
	b := NewCBox()
	b.Record(CBoLookup, 5)
	b.Record(CBoLookup, 9)
	b.Record(CBoMiss, 9)
	if v := b.Lookups.Read(10); v != 2 {
		t.Fatalf("lookups = %d", v)
	}
	if v := b.Misses.Read(10); v != 1 {
		t.Fatalf("misses = %d", v)
	}
	b.ResetAll()
	if v := b.Lookups.Read(10); v != 0 {
		t.Fatalf("lookups after reset = %d", v)
	}
}

func TestEventNames(t *testing.T) {
	for e := Event(0); e < NumEvents; e++ {
		if e.String() == "" || e.String() == "Event(?)" {
			t.Errorf("event %d has no name", e)
		}
	}
}
