package pmu

import "testing"

// benchPMU returns a PMU configured the way measurement runs see it: fixed
// counters plus four programmable counters, all enabled.
func benchPMU() *PMU {
	p := New(4, 0.88)
	p.Prog[0].Configure(EvUopsPort0)
	p.Prog[1].Configure(EvUopsPort1)
	p.Prog[2].Configure(EvUopsIssued)
	p.Prog[3].Configure(EvLoadL1Hit)
	p.SetGlobalEnable(true, 0)
	return p
}

// BenchmarkPMURecord measures the cost of delivering one core event to the
// PMU — the operation the core performs 3–6 times per simulated
// instruction.
func BenchmarkPMURecord(b *testing.B) {
	p := benchPMU()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cyc := int64(i)
		p.Advance(cyc)
		p.Record(EvInstRetired, cyc)
		p.Record(EvUopsIssued, cyc)
		p.Record(EvUopsPort0, cyc+2)
	}
}

// BenchmarkPMUReadPMC measures sampling a counter mid-stream, after a
// long recording history — the RDPMC hot path.
func BenchmarkPMUReadPMC(b *testing.B) {
	p := benchPMU()
	for i := 0; i < 1<<16; i++ {
		cyc := int64(i)
		p.Advance(cyc)
		p.Record(EvInstRetired, cyc)
		p.Record(EvUopsIssued, cyc+3)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := p.ReadPMC(1<<30|0, 1<<15); !ok {
			b.Fatal("bad index")
		}
	}
}

// BenchmarkPMUResetAll measures the between-runs counter reset that the
// runner performs NMeasurements×(warmup+runs) times per benchmark config.
func BenchmarkPMUResetAll(b *testing.B) {
	p := benchPMU()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			cyc := int64(i*64 + j)
			p.Record(EvInstRetired, cyc)
			p.Record(EvUopsIssued, cyc)
		}
		p.ResetAll(int64(i * 64))
	}
}
