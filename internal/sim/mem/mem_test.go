package mem

import (
	"errors"
	"math/rand"
	"testing"
)

func newTestMem(t *testing.T) *Memory {
	t.Helper()
	m, err := NewMemory(16<<20, 8<<20)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestMapTranslate(t *testing.T) {
	m := newTestMem(t)
	if err := m.Map(0x10000, 0x200000, 0x2000); err != nil {
		t.Fatal(err)
	}
	p, ok := m.Translate(0x10004)
	if !ok || p != 0x200004 {
		t.Fatalf("Translate = %#x, %v", p, ok)
	}
	p, ok = m.Translate(0x11FFF)
	if !ok || p != 0x201FFF {
		t.Fatalf("Translate end = %#x, %v", p, ok)
	}
	if _, ok := m.Translate(0x12000); ok {
		t.Fatal("expected unmapped past end")
	}
	m.Unmap(0x10000, 0x1000)
	if _, ok := m.Translate(0x10000); ok {
		t.Fatal("expected unmapped after Unmap")
	}
	if _, ok := m.Translate(0x11000); !ok {
		t.Fatal("second page should stay mapped")
	}
}

func TestMapValidation(t *testing.T) {
	m := newTestMem(t)
	if err := m.Map(0x10001, 0x200000, 0x1000); err == nil {
		t.Error("expected unaligned virt error")
	}
	if err := m.Map(0x10000, 0x200000, 0x10000000); err == nil {
		t.Error("expected out-of-phys error")
	}
	if err := m.Map(0x7FF000, 0x200000, 0x10000); err == nil {
		t.Error("expected out-of-virt error")
	}
	if _, err := NewMemory(100, 4096); err == nil {
		t.Error("expected unaligned size error")
	}
}

func TestReadWrite(t *testing.T) {
	m := newTestMem(t)
	if err := m.Map(0x10000, 0x200000, 0x2000); err != nil {
		t.Fatal(err)
	}
	if !m.Write64(0x10010, 0xDEADBEEFCAFE) {
		t.Fatal("write failed")
	}
	v, ok := m.Read64(0x10010)
	if !ok || v != 0xDEADBEEFCAFE {
		t.Fatalf("Read64 = %#x, %v", v, ok)
	}
	// Cross-page contiguous access.
	if !m.Write64(0x10FFC, 0x1122334455667788) {
		t.Fatal("cross-page write failed")
	}
	v, ok = m.Read64(0x10FFC)
	if !ok || v != 0x1122334455667788 {
		t.Fatalf("cross-page Read64 = %#x", v)
	}
	// Cross-page onto unmapped page.
	if m.Write64(0x11FFC, 1) {
		t.Fatal("write spanning unmapped page should fail")
	}
	if _, ok := m.Read64(0x7000); ok {
		t.Fatal("read of unmapped address should fail")
	}
}

func TestNonContiguousSpan(t *testing.T) {
	m := newTestMem(t)
	// Map two virtual pages to non-adjacent physical pages.
	if err := m.Map(0x20000, 0x300000, 0x1000); err != nil {
		t.Fatal(err)
	}
	if err := m.Map(0x21000, 0x500000, 0x1000); err != nil {
		t.Fatal(err)
	}
	if !m.Write64(0x20FFC, 0xAABBCCDDEEFF0011) {
		t.Fatal("span write failed")
	}
	v, ok := m.Read64(0x20FFC)
	if !ok || v != 0xAABBCCDDEEFF0011 {
		t.Fatalf("span Read64 = %#x", v)
	}
	// The bytes must be split across the two physical pages.
	var lo [4]byte
	if err := m.ReadPhys(0x300FFC, lo[:]); err != nil {
		t.Fatal(err)
	}
	var hi [4]byte
	if err := m.ReadPhys(0x500000, hi[:]); err != nil {
		t.Fatal(err)
	}
	if lo[0] != 0x11 || hi[0] != 0xDD {
		t.Fatalf("split bytes lo=%x hi=%x", lo, hi)
	}
}

func TestKmallocAdjacencyAfterReboot(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewAllocator(64<<20, 1<<20, rng)
	p1, err := a.Kmalloc(KmallocMax)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := a.Kmalloc(KmallocMax)
	if err != nil {
		t.Fatal(err)
	}
	if p2 != p1+KmallocMax {
		t.Fatalf("fresh allocator not adjacent: %#x then %#x", p1, p2)
	}
	if p1 < 1<<20 {
		t.Fatalf("allocation in reserved region: %#x", p1)
	}
}

func TestKmallocLimits(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewAllocator(16<<20, 0, rng)
	if _, err := a.Kmalloc(KmallocMax + 1); err == nil {
		t.Error("expected error above KmallocMax")
	}
	if _, err := a.Kmalloc(0); err == nil {
		t.Error("expected error for zero size")
	}
	// Exhaust memory.
	for i := 0; i < 4; i++ {
		if _, err := a.Kmalloc(KmallocMax); err != nil {
			t.Fatalf("allocation %d failed: %v", i, err)
		}
	}
	if _, err := a.Kmalloc(KmallocMax); err == nil {
		t.Error("expected out-of-memory")
	}
}

func TestFreeAndReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := NewAllocator(16<<20, 0, rng)
	p, err := a.Kmalloc(1 << 20)
	if err != nil {
		t.Fatal(err)
	}
	before := a.FreePages()
	a.Free(p, 1<<20)
	after := a.FreePages()
	if after-before != (1<<20)/PageSize {
		t.Fatalf("Free released %d pages, want %d", after-before, (1<<20)/PageSize)
	}
}

func TestAllocContiguousLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := NewAllocator(128<<20, 1<<20, rng)
	base, err := a.AllocContiguous(32 << 20)
	if err != nil {
		t.Fatalf("AllocContiguous(32MB): %v", err)
	}
	_ = base
}

func TestAllocContiguousFragmented(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := NewAllocator(128<<20, 1<<20, rng)
	a.Fragment(0.02) // a few holes break every 4 MB run
	_, err := a.AllocContiguous(32 << 20)
	if !errors.Is(err, ErrRebootRequired) {
		t.Fatalf("fragmented AllocContiguous: err = %v, want ErrRebootRequired", err)
	}
	// The paper's remedy: reboot, then retry.
	a.Reboot()
	if _, err := a.AllocContiguous(32 << 20); err != nil {
		t.Fatalf("after reboot: %v", err)
	}
}
