// Package mem implements the simulated machine's physical memory, a
// page-granular virtual address space, and a kmalloc-style physical page
// allocator including the greedy physically-contiguous allocation algorithm
// from Section IV-D of the nanoBench paper.
package mem

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the page granularity of the simulated MMU.
const PageSize = 4096

// Memory is the physical memory and page table of a simulated machine.
// Virtual addresses are 32-bit (the machine lays out everything below 2 GB
// so absolute disp32 addressing works); physical addresses are 64-bit but
// bounded by the configured physical size.
//
// Physical storage is sparse: frames materialize on first write and reads
// of untouched frames return zeros, exactly as if the whole array had been
// zeroed eagerly. Eager allocation would make building a machine cost a
// PhysMem-sized memclr — prohibitive for a scheduler pool that builds one
// machine per job.
type Memory struct {
	physSize uint64
	// frames holds per-page physical storage, nil until first written.
	frames [][]byte
	// pt maps virtual page number to physical page number; -1 = unmapped.
	pt []int32
}

// NewMemory creates a memory with the given physical size and virtual
// address-space size, both multiples of the page size.
func NewMemory(physSize, virtSize uint64) (*Memory, error) {
	if physSize%PageSize != 0 || virtSize%PageSize != 0 {
		return nil, fmt.Errorf("mem: sizes must be multiples of the %d-byte page size", PageSize)
	}
	if virtSize > 1<<31 {
		return nil, fmt.Errorf("mem: virtual address space must fit below 2 GB")
	}
	m := &Memory{
		physSize: physSize,
		frames:   make([][]byte, physSize/PageSize),
		pt:       make([]int32, virtSize/PageSize),
	}
	for i := range m.pt {
		m.pt[i] = -1
	}
	return m, nil
}

// PhysSize returns the physical memory size in bytes.
func (m *Memory) PhysSize() uint64 { return m.physSize }

var zeroFrame [PageSize]byte

// readFrame returns the page backing pfn for reading (the shared zero
// frame when untouched).
func (m *Memory) readFrame(pfn uint64) []byte {
	if f := m.frames[pfn]; f != nil {
		return f
	}
	return zeroFrame[:]
}

// writeFrame returns the page backing pfn for writing, materializing it.
func (m *Memory) writeFrame(pfn uint64) []byte {
	f := m.frames[pfn]
	if f == nil {
		f = make([]byte, PageSize)
		m.frames[pfn] = f
	}
	return f
}

// physRead copies from physical memory into dst, page by page.
func (m *Memory) physRead(phys uint64, dst []byte) {
	for len(dst) > 0 {
		off := phys % PageSize
		n := copy(dst, m.readFrame(phys / PageSize)[off:])
		dst = dst[n:]
		phys += uint64(n)
	}
}

// physWrite copies src into physical memory, page by page.
func (m *Memory) physWrite(phys uint64, src []byte) {
	for len(src) > 0 {
		off := phys % PageSize
		n := copy(m.writeFrame(phys / PageSize)[off:], src)
		src = src[n:]
		phys += uint64(n)
	}
}

// Map maps size bytes at virtual address virt to physical address phys.
// All three must be page-aligned.
func (m *Memory) Map(virt uint32, phys uint64, size uint64) error {
	if virt%PageSize != 0 || phys%PageSize != 0 || size%PageSize != 0 {
		return fmt.Errorf("mem: Map arguments must be page-aligned")
	}
	if phys+size > m.physSize {
		return fmt.Errorf("mem: mapping beyond physical memory (phys=%#x size=%#x)", phys, size)
	}
	if uint64(virt)+size > uint64(len(m.pt))*PageSize {
		return fmt.Errorf("mem: mapping beyond virtual address space (virt=%#x size=%#x)", virt, size)
	}
	for off := uint64(0); off < size; off += PageSize {
		m.pt[(uint64(virt)+off)/PageSize] = int32((phys + off) / PageSize)
	}
	return nil
}

// Unmap removes the mapping for the given virtual range.
func (m *Memory) Unmap(virt uint32, size uint64) {
	for off := uint64(0); off < size; off += PageSize {
		vpn := (uint64(virt) + off) / PageSize
		if vpn < uint64(len(m.pt)) {
			m.pt[vpn] = -1
		}
	}
}

// Translate translates a virtual address to a physical address.
func (m *Memory) Translate(virt uint32) (uint64, bool) {
	vpn := virt / PageSize
	if uint64(vpn) >= uint64(len(m.pt)) {
		return 0, false
	}
	pfn := m.pt[vpn]
	if pfn < 0 {
		return 0, false
	}
	return uint64(pfn)*PageSize + uint64(virt%PageSize), true
}

// contiguous reports whether the n bytes at virt are virtually mapped to
// physically contiguous memory and translates the base.
func (m *Memory) translateSpan(virt uint32, n int) (uint64, bool) {
	p0, ok := m.Translate(virt)
	if !ok {
		return 0, false
	}
	last := virt + uint32(n) - 1
	if virt/PageSize == last/PageSize {
		return p0, true
	}
	pl, ok := m.Translate(last)
	if !ok {
		return 0, false
	}
	if pl-p0 != uint64(last-virt) {
		return 0, false // spans non-contiguous pages; caller uses slow path
	}
	return p0, true
}

// Read copies n bytes at virtual address virt into dst. It returns false
// on an unmapped access (a simulated fault).
func (m *Memory) Read(virt uint32, dst []byte) bool {
	if p, ok := m.translateSpan(virt, len(dst)); ok {
		m.physRead(p, dst)
		return true
	}
	for i := range dst {
		p, ok := m.Translate(virt + uint32(i))
		if !ok {
			return false
		}
		dst[i] = m.readFrame(p / PageSize)[p%PageSize]
	}
	return true
}

// Write copies src to virtual address virt. It returns false on an
// unmapped access.
func (m *Memory) Write(virt uint32, src []byte) bool {
	if p, ok := m.translateSpan(virt, len(src)); ok {
		m.physWrite(p, src)
		return true
	}
	for i := range src {
		p, ok := m.Translate(virt + uint32(i))
		if !ok {
			return false
		}
		m.writeFrame(p / PageSize)[p%PageSize] = src[i]
	}
	return true
}

// Read64 reads a 64-bit little-endian value at virt.
func (m *Memory) Read64(virt uint32) (uint64, bool) {
	var b [8]byte
	if !m.Read(virt, b[:]) {
		return 0, false
	}
	return binary.LittleEndian.Uint64(b[:]), true
}

// Write64 writes a 64-bit little-endian value at virt.
func (m *Memory) Write64(virt uint32, v uint64) bool {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return m.Write(virt, b[:])
}

// ReadPhys reads directly from physical memory (used by the kernel-module
// simulation and tests).
func (m *Memory) ReadPhys(phys uint64, dst []byte) error {
	if phys+uint64(len(dst)) > m.physSize {
		return fmt.Errorf("mem: physical read out of range")
	}
	m.physRead(phys, dst)
	return nil
}

// WritePhys writes directly to physical memory.
func (m *Memory) WritePhys(phys uint64, src []byte) error {
	if phys+uint64(len(src)) > m.physSize {
		return fmt.Errorf("mem: physical write out of range")
	}
	m.physWrite(phys, src)
	return nil
}
