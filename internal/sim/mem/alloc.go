package mem

import (
	"errors"
	"fmt"
	"math/rand"
)

// KmallocMax is the largest physically-contiguous allocation a single
// kmalloc call can return, matching recent Linux kernels (Section IV-D).
const KmallocMax = 4 << 20

// ErrRebootRequired is returned by AllocContiguous when no
// physically-contiguous region of the requested size could be assembled;
// the paper's tool proposes a reboot in this situation, which the simulated
// machine performs with Reboot.
var ErrRebootRequired = errors.New("mem: could not allocate physically-contiguous memory; reboot recommended")

// Allocator is a simplified physical page allocator with the behaviour the
// paper's greedy algorithm relies on: shortly after boot the freelist is
// ordered, so consecutive kmalloc calls return adjacent physical regions;
// after the system has run for a while the freelist is fragmented and
// adjacency becomes unlikely.
type Allocator struct {
	pageUsed []bool
	reserved uint64 // low physical pages reserved for the machine itself
	rover    uint64 // next page index to consider
	rng      *rand.Rand
}

// NewAllocator creates an allocator over physSize bytes of physical
// memory, with the first reserved bytes never handed out.
func NewAllocator(physSize, reserved uint64, rng *rand.Rand) *Allocator {
	a := &Allocator{
		pageUsed: make([]bool, physSize/PageSize),
		reserved: reserved / PageSize,
		rng:      rng,
	}
	a.Reboot()
	return a
}

// Reboot restores the pristine, ordered freelist state.
func (a *Allocator) Reboot() {
	for i := range a.pageUsed {
		a.pageUsed[i] = uint64(i) < a.reserved
	}
	a.rover = a.reserved
}

// Fragment marks a random fraction of free pages as used, simulating a
// long-running system. Subsequent kmalloc calls will rarely be adjacent.
func (a *Allocator) Fragment(frac float64) {
	for i := a.reserved; i < uint64(len(a.pageUsed)); i++ {
		if !a.pageUsed[i] && a.rng.Float64() < frac {
			a.pageUsed[i] = true
		}
	}
}

// FreePages returns the number of free pages.
func (a *Allocator) FreePages() int {
	n := 0
	for _, u := range a.pageUsed {
		if !u {
			n++
		}
	}
	return n
}

// Kmalloc allocates size bytes of physically-contiguous memory (rounded up
// to whole pages) and returns the physical base address. Requests larger
// than KmallocMax fail, as in the real kernel.
func (a *Allocator) Kmalloc(size uint64) (uint64, error) {
	if size == 0 {
		return 0, fmt.Errorf("mem: zero-size kmalloc")
	}
	if size > KmallocMax {
		return 0, fmt.Errorf("mem: kmalloc of %d bytes exceeds the %d-byte limit", size, KmallocMax)
	}
	pages := (size + PageSize - 1) / PageSize
	total := uint64(len(a.pageUsed))

	// Scan from the rover, wrapping once.
	scanned := uint64(0)
	start := a.rover
	for scanned < total {
		if start+pages > total {
			scanned += total - start
			start = a.reserved
			continue
		}
		run := uint64(0)
		for run < pages && !a.pageUsed[start+run] {
			run++
		}
		if run == pages {
			for i := uint64(0); i < pages; i++ {
				a.pageUsed[start+i] = true
			}
			a.rover = start + pages
			return start * PageSize, nil
		}
		scanned += run + 1
		start += run + 1
	}
	return 0, fmt.Errorf("mem: out of physical memory (%d pages requested)", pages)
}

// Free releases a region previously returned by Kmalloc.
func (a *Allocator) Free(phys, size uint64) {
	pages := (size + PageSize - 1) / PageSize
	for i := uint64(0); i < pages; i++ {
		pn := phys/PageSize + i
		if pn < uint64(len(a.pageUsed)) && pn >= a.reserved {
			a.pageUsed[pn] = false
		}
	}
}

// AllocContiguous implements the greedy algorithm from Section IV-D: it
// performs repeated kmalloc calls, tracking the longest run of adjacent
// regions; chunks that break adjacency restart the run. If no run of the
// requested size forms within a bounded number of calls, all chunks are
// released and ErrRebootRequired is returned.
func (a *Allocator) AllocContiguous(size uint64) (uint64, error) {
	if size <= KmallocMax {
		return a.Kmalloc(size)
	}
	const maxCalls = 256
	type chunk struct{ base, size uint64 }
	var all []chunk

	free := func() {
		for _, c := range all {
			a.Free(c.base, c.size)
		}
	}

	runBase := uint64(0)
	runLen := uint64(0)
	for calls := 0; calls < maxCalls; calls++ {
		base, err := a.Kmalloc(KmallocMax)
		if err != nil {
			free()
			return 0, ErrRebootRequired
		}
		all = append(all, chunk{base, KmallocMax})
		switch {
		case runLen == 0:
			runBase, runLen = base, KmallocMax
		case base == runBase+runLen:
			runLen += KmallocMax
		case base+KmallocMax == runBase:
			runBase = base
			runLen += KmallocMax
		default:
			runBase, runLen = base, KmallocMax
		}
		if runLen >= size {
			// Release every chunk outside the winning run.
			for _, c := range all {
				if c.base < runBase || c.base >= runBase+runLen {
					a.Free(c.base, c.size)
				}
			}
			// Trim the tail of the run beyond the requested size.
			if runLen > size {
				over := runLen - size
				// Only whole pages beyond size are returned.
				overPages := over / PageSize * PageSize
				if overPages > 0 {
					a.Free(runBase+runLen-overPages, overPages)
				}
			}
			return runBase, nil
		}
	}
	free()
	return 0, ErrRebootRequired
}
