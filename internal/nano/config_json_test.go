package nano

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"nanobench/internal/perfcfg"
)

func TestConfigJSONRoundTrip(t *testing.T) {
	cfgs := []Config{
		{},
		{Code: MustAsm("add rax, rbx")},
		{
			Code:          MustAsm("mov R14, [R14]"),
			CodeInit:      MustAsm("mov [R14], R14"),
			UnrollCount:   10,
			LoopCount:     100,
			NMeasurements: 3,
			WarmUpCount:   NoWarmUp,
			Aggregate:     Avg,
			BasicMode:     true,
			NoMem:         true,
			UseBigArea:    true,
			Events: perfcfg.MustParse(`D1.01 MEM_LOAD_RETIRED.L1_HIT
CBO.LOOKUP LLC_LOOKUPS
MSR.E8 APERF`),
		},
	}
	for i, cfg := range cfgs {
		data, err := json.Marshal(cfg)
		if err != nil {
			t.Fatalf("config %d: marshal: %v", i, err)
		}
		var back Config
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("config %d: unmarshal(%s): %v", i, data, err)
		}
		if !reflect.DeepEqual(cfg, back) {
			t.Errorf("config %d: round trip mismatch\nin:  %+v\nout: %+v\nwire: %s", i, cfg, back, data)
		}
		// The encoding itself must be stable: marshal(unmarshal(marshal))
		// is byte-identical.
		data2, err := json.Marshal(back)
		if err != nil {
			t.Fatalf("config %d: re-marshal: %v", i, err)
		}
		if string(data) != string(data2) {
			t.Errorf("config %d: encoding unstable:\n%s\n%s", i, data, data2)
		}
	}
}

func TestConfigJSONAsmDecodes(t *testing.T) {
	var cfg Config
	err := json.Unmarshal([]byte(`{"asm":"add rax, rbx","asm_init":"mov rbx, 1","unroll_count":5}`), &cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Code: MustAsm("add rax, rbx"), CodeInit: MustAsm("mov rbx, 1"), UnrollCount: 5}
	if !reflect.DeepEqual(cfg, want) {
		t.Errorf("got %+v, want %+v", cfg, want)
	}
}

func TestConfigJSONErrors(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"unknown field", `{"unrol_count": 5}`, "unknown field"},
		{"asm and code", `{"asm":"nop","code":"kA=="}`, "both"},
		{"bad asm", `{"asm":"not an instruction"}`, "code"},
		{"bad aggregate", `{"aggregate":"max"}`, "unknown aggregate"},
		{"bad event", `{"events":["ZZ"]}`, "perfcfg"},
	}
	for _, tc := range cases {
		var cfg Config
		err := json.Unmarshal([]byte(tc.in), &cfg)
		if err == nil {
			t.Errorf("%s: decoded %q without error", tc.name, tc.in)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestConfigIsZero(t *testing.T) {
	if !(Config{}).IsZero() {
		t.Error("zero config not IsZero")
	}
	for _, cfg := range []Config{
		{Code: []byte{0x90}},
		{UnrollCount: 1},
		{Aggregate: Median},
		{WarmUpCount: NoWarmUp},
		{NoMem: true},
	} {
		if cfg.IsZero() {
			t.Errorf("%+v reported IsZero", cfg)
		}
	}
}
