package nano

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"nanobench/internal/perfcfg"
	"nanobench/internal/sim/machine"
)

// goldenResult builds a fixed result covering every metric shape: a fixed
// counter with samples, a core event, and an MSR event.
func goldenResult() *Result {
	r := newResult()
	r.addMetric(Metric{Name: "Core cycles", Fixed: true, Value: 4, Samples: []float64{4, 4.5}})
	r.addMetric(Metric{
		Name:    "MEM_LOAD_RETIRED.L1_HIT",
		Event:   perfcfg.EventSpec{Kind: perfcfg.Core, EvtSel: 0xD1, Umask: 0x01, Name: "MEM_LOAD_RETIRED.L1_HIT"},
		Value:   1,
		Samples: []float64{1, 1},
	})
	r.addMetric(Metric{
		Name:  "APERF",
		Event: perfcfg.EventSpec{Kind: perfcfg.MSR, Addr: 0xE8, Name: "APERF"},
		Value: 0.5,
	})
	return r
}

func TestMarshalJSONGolden(t *testing.T) {
	got, err := json.Marshal(goldenResult())
	if err != nil {
		t.Fatal(err)
	}
	const want = `{"metrics":[` +
		`{"name":"Core cycles","value":4,"samples":[4,4.5]},` +
		`{"name":"MEM_LOAD_RETIRED.L1_HIT","event":"D1.01","value":1,"samples":[1,1]},` +
		`{"name":"APERF","event":"MSR.E8","value":0.5}]}`
	if string(got) != want {
		t.Errorf("MarshalJSON:\n got %s\nwant %s", got, want)
	}
	// Marshalling twice (and marshalling a clone) is byte-stable.
	again, _ := json.Marshal(goldenResult().Clone())
	if string(again) != want {
		t.Errorf("clone marshals differently:\n got %s\nwant %s", again, want)
	}
}

func TestUnmarshalJSONRoundTrip(t *testing.T) {
	data, err := json.Marshal(goldenResult())
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(goldenResult()) {
		t.Errorf("round trip changed the result:\n%v\nvs\n%v", &back, goldenResult())
	}
	m, ok := back.Lookup("MEM_LOAD_RETIRED.L1_HIT")
	if !ok || m.Fixed || m.Event.EvtSel != 0xD1 || m.Event.Umask != 0x01 {
		t.Errorf("round trip lost the event spec: %+v", m)
	}
	if m, _ := back.Lookup("Core cycles"); !m.Fixed {
		t.Error("round trip lost the fixed flag")
	}
}

func TestUnmarshalJSONMalformedEvent(t *testing.T) {
	for _, bad := range []string{
		`{"metrics":[{"name":"x","event":"#","value":1}]}`,   // parses to zero specs
		`{"metrics":[{"name":"x","event":"zzz","value":1}]}`, // parse error
	} {
		var r Result
		if err := json.Unmarshal([]byte(bad), &r); err == nil {
			t.Errorf("unmarshal of %s succeeded, want an error", bad)
		}
	}
}

// TestUnmarshalJSONHostileName: metric names never pass through the
// configuration-line syntax, so comment characters and runs of
// whitespace round-trip unharmed.
func TestUnmarshalJSONHostileName(t *testing.T) {
	r := newResult()
	r.addMetric(Metric{
		Name:  "loads #demand  only",
		Event: perfcfg.EventSpec{Kind: perfcfg.Core, EvtSel: 0xD1, Umask: 0x01, Name: "loads #demand  only"},
		Value: 2,
	})
	data, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Result
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !back.Equal(r) {
		t.Errorf("hostile name did not round-trip:\n%v\nvs\n%v", &back, r)
	}
}

func TestAppendCSVGolden(t *testing.T) {
	got := string(goldenResult().AppendCSV(nil))
	const want = "Core cycles,,4,4;4.5\n" +
		"MEM_LOAD_RETIRED.L1_HIT,D1.01,1,1;1\n" +
		"APERF,MSR.E8,0.5,\n"
	if got != want {
		t.Errorf("AppendCSV:\n got %q\nwant %q", got, want)
	}
	// Appending extends the buffer in place.
	withHeader := goldenResult().AppendCSV([]byte(CSVHeader + "\n"))
	if string(withHeader) != CSVHeader+"\n"+want {
		t.Errorf("AppendCSV to non-empty buffer:\n%q", withHeader)
	}
}

func TestAppendCSVQuoting(t *testing.T) {
	r := newResult()
	r.addMetric(Metric{Name: `odd,"name"`, Fixed: true, Value: 1})
	if got := string(r.AppendCSV(nil)); got != "\"odd,\"\"name\"\"\",,1,\n" {
		t.Errorf("quoting: %q", got)
	}
}

// TestAddDuplicateUpdates pins the names-vs-values invariant: a duplicate
// add with a different value updates the existing entry in place — same
// reporting position, no duplicate name, new value.
func TestAddDuplicateUpdates(t *testing.T) {
	r := newResult()
	r.addMetric(Metric{Name: "b", Value: 1})
	r.addMetric(Metric{Name: "a", Value: 2})
	r.addMetric(Metric{Name: "b", Value: 3, Samples: []float64{3}})
	names := r.Names()
	if len(names) != 2 || names[0] != "b" || names[1] != "a" {
		t.Fatalf("Names() = %v, want [b a]", names)
	}
	if v, _ := r.Get("b"); v != 3 {
		t.Errorf("duplicate add did not update: b = %v", v)
	}
	m, _ := r.Lookup("b")
	if len(m.Samples) != 1 || m.Samples[0] != 3 {
		t.Errorf("duplicate add did not replace samples: %v", m.Samples)
	}
	if len(r.metrics) != len(r.index) {
		t.Errorf("invariant broken: %d metrics, %d index entries", len(r.metrics), len(r.index))
	}
}

func TestAddCorruptedIndexPanics(t *testing.T) {
	r := newResult()
	r.addMetric(Metric{Name: "a", Value: 1})
	r.index["a"] = 7 // corrupt by hand
	defer func() {
		if recover() == nil {
			t.Error("expected a panic on a corrupted index")
		}
	}()
	r.addMetric(Metric{Name: "a", Value: 2})
}

func TestCloneAndLookupIndependence(t *testing.T) {
	orig := goldenResult()
	c := orig.Clone()
	if !c.Equal(orig) {
		t.Fatal("clone differs")
	}
	c.metrics[0].Samples[0] = 99
	if orig.metrics[0].Samples[0] == 99 {
		t.Error("clone shares sample storage with the original")
	}
	m, _ := orig.Lookup("Core cycles")
	m.Samples[0] = -1
	if orig.metrics[0].Samples[0] == -1 {
		t.Error("Lookup hands out shared sample storage")
	}
	orig.Metrics()[0].Samples[0] = -2
	if orig.metrics[0].Samples[0] == -2 {
		t.Error("Metrics hands out shared sample storage")
	}
}

func TestEqualComparesSamples(t *testing.T) {
	a, b := goldenResult(), goldenResult()
	if !a.Equal(b) {
		t.Fatal("identical results unequal")
	}
	b.metrics[0].Samples[1] = 5
	if a.Equal(b) {
		t.Error("Equal ignored a sample difference")
	}
	b = goldenResult()
	b.metrics[1].Event.Umask = 0x02
	if a.Equal(b) {
		t.Error("Equal ignored an event-spec difference")
	}
	b = goldenResult()
	b.metrics[1].Fixed = true
	if a.Equal(b) {
		t.Error("Equal ignored a fixed-flag difference")
	}
}

// TestRunResultCarriesSamplesAndSpecs runs a real evaluation and checks
// the typed metric contents: per-run samples sized by NMeasurements
// (deterministic kernel-mode runs make every sample equal the aggregate)
// and the event spec attached to programmable counters.
func TestRunResultCarriesSamplesAndSpecs(t *testing.T) {
	r := skylakeRunner(t, machine.Kernel)
	res, err := r.Run(Config{
		Code:          MustAsm("mov R14, [R14]"),
		CodeInit:      MustAsm("mov [R14], R14"),
		WarmUpCount:   1,
		NMeasurements: 5,
		Events:        perfcfg.MustParse("D1.01 MEM_LOAD_RETIRED.L1_HIT"),
	})
	if err != nil {
		t.Fatal(err)
	}
	cyc, ok := res.Lookup("Core cycles")
	if !ok || !cyc.Fixed {
		t.Fatalf("Core cycles metric missing or not fixed: %+v", cyc)
	}
	if len(cyc.Samples) != 5 {
		t.Fatalf("samples = %v, want 5 per-run values", cyc.Samples)
	}
	for _, s := range cyc.Samples {
		if s != cyc.Value {
			t.Errorf("deterministic kernel run: sample %v != aggregate %v", s, cyc.Value)
		}
	}
	hit, ok := res.Lookup("MEM_LOAD_RETIRED.L1_HIT")
	if !ok || hit.Fixed || hit.Event.EvtSel != 0xD1 || hit.Event.Umask != 0x01 {
		t.Errorf("L1_HIT metric lost its event spec: %+v", hit)
	}
}

func TestRunContextCancelled(t *testing.T) {
	r := skylakeRunner(t, machine.Kernel)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := r.RunContext(ctx, Config{Code: MustAsm("nop")})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext on a cancelled context = %v, want context.Canceled", err)
	}
	// The runner still works afterwards.
	if _, err := r.Run(Config{Code: MustAsm("nop")}); err != nil {
		t.Fatal(err)
	}
}
