package nano

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"

	"nanobench/internal/perfcfg"
)

// configJSON is the stable wire form of a Config, documented in
// docs/API.md. Machine code travels as standard base64 (encoding/json's
// []byte convention); on decode, "asm"/"asm_init" may carry Intel-syntax
// assembly instead, which is assembled on the spot. Events use the
// configuration-file line syntax ("D1.01 MEM_LOAD_RETIRED.L1_HIT"), one
// event per entry; the aggregate its canonical name ("min", "med",
// "avg"). Zero-valued fields are omitted, so a marshalled Config is
// minimal and Canonical defaults stay implicit.
type configJSON struct {
	Code     []byte `json:"code,omitempty"`
	Asm      string `json:"asm,omitempty"`
	CodeInit []byte `json:"code_init,omitempty"`
	AsmInit  string `json:"asm_init,omitempty"`

	UnrollCount   int `json:"unroll_count,omitempty"`
	LoopCount     int `json:"loop_count,omitempty"`
	NMeasurements int `json:"n_measurements,omitempty"`
	WarmUpCount   int `json:"warm_up_count,omitempty"`

	Aggregate string `json:"aggregate,omitempty"`

	BasicMode bool `json:"basic_mode,omitempty"`
	NoMem     bool `json:"no_mem,omitempty"`

	Events []string `json:"events,omitempty"`

	UseBigArea  bool `json:"use_big_area,omitempty"`
	DropSamples bool `json:"drop_samples,omitempty"`
}

// MarshalJSON encodes the config in the documented wire form: code as
// base64, events in configuration-file syntax, the aggregate by name.
// The encoding is deterministic, and UnmarshalJSON(MarshalJSON(c))
// reconstructs a config equal to c up to event-name whitespace
// normalization (perfcfg collapses runs of spaces inside names).
func (c Config) MarshalJSON() ([]byte, error) {
	cj := configJSON{
		Code:          c.Code,
		CodeInit:      c.CodeInit,
		UnrollCount:   c.UnrollCount,
		LoopCount:     c.LoopCount,
		NMeasurements: c.NMeasurements,
		WarmUpCount:   c.WarmUpCount,
		BasicMode:     c.BasicMode,
		NoMem:         c.NoMem,
		UseBigArea:    c.UseBigArea,
		DropSamples:   c.DropSamples,
	}
	if c.Aggregate != Min {
		cj.Aggregate = c.Aggregate.String()
	}
	cj.Events = EventLines(c.Events)
	return json.Marshal(cj)
}

// EventLines renders event specs in the wire format's configuration-file
// line syntax ("D1.01 MEM_LOAD_RETIRED.L1_HIT"), one line per event —
// the inverse of ParseEventLines. Both the Config and Sweep codecs emit
// events through it, so the wire syntax is defined in exactly one place.
func EventLines(events []perfcfg.EventSpec) []string {
	var lines []string
	for _, ev := range events {
		line := ev.Code()
		if ev.Name != "" {
			line += " " + ev.Name
		}
		lines = append(lines, line)
	}
	return lines
}

// ParseEventLines parses wire-format event lines into specs (nil for an
// empty set).
func ParseEventLines(lines []string) ([]perfcfg.EventSpec, error) {
	if len(lines) == 0 {
		return nil, nil
	}
	return perfcfg.Parse(strings.Join(lines, "\n"))
}

// UnmarshalJSON decodes the wire form. It is strict: unknown fields are
// an error (so a typo like "unrol_count" fails loudly instead of
// silently running the default), and "asm" and "code" (likewise
// "asm_init"/"code_init") are mutually exclusive.
func (c *Config) UnmarshalJSON(data []byte) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var cj configJSON
	if err := dec.Decode(&cj); err != nil {
		return fmt.Errorf("nano: config: %w", err)
	}

	code, err := wireCode("code", cj.Code, cj.Asm)
	if err != nil {
		return err
	}
	codeInit, err := wireCode("code_init", cj.CodeInit, cj.AsmInit)
	if err != nil {
		return err
	}

	events, err := ParseEventLines(cj.Events)
	if err != nil {
		return fmt.Errorf("nano: config: %w", err)
	}

	*c = Config{
		Code:          code,
		CodeInit:      codeInit,
		UnrollCount:   cj.UnrollCount,
		LoopCount:     cj.LoopCount,
		NMeasurements: cj.NMeasurements,
		WarmUpCount:   cj.WarmUpCount,
		BasicMode:     cj.BasicMode,
		NoMem:         cj.NoMem,
		Events:        events,
		UseBigArea:    cj.UseBigArea,
		DropSamples:   cj.DropSamples,
	}
	if cj.Aggregate != "" {
		agg, err := ParseAggregate(cj.Aggregate)
		if err != nil {
			return fmt.Errorf("nano: config: %w", err)
		}
		c.Aggregate = agg
	}
	return nil
}

// wireCode resolves one of a config's two code fields from its raw and
// assembly wire forms.
func wireCode(field string, raw []byte, asm string) ([]byte, error) {
	if asm == "" {
		return raw, nil
	}
	if len(raw) > 0 {
		return nil, fmt.Errorf("nano: config: both %q and %q given", field, "asm"+strings.TrimPrefix(field, "code"))
	}
	code, err := Asm(asm)
	if err != nil {
		return nil, fmt.Errorf("nano: config %s: %w", field, err)
	}
	return code, nil
}
