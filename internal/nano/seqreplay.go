package nano

import (
	"bytes"
	"context"
	"crypto/sha256"

	"nanobench/internal/perfcfg"
	"nanobench/internal/sim/cache"
	"nanobench/internal/sim/machine"
)

// Seq-replay fast path.
//
// The cache tools (RunSeqTrials: age graphs, policy inference, set
// dueling) measure L1/L2/L3 hit counts of straight-line kernel-mode load
// sequences, re-running each generated image NMeasurements times — and
// across trials, priming passes, and A/B variants, often dozens of times
// more. For these images the sequence of cache-hierarchy operations is
// state-independent: no branches, no interrupts, addresses fixed by the
// image bytes. The fast path exploits that by recording the hierarchy
// trace of one real run (Machine.SetTraceSink), verifying it against a
// second real run, and then replaying the trace directly against the
// live hierarchy (cache.Hierarchy.Replay): cache and replacement state
// evolve exactly as a real run would — the replay walk is the same
// lookup/fill/writeback code minus execution — while instruction
// simulation, address translation, and latency modelling are skipped
// entirely.
//
// Verification is defense in depth; all of it must pass twice before the
// first replay:
//
//   - two consecutive real runs must produce equal traces (operation
//     sequence and addresses; serve levels are allowed to differ),
//   - the sample predicted from the recorded trace (counting loads at
//     the target level between the two reads of the measured counter —
//     cache.PredictHits) must equal the machine's real sample on both
//     runs, pinning the window model,
//   - the run must retire no interrupts, and every store must target the
//     runner's aux region (store side effects outside it are not
//     replayed),
//   - the core's single-line fetch memo at run entry must not suppress
//     the image's entry-line fetch (the recorded trace assumes it is
//     fetched); after a replayed run the memo is restored to the trace's
//     last code line, so post-run core state matches a real run.
//
// Images that ever fail a check are blacklisted and run real forever;
// configurations outside the replayable shape (non-kernel mode, loops,
// multiple events, CPUID — whose latency draws the machine RNG shared
// with the allocator) never enter the fast path at all.
//
// Images additionally share verification at the template level. The seq
// generator emits one code shape per (sequence structure, level); the
// images of a sweep differ only in the block addresses baked into their
// operands, so state-independence is a property of the shape, not the
// instantiation. After seqTemplateTrust distinct images of a template
// (keyed by code length and target level — address changes never change
// the length) have each passed the full two-run trace-equality
// verification, further images of that template are trusted after a
// single recorded run — the per-image checks (interrupts, confined
// writes, predicted-vs-real sample) still all apply to that recording.
// Any verification anomaly anywhere in a template revokes its trust
// permanently, returning its future images to two-run verification.

// seqTraceCacheCap bounds the per-runner trace cache. Campaign loops
// cycle through far fewer images than this; on overflow the whole cache
// is dropped (entries are cheap to relearn: two real runs each).
const seqTraceCacheCap = 512

// seqTemplateTrust is the number of images of a template that must pass
// two-run verification before the template's later images are trusted
// after one recorded (and per-image-checked) run. One verified image
// suffices: the predicted-vs-real sample check on every later image's
// recording already catches any state dependence the first image missed,
// and a single anomaly revokes the template permanently.
const seqTemplateTrust = 1

const (
	// seqHitsSlot is the read slot of the single core event: three fixed
	// counters precede it (see buildGroups).
	seqHitsSlot = 3
	// seqCountIdx is the RDPMC index of programmable counter 0, which
	// buildGroups assigns to the first (only) core event.
	seqCountIdx = 0
)

type seqTraceEntry struct {
	ops      []cache.TraceOp
	lastLine uint64
	hasCode  bool
	resolved *cache.ResolvedTrace
	tmpl     *seqTemplate
	// state: 0 nothing recorded, 1 recorded once, 2 verified.
	state       int
	mismatches  int
	blacklisted bool
}

// seqTemplateKey identifies a generated code shape: images of one sweep
// share the shape and differ only in operand addresses, which never
// change the code length.
type seqTemplateKey struct {
	codeLen int
	level   int
}

// seqTemplate accumulates verification evidence across the images of one
// code shape.
type seqTemplate struct {
	verified int  // images that passed two-run trace-equality verification
	revoked  bool // an image of this template failed a verification check
}

// seqImageKey identifies a generated image pair by the content that
// determines its bytes within the RunSeqHits gate (kernel mode, basic,
// noMem, no loop, single event fixed by level): the benchmark code and
// init bodies, the event level, the unroll count, and the memory-area
// choice.
type seqImageKey struct {
	code    [32]byte
	init    [32]byte
	level   int
	unroll  int
	bigArea bool
}

// seqImagePair holds the generated A (unrolled) and B (empty-body)
// variant images of one configuration.
type seqImagePair struct {
	a, b []byte
}

type seqReplayState struct {
	entries   map[[32]byte]*seqTraceEntry
	templates map[seqTemplateKey]*seqTemplate
	// images memoizes generated image pairs: campaign loops re-probe the
	// same configurations across many passes, and regenerating a
	// byte-identical image (marker replacement, instruction encoding)
	// costs more than the replay that follows it. Image bytes depend only
	// on the key — never on machine or mapping state — so the memo
	// survives RebootAndRemap.
	images   map[seqImageKey]seqImagePair
	sink     cache.TraceSink
	disabled bool
	replays  uint64
	realRuns uint64
	// Two-slot MRU memo over the entry lookup: the run loops alternate
	// between at most two images (the A and B unroll variants), and a
	// bytes.Equal probe is far cheaper than hashing the image.
	memoCode [2][]byte
	memoEnt  [2]*seqTraceEntry
}

// lookup returns the trace entry for an image, creating it (and its
// template) on first sight.
func (sr *seqReplayState) lookup(code []byte, level int) *seqTraceEntry {
	for k, ent := range sr.memoEnt {
		if ent != nil && bytes.Equal(sr.memoCode[k], code) {
			return ent
		}
	}
	key := sha256.Sum256(code)
	ent := sr.entries[key]
	if ent == nil {
		if len(sr.entries) >= seqTraceCacheCap {
			sr.entries = make(map[[32]byte]*seqTraceEntry)
		}
		tk := seqTemplateKey{codeLen: len(code), level: level}
		tmpl := sr.templates[tk]
		if tmpl == nil {
			if len(sr.templates) >= seqTraceCacheCap {
				sr.templates = make(map[seqTemplateKey]*seqTemplate)
			}
			tmpl = &seqTemplate{}
			sr.templates[tk] = tmpl
		}
		ent = &seqTraceEntry{tmpl: tmpl}
		sr.entries[key] = ent
	}
	// The image slice is freshly generated per RunSeqHits call and never
	// mutated afterwards, so the memo can alias it instead of copying.
	sr.memoCode[1], sr.memoEnt[1] = sr.memoCode[0], sr.memoEnt[0]
	sr.memoCode[0], sr.memoEnt[0] = code, ent
	return ent
}

// dropMemo invalidates the lookup memo (entries were discarded).
func (sr *seqReplayState) dropMemo() {
	sr.memoCode[0], sr.memoCode[1] = nil, nil
	sr.memoEnt[0], sr.memoEnt[1] = nil, nil
}

func (r *Runner) seqState() *seqReplayState {
	if r.seq == nil {
		r.seq = &seqReplayState{
			entries:   make(map[[32]byte]*seqTraceEntry),
			templates: make(map[seqTemplateKey]*seqTemplate),
			images:    make(map[seqImageKey]seqImagePair),
		}
	}
	return r.seq
}

// generateSeqImages returns the memoized A/B variant images for cfg,
// generating and caching them on first sight.
func (r *Runner) generateSeqImages(cfg Config, g counterGroup, level int) (seqImagePair, error) {
	sr := r.seqState()
	ik := seqImageKey{
		code:    sha256.Sum256(cfg.Code),
		level:   level,
		unroll:  cfg.UnrollCount,
		bigArea: cfg.UseBigArea,
	}
	if len(cfg.CodeInit) > 0 {
		ik.init = sha256.Sum256(cfg.CodeInit)
	}
	if pair, ok := sr.images[ik]; ok {
		return pair, nil
	}
	codeA, err := r.generate(cfg, g, cfg.UnrollCount)
	if err != nil {
		return seqImagePair{}, err
	}
	codeB, err := r.generate(cfg, g, 0)
	if err != nil {
		return seqImagePair{}, err
	}
	if len(sr.images) >= seqTraceCacheCap {
		sr.images = make(map[seqImageKey]seqImagePair)
	}
	pair := seqImagePair{a: codeA, b: codeB}
	sr.images[ik] = pair
	return pair, nil
}

// SetSeqReplay enables or disables the seq-replay fast path (enabled by
// default). The equivalence tests disable it to compare against fully
// simulated runs.
func (r *Runner) SetSeqReplay(on bool) { r.seqState().disabled = !on }

// SeqReplayStats reports how many runs the fast path replayed vs ran on
// the machine since the runner was built.
func (r *Runner) SeqReplayStats() (replays, realRuns uint64) {
	s := r.seqState()
	return s.replays, s.realRuns
}

// seqHitLevel maps a cache-hit event spec (MEM_LOAD_RETIRED, event 0xD1)
// to the hierarchy level it counts hits at.
func seqHitLevel(ev perfcfg.EventSpec) (int, bool) {
	if ev.Kind != perfcfg.Core || ev.EvtSel != 0xD1 {
		return 0, false
	}
	switch ev.Umask {
	case 0x01:
		return 1, true
	case 0x02:
		return 2, true
	case 0x04:
		return 3, true
	}
	return 0, false
}

// containsCPUID scans code for an 0F A2 (CPUID) byte pair. False
// positives (the pair inside an immediate) merely force the slow path.
func containsCPUID(code []byte) bool {
	for i := 0; i+1 < len(code); i++ {
		if code[i] == 0x0F && code[i+1] == 0xA2 {
			return true
		}
	}
	return false
}

// RunSeqHits evaluates a single-event cache-hit configuration through
// the seq-replay fast path and returns the per-measurement hit samples —
// exactly the Samples of the event's Metric under RunContext, bit-
// identical (each sample is variant A's raw count minus variant B's,
// over the unroll count). ok=false means the configuration is outside
// the replayable shape (or the fast path is disabled) and the caller
// must fall back to RunContext; no machine state was touched in that
// case. Only the hit samples are produced: fixed-counter values (cycles,
// instructions) depend on timing, which replay does not model.
func (r *Runner) RunSeqHits(ctx context.Context, cfg Config) ([]float64, bool, error) {
	cfg = cfg.applyDefaults()
	if r.seqState().disabled || r.mode != machine.Kernel ||
		!cfg.BasicMode || !cfg.NoMem || cfg.LoopCount != 0 || len(cfg.Events) != 1 {
		return nil, false, nil
	}
	level, ok := seqHitLevel(cfg.Events[0])
	if !ok {
		return nil, false, nil
	}
	if containsCPUID(cfg.Code) || containsCPUID(cfg.CodeInit) {
		return nil, false, nil
	}
	if err := r.validate(&cfg); err != nil {
		return nil, false, nil // let the slow path surface the error
	}
	groups, err := r.buildGroups(cfg)
	if err != nil || len(groups) != 1 || len(groups[0].core) != 1 || len(groups[0].reads) != seqHitsSlot+1 {
		return nil, false, nil
	}
	g := groups[0]
	if err := r.programCounters(g); err != nil {
		return nil, false, nil
	}
	pair, err := r.generateSeqImages(cfg, g, level)
	if err != nil || len(pair.a) > CodeSize {
		return nil, false, nil
	}
	runsA, err := r.seqVariantRuns(ctx, cfg, pair.a, level)
	if err != nil {
		return nil, true, err
	}
	runsB, err := r.seqVariantRuns(ctx, cfg, pair.b, level)
	if err != nil {
		return nil, true, err
	}
	denom := float64(cfg.UnrollCount) // max(1, LoopCount)·UnrollCount; LoopCount is 0 here
	samples := make([]float64, len(runsA))
	for k := range samples {
		samples[k] = (runsA[k] - runsB[k]) / denom
	}
	return samples, true, nil
}

// seqVariantRuns runs one unroll variant's warm-up + measurement series,
// replaying runs whose image has a verified trace and running the rest
// on the machine (recording until verified), and returns the raw
// per-measurement values of the hits read slot.
func (r *Runner) seqVariantRuns(ctx context.Context, cfg Config, code []byte, level int) ([]float64, error) {
	sr := r.seqState()
	ent := sr.lookup(code, level)
	entryLine := uint64(CodeBase) &^ (uint64(r.M.Hier.LineSize()) - 1)
	out := make([]float64, 0, cfg.NMeasurements)
	for i := -cfg.WarmUpCount; i < cfg.NMeasurements; i++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		memoLine, hasMemo := r.M.FetchLineMemo()
		suppressed := hasMemo && memoLine == entryLine
		if ent.state == 2 && !ent.blacklisted && !suppressed {
			if ent.resolved == nil {
				ent.resolved = r.M.Hier.CompileTrace(ent.ops, seqCountIdx, level)
			}
			if hits, ok := r.M.Hier.Replay(ent.resolved); ok {
				if ent.hasCode {
					r.M.SetFetchLineMemo(ent.lastLine)
				}
				if i >= 0 {
					out = append(out, float64(hits))
				}
				sr.replays++
				continue
			}
		}
		// Real run: install the image unless the identical bytes are
		// already installed with their pre-decoded program intact.
		if !(r.M.ProgramValid(CodeBase, len(code)) && bytes.Equal(code, r.lastCode)) {
			if err := r.M.WriteCode(CodeBase, code); err != nil {
				return nil, err
			}
			r.lastCode = append(r.lastCode[:0], code...)
		}
		record := ent.state < 2 && !ent.blacklisted && !suppressed
		if record {
			sr.sink.Reset()
			r.M.SetTraceSink(&sr.sink)
		}
		r.M.PMU.ResetAll(r.M.Cycle())
		rr, err := r.M.Run(CodeBase)
		if record {
			r.M.SetTraceSink(nil)
		}
		if err != nil {
			return nil, err
		}
		v, _ := r.M.Mem.Read64(auxNoMemOut + uint32(8*seqHitsSlot))
		if record {
			r.seqLearn(ent, rr, int64(v), level)
		}
		if i >= 0 {
			out = append(out, float64(v))
		}
		sr.realRuns++
	}
	return out, nil
}

// seqLearn folds one recorded real run into the trace entry's
// record → verify state machine.
func (r *Runner) seqLearn(ent *seqTraceEntry, rr machine.RunResult, sample int64, level int) {
	sink := &r.seq.sink
	if rr.Interrupts > 0 || !r.seqWritesConfined(sink.Ops) {
		ent.blacklisted = true
		ent.revokeTemplate()
		return
	}
	if int64(cache.PredictHits(sink.Ops, seqCountIdx, level)) != sample {
		// The program-order window model does not hold for this image.
		ent.blacklisted = true
		ent.revokeTemplate()
		return
	}
	if ent.state == 1 {
		if cache.TraceEqual(ent.ops, sink.Ops) {
			ent.state = 2
			if ent.tmpl != nil {
				ent.tmpl.verified++
			}
			return
		}
		ent.mismatches++
		ent.revokeTemplate()
		if ent.mismatches >= 2 {
			ent.blacklisted = true
			return
		}
	}
	ent.ops = append(ent.ops[:0], sink.Ops...)
	ent.lastLine = sink.LastCodeLine
	ent.hasCode = sink.HasCode
	ent.resolved = nil
	ent.state = 1
	if ent.tmpl != nil && !ent.tmpl.revoked && ent.tmpl.verified >= seqTemplateTrust {
		// The code shape has repeatedly proven state-independent; trust
		// this image's (per-image-checked) single recording.
		ent.state = 2
	}
}

// revokeTemplate permanently withdraws template-level trust after any
// verification anomaly in one of its images.
func (e *seqTraceEntry) revokeTemplate() {
	if e.tmpl != nil {
		e.tmpl.revoked = true
	}
}

// seqWritesConfined reports whether every store in the trace targets the
// runner's aux region (register save area, counter dumps). Replay
// reproduces stores' cache effects but not their memory contents, which
// is sound only for the aux slots real runs always rewrite before
// reading.
func (r *Runner) seqWritesConfined(ops []cache.TraceOp) bool {
	var lo, hi uint64
	for _, reg := range r.regions {
		if reg.virt == AuxBase {
			lo, hi = reg.phys, reg.phys+reg.size
			break
		}
	}
	if hi == 0 {
		return false
	}
	for i := range ops {
		op := &ops[i]
		if op.Kind == cache.OpData && op.Write && (op.Phys < lo || op.Phys >= hi) {
			return false
		}
	}
	return true
}
