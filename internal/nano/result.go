package nano

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"nanobench/internal/perfcfg"
)

// Metric is one measured counter of a Result: its reporting name, the
// event specification it was programmed with, the aggregated value, and
// the raw per-run samples the aggregate was computed from.
type Metric struct {
	// Name is the counter's reporting name ("Core cycles",
	// "MEM_LOAD_RETIRED.L1_HIT", ...).
	Name string
	// Event is the performance-event specification behind the counter.
	// It is the zero value for the three fixed-function counters (Fixed
	// is set instead).
	Event perfcfg.EventSpec
	// Fixed marks a fixed-function counter (instructions retired, core
	// cycles, reference cycles), which has no programmable event spec.
	Fixed bool
	// Value is the aggregated, overhead-subtracted, per-instruction
	// counter value: Config.Aggregate is applied to each unroll variant's
	// run series first and the aggregates are then subtracted, exactly as
	// in Section III-C of the paper.
	Value float64
	// Samples are the raw per-run, overhead-subtracted, per-instruction
	// values: sample k pairs run k of the two unroll variants. They make
	// min/median/avg recoverable post-hoc (Aggregate(Samples) may differ
	// in the last bits from Value, which aggregates before subtracting).
	Samples []float64
}

// Result holds the measured counters of one benchmark evaluation, in
// counter (reporting) order.
type Result struct {
	metrics []Metric
	index   map[string]int
}

func newResult() *Result {
	return &Result{index: map[string]int{}}
}

// addMetric records a metric, replacing any previous metric of the same
// name in place (the reporting position is kept). It enforces the
// names-vs-values consistency invariant: the index must agree with the
// metric slice at all times.
func (r *Result) addMetric(m Metric) {
	if i, dup := r.index[m.Name]; dup {
		if i < 0 || i >= len(r.metrics) || r.metrics[i].Name != m.Name {
			panic(fmt.Sprintf("nano: result index corrupted: %q maps to slot %d", m.Name, i))
		}
		r.metrics[i] = m
		return
	}
	r.index[m.Name] = len(r.metrics)
	r.metrics = append(r.metrics, m)
}

// Clone returns a deep copy sharing no state with r; mutating one never
// affects the other. The batch scheduler's result cache hands out clones so
// callers can hold the results of repeated sweeps independently.
func (r *Result) Clone() *Result {
	c := &Result{
		metrics: make([]Metric, len(r.metrics)),
		index:   make(map[string]int, len(r.index)),
	}
	for i, m := range r.metrics {
		m.Samples = append([]float64(nil), m.Samples...)
		c.metrics[i] = m
		c.index[m.Name] = i
	}
	return c
}

// Equal reports whether two results carry the same counters — names,
// event specs, fixed flags — in the same reporting order, with
// bit-identical aggregated values and per-run samples.
func (r *Result) Equal(o *Result) bool {
	if r == nil || o == nil {
		return r == o
	}
	if len(r.metrics) != len(o.metrics) {
		return false
	}
	for i, m := range r.metrics {
		om := o.metrics[i]
		if om.Name != m.Name || om.Event != m.Event || om.Fixed != m.Fixed ||
			om.Value != m.Value || len(om.Samples) != len(m.Samples) {
			return false
		}
		for k, s := range m.Samples {
			if om.Samples[k] != s {
				return false
			}
		}
	}
	return true
}

// Get returns the aggregated value for a counter name.
func (r *Result) Get(name string) (float64, bool) {
	i, ok := r.index[name]
	if !ok {
		return 0, false
	}
	return r.metrics[i].Value, true
}

// MustGet returns the value for name, panicking if absent (tests and
// examples use it for brevity).
func (r *Result) MustGet(name string) float64 {
	v, ok := r.Get(name)
	if !ok {
		panic("nano: no counter named " + name)
	}
	return v
}

// Lookup returns the full metric for a counter name. The returned
// metric's sample slice is a copy; mutating it never affects r.
func (r *Result) Lookup(name string) (Metric, bool) {
	i, ok := r.index[name]
	if !ok {
		return Metric{}, false
	}
	m := r.metrics[i]
	m.Samples = append([]float64(nil), m.Samples...)
	return m, true
}

// Metrics returns the measured counters in reporting order, as a deep
// copy safe for the caller to retain and mutate.
func (r *Result) Metrics() []Metric {
	out := make([]Metric, len(r.metrics))
	for i, m := range r.metrics {
		m.Samples = append([]float64(nil), m.Samples...)
		out[i] = m
	}
	return out
}

// Names returns the counter names in reporting order.
func (r *Result) Names() []string {
	names := make([]string, len(r.metrics))
	for i, m := range r.metrics {
		names[i] = m.Name
	}
	return names
}

// String formats the result like the tool's output in Section III-A:
//
//	Instructions retired: 1.00
//	Core cycles: 4.00
//	...
func (r *Result) String() string {
	var sb strings.Builder
	for _, m := range r.metrics {
		fmt.Fprintf(&sb, "%s: %.2f\n", m.Name, m.Value)
	}
	return sb.String()
}

// metricJSON is the stable wire form of one metric. The event is encoded
// in configuration-file syntax ("D1.01", "MSR.E8", "CBO.LOOKUP") and
// omitted for fixed-function counters.
type metricJSON struct {
	Name    string    `json:"name"`
	Event   string    `json:"event,omitempty"`
	Value   float64   `json:"value"`
	Samples []float64 `json:"samples,omitempty"`
}

// MarshalJSON encodes the result as {"metrics":[...]} with the counters
// in reporting order. The encoding is deterministic: equal results (any
// worker count, cold or cached) marshal to identical bytes.
func (r *Result) MarshalJSON() ([]byte, error) {
	metrics := make([]metricJSON, len(r.metrics))
	for i, m := range r.metrics {
		mj := metricJSON{Name: m.Name, Value: m.Value, Samples: m.Samples}
		if !m.Fixed {
			mj.Event = m.Event.Code()
		}
		metrics[i] = mj
	}
	return json.Marshal(struct {
		Metrics []metricJSON `json:"metrics"`
	}{metrics})
}

// UnmarshalJSON decodes a result previously encoded with MarshalJSON.
func (r *Result) UnmarshalJSON(data []byte) error {
	var in struct {
		Metrics []metricJSON `json:"metrics"`
	}
	if err := json.Unmarshal(data, &in); err != nil {
		return err
	}
	*r = *newResult()
	for _, mj := range in.Metrics {
		m := Metric{Name: mj.Name, Value: mj.Value, Samples: mj.Samples, Fixed: mj.Event == ""}
		if mj.Event != "" {
			// Parse the event code with a placeholder name, then attach the
			// metric name verbatim: names never pass through the
			// configuration-line syntax, so '#' or odd whitespace in a name
			// round-trips unharmed.
			specs, err := perfcfg.Parse(mj.Event + " x")
			if err != nil {
				return fmt.Errorf("nano: metric %q: %w", mj.Name, err)
			}
			if len(specs) != 1 {
				return fmt.Errorf("nano: metric %q: malformed event %q", mj.Name, mj.Event)
			}
			m.Event = specs[0]
			m.Event.Name = mj.Name
		}
		r.addMetric(m)
	}
	return nil
}

// CSVHeader is the header row matching AppendCSV's records.
const CSVHeader = "metric,event,value,samples"

// AppendCSV appends one CSV record per metric (in reporting order) to b
// and returns the extended buffer. Values use the shortest round-trip
// float formatting; samples are ';'-joined inside the last field. The
// output is deterministic for equal results.
func (r *Result) AppendCSV(b []byte) []byte {
	for _, m := range r.metrics {
		b = appendCSVField(b, m.Name)
		b = append(b, ',')
		if !m.Fixed {
			b = appendCSVField(b, m.Event.Code())
		}
		b = append(b, ',')
		b = strconv.AppendFloat(b, m.Value, 'g', -1, 64)
		b = append(b, ',')
		for i, s := range m.Samples {
			if i > 0 {
				b = append(b, ';')
			}
			b = strconv.AppendFloat(b, s, 'g', -1, 64)
		}
		b = append(b, '\n')
	}
	return b
}

// appendCSVField appends a field, quoting it per RFC 4180 when needed.
func appendCSVField(b []byte, s string) []byte {
	if !strings.ContainsAny(s, ",\"\n\r") {
		return append(b, s...)
	}
	b = append(b, '"')
	b = append(b, strings.ReplaceAll(s, `"`, `""`)...)
	return append(b, '"')
}

// aggregate applies the configured aggregate function (Section III-C):
// minimum, median, or the arithmetic mean excluding the top and bottom 20%
// of the values.
func aggregate(vals []float64, agg Aggregate) float64 {
	if len(vals) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	switch agg {
	case Min:
		return sorted[0]
	case Median:
		n := len(sorted)
		if n%2 == 1 {
			return sorted[n/2]
		}
		return (sorted[n/2-1] + sorted[n/2]) / 2
	case Avg:
		n := len(sorted)
		trim := n / 5
		core := sorted[trim : n-trim]
		sum := 0.0
		for _, v := range core {
			sum += v
		}
		return sum / float64(len(core))
	}
	return sorted[0]
}
