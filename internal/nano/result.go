package nano

import (
	"fmt"
	"sort"
	"strings"
)

// Result holds the aggregated, overhead-subtracted, per-instruction
// counter values of one benchmark evaluation, in counter order.
type Result struct {
	names  []string
	values map[string]float64
}

func newResult() *Result {
	return &Result{values: map[string]float64{}}
}

func (r *Result) add(name string, v float64) {
	if _, dup := r.values[name]; !dup {
		r.names = append(r.names, name)
	}
	r.values[name] = v
}

// Clone returns a deep copy sharing no state with r; mutating one never
// affects the other. The batch scheduler's result cache hands out clones so
// callers can hold the results of repeated sweeps independently.
func (r *Result) Clone() *Result {
	c := &Result{
		names:  append([]string(nil), r.names...),
		values: make(map[string]float64, len(r.values)),
	}
	for k, v := range r.values {
		c.values[k] = v
	}
	return c
}

// Equal reports whether two results carry the same counters, in the same
// reporting order, with bit-identical values.
func (r *Result) Equal(o *Result) bool {
	if r == nil || o == nil {
		return r == o
	}
	if len(r.names) != len(o.names) {
		return false
	}
	for i, n := range r.names {
		if o.names[i] != n || r.values[n] != o.values[n] {
			return false
		}
	}
	return true
}

// Get returns the value for a counter name.
func (r *Result) Get(name string) (float64, bool) {
	v, ok := r.values[name]
	return v, ok
}

// MustGet returns the value for name, panicking if absent (tests and
// examples use it for brevity).
func (r *Result) MustGet(name string) float64 {
	v, ok := r.values[name]
	if !ok {
		panic("nano: no counter named " + name)
	}
	return v
}

// Names returns the counter names in reporting order.
func (r *Result) Names() []string { return append([]string(nil), r.names...) }

// String formats the result like the tool's output in Section III-A:
//
//	Instructions retired: 1.00
//	Core cycles: 4.00
//	...
func (r *Result) String() string {
	var sb strings.Builder
	for _, n := range r.names {
		fmt.Fprintf(&sb, "%s: %.2f\n", n, r.values[n])
	}
	return sb.String()
}

// aggregate applies the configured aggregate function (Section III-C):
// minimum, median, or the arithmetic mean excluding the top and bottom 20%
// of the values.
func aggregate(vals []float64, agg Aggregate) float64 {
	if len(vals) == 0 {
		return 0
	}
	sorted := append([]float64(nil), vals...)
	sort.Float64s(sorted)
	switch agg {
	case Min:
		return sorted[0]
	case Median:
		n := len(sorted)
		if n%2 == 1 {
			return sorted[n/2]
		}
		return (sorted[n/2-1] + sorted[n/2]) / 2
	case Avg:
		n := len(sorted)
		trim := n / 5
		core := sorted[trim : n-trim]
		sum := 0.0
		for _, v := range core {
			sum += v
		}
		return sum / float64(len(core))
	}
	return sorted[0]
}
