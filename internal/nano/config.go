// Package nano implements nanoBench itself: generation of measurement code
// (Algorithm 1 of the paper), the benchmark runner (Algorithm 2), the
// two-run overhead subtraction, warm-up runs, aggregate functions,
// automatic counter grouping, the noMem mode, and the magic byte sequences
// for pausing and resuming performance counting.
//
// Config describes one evaluation and Result holds its typed, measured
// counters. Both carry deterministic JSON codecs — the wire forms the
// nanobenchd server speaks, documented in docs/API.md and pinned by
// golden tests — and Result additionally exports CSV (AppendCSV).
package nano

import (
	"fmt"

	"nanobench/internal/perfcfg"
	"nanobench/internal/x86"
)

// Aggregate selects how the per-run measurements are combined
// (Section III-C).
type Aggregate int

// Aggregate functions.
const (
	// Min reports the minimum over all runs.
	Min Aggregate = iota
	// Median reports the median.
	Median
	// Avg reports the arithmetic mean excluding the top and bottom 20%.
	Avg
)

// String renders the aggregate by its canonical wire name ("min", "med",
// "avg"), a form ParseAggregate accepts.
func (a Aggregate) String() string {
	switch a {
	case Min:
		return "min"
	case Median:
		return "med"
	case Avg:
		return "avg"
	}
	return fmt.Sprintf("Aggregate(%d)", int(a))
}

// ParseAggregate parses an aggregate name.
func ParseAggregate(s string) (Aggregate, error) {
	switch s {
	case "min", "MIN", "Min":
		return Min, nil
	case "med", "median", "MED", "Median":
		return Median, nil
	case "avg", "AVG", "Avg", "mean":
		return Avg, nil
	}
	return Min, fmt.Errorf("nano: unknown aggregate %q (want min, med, or avg)", s)
}

// Config describes one microbenchmark evaluation.
type Config struct {
	// Code is the machine code of the main part of the microbenchmark.
	Code []byte
	// CodeInit is executed once before the measurement starts; it may set
	// registers and memory to arbitrary values (Section III-A).
	CodeInit []byte

	// UnrollCount is the number of copies of Code inside the (optional)
	// loop; LoopCount > 0 adds a loop using register R15 (Section III-F).
	UnrollCount int
	LoopCount   int

	// NMeasurements is the number of timed benchmark runs; WarmUpCount
	// runs are executed first and discarded (Sections III-C, III-H).
	// WarmUpCount 0 means "use the ambient default" (the tool default, or
	// a session's WithWarmUp); NoWarmUp requests explicitly zero warm-up
	// runs even under a session default.
	NMeasurements int
	WarmUpCount   int

	Aggregate Aggregate

	// BasicMode uses a localUnrollCount of 0 for the second run instead
	// of 2×UnrollCount (Section III-C).
	BasicMode bool

	// NoMem stores counter values in registers instead of memory
	// (Section III-I). The microbenchmark must then preserve RAX, RCX,
	// RDX, and R8..R12.
	NoMem bool

	// Events are the performance events to measure, typically parsed from
	// a configuration file. If there are more core events than
	// programmable counters, the benchmark is run multiple times with
	// different counter configurations (Section III-J).
	Events []perfcfg.EventSpec

	// UseBigArea points R14 at the physically-contiguous large memory
	// area instead of its default 1 MB area (Section III-G); the runner
	// must have allocated it with AllocBigArea first.
	UseBigArea bool

	// DropSamples discards the raw per-run samples after aggregation:
	// every Metric of the Result carries only its aggregated Value. For
	// million-config sweeps this cuts both the result-cache footprint and
	// the deep-copy cost of every cache hit (each retained sample series
	// is NMeasurements float64s per metric). Sessions can impose it
	// session-wide with WithSampleRetention(false); the wire form is the
	// config's "drop_samples" field (docs/API.md).
	DropSamples bool
}

// Canonical returns the configuration with every defaulted field made
// explicit, so that two configs describing the same evaluation compare (and
// hash) identically. The batch scheduler keys its result cache on the
// canonical form; a config and its canonicalization always produce the same
// Result.
func (c Config) Canonical() Config { return c.applyDefaults() }

// IsZero reports whether every field of the config is its zero value
// (the wire codecs omit an all-default base config entirely).
func (c Config) IsZero() bool {
	return len(c.Code) == 0 && len(c.CodeInit) == 0 &&
		c.UnrollCount == 0 && c.LoopCount == 0 &&
		c.NMeasurements == 0 && c.WarmUpCount == 0 &&
		c.Aggregate == Min && !c.BasicMode && !c.NoMem &&
		len(c.Events) == 0 && !c.UseBigArea && !c.DropSamples
}

// NoWarmUp as a WarmUpCount requests explicitly zero warm-up runs; unlike
// the zero value it is never overridden by a session-wide default.
const NoWarmUp = -1

// applyDefaults fills zero fields with the tool's defaults.
func (c Config) applyDefaults() Config {
	if c.UnrollCount == 0 {
		c.UnrollCount = DefaultUnrollCount
	}
	if c.NMeasurements == 0 {
		c.NMeasurements = DefaultNMeasurements
	}
	switch {
	case c.WarmUpCount == 0:
		c.WarmUpCount = DefaultWarmUpCount
	case c.WarmUpCount == NoWarmUp:
		c.WarmUpCount = 0
	}
	return c
}

// The tool's defaults, encoded once: Config.Canonical applies them, and
// the cmd/nanobench flag declarations inherit them instead of duplicating
// the numbers.
const (
	// DefaultUnrollCount is the number of copies of the benchmark code.
	DefaultUnrollCount = 100
	// DefaultLoopCount is the loop iteration count (0: no loop).
	DefaultLoopCount = 0
	// DefaultNMeasurements is the number of timed benchmark runs.
	DefaultNMeasurements = 10
	// DefaultWarmUpCount is the number of discarded initial runs. It
	// matches the original tool's default of zero warm-up runs; sweeps
	// that want warmed caches/predictors opt in per config (or via the
	// facade session's WithWarmUp option).
	DefaultWarmUpCount = 0
)

// Asm assembles Intel-syntax source into microbenchmark code; it is a thin
// convenience wrapper over the x86 assembler.
func Asm(src string) ([]byte, error) { return x86.Assemble(src) }

// MustAsm is Asm that panics on error.
func MustAsm(src string) []byte { return x86.MustAssemble(src) }

// Magic byte sequences (Section III-I): embedding these in microbenchmark
// code pauses/resumes performance counting. The generator replaces them
// with WRMSR sequences to IA32_PERF_GLOBAL_CTRL, so they work only in
// kernel mode.
var (
	PauseCountingBytes  = []byte{0x0F, 0x0B, 'P', 'A', 'U', 'S'}
	ResumeCountingBytes = []byte{0x0F, 0x0B, 'R', 'E', 'S', 'M'}
)
