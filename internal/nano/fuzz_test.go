package nano

import (
	"bytes"
	"testing"
)

// FuzzConfigUnmarshalJSON throws hostile wire bodies at the strict Config
// codec — the exact bytes /v1/run accepts from the network. Invariants:
// no panic; an accepted config re-marshals, and the marshalled form is a
// fixed point (unmarshal∘marshal is the identity on canonical bytes, the
// property the docs/API.md golden bodies rely on).
func FuzzConfigUnmarshalJSON(f *testing.F) {
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"asm":"nop","unroll_count":100,"n_measurements":10}`))
	f.Add([]byte(`{"code":"kA==","loop_count":2,"aggregate":"med"}`))
	f.Add([]byte(`{"events":["0E.01 UOPS_ISSUED.ANY","A1.01 PORT0"]}`))
	f.Add([]byte(`{"events":["CBO.LOOKUP LLC","MSR.E8 APERF"],"basic_mode":true}`))
	f.Add([]byte(`{"asm":"mov rax, [r14]; add rbx, rax","warm_up_count":3}`))
	f.Add([]byte(`{"asm":"nop","code":"kA=="}`))
	f.Add([]byte(`{"unrol_count":1}`))
	f.Add([]byte(`{"aggregate":"bogus"}`))
	f.Add([]byte(`null`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var c Config
		if err := c.UnmarshalJSON(data); err != nil {
			return
		}
		wire, err := c.MarshalJSON()
		if err != nil {
			t.Fatalf("accepted config failed to marshal: %v\ninput: %q", err, data)
		}
		var c2 Config
		if err := c2.UnmarshalJSON(wire); err != nil {
			t.Fatalf("re-unmarshalling own output failed: %v\nwire: %s", err, wire)
		}
		wire2, err := c2.MarshalJSON()
		if err != nil {
			t.Fatalf("second marshal failed: %v", err)
		}
		if !bytes.Equal(wire, wire2) {
			t.Fatalf("marshal is not a fixed point:\n first: %s\nsecond: %s", wire, wire2)
		}
	})
}
