package nano

import (
	"bytes"
	"fmt"

	"nanobench/internal/sim/machine"
	"nanobench/internal/x86"
)

// generate builds the benchmark function of Algorithm 1 as machine code:
//
//	saveRegs
//	initRegs (memory-area pointers, noMem accumulators)
//	codeInit
//	m1 <- readPerfCtrs
//	[mov r15, loopCount]
//	code ... code (localUnroll copies)    [dec r15; jnz back]
//	m2 <- readPerfCtrs
//	(noMem: store accumulators)
//	restoreRegs
//	ret
//
// The counter-reading sequences contain no calls or branches
// (Section IV-B); they use LFENCE for serialization (Section IV-A1).
func (r *Runner) generate(cfg Config, g counterGroup, localUnroll int) ([]byte, error) {
	var buf []byte

	emit := func(ins ...x86.Instr) error {
		var err error
		for _, in := range ins {
			buf, err = x86.EncodeInstr(buf, in)
			if err != nil {
				return err
			}
		}
		return nil
	}

	// Pre-process the benchmark code: replace the pause/resume magic byte
	// sequences before unrolling so every copy gets the patch
	// (Section IV-B).
	ctl := globalCtlValue(g)
	body, err := r.replaceMarkers(cfg.Code, cfg.NoMem, ctl)
	if err != nil {
		return nil, err
	}
	init, err := r.replaceMarkers(cfg.CodeInit, cfg.NoMem, ctl)
	if err != nil {
		return nil, err
	}

	// Size the buffer for the dominant terms (unrolled body, init, the
	// fixed save/init/restore scaffolding and two counter-read sequences)
	// so the image is built in a single allocation. The estimate only has
	// to be close: append still grows the slice if a counter-read
	// sequence runs long.
	buf = make([]byte, 0, 1024+len(init)+localUnroll*len(body)+128*len(g.reads))

	// --- saveRegs ---
	for gp := 0; gp < x86.NumGP; gp++ {
		if err := emit(x86.I(x86.MOV, x86.MemAt(auxSaveGP+uint32(8*gp)), x86.Reg(gp))); err != nil {
			return nil, err
		}
	}
	for xm := 0; xm < x86.NumXMM; xm++ {
		if err := emit(x86.I(x86.MOVAPS, x86.MemAt(auxSaveXMM+uint32(16*xm)), x86.XMM0+x86.Reg(xm))); err != nil {
			return nil, err
		}
	}

	// --- initRegs: memory-area pointers (Section III-G) ---
	r14 := int64(AreaBase)
	if cfg.UseBigArea {
		r14 = int64(BigAreaBase)
	}
	initRegs := []x86.Instr{
		x86.I(x86.MOV, x86.R14, x86.Imm(r14)),
		x86.I(x86.MOV, x86.RDI, x86.Imm(AreaBase+1*AreaSize)),
		x86.I(x86.MOV, x86.RSI, x86.Imm(AreaBase+2*AreaSize)),
		x86.I(x86.MOV, x86.RBP, x86.Imm(AreaBase+3*AreaSize+AreaSize/2)),
		x86.I(x86.MOV, x86.RSP, x86.Imm(AreaBase+4*AreaSize+AreaSize/2)),
	}
	if cfg.NoMem {
		for s := 0; s < len(g.reads); s++ {
			initRegs = append(initRegs, x86.I(x86.MOV, x86.R8+x86.Reg(s), x86.Imm(0)))
		}
	}
	if err := emit(initRegs...); err != nil {
		return nil, err
	}

	// --- codeInit ---
	buf = append(buf, init...)

	// --- m1 <- readPerfCtrs ---
	buf, err = r.emitReadCtrs(buf, cfg, g, auxM1, true)
	if err != nil {
		return nil, err
	}

	// --- main part: optional loop around localUnroll copies ---
	if cfg.LoopCount > 0 {
		if err := emit(x86.I(x86.MOV, x86.R15, x86.Imm(int64(cfg.LoopCount)))); err != nil {
			return nil, err
		}
	}
	loopStart := len(buf)
	for u := 0; u < localUnroll; u++ {
		buf = append(buf, body...)
	}
	if cfg.LoopCount > 0 {
		if err := emit(x86.I(x86.DEC, x86.R15)); err != nil {
			return nil, err
		}
		// JNZ back to loopStart: encode with the relative displacement
		// from the end of the 6-byte JNZ.
		rel := int64(loopStart) - int64(len(buf)+6)
		if err := emit(x86.I(x86.JNZ, x86.Imm(rel))); err != nil {
			return nil, err
		}
	}

	// --- m2 <- readPerfCtrs ---
	buf, err = r.emitReadCtrs(buf, cfg, g, auxM2, false)
	if err != nil {
		return nil, err
	}

	// --- noMem: dump accumulators (after the measurement) ---
	if cfg.NoMem {
		for s := 0; s < len(g.reads); s++ {
			if err := emit(x86.I(x86.MOV, x86.MemAt(auxNoMemOut+uint32(8*s)), x86.R8+x86.Reg(s))); err != nil {
				return nil, err
			}
		}
	}

	// --- restoreRegs ---
	for xm := 0; xm < x86.NumXMM; xm++ {
		if err := emit(x86.I(x86.MOVAPS, x86.XMM0+x86.Reg(xm), x86.MemAt(auxSaveXMM+uint32(16*xm)))); err != nil {
			return nil, err
		}
	}
	for gp := 0; gp < x86.NumGP; gp++ {
		if err := emit(x86.I(x86.MOV, x86.Reg(gp), x86.MemAt(auxSaveGP+uint32(8*gp)))); err != nil {
			return nil, err
		}
	}
	if err := emit(x86.I(x86.RET)); err != nil {
		return nil, err
	}
	return buf, nil
}

// emitReadCtrs appends the counter-reading sequence. In memory mode the
// values go to the array at dst; in noMem mode they are subtracted from
// (first read) or added to (second read) the accumulator registers
// R8..R12 (Section III-I).
func (r *Runner) emitReadCtrs(buf []byte, cfg Config, g counterGroup, dst uint32, first bool) ([]byte, error) {
	var ins []x86.Instr

	if !cfg.NoMem {
		// Spill the scratch registers the reads clobber; restored below,
		// so the sequence is transparent to the microbenchmark
		// (Section III-B).
		ins = append(ins,
			x86.I(x86.MOV, x86.MemAt(auxScratch+0), x86.RAX),
			x86.I(x86.MOV, x86.MemAt(auxScratch+8), x86.RCX),
			x86.I(x86.MOV, x86.MemAt(auxScratch+16), x86.RDX),
		)
	}
	for s, rd := range g.reads {
		readOp := x86.RDPMC
		if rd.isMSR {
			readOp = x86.RDMSR
		}
		ins = append(ins,
			x86.I(x86.LFENCE),
			x86.I(x86.MOV, x86.RCX, x86.Imm(int64(rd.index))),
			x86.I(readOp),
			x86.I(x86.SHL, x86.RDX, x86.Imm(32)),
			x86.I(x86.OR, x86.RAX, x86.RDX),
		)
		if cfg.NoMem {
			acc := x86.R8 + x86.Reg(s)
			if first {
				ins = append(ins, x86.I(x86.SUB, acc, x86.RAX))
			} else {
				ins = append(ins, x86.I(x86.ADD, acc, x86.RAX))
			}
		} else {
			ins = append(ins, x86.I(x86.MOV, x86.MemAt(dst+uint32(8*s)), x86.RAX))
		}
	}
	ins = append(ins, x86.I(x86.LFENCE))
	if !cfg.NoMem {
		ins = append(ins,
			x86.I(x86.MOV, x86.RAX, x86.MemAt(auxScratch+0)),
			x86.I(x86.MOV, x86.RCX, x86.MemAt(auxScratch+8)),
			x86.I(x86.MOV, x86.RDX, x86.MemAt(auxScratch+16)),
		)
	}

	var err error
	for _, in := range ins {
		buf, err = x86.EncodeInstr(buf, in)
		if err != nil {
			return nil, err
		}
	}
	return buf, nil
}

// containsMarker reports whether code contains a pause/resume magic byte
// sequence.
func containsMarker(code []byte) bool {
	return bytes.Contains(code, PauseCountingBytes) || bytes.Contains(code, ResumeCountingBytes)
}

// replaceMarkers substitutes the magic byte sequences with WRMSR code that
// disables/re-enables all counters via IA32_PERF_GLOBAL_CTRL
// (Section III-I). ctl is the enable value the resume sequence restores.
func (r *Runner) replaceMarkers(code []byte, noMem bool, ctl uint64) ([]byte, error) {
	if len(code) == 0 || !containsMarker(code) {
		return code, nil
	}
	pause, err := r.wrmsrSeq(0, noMem)
	if err != nil {
		return nil, err
	}
	resume, err := r.wrmsrSeq(ctl, noMem)
	if err != nil {
		return nil, err
	}
	out := bytes.ReplaceAll(code, PauseCountingBytes, pause)
	out = bytes.ReplaceAll(out, ResumeCountingBytes, resume)
	return out, nil
}

// wrmsrSeq builds machine code writing v to IA32_PERF_GLOBAL_CTRL. In
// noMem mode RAX/RCX/RDX are reserved registers, so no spill is needed;
// otherwise they are saved and restored around the write.
func (r *Runner) wrmsrSeq(v uint64, noMem bool) ([]byte, error) {
	var ins []x86.Instr
	if !noMem {
		ins = append(ins,
			x86.I(x86.MOV, x86.MemAt(auxScratch2+0), x86.RAX),
			x86.I(x86.MOV, x86.MemAt(auxScratch2+8), x86.RCX),
			x86.I(x86.MOV, x86.MemAt(auxScratch2+16), x86.RDX),
		)
	}
	ins = append(ins,
		x86.I(x86.LFENCE),
		x86.I(x86.MOV, x86.RCX, x86.Imm(machine.MSRPerfGlobalCtl)),
		x86.I(x86.MOV, x86.RAX, x86.Imm(int64(v&0xFFFFFFFF))),
		x86.I(x86.MOV, x86.RDX, x86.Imm(int64(v>>32))),
		x86.I(x86.WRMSR),
	)
	if !noMem {
		ins = append(ins,
			x86.I(x86.MOV, x86.RAX, x86.MemAt(auxScratch2+0)),
			x86.I(x86.MOV, x86.RCX, x86.MemAt(auxScratch2+8)),
			x86.I(x86.MOV, x86.RDX, x86.MemAt(auxScratch2+16)),
		)
	}
	return x86.EncodeAll(ins)
}

// DisassembleGenerated renders the most recently generated benchmark
// function (for debugging and the kmod trace file).
func DisassembleGenerated(code []byte) string {
	lst, err := x86.Disassemble(code)
	if err != nil {
		return fmt.Sprintf("<disassembly error: %v>", err)
	}
	out := ""
	for _, l := range lst {
		out += l + "\n"
	}
	return out
}
