package nano

import (
	"errors"
	"math"
	"strings"
	"testing"

	"nanobench/internal/perfcfg"
	"nanobench/internal/sim/machine"
	"nanobench/internal/sim/mem"
	"nanobench/internal/uarch"
)

func skylakeRunner(t *testing.T, mode machine.Mode) *Runner {
	t.Helper()
	cpu, err := uarch.ByName("Skylake")
	if err != nil {
		t.Fatal(err)
	}
	m, err := cpu.NewMachine(7)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(m, mode)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

var exampleEvents = perfcfg.MustParse(`
0E.01 UOPS_ISSUED.ANY
A1.04 UOPS_DISPATCHED_PORT.PORT_2
A1.08 UOPS_DISPATCHED_PORT.PORT_3
D1.01 MEM_LOAD_RETIRED.L1_HIT
D1.08 MEM_LOAD_RETIRED.L1_MISS
`)

func near(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %.3f, want %.2f (±%.2f)", name, got, want, tol)
	}
}

// TestExampleL1Latency reproduces the example of Section III-A: measuring
// the L1 data cache latency on a Skylake model with a pointer-chasing
// load, with the exact counter values the paper reports.
func TestExampleL1Latency(t *testing.T) {
	r := skylakeRunner(t, machine.Kernel)
	res, err := r.Run(Config{
		Code:        MustAsm("mov R14, [R14]"),
		CodeInit:    MustAsm("mov [R14], R14"),
		WarmUpCount: 1,
		Events:      exampleEvents,
	})
	if err != nil {
		t.Fatal(err)
	}
	near(t, "Instructions retired", res.MustGet("Instructions retired"), 1.00, 0.05)
	near(t, "Core cycles", res.MustGet("Core cycles"), 4.00, 0.10)
	near(t, "Reference cycles", res.MustGet("Reference cycles"), 3.52, 0.10)
	near(t, "UOPS_ISSUED.ANY", res.MustGet("UOPS_ISSUED.ANY"), 1.00, 0.05)
	near(t, "PORT_2", res.MustGet("UOPS_DISPATCHED_PORT.PORT_2"), 0.50, 0.10)
	near(t, "PORT_3", res.MustGet("UOPS_DISPATCHED_PORT.PORT_3"), 0.50, 0.10)
	near(t, "L1_HIT", res.MustGet("MEM_LOAD_RETIRED.L1_HIT"), 1.00, 0.05)
	near(t, "L1_MISS", res.MustGet("MEM_LOAD_RETIRED.L1_MISS"), 0.00, 0.05)

	// Output formatting mirrors the paper.
	out := res.String()
	if !strings.Contains(out, "Core cycles: 4.0") {
		t.Errorf("formatted output missing core cycles:\n%s", out)
	}
}

// TestRegeneratedCodeReDecodes runs configs whose generated code differs
// only in the unrolled body (the runner's two-variant scheme regenerates
// the image at the same base for each variant): per-instruction values
// must reflect the freshly installed code, never a stale pre-decoded
// program from the previous variant or the previous config.
func TestRegeneratedCodeReDecodes(t *testing.T) {
	r := skylakeRunner(t, machine.Kernel)
	for _, unroll := range []int{1, 4, 16, 4, 1} {
		res, err := r.Run(Config{
			Code:        MustAsm("add rax, rbx"),
			UnrollCount: unroll,
			WarmUpCount: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		// The two-variant subtraction normalizes per benchmark
		// instruction; a stale program would corrupt the counts.
		near(t, "Instructions retired", res.MustGet("Instructions retired"), 1.00, 0.05)
	}
	// Identical config twice in a row: the second install is skipped
	// (byte-identical image, valid program) and must measure the same.
	first, err := r.Run(Config{Code: MustAsm("nop"), WarmUpCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	second, err := r.Run(Config{Code: MustAsm("nop"), WarmUpCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	near(t, "reused-image instructions", second.MustGet("Instructions retired"),
		first.MustGet("Instructions retired"), 0.05)
}

func TestNopBenchmark(t *testing.T) {
	r := skylakeRunner(t, machine.Kernel)
	res, err := r.Run(Config{
		Code:        MustAsm("nop"),
		UnrollCount: 100,
		WarmUpCount: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	near(t, "Instructions retired", res.MustGet("Instructions retired"), 1.00, 0.05)
	// 4-wide issue: 0.25 cycles per NOP.
	near(t, "Core cycles", res.MustGet("Core cycles"), 0.25, 0.05)
}

func TestAddThroughputAndLatency(t *testing.T) {
	r := skylakeRunner(t, machine.Kernel)
	// Dependent chain: 1 cycle per ADD.
	res, err := r.Run(Config{
		Code:        MustAsm("add rax, rbx"),
		UnrollCount: 100,
		WarmUpCount: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	near(t, "dependent ADD cycles", res.MustGet("Core cycles"), 1.0, 0.1)

	// Independent ADDs: limited by 4-wide issue (4 ALU ports).
	res, err = r.Run(Config{
		Code: MustAsm(`
			add rax, 1
			add rbx, 1
			add rcx, 1
			add rdx, 1
		`),
		UnrollCount: 50,
		WarmUpCount: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Four independent adds per "instruction block" of 4: 1 cycle each.
	near(t, "independent ADD block cycles", res.MustGet("Core cycles"), 1.0, 0.15)
}

func TestLoopMode(t *testing.T) {
	r := skylakeRunner(t, machine.Kernel)
	res, err := r.Run(Config{
		Code:        MustAsm("mov r14, [r14]"),
		CodeInit:    MustAsm("mov [r14], r14"),
		UnrollCount: 10,
		LoopCount:   50,
		WarmUpCount: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Loop overhead (DEC/JNZ) runs in parallel with the load chain; the
	// per-load latency stays ~4.
	near(t, "looped load latency", res.MustGet("Core cycles"), 4.0, 0.3)
	near(t, "instructions", res.MustGet("Instructions retired"), 1.0, 0.25)
}

func TestBasicMode(t *testing.T) {
	r := skylakeRunner(t, machine.Kernel)
	res, err := r.Run(Config{
		Code:        MustAsm("add rax, rbx"),
		UnrollCount: 100,
		WarmUpCount: 1,
		BasicMode:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	near(t, "basic-mode ADD cycles", res.MustGet("Core cycles"), 1.0, 0.2)
	near(t, "basic-mode instructions", res.MustGet("Instructions retired"), 1.0, 0.1)
}

func TestNoMemMode(t *testing.T) {
	r := skylakeRunner(t, machine.Kernel)
	res, err := r.Run(Config{
		Code:        MustAsm("mov r14, [r14]"),
		CodeInit:    MustAsm("mov [r14], r14"),
		UnrollCount: 100,
		WarmUpCount: 1,
		NoMem:       true,
		Events:      perfcfg.MustParse("D1.01 L1_HIT"),
	})
	if err != nil {
		t.Fatal(err)
	}
	near(t, "noMem load latency", res.MustGet("Core cycles"), 4.0, 0.2)
	near(t, "noMem L1 hits", res.MustGet("L1_HIT"), 1.0, 0.1)
}

func TestCounterGrouping(t *testing.T) {
	r := skylakeRunner(t, machine.Kernel)
	// 6 events on a 4-counter machine: needs two groups (Section III-J).
	events := perfcfg.MustParse(`
0E.01 UOPS_ISSUED.ANY
A1.01 PORT_0
A1.02 PORT_1
A1.04 PORT_2
A1.08 PORT_3
D1.01 L1_HIT
`)
	res, err := r.Run(Config{
		Code:        MustAsm("add rax, rbx"),
		UnrollCount: 100,
		WarmUpCount: 1,
		Events:      events,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range events {
		if _, ok := res.Get(ev.Name); !ok {
			t.Errorf("missing event %s in result", ev.Name)
		}
	}
	// An ALU add never dispatches to the load ports.
	near(t, "PORT_2", res.MustGet("PORT_2"), 0, 0.05)
	near(t, "PORT_3", res.MustGet("PORT_3"), 0, 0.05)
	near(t, "UOPS_ISSUED", res.MustGet("UOPS_ISSUED.ANY"), 1.0, 0.1)
}

func TestUserModeRestrictions(t *testing.T) {
	r := skylakeRunner(t, machine.User)
	// Privileged instruction in the benchmark faults in user mode.
	_, err := r.Run(Config{Code: MustAsm("wbinvd"), UnrollCount: 1, NMeasurements: 1})
	if err == nil {
		t.Fatal("expected fault for WBINVD in user mode")
	}
	// MSR events need kernel mode.
	_, err = r.Run(Config{
		Code:   MustAsm("nop"),
		Events: perfcfg.MustParse("MSR.E8 APERF"),
	})
	if err == nil {
		t.Fatal("expected error for MSR event in user mode")
	}
	// Pause/resume markers need kernel mode.
	code := append(append([]byte{}, PauseCountingBytes...), MustAsm("nop")...)
	_, err = r.Run(Config{Code: code})
	if err == nil {
		t.Fatal("expected error for magic bytes in user mode")
	}
	// Plain benchmarks work in user mode via RDPMC.
	res, err := r.Run(Config{
		Code:        MustAsm("add rax, rbx"),
		UnrollCount: 100,
		WarmUpCount: 3,
		Aggregate:   Min,
	})
	if err != nil {
		t.Fatal(err)
	}
	near(t, "user-mode ADD", res.MustGet("Core cycles"), 1.0, 0.3)
}

func TestKernelModeAPerfMPerf(t *testing.T) {
	r := skylakeRunner(t, machine.Kernel)
	res, err := r.Run(Config{
		Code:        MustAsm("add rax, rbx"),
		UnrollCount: 100,
		WarmUpCount: 1,
		Events:      perfcfg.MustParse("MSR.E8 APERF\nMSR.E7 MPERF"),
	})
	if err != nil {
		t.Fatal(err)
	}
	aperf := res.MustGet("APERF")
	mperf := res.MustGet("MPERF")
	near(t, "APERF", aperf, 1.0, 0.2)
	if mperf >= aperf {
		t.Errorf("MPERF (%f) should tick slower than APERF (%f)", mperf, aperf)
	}
}

func TestPauseResumeMarkers(t *testing.T) {
	r := skylakeRunner(t, machine.Kernel)
	// 10 counted NOPs, then 100 NOPs with counting paused.
	var code []byte
	code = append(code, MustAsm(strings.Repeat("nop\n", 10))...)
	code = append(code, PauseCountingBytes...)
	code = append(code, MustAsm(strings.Repeat("nop\n", 100))...)
	code = append(code, ResumeCountingBytes...)
	res, err := r.Run(Config{
		Code:        code,
		UnrollCount: 4,
		WarmUpCount: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Per unrolled copy: ~10 instructions counted, not ~110 (the WRMSR
	// sequences add a few counted instructions at the boundaries).
	instr := res.MustGet("Instructions retired")
	if instr < 9 || instr > 25 {
		t.Errorf("instructions with paused region = %.1f, want ~10-20, not ~110", instr)
	}
}

func TestBigArea(t *testing.T) {
	r := skylakeRunner(t, machine.Kernel)
	if err := r.AllocBigArea(16 << 20); err != nil {
		t.Fatal(err)
	}
	if r.BigAreaSize() != 16<<20 {
		t.Fatal("big area size")
	}
	// The region must be physically contiguous.
	base, ok := r.BigAreaPhys(0)
	if !ok {
		t.Fatal("big area not mapped")
	}
	for off := uint64(0); off < 16<<20; off += mem.PageSize {
		p, ok := r.BigAreaPhys(off)
		if !ok || p != base+off {
			t.Fatalf("big area not contiguous at offset %#x", off)
		}
	}
	// R14 points into it with UseBigArea.
	res, err := r.Run(Config{
		Code:        MustAsm("mov r14, [r14]"),
		CodeInit:    MustAsm("mov [r14], r14"),
		UnrollCount: 50,
		WarmUpCount: 1,
		UseBigArea:  true,
	})
	if err != nil {
		t.Fatal(err)
	}
	near(t, "big-area load latency", res.MustGet("Core cycles"), 4.0, 0.3)
}

func TestRebootAndRemap(t *testing.T) {
	r := skylakeRunner(t, machine.Kernel)
	// Fragment the allocator so a large contiguous allocation fails.
	r.M.Alloc.Fragment(0.02)
	err := r.AllocBigArea(32 << 20)
	if !errors.Is(err, mem.ErrRebootRequired) {
		t.Fatalf("expected ErrRebootRequired, got %v", err)
	}
	if err := r.RebootAndRemap(); err != nil {
		t.Fatal(err)
	}
	if err := r.AllocBigArea(32 << 20); err != nil {
		t.Fatalf("after reboot: %v", err)
	}
	// The runner still works after remapping.
	res, err := r.Run(Config{Code: MustAsm("nop"), UnrollCount: 100, WarmUpCount: 1})
	if err != nil {
		t.Fatal(err)
	}
	near(t, "post-reboot NOP", res.MustGet("Core cycles"), 0.25, 0.1)
}

func TestValidationErrors(t *testing.T) {
	r := skylakeRunner(t, machine.Kernel)
	cases := []Config{
		{}, // empty benchmark
		{Code: MustAsm("nop"), UnrollCount: -1},
		{Code: MustAsm("nop"), LoopCount: -2},
		{Code: MustAsm("nop"), UseBigArea: true}, // no big area allocated
	}
	for i, cfg := range cases {
		if _, err := r.Run(cfg); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestAggregates(t *testing.T) {
	vals := []float64{10, 2, 8, 4, 6, 100, 1, 3, 5, 7}
	if got := aggregate(vals, Min); got != 1 {
		t.Errorf("Min = %v", got)
	}
	if got := aggregate(vals, Median); got != 5.5 {
		t.Errorf("Median = %v", got)
	}
	// Avg drops the top/bottom 20% (2 values each): mean of 3..8.
	if got := aggregate(vals, Avg); math.Abs(got-5.5) > 0.01 {
		t.Errorf("Avg = %v", got)
	}
	if got := aggregate(nil, Min); got != 0 {
		t.Errorf("empty aggregate = %v", got)
	}
	if _, err := ParseAggregate("min"); err != nil {
		t.Error(err)
	}
	if _, err := ParseAggregate("bogus"); err == nil {
		t.Error("expected error")
	}
}

func TestResultOrdering(t *testing.T) {
	res := newResult()
	res.addMetric(Metric{Name: "b", Value: 1})
	res.addMetric(Metric{Name: "a", Value: 2})
	res.addMetric(Metric{Name: "b", Value: 3}) // overwrite keeps position
	names := res.Names()
	if len(names) != 2 || names[0] != "b" || names[1] != "a" {
		t.Fatalf("Names() = %v", names)
	}
	if v, _ := res.Get("b"); v != 3 {
		t.Fatal("overwrite failed")
	}
}
