package nano

import (
	"bytes"
	"context"
	"errors"
	"fmt"

	"nanobench/internal/perfcfg"
	"nanobench/internal/sim/machine"
	"nanobench/internal/sim/mem"
)

// Virtual layout of the nanoBench regions inside the simulated machine.
const (
	// CodeBase is where generated benchmark functions are placed.
	CodeBase = 0x0010_0000
	CodeSize = 1 << 20

	// AuxBase holds the register save area, the scratch slots used by the
	// counter-reading code, and the counter value arrays.
	AuxBase = 0x0030_0000
	AuxSize = 64 << 10

	auxSaveGP   = AuxBase + 0x000 // 16 × 8 bytes
	auxSaveXMM  = AuxBase + 0x080 // 16 × 16 bytes
	auxScratch  = AuxBase + 0x200 // RAX/RCX/RDX spill in readPerfCtrs
	auxScratch2 = AuxBase + 0x240 // spill in pause/resume sequences
	auxM1       = AuxBase + 0x280 // first counter read
	auxM2       = AuxBase + 0x380 // second counter read
	auxNoMemOut = AuxBase + 0x480 // noMem result dump

	// AreaBase is the start of the five 1 MB memory areas the registers
	// R14, RDI, RSI, RBP, and RSP point into (Section III-G).
	AreaBase = 0x0100_0000
	AreaSize = 1 << 20

	// BigAreaBase is where the optional physically-contiguous region is
	// mapped (Section IV-D).
	BigAreaBase = 0x1000_0000
	// MaxBigArea bounds the mappable large region.
	MaxBigArea = 256 << 20
)

// R14DefaultArea returns the virtual base address register R14 points to
// by default.
func R14DefaultArea() uint32 { return AreaBase }

// maxReadSlots is the number of counter values one generated read sequence
// can record (fixed + programmable + MSR reads).
const maxReadSlots = 16

// noMemSlots is the number of registers available for counter accumulation
// in noMem mode (R8..R12).
const noMemSlots = 5

// Runner evaluates microbenchmarks on a simulated machine, in either user
// or kernel mode (Section III-D).
type Runner struct {
	M    *machine.Machine
	mode machine.Mode

	regions []region
	bigSize uint64
	cbox    int

	// lastCode is the code image most recently installed via WriteCode;
	// runVariant skips the install (and the machine's re-predecode) when
	// the regenerated image is byte-identical and the machine certifies
	// the installed program is still valid.
	lastCode []byte

	// seq holds the seq-replay fast path's verified-trace cache
	// (seqreplay.go); lazily created, keyed by image hash.
	seq *seqReplayState
}

type region struct {
	virt uint32
	phys uint64
	size uint64
}

// NewRunner prepares a machine for running microbenchmarks: it maps the
// code, auxiliary, and memory-area regions and, in user mode, sets CR4.PCE
// so RDPMC is usable.
func NewRunner(m *machine.Machine, mode machine.Mode) (*Runner, error) {
	r := &Runner{M: m, mode: mode}
	m.SetMode(mode)
	if mode == machine.User {
		m.SetCR4PCE(true)
	}
	if err := r.mapRegions(); err != nil {
		return nil, err
	}
	return r, nil
}

// Mode returns the runner's privilege mode.
func (r *Runner) Mode() machine.Mode { return r.mode }

func (r *Runner) mapRegions() error {
	alloc := func(virt uint32, size uint64) error {
		phys, err := r.M.Alloc.Kmalloc(size)
		if err != nil {
			return err
		}
		if err := r.M.Mem.Map(virt, phys, size); err != nil {
			return err
		}
		r.regions = append(r.regions, region{virt, phys, size})
		return nil
	}
	if err := alloc(CodeBase, CodeSize); err != nil {
		return err
	}
	if err := alloc(AuxBase, AuxSize); err != nil {
		return err
	}
	for i := 0; i < 5; i++ {
		if err := alloc(AreaBase+uint32(i)*AreaSize, AreaSize); err != nil {
			return err
		}
	}
	return nil
}

// AllocBigArea reserves a physically-contiguous region of the given size
// and maps it at BigAreaBase. On fragmentation it returns
// mem.ErrRebootRequired; RebootAndRemap recovers (at the cost of all cache
// and counter state).
func (r *Runner) AllocBigArea(size uint64) error {
	if size > MaxBigArea {
		return fmt.Errorf("nano: big area of %d bytes exceeds the %d limit", size, MaxBigArea)
	}
	size = (size + mem.PageSize - 1) / mem.PageSize * mem.PageSize
	phys, err := r.M.Alloc.AllocContiguous(size)
	if err != nil {
		return err
	}
	if err := r.M.Mem.Map(BigAreaBase, phys, size); err != nil {
		return err
	}
	r.bigSize = size
	return nil
}

// BigAreaPhys translates a big-area offset to its physical address.
func (r *Runner) BigAreaPhys(off uint64) (uint64, bool) {
	if off >= r.bigSize {
		return 0, false
	}
	return r.M.Mem.Translate(BigAreaBase + uint32(off))
}

// BigAreaSize returns the currently mapped big-area size.
func (r *Runner) BigAreaSize() uint64 { return r.bigSize }

// RebootAndRemap performs the paper's remedy for failed contiguous
// allocations: reboot (pristine freelist), then re-map all regions.
func (r *Runner) RebootAndRemap() error {
	for _, reg := range r.regions {
		r.M.Mem.Unmap(reg.virt, reg.size)
	}
	if r.bigSize > 0 {
		r.M.Mem.Unmap(BigAreaBase, r.bigSize)
		r.bigSize = 0
	}
	r.regions = nil
	r.lastCode = nil // reboot re-maps the code region onto fresh frames
	if r.seq != nil {
		// Recorded traces carry physical addresses; remapping onto fresh
		// frames invalidates all of them.
		r.seq.entries = make(map[[32]byte]*seqTraceEntry)
		r.seq.dropMemo()
	}
	r.M.Reboot()
	return r.mapRegions()
}

// SetPrefetchersEnabled toggles the hardware prefetchers via MSR 0x1A4, as
// the cache analysis tools require (Section IV-A2). Kernel mode only.
func (r *Runner) SetPrefetchersEnabled(on bool) error {
	if r.mode != machine.Kernel {
		return errors.New("nano: prefetcher control requires the kernel-space version")
	}
	v := uint64(0xF)
	if on {
		v = 0
	}
	r.M.WriteMSR(machine.MSRPrefetchCtl, v)
	return nil
}

// Run evaluates one microbenchmark configuration and returns the
// aggregated per-instruction counter values.
func (r *Runner) Run(cfg Config) (*Result, error) {
	return r.RunContext(context.Background(), cfg)
}

// RunContext is Run bounded by a context: cancellation or a deadline is
// checked between individual benchmark runs, so even a long measurement
// series (large NMeasurements, many counter groups) returns promptly with
// the context's error.
func (r *Runner) RunContext(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.applyDefaults()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if err := r.validate(&cfg); err != nil {
		return nil, err
	}

	groups, err := r.buildGroups(cfg)
	if err != nil {
		return nil, err
	}

	res := newResult()
	for gi, g := range groups {
		if err := r.programCounters(g); err != nil {
			return nil, err
		}
		vals, samples, err := r.runGroup(ctx, cfg, g)
		if err != nil {
			return nil, err
		}
		for i, rd := range g.reads {
			if rd.fixed && gi > 0 {
				continue // fixed counters are reported from the first group
			}
			sm := samples[i]
			if cfg.DropSamples {
				sm = nil // aggregated value only (Config.DropSamples)
			}
			res.addMetric(Metric{
				Name:    rd.name,
				Event:   rd.spec,
				Fixed:   rd.fixed,
				Value:   vals[i],
				Samples: sm,
			})
		}
	}
	return res, nil
}

// counterGroup is one counter configuration: at most NumProgCounters core
// events measured together, plus the fixed counters and any MSR/uncore
// reads.
type counterGroup struct {
	core  []perfcfg.EventSpec
	reads []ctrRead
}

type ctrRead struct {
	name    string
	fixed   bool
	isMSR   bool
	index   uint32 // RDPMC index, or MSR address when isMSR
	progIdx int    // programmable counter number (core events)
	// spec is the event specification behind the read; the zero value for
	// the fixed counters.
	spec perfcfg.EventSpec
}

func (r *Runner) validate(cfg *Config) error {
	if len(cfg.Code) == 0 && len(cfg.CodeInit) == 0 {
		return errors.New("nano: empty benchmark")
	}
	if cfg.UnrollCount < 1 {
		return errors.New("nano: unroll count must be at least 1")
	}
	if cfg.LoopCount < 0 || cfg.NMeasurements < 1 || cfg.WarmUpCount < 0 {
		return errors.New("nano: invalid run counts")
	}
	// Reject unroll counts that cannot fit before generating the buffer:
	// the measurement run alone holds UnrollCount copies of Code, so a
	// hostile unroll_count would otherwise allocate gigabytes here (and
	// on the server, from a 60-byte request) only to fail the post-
	// generation size check.
	if len(cfg.Code) > 0 && cfg.UnrollCount > CodeSize/len(cfg.Code) {
		return fmt.Errorf("nano: %d copies of a %d-byte benchmark cannot fit the %d-byte code area",
			cfg.UnrollCount, len(cfg.Code), CodeSize)
	}
	hasMarkers := containsMarker(cfg.Code) || containsMarker(cfg.CodeInit)
	if hasMarkers && r.mode != machine.Kernel {
		return errors.New("nano: pause/resume magic bytes require the kernel-space version")
	}
	for _, ev := range cfg.Events {
		if ev.Kind != perfcfg.Core && r.mode != machine.Kernel {
			return fmt.Errorf("nano: event %q requires the kernel-space version", ev.Name)
		}
	}
	if cfg.UseBigArea && r.bigSize == 0 {
		return errors.New("nano: UseBigArea without AllocBigArea")
	}
	return nil
}

// buildGroups splits events into counter configurations.
func (r *Runner) buildGroups(cfg Config) ([]counterGroup, error) {
	nProg := len(r.M.PMU.Prog)
	perGroup := nProg
	if cfg.NoMem {
		// Three slots go to the fixed counters; the rest hold core events.
		perGroup = noMemSlots - 3
		if perGroup < 1 {
			return nil, errors.New("nano: too few registers for noMem mode")
		}
		if perGroup > nProg {
			perGroup = nProg
		}
	}

	var core, other []perfcfg.EventSpec
	for _, ev := range cfg.Events {
		if ev.Kind == perfcfg.Core {
			core = append(core, ev)
		} else {
			other = append(other, ev)
		}
	}

	var groups []counterGroup
	for len(core) > 0 {
		n := perGroup
		if n > len(core) {
			n = len(core)
		}
		groups = append(groups, counterGroup{core: core[:n]})
		core = core[n:]
	}
	if len(groups) == 0 {
		groups = append(groups, counterGroup{})
	}
	// MSR and C-Box reads join the last group if it has room in the read
	// sequence; otherwise they get their own group.
	if len(other) > 0 {
		last := &groups[len(groups)-1]
		if cfg.NoMem && len(last.core)+3+len(other) > noMemSlots {
			groups = append(groups, counterGroup{})
			last = &groups[len(groups)-1]
		}
		for _, ev := range other {
			rd, err := r.otherRead(ev)
			if err != nil {
				return nil, err
			}
			last.reads = append(last.reads, rd)
		}
	}

	// Build the read sequences: fixed counters, then the group's core
	// events, then the already-appended MSR reads.
	for i := range groups {
		g := &groups[i]
		msrReads := g.reads
		g.reads = []ctrRead{
			{name: "Instructions retired", fixed: true, index: 1<<30 | 0},
			{name: "Core cycles", fixed: true, index: 1<<30 | 1},
			{name: "Reference cycles", fixed: true, index: 1<<30 | 2},
		}
		for ci, ev := range g.core {
			g.reads = append(g.reads, ctrRead{name: ev.Name, index: uint32(ci), progIdx: ci, spec: ev})
		}
		g.reads = append(g.reads, msrReads...)
		if len(g.reads) > maxReadSlots {
			return nil, fmt.Errorf("nano: %d counter reads exceed the %d slots", len(g.reads), maxReadSlots)
		}
		if cfg.NoMem && len(g.reads) > noMemSlots {
			return nil, fmt.Errorf("nano: %d counter reads exceed the %d noMem registers", len(g.reads), noMemSlots)
		}
	}
	return groups, nil
}

func (r *Runner) otherRead(ev perfcfg.EventSpec) (ctrRead, error) {
	switch ev.Kind {
	case perfcfg.MSR:
		return ctrRead{name: ev.Name, isMSR: true, index: ev.Addr, spec: ev}, nil
	case perfcfg.CBo:
		// C-Box events are exposed per box; the configured box is chosen
		// with SelectCBox (cacheSeq uses this). Default box 0.
		off := uint32(6)
		if ev.CBoEv == "MISS" {
			off = 7
		}
		return ctrRead{name: ev.Name, isMSR: true, spec: ev,
			index: machine.MSRCBoxBase + uint32(r.cbox)*machine.MSRCBoxStride + off}, nil
	}
	return ctrRead{}, fmt.Errorf("nano: unsupported event kind")
}

// programCounters writes the MSRs that select the group's events.
func (r *Runner) programCounters(g counterGroup) error {
	m := r.M
	var progMask uint64
	for i, ev := range g.core {
		sel := uint64(ev.EvtSel) | uint64(ev.Umask)<<8 | machine.PerfEvtSelEN
		if !m.WriteMSR(machine.MSRPerfEvtSel0+uint32(i), sel) {
			return fmt.Errorf("nano: cannot program counter %d", i)
		}
		progMask |= 1 << i
	}
	m.WriteMSR(machine.MSRFixedCtrCtrl, 0x333)
	m.WriteMSR(machine.MSRPerfGlobalCtl, 0x7<<32|progMask)
	return nil
}

// globalCtlValue returns the IA32_PERF_GLOBAL_CTRL value for a group (used
// by the resume-counting sequence).
func globalCtlValue(g counterGroup) uint64 {
	var progMask uint64
	for i := range g.core {
		progMask |= 1 << i
	}
	return 0x7<<32 | progMask
}

// runGroup runs both unroll variants for one counter group and returns the
// per-read aggregated, overhead-subtracted, per-instruction values plus
// the raw per-run samples (run k of one variant paired with run k of the
// other, subtracted and normalized the same way).
func (r *Runner) runGroup(ctx context.Context, cfg Config, g counterGroup) ([]float64, [][]float64, error) {
	unrollA := cfg.UnrollCount
	unrollB := 2 * cfg.UnrollCount
	if cfg.BasicMode {
		unrollB = 0
	}

	aggA, runsA, err := r.runVariant(ctx, cfg, g, unrollA)
	if err != nil {
		return nil, nil, err
	}
	aggB, runsB, err := r.runVariant(ctx, cfg, g, unrollB)
	if err != nil {
		return nil, nil, err
	}

	denom := float64(max(1, cfg.LoopCount) * cfg.UnrollCount)
	out := make([]float64, len(g.reads))
	samples := make([][]float64, len(g.reads))
	for i := range g.reads {
		if cfg.BasicMode {
			out[i] = (aggA[i] - aggB[i]) / denom
		} else {
			out[i] = (aggB[i] - aggA[i]) / denom
		}
		samples[i] = make([]float64, len(runsA[i]))
		for k := range runsA[i] {
			if cfg.BasicMode {
				samples[i][k] = (runsA[i][k] - runsB[i][k]) / denom
			} else {
				samples[i][k] = (runsB[i][k] - runsA[i][k]) / denom
			}
		}
	}
	return out, samples, nil
}

// runVariant generates code with the given localUnrollCount and runs the
// warm-up + measurement series, returning the aggregate of each read slot
// alongside the per-run raw values it was computed from.
func (r *Runner) runVariant(ctx context.Context, cfg Config, g counterGroup, localUnroll int) ([]float64, [][]float64, error) {
	code, err := r.generate(cfg, g, localUnroll)
	if err != nil {
		return nil, nil, err
	}
	if len(code) > CodeSize {
		return nil, nil, fmt.Errorf("nano: generated code (%d bytes) exceeds the code area", len(code))
	}
	// Install the code unless the identical image is already installed
	// with its pre-decoded program intact (a write into the code region —
	// including by the benchmark itself — invalidates the program, so a
	// valid program proves the bytes are unmodified).
	if !(r.M.ProgramValid(CodeBase, len(code)) && bytes.Equal(code, r.lastCode)) {
		if err := r.M.WriteCode(CodeBase, code); err != nil {
			return nil, nil, err
		}
		r.lastCode = append(r.lastCode[:0], code...)
	}

	nReads := len(g.reads)
	samples := make([][]float64, nReads)
	for i := -cfg.WarmUpCount; i < cfg.NMeasurements; i++ {
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		// Trim counter histories between runs; enables survive.
		r.M.PMU.ResetAll(r.M.Cycle())
		if _, err := r.M.Run(CodeBase); err != nil {
			return nil, nil, err
		}
		if i < 0 {
			continue
		}
		for s := 0; s < nReads; s++ {
			var delta uint64
			if cfg.NoMem {
				v, _ := r.M.Mem.Read64(auxNoMemOut + uint32(8*s))
				delta = v
			} else {
				m1, _ := r.M.Mem.Read64(auxM1 + uint32(8*s))
				m2, _ := r.M.Mem.Read64(auxM2 + uint32(8*s))
				delta = m2 - m1
			}
			samples[s] = append(samples[s], float64(delta))
		}
	}

	out := make([]float64, nReads)
	for s := range samples {
		out[s] = aggregate(samples[s], cfg.Aggregate)
	}
	return out, samples, nil
}

// cbox is the C-Box whose counters CBO.* events read.
func (r *Runner) SelectCBox(box int) error {
	if box < 0 || box >= len(r.M.CBox) {
		return fmt.Errorf("nano: C-Box %d out of range (%d boxes)", box, len(r.M.CBox))
	}
	r.cbox = box
	return nil
}
