package nano

import (
	"testing"

	"nanobench/internal/sim/machine"
)

// TestDropSamples: a DropSamples evaluation carries the identical
// aggregated values as a sample-retaining one (fresh machines, same
// seed) with every metric's sample series discarded.
func TestDropSamples(t *testing.T) {
	cfg := Config{
		Code:        MustAsm("mov R14, [R14]"),
		CodeInit:    MustAsm("mov [R14], R14"),
		WarmUpCount: 1,
		Events:      exampleEvents,
	}

	full, err := skylakeRunner(t, machine.Kernel).Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.DropSamples = true
	dropped, err := skylakeRunner(t, machine.Kernel).Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	fm, dm := full.Metrics(), dropped.Metrics()
	if len(fm) != len(dm) {
		t.Fatalf("metric count differs: %d vs %d", len(fm), len(dm))
	}
	for i := range fm {
		if dm[i].Name != fm[i].Name || dm[i].Value != fm[i].Value {
			t.Errorf("metric %d: %s=%v, want %s=%v", i, dm[i].Name, dm[i].Value, fm[i].Name, fm[i].Value)
		}
		if len(fm[i].Samples) == 0 {
			t.Errorf("metric %q: retaining run kept no samples", fm[i].Name)
		}
		if len(dm[i].Samples) != 0 {
			t.Errorf("metric %q: DropSamples retained %d samples", dm[i].Name, len(dm[i].Samples))
		}
	}
}

// TestDropSamplesJSONRoundTrip: the wire field survives the codec and
// participates in IsZero.
func TestDropSamplesJSONRoundTrip(t *testing.T) {
	c := Config{Code: MustAsm("nop"), DropSamples: true}
	data, err := c.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	var back Config
	if err := back.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if !back.DropSamples {
		t.Errorf("DropSamples lost in round trip: %s", data)
	}
	if (Config{DropSamples: true}).IsZero() {
		t.Error("DropSamples-only config reported IsZero")
	}
}
