package uarch

import (
	"testing"

	"nanobench/internal/sim/machine"
)

func TestTable1Catalog(t *testing.T) {
	cpus := Table1()
	if len(cpus) != 10 {
		t.Fatalf("Table1 has %d CPUs, want 10", len(cpus))
	}
	for i, c := range cpus {
		if c.Gen != i+1 {
			t.Errorf("%s: generation %d at index %d", c.Name, c.Gen, i)
		}
		spec := c.MachineSpec(1)
		if err := spec.Cache.L1D.Validate(); err != nil {
			t.Errorf("%s L1D: %v", c.Name, err)
		}
		if err := spec.Cache.L2.Validate(); err != nil {
			t.Errorf("%s L2: %v", c.Name, err)
		}
		if err := spec.Cache.L3.Validate(); err != nil {
			t.Errorf("%s L3: %v", c.Name, err)
		}
		if got := spec.Cache.L3.Size * uint64(c.L3Slices); got != c.L3Size {
			t.Errorf("%s: slices cover %d bytes, want %d", c.Name, got, c.L3Size)
		}
	}
}

func TestByName(t *testing.T) {
	c, err := ByName("skylake")
	if err != nil || c.Name != "Skylake" {
		t.Fatalf("ByName(skylake) = %v, %v", c.Name, err)
	}
	if _, err := ByName("Pentium"); err == nil {
		t.Fatal("expected error for unknown CPU")
	}
	if _, err := ByName("Zen"); err != nil {
		t.Fatalf("Zen missing: %v", err)
	}
	if NameList() == "" {
		t.Fatal("empty name list")
	}
}

func TestExpectedL3Policy(t *testing.T) {
	skl, _ := ByName("Skylake")
	pol, dedicated := skl.ExpectedL3Policy(0, 100)
	if !dedicated || pol != "QLRU_H11_M1_R0_U0" {
		t.Fatalf("Skylake L3 policy = %q, %v", pol, dedicated)
	}

	ivb, _ := ByName("IvyBridge")
	pol, ded := ivb.ExpectedL3Policy(2, 520)
	if !ded || pol != "QLRU_H11_M1_R1_U2" {
		t.Fatalf("IvB set 520 = %q, %v", pol, ded)
	}
	pol, ded = ivb.ExpectedL3Policy(1, 800)
	if !ded || pol != "QLRU_H11_MR161_R1_U2" {
		t.Fatalf("IvB set 800 = %q, %v", pol, ded)
	}
	if _, ded := ivb.ExpectedL3Policy(0, 100); ded {
		t.Fatal("IvB set 100 should be a follower")
	}

	// Haswell: leaders only in slice 0.
	hsw, _ := ByName("Haswell")
	if _, ded := hsw.ExpectedL3Policy(1, 520); ded {
		t.Fatal("Haswell slice 1 set 520 should be a follower")
	}
	if pol, ded := hsw.ExpectedL3Policy(0, 520); !ded || pol != "QLRU_H11_M1_R0_U0" {
		t.Fatalf("Haswell slice 0 set 520 = %q, %v", pol, ded)
	}

	// Broadwell: policies cross between the slices.
	bdw, _ := ByName("Broadwell")
	a0, _ := bdw.ExpectedL3Policy(0, 520)
	a1, _ := bdw.ExpectedL3Policy(1, 520)
	b0, _ := bdw.ExpectedL3Policy(0, 800)
	b1, _ := bdw.ExpectedL3Policy(1, 800)
	if a0 != b1 || a1 != b0 || a0 == a1 {
		t.Fatalf("Broadwell crossing wrong: %q %q %q %q", a0, a1, b0, b1)
	}
}

func TestMachinesBoot(t *testing.T) {
	if testing.Short() {
		t.Skip("boots every catalog machine; run without -short")
	}
	for _, c := range append(Table1(), Zen()) {
		m, err := c.NewMachine(1)
		if err != nil {
			t.Errorf("%s: %v", c.Name, err)
			continue
		}
		if len(m.CBox) != c.L3Slices {
			t.Errorf("%s: %d C-Boxes, want %d", c.Name, len(m.CBox), c.L3Slices)
		}
		if got := len(m.PMU.Prog); got != c.NumProgCounters {
			t.Errorf("%s: %d programmable counters, want %d", c.Name, got, c.NumProgCounters)
		}
	}
}

func TestEventTableCoversPorts(t *testing.T) {
	tab := IntelEventTable()
	for p := uint8(0); p < 8; p++ {
		if _, ok := tab[machine.EvtSelKey(0xA1, 1<<p)]; !ok {
			t.Errorf("missing port %d event", p)
		}
	}
	if len(tab) < 20 {
		t.Errorf("event table too small: %d", len(tab))
	}
}
