// Package uarch catalogs the simulated machine models used in the
// experiments: the ten Intel Core generations of Table I of the nanoBench
// paper, plus an AMD Zen configuration. Each model carries the cache
// geometries and ground-truth replacement policies that the case-study-II
// tools must recover through measurements alone.
package uarch

import (
	"fmt"

	"nanobench/internal/sim/cache"
	"nanobench/internal/sim/machine"
	"nanobench/internal/sim/pmu"
	"nanobench/internal/sim/policy"
)

// SetRange denotes a range of set indices [Lo, Hi] within one slice
// (Slice == -1 means every slice).
type SetRange struct {
	Slice  int
	Lo, Hi int
}

// Contains reports whether the range covers (slice, set).
func (r SetRange) Contains(slice, set int) bool {
	return (r.Slice == -1 || r.Slice == slice) && set >= r.Lo && set <= r.Hi
}

// Adaptive describes an adaptive (set-dueling) L3 configuration: dedicated
// leader sets with fixed policies A and B; all other sets follow the
// currently winning policy.
type Adaptive struct {
	PolicyA, PolicyB string
	ARanges, BRanges []SetRange
}

// Leader classifies a set: 'A', 'B', or 0 for follower sets.
func (a *Adaptive) Leader(slice, set int) byte {
	for _, r := range a.ARanges {
		if r.Contains(slice, set) {
			return 'A'
		}
	}
	for _, r := range a.BRanges {
		if r.Contains(slice, set) {
			return 'B'
		}
	}
	return 0
}

// CPU is one machine model.
type CPU struct {
	Name  string // microarchitecture, e.g. "Skylake"
	Model string // the part the paper measured, e.g. "Core i7-6500U"
	Gen   int    // Core generation (1..10)

	L1Size  uint64
	L1Assoc int
	L2Size  uint64
	L2Assoc int
	L3Size  uint64 // total size across slices
	L3Assoc int

	L1Policy string
	L2Policy string
	// L3Policy is empty when the L3 is adaptive.
	L3Policy   string
	L3Adaptive *Adaptive

	L3Slices int

	L1Latency, L2Latency, L3Latency, MemLatency int

	NumProgCounters int
	RefRatio        float64
}

// ExpectedL3Policy returns the ground-truth L3 policy name for a set, and
// whether the set is a dedicated (leader) set. Follower sets return "".
func (c *CPU) ExpectedL3Policy(slice, set int) (string, bool) {
	if c.L3Adaptive == nil {
		return c.L3Policy, true
	}
	switch c.L3Adaptive.Leader(slice, set) {
	case 'A':
		return c.L3Adaptive.PolicyA, true
	case 'B':
		return c.L3Adaptive.PolicyB, true
	}
	return "", false
}

// MachineSpec assembles a fresh machine.Spec for this CPU. Each call
// builds new policy factories (and, for adaptive models, a fresh PSEL), so
// independent machines never share state.
func (c *CPU) MachineSpec(seed int64) machine.Spec {
	l3PerSlice := c.L3Size / uint64(c.L3Slices)

	l3Factory := cache.SimplePolicy(c.L3Policy)
	if c.L3Adaptive != nil {
		ad := c.L3Adaptive
		l3Factory = cache.AdaptivePolicy(policy.DuelSpec{
			PolicyA: ad.PolicyA,
			PolicyB: ad.PolicyB,
			PSel:    policy.NewPSel(1024),
			Leader:  ad.Leader,
		})
	}

	return machine.Spec{
		Name: c.Name,
		Cache: cache.Config{
			L1I:            cache.Geometry{Name: "L1I", Size: c.L1Size, Assoc: c.L1Assoc, LineSize: 64, Latency: c.L1Latency},
			L1D:            cache.Geometry{Name: "L1D", Size: c.L1Size, Assoc: c.L1Assoc, LineSize: 64, Latency: c.L1Latency},
			L2:             cache.Geometry{Name: "L2", Size: c.L2Size, Assoc: c.L2Assoc, LineSize: 64, Latency: c.L2Latency},
			L3:             cache.Geometry{Name: "L3", Size: l3PerSlice, Assoc: c.L3Assoc, LineSize: 64, Latency: c.L3Latency},
			L3Slices:       c.L3Slices,
			SliceHash:      cache.DefaultSliceHash(c.L3Slices),
			MemLatency:     c.MemLatency,
			L1IPolicy:      cache.SimplePolicy(c.L1Policy),
			L1DPolicy:      cache.SimplePolicy(c.L1Policy),
			L2Policy:       cache.SimplePolicy(c.L2Policy),
			L3Policy:       l3Factory,
			PrefetchDegree: 2,
		},
		NumProgCounters:   c.NumProgCounters,
		RefRatio:          c.RefRatio,
		PhysMem:           256 << 20,
		EventTable:        IntelEventTable(),
		InterruptInterval: 200_000,
		Seed:              seed,
	}
}

// NewMachine builds a machine for this CPU model.
func (c *CPU) NewMachine(seed int64) (*machine.Machine, error) {
	return machine.New(c.MachineSpec(seed))
}

// kb and mb improve the readability of the catalog below.
const (
	kb = uint64(1) << 10
	mb = uint64(1) << 20
)

// table1 lists the CPUs of Table I in generation order. Slice counts
// follow the physical core counts (Section VI-A), restricted to powers of
// two (the slice hash is XOR-based).
var table1 = []CPU{
	{
		Name: "Nehalem", Model: "Core i5-750", Gen: 1,
		L1Size: 32 * kb, L1Assoc: 8, L2Size: 256 * kb, L2Assoc: 8,
		L3Size: 8 * mb, L3Assoc: 16, L3Slices: 1,
		L1Policy: "PLRU", L2Policy: "PLRU", L3Policy: "MRU",
		L1Latency: 4, L2Latency: 10, L3Latency: 35, MemLatency: 190,
		NumProgCounters: 4, RefRatio: 0.90,
	},
	{
		Name: "Westmere", Model: "Core i5-650", Gen: 2,
		L1Size: 32 * kb, L1Assoc: 8, L2Size: 256 * kb, L2Assoc: 8,
		L3Size: 4 * mb, L3Assoc: 16, L3Slices: 1,
		L1Policy: "PLRU", L2Policy: "PLRU", L3Policy: "MRU",
		L1Latency: 4, L2Latency: 10, L3Latency: 34, MemLatency: 190,
		NumProgCounters: 4, RefRatio: 0.90,
	},
	{
		Name: "SandyBridge", Model: "Core i7-2600", Gen: 3,
		L1Size: 32 * kb, L1Assoc: 8, L2Size: 256 * kb, L2Assoc: 8,
		L3Size: 8 * mb, L3Assoc: 16, L3Slices: 4,
		L1Policy: "PLRU", L2Policy: "PLRU", L3Policy: "MRU*",
		L1Latency: 4, L2Latency: 11, L3Latency: 30, MemLatency: 190,
		NumProgCounters: 4, RefRatio: 0.90,
	},
	{
		Name: "IvyBridge", Model: "Core i5-3470", Gen: 4,
		L1Size: 32 * kb, L1Assoc: 8, L2Size: 256 * kb, L2Assoc: 8,
		L3Size: 6 * mb, L3Assoc: 12, L3Slices: 4,
		L1Policy: "PLRU", L2Policy: "PLRU",
		L3Adaptive: &Adaptive{
			PolicyA: "QLRU_H11_M1_R1_U2",
			PolicyB: "QLRU_H11_MR161_R1_U2",
			ARanges: []SetRange{{Slice: -1, Lo: 512, Hi: 575}},
			BRanges: []SetRange{{Slice: -1, Lo: 768, Hi: 831}},
		},
		L1Latency: 4, L2Latency: 11, L3Latency: 30, MemLatency: 190,
		NumProgCounters: 4, RefRatio: 0.90,
	},
	{
		Name: "Haswell", Model: "Xeon E3-1225 v3", Gen: 5,
		L1Size: 32 * kb, L1Assoc: 8, L2Size: 256 * kb, L2Assoc: 8,
		L3Size: 8 * mb, L3Assoc: 16, L3Slices: 4,
		L1Policy: "PLRU", L2Policy: "PLRU",
		L3Adaptive: &Adaptive{
			PolicyA: "QLRU_H11_M1_R0_U0",
			PolicyB: "QLRU_H11_MR161_R0_U0",
			ARanges: []SetRange{{Slice: 0, Lo: 512, Hi: 575}},
			BRanges: []SetRange{{Slice: 0, Lo: 768, Hi: 831}},
		},
		L1Latency: 4, L2Latency: 11, L3Latency: 34, MemLatency: 190,
		NumProgCounters: 4, RefRatio: 0.90,
	},
	{
		Name: "Broadwell", Model: "Core i5-5200U", Gen: 6,
		L1Size: 32 * kb, L1Assoc: 8, L2Size: 256 * kb, L2Assoc: 8,
		L3Size: 3 * mb, L3Assoc: 12, L3Slices: 2,
		L1Policy: "PLRU", L2Policy: "PLRU",
		L3Adaptive: &Adaptive{
			PolicyA: "QLRU_H11_M1_R0_U0",
			PolicyB: "QLRU_H11_MR161_R0_U0",
			ARanges: []SetRange{{Slice: 0, Lo: 512, Hi: 575}, {Slice: 1, Lo: 768, Hi: 831}},
			BRanges: []SetRange{{Slice: 1, Lo: 512, Hi: 575}, {Slice: 0, Lo: 768, Hi: 831}},
		},
		L1Latency: 4, L2Latency: 11, L3Latency: 30, MemLatency: 190,
		NumProgCounters: 4, RefRatio: 0.90,
	},
	{
		Name: "Skylake", Model: "Core i7-6500U", Gen: 7,
		L1Size: 32 * kb, L1Assoc: 8, L2Size: 256 * kb, L2Assoc: 4,
		L3Size: 4 * mb, L3Assoc: 16, L3Slices: 2,
		L1Policy: "PLRU", L2Policy: "QLRU_H00_M1_R2_U1", L3Policy: "QLRU_H11_M1_R0_U0",
		L1Latency: 4, L2Latency: 12, L3Latency: 34, MemLatency: 200,
		NumProgCounters: 4, RefRatio: 0.88,
	},
	{
		Name: "KabyLake", Model: "Core i7-7700", Gen: 8,
		L1Size: 32 * kb, L1Assoc: 8, L2Size: 256 * kb, L2Assoc: 4,
		L3Size: 8 * mb, L3Assoc: 16, L3Slices: 4,
		L1Policy: "PLRU", L2Policy: "QLRU_H00_M1_R2_U1", L3Policy: "QLRU_H11_M1_R0_U0",
		L1Latency: 4, L2Latency: 12, L3Latency: 34, MemLatency: 200,
		NumProgCounters: 4, RefRatio: 0.88,
	},
	{
		Name: "CoffeeLake", Model: "Core i7-8700K", Gen: 9,
		L1Size: 32 * kb, L1Assoc: 8, L2Size: 256 * kb, L2Assoc: 4,
		L3Size: 8 * mb, L3Assoc: 16, L3Slices: 8,
		L1Policy: "PLRU", L2Policy: "QLRU_H00_M1_R2_U1", L3Policy: "QLRU_H11_M1_R0_U0",
		L1Latency: 4, L2Latency: 12, L3Latency: 36, MemLatency: 200,
		NumProgCounters: 4, RefRatio: 0.88,
	},
	{
		Name: "CannonLake", Model: "Core i3-8121U", Gen: 10,
		L1Size: 32 * kb, L1Assoc: 8, L2Size: 256 * kb, L2Assoc: 4,
		L3Size: 4 * mb, L3Assoc: 16, L3Slices: 2,
		L1Policy: "PLRU", L2Policy: "QLRU_H00_M1_R0_U1", L3Policy: "QLRU_H11_M1_R0_U0",
		L1Latency: 5, L2Latency: 13, L3Latency: 36, MemLatency: 200,
		NumProgCounters: 4, RefRatio: 0.88,
	},
}

// zen is an AMD Zen configuration (family 17h: six programmable counters).
// Its cache policies are not part of Table I — the paper could not disable
// AMD prefetchers — but the model exercises the AMD counter configuration.
var zen = CPU{
	Name: "Zen", Model: "Ryzen 7 1800X", Gen: 0,
	L1Size: 32 * kb, L1Assoc: 8, L2Size: 512 * kb, L2Assoc: 8,
	L3Size: 8 * mb, L3Assoc: 16, L3Slices: 2,
	L1Policy: "LRU", L2Policy: "LRU", L3Policy: "LRU",
	L1Latency: 4, L2Latency: 12, L3Latency: 35, MemLatency: 210,
	NumProgCounters: 6, RefRatio: 0.92,
}

// Table1 returns the ten Intel CPUs of Table I, in generation order.
func Table1() []CPU {
	out := make([]CPU, len(table1))
	copy(out, table1)
	return out
}

// Zen returns the AMD Zen model.
func Zen() CPU { return zen }

// ByName finds a CPU model by microarchitecture name (case-insensitive).
func ByName(name string) (CPU, error) {
	for _, c := range table1 {
		if equalFold(c.Name, name) {
			return c, nil
		}
	}
	if equalFold(zen.Name, name) {
		return zen, nil
	}
	return CPU{}, fmt.Errorf("uarch: unknown CPU %q (known: %s)", name, NameList())
}

// NameList returns the catalog names, comma-separated.
func NameList() string {
	s := ""
	for i, c := range table1 {
		if i > 0 {
			s += ", "
		}
		s += c.Name
	}
	return s + ", " + zen.Name
}

func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// IntelEventTable maps Intel-style (event, umask) encodings to the
// simulator's events. The same encodings are used for every Intel model in
// the catalog (a simplification; real parts vary).
func IntelEventTable() map[uint16]pmu.Event {
	t := map[uint16]pmu.Event{
		machine.EvtSelKey(0xC0, 0x00): pmu.EvInstRetired,
		machine.EvtSelKey(0x0E, 0x01): pmu.EvUopsIssued,
		machine.EvtSelKey(0xD0, 0x81): pmu.EvLoadRetired,
		machine.EvtSelKey(0xD0, 0x82): pmu.EvStoreRetired,
		machine.EvtSelKey(0xD1, 0x01): pmu.EvLoadL1Hit,
		machine.EvtSelKey(0xD1, 0x08): pmu.EvLoadL1Miss,
		machine.EvtSelKey(0xD1, 0x02): pmu.EvLoadL2Hit,
		machine.EvtSelKey(0xD1, 0x10): pmu.EvLoadL2Miss,
		machine.EvtSelKey(0xD1, 0x04): pmu.EvLoadL3Hit,
		machine.EvtSelKey(0xD1, 0x20): pmu.EvLoadL3Miss,
		machine.EvtSelKey(0xC4, 0x00): pmu.EvBrRetired,
		machine.EvtSelKey(0xC5, 0x00): pmu.EvBrMispRetired,
		machine.EvtSelKey(0x24, 0x38): pmu.EvL2Prefetch,
	}
	for p := 0; p < 8; p++ {
		t[machine.EvtSelKey(0xA1, 1<<p)] = pmu.EvUopsPort0 + pmu.Event(p)
	}
	return t
}
