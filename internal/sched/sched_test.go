package sched

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"

	"nanobench/internal/nano"
	"nanobench/internal/perfcfg"
	"nanobench/internal/sim/machine"
)

// testJobs builds a seed-sensitive job mix: user-mode configurations see
// timer-interrupt noise drawn from the machine RNG, so any scheduling
// leak into the seeding shows up as value differences.
func testJobs(n int) []Job {
	asms := []string{
		"add rbx, rbx",
		"imul rbx, rbx",
		"mov r14, [r14]",
		"shl rbx, 1",
	}
	jobs := make([]Job, n)
	for i := range jobs {
		mode := machine.Kernel
		if i%3 == 0 {
			mode = machine.User
		}
		cfg := nano.Config{
			Code:        nano.MustAsm(asms[i%len(asms)]),
			CodeInit:    nano.MustAsm("mov [r14], r14"),
			UnrollCount: 20 + i%2,
			WarmUpCount: 1,
		}
		jobs[i] = Job{CPU: "Skylake", Mode: mode, Cfg: cfg}
	}
	return jobs
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	jobs := testJobs(12)
	var base []*nano.Result
	for _, workers := range []int{1, 4, 16} {
		res, err := New(Options{Workers: workers, RootSeed: 7}).Run(jobs)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(res) != len(jobs) {
			t.Fatalf("workers=%d: %d results for %d jobs", workers, len(res), len(jobs))
		}
		if base == nil {
			base = res
			continue
		}
		for i := range res {
			if !res[i].Equal(base[i]) {
				t.Errorf("workers=%d: job %d differs from the 1-worker run:\n%v\nvs\n%v",
					workers, i, res[i], base[i])
			}
		}
	}
}

func TestDifferentRootSeedsChangeUserModeResults(t *testing.T) {
	// Sanity check that the determinism test above can fail at all: a
	// user-mode evaluation must be seed-sensitive.
	// Long enough that several timer interrupts land inside the
	// measurement (mean interval 200k cycles; this runs ~1.6M).
	job := Job{CPU: "Skylake", Mode: machine.User, Cfg: nano.Config{
		Code:          nano.MustAsm("mov r14, [r14]"),
		CodeInit:      nano.MustAsm("mov [r14], r14"),
		UnrollCount:   100,
		LoopCount:     2000,
		NMeasurements: 1,
	}}
	differs := false
	a, err := New(Options{Workers: 1, RootSeed: 1}).Run([]Job{job})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(2); seed < 6 && !differs; seed++ {
		b, err := New(Options{Workers: 1, RootSeed: seed}).Run([]Job{job})
		if err != nil {
			t.Fatal(err)
		}
		differs = !a[0].Equal(b[0])
	}
	if !differs {
		t.Error("user-mode results identical across root seeds; determinism tests prove nothing")
	}
}

func TestCacheHitPointerDistinctValueEqual(t *testing.T) {
	cache := NewCache()
	ex := New(Options{Workers: 2, RootSeed: 3, Cache: cache})
	jobs := testJobs(6)

	first, err := ex.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if hits, _ := cache.Stats(); hits != 0 {
		t.Errorf("cold run recorded %d hits", hits)
	}

	// The second run must be served from the cache: value-equal results
	// behind distinct pointers.
	var items []Item
	for it := range ex.Stream(jobs) {
		items = append(items, it)
	}
	for _, it := range items {
		if it.Err != nil {
			t.Fatalf("job %d: %v", it.Index, it.Err)
		}
		if !it.CacheHit {
			t.Errorf("job %d: expected a cache hit on the warm run", it.Index)
		}
		if it.Result == first[it.Index] {
			t.Errorf("job %d: cache returned the identical pointer", it.Index)
		}
		if !it.Result.Equal(first[it.Index]) {
			t.Errorf("job %d: cached result differs:\n%vvs\n%v", it.Index, it.Result, first[it.Index])
		}
	}
	if cache.Len() == 0 {
		t.Error("cache is empty after a cold run")
	}
}

func TestErrorInOneJobDoesNotWedgePool(t *testing.T) {
	jobs := testJobs(8)
	jobs[2].CPU = "NoSuchCPU"                // fails at machine construction
	jobs[5].Cfg = nano.Config{LoopCount: -1} // fails config validation
	res, err := New(Options{Workers: 4, RootSeed: 1}).Run(jobs)
	if err == nil {
		t.Fatal("expected an error")
	}
	if !strings.Contains(err.Error(), "job 2") || !strings.Contains(err.Error(), "job 5") {
		t.Errorf("error does not identify the failing jobs: %v", err)
	}
	for i, r := range res {
		switch i {
		case 2, 5:
			if r != nil {
				t.Errorf("failed job %d has a result", i)
			}
		default:
			if r == nil {
				t.Errorf("job %d has no result; the pool wedged", i)
			}
		}
	}
}

func TestStreamDeliversInIndexOrder(t *testing.T) {
	jobs := testJobs(10)
	next := 0
	for it := range New(Options{Workers: 4, RootSeed: 9}).Stream(jobs) {
		if it.Index != next {
			t.Fatalf("stream delivered index %d, want %d", it.Index, next)
		}
		if it.Err != nil {
			t.Fatalf("job %d: %v", it.Index, it.Err)
		}
		next++
	}
	if next != len(jobs) {
		t.Fatalf("stream delivered %d items, want %d", next, len(jobs))
	}
}

func TestDuplicateJobsShareOneEvaluation(t *testing.T) {
	// Without a cache, identical jobs still collapse to one evaluation
	// seeded by the LOWEST index, so duplicates are value-equal but
	// pointer-distinct — and independent of scheduling.
	cfg := nano.Config{Code: nano.MustAsm("add rbx, rbx"), UnrollCount: 10}
	jobs := []Job{
		{CPU: "Skylake", Mode: machine.User, Cfg: cfg},
		{CPU: "Skylake", Mode: machine.Kernel, Cfg: cfg},
		{CPU: "Skylake", Mode: machine.User, Cfg: cfg},
	}
	res, err := New(Options{Workers: 3, RootSeed: 5}).Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if !res[0].Equal(res[2]) {
		t.Errorf("duplicate jobs differ:\n%vvs\n%v", res[0], res[2])
	}
	if res[0] == res[2] {
		t.Error("duplicate jobs share one Result pointer")
	}
}

func TestKeyCanonicalization(t *testing.T) {
	code := nano.MustAsm("nop")
	implicit := nano.Config{Code: code}
	explicit := nano.Config{Code: code, UnrollCount: 100, NMeasurements: 10}
	sky := func(cfg nano.Config) Job { return Job{CPU: "Skylake", Mode: machine.Kernel, Cfg: cfg} }
	if KeyOf(sky(implicit)) != KeyOf(sky(explicit)) {
		t.Error("defaulted and explicit configs hash differently")
	}
	variations := []struct {
		name string
		job  Job
	}{
		{"cpu", Job{CPU: "Haswell", Mode: machine.Kernel, Cfg: implicit}},
		{"mode", Job{CPU: "Skylake", Mode: machine.User, Cfg: implicit}},
		{"bigarea", Job{CPU: "Skylake", Mode: machine.Kernel, Cfg: implicit, BigArea: 4 << 20}},
		{"code", sky(nano.Config{Code: nano.MustAsm("add rbx, rbx")})},
		{"init", sky(nano.Config{Code: code, CodeInit: code})},
		{"unroll", sky(nano.Config{Code: code, UnrollCount: 7})},
		{"loop", sky(nano.Config{Code: code, LoopCount: 3})},
		{"nomem", sky(nano.Config{Code: code, NoMem: true})},
		{"basic", sky(nano.Config{Code: code, BasicMode: true})},
		{"agg", sky(nano.Config{Code: code, Aggregate: nano.Avg})},
		{"events", sky(nano.Config{Code: code, Events: perfcfg.MustParse("0E.01 UOPS")})},
	}
	base := KeyOf(sky(implicit))
	seenKeys := map[Key]string{base: "base"}
	for _, v := range variations {
		k := KeyOf(v.job)
		if prev, dup := seenKeys[k]; dup {
			t.Errorf("variation %q collides with %q", v.name, prev)
		}
		seenKeys[k] = v.name
	}
	if withSeed(base, 1) == withSeed(base, 2) {
		t.Error("cache keys for different seeds collide")
	}
	if withSeed(base, 1) != withSeed(base, 1) {
		t.Error("withSeed is not a pure function")
	}
}

// TestKeyCoversEveryConfigField pins the field counts KeyOf was written
// against: growing Job, nano.Config, or perfcfg.EventSpec without
// extending the hash would silently alias distinct evaluations.
func TestKeyCoversEveryConfigField(t *testing.T) {
	if n := reflect.TypeOf(Job{}).NumField(); n != 4 {
		t.Errorf("sched.Job has %d fields; update sched.KeyOf and this count", n)
	}
	if n := reflect.TypeOf(nano.Config{}).NumField(); n != 12 {
		t.Errorf("nano.Config has %d fields; update sched.KeyOf and this count", n)
	}
	if n := reflect.TypeOf(perfcfg.EventSpec{}).NumField(); n != 6 {
		t.Errorf("perfcfg.EventSpec has %d fields; update sched.writeEvent and this count", n)
	}
}

// TestCacheDoesNotServeAcrossSeeds: the same job content at a different
// batch index derives a different seed and must be re-evaluated, not
// served the other index's cached result.
func TestCacheDoesNotServeAcrossSeeds(t *testing.T) {
	seedSensitive := nano.Config{
		Code:          nano.MustAsm("mov r14, [r14]"),
		CodeInit:      nano.MustAsm("mov [r14], r14"),
		UnrollCount:   100,
		LoopCount:     2000,
		NMeasurements: 1,
	}
	job := Job{CPU: "Skylake", Mode: machine.User, Cfg: seedSensitive}
	filler := Job{CPU: "Skylake", Mode: machine.Kernel, Cfg: nano.Config{Code: nano.MustAsm("nop")}}

	cache := NewCache()
	ex := New(Options{Workers: 1, RootSeed: 42, Cache: cache})
	atIndex0, err := ex.Run([]Job{job})
	if err != nil {
		t.Fatal(err)
	}
	// Same content now at index 1: must not be served index 0's result.
	atIndex1, err := ex.Run([]Job{filler, job})
	if err != nil {
		t.Fatal(err)
	}
	fresh, err := New(Options{Workers: 1, RootSeed: 42}).Run([]Job{filler, job})
	if err != nil {
		t.Fatal(err)
	}
	if !atIndex1[1].Equal(fresh[1]) {
		t.Errorf("warm cache changed an index-1 result:\n%vvs fresh\n%v", atIndex1[1], fresh[1])
	}
	// And the index-0 evaluation itself must hit when repeated.
	again, err := ex.Run([]Job{job})
	if err != nil {
		t.Fatal(err)
	}
	if !again[0].Equal(atIndex0[0]) {
		t.Errorf("repeated batch not reproduced from cache")
	}
}

func TestDeriveSeedStableAndSpread(t *testing.T) {
	a, b := DeriveSeed(42, 0), DeriveSeed(42, 0)
	if a != b {
		t.Error("DeriveSeed is not a pure function")
	}
	seen := map[int64]bool{}
	for i := 0; i < 1000; i++ {
		seen[DeriveSeed(42, i)] = true
	}
	if len(seen) != 1000 {
		t.Errorf("only %d distinct seeds from 1000 indices", len(seen))
	}
	if DeriveSeed(1, 5) == DeriveSeed(2, 5) {
		t.Error("root seed does not influence the derivation")
	}
}

func TestForEachRunsEveryIndexDespiteErrors(t *testing.T) {
	var ran [16]int32
	boom := errors.New("boom")
	err := ForEach(len(ran), 4, func(i int) error {
		atomic.AddInt32(&ran[i], 1)
		if i == 3 || i == 9 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("joined error lost the cause: %v", err)
	}
	for i, n := range ran {
		if n != 1 {
			t.Errorf("index %d ran %d times", i, n)
		}
	}
	if err := ForEach(0, 4, func(int) error { return boom }); err != nil {
		t.Errorf("ForEach(0, ...) = %v", err)
	}
}

func TestRunEmptyBatch(t *testing.T) {
	res, err := New(Options{}).Run(nil)
	if err != nil || len(res) != 0 {
		t.Fatalf("empty batch: %v, %v", res, err)
	}
	for range New(Options{}).Stream(nil) {
		t.Fatal("empty stream delivered an item")
	}
}

func TestRunContextPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cache := NewCache()
	ex := New(Options{Workers: 2, RootSeed: 1, Cache: cache})
	jobs := testJobs(6)
	res, err := ex.RunContext(ctx, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i, r := range res {
		if r != nil {
			t.Errorf("job %d produced a result under a cancelled context", i)
		}
	}
	if cache.Len() != 0 {
		t.Errorf("cancelled batch cached %d entries", cache.Len())
	}
	// The executor is reusable after cancellation.
	res, err = ex.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if r == nil {
			t.Fatalf("job %d: no result on the follow-up run", i)
		}
	}
}

func TestStreamContextCancelDeliversEveryIndexInOrder(t *testing.T) {
	// Cancel while the stream is mid-flight: every index must still be
	// delivered exactly once, in order, each either with a result or with
	// the context error, and the channel must close.
	jobs := testJobs(16)
	ctx, cancel := context.WithCancel(context.Background())
	ch := New(Options{Workers: 2, RootSeed: 3}).StreamContext(ctx, jobs)
	next, results, cancelled := 0, 0, 0
	for it := range ch {
		if it.Index != next {
			t.Fatalf("stream delivered index %d, want %d", it.Index, next)
		}
		next++
		switch {
		case it.Err == nil && it.Result != nil:
			results++
		case errors.Is(it.Err, context.Canceled):
			cancelled++
		default:
			t.Fatalf("item %d: unexpected state (res=%v err=%v)", it.Index, it.Result, it.Err)
		}
		if next == 2 {
			cancel()
		}
	}
	cancel()
	if next != len(jobs) {
		t.Fatalf("stream delivered %d of %d items", next, len(jobs))
	}
	if results < 2 {
		t.Errorf("cancellation discarded already-completed results (%d delivered)", results)
	}
}
