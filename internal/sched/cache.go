package sched

import (
	"container/list"
	"crypto/sha256"
	"encoding/binary"
	"hash"
	"sync"

	"nanobench/internal/nano"
	"nanobench/internal/perfcfg"
)

// Key is the content address of one evaluation: a SHA-256 over the CPU
// name, privilege mode, big-area size, and the canonicalized
// configuration.
type Key [sha256.Size]byte

// KeyOf computes the content key of a job: everything that determines its
// result except the machine seed. The config is canonicalized first
// (nano.Config.Canonical) so that defaulted and explicit forms of the
// same evaluation collide.
//
// Every Job, Config, and EventSpec field participates in the hash; the
// field guard in sched_test.go fails when any of the structs grows a
// field this function does not yet cover.
func KeyOf(j Job) Key {
	cfg := j.Cfg.Canonical()
	h := sha256.New()
	writeString(h, j.CPU)
	writeUint(h, uint64(j.Mode))
	writeUint(h, j.BigArea)
	writeBytes(h, cfg.Code)
	writeBytes(h, cfg.CodeInit)
	writeUint(h, uint64(cfg.UnrollCount))
	writeUint(h, uint64(cfg.LoopCount))
	writeUint(h, uint64(cfg.NMeasurements))
	writeUint(h, uint64(cfg.WarmUpCount))
	writeUint(h, uint64(cfg.Aggregate))
	writeBool(h, cfg.BasicMode)
	writeBool(h, cfg.NoMem)
	writeUint(h, uint64(len(cfg.Events)))
	for _, ev := range cfg.Events {
		writeEvent(h, ev)
	}
	writeBool(h, cfg.UseBigArea)
	writeBool(h, cfg.DropSamples)
	var k Key
	h.Sum(k[:0])
	return k
}

// withSeed extends a content key with the derived machine seed, forming
// the cache key. Pinning the seed guarantees a cache hit returns exactly
// the value a cold evaluation of that (content, seed) pair would compute:
// the same job content at a different batch index gets a different seed,
// a different cache key, and a fresh simulation — never a stale result
// from another seed.
func withSeed(k Key, seed int64) Key {
	h := sha256.New()
	h.Write(k[:])
	writeUint(h, uint64(seed))
	var out Key
	h.Sum(out[:0])
	return out
}

func writeEvent(h hash.Hash, ev perfcfg.EventSpec) {
	writeUint(h, uint64(ev.Kind))
	writeUint(h, uint64(ev.EvtSel))
	writeUint(h, uint64(ev.Umask))
	writeString(h, ev.CBoEv)
	writeUint(h, uint64(ev.Addr))
	writeString(h, ev.Name)
}

// The writers length-prefix variable-sized fields so that adjacent fields
// can never alias ("ab"+"c" vs "a"+"bc").
func writeBytes(h hash.Hash, b []byte) {
	writeUint(h, uint64(len(b)))
	h.Write(b)
}

func writeString(h hash.Hash, s string) {
	writeUint(h, uint64(len(s)))
	h.Write([]byte(s))
}

func writeUint(h hash.Hash, v uint64) {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	h.Write(buf[:])
}

func writeBool(h hash.Hash, v bool) {
	if v {
		writeUint(h, 1)
	} else {
		writeUint(h, 0)
	}
}

// Cache memoizes evaluation results by content key, optionally bounded
// by a least-recently-used entry limit. It is safe for concurrent use;
// all accessors hand out deep copies, so cached values are immutable no
// matter what callers do with the results.
type Cache struct {
	mu      sync.Mutex
	entries map[Key]*list.Element // values are *cacheEntry
	lru     *list.List            // front = most recently used
	max     int                   // 0: unbounded
	hits    uint64
	misses  uint64
	evicted uint64
}

type cacheEntry struct {
	key Key
	res *nano.Result
}

// NewCache builds an empty, unbounded result cache — the CLI default,
// where a cache lives for one sweep and eviction would only cost
// re-simulations.
func NewCache() *Cache { return NewCacheLRU(0) }

// NewCacheLRU builds an empty result cache bounded to at most maxEntries
// evaluations; storing past the bound evicts the least recently used
// entry (both lookups and stores refresh recency). maxEntries <= 0 means
// unbounded. Long-running shared caches — the nanobenchd server — should
// always set a bound.
func NewCacheLRU(maxEntries int) *Cache {
	if maxEntries < 0 {
		maxEntries = 0
	}
	return &Cache{
		entries: make(map[Key]*list.Element),
		lru:     list.New(),
		max:     maxEntries,
	}
}

// get returns the cached result for k, or nil. The caller must clone
// before handing the value out.
func (c *Cache) get(k Key) *nano.Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	el := c.entries[k]
	if el == nil {
		c.misses++
		return nil
	}
	c.hits++
	c.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).res
}

// put stores a private copy of r under k, evicting the least recently
// used entry when the bound is exceeded.
func (c *Cache) put(k Key, r *nano.Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[k]; ok {
		el.Value.(*cacheEntry).res = r.Clone()
		c.lru.MoveToFront(el)
		return
	}
	c.entries[k] = c.lru.PushFront(&cacheEntry{key: k, res: r.Clone()})
	if c.max > 0 && c.lru.Len() > c.max {
		oldest := c.lru.Back()
		c.lru.Remove(oldest)
		delete(c.entries, oldest.Value.(*cacheEntry).key)
		c.evicted++
	}
}

// Len returns the number of cached evaluations.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Stats returns the lookup hit and miss counts so far.
func (c *Cache) Stats() (hits, misses uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// CacheInfo is a point-in-time snapshot of a cache's occupancy and
// lookup counters — the instrumentation behind the server's /v1/stats.
type CacheInfo struct {
	// Hits and Misses count lookups so far.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	// Entries is the current number of cached evaluations; Evictions
	// counts entries dropped by the LRU bound.
	Entries   int    `json:"entries"`
	Evictions uint64 `json:"evictions"`
	// MaxEntries is the LRU bound (0: unbounded).
	MaxEntries int `json:"max_entries"`
}

// Info returns a consistent snapshot of the cache's counters.
func (c *Cache) Info() CacheInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheInfo{
		Hits:       c.hits,
		Misses:     c.misses,
		Entries:    len(c.entries),
		Evictions:  c.evicted,
		MaxEntries: c.max,
	}
}
