package sched

import (
	"fmt"
	"testing"

	"nanobench/internal/nano"
	"nanobench/internal/sim/machine"
)

// keyN builds n distinct content keys.
func keyN(n int) []Key {
	keys := make([]Key, n)
	for i := range keys {
		keys[i] = KeyOf(Job{CPU: "Skylake", Mode: machine.Kernel, Cfg: nano.Config{
			Code: []byte{byte(i), byte(i >> 8)},
		}})
	}
	return keys
}

// resN builds a marker result distinguishable per index.
func resN(t *testing.T, i int) *nano.Result {
	t.Helper()
	var r nano.Result
	if err := r.UnmarshalJSON([]byte(fmt.Sprintf(`{"metrics":[{"name":"m","value":%d}]}`, i))); err != nil {
		t.Fatal(err)
	}
	return &r
}

func TestCacheLRUEvictsOldest(t *testing.T) {
	c := NewCacheLRU(2)
	keys := keyN(3)
	c.put(keys[0], resN(t, 0))
	c.put(keys[1], resN(t, 1))
	// Touch key 0 so key 1 is the LRU victim.
	if c.get(keys[0]) == nil {
		t.Fatal("key 0 missing before eviction")
	}
	c.put(keys[2], resN(t, 2))

	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	if c.get(keys[1]) != nil {
		t.Error("LRU entry survived eviction")
	}
	if c.get(keys[0]) == nil || c.get(keys[2]) == nil {
		t.Error("recently used entries were evicted")
	}

	info := c.Info()
	if info.Evictions != 1 || info.Entries != 2 || info.MaxEntries != 2 {
		t.Errorf("Info = %+v, want 1 eviction, 2 entries, max 2", info)
	}
	// 4 hits (keys 0, 0, 2) minus the miss on the evicted key 1.
	if info.Hits != 3 || info.Misses != 1 {
		t.Errorf("Info = %+v, want 3 hits, 1 miss", info)
	}
}

func TestCacheLRUPutRefreshesAndReplaces(t *testing.T) {
	c := NewCacheLRU(2)
	keys := keyN(3)
	c.put(keys[0], resN(t, 0))
	c.put(keys[1], resN(t, 1))
	// Re-putting key 0 must replace in place (no growth) and refresh its
	// recency, making key 1 the next victim.
	c.put(keys[0], resN(t, 42))
	c.put(keys[2], resN(t, 2))

	if c.get(keys[1]) != nil {
		t.Error("key 1 should have been evicted")
	}
	got := c.get(keys[0])
	if got == nil {
		t.Fatal("key 0 evicted")
	}
	if v, ok := got.Get("m"); !ok || v != 42 {
		t.Errorf("re-put did not replace value: got %v", v)
	}
}

func TestCacheUnboundedNeverEvicts(t *testing.T) {
	c := NewCache()
	keys := keyN(100)
	for i, k := range keys {
		c.put(k, resN(t, i))
	}
	if c.Len() != 100 {
		t.Fatalf("Len = %d, want 100", c.Len())
	}
	if info := c.Info(); info.Evictions != 0 || info.MaxEntries != 0 {
		t.Errorf("Info = %+v, want unbounded with no evictions", info)
	}
}
