// Package sched is a deterministic work-stealing batch executor for
// microbenchmark sweeps. It fans a slice of jobs — each a (CPU model,
// privilege mode, nano.Config) triple — out across a pool of
// independently-seeded simulated machines, one live machine per in-flight
// job (a machine.Machine is single-threaded), and memoizes results in a
// content-addressed cache so repeated sweeps hit memory instead of
// re-simulating.
//
// # Seeding and determinism contract
//
// Results are byte-identical for any worker count. Two mechanisms make the
// schedule invisible in the output:
//
//  1. Every job's machine seed is derived from the executor's root seed and
//     a stable index — never from scheduling order. DeriveSeed(root, i)
//     mixes the root seed and index through SplitMix64.
//
//  2. Jobs are deduplicated by content key before execution. All jobs in a
//     batch that share a key (same CPU, mode, and canonicalized Config) are
//     fulfilled by a single evaluation whose seed comes from the LOWEST job
//     index with that key. Which worker runs the evaluation, and when, can
//     therefore never influence which seed produced a result.
//
// The cache is keyed by content plus the derived seed (see KeyOf and
// withSeed), so re-running a sweep returns the identical values without
// re-simulating, while the same content at a different batch index — a
// different seed — is honestly re-evaluated rather than served a result
// computed under another seed. Cache hits hand out deep copies:
// pointer-distinct, value-equal results. A cache may be bounded with
// least-recently-used eviction (NewCacheLRU) — the configuration
// long-running services use — and exposes occupancy and hit/miss/
// eviction counters (Info) for their stats endpoints.
package sched

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"

	"nanobench/internal/nano"
	"nanobench/internal/sim/machine"
	"nanobench/internal/uarch"
)

// Job is one microbenchmark evaluation: a Config to run on a named CPU
// model in the given privilege mode.
type Job struct {
	// CPU names a machine model from the uarch catalog (e.g. "Skylake").
	CPU string
	// Mode selects user- or kernel-space operation.
	Mode machine.Mode
	// Cfg is the microbenchmark configuration to evaluate.
	Cfg nano.Config
	// BigArea, when nonzero, pre-allocates a physically-contiguous region
	// of that many bytes (Config.UseBigArea requires it).
	BigArea uint64
}

// Options configures an Executor.
type Options struct {
	// Workers bounds the number of concurrently simulated machines;
	// 0 or negative means runtime.NumCPU().
	Workers int
	// RootSeed is the root of the per-job seed derivation (DeriveSeed).
	// The zero value is a valid root seed.
	RootSeed int64
	// Cache, when non-nil, memoizes results across Run/Stream calls. An
	// executor without a cache still deduplicates within each batch.
	Cache *Cache
}

// Item is one delivered result of a streaming batch.
type Item struct {
	// Index is the position of the job in the submitted slice.
	Index int
	// Result is the evaluation's outcome; nil when Err is set.
	Result *nano.Result
	// Err reports a failed job; the remaining jobs still run.
	Err error
	// CacheHit marks a result served from the executor's cache rather
	// than a fresh simulation.
	CacheHit bool
}

// Executor runs batches of jobs. It is safe for concurrent use.
type Executor struct {
	opts Options
}

// New builds an executor.
func New(opts Options) *Executor { return &Executor{opts: opts} }

// DeriveSeed derives the machine seed for the job at the given index from
// the root seed, via a SplitMix64 step. The derivation depends only on
// (root, index), never on scheduling order.
func DeriveSeed(root int64, index int) int64 {
	z := uint64(root) + 0x9E3779B97F4A7C15*(uint64(index)+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// Run evaluates all jobs and returns their results in job order. Failed
// jobs leave a nil entry; the joined per-job errors are returned alongside
// the successful results (an error in one job never wedges the pool).
func (e *Executor) Run(jobs []Job) ([]*nano.Result, error) {
	return e.RunContext(context.Background(), jobs)
}

// RunContext is Run bounded by a context. On cancellation (or a missed
// deadline) the already-completed jobs keep their results — partial
// results are returned, not discarded — and every job that was skipped or
// interrupted carries the context's error in the joined error value.
func (e *Executor) RunContext(ctx context.Context, jobs []Job) ([]*nano.Result, error) {
	results := make([]*nano.Result, len(jobs))
	errs := make([]error, len(jobs))
	e.execute(ctx, jobs, nil, func(it Item) {
		results[it.Index] = it.Result
		errs[it.Index] = it.Err
	})
	return results, errors.Join(errs...)
}

// Stream evaluates all jobs and delivers their results over the returned
// channel in job-index order, each as soon as it and all its predecessors
// are available. The channel is closed after the last item; the sequence
// of items is deterministic for any worker count.
func (e *Executor) Stream(jobs []Job) <-chan Item {
	return e.StreamContext(context.Background(), jobs)
}

// StreamContext is Stream bounded by a context. On cancellation the
// channel still delivers the completed prefix in order; jobs that were
// skipped or interrupted are delivered as Items carrying the context's
// error, and the channel closes promptly after the last one — consumers
// never block on a cancelled sweep, and no worker goroutine outlives it
// beyond the unit it was simulating.
func (e *Executor) StreamContext(ctx context.Context, jobs []Job) <-chan Item {
	return e.stream(ctx, jobs, nil)
}

// IndexedJob is a Job whose machine seed derives from an explicit batch
// index instead of the job's position in the submitted slice. It is the
// primitive behind sharded sweeps: a coordinator that expands and
// deduplicates a batch globally can split the surviving evaluations
// across shards while every shard still derives exactly the seeds the
// single-process batch would have — making the merged results
// byte-identical by construction.
type IndexedJob struct {
	// Job is the evaluation to run.
	Job Job
	// Index is the batch index the machine seed derives from
	// (DeriveSeed(root, Index)); it also keys the result cache together
	// with the job's content.
	Index int
}

// StreamIndexed evaluates the indexed jobs and delivers their results
// like StreamContext: Item.Index is the POSITION in the submitted slice
// (0-based, delivered in order), while each machine seed derives from
// the IndexedJob's explicit Index. Jobs sharing a content key are
// deduplicated; the representative is the one with the lowest explicit
// Index, matching what a whole-batch submission would pick.
func (e *Executor) StreamIndexed(ctx context.Context, ijobs []IndexedJob) <-chan Item {
	jobs := make([]Job, len(ijobs))
	seedIdx := make([]int, len(ijobs))
	for i, ij := range ijobs {
		jobs[i] = ij.Job
		seedIdx[i] = ij.Index
	}
	return e.stream(ctx, jobs, seedIdx)
}

// stream sequences execute's out-of-order deliveries into an in-order
// channel. A nil seedIdx means positional seeding (seedIdx[i] == i).
func (e *Executor) stream(ctx context.Context, jobs []Job, seedIdx []int) <-chan Item {
	// Buffered to len(jobs): the sequencer can always run to completion
	// and exit, so a consumer that abandons the channel early leaks
	// nothing beyond the (garbage-collectable) buffered items.
	out := make(chan Item, len(jobs))
	go func() {
		defer close(out)
		var mu sync.Mutex
		cond := sync.NewCond(&mu)
		ready := make([]bool, len(jobs))
		items := make([]Item, len(jobs))
		go func() {
			e.execute(ctx, jobs, seedIdx, func(it Item) {
				mu.Lock()
				items[it.Index] = it
				ready[it.Index] = true
				cond.Broadcast()
				mu.Unlock()
			})
		}()
		for i := range jobs {
			mu.Lock()
			for !ready[i] {
				cond.Wait()
			}
			it := items[i]
			mu.Unlock()
			out <- it
		}
	}()
	return out
}

// unit is one deduplicated evaluation: the set of job positions sharing a
// content key. The position with the lowest seed index is the
// representative; it alone determines the machine seed.
type unit struct {
	key  Key
	rep  int
	seed int // the representative's seed-deriving batch index
	jobs []int
}

// execute runs the batch, calling deliver exactly once per job position
// (from worker goroutines; deliver must be safe for concurrent use). A nil
// seedIdx derives each machine seed from the job's position; otherwise
// seedIdx[i] supplies the batch index position i's seed derives from.
// When ctx is cancelled, in-flight units still deliver (the runner aborts
// between measurement runs), and every not-yet-started unit delivers the
// context's error instead of simulating.
func (e *Executor) execute(ctx context.Context, jobs []Job, seedIdx []int, deliver func(Item)) {
	at := func(i int) int { return i }
	if seedIdx != nil {
		at = func(i int) int { return seedIdx[i] }
	}
	byKey := make(map[Key]*unit, len(jobs))
	var units []*unit
	for i, j := range jobs {
		k := KeyOf(j)
		u := byKey[k]
		if u == nil {
			u = &unit{key: k, rep: i, seed: at(i)}
			byKey[k] = u
			units = append(units, u)
		} else if at(i) < u.seed {
			u.rep, u.seed = i, at(i)
		}
		u.jobs = append(u.jobs, i)
	}

	workers := e.opts.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(units) {
		workers = len(units)
	}
	if len(units) == 0 {
		return
	}

	// Deal the units round-robin into per-worker deques; idle workers
	// steal from the tail of their neighbours' deques. Placement and
	// stealing affect only which worker simulates a unit — every result
	// is fully determined by the unit itself.
	queues := make([]*deque, workers)
	for w := range queues {
		queues[w] = &deque{}
	}
	for i, u := range units {
		queues[i%workers].push(u)
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(self int) {
			defer wg.Done()
			for {
				u, ok := queues[self].pop()
				if !ok {
					u, ok = steal(queues, self)
				}
				if !ok {
					return
				}
				e.runUnit(ctx, jobs, u, deliver)
			}
		}(w)
	}
	wg.Wait()
}

// runUnit fulfils every job index of one deduplicated unit: from the cache
// when possible, otherwise by simulating the representative job. The cache
// key pins both the content and the derived seed, so a hit is guaranteed
// to equal what a cold evaluation would compute.
func (e *Executor) runUnit(ctx context.Context, jobs []Job, u *unit, deliver func(Item)) {
	if err := ctx.Err(); err != nil {
		for _, i := range u.jobs {
			deliver(Item{Index: i, Err: err})
		}
		return
	}
	seed := DeriveSeed(e.opts.RootSeed, u.seed)
	cacheKey := withSeed(u.key, seed)
	if c := e.opts.Cache; c != nil {
		if hit := c.get(cacheKey); hit != nil {
			for _, i := range u.jobs {
				deliver(Item{Index: i, Result: hit.Clone(), CacheHit: true})
			}
			return
		}
	}
	j := jobs[u.rep]
	res, err := evaluate(ctx, j, seed)
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// Interrupted mid-evaluation: report the bare context error so
			// callers can distinguish cancellation from real failures. (A
			// genuine evaluation error that merely coincides with a
			// cancelled context falls through and keeps its cause.)
			for _, i := range u.jobs {
				deliver(Item{Index: i, Err: err})
			}
			return
		}
		err = fmt.Errorf("sched: job %d (%s, %v): %w", u.rep, j.CPU, j.Mode, err)
		for _, i := range u.jobs {
			deliver(Item{Index: i, Err: err})
		}
		return
	}
	if c := e.opts.Cache; c != nil {
		c.put(cacheKey, res)
	}
	deliver(Item{Index: u.rep, Result: res})
	for _, i := range u.jobs {
		if i != u.rep {
			deliver(Item{Index: i, Result: res.Clone()})
		}
	}
}

// evaluate simulates one job on a fresh machine with the given seed.
func evaluate(ctx context.Context, j Job, seed int64) (*nano.Result, error) {
	cpu, err := uarch.ByName(j.CPU)
	if err != nil {
		return nil, err
	}
	m, err := cpu.NewMachine(seed)
	if err != nil {
		return nil, err
	}
	r, err := nano.NewRunner(m, j.Mode)
	if err != nil {
		return nil, err
	}
	if j.BigArea > 0 {
		if err := r.AllocBigArea(j.BigArea); err != nil {
			return nil, err
		}
	}
	return r.RunContext(ctx, j.Cfg)
}

// deque is a mutex-guarded work-stealing deque of units: the owner pops
// from the front — units were dealt in index order, so completion tracks
// job order and Stream consumers see progressive delivery instead of a
// burst at the end — and thieves take from the back, keeping contention
// at opposite ends. (Units never spawn further units, so the classic
// LIFO-owner discipline would buy no locality here.)
type deque struct {
	mu    sync.Mutex
	units []*unit
}

func (d *deque) push(u *unit) {
	d.mu.Lock()
	d.units = append(d.units, u)
	d.mu.Unlock()
}

func (d *deque) pop() (*unit, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.units) == 0 {
		return nil, false
	}
	u := d.units[0]
	d.units = d.units[1:]
	return u, true
}

func (d *deque) stealTail() (*unit, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.units)
	if n == 0 {
		return nil, false
	}
	u := d.units[n-1]
	d.units = d.units[:n-1]
	return u, true
}

// steal scans the other workers' deques round-robin starting after self.
// Units never spawn further units, so an empty sweep means the pool is
// drained and the worker can retire.
func steal(queues []*deque, self int) (*unit, bool) {
	for off := 1; off < len(queues); off++ {
		if u, ok := queues[(self+off)%len(queues)].stealTail(); ok {
			return u, true
		}
	}
	return nil, false
}

// ForEach runs fn(0), …, fn(n-1) across min(workers, n) goroutines (0 or
// negative workers means runtime.NumCPU()) and returns the joined errors.
// Every index runs exactly once even when earlier indices fail; callers
// that need deterministic output should write into per-index slots and
// emit them after ForEach returns. It is the generic fan-out the
// experiment sweeps use for work — like Table I's per-CPU policy
// inference — that is coarser than a single nano.Config.
func ForEach(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	next := make(chan int)
	go func() {
		for i := 0; i < n; i++ {
			next <- i
		}
		close(next)
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return errors.Join(errs...)
}
