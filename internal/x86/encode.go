package x86

import (
	"encoding/binary"
	"fmt"
)

// EncodeInstr appends the machine-code encoding of in to buf and returns
// the extended buffer. Branch targets must already be resolved to relative
// Imm displacements (the Assemble function handles labels).
func EncodeInstr(buf []byte, in Instr) ([]byte, error) {
	if in.Op == OpNone {
		return buf, nil
	}
	f := findForm(in)
	if f == nil {
		return nil, fmt.Errorf("x86: no encoding for %s", in.String())
	}
	return encodeForm(buf, f, in)
}

// findForm returns the first encoding form matching the instruction's
// operands, or nil.
func findForm(in Instr) *form {
	for _, cand := range encIndex[in.Op] {
		if len(cand.Opds) != len(in.Args) {
			continue
		}
		ok := true
		for i, k := range cand.Opds {
			if !matchArg(in.Args[i], k) {
				ok = false
				break
			}
		}
		if ok {
			return cand
		}
	}
	return nil
}

func encodeForm(buf []byte, f *form, in Instr) ([]byte, error) {
	var rexR, rexX, rexB byte
	opcode := f.Opcode

	var modrm, sib byte
	var hasModRM, hasSib bool
	var disp []byte

	if f.PlusR {
		r := in.Args[f.PlusRIdx].(Reg)
		opcode = f.Opcode + r.Enc()&7
		rexB = r.Enc() >> 3
	}

	if f.HasModRM {
		hasModRM = true
		var regField byte
		if f.Digit >= 0 {
			regField = byte(f.Digit)
		} else {
			r := in.Args[f.RegIdx].(Reg)
			regField = r.Enc() & 7
			rexR = r.Enc() >> 3
		}
		switch rm := in.Args[f.RMIdx].(type) {
		case Reg:
			modrm = 0xC0 | regField<<3 | rm.Enc()&7
			rexB = rm.Enc() >> 3
		case Mem:
			var err error
			var xb [2]byte
			modrm, sib, hasSib, disp, xb, err = encodeMem(rm, regField)
			if err != nil {
				return nil, fmt.Errorf("x86: %s: %v", in.String(), err)
			}
			rexX, rexB = xb[0], xb[1]
		default:
			return nil, fmt.Errorf("x86: %s: bad r/m operand", in.String())
		}
	}

	if f.Prefix != 0 {
		buf = append(buf, f.Prefix)
	}
	if f.RexW || rexR != 0 || rexX != 0 || rexB != 0 {
		rex := byte(0x40) | rexR<<2 | rexX<<1 | rexB
		if f.RexW {
			rex |= 0x08
		}
		buf = append(buf, rex)
	}
	if f.Esc0F {
		buf = append(buf, 0x0F)
	}
	buf = append(buf, opcode)
	if f.hasFixed {
		buf = append(buf, f.Fixed)
	}
	if hasModRM {
		buf = append(buf, modrm)
		if hasSib {
			buf = append(buf, sib)
		}
		buf = append(buf, disp...)
	}

	switch f.Imm {
	case imm8:
		v := in.Args[f.ImmIdx].(Imm)
		buf = append(buf, byte(int8(v)))
	case imm32:
		v := in.Args[f.ImmIdx].(Imm)
		buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(v)))
	case imm64:
		v := in.Args[f.ImmIdx].(Imm)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(v))
	case rel32:
		v, ok := in.Args[f.ImmIdx].(Imm)
		if !ok {
			return nil, fmt.Errorf("x86: %s: unresolved label", in.String())
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(v)))
	}
	return buf, nil
}

// encodeMem encodes a memory operand. It returns the ModRM byte (with the
// reg field filled in), the optional SIB byte, displacement bytes, and the
// REX.X / REX.B extension bits in xb.
func encodeMem(m Mem, regField byte) (modrm, sib byte, hasSib bool, disp []byte, xb [2]byte, err error) {
	mk := func(mod, rm byte) byte { return mod<<6 | regField<<3 | rm }

	if m.AbsValid {
		// [disp32] with no base: ModRM rm=100, SIB base=101 index=100.
		modrm = mk(0, 4)
		sib = 0x25
		hasSib = true
		disp = binary.LittleEndian.AppendUint32(nil, m.Abs)
		return
	}
	if m.Base == RegNone && m.Index == RegNone {
		err = fmt.Errorf("memory operand with no base, index, or absolute address")
		return
	}

	scaleBits := byte(0)
	if m.Index != RegNone {
		if !m.Index.IsGP() || m.Index == RSP {
			err = fmt.Errorf("invalid index register %s", m.Index)
			return
		}
		switch m.Scale {
		case 0, 1:
			scaleBits = 0
		case 2:
			scaleBits = 1
		case 4:
			scaleBits = 2
		case 8:
			scaleBits = 3
		default:
			err = fmt.Errorf("invalid scale %d", m.Scale)
			return
		}
		xb[0] = m.Index.Enc() >> 3
	}

	if m.Base == RegNone {
		// [index*scale + disp32]: SIB with base=101, mod=00, disp32 mandatory.
		modrm = mk(0, 4)
		sib = scaleBits<<6 | (m.Index.Enc()&7)<<3 | 5
		hasSib = true
		disp = binary.LittleEndian.AppendUint32(nil, uint32(m.Disp))
		return
	}

	if !m.Base.IsGP() {
		err = fmt.Errorf("invalid base register %s", m.Base)
		return
	}
	xb[1] = m.Base.Enc() >> 3
	baseLow := m.Base.Enc() & 7

	// Choose displacement size. mod=00 is unavailable when base is RBP/R13.
	var mod byte
	switch {
	case m.Disp == 0 && baseLow != 5:
		mod = 0
	case m.Disp >= -128 && m.Disp <= 127:
		mod = 1
		disp = []byte{byte(int8(m.Disp))}
	default:
		mod = 2
		disp = binary.LittleEndian.AppendUint32(nil, uint32(m.Disp))
	}

	needSib := m.Index != RegNone || baseLow == 4
	if needSib {
		modrm = mk(mod, 4)
		idxBits := byte(4) // none
		if m.Index != RegNone {
			idxBits = m.Index.Enc() & 7
		}
		sib = scaleBits<<6 | idxBits<<3 | baseLow
		hasSib = true
	} else {
		modrm = mk(mod, baseLow)
	}
	return
}

// EncodeAll encodes a sequence of instructions. Label pseudo-instructions
// are skipped; branch targets must be pre-resolved (see Assemble).
func EncodeAll(instrs []Instr) ([]byte, error) {
	var buf []byte
	var err error
	for _, in := range instrs {
		buf, err = EncodeInstr(buf, in)
		if err != nil {
			return nil, err
		}
	}
	return buf, nil
}
