package x86

import (
	"encoding/binary"
	"fmt"
)

type decKey struct {
	prefix byte
	esc    bool
	opcode byte
}

var decIndex = map[decKey][]*form{}

func buildDecodeIndex() {
	for i := range forms {
		f := &forms[i]
		if f.PlusR {
			for r := byte(0); r < 8; r++ {
				k := decKey{f.Prefix, f.Esc0F, f.Opcode + r}
				decIndex[k] = append(decIndex[k], f)
			}
			continue
		}
		k := decKey{f.Prefix, f.Esc0F, f.Opcode}
		decIndex[k] = append(decIndex[k], f)
	}
}

// Decode decodes the instruction at the start of buf, returning the
// instruction and its encoded length.
func Decode(buf []byte) (Instr, int, error) {
	i := 0
	var prefix byte
prefixes:
	for i < len(buf) {
		switch buf[i] {
		case 0x66, 0xF2, 0xF3:
			if prefix != 0 {
				return Instr{}, 0, fmt.Errorf("x86: multiple legacy prefixes")
			}
			prefix = buf[i]
			i++
		default:
			break prefixes
		}
	}
	var rex byte
	if i < len(buf) && buf[i]&0xF0 == 0x40 {
		rex = buf[i]
		i++
	}
	esc := false
	if i < len(buf) && buf[i] == 0x0F {
		esc = true
		i++
	}
	if i >= len(buf) {
		return Instr{}, 0, fmt.Errorf("x86: truncated instruction")
	}
	opcode := buf[i]
	i++

	for _, f := range decIndex[decKey{prefix, esc, opcode}] {
		in, n, ok, err := tryDecode(f, buf, i, opcode, rex)
		if err != nil {
			return Instr{}, 0, err
		}
		if ok {
			return in, n, nil
		}
	}
	return Instr{}, 0, fmt.Errorf("x86: unknown opcode % X (prefix=%02X esc=%v)", opcode, prefix, esc)
}

// tryDecode attempts to decode the remainder of an instruction according to
// form f. It returns ok=false (with nil error) when the form does not match
// (e.g. a /digit mismatch), so the caller can try the next candidate.
func tryDecode(f *form, buf []byte, i int, opcode byte, rex byte) (Instr, int, bool, error) {
	rexW := rex&0x08 != 0
	rexR := (rex >> 2) & 1
	rexX := (rex >> 1) & 1
	rexB := rex & 1
	if f.RexW != rexW {
		return Instr{}, 0, false, nil
	}

	if f.hasFixed {
		if i >= len(buf) || buf[i] != f.Fixed {
			return Instr{}, 0, false, nil
		}
		return Instr{Op: f.Op}, i + 1, true, nil
	}

	args := make([]Arg, len(f.Opds))

	if f.PlusR {
		r := Reg(opcode&7 | rexB<<3)
		if f.Opds[f.PlusRIdx] == KXMM {
			r = XMM0 + r
		}
		args[f.PlusRIdx] = r
	}

	if f.HasModRM {
		if i >= len(buf) {
			return Instr{}, 0, false, fmt.Errorf("x86: truncated ModRM")
		}
		modrm := buf[i]
		i++
		mod := modrm >> 6
		regField := (modrm >> 3) & 7
		rm := modrm & 7

		if f.Digit >= 0 && regField != byte(f.Digit) {
			return Instr{}, 0, false, nil
		}
		if f.RegIdx >= 0 {
			enc := regField | rexR<<3
			if f.Opds[f.RegIdx] == KXMM {
				args[f.RegIdx] = XMM0 + Reg(enc)
			} else {
				args[f.RegIdx] = Reg(enc)
			}
		}

		rmKind := f.Opds[f.RMIdx]
		if mod == 3 {
			if rmKind == KM64 || rmKind == KM8 {
				return Instr{}, 0, false, nil
			}
			enc := rm | rexB<<3
			if rmKind == KXM128 {
				args[f.RMIdx] = XMM0 + Reg(enc)
			} else {
				args[f.RMIdx] = Reg(enc)
			}
		} else {
			mem, n, err := decodeMem(buf, i, mod, rm, rexX, rexB)
			if err != nil {
				return Instr{}, 0, false, err
			}
			i = n
			args[f.RMIdx] = mem
		}
	}

	for idx, k := range f.Opds {
		if k == KCL {
			args[idx] = RCX
		}
	}

	switch f.Imm {
	case imm8:
		if i+1 > len(buf) {
			return Instr{}, 0, false, fmt.Errorf("x86: truncated imm8")
		}
		args[f.ImmIdx] = Imm(int8(buf[i]))
		i++
	case imm32, rel32:
		if i+4 > len(buf) {
			return Instr{}, 0, false, fmt.Errorf("x86: truncated imm32")
		}
		args[f.ImmIdx] = Imm(int32(binary.LittleEndian.Uint32(buf[i:])))
		i += 4
	case imm64:
		if i+8 > len(buf) {
			return Instr{}, 0, false, fmt.Errorf("x86: truncated imm64")
		}
		args[f.ImmIdx] = Imm(int64(binary.LittleEndian.Uint64(buf[i:])))
		i += 8
	}

	return Instr{Op: f.Op, Args: args}, i, true, nil
}

func decodeMem(buf []byte, i int, mod, rm, rexX, rexB byte) (Mem, int, error) {
	m := Mem{Base: RegNone, Index: RegNone, Scale: 1}
	if rm == 4 {
		// SIB byte.
		if i >= len(buf) {
			return m, 0, fmt.Errorf("x86: truncated SIB")
		}
		sib := buf[i]
		i++
		scale := sib >> 6
		index := (sib >> 3) & 7
		base := sib & 7
		if index != 4 || rexX == 1 {
			m.Index = Reg(index | rexX<<3)
			m.Scale = 1 << scale
		}
		if base == 5 && mod == 0 {
			// No base register: disp32 (absolute if no index either).
			if i+4 > len(buf) {
				return m, 0, fmt.Errorf("x86: truncated disp32")
			}
			d := binary.LittleEndian.Uint32(buf[i:])
			i += 4
			if m.Index == RegNone {
				m.AbsValid = true
				m.Abs = d
			} else {
				m.Disp = int32(d)
			}
			return m, i, nil
		}
		m.Base = Reg(base | rexB<<3)
	} else if rm == 5 && mod == 0 {
		return m, 0, fmt.Errorf("x86: RIP-relative addressing not supported")
	} else {
		m.Base = Reg(rm | rexB<<3)
	}

	switch mod {
	case 1:
		if i+1 > len(buf) {
			return m, 0, fmt.Errorf("x86: truncated disp8")
		}
		m.Disp = int32(int8(buf[i]))
		i++
	case 2:
		if i+4 > len(buf) {
			return m, 0, fmt.Errorf("x86: truncated disp32")
		}
		m.Disp = int32(binary.LittleEndian.Uint32(buf[i:]))
		i += 4
	}
	return m, i, nil
}

// InstrLen returns the encoded length of the instruction at the start of
// buf without fully materializing operand values.
func InstrLen(buf []byte) (int, error) {
	_, n, err := Decode(buf)
	return n, err
}

// Disassemble decodes consecutive instructions from buf until it is
// exhausted, rendering each in Intel syntax. It is intended for debugging
// and test output.
func Disassemble(buf []byte) ([]string, error) {
	var out []string
	for off := 0; off < len(buf); {
		in, n, err := Decode(buf[off:])
		if err != nil {
			return out, fmt.Errorf("at offset %d: %w", off, err)
		}
		out = append(out, in.String())
		off += n
	}
	return out, nil
}
