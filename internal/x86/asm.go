package x86

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses Intel-syntax assembly into instructions. Instructions are
// separated by newlines or semicolons. Labels are written "name:"; branch
// targets may be label names or numeric relative displacements. Comments
// start with '#' or "//" and extend to the end of the line.
func Parse(src string) ([]Instr, error) {
	var out []Instr
	for lineNo, line := range strings.Split(src, "\n") {
		if idx := strings.Index(line, "#"); idx >= 0 {
			line = line[:idx]
		}
		if idx := strings.Index(line, "//"); idx >= 0 {
			line = line[:idx]
		}
		for _, stmt := range strings.Split(line, ";") {
			stmt = strings.TrimSpace(stmt)
			if stmt == "" {
				continue
			}
			in, err := parseStmt(stmt)
			if err != nil {
				return nil, fmt.Errorf("line %d: %q: %w", lineNo+1, stmt, err)
			}
			out = append(out, in...)
		}
	}
	return out, nil
}

func parseStmt(stmt string) ([]Instr, error) {
	// Leading label(s).
	var out []Instr
	for {
		idx := strings.Index(stmt, ":")
		if idx < 0 {
			break
		}
		head := strings.TrimSpace(stmt[:idx])
		if head == "" || strings.ContainsAny(head, " \t[,") {
			break
		}
		out = append(out, Instr{Op: OpNone, Label: head})
		stmt = strings.TrimSpace(stmt[idx+1:])
		if stmt == "" {
			return out, nil
		}
	}

	fields := strings.Fields(stmt)
	op, ok := OpNamed(fields[0])
	if !ok {
		return nil, fmt.Errorf("unknown mnemonic %q", fields[0])
	}
	rest := strings.TrimSpace(stmt[len(fields[0]):])
	var args []Arg
	if rest != "" {
		for _, part := range splitOperands(rest) {
			a, err := parseOperand(strings.TrimSpace(part))
			if err != nil {
				return nil, err
			}
			args = append(args, a)
		}
	}
	out = append(out, Instr{Op: op, Args: args})
	return out, nil
}

// splitOperands splits on commas that are not inside brackets.
func splitOperands(s string) []string {
	var parts []string
	depth := 0
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '[':
			depth++
		case ']':
			depth--
		case ',':
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, s[start:])
	return parts
}

func parseOperand(s string) (Arg, error) {
	if s == "" {
		return nil, fmt.Errorf("empty operand")
	}
	ls := upper(s)
	// Optional size qualifier before a memory operand.
	for _, q := range []string{"QWORD PTR", "DWORD PTR", "WORD PTR", "BYTE PTR", "XMMWORD PTR"} {
		if strings.HasPrefix(ls, q) {
			s = strings.TrimSpace(s[len(q):])
			break
		}
	}
	if strings.HasPrefix(s, "[") {
		if !strings.HasSuffix(s, "]") {
			return nil, fmt.Errorf("unterminated memory operand %q", s)
		}
		return parseMem(s[1 : len(s)-1])
	}
	if r, ok := RegNamed(s); ok {
		return r, nil
	}
	if v, err := parseInt(s); err == nil {
		return Imm(v), nil
	}
	if isIdent(s) {
		return LabelRef(s), nil
	}
	return nil, fmt.Errorf("cannot parse operand %q", s)
}

func parseMem(inner string) (Arg, error) {
	m := Mem{Base: RegNone, Index: RegNone, Scale: 1}
	inner = strings.TrimSpace(inner)
	if inner == "" {
		return nil, fmt.Errorf("empty memory operand")
	}

	// Tokenize into signed terms.
	var terms []string
	var signs []int64
	cur := strings.Builder{}
	sign := int64(1)
	flush := func() {
		if cur.Len() > 0 {
			terms = append(terms, strings.TrimSpace(cur.String()))
			signs = append(signs, sign)
			cur.Reset()
		}
	}
	for i := 0; i < len(inner); i++ {
		switch inner[i] {
		case '+':
			flush()
			sign = 1
		case '-':
			if cur.Len() == 0 && len(terms) == 0 {
				// leading minus on first term
				sign = -1
			} else {
				flush()
				sign = -1
			}
		default:
			cur.WriteByte(inner[i])
		}
	}
	flush()

	var disp int64
	var haveDisp bool
	for i, t := range terms {
		if t == "" {
			return nil, fmt.Errorf("malformed memory operand [%s]", inner)
		}
		// register*scale?
		if star := strings.Index(t, "*"); star >= 0 {
			rName := strings.TrimSpace(t[:star])
			sStr := strings.TrimSpace(t[star+1:])
			r, ok := RegNamed(rName)
			if !ok {
				// Maybe "8*RAX" order.
				r, ok = RegNamed(sStr)
				if !ok {
					return nil, fmt.Errorf("bad scaled index %q", t)
				}
				sStr = rName
			}
			sc, err := parseInt(sStr)
			if err != nil {
				return nil, fmt.Errorf("bad scale in %q", t)
			}
			if m.Index != RegNone {
				return nil, fmt.Errorf("multiple index registers in [%s]", inner)
			}
			if signs[i] < 0 {
				return nil, fmt.Errorf("negative register term in [%s]", inner)
			}
			m.Index = r
			m.Scale = uint8(sc)
			continue
		}
		if r, ok := RegNamed(t); ok {
			if signs[i] < 0 {
				return nil, fmt.Errorf("negative register term in [%s]", inner)
			}
			if m.Base == RegNone {
				m.Base = r
			} else if m.Index == RegNone {
				m.Index = r
				m.Scale = 1
			} else {
				return nil, fmt.Errorf("too many registers in [%s]", inner)
			}
			continue
		}
		v, err := parseInt(t)
		if err != nil {
			return nil, fmt.Errorf("bad term %q in [%s]", t, inner)
		}
		disp += signs[i] * v
		haveDisp = true
	}

	if m.Base == RegNone && m.Index == RegNone {
		if !haveDisp {
			return nil, fmt.Errorf("empty memory operand [%s]", inner)
		}
		if disp < 0 || disp > 0xFFFFFFFF {
			return nil, fmt.Errorf("absolute address out of range in [%s]", inner)
		}
		return MemAt(uint32(disp)), nil
	}
	if disp < -(1<<31) || disp >= 1<<31 {
		return nil, fmt.Errorf("displacement out of range in [%s]", inner)
	}
	m.Disp = int32(disp)
	return m, nil
}

func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	var v uint64
	var err error
	ls := strings.ToLower(s)
	switch {
	case strings.HasPrefix(ls, "0x"):
		v, err = strconv.ParseUint(ls[2:], 16, 64)
	case strings.HasSuffix(ls, "h") && len(ls) > 1:
		v, err = strconv.ParseUint(ls[:len(ls)-1], 16, 64)
	default:
		v, err = strconv.ParseUint(ls, 10, 64)
	}
	if err != nil {
		return 0, err
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

func isIdent(s string) bool {
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return len(s) > 0
}

// Assemble parses src and encodes it to machine code, resolving labels to
// rel32 displacements.
func Assemble(src string) ([]byte, error) {
	instrs, err := Parse(src)
	if err != nil {
		return nil, err
	}
	return AssembleInstrs(instrs)
}

// AssembleInstrs encodes a parsed instruction sequence, resolving labels.
func AssembleInstrs(instrs []Instr) ([]byte, error) {
	labels := map[string]int{} // label -> instruction index
	offsets := make([]int, len(instrs)+1)
	type patch struct {
		bufPos int // position of the rel32 field
		end    int // offset of the end of the branch instruction
		label  string
	}
	var patches []patch

	for i, in := range instrs {
		if in.Op == OpNone && in.Label != "" {
			if _, dup := labels[in.Label]; dup {
				return nil, fmt.Errorf("duplicate label %q", in.Label)
			}
			labels[in.Label] = i
		}
	}

	var buf []byte
	for i, in := range instrs {
		offsets[i] = len(buf)
		if in.Op == OpNone {
			continue
		}
		// Replace a LabelRef with a placeholder for encoding.
		enc := in
		labelIdx := -1
		for ai, a := range in.Args {
			if _, ok := a.(LabelRef); ok {
				labelIdx = ai
			}
		}
		if labelIdx >= 0 {
			enc = Instr{Op: in.Op, Args: append([]Arg(nil), in.Args...)}
			enc.Args[labelIdx] = Imm(0)
		}
		var err error
		buf, err = EncodeInstr(buf, enc)
		if err != nil {
			return nil, err
		}
		if labelIdx >= 0 {
			patches = append(patches, patch{
				bufPos: len(buf) - 4,
				end:    len(buf),
				label:  string(in.Args[labelIdx].(LabelRef)),
			})
		}
	}
	offsets[len(instrs)] = len(buf)

	for _, p := range patches {
		idx, ok := labels[p.label]
		if !ok {
			return nil, fmt.Errorf("undefined label %q", p.label)
		}
		rel := offsets[idx] - p.end
		buf[p.bufPos] = byte(rel)
		buf[p.bufPos+1] = byte(rel >> 8)
		buf[p.bufPos+2] = byte(rel >> 16)
		buf[p.bufPos+3] = byte(rel >> 24)
	}
	return buf, nil
}

// MustAssemble is Assemble that panics on error; for tests and examples.
func MustAssemble(src string) []byte {
	b, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return b
}
