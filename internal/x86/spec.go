package x86

// PortMask is a bitmask of execution ports a µop may issue to. The
// simulated core has eight ports with a Skylake-like functional layout:
//
//	ports 0,1,5,6: integer ALU (0,1: also vector FP; 0: divider; 6: branch)
//	ports 2,3:     load / address generation
//	port  4:       store data
//	port  7:       store address (simple)
type PortMask uint16

// Execution port bits.
const (
	P0 PortMask = 1 << iota
	P1
	P2
	P3
	P4
	P5
	P6
	P7
)

// NumPorts is the number of execution ports of the simulated core.
const NumPorts = 8

// Common port groups.
const (
	PortsALU    = P0 | P1 | P5 | P6
	PortsLoad   = P2 | P3
	PortsSTA    = P2 | P3 | P7
	PortsSTD    = P4
	PortsVecFP  = P0 | P1
	PortsVecALU = P0 | P1 | P5
	PortsShift  = P0 | P6
	PortsBranch = P0 | P6
)

// CountPorts returns the number of ports in the mask.
func (m PortMask) CountPorts() int {
	n := 0
	for i := 0; i < NumPorts; i++ {
		if m&(1<<i) != 0 {
			n++
		}
	}
	return n
}

// portListTab precomputes the port-index list of every possible mask. The
// core's dispatch loop fetches one of these per µop; computing (and
// allocating) the list on every dispatch dominated the scheduler's cost.
var portListTab [1 << NumPorts][]int

func init() {
	for m := range portListTab {
		var out []int
		for i := 0; i < NumPorts; i++ {
			if m&(1<<i) != 0 {
				out = append(out, i)
			}
		}
		portListTab[m] = out
	}
}

// Ports returns the port indices in the mask, in ascending order. The
// returned slice is shared and must not be modified.
func (m PortMask) Ports() []int {
	return portListTab[m&(1<<NumPorts-1)]
}

// UopSpec describes one compute µop of an instruction.
type UopSpec struct {
	Ports     PortMask
	Latency   int // cycles from operands-ready to result-ready
	Occupancy int // cycles the chosen port is blocked (non-pipelined units); min 1
}

// Class selects special handling in the core's timing and semantic model.
type Class uint8

// Instruction classes.
const (
	ClassNormal Class = iota
	ClassNop
	ClassPause
	ClassBranch    // conditional and unconditional jumps
	ClassCall      // call (implicit push)
	ClassRet       // ret (implicit pop)
	ClassLFence    // waits for all prior instructions to complete
	ClassMFence    // lfence + store drain
	ClassSFence    // store drain only
	ClassSerialize // CPUID: full serialization with variable latency
	ClassRDTSC
	ClassRDPMC
	ClassRDMSR
	ClassWRMSR
	ClassWBINVD
	ClassCLFLUSH
	ClassPrefetch
	ClassCLI
	ClassSTI
	ClassUD2
	ClassPush
	ClassPop
)

// MaxUopsPerInstr is the largest number of compute µops any instruction
// in the spec table decodes to. DecodedInstr embeds a flat µop array of
// this size so dispatch never chases Spec.Uops; the init check below
// keeps the bound honest when the table grows.
const MaxUopsPerInstr = 2

// InstrSpec is the ground-truth description of an instruction's µops,
// latency, and implicit effects. This table is what case study I recovers
// through microbenchmarks.
type InstrSpec struct {
	Uops        []UopSpec
	Class       Class
	ReadsFlags  bool
	WritesFlags bool
	ImplReads   []Reg
	ImplWrites  []Reg
}

func alu1() []UopSpec { return []UopSpec{{Ports: PortsALU, Latency: 1, Occupancy: 1}} }

var specs = map[Op]InstrSpec{
	MOV:  {Uops: alu1()},
	LEA:  {Uops: []UopSpec{{Ports: P1 | P5, Latency: 1, Occupancy: 1}}},
	XCHG: {Uops: []UopSpec{{Ports: PortsALU, Latency: 1, Occupancy: 1}, {Ports: PortsALU, Latency: 1, Occupancy: 1}}},
	PUSH: {Class: ClassPush, Uops: alu1(), ImplReads: []Reg{RSP}, ImplWrites: []Reg{RSP}},
	POP:  {Class: ClassPop, Uops: alu1(), ImplReads: []Reg{RSP}, ImplWrites: []Reg{RSP}},

	ADD:  {Uops: alu1(), WritesFlags: true},
	SUB:  {Uops: alu1(), WritesFlags: true},
	AND:  {Uops: alu1(), WritesFlags: true},
	OR:   {Uops: alu1(), WritesFlags: true},
	XOR:  {Uops: alu1(), WritesFlags: true},
	CMP:  {Uops: alu1(), WritesFlags: true},
	TEST: {Uops: alu1(), WritesFlags: true},
	ADC:  {Uops: alu1(), ReadsFlags: true, WritesFlags: true},
	SBB:  {Uops: alu1(), ReadsFlags: true, WritesFlags: true},
	INC:  {Uops: alu1(), WritesFlags: true},
	DEC:  {Uops: alu1(), WritesFlags: true},
	NEG:  {Uops: alu1(), WritesFlags: true},
	NOT:  {Uops: alu1()},

	IMUL: {Uops: []UopSpec{{Ports: P1, Latency: 3, Occupancy: 1}}, WritesFlags: true},
	MUL: {Uops: []UopSpec{{Ports: P1, Latency: 3, Occupancy: 1}, {Ports: P5, Latency: 1, Occupancy: 1}},
		WritesFlags: true, ImplReads: []Reg{RAX}, ImplWrites: []Reg{RAX, RDX}},
	DIV: {Uops: []UopSpec{{Ports: P0, Latency: 36, Occupancy: 21}},
		WritesFlags: true, ImplReads: []Reg{RAX, RDX}, ImplWrites: []Reg{RAX, RDX}},

	SHL: {Uops: []UopSpec{{Ports: PortsShift, Latency: 1, Occupancy: 1}}, WritesFlags: true},
	SHR: {Uops: []UopSpec{{Ports: PortsShift, Latency: 1, Occupancy: 1}}, WritesFlags: true},
	SAR: {Uops: []UopSpec{{Ports: PortsShift, Latency: 1, Occupancy: 1}}, WritesFlags: true},
	ROL: {Uops: []UopSpec{{Ports: PortsShift, Latency: 1, Occupancy: 1}}, WritesFlags: true},
	ROR: {Uops: []UopSpec{{Ports: PortsShift, Latency: 1, Occupancy: 1}}, WritesFlags: true},

	POPCNT: {Uops: []UopSpec{{Ports: P1, Latency: 3, Occupancy: 1}}, WritesFlags: true},
	BSF:    {Uops: []UopSpec{{Ports: P1, Latency: 3, Occupancy: 1}}, WritesFlags: true},
	BSR:    {Uops: []UopSpec{{Ports: P1, Latency: 3, Occupancy: 1}}, WritesFlags: true},
	BSWAP:  {Uops: []UopSpec{{Ports: P1 | P5, Latency: 1, Occupancy: 1}}},

	JMP: {Class: ClassBranch, Uops: []UopSpec{{Ports: P6, Latency: 1, Occupancy: 1}}},
	JZ:  {Class: ClassBranch, Uops: []UopSpec{{Ports: PortsBranch, Latency: 1, Occupancy: 1}}, ReadsFlags: true},
	JNZ: {Class: ClassBranch, Uops: []UopSpec{{Ports: PortsBranch, Latency: 1, Occupancy: 1}}, ReadsFlags: true},
	JC:  {Class: ClassBranch, Uops: []UopSpec{{Ports: PortsBranch, Latency: 1, Occupancy: 1}}, ReadsFlags: true},
	JNC: {Class: ClassBranch, Uops: []UopSpec{{Ports: PortsBranch, Latency: 1, Occupancy: 1}}, ReadsFlags: true},
	JL:  {Class: ClassBranch, Uops: []UopSpec{{Ports: PortsBranch, Latency: 1, Occupancy: 1}}, ReadsFlags: true},
	JGE: {Class: ClassBranch, Uops: []UopSpec{{Ports: PortsBranch, Latency: 1, Occupancy: 1}}, ReadsFlags: true},
	JLE: {Class: ClassBranch, Uops: []UopSpec{{Ports: PortsBranch, Latency: 1, Occupancy: 1}}, ReadsFlags: true},
	JG:  {Class: ClassBranch, Uops: []UopSpec{{Ports: PortsBranch, Latency: 1, Occupancy: 1}}, ReadsFlags: true},
	JS:  {Class: ClassBranch, Uops: []UopSpec{{Ports: PortsBranch, Latency: 1, Occupancy: 1}}, ReadsFlags: true},
	JNS: {Class: ClassBranch, Uops: []UopSpec{{Ports: PortsBranch, Latency: 1, Occupancy: 1}}, ReadsFlags: true},
	CALL: {Class: ClassCall, Uops: []UopSpec{{Ports: P6, Latency: 2, Occupancy: 1}},
		ImplReads: []Reg{RSP}, ImplWrites: []Reg{RSP}},
	RET: {Class: ClassRet, Uops: []UopSpec{{Ports: P6, Latency: 2, Occupancy: 1}},
		ImplReads: []Reg{RSP}, ImplWrites: []Reg{RSP}},

	NOP:   {Class: ClassNop},
	PAUSE: {Class: ClassPause},
	UD2:   {Class: ClassUD2},

	LFENCE: {Class: ClassLFence},
	MFENCE: {Class: ClassMFence},
	SFENCE: {Class: ClassSFence},
	CPUID: {Class: ClassSerialize, ImplReads: []Reg{RAX, RCX},
		ImplWrites: []Reg{RAX, RBX, RCX, RDX}},
	RDTSC: {Class: ClassRDTSC, Uops: []UopSpec{{Ports: P0, Latency: 25, Occupancy: 1}, {Ports: P1, Latency: 25, Occupancy: 1}},
		ImplWrites: []Reg{RAX, RDX}},
	RDPMC: {Class: ClassRDPMC, Uops: []UopSpec{{Ports: P0, Latency: 30, Occupancy: 1}, {Ports: P1, Latency: 30, Occupancy: 1}},
		ImplReads: []Reg{RCX}, ImplWrites: []Reg{RAX, RDX}},
	RDMSR: {Class: ClassRDMSR, Uops: []UopSpec{{Ports: P0, Latency: 120, Occupancy: 4}},
		ImplReads: []Reg{RCX}, ImplWrites: []Reg{RAX, RDX}},
	WRMSR:      {Class: ClassWRMSR, ImplReads: []Reg{RCX, RAX, RDX}},
	WBINVD:     {Class: ClassWBINVD},
	CLFLUSH:    {Class: ClassCLFLUSH, Uops: []UopSpec{{Ports: PortsSTA, Latency: 10, Occupancy: 2}}},
	PREFETCHT0: {Class: ClassPrefetch},
	CLI:        {Class: ClassCLI},
	STI:        {Class: ClassSTI},

	MOVAPS: {Uops: []UopSpec{{Ports: PortsVecALU, Latency: 1, Occupancy: 1}}},
	MOVQ:   {Uops: []UopSpec{{Ports: P0 | P5, Latency: 2, Occupancy: 1}}},
	ADDPS:  {Uops: []UopSpec{{Ports: PortsVecFP, Latency: 4, Occupancy: 1}}},
	MULPS:  {Uops: []UopSpec{{Ports: PortsVecFP, Latency: 4, Occupancy: 1}}},
	DIVPS:  {Uops: []UopSpec{{Ports: P0, Latency: 11, Occupancy: 3}}},
	SQRTPS: {Uops: []UopSpec{{Ports: P0, Latency: 12, Occupancy: 3}}},
	ADDPD:  {Uops: []UopSpec{{Ports: PortsVecFP, Latency: 4, Occupancy: 1}}},
	MULPD:  {Uops: []UopSpec{{Ports: PortsVecFP, Latency: 4, Occupancy: 1}}},
	DIVPD:  {Uops: []UopSpec{{Ports: P0, Latency: 14, Occupancy: 4}}},
	ADDSD:  {Uops: []UopSpec{{Ports: PortsVecFP, Latency: 4, Occupancy: 1}}},
	MULSD:  {Uops: []UopSpec{{Ports: PortsVecFP, Latency: 4, Occupancy: 1}}},
	DIVSD:  {Uops: []UopSpec{{Ports: P0, Latency: 14, Occupancy: 4}}},
	SQRTSD: {Uops: []UopSpec{{Ports: P0, Latency: 18, Occupancy: 6}}},
	PADDQ:  {Uops: []UopSpec{{Ports: PortsVecALU, Latency: 1, Occupancy: 1}}},
	PAND:   {Uops: []UopSpec{{Ports: PortsVecALU, Latency: 1, Occupancy: 1}}},
	PXOR:   {Uops: []UopSpec{{Ports: PortsVecALU, Latency: 1, Occupancy: 1}}},
}

// specTab is the array-backed spec table: the per-instruction map lookup
// in Spec was a measurable share of interpreter time, so the map literal
// above is flattened into a dense array indexed by Op at init.
var (
	specTab   [numOps]InstrSpec
	specKnown [numOps]bool
)

func init() {
	for op, s := range specs {
		if len(s.Uops) > MaxUopsPerInstr {
			panic("x86: " + op.String() + " exceeds MaxUopsPerInstr; grow DecodedInstr.Uops")
		}
		specTab[op] = s
		specKnown[op] = true
	}
}

// Spec returns the ground-truth specification for op. It panics if the op
// has no specification (every supported mnemonic must have one; a test
// enforces this).
func Spec(op Op) InstrSpec {
	return *SpecPtr(op)
}

// SpecPtr returns a pointer to the shared specification for op in O(1).
// Callers must not mutate the returned spec. It panics if the op has no
// specification.
func SpecPtr(op Op) *InstrSpec {
	if op >= numOps || !specKnown[op] {
		panic("x86: missing spec for " + op.String())
	}
	return &specTab[op]
}

// HasSpec reports whether op has a timing specification.
func HasSpec(op Op) bool {
	return op < numOps && specKnown[op]
}
