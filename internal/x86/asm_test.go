package x86

import (
	"reflect"
	"strings"
	"testing"
)

// normalize canonicalizes operand details that have several equivalent
// spellings (scale 0 vs 1) so encoded/decoded instructions compare equal.
func normalize(in Instr) Instr {
	out := Instr{Op: in.Op, Args: append([]Arg(nil), in.Args...)}
	for i, a := range out.Args {
		if m, ok := a.(Mem); ok {
			if m.Scale == 0 {
				m.Scale = 1
			}
			out.Args[i] = m
		}
	}
	return out
}

func roundTrip(t *testing.T, in Instr) {
	t.Helper()
	buf, err := EncodeInstr(nil, in)
	if err != nil {
		t.Fatalf("encode %s: %v", in.String(), err)
	}
	dec, n, err := Decode(buf)
	if err != nil {
		t.Fatalf("decode %s (bytes % X): %v", in.String(), buf, err)
	}
	if n != len(buf) {
		t.Fatalf("decode %s: length %d, want %d (bytes % X)", in.String(), n, len(buf), buf)
	}
	want := normalize(in)
	got := normalize(dec)
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("round trip %s: got %s (bytes % X)", want.String(), got.String(), buf)
	}
}

func TestRoundTripRegForms(t *testing.T) {
	regs := []Reg{RAX, RCX, RDX, RBX, RSP, RBP, RSI, RDI, R8, R12, R13, R14, R15}
	ops := []Op{MOV, ADD, ADC, SUB, SBB, AND, OR, XOR, CMP, TEST, XCHG}
	for _, op := range ops {
		for _, a := range regs {
			for _, b := range regs {
				roundTrip(t, I(op, a, b))
			}
		}
	}
}

func TestRoundTripMemForms(t *testing.T) {
	mems := []Mem{
		MemBase(RAX),
		MemBase(RSP),
		MemBase(RBP),
		MemBase(R12),
		MemBase(R13),
		MemBaseDisp(RAX, 8),
		MemBaseDisp(RBP, -16),
		MemBaseDisp(R14, 4096),
		MemBaseDisp(RSP, 127),
		MemBaseDisp(RSP, 128),
		{Base: RAX, Index: RCX, Scale: 1},
		{Base: RAX, Index: RCX, Scale: 8, Disp: 64},
		{Base: RBP, Index: R9, Scale: 4, Disp: -4},
		{Base: R13, Index: R15, Scale: 2, Disp: 1000000},
		{Base: RegNone, Index: RDX, Scale: 8, Disp: 32},
		MemAt(0x1234),
		MemAt(0x7FFF0000),
	}
	for _, m := range mems {
		roundTrip(t, I(MOV, RAX, m))
		roundTrip(t, I(MOV, m, R11))
		roundTrip(t, I(ADD, R8, m))
		roundTrip(t, I(ADD, m, RBX))
		roundTrip(t, I(LEA, RDI, m))
	}
}

func TestRoundTripImmForms(t *testing.T) {
	roundTrip(t, I(MOV, RAX, Imm(0)))
	roundTrip(t, I(MOV, R15, Imm(-1)))
	roundTrip(t, I(MOV, RCX, Imm(0x7FFFFFFF)))
	roundTrip(t, I(MOV, RCX, Imm(0x100000000))) // needs B8+r imm64
	roundTrip(t, I(MOV, MemBase(RAX), Imm(42)))
	roundTrip(t, I(ADD, RAX, Imm(1)))
	roundTrip(t, I(SUB, R14, Imm(-128)))
	roundTrip(t, I(CMP, MemBaseDisp(RSP, 8), Imm(7)))
	roundTrip(t, I(TEST, RDX, Imm(0xFF)))
	roundTrip(t, I(SHL, RAX, Imm(3)))
	roundTrip(t, I(SHR, R9, Imm(63)))
	roundTrip(t, I(SAR, RBX, Imm(1)))
	roundTrip(t, I(ROL, RCX, Imm(8)))
	roundTrip(t, I(ROR, RDX, Imm(8)))
	roundTrip(t, I(SHL, RAX, RCX)) // CL form
}

func TestRoundTripSingleOperand(t *testing.T) {
	for _, op := range []Op{INC, DEC, NEG, NOT, MUL, DIV} {
		roundTrip(t, I(op, RAX))
		roundTrip(t, I(op, R13))
		roundTrip(t, I(op, MemBaseDisp(R14, 64)))
	}
	for _, r := range []Reg{RAX, RBP, R8, R15} {
		roundTrip(t, I(PUSH, r))
		roundTrip(t, I(POP, r))
		roundTrip(t, I(BSWAP, r))
	}
}

func TestRoundTripNoOperand(t *testing.T) {
	ops := []Op{RET, NOP, PAUSE, UD2, LFENCE, MFENCE, SFENCE, CPUID,
		RDTSC, RDPMC, RDMSR, WRMSR, WBINVD, CLI, STI}
	for _, op := range ops {
		roundTrip(t, I(op))
	}
}

func TestRoundTripBranches(t *testing.T) {
	ops := []Op{JMP, JZ, JNZ, JC, JNC, JL, JGE, JLE, JG, JS, JNS, CALL}
	for _, op := range ops {
		roundTrip(t, I(op, Imm(0)))
		roundTrip(t, I(op, Imm(-100)))
		roundTrip(t, I(op, Imm(1<<20)))
	}
}

func TestRoundTripSSE(t *testing.T) {
	ops := []Op{MOVAPS, ADDPS, MULPS, DIVPS, SQRTPS, ADDPD, MULPD, DIVPD,
		ADDSD, MULSD, DIVSD, SQRTSD, PADDQ, PAND, PXOR}
	for _, op := range ops {
		roundTrip(t, I(op, XMM0, XMM1))
		roundTrip(t, I(op, XMM8, XMM15))
		roundTrip(t, I(op, XMM3, MemBase(R14)))
	}
	roundTrip(t, I(MOVAPS, MemBase(RSI), XMM2))
	roundTrip(t, I(MOVQ, XMM5, RAX))
	roundTrip(t, I(MOVQ, R10, XMM11))
	roundTrip(t, I(CLFLUSH, MemBase(R14)))
	roundTrip(t, I(PREFETCHT0, MemBaseDisp(RDI, 64)))
}

func TestParseBasic(t *testing.T) {
	cases := []struct {
		src  string
		want Instr
	}{
		{"mov R14, [R14]", I(MOV, R14, MemBase(R14))},
		{"MOV [R14], R14", I(MOV, MemBase(R14), R14)},
		{"add rax, 5", I(ADD, RAX, Imm(5))},
		{"mov rbx, 0x10", I(MOV, RBX, Imm(16))},
		{"mov rbx, -2", I(MOV, RBX, Imm(-2))},
		{"lea rcx, [rax+rbx*8+16]", I(LEA, RCX, Mem{Base: RAX, Index: RBX, Scale: 8, Disp: 16})},
		{"mov rdx, [rbp - 8]", I(MOV, RDX, MemBaseDisp(RBP, -8))},
		{"mov rax, qword ptr [rsi]", I(MOV, RAX, MemBase(RSI))},
		{"clflush byte ptr [r14]", I(CLFLUSH, MemBase(R14))},
		{"nop", I(NOP)},
		{"lfence", I(LFENCE)},
		{"shl rax, cl", I(SHL, RAX, RCX)},
		{"mov rax, [0x2000]", I(MOV, RAX, MemAt(0x2000))},
		{"mov rax, [rbx+rcx]", I(MOV, RAX, Mem{Base: RBX, Index: RCX, Scale: 1})},
		{"addps xmm0, xmm1", I(ADDPS, XMM0, XMM1)},
		{"je target", I(JZ, LabelRef("target"))},
	}
	for _, c := range cases {
		got, err := Parse(c.src)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.src, err)
			continue
		}
		if len(got) != 1 || !reflect.DeepEqual(normalize(got[0]), normalize(c.want)) {
			t.Errorf("Parse(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestParseMultiStatement(t *testing.T) {
	src := "mov rax, 1; add rax, 2\ndec rax # comment\nnop // trailing"
	got, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("got %d instructions, want 4: %v", len(got), got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"bogus rax",
		"mov rax",       // matches no form
		"mov rax, [rsp", // unterminated
		"mov [rbx+rcx+rdx+rsi], rax",
		"shl rax, [rbx+rcx*3]",
	}
	for _, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q): expected error", src)
		}
	}
}

func TestAssembleLabels(t *testing.T) {
	src := `
		mov rcx, 3
	loop_start:
		dec rcx
		jnz loop_start
		ret
	`
	buf, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	lst, err := Disassemble(buf)
	if err != nil {
		t.Fatalf("disassemble: %v (bytes % X)", err, buf)
	}
	joined := strings.Join(lst, "; ")
	if !strings.Contains(joined, "JNZ") || !strings.Contains(joined, "RET") {
		t.Fatalf("unexpected disassembly: %s", joined)
	}
	// Find the JNZ and check that it jumps back to the DEC RCX.
	found := false
	for off := 0; off < len(buf); {
		in, n, err := Decode(buf[off:])
		if err != nil {
			t.Fatal(err)
		}
		if in.Op == JNZ {
			found = true
			disp := int64(in.Args[0].(Imm))
			// Target = off + n + disp must equal the offset of DEC RCX.
			target := off + n + int(disp)
			if target < 0 || target >= len(buf) {
				t.Fatalf("JNZ target out of range: %d", target)
			}
			dec, _, err := Decode(buf[target:])
			if err != nil || dec.Op != DEC {
				t.Fatalf("JNZ target decodes to %v (err %v), want DEC", dec, err)
			}
		}
		off += n
	}
	if !found {
		t.Fatal("JNZ not found in assembled output")
	}
}

func TestAssembleForwardLabel(t *testing.T) {
	src := `
		jmp done
		nop
		nop
	done:
		ret
	`
	buf, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	in, n, err := Decode(buf)
	if err != nil || in.Op != JMP {
		t.Fatalf("first instruction: %v, %v", in, err)
	}
	target := n + int(in.Args[0].(Imm))
	dec, _, err := Decode(buf[target:])
	if err != nil || dec.Op != RET {
		t.Fatalf("JMP target decodes to %v, want RET", dec)
	}
}

func TestAssembleErrorCases(t *testing.T) {
	if _, err := Assemble("jmp nowhere"); err == nil {
		t.Error("expected undefined-label error")
	}
	if _, err := Assemble("x: nop\nx: nop"); err == nil {
		t.Error("expected duplicate-label error")
	}
}

func TestDecodeUnknownOpcode(t *testing.T) {
	if _, _, err := Decode([]byte{0x06}); err == nil {
		t.Error("expected error for invalid opcode")
	}
	if _, _, err := Decode([]byte{}); err == nil {
		t.Error("expected error for empty buffer")
	}
	if _, _, err := Decode([]byte{0x48}); err == nil {
		t.Error("expected error for bare REX prefix")
	}
}

func TestRegNames(t *testing.T) {
	for i := 0; i < NumGP; i++ {
		r := Reg(i)
		got, ok := RegNamed(r.String())
		if !ok || got != r {
			t.Errorf("RegNamed(%s) = %v, %v", r, got, ok)
		}
	}
	if r, ok := RegNamed("eax"); !ok || r != RAX {
		t.Errorf("RegNamed(eax) = %v, %v; want RAX", r, ok)
	}
	if r, ok := RegNamed("xmm13"); !ok || r != XMM13 {
		t.Errorf("RegNamed(xmm13) = %v, %v", r, ok)
	}
	if _, ok := RegNamed("zzz"); ok {
		t.Error("RegNamed(zzz) should fail")
	}
}

func TestEveryOpHasSpec(t *testing.T) {
	for op := Op(1); op < numOps; op++ {
		if !HasSpec(op) {
			t.Errorf("missing InstrSpec for %s", op)
		}
	}
}

func TestEveryOpHasEncoding(t *testing.T) {
	for op := Op(1); op < numOps; op++ {
		if len(encIndex[op]) == 0 {
			t.Errorf("no encoding forms for %s", op)
		}
	}
}

func TestInstrString(t *testing.T) {
	in := I(MOV, RAX, Mem{Base: RBX, Index: RCX, Scale: 4, Disp: -8})
	want := "MOV RAX, [RBX+RCX*4-8]"
	if in.String() != want {
		t.Errorf("String() = %q, want %q", in.String(), want)
	}
}
