package x86

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

// randInstr generates a random well-formed instruction for property
// testing: a random mnemonic with operands drawn to match one of its
// encoding forms.
func randInstr(rng *rand.Rand) (Instr, bool) {
	ops := make([]Op, 0, len(encIndex))
	for op := range encIndex {
		ops = append(ops, op)
	}
	op := ops[rng.Intn(len(ops))]
	forms := encIndex[op]
	f := forms[rng.Intn(len(forms))]

	var args []Arg
	for _, k := range f.Opds {
		switch k {
		case KR64:
			args = append(args, Reg(rng.Intn(NumGP)))
		case KRM64:
			if rng.Intn(2) == 0 {
				args = append(args, Reg(rng.Intn(NumGP)))
			} else {
				args = append(args, randMem(rng))
			}
		case KM64, KM8:
			args = append(args, randMem(rng))
		case KXMM:
			args = append(args, XMM0+Reg(rng.Intn(NumXMM)))
		case KXM128:
			if rng.Intn(2) == 0 {
				args = append(args, XMM0+Reg(rng.Intn(NumXMM)))
			} else {
				args = append(args, randMem(rng))
			}
		case KIMM8:
			args = append(args, Imm(rng.Intn(256)-128))
		case KIMM32:
			args = append(args, Imm(int32(rng.Uint32())))
		case KIMM64:
			args = append(args, Imm(int64(rng.Uint64())))
		case KREL32:
			args = append(args, Imm(int32(rng.Uint32())))
		case KCL:
			args = append(args, RCX)
		default:
			return Instr{}, false
		}
	}
	return Instr{Op: op, Args: args}, true
}

func randMem(rng *rand.Rand) Mem {
	switch rng.Intn(4) {
	case 0:
		return MemAt(rng.Uint32() & 0x7FFFFFFF)
	case 1:
		return MemBaseDisp(Reg(rng.Intn(NumGP)), int32(rng.Uint32()))
	case 2:
		// Base + index (index must not be RSP).
		idx := Reg(rng.Intn(NumGP))
		if idx == RSP {
			idx = RAX
		}
		return Mem{
			Base:  Reg(rng.Intn(NumGP)),
			Index: idx,
			Scale: uint8(1 << rng.Intn(4)),
			Disp:  int32(rng.Uint32()),
		}
	default:
		idx := Reg(rng.Intn(NumGP))
		if idx == RSP {
			idx = RBX
		}
		return Mem{Base: RegNone, Index: idx, Scale: uint8(1 << rng.Intn(4)), Disp: int32(rng.Uint32())}
	}
}

// TestQuickEncodeDecodeRoundTrip property-tests that every encodable
// instruction decodes back to itself.
func TestQuickEncodeDecodeRoundTrip(t *testing.T) {
	check := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 50; i++ {
			in, ok := randInstr(rng)
			if !ok {
				continue
			}
			// The encoder picks the first matching form, which may be a
			// more compact one (e.g. imm32 instead of imm64); normalize
			// by encoding once and comparing the decode of that encoding
			// with a re-encode.
			buf, err := EncodeInstr(nil, in)
			if err != nil {
				t.Logf("seed %d: encode %s: %v", seed, in.String(), err)
				return false
			}
			dec, n, err := Decode(buf)
			if err != nil || n != len(buf) {
				t.Logf("seed %d: decode %s (bytes %x): n=%d err=%v", seed, in.String(), buf, n, err)
				return false
			}
			buf2, err := EncodeInstr(nil, dec)
			if err != nil {
				t.Logf("seed %d: re-encode %s: %v", seed, dec.String(), err)
				return false
			}
			if !reflect.DeepEqual(buf, buf2) {
				t.Logf("seed %d: %s: encoding not stable: %x vs %x", seed, in.String(), buf, buf2)
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDecodeNeverPanics feeds random bytes to the decoder: it must
// return an error or an instruction, never panic, and reported lengths
// must stay within the buffer.
func TestQuickDecodeNeverPanics(t *testing.T) {
	check := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		in, n, err := Decode(data)
		if err != nil {
			return true
		}
		if n <= 0 || n > len(data) {
			t.Logf("decode %x: bad length %d", data, n)
			return false
		}
		_ = in.String() // must render without panicking
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}
