package x86

import (
	"fmt"
	"strings"
)

// Arg is an instruction operand: a Reg, an Imm, a Mem, or a LabelRef.
type Arg interface {
	argString() string
}

// Imm is an immediate operand.
type Imm int64

func (i Imm) argString() string { return fmt.Sprintf("%d", int64(i)) }

// Mem is a memory operand of the form [Base + Index*Scale + Disp], or an
// absolute address [Abs] when Base and Index are both RegNone and AbsValid
// is set.
type Mem struct {
	Base     Reg
	Index    Reg
	Scale    uint8 // 1, 2, 4, or 8; 0 is treated as 1
	Disp     int32
	Abs      uint32 // absolute address (encoded as SIB with no base)
	AbsValid bool
}

func (m Mem) argString() string {
	if m.AbsValid {
		return fmt.Sprintf("[0x%X]", m.Abs)
	}
	var sb strings.Builder
	sb.WriteByte('[')
	needPlus := false
	if m.Base != RegNone {
		sb.WriteString(m.Base.String())
		needPlus = true
	}
	if m.Index != RegNone {
		if needPlus {
			sb.WriteByte('+')
		}
		sb.WriteString(m.Index.String())
		scale := m.Scale
		if scale == 0 {
			scale = 1
		}
		if scale != 1 {
			fmt.Fprintf(&sb, "*%d", scale)
		}
		needPlus = true
	}
	if m.Disp != 0 || !needPlus {
		if m.Disp >= 0 && needPlus {
			sb.WriteByte('+')
		}
		fmt.Fprintf(&sb, "%d", m.Disp)
	}
	sb.WriteByte(']')
	return sb.String()
}

// MemAt returns an absolute-address memory operand.
func MemAt(addr uint32) Mem { return Mem{Base: RegNone, Index: RegNone, Abs: addr, AbsValid: true} }

// MemBase returns a [base] memory operand.
func MemBase(base Reg) Mem { return Mem{Base: base, Index: RegNone, Scale: 1} }

// MemBaseDisp returns a [base+disp] memory operand.
func MemBaseDisp(base Reg, disp int32) Mem {
	return Mem{Base: base, Index: RegNone, Scale: 1, Disp: disp}
}

func (r Reg) argString() string { return r.String() }

// LabelRef is a reference to an assembler label used by branch instructions.
type LabelRef string

func (l LabelRef) argString() string { return string(l) }

// Instr is one decoded or parsed instruction. Label, if non-empty, defines
// an assembler label bound to the location of this instruction (the
// instruction itself may be a pure label definition with Op == OpNone).
type Instr struct {
	Op    Op
	Args  []Arg
	Label string
}

// String renders the instruction in Intel syntax.
func (in Instr) String() string {
	if in.Op == OpNone {
		return in.Label + ":"
	}
	s := in.Op.String()
	for i, a := range in.Args {
		if i == 0 {
			s += " " + a.argString()
		} else {
			s += ", " + a.argString()
		}
	}
	return s
}

// I is a convenience constructor for an Instr.
func I(op Op, args ...Arg) Instr { return Instr{Op: op, Args: args} }
