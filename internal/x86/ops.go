package x86

// Op is an instruction mnemonic.
type Op uint16

// OpNone marks a label-only pseudo instruction.
const OpNone Op = 0

// Instruction mnemonics supported by the simulated CPU.
const (
	// Data movement.
	MOV Op = iota + 1
	LEA
	XCHG
	PUSH
	POP
	// Integer ALU.
	ADD
	ADC
	SUB
	SBB
	AND
	OR
	XOR
	CMP
	TEST
	INC
	DEC
	NEG
	NOT
	IMUL
	MUL
	DIV
	SHL
	SHR
	SAR
	ROL
	ROR
	POPCNT
	BSF
	BSR
	BSWAP
	// Control flow.
	JMP
	JZ
	JNZ
	JC
	JNC
	JL
	JGE
	JLE
	JG
	JS
	JNS
	CALL
	RET
	// Miscellaneous.
	NOP
	PAUSE
	UD2
	// Serialization and system instructions.
	LFENCE
	MFENCE
	SFENCE
	CPUID
	RDTSC
	RDPMC
	RDMSR
	WRMSR
	WBINVD
	CLFLUSH
	PREFETCHT0
	CLI
	STI
	// SSE vector instructions.
	MOVAPS
	MOVQ
	ADDPS
	MULPS
	DIVPS
	SQRTPS
	ADDPD
	MULPD
	DIVPD
	ADDSD
	MULSD
	DIVSD
	SQRTSD
	PADDQ
	PAND
	PXOR

	numOps
)

var opNames = map[Op]string{
	MOV: "MOV", LEA: "LEA", XCHG: "XCHG", PUSH: "PUSH", POP: "POP",
	ADD: "ADD", ADC: "ADC", SUB: "SUB", SBB: "SBB", AND: "AND", OR: "OR",
	XOR: "XOR", CMP: "CMP", TEST: "TEST", INC: "INC", DEC: "DEC",
	NEG: "NEG", NOT: "NOT", IMUL: "IMUL", MUL: "MUL", DIV: "DIV",
	SHL: "SHL", SHR: "SHR", SAR: "SAR", ROL: "ROL", ROR: "ROR",
	POPCNT: "POPCNT", BSF: "BSF", BSR: "BSR", BSWAP: "BSWAP",
	JMP: "JMP", JZ: "JZ", JNZ: "JNZ", JC: "JC", JNC: "JNC", JL: "JL",
	JGE: "JGE", JLE: "JLE", JG: "JG", JS: "JS", JNS: "JNS",
	CALL: "CALL", RET: "RET",
	NOP: "NOP", PAUSE: "PAUSE", UD2: "UD2",
	LFENCE: "LFENCE", MFENCE: "MFENCE", SFENCE: "SFENCE",
	CPUID: "CPUID", RDTSC: "RDTSC", RDPMC: "RDPMC", RDMSR: "RDMSR",
	WRMSR: "WRMSR", WBINVD: "WBINVD", CLFLUSH: "CLFLUSH",
	PREFETCHT0: "PREFETCHT0", CLI: "CLI", STI: "STI",
	MOVAPS: "MOVAPS", MOVQ: "MOVQ", ADDPS: "ADDPS", MULPS: "MULPS",
	DIVPS: "DIVPS", SQRTPS: "SQRTPS", ADDPD: "ADDPD", MULPD: "MULPD",
	DIVPD: "DIVPD", ADDSD: "ADDSD", MULSD: "MULSD", DIVSD: "DIVSD",
	SQRTSD: "SQRTSD", PADDQ: "PADDQ", PAND: "PAND", PXOR: "PXOR",
}

var opByName = map[string]Op{}

func init() {
	for op, name := range opNames {
		opByName[name] = op
	}
	// Jcc aliases.
	opByName["JE"] = JZ
	opByName["JNE"] = JNZ
	opByName["JB"] = JC
	opByName["JAE"] = JNC
	opByName["JNB"] = JNC
}

// String returns the canonical mnemonic.
func (op Op) String() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	if op == OpNone {
		return "<label>"
	}
	return "Op(?)"
}

// OpNamed looks up a mnemonic by (case-insensitive) name.
func OpNamed(name string) (Op, bool) {
	op, ok := opByName[upper(name)]
	return op, ok
}

// IsBranch reports whether op is a control-transfer instruction.
func (op Op) IsBranch() bool {
	switch op {
	case JMP, JZ, JNZ, JC, JNC, JL, JGE, JLE, JG, JS, JNS, CALL, RET:
		return true
	}
	return false
}

// IsCondBranch reports whether op is a conditional branch.
func (op Op) IsCondBranch() bool {
	switch op {
	case JZ, JNZ, JC, JNC, JL, JGE, JLE, JG, JS, JNS:
		return true
	}
	return false
}

// IsPrivileged reports whether op faults with #GP when executed in user
// mode on the simulated machine. RDPMC is special-cased by the machine
// depending on the CR4.PCE flag and is not listed here.
func (op Op) IsPrivileged() bool {
	switch op {
	case RDMSR, WRMSR, WBINVD, CLI, STI:
		return true
	}
	return false
}
