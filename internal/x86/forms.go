package x86

// OpdKind classifies an operand slot in an encoding form.
type OpdKind uint8

// Operand kinds.
const (
	KNone  OpdKind = iota
	KR64           // general-purpose register
	KRM64          // general-purpose register or memory
	KM64           // memory only
	KM8            // memory only, byte-granular (CLFLUSH, PREFETCH)
	KXMM           // vector register
	KXM128         // vector register or memory
	KIMM8          // 8-bit immediate
	KIMM32         // 32-bit immediate (sign-extended to 64)
	KIMM64         // 64-bit immediate
	KREL32         // 32-bit relative branch target (label)
	KCL            // the CL register (shift count); assembles from RCX
)

type immKind uint8

const (
	immNone immKind = iota
	imm8
	imm32
	imm64
	rel32
)

// form describes one machine-code encoding of a mnemonic. The same table
// drives the encoder (first matching form wins) and, via lookup structures
// built in init, the decoder.
type form struct {
	Op     Op
	Opds   []OpdKind
	Prefix byte // 0x66, 0xF2, 0xF3, or 0
	RexW   bool
	Esc0F  bool // two-byte opcode (0F xx)
	Opcode byte

	HasModRM bool
	Digit    int8 // modrm.reg digit for /digit forms; -1 for /r
	RegIdx   int8 // operand index encoded in modrm.reg (-1 if digit form)
	RMIdx    int8 // operand index encoded in modrm.rm

	PlusR    bool // register encoded in opcode low 3 bits
	PlusRIdx int8

	Imm    immKind
	ImmIdx int8

	Fixed    byte // fixed byte following the opcode (fences); 0 = none
	hasFixed bool
}

// matchArg reports whether a matches kind k.
func matchArg(a Arg, k OpdKind) bool {
	switch k {
	case KR64:
		r, ok := a.(Reg)
		return ok && r.IsGP()
	case KRM64:
		if r, ok := a.(Reg); ok {
			return r.IsGP()
		}
		_, ok := a.(Mem)
		return ok
	case KM64, KM8:
		_, ok := a.(Mem)
		return ok
	case KXMM:
		r, ok := a.(Reg)
		return ok && r.IsXMM()
	case KXM128:
		if r, ok := a.(Reg); ok {
			return r.IsXMM()
		}
		_, ok := a.(Mem)
		return ok
	case KIMM8:
		i, ok := a.(Imm)
		return ok && i >= -128 && i <= 127
	case KIMM32:
		i, ok := a.(Imm)
		return ok && int64(i) >= -(1<<31) && int64(i) < 1<<31
	case KIMM64:
		_, ok := a.(Imm)
		return ok
	case KREL32:
		switch a.(type) {
		case LabelRef, Imm:
			return true
		}
		return false
	case KCL:
		r, ok := a.(Reg)
		return ok && r == RCX
	}
	return false
}

var forms []form

// encIndex maps Op to its forms in priority order.
var encIndex = map[Op][]*form{}

func addForm(f form) {
	forms = append(forms, f)
}

// rr builds a standard /r two-operand form.
func rr(op Op, opds []OpdKind, prefix byte, rexW, esc bool, opcode byte, regIdx, rmIdx int8) form {
	return form{Op: op, Opds: opds, Prefix: prefix, RexW: rexW, Esc0F: esc, Opcode: opcode,
		HasModRM: true, Digit: -1, RegIdx: regIdx, RMIdx: rmIdx, ImmIdx: -1, PlusRIdx: -1}
}

// dig builds a /digit form.
func dig(op Op, opds []OpdKind, rexW, esc bool, opcode byte, digit int8, rmIdx int8, imm immKind, immIdx int8) form {
	return form{Op: op, Opds: opds, RexW: rexW, Esc0F: esc, Opcode: opcode,
		HasModRM: true, Digit: digit, RegIdx: -1, RMIdx: rmIdx, Imm: imm, ImmIdx: immIdx, PlusRIdx: -1}
}

// bare builds a no-operand form.
func bare(op Op, prefix byte, esc bool, opcode byte) form {
	return form{Op: op, Prefix: prefix, Esc0F: esc, Opcode: opcode, Digit: -1, RegIdx: -1, RMIdx: -1, ImmIdx: -1, PlusRIdx: -1}
}

func addALU(op Op, opcMR, opcRM byte, immDigit int8) {
	addForm(rr(op, []OpdKind{KRM64, KR64}, 0, true, false, opcMR, 1, 0))
	addForm(rr(op, []OpdKind{KR64, KRM64}, 0, true, false, opcRM, 0, 1))
	addForm(dig(op, []OpdKind{KRM64, KIMM32}, true, false, 0x81, immDigit, 0, imm32, 1))
}

func addShift(op Op, digit int8) {
	addForm(dig(op, []OpdKind{KRM64, KIMM8}, true, false, 0xC1, digit, 0, imm8, 1))
	addForm(dig(op, []OpdKind{KRM64, KCL}, true, false, 0xD3, digit, 0, immNone, -1))
}

func addJcc(op Op, cc byte) {
	f := bare(op, 0, true, 0x80+cc)
	f.Opds = []OpdKind{KREL32}
	f.Imm = rel32
	f.ImmIdx = 0
	addForm(f)
}

// sse builds an XMM /r form (dst = operand 0 in modrm.reg).
func sse(op Op, prefix byte, opcode byte) {
	addForm(rr(op, []OpdKind{KXMM, KXM128}, prefix, false, true, opcode, 0, 1))
}

func init() {
	// MOV: order matters — reg,rm first; then rm,reg; then rm,imm32; then r,imm64.
	addForm(rr(MOV, []OpdKind{KR64, KRM64}, 0, true, false, 0x8B, 0, 1))
	addForm(rr(MOV, []OpdKind{KRM64, KR64}, 0, true, false, 0x89, 1, 0))
	addForm(dig(MOV, []OpdKind{KRM64, KIMM32}, true, false, 0xC7, 0, 0, imm32, 1))
	{
		f := form{Op: MOV, Opds: []OpdKind{KR64, KIMM64}, RexW: true, Opcode: 0xB8,
			PlusR: true, PlusRIdx: 0, Imm: imm64, ImmIdx: 1, Digit: -1, RegIdx: -1, RMIdx: -1}
		addForm(f)
	}

	addForm(rr(LEA, []OpdKind{KR64, KM64}, 0, true, false, 0x8D, 0, 1))

	addForm(rr(XCHG, []OpdKind{KRM64, KR64}, 0, true, false, 0x87, 1, 0))
	addForm(rr(XCHG, []OpdKind{KR64, KM64}, 0, true, false, 0x87, 0, 1))

	{
		f := form{Op: PUSH, Opds: []OpdKind{KR64}, Opcode: 0x50, PlusR: true, PlusRIdx: 0, Digit: -1, RegIdx: -1, RMIdx: -1, ImmIdx: -1}
		addForm(f)
		g := form{Op: POP, Opds: []OpdKind{KR64}, Opcode: 0x58, PlusR: true, PlusRIdx: 0, Digit: -1, RegIdx: -1, RMIdx: -1, ImmIdx: -1}
		addForm(g)
	}

	addALU(ADD, 0x01, 0x03, 0)
	addALU(OR, 0x09, 0x0B, 1)
	addALU(ADC, 0x11, 0x13, 2)
	addALU(SBB, 0x19, 0x1B, 3)
	addALU(AND, 0x21, 0x23, 4)
	addALU(SUB, 0x29, 0x2B, 5)
	addALU(XOR, 0x31, 0x33, 6)
	addALU(CMP, 0x39, 0x3B, 7)

	addForm(rr(TEST, []OpdKind{KRM64, KR64}, 0, true, false, 0x85, 1, 0))
	addForm(dig(TEST, []OpdKind{KRM64, KIMM32}, true, false, 0xF7, 0, 0, imm32, 1))

	addForm(dig(INC, []OpdKind{KRM64}, true, false, 0xFF, 0, 0, immNone, -1))
	addForm(dig(DEC, []OpdKind{KRM64}, true, false, 0xFF, 1, 0, immNone, -1))
	addForm(dig(NOT, []OpdKind{KRM64}, true, false, 0xF7, 2, 0, immNone, -1))
	addForm(dig(NEG, []OpdKind{KRM64}, true, false, 0xF7, 3, 0, immNone, -1))
	addForm(dig(MUL, []OpdKind{KRM64}, true, false, 0xF7, 4, 0, immNone, -1))
	addForm(dig(DIV, []OpdKind{KRM64}, true, false, 0xF7, 6, 0, immNone, -1))

	addForm(rr(IMUL, []OpdKind{KR64, KRM64}, 0, true, true, 0xAF, 0, 1))

	addShift(ROL, 0)
	addShift(ROR, 1)
	addShift(SHL, 4)
	addShift(SHR, 5)
	addShift(SAR, 7)

	addForm(rr(POPCNT, []OpdKind{KR64, KRM64}, 0xF3, true, true, 0xB8, 0, 1))
	addForm(rr(BSF, []OpdKind{KR64, KRM64}, 0, true, true, 0xBC, 0, 1))
	addForm(rr(BSR, []OpdKind{KR64, KRM64}, 0, true, true, 0xBD, 0, 1))
	{
		f := form{Op: BSWAP, Opds: []OpdKind{KR64}, RexW: true, Esc0F: true, Opcode: 0xC8,
			PlusR: true, PlusRIdx: 0, Digit: -1, RegIdx: -1, RMIdx: -1, ImmIdx: -1}
		addForm(f)
	}

	{
		f := bare(JMP, 0, false, 0xE9)
		f.Opds = []OpdKind{KREL32}
		f.Imm = rel32
		f.ImmIdx = 0
		addForm(f)
		g := bare(CALL, 0, false, 0xE8)
		g.Opds = []OpdKind{KREL32}
		g.Imm = rel32
		g.ImmIdx = 0
		addForm(g)
	}
	addJcc(JC, 0x2)
	addJcc(JNC, 0x3)
	addJcc(JZ, 0x4)
	addJcc(JNZ, 0x5)
	addJcc(JS, 0x8)
	addJcc(JNS, 0x9)
	addJcc(JL, 0xC)
	addJcc(JGE, 0xD)
	addJcc(JLE, 0xE)
	addJcc(JG, 0xF)

	addForm(bare(RET, 0, false, 0xC3))
	addForm(bare(NOP, 0, false, 0x90))
	addForm(bare(PAUSE, 0xF3, false, 0x90))
	addForm(bare(UD2, 0, true, 0x0B))

	{
		lf := bare(LFENCE, 0, true, 0xAE)
		lf.Fixed, lf.hasFixed = 0xE8, true
		addForm(lf)
		mf := bare(MFENCE, 0, true, 0xAE)
		mf.Fixed, mf.hasFixed = 0xF0, true
		addForm(mf)
		sf := bare(SFENCE, 0, true, 0xAE)
		sf.Fixed, sf.hasFixed = 0xF8, true
		addForm(sf)
	}

	addForm(bare(CPUID, 0, true, 0xA2))
	addForm(bare(WRMSR, 0, true, 0x30))
	addForm(bare(RDTSC, 0, true, 0x31))
	addForm(bare(RDMSR, 0, true, 0x32))
	addForm(bare(RDPMC, 0, true, 0x33))
	addForm(bare(WBINVD, 0, true, 0x09))
	addForm(bare(CLI, 0, false, 0xFA))
	addForm(bare(STI, 0, false, 0xFB))

	addForm(dig(CLFLUSH, []OpdKind{KM8}, false, true, 0xAE, 7, 0, immNone, -1))
	addForm(dig(PREFETCHT0, []OpdKind{KM8}, false, true, 0x18, 1, 0, immNone, -1))

	sse(MOVAPS, 0, 0x28)
	addForm(rr(MOVAPS, []OpdKind{KXM128, KXMM}, 0, false, true, 0x29, 1, 0))
	addForm(rr(MOVQ, []OpdKind{KXMM, KRM64}, 0x66, true, true, 0x6E, 0, 1))
	addForm(rr(MOVQ, []OpdKind{KRM64, KXMM}, 0x66, true, true, 0x7E, 1, 0))
	sse(ADDPS, 0, 0x58)
	sse(MULPS, 0, 0x59)
	sse(DIVPS, 0, 0x5E)
	sse(SQRTPS, 0, 0x51)
	sse(ADDPD, 0x66, 0x58)
	sse(MULPD, 0x66, 0x59)
	sse(DIVPD, 0x66, 0x5E)
	sse(ADDSD, 0xF2, 0x58)
	sse(MULSD, 0xF2, 0x59)
	sse(DIVSD, 0xF2, 0x5E)
	sse(SQRTSD, 0xF2, 0x51)
	sse(PADDQ, 0x66, 0xD4)
	sse(PAND, 0x66, 0xDB)
	sse(PXOR, 0x66, 0xEF)

	for i := range forms {
		f := &forms[i]
		encIndex[f.Op] = append(encIndex[f.Op], f)
	}
	buildDecodeIndex()
}
