// Package x86 implements the instruction-set substrate of the simulated
// machine: an Intel-syntax assembler, a byte-level encoder and decoder for a
// subset of real x86-64 machine code, and the instruction specification
// table (µops, ports, latencies) that serves as the ground truth the
// case-study tools must recover through measurements.
//
// The encoding follows the real x86-64 format (REX prefixes, ModRM, SIB,
// little-endian displacements and immediates) so that nanoBench features
// that operate on machine-code bytes — unrolling, magic byte sequences for
// pausing performance counters, binary-file inputs — work exactly as in the
// original tool.
package x86

import "fmt"

// Reg identifies an architectural register of the simulated CPU.
type Reg uint8

// General-purpose 64-bit registers, in x86 encoding order (the low three
// bits of the constant are the ModRM encoding; bit 3 selects the REX
// extension).
const (
	RAX Reg = iota
	RCX
	RDX
	RBX
	RSP
	RBP
	RSI
	RDI
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	// XMM vector registers follow the GP block.
	XMM0
	XMM1
	XMM2
	XMM3
	XMM4
	XMM5
	XMM6
	XMM7
	XMM8
	XMM9
	XMM10
	XMM11
	XMM12
	XMM13
	XMM14
	XMM15
	// RegNone marks an absent base or index register in a memory operand.
	RegNone Reg = 0xFF
)

// NumGP is the number of general-purpose registers.
const NumGP = 16

// NumXMM is the number of vector registers.
const NumXMM = 16

var gpNames = [NumGP]string{
	"RAX", "RCX", "RDX", "RBX", "RSP", "RBP", "RSI", "RDI",
	"R8", "R9", "R10", "R11", "R12", "R13", "R14", "R15",
}

// IsGP reports whether r is a general-purpose register.
func (r Reg) IsGP() bool { return r < XMM0 }

// IsXMM reports whether r is a vector register.
func (r Reg) IsXMM() bool { return r >= XMM0 && r <= XMM15 }

// Enc returns the 4-bit hardware encoding of the register (ModRM/REX).
func (r Reg) Enc() byte {
	if r.IsXMM() {
		return byte(r - XMM0)
	}
	return byte(r)
}

// String returns the canonical upper-case register name.
func (r Reg) String() string {
	switch {
	case r.IsGP():
		return gpNames[r]
	case r.IsXMM():
		return fmt.Sprintf("XMM%d", r-XMM0)
	case r == RegNone:
		return "<none>"
	}
	return fmt.Sprintf("Reg(%d)", uint8(r))
}

// regByName maps upper-case register names to Reg values. It includes the
// 32-bit aliases (EAX, ...) used by some microbenchmarks; the simulated
// machine operates on full 64-bit registers, and 32-bit names assemble to
// the same register (operations remain 64-bit wide; this matches how the
// simulator's timing model treats them and keeps the encoder simple).
var regByName = map[string]Reg{}

func init() {
	alias32 := [NumGP]string{
		"EAX", "ECX", "EDX", "EBX", "ESP", "EBP", "ESI", "EDI",
		"R8D", "R9D", "R10D", "R11D", "R12D", "R13D", "R14D", "R15D",
	}
	for i := 0; i < NumGP; i++ {
		regByName[gpNames[i]] = Reg(i)
		regByName[alias32[i]] = Reg(i)
	}
	for i := 0; i < NumXMM; i++ {
		regByName[fmt.Sprintf("XMM%d", i)] = XMM0 + Reg(i)
	}
	// CL is accepted for shift-count operands and maps to RCX.
	regByName["CL"] = RCX
}

// RegNamed looks up a register by its (case-insensitive) assembly name.
func RegNamed(name string) (Reg, bool) {
	r, ok := regByName[upper(name)]
	return r, ok
}

func upper(s string) string {
	b := []byte(s)
	for i, c := range b {
		if 'a' <= c && c <= 'z' {
			b[i] = c - 'a' + 'A'
		}
	}
	return string(b)
}
