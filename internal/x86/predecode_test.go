package x86

import "testing"

// decodeAt decodes the first instruction of src's assembly at the given
// virtual address with 64-byte lines.
func decodeAt(t *testing.T, src string, rip uint32) DecodedInstr {
	t.Helper()
	code := MustAssemble(src)
	d, err := DecodeOne(code, rip, 6)
	if err != nil {
		t.Fatalf("DecodeOne(%q): %v", src, err)
	}
	return d
}

// TestPredecodeFoldsUops: the flat µop array mirrors the spec exactly, so
// dispatch never needs Spec.Uops.
func TestPredecodeFoldsUops(t *testing.T) {
	d := decodeAt(t, "add rax, rbx", 0)
	sp := SpecPtr(ADD)
	if int(d.NUops) != len(sp.Uops) {
		t.Fatalf("NUops = %d, want %d", d.NUops, len(sp.Uops))
	}
	for i := range sp.Uops {
		if d.Uops[i] != sp.Uops[i] {
			t.Errorf("Uops[%d] = %+v, want %+v", i, d.Uops[i], sp.Uops[i])
		}
	}
	if d.ReadsFlags != sp.ReadsFlags {
		t.Errorf("ReadsFlags = %v, want %v", d.ReadsFlags, sp.ReadsFlags)
	}

	// Two-µop instruction: both slots populated.
	m := decodeAt(t, "mul rbx", 0)
	if m.NUops != 2 {
		t.Fatalf("MUL NUops = %d, want 2", m.NUops)
	}
}

// TestSpecUopsWithinBound guards the flat-array invariant: every spec in
// the table fits DecodedInstr.Uops (init also panics, but a test failure
// reads better than an init crash).
func TestSpecUopsWithinBound(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		if !HasSpec(op) {
			continue
		}
		if n := len(Spec(op).Uops); n > MaxUopsPerInstr {
			t.Errorf("%s has %d µops, exceeding MaxUopsPerInstr = %d", op, n, MaxUopsPerInstr)
		}
	}
}

// TestPredecodeResolvesBranchTargets: the absolute target of a direct
// branch/call is the fallthrough plus the rel-immediate.
func TestPredecodeResolvesBranchTargets(t *testing.T) {
	const rip = 0x100040
	code := MustAssemble("jnz skip\nnop\nskip: ret")
	d, err := DecodeOne(code, rip, 6)
	if err != nil {
		t.Fatal(err)
	}
	if !d.TargetOK {
		t.Fatal("branch target not resolved")
	}
	wantNext := uint32(rip + uint32(d.Len))
	if d.Next != wantNext {
		t.Errorf("Next = %#x, want %#x", d.Next, wantNext)
	}
	if want := uint32(int64(d.Next) + d.Imm); d.Target != want {
		t.Errorf("Target = %#x, want %#x", d.Target, want)
	}
	// The NOP the branch skips is one byte: target = next + 1.
	if d.Target != wantNext+1 {
		t.Errorf("Target = %#x, want %#x (skip one NOP)", d.Target, wantNext+1)
	}

	// Non-branches resolve no target.
	if a := decodeAt(t, "add rax, rbx", rip); a.TargetOK {
		t.Error("ADD resolved a branch target")
	}
}

// TestPredecodeLineSpan: the cached L1I span covers exactly the lines the
// encoded bytes touch.
func TestPredecodeLineSpan(t *testing.T) {
	// "add rax, rbx" encodes to 3 bytes. At 0x101000 it stays within one
	// 64-byte line; at 0x10103e it straddles the 0x101040 boundary.
	d := decodeAt(t, "add rax, rbx", 0x101000)
	if d.LineFirst != 0x101000 || d.LineLast != 0x101000 {
		t.Errorf("in-line span = [%#x, %#x], want [0x101000, 0x101000]", d.LineFirst, d.LineLast)
	}
	d = decodeAt(t, "add rax, rbx", 0x10103e)
	if d.LineFirst != 0x101000 || d.LineLast != 0x101040 {
		t.Errorf("straddling span = [%#x, %#x], want [0x101000, 0x101040]", d.LineFirst, d.LineLast)
	}
}

// TestPredecodeFastKinds: the fused-shape classification and its folded
// dependency slots.
func TestPredecodeFastKinds(t *testing.T) {
	cases := []struct {
		src       string
		fast      FastKind
		readsDst  bool
		writesDst bool
	}{
		{"add rax, rbx", FastALU2, true, true},
		{"add rax, 7", FastALU2, true, true},
		{"cmp rax, rbx", FastALU2, true, false},
		{"test rax, rbx", FastALU2, true, false},
		{"popcnt rax, rbx", FastALU2, false, true},
		{"inc rax", FastUnary, true, true},
		{"not rax", FastUnary, true, true},
		{"mov rax, rbx", FastMOVRR, false, false},
		{"mov rax, 42", FastMOVRI, false, false},
		{"shl rax, 3", FastShift, true, true},
		{"shl rax, cl", FastShift, true, true},
	}
	for _, tc := range cases {
		d := decodeAt(t, tc.src, 0)
		if d.Fast != tc.fast {
			t.Errorf("%q: Fast = %d, want %d", tc.src, d.Fast, tc.fast)
			continue
		}
		if d.Fast == FastALU2 || d.Fast == FastUnary || d.Fast == FastShift {
			if d.ReadsDst != tc.readsDst || d.WritesDst != tc.writesDst {
				t.Errorf("%q: ReadsDst/WritesDst = %v/%v, want %v/%v",
					tc.src, d.ReadsDst, d.WritesDst, tc.readsDst, tc.writesDst)
			}
		}
	}

	// Anything touching memory, XMM, or special classes stays generic.
	for _, src := range []string{
		"add rax, [r14]", "mov rax, [r14]", "mov [r14], rax",
		"jmp target\ntarget: ret", "nop", "mul rbx", "addps xmm0, xmm1",
	} {
		if d := decodeAt(t, src, 0); d.Fast != FastNone {
			t.Errorf("%q: Fast = %d, want FastNone", src, d.Fast)
		}
	}
}
