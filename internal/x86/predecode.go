package x86

import "fmt"

// ArgKind classifies one operand of a pre-decoded instruction into the
// concrete shapes the simulator's execution engine handles, replacing the
// per-step interface type assertions on Instr.Args.
type ArgKind uint8

// Operand kinds.
const (
	ArgNone ArgKind = iota
	ArgGP           // general-purpose register (Reg holds it)
	ArgX            // XMM register (Reg holds it)
	ArgI            // immediate (Imm holds it)
	ArgM            // memory operand (Mem holds it)
)

// DecodedInstr is one fully pre-decoded instruction: the mnemonic, its
// encoded length, concrete operand kinds, and — new with the fused-µop IR —
// everything the execution hot path used to recompute per step or chase
// through the spec pointer, folded flat into the entry itself:
//
//   - the instruction's compute µops (port mask, latency, occupancy) as a
//     dense fixed-size array, so dispatch loops over Uops[:NUops] without
//     touching Spec.Uops;
//   - the flags dependency (ReadsFlags) the scheduler folds into the
//     operand-ready cycle;
//   - the absolute fallthrough address (Next = RIP + Len) and, for direct
//     branches and calls, the absolute target resolved from the
//     rel-immediate at decode time (Target, valid when TargetOK);
//   - the L1I line span of the instruction (LineFirst/LineLast,
//     line-aligned virtual addresses), so fetch is a single compare when
//     execution stays within one cache line.
//
// Pre-decoding happens once per installed code image, so the per-step
// interpreter front end touches no maps, resolves no specs, and performs
// no interface dispatch or address arithmetic.
//
// The x86 subset the simulator supports has at most two explicit operands,
// of which at most one is an immediate and at most one is a memory
// operand; Imm and Mem therefore need no per-argument storage.
type DecodedInstr struct {
	Op    Op
	Class Class
	Len   uint8
	NArgs uint8
	Kind  [2]ArgKind
	// NUops counts the valid entries of Uops; ReadsFlags mirrors the
	// spec's flags dependency. Both are folded from Spec at predecode.
	NUops      uint8
	ReadsFlags bool
	// Fast selects a fused single-µop execution path (see FastKind);
	// ReadsDst/WritesDst are its pre-folded dependency slots: whether the
	// destination operand is an input (CMP reads it, POPCNT does not) and
	// whether it is written (CMP/TEST write no register).
	Fast      FastKind
	ReadsDst  bool
	WritesDst bool
	// ReplaySafe marks a fused instruction whose scheduler side effects
	// (register/flag ready-cycle updates) are a pure function of the
	// entry timing state: re-running it with identical operand-ready
	// deltas reproduces identical dispatch and completion cycles. BSF/BSR
	// (destination written only for a non-zero source) and CL-count
	// shifts (flags written only for a non-zero count held in RCX) update
	// ready cycles value-dependently and are excluded. Trace execution
	// only caches port schedules for blocks of ReplaySafe instructions.
	ReplaySafe bool
	// TargetOK marks Target as a resolved absolute branch/call target.
	TargetOK bool
	// ReadRegs/WriteRegs are GP-register bitmasks (bit r = Reg(r)) of the
	// fused shapes' register reads and writes, folded at predecode so
	// block builders compute live-in sets without re-deriving operand
	// roles. Zero for non-fused instructions. ReadRegs includes the
	// destination when ReadsDst and the implicit RCX of CL-count shifts.
	ReadRegs  uint16
	WriteRegs uint16
	Reg       [2]Reg // register operand at the corresponding index (ArgGP/ArgX)
	Imm       int64  // immediate operand, whichever index holds it
	Mem       Mem    // memory operand, whichever index holds it
	// Next is the absolute fallthrough RIP (the instruction's address plus
	// Len); Target the absolute destination of a direct branch or call.
	Next   uint32
	Target uint32
	// LineFirst and LineLast are the line-aligned virtual addresses of the
	// first and last instruction-cache lines the instruction occupies.
	LineFirst uint32
	LineLast  uint32
	// Uops are the instruction's compute µops, copied flat from the spec.
	Uops [MaxUopsPerInstr]UopSpec
	Spec *InstrSpec
}

// FastKind classifies a pre-decoded instruction into one of the fused
// single-µop execution shapes the hot interpreter handles without the
// generic operand walk: register-only data processing whose dependency
// slots (sources, destination, flags) are fully known at decode time.
// FastNone routes through the generic class dispatch.
type FastKind uint8

// Fused execution shapes.
const (
	FastNone  FastKind = iota
	FastALU2           // binary int ALU, GP destination, GP or imm source
	FastUnary          // unary int ALU on a GP register
	FastMOVRR          // MOV gp, gp
	FastMOVRI          // MOV gp, imm
	FastShift          // shift/rotate on a GP register, imm or CL count
	NumFastKinds
)

// classifyFast folds the fused execution shape and its dependency slots
// into the entry. Only register-only single-µop data processing fuses;
// everything else keeps the generic path.
func classifyFast(d *DecodedInstr) {
	if d.Class != ClassNormal || d.NUops != 1 {
		return
	}
	switch d.Op {
	case MOV:
		if d.Kind[0] == ArgGP {
			switch d.Kind[1] {
			case ArgGP:
				d.Fast = FastMOVRR
				d.ReadRegs = 1 << d.Reg[1]
			case ArgI:
				d.Fast = FastMOVRI
			}
			if d.Fast != FastNone {
				d.WriteRegs = 1 << d.Reg[0]
				d.ReplaySafe = true
			}
		}
	case ADD, SUB, AND, OR, XOR, CMP, TEST, ADC, SBB, IMUL, POPCNT, BSF, BSR:
		if d.NArgs == 2 && d.Kind[0] == ArgGP && (d.Kind[1] == ArgGP || d.Kind[1] == ArgI) {
			d.Fast = FastALU2
			d.ReadsDst = d.Op != POPCNT && d.Op != BSF && d.Op != BSR
			d.WritesDst = d.Op != CMP && d.Op != TEST
			if d.Kind[1] == ArgGP {
				d.ReadRegs = 1 << d.Reg[1]
			}
			if d.ReadsDst {
				d.ReadRegs |= 1 << d.Reg[0]
			}
			if d.WritesDst {
				d.WriteRegs = 1 << d.Reg[0]
			}
			d.ReplaySafe = d.Op != BSF && d.Op != BSR
		}
	case INC, DEC, NEG, NOT, BSWAP:
		if d.NArgs == 1 && d.Kind[0] == ArgGP {
			d.Fast = FastUnary
			d.ReadsDst, d.WritesDst = true, true
			d.ReadRegs = 1 << d.Reg[0]
			d.WriteRegs = 1 << d.Reg[0]
			d.ReplaySafe = true
		}
	case SHL, SHR, SAR, ROL, ROR:
		if d.NArgs == 2 && d.Kind[0] == ArgGP && (d.Kind[1] == ArgI || d.Kind[1] == ArgGP) {
			d.Fast = FastShift
			d.ReadsDst, d.WritesDst = true, true
			d.ReadRegs = 1 << d.Reg[0]
			d.WriteRegs = 1 << d.Reg[0]
			if d.Kind[1] == ArgGP { // count in CL
				d.ReadRegs |= 1 << RCX
			}
			d.ReplaySafe = d.Kind[1] == ArgI
		}
	}
}

// DefaultLineShift is the log2 line size PredecodeAt assumes when callers
// have no cache geometry (64-byte lines, every modelled machine).
const DefaultLineShift = 6

// Predecode resolves a decoded instruction of encoded length n into its
// pre-decoded form, assuming address 0 and 64-byte instruction-cache
// lines. Engines that know the instruction's address and the machine's
// line geometry use PredecodeAt so the entry's Next/Target/line-span
// fields are meaningful.
func Predecode(in Instr, n int) (DecodedInstr, error) {
	return PredecodeAt(in, n, 0, DefaultLineShift)
}

// PredecodeAt resolves a decoded instruction of encoded length n at
// virtual address rip into its pre-decoded form, computing the absolute
// fallthrough and branch-target addresses and the instruction's cache-line
// span for lines of 1<<lineShift bytes. It fails on operands the execution
// engine cannot run (unresolved label references).
func PredecodeAt(in Instr, n int, rip uint32, lineShift uint8) (DecodedInstr, error) {
	sp := SpecPtr(in.Op)
	d := DecodedInstr{
		Op:         in.Op,
		Class:      sp.Class,
		Len:        uint8(n),
		NArgs:      uint8(len(in.Args)),
		ReadsFlags: sp.ReadsFlags,
		Spec:       sp,
	}
	d.NUops = uint8(copy(d.Uops[:], sp.Uops))
	if len(in.Args) > 2 {
		return DecodedInstr{}, fmt.Errorf("x86: %s has %d operands; predecode supports 2", in.Op, len(in.Args))
	}
	for i, a := range in.Args {
		switch v := a.(type) {
		case Reg:
			if v.IsXMM() {
				d.Kind[i] = ArgX
			} else {
				d.Kind[i] = ArgGP
			}
			d.Reg[i] = v
		case Imm:
			d.Kind[i] = ArgI
			d.Imm = int64(v)
		case Mem:
			d.Kind[i] = ArgM
			d.Mem = v
		default:
			return DecodedInstr{}, fmt.Errorf("x86: cannot predecode operand %v of %s", a, in.Op)
		}
	}
	d.Next = rip + uint32(n)
	if (d.Class == ClassBranch || d.Class == ClassCall) && d.Kind[0] == ArgI {
		d.Target = uint32(int64(d.Next) + d.Imm)
		d.TargetOK = true
	}
	mask := uint32(1)<<lineShift - 1
	d.LineFirst = rip &^ mask
	d.LineLast = (rip + uint32(n) - 1) &^ mask
	classifyFast(&d)
	return d, nil
}

// RelocAt rewrites the address-derived fields of a pre-decoded
// instruction — the absolute fallthrough, the resolved branch target, and
// the cache-line span — for a copy located at virtual address rip. Every
// other field of a DecodedInstr is a pure function of the encoded bytes,
// so a memoized decode plus RelocAt is equivalent to running PredecodeAt
// at the new address.
func (d *DecodedInstr) RelocAt(rip uint32, lineShift uint8) {
	d.Next = rip + uint32(d.Len)
	if d.TargetOK {
		d.Target = uint32(int64(d.Next) + d.Imm)
	}
	mask := uint32(1)<<lineShift - 1
	d.LineFirst = rip &^ mask
	d.LineLast = (rip + uint32(d.Len) - 1) &^ mask
}

// DecodeOne decodes and pre-decodes the instruction at the start of buf,
// as if it were located at virtual address rip with 1<<lineShift-byte
// instruction-cache lines.
func DecodeOne(buf []byte, rip uint32, lineShift uint8) (DecodedInstr, error) {
	in, n, err := Decode(buf)
	if err != nil {
		return DecodedInstr{}, err
	}
	return PredecodeAt(in, n, rip, lineShift)
}

// Instr reconstructs the generic instruction form, for error messages and
// debug output (cold paths only).
func (d *DecodedInstr) Instr() Instr {
	in := Instr{Op: d.Op}
	for i := 0; i < int(d.NArgs); i++ {
		switch d.Kind[i] {
		case ArgGP, ArgX:
			in.Args = append(in.Args, d.Reg[i])
		case ArgI:
			in.Args = append(in.Args, Imm(d.Imm))
		case ArgM:
			in.Args = append(in.Args, d.Mem)
		}
	}
	return in
}

// String renders the pre-decoded instruction in Intel syntax.
func (d *DecodedInstr) String() string {
	in := d.Instr()
	return in.String()
}
