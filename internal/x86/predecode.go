package x86

import "fmt"

// ArgKind classifies one operand of a pre-decoded instruction into the
// concrete shapes the simulator's execution engine handles, replacing the
// per-step interface type assertions on Instr.Args.
type ArgKind uint8

// Operand kinds.
const (
	ArgNone ArgKind = iota
	ArgGP           // general-purpose register (Reg holds it)
	ArgX            // XMM register (Reg holds it)
	ArgI            // immediate (Imm holds it)
	ArgM            // memory operand (Mem holds it)
)

// DecodedInstr is one fully pre-decoded instruction: the mnemonic, its
// encoded length, the resolved timing specification, and concrete operand
// kinds. Pre-decoding happens once per installed code image, so the
// per-step interpreter front end touches no maps and performs no interface
// dispatch.
//
// The x86 subset the simulator supports has at most two explicit operands,
// of which at most one is an immediate and at most one is a memory
// operand; Imm and Mem therefore need no per-argument storage.
type DecodedInstr struct {
	Op    Op
	Class Class
	Len   uint8
	NArgs uint8
	Kind  [2]ArgKind
	Reg   [2]Reg // register operand at the corresponding index (ArgGP/ArgX)
	Imm   int64  // immediate operand, whichever index holds it
	Mem   Mem    // memory operand, whichever index holds it
	Spec  *InstrSpec
}

// Predecode resolves a decoded instruction of encoded length n into its
// pre-decoded form. It fails on operands the execution engine cannot run
// (unresolved label references).
func Predecode(in Instr, n int) (DecodedInstr, error) {
	sp := SpecPtr(in.Op)
	d := DecodedInstr{
		Op:    in.Op,
		Class: sp.Class,
		Len:   uint8(n),
		NArgs: uint8(len(in.Args)),
		Spec:  sp,
	}
	if len(in.Args) > 2 {
		return DecodedInstr{}, fmt.Errorf("x86: %s has %d operands; predecode supports 2", in.Op, len(in.Args))
	}
	for i, a := range in.Args {
		switch v := a.(type) {
		case Reg:
			if v.IsXMM() {
				d.Kind[i] = ArgX
			} else {
				d.Kind[i] = ArgGP
			}
			d.Reg[i] = v
		case Imm:
			d.Kind[i] = ArgI
			d.Imm = int64(v)
		case Mem:
			d.Kind[i] = ArgM
			d.Mem = v
		default:
			return DecodedInstr{}, fmt.Errorf("x86: cannot predecode operand %v of %s", a, in.Op)
		}
	}
	return d, nil
}

// DecodeOne decodes and pre-decodes the instruction at the start of buf.
func DecodeOne(buf []byte) (DecodedInstr, error) {
	in, n, err := Decode(buf)
	if err != nil {
		return DecodedInstr{}, err
	}
	return Predecode(in, n)
}

// Instr reconstructs the generic instruction form, for error messages and
// debug output (cold paths only).
func (d *DecodedInstr) Instr() Instr {
	in := Instr{Op: d.Op}
	for i := 0; i < int(d.NArgs); i++ {
		switch d.Kind[i] {
		case ArgGP, ArgX:
			in.Args = append(in.Args, d.Reg[i])
		case ArgI:
			in.Args = append(in.Args, Imm(d.Imm))
		case ArgM:
			in.Args = append(in.Args, d.Mem)
		}
	}
	return in
}

// String renders the pre-decoded instruction in Intel syntax.
func (d *DecodedInstr) String() string {
	in := d.Instr()
	return in.String()
}
