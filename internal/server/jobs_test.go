package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

// jobRecord mirrors jobJSON for test-side decoding.
type jobRecord struct {
	ID          string `json:"id"`
	Kind        string `json:"kind"`
	State       string `json:"state"`
	SubmittedNs int64  `json:"submitted_ns"`
	StartedNs   int64  `json:"started_ns"`
	FinishedNs  int64  `json:"finished_ns"`
	Progress    struct {
		Total     int `json:"total"`
		Completed int `json:"completed"`
		Failed    int `json:"failed"`
		CacheHits int `json:"cache_hits"`
	} `json:"progress"`
	Error *struct {
		Code    string `json:"code"`
		Message string `json:"message"`
	} `json:"error"`
}

func decodeJob(t *testing.T, body []byte) jobRecord {
	t.Helper()
	var j jobRecord
	if err := json.Unmarshal(body, &j); err != nil {
		t.Fatalf("not a job record: %v\n%s", err, body)
	}
	return j
}

// pollJob polls the status endpoint until the predicate holds.
func pollJob(t *testing.T, ts *httptest.Server, id string, pred func(jobRecord) bool) jobRecord {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		status, body := get(t, ts, "/v1/jobs/"+id)
		if status != http.StatusOK {
			t.Fatalf("poll status %d: %s", status, body)
		}
		j := decodeJob(t, body)
		if pred(j) {
			return j
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s never reached the wanted state; last record: %+v", id, j)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestJobSubmitPollResult(t *testing.T) {
	ts := newTestServer(t, Options{Seed: 42})
	runBody := `{"config": {"asm": "add rax, rbx", "n_measurements": 3}}`

	status, body := post(t, ts, "/v1/jobs", `{"run": `+runBody+`}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", status, body)
	}
	submitted := decodeJob(t, body)
	if submitted.ID == "" || submitted.Kind != "run" || submitted.State != "queued" {
		t.Fatalf("submitted record = %+v", submitted)
	}
	if submitted.SubmittedNs == 0 || submitted.StartedNs != 0 {
		t.Errorf("submit timestamps = %+v", submitted)
	}

	final := pollJob(t, ts, submitted.ID, func(j jobRecord) bool { return j.State == "done" })
	if final.Progress.Total != 1 || final.Progress.Completed != 1 || final.Progress.Failed != 0 {
		t.Errorf("final progress = %+v", final.Progress)
	}
	if !(final.SubmittedNs < final.StartedNs && final.StartedNs < final.FinishedNs) {
		t.Errorf("phase timestamps not ordered: %+v", final)
	}

	// The job's result is byte-for-byte the synchronous response.
	status, jobResult := get(t, ts, "/v1/jobs/"+submitted.ID+"/result")
	if status != http.StatusOK {
		t.Fatalf("result status %d: %s", status, jobResult)
	}
	status, syncResult := post(t, ts, "/v1/run", runBody)
	if status != http.StatusOK {
		t.Fatalf("sync status %d: %s", status, syncResult)
	}
	if !bytes.Equal(jobResult, syncResult) {
		t.Errorf("job result differs from the synchronous response:\njob:  %s\nsync: %s", jobResult, syncResult)
	}

	// The transition log ends terminal; the streamed variant replays it
	// and closes.
	status, body = get(t, ts, "/v1/jobs/"+submitted.ID+"/events")
	if status != http.StatusOK {
		t.Fatalf("events status %d: %s", status, body)
	}
	var evs struct {
		Events []jobRecord `json:"events"`
	}
	if err := json.Unmarshal(body, &evs); err != nil {
		t.Fatal(err)
	}
	if n := len(evs.Events); n != 3 ||
		evs.Events[0].State != "queued" || evs.Events[1].State != "running" || evs.Events[2].State != "done" {
		t.Errorf("transition log: %+v", evs.Events)
	}
	status, stream := get(t, ts, "/v1/jobs/"+submitted.ID+"/events?stream=1")
	if status != http.StatusOK {
		t.Fatalf("stream status %d: %s", status, stream)
	}
	lines := bytes.Split(bytes.TrimSuffix(stream, []byte("\n")), []byte("\n"))
	if len(lines) < 3 {
		t.Fatalf("stream delivered %d lines: %s", len(lines), stream)
	}
	if last := decodeJob(t, lines[len(lines)-1]); last.State != "done" {
		t.Errorf("stream's last line is %q, want a terminal record", last.State)
	}
}

// TestJobSweepEquivalence pins the headline determinism claim: a sweep
// submitted as an async job — sharded across 4 workers server-side —
// returns result bytes identical to the synchronous /v1/sweep response,
// each from a fresh server so neither leg is served the other's cache.
func TestJobSweepEquivalence(t *testing.T) {
	const body = `{"sweep": {
		"base": {"n_measurements": 3},
		"cpus": ["Skylake", "Haswell"],
		"asm": ["add rax, rbx", "imul rax, rbx", "add rax, rbx"],
		"unrolls": [10, 100]
	}}`

	syncTS := newTestServer(t, Options{Seed: 42})
	status, want := post(t, syncTS, "/v1/sweep", body)
	if status != http.StatusOK {
		t.Fatalf("sync sweep status %d: %s", status, want)
	}

	asyncTS := newTestServer(t, Options{Seed: 42, SweepShards: 4})
	status, sub := post(t, asyncTS, "/v1/jobs", `{"sweep": `+body+`}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit status %d: %s", status, sub)
	}
	id := decodeJob(t, sub).ID
	status, got := get(t, asyncTS, "/v1/jobs/"+id+"/result?wait=1")
	if status != http.StatusOK {
		t.Fatalf("result status %d: %s", status, got)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("sharded job result differs from the synchronous sweep:\njob:  %s\nsync: %s", got, want)
	}

	// The duplicated asm entry rides the global-dedupe path (fanned out,
	// not re-evaluated); the progress counters still cover every index.
	final := pollJob(t, asyncTS, id, func(j jobRecord) bool { return j.State == "done" })
	if final.Progress.Total != 12 || final.Progress.Completed != 12 || final.Progress.Failed != 0 {
		t.Errorf("progress = %+v, want 12/12", final.Progress)
	}
}

// slowJobBody is a sweep whose loop counts keep one worker busy for
// seconds — long enough that cancel/overflow tests always land while it
// runs, short enough to drain quickly once canceled.
func slowJobBody() string {
	loops := "1500"
	for i := 1; i < 8; i++ {
		loops += fmt.Sprintf(",%d", 1500+2*i)
	}
	return `{"sweep": {"sweep": {"base": {"asm": "add rax, rbx"}, "loops": [` + loops + `]}}}`
}

func TestJobQueueOverflow429(t *testing.T) {
	ts := newTestServer(t, Options{Seed: 42, Parallelism: 1, JobWorkers: 1, JobQueueSize: 1})

	// Fill the system: one job running, one queued.
	status, body := post(t, ts, "/v1/jobs", slowJobBody())
	if status != http.StatusAccepted {
		t.Fatalf("first submit: %d: %s", status, body)
	}
	first := decodeJob(t, body).ID
	pollJob(t, ts, first, func(j jobRecord) bool { return j.State == "running" })
	status, body = post(t, ts, "/v1/jobs", slowJobBody())
	if status != http.StatusAccepted {
		t.Fatalf("second submit: %d: %s", status, body)
	}
	second := decodeJob(t, body).ID

	// The queue bound is reached: the next submission is rejected with
	// the typed envelope and a Retry-After hint.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(slowJobBody()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	overflow, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status %d: %s", resp.StatusCode, overflow)
	}
	if code := errorCode(t, overflow); code != "queue_full" {
		t.Errorf("overflow code %q, want queue_full", code)
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("overflow response carries no Retry-After header")
	}

	// Cancel both admitted jobs so the server drains fast.
	for _, id := range []string{second, first} {
		req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
		if resp, err := http.DefaultClient.Do(req); err == nil {
			resp.Body.Close()
		}
	}
}

func TestJobCancelWhileRunning(t *testing.T) {
	before := runtime.NumGoroutine()
	srv := newServer(t, Options{Seed: 42, Parallelism: 1, JobWorkers: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	status, body := post(t, ts, "/v1/jobs", slowJobBody())
	if status != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", status, body)
	}
	id := decodeJob(t, body).ID
	pollJob(t, ts, id, func(j jobRecord) bool { return j.State == "running" })

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	cancelBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel status %d: %s", resp.StatusCode, cancelBody)
	}

	// The running sweep winds down between benchmark runs and the job
	// lands canceled — far sooner than the seconds it had left.
	final := pollJob(t, ts, id, func(j jobRecord) bool { return j.State != "running" })
	if final.State != "canceled" {
		t.Fatalf("post-cancel state %q, want canceled", final.State)
	}

	// A canceled job has no result body to serve.
	status, body = get(t, ts, "/v1/jobs/"+id+"/result")
	if status != http.StatusConflict {
		t.Fatalf("canceled result status %d: %s", status, body)
	}
	if code := errorCode(t, body); code != "canceled" {
		t.Errorf("canceled result code %q", code)
	}

	// No goroutines may outlive the canceled job once the server drains.
	ts.Close()
	http.DefaultClient.CloseIdleConnections()
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Errorf("goroutines leaked: %d before, %d after cancel drain", before, now)
	}
}

func TestJobDrainOnShutdown(t *testing.T) {
	srv := newServer(t, Options{Seed: 42, Parallelism: 1, JobWorkers: 1})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// One job running, one queued behind it.
	status, body := post(t, ts, "/v1/jobs", slowJobBody())
	if status != http.StatusAccepted {
		t.Fatalf("first submit: %d: %s", status, body)
	}
	running := decodeJob(t, body).ID
	pollJob(t, ts, running, func(j jobRecord) bool { return j.State == "running" })
	status, body = post(t, ts, "/v1/jobs", slowJobBody())
	if status != http.StatusAccepted {
		t.Fatalf("second submit: %d: %s", status, body)
	}
	queued := decodeJob(t, body).ID

	// An impatient drain: the queued job is parked canceled without
	// running; the running one is canceled at the deadline and winds
	// down between benchmark runs.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("shutdown = %v, want DeadlineExceeded (running job outlives the budget)", err)
	}
	if j := pollJob(t, ts, queued, func(j jobRecord) bool { return j.State != "queued" }); j.State != "canceled" {
		t.Errorf("queued job ended %q, want parked canceled", j.State)
	}
	if j := pollJob(t, ts, running, func(j jobRecord) bool { return j.State != "running" }); j.State != "canceled" {
		t.Errorf("running job ended %q, want canceled", j.State)
	}

	// A drained server rejects new submissions as unavailable.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(slowJobBody()))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ = io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("post-drain submit status %d: %s", resp.StatusCode, body)
	}
	if code := errorCode(t, body); code != "unavailable" {
		t.Errorf("post-drain submit code %q", code)
	}
}

func TestJobValidation(t *testing.T) {
	ts := newTestServer(t, Options{Seed: 42})
	cases := []struct {
		name, method, path, body string
		wantStatus               int
		wantCode                 string
	}{
		{"empty submit", "POST", "/v1/jobs", `{}`, 400, "bad_request"},
		{"two bodies", "POST", "/v1/jobs",
			`{"run": {"config": {"asm": "nop"}}, "sweep": {"sweep": {"asm": ["nop"]}}}`, 400, "bad_request"},
		{"invalid inner request", "POST", "/v1/jobs", `{"run": {"config": {}}}`, 422, "invalid_argument"},
		{"unknown inner cpu", "POST", "/v1/jobs", `{"run": {"cpu": "Pentium", "config": {"asm": "nop"}}}`, 422, "invalid_argument"},
		{"jobs wrong method", "GET", "/v1/jobs", ``, 405, "method_not_allowed"},
		{"unknown job", "GET", "/v1/jobs/j999999", ``, 404, "not_found"},
		{"unknown job result", "GET", "/v1/jobs/j999999/result", ``, 404, "not_found"},
		{"unknown job events", "GET", "/v1/jobs/j999999/events", ``, 404, "not_found"},
		{"cancel unknown job", "DELETE", "/v1/jobs/j999999", ``, 404, "not_found"},
		{"job wrong method", "PUT", "/v1/jobs/j999999", ``, 405, "method_not_allowed"},
		{"result wrong method", "POST", "/v1/jobs/j999999/result", ``, 405, "method_not_allowed"},
		{"unknown subresource", "GET", "/v1/jobs/j999999/logs", ``, 404, "not_found"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != tc.wantStatus {
				t.Errorf("status %d, want %d: %s", resp.StatusCode, tc.wantStatus, body)
			}
			if code := errorCode(t, body); code != tc.wantCode {
				t.Errorf("error code %q, want %q", code, tc.wantCode)
			}
		})
	}

	// A queued-or-running job's result is not ready: 503 with a
	// Retry-After hint, not an error record.
	status, body := post(t, ts, "/v1/jobs", slowJobBody())
	if status != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", status, body)
	}
	id := decodeJob(t, body).ID
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	notReady, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("not-ready result status %d: %s", resp.StatusCode, notReady)
	}
	if code := errorCode(t, notReady); code != "unavailable" {
		t.Errorf("not-ready code %q", code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("not-ready response carries no Retry-After header")
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
	if resp, err := http.DefaultClient.Do(req); err == nil {
		resp.Body.Close()
	}
}

func TestJobFailedReplaysEnvelope(t *testing.T) {
	ts := newTestServer(t, Options{Seed: 42})
	// An unroll bomb passes submission-time validation (the cost gate
	// cannot see the expanded size) and fails during evaluation; the
	// job replays the same envelope the synchronous endpoint answers.
	body := `{"config": {"asm": "nop", "unroll_count": 2000000000}}`
	status, sub := post(t, ts, "/v1/jobs", `{"run": `+body+`}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", status, sub)
	}
	id := decodeJob(t, sub).ID
	final := pollJob(t, ts, id, func(j jobRecord) bool { return j.State != "queued" && j.State != "running" })
	if final.State != "failed" || final.Error == nil || final.Error.Code != "evaluation_failed" {
		t.Fatalf("final record = %+v", final)
	}

	status, result := get(t, ts, "/v1/jobs/"+id+"/result")
	if status != 422 {
		t.Fatalf("failed-job result status %d: %s", status, result)
	}
	if code := errorCode(t, result); code != "evaluation_failed" {
		t.Errorf("failed-job result code %q", code)
	}
	// Byte-for-byte the synchronous error envelope.
	syncStatus, syncBody := post(t, ts, "/v1/run", body)
	if syncStatus != 422 || !bytes.Equal(result, syncBody) {
		t.Errorf("replayed envelope differs from the synchronous one (%d):\njob:  %s\nsync: %s", syncStatus, result, syncBody)
	}
}

// TestJobEventsStreamLive follows a running job's NDJSON event stream
// and requires progress updates to arrive while the job runs.
func TestJobEventsStreamLive(t *testing.T) {
	ts := newTestServer(t, Options{Seed: 42, Parallelism: 1, JobWorkers: 1})
	status, body := post(t, ts, "/v1/jobs", slowJobBody())
	if status != http.StatusAccepted {
		t.Fatalf("submit: %d: %s", status, body)
	}
	id := decodeJob(t, body).ID

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/jobs/"+id+"/events?stream=1", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status %d", resp.StatusCode)
	}

	// Read until a running record with nonzero progress, then cancel the
	// job out-of-band and require the stream to end on a terminal line.
	sc := bufio.NewScanner(resp.Body)
	sawProgress, canceled := false, false
	var last jobRecord
	for sc.Scan() {
		last = decodeJob(t, sc.Bytes())
		if last.State == "running" && last.Progress.Completed > 0 && !canceled {
			sawProgress = true
			req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+id, nil)
			if resp, err := http.DefaultClient.Do(req); err == nil {
				resp.Body.Close()
			}
			canceled = true
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("stream read: %v", err)
	}
	if !sawProgress {
		t.Error("stream delivered no mid-run progress update")
	}
	if last.State != "canceled" {
		t.Errorf("stream's last record is %q, want canceled", last.State)
	}
}

// TestCampaignJobDeterministicAcrossWorkers submits the same miniature
// policy-inference campaign (one adaptive model, L1 only, plus a tiny
// stochastic-leader age graph) at two worker counts and requires the
// finished result bodies to be byte-identical: campaign cells and
// age-graph groups are pure functions of the request, never of the
// schedule. docs/API.md replays this request.
func TestCampaignJobDeterministicAcrossWorkers(t *testing.T) {
	ts := newTestServer(t, Options{Seed: 42})
	submit := func(workers int) []byte {
		body := fmt.Sprintf(`{"campaign": {"cpus": ["IvyBridge"], "levels": ["L1"], "max_sequences": 30,
			"workers": %d, "age_graphs": true, "age_max_fresh": 16, "age_step": 16, "age_trials": 2}}`, workers)
		status, resp := post(t, ts, "/v1/jobs", body)
		if status != http.StatusAccepted {
			t.Fatalf("submit status %d: %s", status, resp)
		}
		submitted := decodeJob(t, resp)
		if submitted.Kind != "campaign" {
			t.Fatalf("kind = %q, want campaign", submitted.Kind)
		}
		final := pollJob(t, ts, submitted.ID, func(j jobRecord) bool { return j.State == "done" })
		// One (CPU, level) cell plus one age row.
		if final.Progress.Total != 2 || final.Progress.Completed != 2 {
			t.Errorf("workers=%d progress = %+v", workers, final.Progress)
		}
		status, result := get(t, ts, "/v1/jobs/"+submitted.ID+"/result")
		if status != http.StatusOK {
			t.Fatalf("result status %d: %s", status, result)
		}
		return result
	}
	one, four := submit(1), submit(4)
	if !bytes.Equal(one, four) {
		t.Errorf("campaign results differ across worker counts:\nworkers=1: %s\nworkers=4: %s", one, four)
	}
	var res struct {
		Cells []struct {
			CPU, Level, Policy string
			OK                 bool
		} `json:"cells"`
		AgeRows []json.RawMessage `json:"age_rows"`
	}
	if err := json.Unmarshal(one, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Cells) != 1 || len(res.AgeRows) != 1 {
		t.Fatalf("campaign shape: %s", one)
	}
	if c := res.Cells[0]; c.CPU != "IvyBridge" || c.Level != "L1" || !c.OK {
		t.Errorf("cell = %+v", c)
	}

	// A campaign of unknown CPUs or levels is rejected at submit time.
	for _, bad := range []string{
		`{"campaign": {"cpus": ["NoSuchCPU"]}}`,
		`{"campaign": {"levels": ["L4"]}}`,
	} {
		if status, resp := post(t, ts, "/v1/jobs", bad); status != http.StatusBadRequest {
			t.Errorf("submit %s: status %d: %s", bad, status, resp)
		}
	}
}
