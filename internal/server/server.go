// Package server exposes the nanobench Session API over HTTP/JSON — the
// engine behind cmd/nanobenchd. The wire schema is documented in
// docs/API.md and enforced byte-for-byte by TestAPIDocGolden.
//
// Endpoints (all under /v1):
//
//	POST /v1/run       evaluate one config on one CPU model and mode
//	POST /v1/runbatch  evaluate a heterogeneous batch (mixed CPUs/modes)
//	POST /v1/sweep     expand and evaluate a Sweep family; ?stream=1
//	                   delivers results progressively as NDJSON
//	GET  /v1/healthz   liveness plus the CPU model catalog
//	GET  /v1/stats     cache counters, in-flight jobs, session options
//
// The server multiplexes one Session per (CPU model, privilege mode)
// pair, opened lazily on first use; every session shares a single
// LRU-bounded result cache, so repeated evaluations — the dominant
// pattern when many clients probe the same instruction set — are served
// from memory. Each request runs under its own context.Context: a client
// that disconnects mid-sweep cancels the underlying evaluation, and the
// workers wind down after at most the benchmark run each was simulating.
package server

import (
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"

	"nanobench"
	"nanobench/internal/uarch"
)

// Defaults for Options fields left zero.
const (
	// DefaultMaxBatch bounds the configs accepted per request.
	DefaultMaxBatch = 65536
	// DefaultMaxBodyBytes bounds the request body size.
	DefaultMaxBodyBytes = 8 << 20
)

// Options configures a Server. Session-shaped fields (Seed, Parallelism,
// WarmUp) apply uniformly to every session the server opens.
type Options struct {
	// Seed is the root seed every session derives per-job machine seeds
	// from. Zero is a valid root seed; cmd/nanobenchd defaults the flag
	// to nanobench.DefaultBatchSeed.
	Seed int64
	// Parallelism bounds each session's concurrently simulated machines
	// (0: runtime.NumCPU()).
	Parallelism int
	// WarmUp is the session-wide default warm-up count (see
	// nanobench.WithWarmUp).
	WarmUp int
	// CacheMaxEntries bounds the shared result cache (0: unbounded —
	// fine for tests, unwise for a long-running service).
	CacheMaxEntries int
	// MaxBatch bounds the number of configs a single request may carry
	// (0: DefaultMaxBatch).
	MaxBatch int
	// MaxBodyBytes bounds the request body size (0: DefaultMaxBodyBytes).
	MaxBodyBytes int64
}

// Server is the HTTP front end. It is safe for concurrent use; create it
// with New and serve it like any http.Handler.
type Server struct {
	opts  Options
	cache *nanobench.BatchCache
	mux   *http.ServeMux

	mu       sync.Mutex
	sessions map[sessionKey]*nanobench.Session

	inflight atomic.Int64
	reqRun   atomic.Uint64
	reqBatch atomic.Uint64
	reqSweep atomic.Uint64
}

// sessionKey identifies one session of the pool: a canonical CPU model
// name and a privilege mode.
type sessionKey struct {
	cpu  string
	mode nanobench.Mode
}

// New builds a server with a fresh shared cache. The session options
// are validated eagerly by opening the default session (Skylake,
// kernel) into the pool: a misconfigured server fails here, at startup,
// instead of serving a healthy /v1/healthz and a 500 on every
// evaluation.
func New(opts Options) (*Server, error) {
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = DefaultMaxBatch
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = DefaultMaxBodyBytes
	}
	s := &Server{
		opts:     opts,
		cache:    nanobench.NewBatchCacheLRU(opts.CacheMaxEntries),
		mux:      http.NewServeMux(),
		sessions: make(map[sessionKey]*nanobench.Session),
	}
	if _, e := s.session("", ""); e != nil {
		return nil, fmt.Errorf("server: invalid options: %s", e.body.Message)
	}
	s.mux.HandleFunc("/v1/run", s.handleRun)
	s.mux.HandleFunc("/v1/runbatch", s.handleRunBatch)
	s.mux.HandleFunc("/v1/sweep", s.handleSweep)
	s.mux.HandleFunc("/v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/stats", s.handleStats)
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, errNotFound("no such endpoint: "+r.URL.Path))
	})
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	s.mux.ServeHTTP(w, r)
}

// InFlight returns the number of evaluation requests currently being
// served (run, runbatch, and sweep; health and stats don't count).
func (s *Server) InFlight() int64 { return s.inflight.Load() }

// session returns the pool's session for the (cpu, mode) wire names,
// opening it on first use. Empty names select the documented defaults
// ("Skylake", "kernel").
func (s *Server) session(cpuName, modeName string) (*nanobench.Session, *apiError) {
	if cpuName == "" {
		cpuName = "Skylake"
	}
	if modeName == "" {
		modeName = "kernel"
	}
	mode, err := nanobench.ParseMode(modeName)
	if err != nil {
		return nil, errInvalid(err.Error())
	}
	// Canonicalize the model name so "skylake" and "Skylake" share one
	// session, and unknown models fail before a session half-opens.
	cpu, err := uarch.ByName(cpuName)
	if err != nil {
		return nil, errInvalid(err.Error())
	}
	key := sessionKey{cpu: cpu.Name, mode: mode}

	s.mu.Lock()
	defer s.mu.Unlock()
	if sess, ok := s.sessions[key]; ok {
		return sess, nil
	}
	sess, err := nanobench.Open(
		nanobench.WithCPU(key.cpu),
		nanobench.WithMode(key.mode),
		nanobench.WithSeed(s.opts.Seed),
		nanobench.WithParallelism(s.opts.Parallelism),
		nanobench.WithWarmUp(s.opts.WarmUp),
		nanobench.WithCache(s.cache),
	)
	if err != nil {
		return nil, errInternal(err.Error())
	}
	s.sessions[key] = sess
	return sess, nil
}

// sessionKeys returns the open sessions' keys sorted by CPU name then
// mode, for deterministic /v1/stats output.
func (s *Server) sessionKeys() []sessionKey {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]sessionKey, 0, len(s.sessions))
	for k := range s.sessions {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].cpu != keys[j].cpu {
			return keys[i].cpu < keys[j].cpu
		}
		return keys[i].mode < keys[j].mode
	})
	return keys
}

// cpuCatalog lists the served machine models in catalog order.
func cpuCatalog() []string {
	models := uarch.Table1()
	names := make([]string, 0, len(models)+1)
	for _, c := range models {
		names = append(names, c.Name)
	}
	return append(names, uarch.Zen().Name)
}
