// Package server exposes the nanobench Session API over HTTP/JSON — the
// engine behind cmd/nanobenchd. The wire schema is documented in
// docs/API.md and enforced byte-for-byte by TestAPIDocGolden.
//
// Endpoints:
//
//	POST   /v1/run              evaluate one config on one CPU model and mode
//	POST   /v1/runbatch         evaluate a heterogeneous batch (mixed CPUs/modes)
//	POST   /v1/sweep            expand and evaluate a Sweep family; ?stream=1
//	                            delivers results progressively as NDJSON
//	POST   /v1/jobs             submit a run/runbatch/sweep asynchronously
//	GET    /v1/jobs/{id}        poll a job record
//	GET    /v1/jobs/{id}/result fetch a finished job's body; ?wait=1 long-polls
//	GET    /v1/jobs/{id}/events transition log; ?stream=1 follows live as NDJSON
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/healthz          liveness plus the CPU model catalog
//	GET    /v1/stats            cache counters, queue occupancy, session options
//	GET    /metrics             Prometheus text-format metrics
//
// The server multiplexes one Session per (CPU model, privilege mode)
// pair, opened lazily on first use; every session shares a single
// LRU-bounded result cache, so repeated evaluations — the dominant
// pattern when many clients probe the same instruction set — are served
// from memory. Each request runs under its own context.Context: a client
// that disconnects mid-sweep cancels the underlying evaluation, and the
// workers wind down after at most the benchmark run each was simulating.
package server

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"nanobench"
	"nanobench/internal/jobs"
	"nanobench/internal/uarch"
)

// Defaults for Options fields left zero.
const (
	// DefaultMaxBatch bounds the configs accepted per request.
	DefaultMaxBatch = 65536
	// DefaultMaxBodyBytes bounds the request body size.
	DefaultMaxBodyBytes = 8 << 20
	// DefaultSweepShards is the fan-out of an asynchronous sweep job.
	DefaultSweepShards = 4
)

// Options configures a Server. Session-shaped fields (Seed, Parallelism,
// WarmUp) apply uniformly to every session the server opens.
type Options struct {
	// Seed is the root seed every session derives per-job machine seeds
	// from. Zero is a valid root seed; cmd/nanobenchd defaults the flag
	// to nanobench.DefaultBatchSeed.
	Seed int64
	// Parallelism bounds each session's concurrently simulated machines
	// (0: runtime.NumCPU()).
	Parallelism int
	// WarmUp is the session-wide default warm-up count (see
	// nanobench.WithWarmUp).
	WarmUp int
	// CacheMaxEntries bounds the shared result cache (0: unbounded —
	// fine for tests, unwise for a long-running service).
	CacheMaxEntries int
	// MaxBatch bounds the number of configs a single request may carry
	// (0: DefaultMaxBatch).
	MaxBatch int
	// MaxBodyBytes bounds the request body size (0: DefaultMaxBodyBytes).
	MaxBodyBytes int64

	// JobWorkers sizes the asynchronous job worker pool
	// (0: jobs.DefaultWorkers).
	JobWorkers int
	// JobQueueSize bounds the job admission queue; a full queue answers
	// 429 queue_full (0: jobs.DefaultQueueSize).
	JobQueueSize int
	// JobMaxWait is how long a submission may wait for a queue slot
	// before the 429 (0: fail fast).
	JobMaxWait time.Duration
	// JobTTL retains finished job records for result retrieval
	// (0: jobs.DefaultTTL).
	JobTTL time.Duration
	// SweepShards is how many shards an asynchronous sweep job fans out
	// across — byte-identical to the synchronous path at any value
	// (0: DefaultSweepShards).
	SweepShards int

	// now overrides the job subsystem's clock; tests inject a
	// deterministic one.
	now func() int64
}

// Server is the HTTP front end. It is safe for concurrent use; create it
// with New and serve it like any http.Handler.
type Server struct {
	opts   Options
	cache  *nanobench.BatchCache
	mux    *http.ServeMux
	jobMgr *jobs.Manager

	mu       sync.Mutex
	sessions map[sessionKey]*nanobench.Session

	inflight atomic.Int64
	reqRun   atomic.Uint64
	reqBatch atomic.Uint64
	reqSweep atomic.Uint64
	reqJobs  atomic.Uint64
}

// sessionKey identifies one session of the pool: a canonical CPU model
// name and a privilege mode.
type sessionKey struct {
	cpu  string
	mode nanobench.Mode
}

// New builds a server with a fresh shared cache. The session options
// are validated eagerly by opening the default session (Skylake,
// kernel) into the pool: a misconfigured server fails here, at startup,
// instead of serving a healthy /v1/healthz and a 500 on every
// evaluation.
func New(opts Options) (*Server, error) {
	if opts.MaxBatch <= 0 {
		opts.MaxBatch = DefaultMaxBatch
	}
	if opts.MaxBodyBytes <= 0 {
		opts.MaxBodyBytes = DefaultMaxBodyBytes
	}
	if opts.SweepShards <= 0 {
		opts.SweepShards = DefaultSweepShards
	}
	s := &Server{
		opts:     opts,
		cache:    nanobench.NewBatchCacheLRU(opts.CacheMaxEntries),
		mux:      http.NewServeMux(),
		sessions: make(map[sessionKey]*nanobench.Session),
	}
	if _, e := s.session("", ""); e != nil {
		return nil, fmt.Errorf("server: invalid options: %s", e.body.Message)
	}
	s.jobMgr = jobs.New(jobs.Options{
		Workers:   opts.JobWorkers,
		QueueSize: opts.JobQueueSize,
		MaxWait:   opts.JobMaxWait,
		TTL:       opts.JobTTL,
		Now:       opts.now,
	})
	s.mux.HandleFunc("/v1/run", s.handler(http.MethodPost, &s.reqRun, true, s.handleRun))
	s.mux.HandleFunc("/v1/runbatch", s.handler(http.MethodPost, &s.reqBatch, true, s.handleRunBatch))
	s.mux.HandleFunc("/v1/sweep", s.handler(http.MethodPost, &s.reqSweep, true, s.handleSweep))
	s.mux.HandleFunc("/v1/jobs", s.handler(http.MethodPost, &s.reqJobs, false, s.handleJobSubmit))
	s.mux.HandleFunc("/v1/jobs/", s.handleJobByID)
	s.mux.HandleFunc("/v1/healthz", s.handler(http.MethodGet, nil, false, s.handleHealthz))
	s.mux.HandleFunc("/v1/stats", s.handler(http.MethodGet, nil, false, s.handleStats))
	s.mux.HandleFunc("/metrics", s.handler(http.MethodGet, nil, false, s.handleMetrics))
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, errNotFound("no such endpoint: "+r.URL.Path))
	})
	return s, nil
}

// Shutdown drains the asynchronous job subsystem: admission closes
// (submissions answer 503 unavailable), jobs still queued are parked
// canceled, and running jobs are waited for until ctx expires — then
// their contexts are canceled and each winds down between benchmark
// runs. Call it after the HTTP listener stops accepting connections.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.jobMgr.Shutdown(ctx)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.opts.MaxBodyBytes)
	s.mux.ServeHTTP(w, r)
}

// InFlight returns the number of evaluation requests currently being
// served (run, runbatch, and sweep; health and stats don't count).
func (s *Server) InFlight() int64 { return s.inflight.Load() }

// session returns the pool's session for the (cpu, mode) wire names,
// opening it on first use. Empty names select the documented defaults
// ("Skylake", "kernel").
func (s *Server) session(cpuName, modeName string) (*nanobench.Session, *apiError) {
	if cpuName == "" {
		cpuName = "Skylake"
	}
	if modeName == "" {
		modeName = "kernel"
	}
	mode, err := nanobench.ParseMode(modeName)
	if err != nil {
		return nil, errInvalid(err.Error())
	}
	// Canonicalize the model name so "skylake" and "Skylake" share one
	// session, and unknown models fail before a session half-opens.
	cpu, err := uarch.ByName(cpuName)
	if err != nil {
		return nil, errInvalid(err.Error())
	}
	key := sessionKey{cpu: cpu.Name, mode: mode}

	s.mu.Lock()
	defer s.mu.Unlock()
	if sess, ok := s.sessions[key]; ok {
		return sess, nil
	}
	sess, err := nanobench.Open(
		nanobench.WithCPU(key.cpu),
		nanobench.WithMode(key.mode),
		nanobench.WithSeed(s.opts.Seed),
		nanobench.WithParallelism(s.opts.Parallelism),
		nanobench.WithWarmUp(s.opts.WarmUp),
		nanobench.WithCache(s.cache),
	)
	if err != nil {
		return nil, errInternal(err.Error())
	}
	s.sessions[key] = sess
	return sess, nil
}

// sessionKeys returns the open sessions' keys sorted by CPU name then
// mode, for deterministic /v1/stats output.
func (s *Server) sessionKeys() []sessionKey {
	s.mu.Lock()
	defer s.mu.Unlock()
	keys := make([]sessionKey, 0, len(s.sessions))
	for k := range s.sessions {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].cpu != keys[j].cpu {
			return keys[i].cpu < keys[j].cpu
		}
		return keys[i].mode < keys[j].mode
	})
	return keys
}

// cpuCatalog lists the served machine models in catalog order.
func cpuCatalog() []string {
	models := uarch.Table1()
	names := make([]string, 0, len(models)+1)
	for _, c := range models {
		names = append(names, c.Name)
	}
	return append(names, uarch.Zen().Name)
}
