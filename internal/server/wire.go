package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"nanobench"
	"nanobench/internal/jobs"
)

// The wire schema below is documented in docs/API.md; the golden test
// keeps the two in lock-step. Non-streamed responses are emitted
// json.MarshalIndent-pretty (two-space indent, trailing newline) so curl
// output and the documented examples are byte-identical; NDJSON stream
// lines are compact, one JSON object per line.

// runRequest is the body of POST /v1/run, and one element of a
// runbatch's "jobs".
type runRequest struct {
	CPU    string           `json:"cpu,omitempty"`
	Mode   string           `json:"mode,omitempty"`
	Config nanobench.Config `json:"config"`
}

// runResponse is the body of a successful POST /v1/run.
type runResponse struct {
	CPU    string            `json:"cpu"`
	Mode   string            `json:"mode"`
	Result *nanobench.Result `json:"result"`
}

// batchRequest is the body of POST /v1/runbatch.
type batchRequest struct {
	Jobs []runRequest `json:"jobs"`
}

// batchResponse is the body of a successful POST /v1/runbatch.
type batchResponse struct {
	Results []itemJSON `json:"results"`
}

// sweepRequest is the body of POST /v1/sweep.
type sweepRequest struct {
	CPU   string          `json:"cpu,omitempty"`
	Mode  string          `json:"mode,omitempty"`
	Sweep nanobench.Sweep `json:"sweep"`
}

// sweepResponse is the body of a successful non-streamed POST /v1/sweep.
type sweepResponse struct {
	Count   int        `json:"count"`
	Results []itemJSON `json:"results"`
}

// itemJSON is one evaluation's outcome inside a batch or sweep response,
// and the NDJSON stream line format. Exactly one of result and error is
// set.
type itemJSON struct {
	Index  int               `json:"index"`
	Result *nanobench.Result `json:"result,omitempty"`
	Error  *errorBody        `json:"error,omitempty"`
}

// healthzResponse is the body of GET /v1/healthz.
type healthzResponse struct {
	Status string   `json:"status"`
	CPUs   []string `json:"cpus"`
}

// statsResponse is the body of GET /v1/stats.
type statsResponse struct {
	Sessions []sessionStat            `json:"sessions"`
	Cache    nanobench.BatchCacheInfo `json:"cache"`
	InFlight int64                    `json:"inflight"`
	Jobs     jobs.Stats               `json:"jobs"`
	Requests requestStats             `json:"requests"`
	Options  optionsStat              `json:"options"`
}

type sessionStat struct {
	CPU  string `json:"cpu"`
	Mode string `json:"mode"`
}

type requestStats struct {
	Run      uint64 `json:"run"`
	RunBatch uint64 `json:"runbatch"`
	Sweep    uint64 `json:"sweep"`
	Jobs     uint64 `json:"jobs"`
}

type optionsStat struct {
	Seed            int64 `json:"seed"`
	Parallelism     int   `json:"parallelism"`
	WarmUpCount     int   `json:"warm_up_count"`
	CacheMaxEntries int   `json:"cache_max_entries"`
}

// errorBody is the error envelope's payload: a stable machine-readable
// code plus a human-readable message.
type errorBody struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

// errorResponse is the error envelope every failed request returns.
type errorResponse struct {
	Error errorBody `json:"error"`
}

// apiError pairs an error envelope with its HTTP status and, for the
// backpressure codes, a Retry-After hint in seconds.
type apiError struct {
	status     int
	body       errorBody
	retryAfter int
}

// Error makes apiError usable as an error value, so job records can
// store the exact envelope their result endpoint will replay.
func (e *apiError) Error() string {
	return fmt.Sprintf("%s: %s", e.body.Code, e.body.Message)
}

// Error codes of the envelope, with their HTTP statuses.
func errBadRequest(msg string) *apiError {
	return &apiError{status: http.StatusBadRequest, body: errorBody{"bad_request", msg}}
}
func errInvalid(msg string) *apiError {
	return &apiError{status: http.StatusUnprocessableEntity, body: errorBody{"invalid_argument", msg}}
}
func errNotFound(msg string) *apiError {
	return &apiError{status: http.StatusNotFound, body: errorBody{"not_found", msg}}
}
func errMethod(msg string) *apiError {
	return &apiError{status: http.StatusMethodNotAllowed, body: errorBody{"method_not_allowed", msg}}
}
func errTooLarge(msg string) *apiError {
	return &apiError{status: http.StatusRequestEntityTooLarge, body: errorBody{"request_too_large", msg}}
}
func errInternal(msg string) *apiError {
	return &apiError{status: http.StatusInternalServerError, body: errorBody{"internal", msg}}
}

// errQueueFull is the admission-backpressure rejection: the job queue
// stayed full past its patience window. retryAfter is the server's
// drain-time estimate in seconds, sent as a Retry-After header.
func errQueueFull(msg string, retryAfter int) *apiError {
	return &apiError{status: http.StatusTooManyRequests, body: errorBody{"queue_full", msg}, retryAfter: retryAfter}
}

// errUnavailable covers the not-ready and shutting-down cases: a result
// requested before its job finished, or a submission during drain.
func errUnavailable(msg string, retryAfter int) *apiError {
	return &apiError{status: http.StatusServiceUnavailable, body: errorBody{"unavailable", msg}, retryAfter: retryAfter}
}

// statusClientClosedRequest is nginx's non-standard 499: the client went
// away before the response. It is reported best-effort — usually nobody
// is left to read it.
const statusClientClosedRequest = 499

// itemError maps a per-evaluation error to the envelope payload used
// inside batch items and stream lines.
func itemError(err error) *errorBody {
	switch {
	case errors.Is(err, context.Canceled):
		return &errorBody{"canceled", "evaluation canceled"}
	case errors.Is(err, context.DeadlineExceeded):
		return &errorBody{"deadline_exceeded", "evaluation deadline exceeded"}
	}
	return &errorBody{"evaluation_failed", err.Error()}
}

// decodeJSON strictly decodes the request body into v: unknown fields,
// trailing garbage, and oversized bodies are errors.
func decodeJSON(r *http.Request, v any) *apiError {
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return errTooLarge(fmt.Sprintf("request body exceeds %d bytes", tooLarge.Limit))
		}
		return errBadRequest("reading request body: " + err.Error())
	}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return errBadRequest(err.Error())
	}
	if dec.More() {
		return errBadRequest("trailing data after JSON body")
	}
	return nil
}

// renderJSON renders v exactly as writeJSON puts it on the wire:
// pretty-printed with a trailing newline. Job records store these bytes
// so a job's result replays the synchronous response byte-for-byte.
func renderJSON(v any) ([]byte, error) {
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// writeJSON emits a pretty-printed JSON response with a trailing
// newline, matching the documented examples byte-for-byte.
func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := renderJSON(v)
	if err != nil {
		// Marshalling our own response types cannot fail; if it ever
		// does, fall through to a plain 500.
		//nanolint:allow errenvelope the envelope encoder's own last-resort fallback; rendering the envelope is what just failed
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(data)
}

// writeError emits the error envelope, with a Retry-After header when
// the error carries a backpressure hint.
func writeError(w http.ResponseWriter, e *apiError) {
	if e.retryAfter > 0 {
		w.Header().Set("Retry-After", strconv.Itoa(e.retryAfter))
	}
	writeJSON(w, e.status, errorResponse{Error: e.body})
}
