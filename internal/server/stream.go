package server

import (
	"encoding/json"
	"net/http"

	"nanobench"
)

// streamItems writes a sweep's results as NDJSON — one compact JSON
// object per line, in sweep-expansion order, flushed as each result
// lands so clients see progress while the tail is still simulating.
//
// When a write fails the client is gone; net/http then cancels the
// request context, which aborts the in-flight evaluations between
// benchmark runs. The channel is drained (it is buffered to the sweep
// size, so this never blocks on a dead consumer) to let the sequencer
// retire cleanly.
func (s *Server) streamItems(w http.ResponseWriter, items <-chan nanobench.BatchItem) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	// Tell buffering reverse proxies not to defeat the progressive
	// delivery this endpoint exists for.
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	for it := range items {
		if err := enc.Encode(toItem(it.Index, it)); err != nil {
			for range items { //nolint:revive // drain; see doc comment
			}
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}
