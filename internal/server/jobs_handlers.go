package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"

	"nanobench/internal/experiments"
	"nanobench/internal/jobs"
)

// The asynchronous jobs surface. A job wraps one of the synchronous
// evaluation requests and runs it on the manager's worker pool behind a
// bounded admission queue:
//
//	POST   /v1/jobs                submit; 202 + job record, 429 when full
//	GET    /v1/jobs/{id}           poll the job record
//	GET    /v1/jobs/{id}/result    the finished body; ?wait=1 long-polls
//	GET    /v1/jobs/{id}/events    transition log; ?stream=1 NDJSON live
//	DELETE /v1/jobs/{id}           cancel (park queued, interrupt running)
//
// A done job's result bytes are exactly what the synchronous endpoint
// would have written — sweep jobs additionally fan out across the
// session's shard-merge path, which is byte-identical by construction.

// jobSubmitRequest is the body of POST /v1/jobs: exactly one of the
// synchronous request bodies, keyed by its endpoint name — or a
// campaign, which has no synchronous endpoint (a full campaign simulates
// for minutes; it only makes sense as a job).
type jobSubmitRequest struct {
	Run      *runRequest      `json:"run,omitempty"`
	RunBatch *batchRequest    `json:"runbatch,omitempty"`
	Sweep    *sweepRequest    `json:"sweep,omitempty"`
	Campaign *campaignRequest `json:"campaign,omitempty"`
}

// campaignRequest selects a policy-inference campaign (experiments
// package, Section VI): Table I's replacement-policy inference over the
// requested CPU models and cache levels, optionally with stochastic-
// leader age graphs. Empty cpus/levels mean every Table I model and all
// three levels. The result is deterministic for a given request — worker
// count included — so repeated submissions return byte-identical bodies.
type campaignRequest struct {
	CPUs         []string `json:"cpus,omitempty"`
	Levels       []string `json:"levels,omitempty"`
	MaxSequences int      `json:"max_sequences,omitempty"`
	Seed         int64    `json:"seed,omitempty"`
	Workers      int      `json:"workers,omitempty"`
	AgeGraphs    bool     `json:"age_graphs,omitempty"`
	AgeMaxFresh  int      `json:"age_max_fresh,omitempty"`
	AgeStep      int      `json:"age_step,omitempty"`
	AgeTrials    int      `json:"age_trials,omitempty"`
}

// prepareCampaign validates a campaign submission (CPU names and levels
// resolve) and sizes its progress denominator.
func (s *Server) prepareCampaign(req campaignRequest) (experiments.CampaignOptions, int, *apiError) {
	levels, err := experiments.ParseLevels(req.Levels)
	if err != nil {
		return experiments.CampaignOptions{}, 0, errBadRequest(err.Error())
	}
	opt := experiments.CampaignOptions{
		CPUs:         req.CPUs,
		Levels:       levels,
		MaxSequences: req.MaxSequences,
		Seed:         req.Seed,
		Workers:      req.Workers,
		AgeGraphs:    req.AgeGraphs,
		AgeMaxFresh:  req.AgeMaxFresh,
		AgeStep:      req.AgeStep,
		AgeTrials:    req.AgeTrials,
	}
	total, err := experiments.CampaignSize(opt)
	if err != nil {
		return experiments.CampaignOptions{}, 0, errBadRequest(err.Error())
	}
	return opt, total, nil
}

// jobJSON is a job record's wire form: the submit/status/cancel
// response body, one entry of the events log, and the NDJSON event
// stream's line format.
type jobJSON struct {
	ID          string      `json:"id"`
	Kind        string      `json:"kind"`
	State       string      `json:"state"`
	SubmittedNs int64       `json:"submitted_ns"`
	StartedNs   int64       `json:"started_ns,omitempty"`
	FinishedNs  int64       `json:"finished_ns,omitempty"`
	Progress    jobs.Counts `json:"progress"`
	Error       *errorBody  `json:"error,omitempty"`
}

// jobEventsResponse is the body of a non-streamed GET /v1/jobs/{id}/events.
type jobEventsResponse struct {
	Events []jobJSON `json:"events"`
}

// toJob converts a job snapshot to its wire form.
func toJob(snap jobs.Snapshot) jobJSON {
	out := jobJSON{
		ID:          snap.ID,
		Kind:        snap.Kind,
		State:       string(snap.State),
		SubmittedNs: snap.SubmittedNs,
		StartedNs:   snap.StartedNs,
		FinishedNs:  snap.FinishedNs,
		Progress:    snap.Progress,
	}
	if snap.Err != nil {
		var ae *apiError
		switch {
		case errors.As(snap.Err, &ae):
			body := ae.body
			out.Error = &body
		case snap.State == jobs.Canceled:
			out.Error = &errorBody{"canceled", snap.Err.Error()}
		default:
			out.Error = &errorBody{"evaluation_failed", snap.Err.Error()}
		}
	}
	return out
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	var req jobSubmitRequest
	if e := decodeJSON(r, &req); e != nil {
		writeError(w, e)
		return
	}
	kind, total, task, e := s.buildJobTask(req)
	if e != nil {
		writeError(w, e)
		return
	}
	snap, err := s.jobMgr.Submit(kind, total, task)
	switch {
	case errors.Is(err, jobs.ErrQueueFull):
		writeError(w, errQueueFull("job queue full; retry later", s.jobMgr.RetryAfter()))
		return
	case errors.Is(err, jobs.ErrDraining):
		writeError(w, errUnavailable("server is draining; not accepting jobs", 1))
		return
	case err != nil:
		writeError(w, errInternal(err.Error()))
		return
	}
	writeJSON(w, http.StatusAccepted, toJob(snap))
}

// buildJobTask validates the submission against the same gates its
// synchronous endpoint applies — a bad request is rejected at submit
// time with the same envelope, never accepted and failed later — and
// closes over the prepared groups as the job's task.
func (s *Server) buildJobTask(req jobSubmitRequest) (kind string, total int, task jobs.Task, e *apiError) {
	set := 0
	for _, p := range []bool{req.Run != nil, req.RunBatch != nil, req.Sweep != nil, req.Campaign != nil} {
		if p {
			set++
		}
	}
	if set != 1 {
		return "", 0, nil, errBadRequest(`give exactly one of "run", "runbatch", "sweep", "campaign"`)
	}
	switch {
	case req.Run != nil:
		sess, e := s.prepareRun(*req.Run)
		if e != nil {
			return "", 0, nil, e
		}
		cfg := req.Run.Config
		return "run", 1, func(ctx context.Context, p *jobs.Progress) ([]byte, error) {
			res, err := sess.Run(ctx, cfg)
			if err != nil {
				p.Step(false, true)
				return nil, runError(err)
			}
			p.Step(false, false)
			return renderJSON(runResponse{
				CPU:    sess.CPUName(),
				Mode:   sess.Mode().String(),
				Result: res,
			})
		}, nil
	case req.RunBatch != nil:
		groups, n, e := s.prepareBatch(*req.RunBatch)
		if e != nil {
			return "", 0, nil, e
		}
		return "runbatch", n, func(ctx context.Context, p *jobs.Progress) ([]byte, error) {
			resp := batchResponse{Results: make([]itemJSON, 0, n)}
			for it := range mergeGroups(ctx, groups, n, 1) {
				p.Step(it.CacheHit, it.Err != nil)
				resp.Results = append(resp.Results, toItem(it.Index, it))
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return renderJSON(resp)
		}, nil
	case req.Campaign != nil:
		opt, total, e := s.prepareCampaign(*req.Campaign)
		if e != nil {
			return "", 0, nil, e
		}
		return "campaign", total, func(ctx context.Context, p *jobs.Progress) ([]byte, error) {
			res, err := experiments.PolicyCampaign(ctx, opt, func() { p.Step(false, false) })
			if err != nil {
				return nil, err
			}
			return renderJSON(res)
		}, nil
	default:
		groups, n, e := s.prepareSweep(*req.Sweep)
		if e != nil {
			return "", 0, nil, e
		}
		shards := s.opts.SweepShards
		return "sweep", n, func(ctx context.Context, p *jobs.Progress) ([]byte, error) {
			resp := sweepResponse{Count: n, Results: make([]itemJSON, 0, n)}
			for it := range mergeGroups(ctx, groups, n, shards) {
				p.Step(it.CacheHit, it.Err != nil)
				resp.Results = append(resp.Results, toItem(it.Index, it))
			}
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			return renderJSON(resp)
		}, nil
	}
}

// handleJobByID dispatches /v1/jobs/{id}[/result|/events] by hand — the
// ServeMux of the toolchain's floor version has no method or wildcard
// patterns — preserving the JSON envelope for unknown paths and
// methods.
func (s *Server) handleJobByID(w http.ResponseWriter, r *http.Request) {
	id, sub, _ := strings.Cut(strings.TrimPrefix(r.URL.Path, "/v1/jobs/"), "/")
	if id == "" {
		writeError(w, errNotFound("no such endpoint: "+r.URL.Path))
		return
	}
	switch {
	case sub == "" && r.Method == http.MethodGet:
		s.handleJobStatus(w, id)
	case sub == "" && r.Method == http.MethodDelete:
		s.handleJobCancel(w, id)
	case sub == "":
		writeError(w, errMethod("GET or DELETE required"))
	case sub == "result" && r.Method == http.MethodGet:
		s.handleJobResult(w, r, id)
	case sub == "events" && r.Method == http.MethodGet:
		s.handleJobEvents(w, r, id)
	case sub == "result" || sub == "events":
		writeError(w, errMethod("GET required"))
	default:
		writeError(w, errNotFound("no such endpoint: "+r.URL.Path))
	}
}

func (s *Server) handleJobStatus(w http.ResponseWriter, id string) {
	snap, err := s.jobMgr.Get(id)
	if err != nil {
		writeError(w, errNotFound("no such job: "+id))
		return
	}
	writeJSON(w, http.StatusOK, toJob(snap))
}

func (s *Server) handleJobCancel(w http.ResponseWriter, id string) {
	snap, err := s.jobMgr.Cancel(id, "canceled by client")
	if err != nil {
		writeError(w, errNotFound("no such job: "+id))
		return
	}
	writeJSON(w, http.StatusOK, toJob(snap))
}

func (s *Server) handleJobResult(w http.ResponseWriter, r *http.Request, id string) {
	if q := r.URL.Query().Get("wait"); q == "1" || q == "true" {
		if _, err := s.jobMgr.Wait(r.Context(), id); err != nil {
			if errors.Is(err, jobs.ErrNotFound) {
				writeError(w, errNotFound("no such job: "+id))
			} else { // client gone; best effort
				writeError(w, &apiError{status: statusClientClosedRequest, body: errorBody{"canceled", "client closed request"}})
			}
			return
		}
	}
	snap, body, err := s.jobMgr.Result(id)
	if err != nil {
		writeError(w, errNotFound("no such job: "+id))
		return
	}
	switch snap.State {
	case jobs.Done:
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(body)
	case jobs.Canceled:
		writeError(w, &apiError{status: http.StatusConflict, body: errorBody{"canceled", snap.Err.Error()}})
	case jobs.Failed:
		// Replay the stored envelope: the job's failure answers exactly
		// as the synchronous endpoint would have.
		var ae *apiError
		if errors.As(snap.Err, &ae) {
			writeError(w, ae)
			return
		}
		writeError(w, errInternal(snap.Err.Error()))
	default: // queued or running
		writeError(w, errUnavailable(fmt.Sprintf("job %s is %s; result not ready (poll, or retry with ?wait=1)", id, snap.State), 1))
	}
}

func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request, id string) {
	if q := r.URL.Query().Get("stream"); q == "1" || q == "true" {
		s.streamJobEvents(w, r, id)
		return
	}
	evs, err := s.jobMgr.Events(id)
	if err != nil {
		writeError(w, errNotFound("no such job: "+id))
		return
	}
	resp := jobEventsResponse{Events: make([]jobJSON, len(evs))}
	for i, snap := range evs {
		resp.Events[i] = toJob(snap)
	}
	writeJSON(w, http.StatusOK, resp)
}

// streamJobEvents follows a job live as NDJSON: the transition log so
// far, then one line per state or progress change until the job is
// terminal or the client goes away. Delivery is at-least-once — a
// change landing between the replay and the watch is re-sent, never
// lost, because the change channel was taken before the replay.
func (s *Server) streamJobEvents(w http.ResponseWriter, r *http.Request, id string) {
	snap, changed, err := s.jobMgr.Watch(id)
	if err != nil {
		writeError(w, errNotFound("no such job: "+id))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	evs, _ := s.jobMgr.Events(id)
	for _, e := range evs {
		if enc.Encode(toJob(e)) != nil {
			return
		}
	}
	if flusher != nil {
		flusher.Flush()
	}
	for !snap.State.Terminal() {
		select {
		case <-changed:
		case <-r.Context().Done():
			return
		}
		if snap, changed, err = s.jobMgr.Watch(id); err != nil {
			return // pruned mid-stream
		}
		if enc.Encode(toJob(snap)) != nil {
			return
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}

// handleMetrics serves GET /metrics in the Prometheus text exposition
// format: the job subsystem's families plus the result cache and HTTP
// request families.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	var mw jobs.MetricsWriter
	s.jobMgr.WriteMetrics(&mw)
	info := s.cache.Info()
	mw.Counter("nanobenchd_cache_hits_total", "Result-cache lookup hits.", info.Hits)
	mw.Counter("nanobenchd_cache_misses_total", "Result-cache lookup misses.", info.Misses)
	mw.Counter("nanobenchd_cache_evictions_total", "Result-cache entries evicted by the LRU bound.", info.Evictions)
	mw.Gauge("nanobenchd_cache_entries", "Result-cache resident entries.", float64(info.Entries))
	mw.Gauge("nanobenchd_inflight_requests", "Evaluation requests currently being served inline.", float64(s.inflight.Load()))
	mw.CounterVec("nanobenchd_requests_total", "Requests served, by endpoint.", "endpoint", map[string]uint64{
		"run":      s.reqRun.Load(),
		"runbatch": s.reqBatch.Load(),
		"sweep":    s.reqSweep.Load(),
		"jobs":     s.reqJobs.Load(),
	})
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	mw.WriteTo(w)
}
