package server

import (
	"context"
	"fmt"
	"sync"

	"nanobench"
)

// This file is the shared evaluation core behind the synchronous
// endpoints (/v1/run, /v1/runbatch, /v1/sweep) and the asynchronous job
// kinds layered on them: request validation and session grouping
// (prepareRun/prepareBatch/prepareSweep), and the ordered multi-session
// merge (mergeGroups). Keeping one code path means a job's rendered
// result is byte-identical to the synchronous response by construction.

// evalGroup is one session's share of a heterogeneous request: the
// configs routed to that session plus their global response indices, in
// first-appearance order.
type evalGroup struct {
	sess    *nanobench.Session
	indices []int
	cfgs    []nanobench.Config
}

// prepareRun validates a single-evaluation request and resolves its
// session.
func (s *Server) prepareRun(req runRequest) (*nanobench.Session, *apiError) {
	if len(req.Config.Code) == 0 && len(req.Config.CodeInit) == 0 {
		return nil, errInvalid("config: no benchmark code (give code/asm or code_init/asm_init)")
	}
	if e := validateCost(req.Config); e != nil {
		return nil, e
	}
	return s.session(req.CPU, req.Mode)
}

// prepareBatch validates a batch request and groups its jobs by
// session. Returns the groups and the total job count.
func (s *Server) prepareBatch(req batchRequest) ([]*evalGroup, int, *apiError) {
	if len(req.Jobs) == 0 {
		return nil, 0, errInvalid("empty batch: no jobs")
	}
	if len(req.Jobs) > s.opts.MaxBatch {
		return nil, 0, errInvalid(fmt.Sprintf("batch of %d jobs exceeds the limit of %d", len(req.Jobs), s.opts.MaxBatch))
	}
	groups, e := s.groupJobs(len(req.Jobs), "job", func(i int) (string, string, nanobench.Config) {
		return req.Jobs[i].CPU, req.Jobs[i].Mode, req.Jobs[i].Config
	})
	return groups, len(req.Jobs), e
}

// prepareSweep validates a sweep request, expands it into (CPU, mode,
// config) jobs — heterogeneous sweeps fan out across sessions, plain
// ones collapse to the default session — and groups them. Returns the
// groups and the expansion size.
func (s *Server) prepareSweep(req sweepRequest) ([]*evalGroup, int, *apiError) {
	// Resolve the request-level defaults first: a bad cpu/mode name fails
	// here whether or not the sweep overrides those dimensions.
	sess, e := s.session(req.CPU, req.Mode)
	if e != nil {
		return nil, 0, e
	}
	if err := req.Sweep.Err(); err != nil {
		return nil, 0, errInvalid(err.Error())
	}
	n := req.Sweep.Len()
	if n == 0 {
		return nil, 0, errInvalid("sweep expands to no configs (no benchmark code)")
	}
	if n > s.opts.MaxBatch {
		return nil, 0, errInvalid(fmt.Sprintf("sweep of %d configs exceeds the limit of %d", n, s.opts.MaxBatch))
	}
	// Expand here (exactly what StreamSweep would do) so every generated
	// config passes the cost gate before any simulation starts. The
	// request's own cpu/mode fields are the defaults for dimensions the
	// sweep leaves unset; an empty CPU stays empty for the session
	// registry to resolve.
	jobs, err := req.Sweep.Jobs(req.CPU, sess.Mode())
	if err != nil {
		return nil, 0, errInvalid(err.Error())
	}
	groups, e := s.groupJobs(len(jobs), "config", func(i int) (string, string, nanobench.Config) {
		return jobs[i].CPU, jobs[i].Mode.String(), jobs[i].Cfg
	})
	return groups, len(jobs), e
}

// groupJobs validates (cpu, mode, config) entries and groups them by
// session, preserving first-appearance order so the per-session
// sub-batches (and therefore the index-derived machine seeds) are
// deterministic. A bad entry fails the whole request up front — a typo
// in entry 7's CPU name is caught before any simulation starts — with
// the entry's position prefixed onto the message ("job 7: ...").
func (s *Server) groupJobs(n int, label string, entry func(i int) (cpu, mode string, cfg nanobench.Config)) ([]*evalGroup, *apiError) {
	bySession := make(map[*nanobench.Session]*evalGroup)
	var groups []*evalGroup
	for i := 0; i < n; i++ {
		cpu, mode, cfg := entry(i)
		e := validateCost(cfg)
		if e == nil {
			var sess *nanobench.Session
			if sess, e = s.session(cpu, mode); e == nil {
				g := bySession[sess]
				if g == nil {
					g = &evalGroup{sess: sess}
					bySession[sess] = g
					groups = append(groups, g)
				}
				g.indices = append(g.indices, i)
				g.cfgs = append(g.cfgs, cfg)
				continue
			}
		}
		e.body.Message = fmt.Sprintf("%s %d: %s", label, i, e.body.Message)
		return nil, e
	}
	return groups, nil
}

// mergeGroups drains every group's stream concurrently and delivers the
// items over one channel in global index order, each as soon as it and
// all its predecessors are ready. shards > 1 routes every group through
// the session's sharded merge path (StreamSharded) — the fan-out
// asynchronous sweep jobs use; either way the delivered bytes are
// identical, which the shard-equivalence test pins.
//
// On cancellation the sessions deliver the remaining items carrying the
// context error, so the sequencer always retires and the channel always
// closes; the channel is buffered to n, so draining never blocks.
func mergeGroups(ctx context.Context, groups []*evalGroup, n, shards int) <-chan nanobench.BatchItem {
	out := make(chan nanobench.BatchItem, n)
	if n == 0 {
		close(out)
		return out
	}
	var mu sync.Mutex
	cond := sync.NewCond(&mu)
	ready := make([]bool, n)
	items := make([]nanobench.BatchItem, n)
	for _, g := range groups {
		go func(g *evalGroup) {
			var ch <-chan nanobench.BatchItem
			if shards > 1 {
				ch = g.sess.StreamSharded(ctx, g.cfgs, shards)
			} else {
				ch = g.sess.Stream(ctx, g.cfgs)
			}
			for it := range ch {
				mu.Lock()
				idx := g.indices[it.Index]
				it.Index = idx
				items[idx] = it
				ready[idx] = true
				cond.Broadcast()
				mu.Unlock()
			}
		}(g)
	}
	go func() {
		defer close(out)
		for i := 0; i < n; i++ {
			mu.Lock()
			for !ready[i] {
				cond.Wait()
			}
			it := items[i]
			mu.Unlock()
			out <- it
		}
	}()
	return out
}
