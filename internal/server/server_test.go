package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"nanobench"
)

func newServer(t *testing.T, opts Options) *Server {
	t.Helper()
	srv, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx) // second Shutdown in a test is a harmless error
	})
	return srv
}

func newTestServer(t *testing.T, opts Options) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(newServer(t, opts))
	t.Cleanup(ts.Close)
	return ts
}

func post(t *testing.T, ts *httptest.Server, path, body string) (int, []byte) {
	t.Helper()
	resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func get(t *testing.T, ts *httptest.Server, path string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(ts.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// errorCode extracts the envelope's machine-readable code.
func errorCode(t *testing.T, body []byte) string {
	t.Helper()
	var envelope struct {
		Error struct {
			Code    string `json:"code"`
			Message string `json:"message"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &envelope); err != nil {
		t.Fatalf("response is not an error envelope: %v\n%s", err, body)
	}
	if envelope.Error.Code == "" || envelope.Error.Message == "" {
		t.Fatalf("error envelope missing code or message: %s", body)
	}
	return envelope.Error.Code
}

func TestHealthz(t *testing.T) {
	ts := newTestServer(t, Options{})
	status, body := get(t, ts, "/v1/healthz")
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var h struct {
		Status string   `json:"status"`
		CPUs   []string `json:"cpus"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || len(h.CPUs) < 10 {
		t.Errorf("healthz = %+v, want ok with the full CPU catalog", h)
	}
}

func TestRunMatchesSession(t *testing.T) {
	ts := newTestServer(t, Options{Seed: 42})
	status, body := post(t, ts, "/v1/run",
		`{"cpu": "Skylake", "mode": "kernel", "config": {"asm": "add rax, rbx", "n_measurements": 3}}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp struct {
		CPU    string          `json:"cpu"`
		Mode   string          `json:"mode"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.CPU != "Skylake" || resp.Mode != "kernel" {
		t.Errorf("echoed session = %s/%s", resp.CPU, resp.Mode)
	}

	// The served result must be byte-identical to what a local session
	// with the same options computes.
	sess, err := nanobench.Open(nanobench.WithCPU("Skylake"), nanobench.WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	want, err := sess.Run(context.Background(), nanobench.Config{
		Code:          nanobench.MustAsm("add rax, rbx"),
		NMeasurements: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	var compacted bytes.Buffer
	if err := json.Compact(&compacted, resp.Result); err != nil {
		t.Fatal(err)
	}
	if compacted.String() != string(wantJSON) {
		t.Errorf("served result differs from local session:\nserved: %s\nlocal:  %s", compacted.String(), wantJSON)
	}
}

func TestRequestValidation(t *testing.T) {
	ts := newTestServer(t, Options{MaxBatch: 4, MaxBodyBytes: 1 << 20})
	cases := []struct {
		name, method, path, body string
		wantStatus               int
		wantCode                 string
	}{
		{"malformed json", "POST", "/v1/run", `{"config":`, 400, "bad_request"},
		{"unknown request field", "POST", "/v1/run", `{"cfg": {}}`, 400, "bad_request"},
		{"unknown config field", "POST", "/v1/run", `{"config": {"unrol_count": 5}}`, 400, "bad_request"},
		{"trailing garbage", "POST", "/v1/run", `{"config": {"asm": "nop"}} extra`, 400, "bad_request"},
		{"empty config", "POST", "/v1/run", `{"config": {}}`, 422, "invalid_argument"},
		{"asm and code", "POST", "/v1/run", `{"config": {"asm": "nop", "code": "kA=="}}`, 400, "bad_request"},
		{"unknown cpu", "POST", "/v1/run", `{"cpu": "Pentium", "config": {"asm": "nop"}}`, 422, "invalid_argument"},
		{"unknown mode", "POST", "/v1/run", `{"mode": "hypervisor", "config": {"asm": "nop"}}`, 422, "invalid_argument"},
		{"bad asm", "POST", "/v1/run", `{"config": {"asm": "not an instruction"}}`, 400, "bad_request"},
		{"run wrong method", "GET", "/v1/run", ``, 405, "method_not_allowed"},
		{"empty batch", "POST", "/v1/runbatch", `{"jobs": []}`, 422, "invalid_argument"},
		{"batch job cpu", "POST", "/v1/runbatch", `{"jobs": [{"cpu": "Pentium", "config": {"asm": "nop"}}]}`, 422, "invalid_argument"},
		{"batch too large", "POST", "/v1/runbatch",
			`{"jobs": [` + strings.Repeat(`{"config": {"asm": "nop"}},`, 4) + `{"config": {"asm": "nop"}}]}`, 422, "invalid_argument"},
		{"run count cap", "POST", "/v1/run", `{"config": {"asm": "nop", "n_measurements": 200000}}`, 422, "invalid_argument"},
		{"unroll bomb", "POST", "/v1/run", `{"config": {"asm": "nop", "unroll_count": 2000000000}}`, 422, "evaluation_failed"},
		{"sweep run count cap", "POST", "/v1/sweep", `{"sweep": {"base": {"n_measurements": 200000}, "asm": ["nop"]}}`, 422, "invalid_argument"},
		{"empty sweep", "POST", "/v1/sweep", `{"sweep": {}}`, 422, "invalid_argument"},
		{"sweep bad asm", "POST", "/v1/sweep", `{"sweep": {"asm": ["not an instruction"]}}`, 422, "invalid_argument"},
		{"sweep too large", "POST", "/v1/sweep", `{"sweep": {"asm": ["nop"], "unrolls": [1,2,3,4,5]}}`, 422, "invalid_argument"},
		{"healthz wrong method", "POST", "/v1/healthz", ``, 405, "method_not_allowed"},
		{"stats wrong method", "POST", "/v1/stats", ``, 405, "method_not_allowed"},
		{"unknown path", "GET", "/v2/run", ``, 404, "not_found"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			body, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != tc.wantStatus {
				t.Errorf("status %d, want %d: %s", resp.StatusCode, tc.wantStatus, body)
			}
			if code := errorCode(t, body); code != tc.wantCode {
				t.Errorf("error code %q, want %q", code, tc.wantCode)
			}
		})
	}
}

func TestBodyTooLarge(t *testing.T) {
	ts := newTestServer(t, Options{MaxBodyBytes: 256})
	big := `{"config": {"asm": "nop", "events": ["` + strings.Repeat("A", 512) + ` X"]}}`
	status, body := post(t, ts, "/v1/run", big)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d: %s", status, body)
	}
	if code := errorCode(t, body); code != "request_too_large" {
		t.Errorf("error code %q", code)
	}
}

func TestRunBatchHeterogeneous(t *testing.T) {
	ts := newTestServer(t, Options{Seed: 7})
	status, body := post(t, ts, "/v1/runbatch", `{"jobs": [
		{"cpu": "Skylake", "config": {"asm": "add rax, rbx", "n_measurements": 3}},
		{"cpu": "Haswell", "mode": "user", "config": {"asm": "imul rax, rbx", "n_measurements": 3}},
		{"cpu": "Skylake", "config": {"asm": "add rax, rbx", "n_measurements": 3}}
	]}`)
	if status != http.StatusOK {
		t.Fatalf("status %d: %s", status, body)
	}
	var resp struct {
		Results []struct {
			Index  int             `json:"index"`
			Result json.RawMessage `json:"result"`
			Error  json.RawMessage `json:"error"`
		} `json:"results"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 3 {
		t.Fatalf("got %d results, want 3", len(resp.Results))
	}
	for i, r := range resp.Results {
		if r.Index != i {
			t.Errorf("result %d carries index %d", i, r.Index)
		}
		if r.Error != nil || r.Result == nil {
			t.Errorf("result %d: error=%s result=%s", i, r.Error, r.Result)
		}
	}
	for i := range resp.Results {
		var res nanobench.Result
		if err := json.Unmarshal(resp.Results[i].Result, &res); err != nil {
			t.Fatalf("result %d does not parse as a Result: %v", i, err)
		}
		if _, ok := res.Get("Core cycles"); !ok {
			t.Errorf("result %d has no Core cycles metric", i)
		}
	}
	// Jobs 0 and 2 are identical content in the same session group, so
	// the scheduler deduplicates them into one evaluation (seeded at the
	// lowest index) — the wire results must be byte-identical.
	if !bytes.Equal(resp.Results[0].Result, resp.Results[2].Result) {
		t.Errorf("identical jobs 0 and 2 were not served one deduplicated evaluation:\n%s\n%s",
			resp.Results[0].Result, resp.Results[2].Result)
	}
}

// sweepBody is a 2-benchmark × 2-unroll sweep request used by the
// stream/non-stream comparison tests.
const sweepBody = `{"sweep": {
	"base": {"n_measurements": 3},
	"asm": ["add rax, rbx", "imul rax, rbx"],
	"unrolls": [10, 100]
}}`

func TestSweepStreamMatchesNonStreamed(t *testing.T) {
	ts := newTestServer(t, Options{Seed: 42})

	status, streamed := post(t, ts, "/v1/sweep?stream=1", sweepBody)
	if status != http.StatusOK {
		t.Fatalf("stream status %d: %s", status, streamed)
	}
	status, plain := post(t, ts, "/v1/sweep", sweepBody)
	if status != http.StatusOK {
		t.Fatalf("non-stream status %d: %s", status, plain)
	}

	var resp struct {
		Count   int               `json:"count"`
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(plain, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != 4 || len(resp.Results) != 4 {
		t.Fatalf("count %d with %d results, want 4", resp.Count, len(resp.Results))
	}

	lines := bytes.Split(bytes.TrimSuffix(streamed, []byte("\n")), []byte("\n"))
	if len(lines) != 4 {
		t.Fatalf("stream delivered %d lines, want 4:\n%s", len(lines), streamed)
	}
	// Each NDJSON line must be byte-identical to the corresponding
	// non-streamed item after compaction (the enveloped form is pretty-
	// printed, the stream compact; same marshaller, same key order).
	for i, raw := range resp.Results {
		var compacted bytes.Buffer
		if err := json.Compact(&compacted, raw); err != nil {
			t.Fatal(err)
		}
		if compacted.String() != string(lines[i]) {
			t.Errorf("item %d differs:\nstream:     %s\nnon-stream: %s", i, lines[i], compacted.String())
		}
	}
}

func TestSweepClientDisconnectCancels(t *testing.T) {
	before := runtime.NumGoroutine()
	srv := newServer(t, Options{Parallelism: 1, Seed: 42})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Config 0 is light, the rest heavy, on one worker: the first NDJSON
	// line arrives while seconds of simulation remain, so cancelling
	// after reading it always lands mid-sweep.
	loops := "20"
	for i := 1; i < 8; i++ {
		loops += fmt.Sprintf(",%d", 1500+2*i)
	}
	body := `{"sweep": {"base": {"asm": "add rax, rbx"}, "loops": [` + loops + `]}}`

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "POST", ts.URL+"/v1/sweep?stream=1", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	// Progressive delivery: the first result is readable while the tail
	// of the sweep is still simulating.
	sc := bufio.NewScanner(resp.Body)
	if !sc.Scan() {
		t.Fatalf("no first line: %v", sc.Err())
	}
	var first struct {
		Index  int             `json:"index"`
		Result json.RawMessage `json:"result"`
	}
	if err := json.Unmarshal(sc.Bytes(), &first); err != nil {
		t.Fatalf("first line %q: %v", sc.Bytes(), err)
	}
	if first.Index != 0 || first.Result == nil {
		t.Fatalf("first line = %s", sc.Bytes())
	}

	// Disconnect. The server must cancel the underlying sweep: in-flight
	// drops to zero and the goroutine count returns to baseline far
	// sooner than the seconds the full sweep would need.
	cancel()
	deadline := time.Now().Add(10 * time.Second)
	for srv.InFlight() > 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := srv.InFlight(); n != 0 {
		t.Fatalf("%d requests still in flight after disconnect", n)
	}

	ts.Close()
	http.DefaultClient.CloseIdleConnections()
	// The job workers are part of the baseline-goroutine accounting too:
	// drain them before comparing against the pre-server count.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if now := runtime.NumGoroutine(); now > before {
		t.Errorf("goroutines leaked: %d before, %d after disconnect drain", before, now)
	}
}

func TestStatsCountersMove(t *testing.T) {
	ts := newTestServer(t, Options{Seed: 42, Parallelism: 2, CacheMaxEntries: 128})

	readStats := func() (s struct {
		Sessions []struct{ CPU, Mode string }
		Cache    struct {
			Hits, Misses, Evictions uint64
			Entries, MaxEntries     int
		}
		InFlight int64 `json:"inflight"`
		Requests struct{ Run, RunBatch, Sweep uint64 }
		Options  struct {
			Seed            int64
			Parallelism     int
			WarmUpCount     int `json:"warm_up_count"`
			CacheMaxEntries int `json:"cache_max_entries"`
		}
	}) {
		t.Helper()
		status, body := get(t, ts, "/v1/stats")
		if status != http.StatusOK {
			t.Fatalf("stats status %d: %s", status, body)
		}
		if err := json.Unmarshal(body, &s); err != nil {
			t.Fatal(err)
		}
		return s
	}

	// A fresh server has already opened (only) the default session —
	// New validates the session options through it.
	s0 := readStats()
	if len(s0.Sessions) != 1 || s0.Cache.Misses != 0 || s0.Requests.Run != 0 {
		t.Errorf("fresh server stats: %+v", s0)
	}
	if s0.Options.Seed != 42 || s0.Options.Parallelism != 2 || s0.Options.CacheMaxEntries != 128 {
		t.Errorf("options not echoed: %+v", s0.Options)
	}

	runBody := `{"config": {"asm": "add rax, rbx", "n_measurements": 3}}`
	if status, body := post(t, ts, "/v1/run", runBody); status != 200 {
		t.Fatalf("run status %d: %s", status, body)
	}
	s1 := readStats()
	if s1.Requests.Run != 1 || s1.Cache.Misses != 1 || s1.Cache.Entries != 1 || s1.Cache.Hits != 0 {
		t.Errorf("after first run: %+v", s1)
	}
	if len(s1.Sessions) != 1 || s1.Sessions[0].CPU != "Skylake" || s1.Sessions[0].Mode != "kernel" {
		t.Errorf("sessions after first run: %+v", s1.Sessions)
	}

	// The identical request is a cache hit and must not re-simulate.
	if status, body := post(t, ts, "/v1/run", runBody); status != 200 {
		t.Fatalf("second run status %d: %s", status, body)
	}
	s2 := readStats()
	if s2.Requests.Run != 2 || s2.Cache.Hits != 1 || s2.Cache.Entries != 1 {
		t.Errorf("after cached run: %+v", s2)
	}
	if s2.InFlight != 0 {
		t.Errorf("inflight = %d at rest", s2.InFlight)
	}
}
