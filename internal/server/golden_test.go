package server

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"regexp"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"nanobench/internal/sim/machine"
)

var updateGolden = flag.Bool("update", false,
	"rewrite the response examples in docs/API.md from live server output")

const docPath = "../../docs/API.md"

// goldenOptions is the server configuration the documented examples were
// produced under; docs/API.md states it next to the examples.
var goldenOptions = Options{
	Seed:            42,
	Parallelism:     4,
	WarmUp:          0,
	CacheMaxEntries: 1024,
}

// goldenMarker precedes a fenced code block whose exact content the
// golden test owns: <!-- golden:name -->
var goldenMarker = regexp.MustCompile(`^<!-- golden:([a-z0-9-]+) -->$`)

// docBlock is one golden-marked fenced block: the content between the
// fences and its line span (for -update rewriting).
type docBlock struct {
	content    string
	start, end int // lines [start, end) between the fences
}

// parseDoc extracts every golden-marked block of the API doc.
func parseDoc(t *testing.T, lines []string) map[string]*docBlock {
	t.Helper()
	blocks := make(map[string]*docBlock)
	for i := 0; i < len(lines); i++ {
		m := goldenMarker.FindStringSubmatch(lines[i])
		if m == nil {
			continue
		}
		name := m[1]
		open := i + 1
		for open < len(lines) && strings.TrimSpace(lines[open]) == "" {
			open++
		}
		if open >= len(lines) || !strings.HasPrefix(lines[open], "```") {
			t.Fatalf("%s: golden marker %q (line %d) is not followed by a fenced code block", docPath, name, i+1)
		}
		closing := open + 1
		for closing < len(lines) && !strings.HasPrefix(lines[closing], "```") {
			closing++
		}
		if closing >= len(lines) {
			t.Fatalf("%s: golden block %q (line %d) has no closing fence", docPath, name, open+1)
		}
		if _, dup := blocks[name]; dup {
			t.Fatalf("%s: duplicate golden block %q", docPath, name)
		}
		content := ""
		if closing > open+1 {
			content = strings.Join(lines[open+1:closing], "\n") + "\n"
		}
		blocks[name] = &docBlock{content: content, start: open + 1, end: closing}
		i = closing
	}
	return blocks
}

// TestAPIDocGolden drives the documented request examples against a live
// server configured exactly as docs/API.md states and asserts every
// documented response byte-for-byte. Run with -update to regenerate the
// response blocks after an intentional wire-format change.
func TestAPIDocGolden(t *testing.T) {
	raw, err := os.ReadFile(docPath)
	if err != nil {
		t.Fatalf("the API doc must exist and carry the golden examples: %v", err)
	}
	lines := strings.Split(string(raw), "\n")
	blocks := parseDoc(t, lines)

	// The documented job timestamps and latency histograms must be
	// reproducible, so the golden server runs on a deterministic clock:
	// every reading advances one millisecond.
	opts := goldenOptions
	var clock atomic.Int64
	opts.now = func() int64 { return clock.Add(int64(time.Millisecond)) }
	srv, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// The scenario runs in documented order — the final /v1/stats
	// counters reflect exactly the requests above it. Steps with waitJob
	// quiesce first: the named job must be terminal before the request
	// fires, so its record (and the metrics derived from it) is stable.
	steps := []struct {
		method, path string
		reqBlock     string // "" for GET
		respBlock    string
		wantStatus   int
		waitJob      string
	}{
		{"GET", "/v1/healthz", "", "healthz-response", 200, ""},
		{"POST", "/v1/run", "run-request", "run-response", 200, ""},
		{"POST", "/v1/run", "drop-samples-request", "drop-samples-response", 200, ""},
		{"POST", "/v1/runbatch", "runbatch-request", "runbatch-response", 200, ""},
		{"POST", "/v1/sweep", "sweep-request", "sweep-response", 200, ""},
		{"POST", "/v1/sweep?stream=1", "sweep-request", "sweep-stream-response", 200, ""},
		{"POST", "/v1/jobs", "jobs-submit-request", "jobs-submit-response", 202, ""},
		{"GET", "/v1/jobs/j000001", "", "jobs-status-response", 200, "j000001"},
		// A finished job's result is byte-for-byte the synchronous
		// response — asserted by replaying the /v1/sweep example block.
		{"GET", "/v1/jobs/j000001/result", "", "sweep-response", 200, ""},
		{"GET", "/v1/jobs/j000001/events", "", "jobs-events-response", 200, ""},
		{"POST", "/v1/jobs", "campaign-submit-request", "campaign-submit-response", 202, ""},
		{"GET", "/v1/jobs/j000002/result", "", "campaign-result-response", 200, "j000002"},
		{"POST", "/v1/run", "error-request", "error-response", 422, ""},
		{"GET", "/v1/stats", "", "stats-response", 200, ""},
		{"GET", "/metrics", "", "metrics-response", 200, ""},
	}

	updates := make(map[string]string)
	for _, step := range steps {
		if step.waitJob != "" {
			if _, err := srv.jobMgr.Wait(context.Background(), step.waitJob); err != nil {
				t.Fatalf("waiting for job %s: %v", step.waitJob, err)
			}
		}
		var body string
		if step.reqBlock != "" {
			b, ok := blocks[step.reqBlock]
			if !ok {
				t.Fatalf("%s: missing request block %q", docPath, step.reqBlock)
			}
			body = b.content
		}
		req, err := http.NewRequest(step.method, ts.URL+step.path, strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := readAll(resp)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != step.wantStatus {
			t.Fatalf("%s %s: status %d, want %d\n%s", step.method, step.path, resp.StatusCode, step.wantStatus, got)
		}
		if *updateGolden {
			// Two steps may share a block (the job result replays the
			// sweep example) — they must agree even while regenerating.
			if prev, ok := updates[step.respBlock]; ok && prev != got {
				t.Fatalf("%s %s: block %q regenerated with different content than an earlier step", step.method, step.path, step.respBlock)
			}
			updates[step.respBlock] = got
			continue
		}
		b, ok := blocks[step.respBlock]
		if !ok {
			t.Fatalf("%s: missing response block %q (run with -update to generate)", docPath, step.respBlock)
		}
		if got != b.content {
			t.Errorf("%s %s: response differs from the documented %q example (run with -update after intentional wire changes)\n--- documented\n%s--- served\n%s",
				step.method, step.path, step.respBlock, b.content, got)
		}
	}

	if *updateGolden {
		rewriteDoc(t, lines, blocks, updates)
	}
}

// TestSweepGoldenTraceMode replays the documented POST /v1/sweep example
// against a fresh server and asserts the response byte-for-byte. The
// server's machines run the default execution engine — asserted here to
// be the trace tier — so the documented example pins trace-mode
// execution end-to-end through the wire format: a trace-engine
// divergence of any counter value or cycle count fails this test before
// it could reach a client.
func TestSweepGoldenTraceMode(t *testing.T) {
	if e := new(machine.Machine).Engine(); e != machine.EngineTrace {
		t.Fatalf("default engine = %v, want trace (the documented examples pin trace-mode output)", e)
	}
	raw, err := os.ReadFile(docPath)
	if err != nil {
		t.Fatal(err)
	}
	blocks := parseDoc(t, strings.Split(string(raw), "\n"))
	reqB, okReq := blocks["sweep-request"]
	respB, okResp := blocks["sweep-response"]
	if !okReq || !okResp {
		t.Fatalf("%s: missing sweep-request/sweep-response golden blocks", docPath)
	}
	opts := goldenOptions
	var clock atomic.Int64
	opts.now = func() int64 { return clock.Add(int64(time.Millisecond)) }
	srv, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/sweep", "application/json", strings.NewReader(reqB.content))
	if err != nil {
		t.Fatal(err)
	}
	got, err := readAll(resp)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("status %d\n%s", resp.StatusCode, got)
	}
	if got != respB.content {
		t.Errorf("trace-mode sweep differs from the documented example\n--- documented\n%s--- served\n%s", respB.content, got)
	}
}

func readAll(resp *http.Response) (string, error) {
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return string(data), err
}

// rewriteDoc splices the freshly served responses into their blocks and
// writes the doc back, bottom-up so earlier line spans stay valid.
func rewriteDoc(t *testing.T, lines []string, blocks map[string]*docBlock, updates map[string]string) {
	t.Helper()
	type span struct {
		name       string
		start, end int
	}
	var spans []span
	for name := range updates {
		b, ok := blocks[name]
		if !ok {
			t.Fatalf("%s: no block %q to update — add the marker and an empty fenced block first", docPath, name)
		}
		spans = append(spans, span{name, b.start, b.end})
	}
	for i := range spans {
		for j := i + 1; j < len(spans); j++ {
			if spans[j].start > spans[i].start {
				spans[i], spans[j] = spans[j], spans[i]
			}
		}
	}
	for _, s := range spans {
		fresh := strings.Split(strings.TrimSuffix(updates[s.name], "\n"), "\n")
		lines = append(lines[:s.start], append(fresh, lines[s.end:]...)...)
	}
	if err := os.WriteFile(docPath, []byte(strings.Join(lines, "\n")), 0o644); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("rewrote %d golden blocks in %s\n", len(updates), docPath)
}
