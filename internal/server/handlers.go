package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync"

	"nanobench"
)

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, errMethod("POST required"))
		return
	}
	s.reqRun.Add(1)
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	var req runRequest
	if e := decodeJSON(r, &req); e != nil {
		writeError(w, e)
		return
	}
	if len(req.Config.Code) == 0 && len(req.Config.CodeInit) == 0 {
		writeError(w, errInvalid("config: no benchmark code (give code/asm or code_init/asm_init)"))
		return
	}
	if e := validateCost(req.Config); e != nil {
		writeError(w, e)
		return
	}
	sess, e := s.session(req.CPU, req.Mode)
	if e != nil {
		writeError(w, e)
		return
	}
	res, err := sess.Run(r.Context(), req.Config)
	if err != nil {
		writeError(w, runError(err))
		return
	}
	writeJSON(w, http.StatusOK, runResponse{
		CPU:    sess.CPUName(),
		Mode:   sess.Mode().String(),
		Result: res,
	})
}

// MaxMeasurements caps warm-up plus timed runs per config. The runner
// itself bounds code size (unroll × benchmark bytes must fit the code
// area), but run counts are unbounded there — legitimate for a local
// CLI, a worker-pinning lever for an untrusted request.
const MaxMeasurements = 100000

// validateCost rejects configs whose declared cost no benchmark needs:
// a run-count gate here, the code-size gate in the runner's validation.
func validateCost(cfg nanobench.Config) *apiError {
	warm := cfg.WarmUpCount
	if warm < 0 {
		warm = 0 // NoWarmUp
	}
	// Individual bounds first so the sum below cannot overflow.
	if cfg.NMeasurements > MaxMeasurements || warm > MaxMeasurements ||
		cfg.NMeasurements+warm > MaxMeasurements {
		return errInvalid(fmt.Sprintf("config: %d measurement + %d warm-up runs exceed the limit of %d",
			cfg.NMeasurements, warm, MaxMeasurements))
	}
	return nil
}

// runError maps a single evaluation's failure to the envelope: client
// cancellations get the non-standard 499 (best effort — the client is
// usually gone), everything else is an unprocessable evaluation.
func runError(err error) *apiError {
	body := itemError(err)
	status := http.StatusUnprocessableEntity
	if errors.Is(err, context.Canceled) {
		status = statusClientClosedRequest
	}
	return &apiError{status, *body}
}

func (s *Server) handleRunBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, errMethod("POST required"))
		return
	}
	s.reqBatch.Add(1)
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	var req batchRequest
	if e := decodeJSON(r, &req); e != nil {
		writeError(w, e)
		return
	}
	if len(req.Jobs) == 0 {
		writeError(w, errInvalid("empty batch: no jobs"))
		return
	}
	if len(req.Jobs) > s.opts.MaxBatch {
		writeError(w, errInvalid(fmt.Sprintf("batch of %d jobs exceeds the limit of %d", len(req.Jobs), s.opts.MaxBatch)))
		return
	}

	// Validate every job up front — a typo in job 7's CPU name fails the
	// request before any simulation starts — and group the jobs by
	// session, preserving first-appearance order so the per-session
	// sub-batches (and therefore the index-derived machine seeds) are
	// deterministic.
	type group struct {
		sess    *nanobench.Session
		indices []int
		cfgs    []nanobench.Config
	}
	bySession := make(map[*nanobench.Session]*group)
	var groups []*group
	for i, job := range req.Jobs {
		e := validateCost(job.Config)
		if e == nil {
			var sess *nanobench.Session
			if sess, e = s.session(job.CPU, job.Mode); e == nil {
				g := bySession[sess]
				if g == nil {
					g = &group{sess: sess}
					bySession[sess] = g
					groups = append(groups, g)
				}
				g.indices = append(g.indices, i)
				g.cfgs = append(g.cfgs, job.Config)
				continue
			}
		}
		e.body.Message = fmt.Sprintf("job %d: %s", i, e.body.Message)
		writeError(w, e)
		return
	}

	// Drain every group's stream concurrently; each goroutine writes
	// only its own group's (disjoint) response slots.
	items := make([]itemJSON, len(req.Jobs))
	var wg sync.WaitGroup
	for _, g := range groups {
		wg.Add(1)
		go func(g *group) {
			defer wg.Done()
			for it := range g.sess.Stream(r.Context(), g.cfgs) {
				items[g.indices[it.Index]] = toItem(g.indices[it.Index], it)
			}
		}(g)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, batchResponse{Results: items})
}

// toItem converts a delivered batch item to its wire form under its
// response index.
func toItem(index int, it nanobench.BatchItem) itemJSON {
	out := itemJSON{Index: index}
	if it.Err != nil {
		out.Error = itemError(it.Err)
	} else {
		out.Result = it.Result
	}
	return out
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, errMethod("POST required"))
		return
	}
	s.reqSweep.Add(1)
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	var req sweepRequest
	if e := decodeJSON(r, &req); e != nil {
		writeError(w, e)
		return
	}
	sess, e := s.session(req.CPU, req.Mode)
	if e != nil {
		writeError(w, e)
		return
	}
	if err := req.Sweep.Err(); err != nil {
		writeError(w, errInvalid(err.Error()))
		return
	}
	n := req.Sweep.Len()
	if n == 0 {
		writeError(w, errInvalid("sweep expands to no configs (no benchmark code)"))
		return
	}
	if n > s.opts.MaxBatch {
		writeError(w, errInvalid(fmt.Sprintf("sweep of %d configs exceeds the limit of %d", n, s.opts.MaxBatch)))
		return
	}
	// Expand here (exactly what StreamSweep would do) so every generated
	// config passes the cost gate before any simulation starts.
	cfgs, err := req.Sweep.Configs()
	if err != nil {
		writeError(w, errInvalid(err.Error()))
		return
	}
	for i, cfg := range cfgs {
		if e := validateCost(cfg); e != nil {
			e.body.Message = fmt.Sprintf("config %d: %s", i, e.body.Message)
			writeError(w, e)
			return
		}
	}
	items := sess.Stream(r.Context(), cfgs)

	if q := r.URL.Query().Get("stream"); q == "1" || q == "true" {
		s.streamItems(w, items)
		return
	}

	resp := sweepResponse{Count: n, Results: make([]itemJSON, 0, n)}
	for it := range items {
		resp.Results = append(resp.Results, toItem(it.Index, it))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, errMethod("GET required"))
		return
	}
	writeJSON(w, http.StatusOK, healthzResponse{Status: "ok", CPUs: cpuCatalog()})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, errMethod("GET required"))
		return
	}
	keys := s.sessionKeys()
	sessions := make([]sessionStat, len(keys))
	for i, k := range keys {
		sessions[i] = sessionStat{CPU: k.cpu, Mode: k.mode.String()}
	}
	writeJSON(w, http.StatusOK, statsResponse{
		Sessions: sessions,
		Cache:    s.cache.Info(),
		InFlight: s.inflight.Load(),
		Requests: requestStats{
			Run:      s.reqRun.Load(),
			RunBatch: s.reqBatch.Load(),
			Sweep:    s.reqSweep.Load(),
		},
		Options: optionsStat{
			Seed:            s.opts.Seed,
			Parallelism:     s.opts.Parallelism,
			WarmUpCount:     s.opts.WarmUp,
			CacheMaxEntries: s.opts.CacheMaxEntries,
		},
	})
}
