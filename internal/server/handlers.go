package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"

	"nanobench"
)

// handler wraps an endpoint with the shared request plumbing: the
// method gate (anything else gets the method_not_allowed envelope), the
// per-endpoint request counter, and — for endpoints that evaluate
// inline — the in-flight gauge.
func (s *Server) handler(method string, counter *atomic.Uint64, evaluates bool, fn http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if r.Method != method {
			writeError(w, errMethod(method+" required"))
			return
		}
		if counter != nil {
			counter.Add(1)
		}
		if evaluates {
			s.inflight.Add(1)
			defer s.inflight.Add(-1)
		}
		fn(w, r)
	}
}

func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	var req runRequest
	if e := decodeJSON(r, &req); e != nil {
		writeError(w, e)
		return
	}
	sess, e := s.prepareRun(req)
	if e != nil {
		writeError(w, e)
		return
	}
	res, err := sess.Run(r.Context(), req.Config)
	if err != nil {
		writeError(w, runError(err))
		return
	}
	writeJSON(w, http.StatusOK, runResponse{
		CPU:    sess.CPUName(),
		Mode:   sess.Mode().String(),
		Result: res,
	})
}

// MaxMeasurements caps warm-up plus timed runs per config. The runner
// itself bounds code size (unroll × benchmark bytes must fit the code
// area), but run counts are unbounded there — legitimate for a local
// CLI, a worker-pinning lever for an untrusted request.
const MaxMeasurements = 100000

// validateCost rejects configs whose declared cost no benchmark needs:
// a run-count gate here, the code-size gate in the runner's validation.
func validateCost(cfg nanobench.Config) *apiError {
	warm := cfg.WarmUpCount
	if warm < 0 {
		warm = 0 // NoWarmUp
	}
	// Individual bounds first so the sum below cannot overflow.
	if cfg.NMeasurements > MaxMeasurements || warm > MaxMeasurements ||
		cfg.NMeasurements+warm > MaxMeasurements {
		return errInvalid(fmt.Sprintf("config: %d measurement + %d warm-up runs exceed the limit of %d",
			cfg.NMeasurements, warm, MaxMeasurements))
	}
	return nil
}

// runError maps a single evaluation's failure to the envelope: client
// cancellations get the non-standard 499 (best effort — the client is
// usually gone), everything else is an unprocessable evaluation.
func runError(err error) *apiError {
	body := itemError(err)
	status := http.StatusUnprocessableEntity
	if errors.Is(err, context.Canceled) {
		status = statusClientClosedRequest
	}
	return &apiError{status: status, body: *body}
}

func (s *Server) handleRunBatch(w http.ResponseWriter, r *http.Request) {
	var req batchRequest
	if e := decodeJSON(r, &req); e != nil {
		writeError(w, e)
		return
	}
	groups, n, e := s.prepareBatch(req)
	if e != nil {
		writeError(w, e)
		return
	}
	resp := batchResponse{Results: make([]itemJSON, 0, n)}
	for it := range mergeGroups(r.Context(), groups, n, 1) {
		resp.Results = append(resp.Results, toItem(it.Index, it))
	}
	writeJSON(w, http.StatusOK, resp)
}

// toItem converts a delivered batch item to its wire form under its
// response index.
func toItem(index int, it nanobench.BatchItem) itemJSON {
	out := itemJSON{Index: index}
	if it.Err != nil {
		out.Error = itemError(it.Err)
	} else {
		out.Result = it.Result
	}
	return out
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	var req sweepRequest
	if e := decodeJSON(r, &req); e != nil {
		writeError(w, e)
		return
	}
	groups, n, e := s.prepareSweep(req)
	if e != nil {
		writeError(w, e)
		return
	}
	items := mergeGroups(r.Context(), groups, n, 1)

	if q := r.URL.Query().Get("stream"); q == "1" || q == "true" {
		s.streamItems(w, items)
		return
	}

	resp := sweepResponse{Count: n, Results: make([]itemJSON, 0, n)}
	for it := range items {
		resp.Results = append(resp.Results, toItem(it.Index, it))
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, healthzResponse{Status: "ok", CPUs: cpuCatalog()})
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	keys := s.sessionKeys()
	sessions := make([]sessionStat, len(keys))
	for i, k := range keys {
		sessions[i] = sessionStat{CPU: k.cpu, Mode: k.mode.String()}
	}
	writeJSON(w, http.StatusOK, statsResponse{
		Sessions: sessions,
		Cache:    s.cache.Info(),
		InFlight: s.inflight.Load(),
		Jobs:     s.jobMgr.Stats(),
		Requests: requestStats{
			Run:      s.reqRun.Load(),
			RunBatch: s.reqBatch.Load(),
			Sweep:    s.reqSweep.Load(),
			Jobs:     s.reqJobs.Load(),
		},
		Options: optionsStat{
			Seed:            s.opts.Seed,
			Parallelism:     s.opts.Parallelism,
			WarmUpCount:     s.opts.WarmUp,
			CacheMaxEntries: s.opts.CacheMaxEntries,
		},
	})
}
