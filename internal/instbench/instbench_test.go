package instbench

import (
	"math"
	"testing"

	"nanobench/internal/nano"
	"nanobench/internal/sim/machine"
	"nanobench/internal/uarch"
	"nanobench/internal/x86"
)

func newRunner(t *testing.T) *nano.Runner {
	t.Helper()
	cpu, err := uarch.ByName("Skylake")
	if err != nil {
		t.Fatal(err)
	}
	m, err := cpu.NewMachine(21)
	if err != nil {
		t.Fatal(err)
	}
	r, err := nano.NewRunner(m, machine.Kernel)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func measure(t *testing.T, r *nano.Runner, op x86.Op, form Form) Measurement {
	t.Helper()
	m, err := Measure(r, Variant{op, form})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestALULatencyAndPorts(t *testing.T) {
	r := newRunner(t)
	m := measure(t, r, x86.ADD, FormRR)
	if math.Abs(m.Latency-1.0) > 0.1 {
		t.Errorf("ADD latency = %.2f, want 1", m.Latency)
	}
	if math.Abs(m.Throughput-0.25) > 0.05 {
		t.Errorf("ADD throughput = %.2f, want 0.25", m.Throughput)
	}
	if m.PortSet() != x86.PortsALU {
		t.Errorf("ADD ports = %b, want %b", m.PortSet(), x86.PortsALU)
	}
	if math.Abs(m.Uops-1.0) > 0.1 {
		t.Errorf("ADD uops = %.2f, want 1", m.Uops)
	}
}

func TestIMULLatencyPort1(t *testing.T) {
	r := newRunner(t)
	m := measure(t, r, x86.IMUL, FormRR)
	if math.Abs(m.Latency-3.0) > 0.15 {
		t.Errorf("IMUL latency = %.2f, want 3", m.Latency)
	}
	if math.Abs(m.Throughput-1.0) > 0.1 {
		t.Errorf("IMUL throughput = %.2f, want 1 (single port)", m.Throughput)
	}
	if m.PortSet() != x86.P1 {
		t.Errorf("IMUL ports = %b, want port 1 only", m.PortSet())
	}
}

func TestDIVOccupancy(t *testing.T) {
	r := newRunner(t)
	m := measure(t, r, x86.DIV, FormR)
	// The divider blocks its port for ~21 cycles (spec occupancy); with
	// the implicit RAX/RDX chain the latency dominates.
	if m.Throughput < 15 {
		t.Errorf("DIV throughput = %.2f, want >= 15 (non-pipelined divider)", m.Throughput)
	}
	if m.PortSet()&x86.P0 == 0 {
		t.Errorf("DIV ports = %b, want port 0", m.PortSet())
	}
}

func TestLoadVariant(t *testing.T) {
	r := newRunner(t)
	m := measure(t, r, x86.MOV, FormLoad)
	if math.Abs(m.Latency-4.0) > 0.2 {
		t.Errorf("load latency = %.2f, want 4 (L1)", m.Latency)
	}
	if math.Abs(m.Throughput-0.5) > 0.1 {
		t.Errorf("load throughput = %.2f, want 0.5 (two load ports)", m.Throughput)
	}
	if m.PortSet() != x86.PortsLoad {
		t.Errorf("load ports = %b, want ports 2+3", m.PortSet())
	}
}

func TestStoreVariant(t *testing.T) {
	r := newRunner(t)
	m := measure(t, r, x86.MOV, FormMR)
	// One STA + one STD µop; STD has a single port: TP = 1.
	if math.Abs(m.Throughput-1.0) > 0.15 {
		t.Errorf("store throughput = %.2f, want 1", m.Throughput)
	}
	want := x86.PortsSTA | x86.PortsSTD
	if m.PortSet()&^want != 0 {
		t.Errorf("store ports = %b, want subset of %b", m.PortSet(), want)
	}
	if m.PortSet()&x86.PortsSTD == 0 {
		t.Errorf("store ports = %b missing the store-data port", m.PortSet())
	}
}

func TestVectorDivide(t *testing.T) {
	r := newRunner(t)
	m := measure(t, r, x86.DIVPD, FormXX)
	if math.Abs(m.Latency-14.0) > 0.5 {
		t.Errorf("DIVPD latency = %.2f, want 14", m.Latency)
	}
	if math.Abs(m.Throughput-4.0) > 0.5 {
		t.Errorf("DIVPD throughput = %.2f, want 4 (occupancy)", m.Throughput)
	}
	if m.PortSet() != x86.P0 {
		t.Errorf("DIVPD ports = %b, want port 0", m.PortSet())
	}
}

func TestMemoryRMWChain(t *testing.T) {
	r := newRunner(t)
	m := measure(t, r, x86.ADD, FormMR)
	// Memory RMW chains through store-to-load forwarding:
	// forward (5) + ALU (1) + store ≈ 7 cycles.
	if m.Latency < 5.5 || m.Latency > 9 {
		t.Errorf("ADD m64,r64 chain latency = %.2f, want ~7", m.Latency)
	}
}

// TestSweepAgainstGroundTruth runs the full variant sweep and validates
// every measurable latency and port set against the simulator's
// instruction table — the case-study-I closed loop.
func TestSweepAgainstGroundTruth(t *testing.T) {
	if testing.Short() {
		t.Skip("full variant sweep; run without -short")
	}
	r := newRunner(t)
	ms, err := MeasureAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) < 90 {
		t.Fatalf("only %d variants measured", len(ms))
	}
	for _, m := range ms {
		want := ExpectedLatency(m.Variant)
		if want >= 0 && m.Latency >= 0 {
			if math.Abs(m.Latency-want) > 0.25 {
				t.Errorf("%s: latency %.2f, ground truth %.0f", m.Variant.Name(), m.Latency, want)
			}
		}
		if m.Variant.Form == FormNone {
			continue
		}
		got := m.PortSet()
		exp := ExpectedPorts(m.Variant)
		if got&^exp != 0 {
			t.Errorf("%s: measured ports %b outside ground truth %b", m.Variant.Name(), got, exp)
		}
		if got == 0 && exp != 0 && m.Variant.Op != x86.NOP {
			t.Errorf("%s: no ports measured, expected %b", m.Variant.Name(), exp)
		}
	}
	table := FormatTable(ms)
	if len(table) == 0 {
		t.Fatal("empty table")
	}
	t.Logf("sweep of %d variants OK", len(ms))
}

func TestVariantNames(t *testing.T) {
	v := Variant{x86.ADD, FormRR}
	if v.Name() != "ADD (r64, r64)" {
		t.Errorf("Name() = %q", v.Name())
	}
	if (Variant{x86.NOP, FormNone}).Name() != "NOP" {
		t.Errorf("NOP name = %q", (Variant{x86.NOP, FormNone}).Name())
	}
}
