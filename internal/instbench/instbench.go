// Package instbench implements case study I (Section V): automatic
// generation and evaluation of microbenchmarks that measure the latency,
// throughput, and port usage of instruction variants, in the style of
// uops.info. The generated benchmarks run through nanoBench; the recovered
// characteristics can be compared against the simulator's ground-truth
// instruction table in internal/x86.
package instbench

import (
	"context"
	"fmt"
	"strings"

	"nanobench/internal/nano"
	"nanobench/internal/perfcfg"
	"nanobench/internal/sched"
	"nanobench/internal/sim/machine"
	"nanobench/internal/x86"
)

// Form describes the operand shape of an instruction variant.
type Form string

// Operand forms.
const (
	FormR    Form = "r64"       // unary register
	FormM    Form = "m64"       // unary memory
	FormRR   Form = "r64, r64"  // register, register
	FormRI   Form = "r64, i32"  // register, immediate
	FormRM   Form = "r64, m64"  // register, memory (load)
	FormMR   Form = "m64, r64"  // memory, register (store or RMW)
	FormRCL  Form = "r64, CL"   // shift by CL
	FormLoad Form = "load"      // pointer-chasing load
	FormXX   Form = "xmm, xmm"  // vector register pair
	FormXM   Form = "xmm, m128" // vector load operand
	FormXR   Form = "xmm, r64"  // MOVQ xmm, r64
	FormRX   Form = "r64, xmm"  // MOVQ r64, xmm
	FormNone Form = ""          // no operands
)

// Variant is one instruction variant to characterize.
type Variant struct {
	Op   x86.Op
	Form Form
}

// Name renders the variant like "ADD (r64, r64)".
func (v Variant) Name() string {
	if v.Form == FormNone {
		return v.Op.String()
	}
	return fmt.Sprintf("%s (%s)", v.Op, v.Form)
}

// Measurement is the characterization of one variant.
type Measurement struct {
	Variant Variant
	// Latency is the dependency-chain latency in cycles, or -1 when the
	// variant has no measurable self-chain (e.g. MOV r64, imm).
	Latency float64
	// Throughput is the reciprocal throughput (cycles per instruction
	// with independent instances).
	Throughput float64
	// Ports holds per-port µop fractions per instruction.
	Ports [x86.NumPorts]float64
	// Uops is the measured number of issued µops per instruction.
	Uops float64
}

// PortSet returns the mask of ports with a dispatch fraction above 2%.
func (m Measurement) PortSet() x86.PortMask {
	var mask x86.PortMask
	for p, f := range m.Ports {
		if f > 0.02 {
			mask |= 1 << p
		}
	}
	return mask
}

// PortString renders port usage like "1*p0156" (total µops across the
// used ports, in the uops.info style).
func (m Measurement) PortString() string {
	mask := m.PortSet()
	if mask == 0 {
		return "-"
	}
	total := 0.0
	ports := ""
	for p := 0; p < x86.NumPorts; p++ {
		if mask&(1<<p) != 0 {
			total += m.Ports[p]
			ports += fmt.Sprintf("%d", p)
		}
	}
	return fmt.Sprintf("%.2g*p%s", total, ports)
}

// Variants returns the instruction variants the sweep characterizes.
func Variants() []Variant {
	var out []Variant
	add := func(op x86.Op, forms ...Form) {
		for _, f := range forms {
			out = append(out, Variant{op, f})
		}
	}
	// Integer ALU. (TEST has no r64,m64 form in x86.)
	for _, op := range []x86.Op{x86.ADD, x86.ADC, x86.SUB, x86.SBB, x86.AND, x86.OR, x86.XOR, x86.CMP} {
		add(op, FormRR, FormRI, FormRM, FormMR)
	}
	add(x86.TEST, FormRR, FormRI, FormMR)
	for _, op := range []x86.Op{x86.INC, x86.DEC, x86.NEG, x86.NOT} {
		add(op, FormR, FormM)
	}
	for _, op := range []x86.Op{x86.SHL, x86.SHR, x86.SAR, x86.ROL, x86.ROR} {
		add(op, FormRI, FormRCL)
	}
	add(x86.IMUL, FormRR, FormRM)
	add(x86.MUL, FormR)
	add(x86.DIV, FormR)
	for _, op := range []x86.Op{x86.POPCNT, x86.BSF, x86.BSR} {
		add(op, FormRR, FormRM)
	}
	add(x86.BSWAP, FormR)
	add(x86.LEA, FormRM) // addresses, not loads; generator special-cases it
	// Moves.
	add(x86.MOV, FormRR, FormRI, FormLoad, FormMR)
	add(x86.XCHG, FormRR)
	add(x86.PUSH, FormR)
	add(x86.POP, FormR)
	add(x86.NOP, FormNone)
	// Vector.
	for _, op := range []x86.Op{x86.MOVAPS, x86.ADDPS, x86.MULPS, x86.DIVPS, x86.SQRTPS,
		x86.ADDPD, x86.MULPD, x86.DIVPD, x86.ADDSD, x86.MULSD, x86.DIVSD, x86.SQRTSD,
		x86.PADDQ, x86.PAND, x86.PXOR} {
		add(op, FormXX, FormXM)
	}
	add(x86.MOVQ, FormXR, FormRX)
	return out
}

// latencyAsm builds a self-dependent chain for the variant, or "" when the
// variant has no measurable latency chain.
func latencyAsm(v Variant) string {
	op := v.Op.String()
	switch v.Form {
	case FormR:
		return op + " rbx"
	case FormM:
		return op + " qword ptr [r14]" // chains through memory
	case FormRR:
		switch v.Op {
		case x86.CMP, x86.TEST:
			return "" // no destination write; no register chain
		case x86.BSF, x86.BSR:
			// BSF/BSR leave the destination unchanged for a zero source;
			// an OR keeps the chained value nonzero (its 1-cycle latency
			// is subtracted via chainOverhead).
			return "or rbx, 2\n" + op + " rbx, rbx"
		}
		return op + " rbx, rbx"
	case FormRI:
		if v.Op == x86.MOV || v.Op == x86.CMP || v.Op == x86.TEST {
			return "" // no input dependency on the destination
		}
		return op + " rbx, 1"
	case FormRCL:
		return op + " rbx, cl"
	case FormRM:
		if v.Op == x86.CMP || v.Op == x86.TEST {
			return ""
		}
		if v.Op == x86.LEA {
			// Chain through the address register.
			return "lea rbx, [rbx+8]"
		}
		return op + " rbx, [r14]" // chains through the destination register
	case FormMR:
		if v.Op == x86.MOV || v.Op == x86.CMP || v.Op == x86.TEST {
			return "" // plain store / no write: no chain
		}
		// Read-modify-write: chains through memory, i.e. the measured
		// latency includes the store-to-load forwarding round trip.
		return op + " qword ptr [r14], rbx"
	case FormLoad:
		return "mov r14, [r14]" // pointer chase
	case FormXX:
		return op + " xmm1, xmm1"
	case FormXR, FormRX:
		// Round trip through both MOVQ directions.
		return "movq xmm1, rbx\nmovq rbx, xmm1"
	case FormNone:
		return ""
	}
	return ""
}

// latencyChainLen is the number of chained instructions per iteration of
// the latency benchmark (round-trip forms chain two).
func latencyChainLen(v Variant) int {
	if v.Form == FormXR || v.Form == FormRX {
		return 2
	}
	return 1
}

// chainOverhead is the known latency of helper instructions inside the
// chain, subtracted from the measured per-iteration cycles.
func chainOverhead(v Variant) float64 {
	if v.Form == FormRR && (v.Op == x86.BSF || v.Op == x86.BSR) {
		return 1 // the OR feeding the chain
	}
	return 0
}

// throughputAsm builds independent instances (one unrolled block).
func throughputAsm(v Variant) string {
	op := v.Op.String()
	regs := []string{"r8", "r9", "r10", "r11"}
	xregs := []string{"xmm2", "xmm3", "xmm4", "xmm5"}
	var lines []string
	for i := 0; i < 4; i++ {
		r := regs[i]
		x := xregs[i]
		switch v.Form {
		case FormR:
			lines = append(lines, fmt.Sprintf("%s %s", op, r))
		case FormM:
			lines = append(lines, fmt.Sprintf("%s qword ptr [r14+%d]", op, 8*i))
		case FormRR:
			if v.Op == x86.XCHG {
				lines = append(lines, fmt.Sprintf("%s %s, %s", op, r, r))
				continue
			}
			lines = append(lines, fmt.Sprintf("%s %s, rbp", op, r))
		case FormRI:
			lines = append(lines, fmt.Sprintf("%s %s, 7", op, r))
		case FormRCL:
			lines = append(lines, fmt.Sprintf("%s %s, cl", op, r))
		case FormRM:
			lines = append(lines, fmt.Sprintf("%s %s, [r14+%d]", op, r, 8*i))
		case FormMR:
			lines = append(lines, fmt.Sprintf("%s [r14+%d], rbp", op, 8*i))
		case FormLoad:
			lines = append(lines, fmt.Sprintf("mov %s, [r14+%d]", r, 8*i))
		case FormXX:
			lines = append(lines, fmt.Sprintf("%s %s, xmm0", op, x))
		case FormXM:
			lines = append(lines, fmt.Sprintf("%s %s, [r14+%d]", op, x, 16*i))
		case FormXR:
			lines = append(lines, fmt.Sprintf("movq %s, rbp", x))
		case FormRX:
			lines = append(lines, fmt.Sprintf("movq %s, xmm0", r))
		case FormNone:
			lines = append(lines, op)
		}
	}
	return strings.Join(lines, "\n")
}

// initAsm prepares registers and memory for a variant (valid pointer in
// R14, a self-pointing chase location, sane operand values).
func initAsm(v Variant) string {
	init := `
		mov [r14], r14
		mov rbx, 1
		mov rbp, 1
		mov rcx, 1
		mov rax, 1
		mov rdx, 0
	`
	if v.Op == x86.DIV || v.Op == x86.MUL {
		// Dividend RDX:RAX = 0:8, every divisor register = 1: quotients
		// stay representable forever.
		init += "\nmov rax, 8\nmov rbx, 1\nmov r8, 1\nmov r9, 1\nmov r10, 1\nmov r11, 1\n"
	}
	return init
}

// portEvents builds the per-port counter configuration.
func portEvents() []perfcfg.EventSpec {
	var evs []perfcfg.EventSpec
	for p := 0; p < x86.NumPorts; p++ {
		evs = append(evs, perfcfg.EventSpec{
			Kind: perfcfg.Core, EvtSel: 0xA1, Umask: 1 << p,
			Name: fmt.Sprintf("PORT_%d", p),
		})
	}
	evs = append(evs, perfcfg.EventSpec{Kind: perfcfg.Core, EvtSel: 0x0E, Umask: 0x01, Name: "UOPS"})
	return evs
}

// LatencyConfig builds the nanoBench configuration measuring the
// variant's dependency-chain latency. ok is false when the variant has no
// measurable self-chain (e.g. MOV r64, imm).
func LatencyConfig(v Variant) (cfg nano.Config, ok bool, err error) {
	asm := latencyAsm(v)
	if asm == "" {
		return nano.Config{}, false, nil
	}
	code, err := nano.Asm(asm)
	if err != nil {
		return nano.Config{}, false, fmt.Errorf("instbench: %s latency: %w", v.Name(), err)
	}
	return nano.Config{
		Code:        code,
		CodeInit:    nano.MustAsm(initAsm(v)),
		UnrollCount: 50,
		WarmUpCount: 1,
		Aggregate:   nano.Min,
	}, true, nil
}

// ThroughputConfig builds the nanoBench configuration measuring the
// variant's reciprocal throughput and port usage with independent
// instances.
func ThroughputConfig(v Variant) (nano.Config, error) {
	code, err := nano.Asm(throughputAsm(v))
	if err != nil {
		return nano.Config{}, fmt.Errorf("instbench: %s throughput: %w", v.Name(), err)
	}
	return nano.Config{
		Code:        code,
		CodeInit:    nano.MustAsm(initAsm(v)),
		UnrollCount: 25, // ×4 instances = 100 instructions
		WarmUpCount: 1,
		Aggregate:   nano.Min,
		Events:      portEvents(),
	}, nil
}

// measurementFrom assembles a Measurement from the two evaluations' raw
// results (latRes may be nil for chainless variants).
func measurementFrom(v Variant, latRes, tpRes *nano.Result) Measurement {
	m := Measurement{Variant: v, Latency: -1}
	if latRes != nil {
		m.Latency = (latRes.MustGet("Core cycles") - chainOverhead(v)) / float64(latencyChainLen(v))
	}
	// Per-block values are per 4 instructions.
	m.Throughput = tpRes.MustGet("Core cycles") / 4
	m.Uops = tpRes.MustGet("UOPS") / 4
	for p := 0; p < x86.NumPorts; p++ {
		m.Ports[p] = tpRes.MustGet(fmt.Sprintf("PORT_%d", p)) / 4
	}
	return m
}

// Measure characterizes one variant on the runner's machine.
func Measure(r *nano.Runner, v Variant) (Measurement, error) {
	var latRes *nano.Result
	latCfg, hasLat, err := LatencyConfig(v)
	if err != nil {
		return Measurement{Variant: v, Latency: -1}, err
	}
	if hasLat {
		latRes, err = r.Run(latCfg)
		if err != nil {
			return Measurement{Variant: v, Latency: -1}, fmt.Errorf("instbench: %s latency: %w", v.Name(), err)
		}
	}
	tpCfg, err := ThroughputConfig(v)
	if err != nil {
		return Measurement{Variant: v, Latency: -1}, err
	}
	tpRes, err := r.Run(tpCfg)
	if err != nil {
		return Measurement{Variant: v, Latency: -1}, fmt.Errorf("instbench: %s throughput: %w", v.Name(), err)
	}
	return measurementFrom(v, latRes, tpRes), nil
}

// MeasureAll characterizes every variant serially on one shared machine.
func MeasureAll(r *nano.Runner) ([]Measurement, error) {
	var out []Measurement
	for _, v := range Variants() {
		meas, err := Measure(r, v)
		if err != nil {
			return out, err
		}
		out = append(out, meas)
	}
	return out, nil
}

// Sweep characterizes every variant by fanning the per-variant latency and
// throughput evaluations out through the batch scheduler, one fresh
// independently-seeded machine per evaluation. Results are deterministic
// for any worker count (see the sched package documentation).
func Sweep(cpuName string, mode machine.Mode, opts sched.Options) ([]Measurement, error) {
	return SweepVariants(cpuName, mode, Variants(), opts)
}

// SweepVariants is Sweep over a caller-chosen variant subset.
func SweepVariants(cpuName string, mode machine.Mode, variants []Variant, opts sched.Options) ([]Measurement, error) {
	return SweepVariantsContext(context.Background(), cpuName, mode, variants, opts)
}

// SweepVariantsContext is SweepVariants bounded by a context: cancelling
// it aborts the sweep between evaluations and returns the context's
// error (a long instruction-table characterization is the tool's most
// cancellation-worthy workload).
func SweepVariantsContext(ctx context.Context, cpuName string, mode machine.Mode, variants []Variant, opts sched.Options) ([]Measurement, error) {
	var jobs []sched.Job
	latIdx := make([]int, len(variants))
	tpIdx := make([]int, len(variants))
	for i, v := range variants {
		latCfg, hasLat, err := LatencyConfig(v)
		if err != nil {
			return nil, err
		}
		latIdx[i] = -1
		if hasLat {
			latIdx[i] = len(jobs)
			jobs = append(jobs, sched.Job{CPU: cpuName, Mode: mode, Cfg: latCfg})
		}
		tpCfg, err := ThroughputConfig(v)
		if err != nil {
			return nil, err
		}
		tpIdx[i] = len(jobs)
		jobs = append(jobs, sched.Job{CPU: cpuName, Mode: mode, Cfg: tpCfg})
	}
	results, err := sched.New(opts).RunContext(ctx, jobs)
	if err != nil {
		return nil, err
	}
	ms := make([]Measurement, len(variants))
	for i, v := range variants {
		var latRes *nano.Result
		if latIdx[i] >= 0 {
			latRes = results[latIdx[i]]
		}
		ms[i] = measurementFrom(v, latRes, results[tpIdx[i]])
	}
	return ms, nil
}

// Expected ground truth, derived from the simulator's instruction table.

// ExpectedLatency returns the ground-truth register-chain latency for
// variants with a register self-chain, or -1.
func ExpectedLatency(v Variant) float64 {
	spec := x86.Spec(v.Op)
	switch v.Form {
	case FormRR, FormRI, FormRCL, FormR:
		if latencyAsm(v) == "" {
			return -1
		}
		maxLat := 0
		for _, u := range spec.Uops {
			if u.Latency > maxLat {
				maxLat = u.Latency
			}
		}
		return float64(maxLat)
	case FormXX:
		maxLat := 0
		for _, u := range spec.Uops {
			if u.Latency > maxLat {
				maxLat = u.Latency
			}
		}
		return float64(maxLat)
	}
	return -1
}

// ExpectedPorts returns the ground-truth port mask of the variant's
// compute µops (plus load/store ports for memory forms).
func ExpectedPorts(v Variant) x86.PortMask {
	spec := x86.Spec(v.Op)
	var mask x86.PortMask
	for _, u := range spec.Uops {
		mask |= u.Ports
	}
	switch v.Form {
	case FormRM, FormXM, FormLoad:
		mask |= x86.PortsLoad
	case FormM:
		// Unary memory forms are read-modify-write.
		mask |= x86.PortsLoad | x86.PortsSTA | x86.PortsSTD
	case FormMR:
		switch v.Op {
		case x86.MOV:
			mask = x86.PortsSTA | x86.PortsSTD // plain store: no load, no compute
		case x86.CMP, x86.TEST:
			mask |= x86.PortsLoad // compare against memory: load only
		default:
			mask |= x86.PortsLoad | x86.PortsSTA | x86.PortsSTD
		}
	}
	if v.Op == x86.PUSH {
		mask |= x86.PortsSTA | x86.PortsSTD
	}
	if v.Op == x86.POP {
		mask |= x86.PortsLoad
	}
	return mask
}

// FormatTable renders measurements as an aligned text table.
func FormatTable(ms []Measurement) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-24s %8s %8s %6s  %s\n", "Variant", "Lat", "TP", "Uops", "Ports")
	for _, m := range ms {
		lat := "-"
		if m.Latency >= 0 {
			lat = fmt.Sprintf("%.2f", m.Latency)
		}
		fmt.Fprintf(&sb, "%-24s %8s %8.2f %6.2f  %s\n",
			m.Variant.Name(), lat, m.Throughput, m.Uops, m.PortString())
	}
	return sb.String()
}
