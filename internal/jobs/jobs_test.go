package jobs

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a deterministic Now: every reading advances 1ms.
func fakeClock() func() int64 {
	var c atomic.Int64
	return func() int64 { return c.Add(int64(time.Millisecond)) }
}

func shutdown(t *testing.T, m *Manager) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := m.Shutdown(ctx); err != nil && err.Error() != "jobs: already shut down" {
		t.Fatalf("shutdown: %v", err)
	}
}

func TestSubmitRunLifecycle(t *testing.T) {
	m := New(Options{Workers: 1, Now: fakeClock()})
	defer shutdown(t, m)

	snap, err := m.Submit("sweep", 2, func(ctx context.Context, p *Progress) ([]byte, error) {
		p.Step(false, false)
		p.Step(true, false)
		return []byte("body"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if snap.ID != "j000001" || snap.State != Queued || snap.Kind != "sweep" {
		t.Fatalf("submitted snapshot = %+v", snap)
	}
	if snap.SubmittedNs == 0 || snap.StartedNs != 0 || snap.FinishedNs != 0 {
		t.Fatalf("timestamps at submit: %+v", snap)
	}

	final, err := m.Wait(context.Background(), snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != Done || final.Err != nil {
		t.Fatalf("final = %+v", final)
	}
	if final.StartedNs <= final.SubmittedNs || final.FinishedNs <= final.StartedNs {
		t.Errorf("phase timestamps not ordered: %+v", final)
	}
	if final.Progress != (Counts{Total: 2, Completed: 2, Failed: 0, CacheHits: 1}) {
		t.Errorf("progress = %+v", final.Progress)
	}

	_, body, err := m.Result(snap.ID)
	if err != nil || string(body) != "body" {
		t.Errorf("result = %q, %v", body, err)
	}

	// The transition log is queued, running, done — O(1) per job.
	events, err := m.Events(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	states := make([]State, len(events))
	for i, e := range events {
		states[i] = e.State
	}
	if len(states) != 3 || states[0] != Queued || states[1] != Running || states[2] != Done {
		t.Errorf("transition log = %v", states)
	}
}

func TestFailedAndCanceledStates(t *testing.T) {
	m := New(Options{Workers: 1, Now: fakeClock()})
	defer shutdown(t, m)

	boom := errors.New("boom")
	snap, err := m.Submit("run", 1, func(ctx context.Context, p *Progress) ([]byte, error) {
		return nil, boom
	})
	if err != nil {
		t.Fatal(err)
	}
	final, err := m.Wait(context.Background(), snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != Failed || !errors.Is(final.Err, boom) {
		t.Errorf("failed job = %+v", final)
	}

	// A task that returns the context's error after Cancel lands canceled.
	started := make(chan struct{})
	snap, err = m.Submit("run", 1, func(ctx context.Context, p *Progress) ([]byte, error) {
		close(started)
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := m.Cancel(snap.ID, "test"); err != nil {
		t.Fatal(err)
	}
	final, err = m.Wait(context.Background(), snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != Canceled {
		t.Errorf("canceled job = %+v", final)
	}
}

func TestCancelQueuedNeverRuns(t *testing.T) {
	m := New(Options{Workers: 1, QueueSize: 4, Now: fakeClock()})
	defer shutdown(t, m)

	// Occupy the only worker so the next submission stays queued.
	gate := make(chan struct{})
	started := make(chan struct{})
	blocker, err := m.Submit("run", 1, func(ctx context.Context, p *Progress) ([]byte, error) {
		close(started)
		<-gate
		return []byte("ok"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started

	var ran atomic.Bool
	queued, err := m.Submit("run", 1, func(ctx context.Context, p *Progress) ([]byte, error) {
		ran.Store(true)
		return []byte("ok"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	snap, err := m.Cancel(queued.ID, "changed my mind")
	if err != nil {
		t.Fatal(err)
	}
	if snap.State != Canceled || snap.Err == nil {
		t.Fatalf("canceled-while-queued snapshot = %+v", snap)
	}

	close(gate)
	if _, err := m.Wait(context.Background(), blocker.ID); err != nil {
		t.Fatal(err)
	}
	// The worker drains the queue past the parked job without running it.
	if _, err := m.Wait(context.Background(), queued.ID); err != nil {
		t.Fatal(err)
	}
	if ran.Load() {
		t.Error("canceled-while-queued task ran anyway")
	}
	// Cancel is idempotent on terminal jobs.
	if again, err := m.Cancel(queued.ID, "again"); err != nil || again.State != Canceled {
		t.Errorf("second cancel = %+v, %v", again, err)
	}
}

func TestQueueOverflow(t *testing.T) {
	m := New(Options{Workers: 1, QueueSize: 1, Now: fakeClock()})
	defer shutdown(t, m)

	gate := make(chan struct{})
	defer close(gate)
	started := make(chan struct{})
	block := func(ctx context.Context, p *Progress) ([]byte, error) {
		select {
		case started <- struct{}{}:
		default:
		}
		<-gate
		return []byte("ok"), nil
	}
	// One running + one queued fills the system (queue bound 1).
	if _, err := m.Submit("run", 1, block); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := m.Submit("run", 1, block); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Submit("run", 1, block); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit error = %v, want ErrQueueFull", err)
	}
	if ra := m.RetryAfter(); ra < 1 || ra > 60 {
		t.Errorf("RetryAfter = %d, want within [1, 60]", ra)
	}
	if s := m.Stats(); s.Queued != 1 || s.Running != 1 || s.Capacity != 1 {
		t.Errorf("stats = %+v", s)
	}
}

func TestMaxWaitAdmitsWhenSlotFrees(t *testing.T) {
	m := New(Options{Workers: 1, QueueSize: 1, MaxWait: 5 * time.Second, Now: fakeClock()})
	defer shutdown(t, m)

	gate := make(chan struct{})
	started := make(chan struct{})
	if _, err := m.Submit("run", 1, func(ctx context.Context, p *Progress) ([]byte, error) {
		close(started)
		<-gate
		return []byte("ok"), nil
	}); err != nil {
		t.Fatal(err)
	}
	<-started
	if _, err := m.Submit("run", 1, func(ctx context.Context, p *Progress) ([]byte, error) {
		return []byte("ok"), nil
	}); err != nil {
		t.Fatal(err)
	}

	// The third submission finds the queue full but a slot frees within
	// MaxWait — the size+max-wait admission shape admits it.
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(gate)
	}()
	snap, err := m.Submit("run", 1, func(ctx context.Context, p *Progress) ([]byte, error) {
		return []byte("ok"), nil
	})
	if err != nil {
		t.Fatalf("submit within MaxWait = %v", err)
	}
	if _, err := m.Wait(context.Background(), snap.ID); err != nil {
		t.Fatal(err)
	}
}

func TestShutdownParksQueuedAndDrainsRunning(t *testing.T) {
	m := New(Options{Workers: 1, QueueSize: 4, Now: fakeClock()})

	gate := make(chan struct{})
	started := make(chan struct{})
	running, err := m.Submit("run", 1, func(ctx context.Context, p *Progress) ([]byte, error) {
		close(started)
		<-gate
		return []byte("ok"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	<-started
	var ran atomic.Bool
	queued, err := m.Submit("run", 1, func(ctx context.Context, p *Progress) ([]byte, error) {
		ran.Store(true)
		return []byte("ok"), nil
	})
	if err != nil {
		t.Fatal(err)
	}

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		done <- m.Shutdown(ctx)
	}()
	// Once the drain is observed, new work is rejected with ErrDraining.
	// Until then a submission may land in the queue (to be parked) or
	// bounce off the bound — both fine; only ErrDraining ends the loop.
	for {
		_, err := m.Submit("run", 1, func(ctx context.Context, p *Progress) ([]byte, error) { return nil, nil })
		if errors.Is(err, ErrDraining) {
			break
		}
		if err != nil && !errors.Is(err, ErrQueueFull) {
			t.Fatalf("submit during drain = %v", err)
		}
		time.Sleep(time.Millisecond)
	}

	close(gate)
	if err := <-done; err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	// The running job finished; the queued one was parked canceled and
	// never ran.
	if snap, _ := m.Get(running.ID); snap.State != Done {
		t.Errorf("running job ended %s, want done", snap.State)
	}
	snap, _ := m.Get(queued.ID)
	if snap.State != Canceled || ran.Load() {
		t.Errorf("queued job ended %s (ran=%v), want parked canceled", snap.State, ran.Load())
	}
	if err := m.Shutdown(context.Background()); err == nil || !strings.Contains(err.Error(), "already shut down") {
		t.Errorf("second shutdown = %v", err)
	}
}

func TestTTLPrunesFinishedRecords(t *testing.T) {
	// 1ms-per-reading clock and a 10ms TTL: after ~10 readings the first
	// job's record is expired and the next Submit prunes it.
	m := New(Options{Workers: 1, TTL: 10 * time.Millisecond, Now: fakeClock()})
	defer shutdown(t, m)

	first, err := m.Submit("run", 1, func(ctx context.Context, p *Progress) ([]byte, error) {
		return []byte("ok"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(context.Background(), first.ID); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 12; i++ {
		snap, err := m.Submit("run", 1, func(ctx context.Context, p *Progress) ([]byte, error) {
			return []byte("ok"), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := m.Wait(context.Background(), snap.ID); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Get(first.ID); !errors.Is(err, ErrNotFound) {
		t.Errorf("expired record lookup = %v, want ErrNotFound", err)
	}
	if _, err := m.Get("j999999"); !errors.Is(err, ErrNotFound) {
		t.Errorf("unknown id lookup = %v, want ErrNotFound", err)
	}
}

func TestWatchSignalsProgress(t *testing.T) {
	m := New(Options{Workers: 1, Now: fakeClock()})
	defer shutdown(t, m)

	step := make(chan struct{})
	snap, err := m.Submit("run", 2, func(ctx context.Context, p *Progress) ([]byte, error) {
		<-step
		p.Step(false, false)
		<-step
		p.Step(false, true)
		return []byte("ok"), nil
	})
	if err != nil {
		t.Fatal(err)
	}

	// Follow the job through Watch until terminal; every change closes
	// the previous channel.
	var last Snapshot
	for {
		cur, changed, err := m.Watch(snap.ID)
		if err != nil {
			t.Fatal(err)
		}
		last = cur
		if cur.State.Terminal() {
			break
		}
		select {
		case step <- struct{}{}:
		default:
		}
		select {
		case <-changed:
		case <-time.After(10 * time.Second):
			t.Fatalf("no change signal; stuck at %+v", cur)
		}
	}
	if last.State != Done || last.Progress.Completed != 2 || last.Progress.Failed != 1 {
		t.Errorf("final watch snapshot = %+v", last)
	}
}

func TestMetricsWriter(t *testing.T) {
	m := New(Options{Workers: 1, Now: fakeClock()})
	defer shutdown(t, m)

	snap, err := m.Submit("run", 1, func(ctx context.Context, p *Progress) ([]byte, error) {
		p.Step(false, false)
		return []byte("ok"), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Wait(context.Background(), snap.ID); err != nil {
		t.Fatal(err)
	}

	var w MetricsWriter
	m.WriteMetrics(&w)
	var sb strings.Builder
	if _, err := w.WriteTo(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"nanobenchd_jobs_submitted_total 1",
		`nanobenchd_jobs_finished_total{state="done"} 1`,
		"nanobenchd_job_queue_seconds_bucket",
		"nanobenchd_job_run_seconds_sum",
		"nanobenchd_jobs_queue_depth 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q:\n%s", want, out)
		}
	}
}
