// Package jobs is the asynchronous job subsystem behind nanobenchd's
// /v1/jobs surface: a bounded admission queue feeding a fixed worker
// pool, durable-in-memory job records with per-phase nanosecond
// timestamps, progress counters, a change-notification primitive the
// NDJSON event stream rides on, and Prometheus-format metrics.
//
// The manager is deliberately ignorant of HTTP and of benchmarking: a
// job is an opaque Task closure returning a rendered result body (the
// server hands it the exact bytes the synchronous endpoint would have
// written) or an error. What the manager owns is the lifecycle —
//
//	queued ──► running ──► done | failed | canceled
//	   └──────────────────────────► canceled   (canceled or parked while queued)
//
// — and the admission contract: Submit either enqueues within the
// configured bound (waiting up to MaxWait for a slot, the size+max-wait
// admission shape) or fails fast with ErrQueueFull so the HTTP layer can
// answer 429 with a Retry-After estimate instead of growing without
// bound. Records of finished jobs are retained for TTL and pruned
// lazily, so a crashed client can come back for its result without the
// map growing forever.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"
)

// State is a job's lifecycle state.
type State string

// The job lifecycle states.
const (
	Queued   State = "queued"
	Running  State = "running"
	Done     State = "done"
	Failed   State = "failed"
	Canceled State = "canceled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool { return s == Done || s == Failed || s == Canceled }

// Task evaluates one job. It runs on a worker goroutine under the job's
// context (canceled by Cancel and by Shutdown's deadline), reports
// per-item completion through the progress handle, and returns the
// rendered result body. A returned error marks the job failed — or
// canceled, when cancellation was requested or the error is the
// context's.
type Task func(ctx context.Context, p *Progress) ([]byte, error)

// Progress counts a job's per-item completion. It is safe for
// concurrent use from the task's worker goroutines.
type Progress struct {
	job       *Job
	total     int
	completed int
	failed    int
	cacheHits int
}

// Step records one completed item. failed marks an item that finished
// with a per-item error; cacheHit marks a result served from cache.
func (p *Progress) Step(cacheHit, failed bool) {
	m := p.job.m
	m.mu.Lock()
	p.completed++
	if failed {
		p.failed++
	}
	if cacheHit {
		p.cacheHits++
	}
	p.job.notifyLocked()
	m.mu.Unlock()
}

// Counts is a point-in-time copy of a job's progress counters.
type Counts struct {
	Total     int `json:"total"`
	Completed int `json:"completed"`
	Failed    int `json:"failed"`
	CacheHits int `json:"cache_hits"`
}

// Job is one submitted evaluation's durable-in-memory record. All
// mutable fields are guarded by the manager's mutex; read them through
// Snapshot.
type Job struct {
	m    *Manager
	id   string
	kind string
	task Task

	state    State
	err      error
	result   []byte
	progress *Progress

	// Per-phase timestamps (UnixNano; zero = phase not reached) — the
	// latency provenance of the job: queue wait is startedNs-submittedNs,
	// run time finishedNs-startedNs.
	submittedNs int64
	startedNs   int64
	finishedNs  int64

	// events is the append-only transition log (queued, running,
	// terminal) — deliberately O(1) per job, never per item; per-item
	// progress is counters plus the change broadcast.
	events []Snapshot

	cancelRequested bool
	cancel          context.CancelFunc
	changed         chan struct{} // closed and replaced on every mutation
}

// Snapshot is a point-in-time copy of a job's externally visible state.
type Snapshot struct {
	ID          string
	Kind        string
	State       State
	Err         error
	SubmittedNs int64
	StartedNs   int64
	FinishedNs  int64
	Progress    Counts
}

// snapshotLocked copies the job's visible state; callers hold m.mu.
func (j *Job) snapshotLocked() Snapshot {
	return Snapshot{
		ID:          j.id,
		Kind:        j.kind,
		State:       j.state,
		Err:         j.err,
		SubmittedNs: j.submittedNs,
		StartedNs:   j.startedNs,
		FinishedNs:  j.finishedNs,
		Progress: Counts{
			Total:     j.progress.total,
			Completed: j.progress.completed,
			Failed:    j.progress.failed,
			CacheHits: j.progress.cacheHits,
		},
	}
}

// notifyLocked wakes every watcher; callers hold m.mu.
func (j *Job) notifyLocked() {
	close(j.changed)
	j.changed = make(chan struct{})
}

// Options configures a Manager.
type Options struct {
	// Workers is the number of jobs evaluated concurrently
	// (default DefaultWorkers).
	Workers int
	// QueueSize bounds the admission queue: at most this many jobs wait
	// for a worker; further submissions fail with ErrQueueFull
	// (default DefaultQueueSize).
	QueueSize int
	// MaxWait is how long Submit blocks for a queue slot before giving
	// up with ErrQueueFull (default 0: fail immediately).
	MaxWait time.Duration
	// TTL is how long finished job records are retained for result
	// retrieval; expired records are pruned lazily on submission
	// (default DefaultTTL).
	TTL time.Duration
	// Now supplies the clock (default time.Now().UnixNano); tests inject
	// a deterministic one.
	Now func() int64
}

// Defaults for Options fields left zero.
const (
	DefaultWorkers   = 2
	DefaultQueueSize = 64
	DefaultTTL       = 15 * time.Minute
)

// Sentinel admission errors, mapped by the HTTP layer to queue_full 429
// and unavailable 503.
var (
	// ErrQueueFull rejects a submission when the admission queue stayed
	// full past MaxWait.
	ErrQueueFull = errors.New("jobs: admission queue full")
	// ErrDraining rejects submissions after Shutdown began.
	ErrDraining = errors.New("jobs: manager draining")
	// ErrNotFound reports an unknown (or expired) job id.
	ErrNotFound = errors.New("jobs: no such job")
)

// Manager owns the queue, the worker pool, and the job records. Create
// it with New; it is safe for concurrent use.
type Manager struct {
	opts  Options
	queue chan *Job

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // insertion order, for TTL pruning
	seq      uint64
	draining bool
	running  int

	workers sync.WaitGroup
	active  sync.WaitGroup // one count per job being evaluated
	submits sync.WaitGroup // one count per Submit between admission check and enqueue

	metrics managerMetrics
}

// New builds a manager and starts its worker pool.
func New(opts Options) *Manager {
	if opts.Workers <= 0 {
		opts.Workers = DefaultWorkers
	}
	if opts.QueueSize <= 0 {
		opts.QueueSize = DefaultQueueSize
	}
	if opts.TTL <= 0 {
		opts.TTL = DefaultTTL
	}
	if opts.Now == nil {
		// The injected-clock default: job timestamps are observability
		// metadata, not result bytes, and golden tests override Options.Now.
		//nanolint:allow detrand injected-clock default; timestamps are metadata off the result path and tests inject Options.Now
		opts.Now = func() int64 { return time.Now().UnixNano() }
	}
	m := &Manager{
		opts:  opts,
		queue: make(chan *Job, opts.QueueSize),
		jobs:  make(map[string]*Job),
	}
	m.metrics.init()
	for i := 0; i < opts.Workers; i++ {
		m.workers.Add(1)
		go m.worker()
	}
	return m
}

// Submit admits a job: the record is created in state queued and a
// worker will eventually evaluate task. total sizes the progress
// counters (the number of Step calls the task will make). Returns the
// queued snapshot, or ErrQueueFull/ErrDraining when admission fails.
func (m *Manager) Submit(kind string, total int, task Task) (Snapshot, error) {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return Snapshot{}, ErrDraining
	}
	m.pruneLocked()
	m.seq++
	j := &Job{
		m:           m,
		id:          fmt.Sprintf("j%06d", m.seq),
		kind:        kind,
		state:       Queued,
		submittedNs: m.opts.Now(),
		changed:     make(chan struct{}),
	}
	j.progress = &Progress{job: j, total: total}
	j.events = append(j.events, j.snapshotLocked())
	snap := j.snapshotLocked()
	// The submits count, taken under the mutex, is what lets Shutdown
	// close the queue without racing an in-flight enqueue.
	m.submits.Add(1)
	m.mu.Unlock()

	ok := m.enqueue(j, task)
	m.submits.Done()
	if !ok {
		return Snapshot{}, ErrQueueFull
	}

	m.mu.Lock()
	m.jobs[j.id] = j
	m.order = append(m.order, j.id)
	m.metrics.submitted++
	m.mu.Unlock()
	return snap, nil
}

// enqueue places the job on the bounded queue, waiting up to MaxWait
// for a slot. The two-phase shape (try, then wait with a timer) avoids
// allocating a timer on the fast path.
func (m *Manager) enqueue(j *Job, task Task) bool {
	j.task = task
	select {
	case m.queue <- j:
		return true
	default:
	}
	if m.opts.MaxWait <= 0 {
		return false
	}
	t := time.NewTimer(m.opts.MaxWait)
	defer t.Stop()
	select {
	case m.queue <- j:
		return true
	case <-t.C:
		return false
	}
}

// worker evaluates queued jobs until the queue closes at shutdown.
func (m *Manager) worker() {
	defer m.workers.Done()
	for j := range m.queue {
		m.runJob(j)
	}
}

// runJob drives one job through running to its terminal state.
func (m *Manager) runJob(j *Job) {
	m.mu.Lock()
	if j.state != Queued { // canceled (or parked by Shutdown) while queued
		m.mu.Unlock()
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	j.cancel = cancel
	j.state = Running
	j.startedNs = m.opts.Now()
	j.events = append(j.events, j.snapshotLocked())
	j.notifyLocked()
	m.running++
	m.active.Add(1)
	task := j.task
	p := j.progress
	m.metrics.queueSeconds.observe(float64(j.startedNs-j.submittedNs) / 1e9)
	m.mu.Unlock()

	body, err := task(ctx, p)
	cancel()

	m.mu.Lock()
	j.finishedNs = m.opts.Now()
	j.result = body
	j.err = err
	switch {
	case err == nil:
		j.state = Done
	case j.cancelRequested || errors.Is(err, context.Canceled):
		j.state = Canceled
	default:
		j.state = Failed
	}
	j.events = append(j.events, j.snapshotLocked())
	j.notifyLocked()
	m.running--
	m.metrics.finished[j.state]++
	m.metrics.runSeconds.observe(float64(j.finishedNs-j.startedNs) / 1e9)
	m.mu.Unlock()
	m.active.Done()
}

// Get returns the job's current snapshot.
func (m *Manager) Get(id string) (Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Snapshot{}, ErrNotFound
	}
	return j.snapshotLocked(), nil
}

// Events returns the job's transition log so far: one snapshot per
// state transition (queued, running, terminal).
func (m *Manager) Events(id string) ([]Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return nil, ErrNotFound
	}
	return append([]Snapshot(nil), j.events...), nil
}

// Result returns the job's rendered result body. The error is
// ErrNotFound for unknown ids; for known but unfinished jobs ok is
// false. A failed or canceled job returns its terminal snapshot with a
// nil body — the caller renders the stored error.
func (m *Manager) Result(id string) (Snapshot, []byte, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Snapshot{}, nil, ErrNotFound
	}
	return j.snapshotLocked(), j.result, nil
}

// Cancel requests cancellation: a queued job is parked canceled without
// running; a running job's context is canceled and the task winds down
// between benchmark runs. Terminal jobs are left untouched. Returns the
// post-cancel snapshot.
func (m *Manager) Cancel(id string, reason string) (Snapshot, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Snapshot{}, ErrNotFound
	}
	switch j.state {
	case Queued:
		j.cancelRequested = true
		j.state = Canceled
		j.err = fmt.Errorf("jobs: canceled while queued: %s", reason)
		j.finishedNs = m.opts.Now()
		j.events = append(j.events, j.snapshotLocked())
		j.notifyLocked()
		m.metrics.finished[Canceled]++
	case Running:
		j.cancelRequested = true
		j.cancel()
	}
	return j.snapshotLocked(), nil
}

// Watch returns the job's current snapshot plus a channel that is
// closed on the next state or progress change — the primitive the
// NDJSON event stream polls without busy-waiting.
func (m *Manager) Watch(id string) (Snapshot, <-chan struct{}, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	j, ok := m.jobs[id]
	if !ok {
		return Snapshot{}, nil, ErrNotFound
	}
	return j.snapshotLocked(), j.changed, nil
}

// Wait blocks until the job reaches a terminal state (or ctx is done)
// and returns its final snapshot.
func (m *Manager) Wait(ctx context.Context, id string) (Snapshot, error) {
	for {
		snap, changed, err := m.Watch(id)
		if err != nil {
			return Snapshot{}, err
		}
		if snap.State.Terminal() {
			return snap, nil
		}
		select {
		case <-changed:
		case <-ctx.Done():
			return snap, ctx.Err()
		}
	}
}

// Stats is a point-in-time view of the manager for /v1/stats.
type Stats struct {
	Queued   int `json:"queued"`
	Running  int `json:"running"`
	Stored   int `json:"stored"`
	Workers  int `json:"workers"`
	Capacity int `json:"queue_capacity"`
}

// Stats snapshots the queue and pool occupancy.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Stats{
		Queued:   len(m.queue),
		Running:  m.running,
		Stored:   len(m.jobs),
		Workers:  m.opts.Workers,
		Capacity: m.opts.QueueSize,
	}
}

// RetryAfter estimates, in whole seconds, how long a rejected client
// should wait before resubmitting: the queue drain time at the observed
// mean job duration, clamped to [1, 60]. With no history it answers 1.
func (m *Manager) RetryAfter() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	mean := 1.0
	if n := m.metrics.runSeconds.count; n > 0 {
		mean = m.metrics.runSeconds.sum / float64(n)
	}
	est := mean * float64(len(m.queue)+m.running) / float64(m.opts.Workers)
	switch {
	case est < 1:
		return 1
	case est > 60:
		return 60
	}
	return int(est)
}

// Shutdown drains the manager: admission closes (further Submits fail
// with ErrDraining), jobs still queued are parked canceled without
// running, and running jobs are waited for until ctx expires — then
// their contexts are canceled and the tail of each in-flight benchmark
// run is the only remaining wait.
func (m *Manager) Shutdown(ctx context.Context) error {
	m.mu.Lock()
	if m.draining {
		m.mu.Unlock()
		return errors.New("jobs: already shut down")
	}
	m.draining = true
	m.mu.Unlock()
	// Wait out submissions that passed the admission check before
	// draining began — closing the queue under a concurrent enqueue
	// would panic. They block at most MaxWait.
	m.submits.Wait()

	// Park everything still queued. Workers race this loop for the
	// queued jobs — whichever side wins, the job ends up either run to
	// completion or parked canceled, never lost.
	close(m.queue)
	for j := range m.queue {
		m.mu.Lock()
		if j.state == Queued {
			j.cancelRequested = true
			j.state = Canceled
			j.err = errors.New("jobs: server shutting down")
			j.finishedNs = m.opts.Now()
			j.events = append(j.events, j.snapshotLocked())
			j.notifyLocked()
			m.metrics.finished[Canceled]++
		}
		m.mu.Unlock()
	}

	done := make(chan struct{})
	go func() {
		m.active.Wait()
		m.workers.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
	}

	// Out of patience: cancel what is still running and wait out the
	// current benchmark run of each.
	m.mu.Lock()
	for _, id := range m.order {
		if j := m.jobs[id]; j.state == Running && j.cancel != nil {
			j.cancelRequested = true
			j.cancel()
		}
	}
	m.mu.Unlock()
	<-done
	return ctx.Err()
}

// pruneLocked drops finished records older than TTL; callers hold m.mu.
func (m *Manager) pruneLocked() {
	cutoff := m.opts.Now() - m.opts.TTL.Nanoseconds()
	keep := m.order[:0]
	for _, id := range m.order {
		j := m.jobs[id]
		if j.state.Terminal() && j.finishedNs <= cutoff {
			delete(m.jobs, id)
			continue
		}
		keep = append(keep, id)
	}
	m.order = keep
}
