package jobs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Prometheus metrics, hand-rolled: the exposition text format is a few
// lines of code, which beats pulling a client library into the module
// for two histograms and a handful of counters.

// latencyBuckets are the per-phase histogram bounds in seconds, spanning
// the sub-millisecond queue waits of an idle server to the minutes a
// deep sweep occupies a worker.
var latencyBuckets = []float64{0.001, 0.01, 0.1, 1, 10, 60, 600}

// histogram is a fixed-bucket latency histogram. It is guarded by the
// manager's mutex — every observation already happens under it.
type histogram struct {
	buckets []uint64 // cumulative counts per latencyBuckets bound
	count   uint64
	sum     float64
}

func (h *histogram) observe(seconds float64) {
	for i, le := range latencyBuckets {
		if seconds <= le {
			h.buckets[i]++
		}
	}
	h.count++
	h.sum += seconds
}

// managerMetrics aggregates the manager's lifetime counters.
type managerMetrics struct {
	submitted    uint64
	finished     map[State]uint64
	queueSeconds histogram
	runSeconds   histogram
}

func (mm *managerMetrics) init() {
	mm.finished = map[State]uint64{}
	mm.queueSeconds.buckets = make([]uint64, len(latencyBuckets))
	mm.runSeconds.buckets = make([]uint64, len(latencyBuckets))
}

// A MetricsWriter accumulates metrics in the Prometheus text exposition
// format (version 0.0.4). Emit families with Counter/Gauge/Histogram,
// then WriteTo an http.ResponseWriter.
type MetricsWriter struct {
	b strings.Builder
}

// header emits the # HELP / # TYPE preamble of one family.
func (w *MetricsWriter) header(name, help, typ string) {
	fmt.Fprintf(&w.b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// sample emits one sample line with optional label pairs.
func sampleLine(b *strings.Builder, name string, labels [][2]string, value string) {
	b.WriteString(name)
	if len(labels) > 0 {
		b.WriteByte('{')
		for i, kv := range labels {
			if i > 0 {
				b.WriteByte(',')
			}
			fmt.Fprintf(b, "%s=%q", kv[0], kv[1])
		}
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}

// Counter emits a counter family with one unlabeled sample.
func (w *MetricsWriter) Counter(name, help string, value uint64) {
	w.header(name, help, "counter")
	sampleLine(&w.b, name, nil, strconv.FormatUint(value, 10))
}

// CounterVec emits a counter family with one sample per label value,
// in sorted label order for a stable exposition.
func (w *MetricsWriter) CounterVec(name, help, label string, values map[string]uint64) {
	w.header(name, help, "counter")
	keys := make([]string, 0, len(values))
	for k := range values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		sampleLine(&w.b, name, [][2]string{{label, k}}, strconv.FormatUint(values[k], 10))
	}
}

// Gauge emits a gauge family with one unlabeled sample.
func (w *MetricsWriter) Gauge(name, help string, value float64) {
	w.header(name, help, "gauge")
	sampleLine(&w.b, name, nil, formatFloat(value))
}

// Histogram emits one histogram family from a fixed-bucket histogram.
func (w *MetricsWriter) Histogram(name, help string, h *histogram) {
	w.header(name, help, "histogram")
	for i, le := range latencyBuckets {
		sampleLine(&w.b, name+"_bucket", [][2]string{{"le", formatFloat(le)}}, strconv.FormatUint(h.buckets[i], 10))
	}
	sampleLine(&w.b, name+"_bucket", [][2]string{{"le", "+Inf"}}, strconv.FormatUint(h.count, 10))
	sampleLine(&w.b, name+"_sum", nil, formatFloat(h.sum))
	sampleLine(&w.b, name+"_count", nil, strconv.FormatUint(h.count, 10))
}

// formatFloat renders a float the Prometheus way: shortest
// round-trippable decimal.
func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteTo writes the accumulated exposition.
func (w *MetricsWriter) WriteTo(out io.Writer) (int64, error) {
	n, err := io.WriteString(out, w.b.String())
	return int64(n), err
}

// WriteMetrics emits the manager's metric families (jobs lifecycle,
// queue occupancy, per-phase latency histograms) into the writer. The
// caller appends its own families (cache, HTTP counters) around it.
func (m *Manager) WriteMetrics(w *MetricsWriter) {
	m.mu.Lock()
	defer m.mu.Unlock()
	w.Counter("nanobenchd_jobs_submitted_total", "Jobs admitted to the queue.", m.metrics.submitted)
	byState := make(map[string]uint64, len(m.metrics.finished))
	for s, n := range m.metrics.finished {
		byState[string(s)] = n
	}
	w.CounterVec("nanobenchd_jobs_finished_total", "Jobs finished, by terminal state.", "state", byState)
	w.Gauge("nanobenchd_jobs_queue_depth", "Jobs waiting for a worker.", float64(len(m.queue)))
	w.Gauge("nanobenchd_jobs_running", "Jobs currently being evaluated.", float64(m.running))
	w.Gauge("nanobenchd_jobs_workers", "Size of the job worker pool.", float64(m.opts.Workers))
	w.Histogram("nanobenchd_job_queue_seconds", "Time jobs spent queued before a worker picked them up.", &m.metrics.queueSeconds)
	w.Histogram("nanobenchd_job_run_seconds", "Time jobs spent being evaluated.", &m.metrics.runSeconds)
}
