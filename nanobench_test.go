package nanobench

import (
	"math"
	"strings"
	"testing"
)

func TestFacadeQuickstart(t *testing.T) {
	m, err := NewMachine("Skylake", 42)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(m, Kernel)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(Config{
		Code:        MustAsm("mov R14, [R14]"),
		CodeInit:    MustAsm("mov [R14], R14"),
		WarmUpCount: 1,
		Events:      MustParseEvents("D1.01 MEM_LOAD_RETIRED.L1_HIT"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := res.MustGet("Core cycles"); math.Abs(v-4.0) > 0.1 {
		t.Fatalf("L1 latency = %.2f, want 4", v)
	}
	if v := res.MustGet("MEM_LOAD_RETIRED.L1_HIT"); math.Abs(v-1.0) > 0.05 {
		t.Fatalf("L1 hits = %.2f, want 1", v)
	}
}

func TestFacadeCatalog(t *testing.T) {
	if len(Table1()) != 10 {
		t.Fatalf("Table1: %d CPUs", len(Table1()))
	}
	if !strings.Contains(CPUNames(), "Skylake") {
		t.Fatalf("CPUNames: %s", CPUNames())
	}
	if _, err := NewMachine("unknown", 1); err == nil {
		t.Fatal("expected error for unknown CPU")
	}
	if len(PauseCounting) == 0 || len(ResumeCounting) == 0 {
		t.Fatal("magic byte sequences missing")
	}
}

func TestFacadeUserMode(t *testing.T) {
	m, err := NewMachine("Zen", 1)
	if err != nil {
		t.Fatal(err)
	}
	r, err := NewRunner(m, User)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(Config{
		Code:        MustAsm("add rax, rbx"),
		UnrollCount: 100,
		WarmUpCount: 2,
		Aggregate:   Min,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := res.MustGet("Core cycles"); math.Abs(v-1.0) > 0.3 {
		t.Fatalf("dependent ADD = %.2f cycles, want ~1", v)
	}
}

func TestFacadeRunBatch(t *testing.T) {
	cfgs := []Config{
		{Code: MustAsm("add rbx, rbx"), UnrollCount: 20},
		{Code: MustAsm("imul rbx, rbx"), UnrollCount: 20},
		{Code: MustAsm("mov R14, [R14]"), CodeInit: MustAsm("mov [R14], R14"), WarmUpCount: 1},
	}
	res, err := RunBatch("Skylake", Kernel, cfgs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(cfgs) {
		t.Fatalf("%d results for %d configs", len(res), len(cfgs))
	}
	wants := []float64{1, 3, 4} // ADD, IMUL, L1-load chain latencies
	for i, want := range wants {
		if v := res[i].MustGet("Core cycles"); math.Abs(v-want) > 0.1 {
			t.Errorf("config %d: %.2f cycles, want %.0f", i, v, want)
		}
	}

	// The streaming variant delivers the same results in config order
	// (via the shared default cache on this second pass).
	next := 0
	for it := range RunBatchStream("Skylake", Kernel, cfgs) {
		if it.Err != nil {
			t.Fatal(it.Err)
		}
		if it.Index != next {
			t.Fatalf("stream index %d, want %d", it.Index, next)
		}
		if !it.Result.Equal(res[it.Index]) {
			t.Errorf("stream result %d differs from RunBatch", it.Index)
		}
		next++
	}
	if next != len(cfgs) {
		t.Fatalf("stream delivered %d of %d items", next, len(cfgs))
	}
}

func TestFacadeRunBatchError(t *testing.T) {
	_, err := RunBatch("NoSuchCPU", Kernel, []Config{{Code: MustAsm("nop")}})
	if err == nil {
		t.Fatal("expected an error for an unknown CPU")
	}
}

func TestFacadeAsmErrors(t *testing.T) {
	if _, err := Asm("bogus instruction"); err == nil {
		t.Fatal("expected assembly error")
	}
	if _, err := ParseEvents("not an event"); err == nil {
		t.Fatal("expected event parse error")
	}
}
