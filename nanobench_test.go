package nanobench

import (
	"math"
	"strings"
	"testing"
)

// TestFacadeQuickstart runs the paper's Section III-A measurement through
// a session-built runner: Session.NewRunner seeds the machine with the
// session's root seed, exactly like the removed NewMachine("Skylake", 42)
// + NewRunner(m, Kernel) pair did.
func TestFacadeQuickstart(t *testing.T) {
	s, err := Open(WithCPU("Skylake"), WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.NewRunner()
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(Config{
		Code:        MustAsm("mov R14, [R14]"),
		CodeInit:    MustAsm("mov [R14], R14"),
		WarmUpCount: 1,
		Events:      MustParseEvents("D1.01 MEM_LOAD_RETIRED.L1_HIT"),
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := res.MustGet("Core cycles"); math.Abs(v-4.0) > 0.1 {
		t.Fatalf("L1 latency = %.2f, want 4", v)
	}
	if v := res.MustGet("MEM_LOAD_RETIRED.L1_HIT"); math.Abs(v-1.0) > 0.05 {
		t.Fatalf("L1 hits = %.2f, want 1", v)
	}
}

func TestFacadeCatalog(t *testing.T) {
	if len(Table1()) != 10 {
		t.Fatalf("Table1: %d CPUs", len(Table1()))
	}
	if !strings.Contains(CPUNames(), "Skylake") {
		t.Fatalf("CPUNames: %s", CPUNames())
	}
	if _, err := Open(WithCPU("unknown")); err == nil {
		t.Fatal("expected error for unknown CPU")
	}
	if len(PauseCounting) == 0 || len(ResumeCounting) == 0 {
		t.Fatal("magic byte sequences missing")
	}
}

func TestFacadeUserMode(t *testing.T) {
	s, err := Open(WithCPU("Zen"), WithMode(User), WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.NewRunner()
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Run(Config{
		Code:        MustAsm("add rax, rbx"),
		UnrollCount: 100,
		WarmUpCount: 2,
		Aggregate:   Min,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := res.MustGet("Core cycles"); math.Abs(v-1.0) > 0.3 {
		t.Fatalf("dependent ADD = %.2f cycles, want ~1", v)
	}
}

// TestFacadeBatchExecutor covers the heterogeneous batch surface that
// remains public after the v1 free functions were removed: explicit
// BatchJobs through NewBatchExecutor, including the streaming variant
// and error reporting for unknown CPU models.
func TestFacadeBatchExecutor(t *testing.T) {
	cfgs := []Config{
		{Code: MustAsm("add rbx, rbx"), UnrollCount: 20},
		{Code: MustAsm("imul rbx, rbx"), UnrollCount: 20},
		{Code: MustAsm("mov R14, [R14]"), CodeInit: MustAsm("mov [R14], R14"), WarmUpCount: 1},
	}
	jobs := make([]BatchJob, len(cfgs))
	for i, cfg := range cfgs {
		jobs[i] = BatchJob{CPU: "Skylake", Mode: Kernel, Cfg: cfg}
	}
	ex := NewBatchExecutor(BatchOptions{RootSeed: DefaultBatchSeed, Cache: NewBatchCache()})
	res, err := ex.Run(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(cfgs) {
		t.Fatalf("%d results for %d configs", len(res), len(cfgs))
	}
	wants := []float64{1, 3, 4} // ADD, IMUL, L1-load chain latencies
	for i, want := range wants {
		if v := res[i].MustGet("Core cycles"); math.Abs(v-want) > 0.1 {
			t.Errorf("config %d: %.2f cycles, want %.0f", i, v, want)
		}
	}

	// The streaming variant delivers the same results in config order.
	next := 0
	for it := range ex.Stream(jobs) {
		if it.Err != nil {
			t.Fatal(it.Err)
		}
		if it.Index != next {
			t.Fatalf("stream index %d, want %d", it.Index, next)
		}
		if !it.Result.Equal(res[it.Index]) {
			t.Errorf("stream result %d differs from Run", it.Index)
		}
		next++
	}
	if next != len(cfgs) {
		t.Fatalf("stream delivered %d of %d items", next, len(cfgs))
	}

	// Unknown CPU models surface as per-job errors.
	bad := []BatchJob{{CPU: "NoSuchCPU", Mode: Kernel, Cfg: Config{Code: MustAsm("nop")}}}
	if _, err := ex.Run(bad); err == nil {
		t.Fatal("expected an error for an unknown CPU")
	}
}

func TestFacadeAsmErrors(t *testing.T) {
	if _, err := Asm("bogus instruction"); err == nil {
		t.Fatal("expected assembly error")
	}
	if _, err := ParseEvents("not an event"); err == nil {
		t.Fatal("expected event parse error")
	}
}
