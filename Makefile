# Development and CI entry points. CI (.github/workflows/ci.yml) invokes
# exactly these targets so local runs and the pipeline cannot drift.

GO ?= go

.PHONY: build build-bins test test-short test-race vet fmt fmt-check ci bench bench-compare serve smoke

build:
	$(GO) build ./...

# Link every cmd/* and examples/* binary (output discarded): facade
# refactors can never silently break the CLIs or examples.
build-bins:
	@for d in ./cmd/* ./examples/*; do \
		echo "build $$d"; \
		$(GO) build -o /dev/null $$d || exit 1; \
	done

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# One pass over every benchmark (no test functions) plus a stable
# multi-iteration measurement of the step-throughput headline, folded
# into the BENCH_5.json artifact CI uploads and gates on. On repeated
# measurements of one benchmark the fastest run wins, so the artifact is
# comparable across noisy machines.
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./... > bench.txt; st=$$?; cat bench.txt; [ $$st -eq 0 ]
	$(GO) test -bench BenchmarkStepThroughput -benchtime 2s -count 3 -run '^$$' ./internal/sim/machine > bench-step.txt; st=$$?; cat bench-step.txt; [ $$st -eq 0 ]
	$(GO) run ./scripts/benchjson -in bench.txt -in bench-step.txt -out BENCH_5.json

# Gate: fail on a >10% regression in step throughput (ns/instr) against
# the committed baseline (bench/BENCH_BASELINE.json, captured from the
# pre-fused-µop engine — see bench/README.md).
bench-compare: BENCH_5.json
	$(GO) run ./scripts/benchjson -baseline bench/BENCH_BASELINE.json -against BENCH_5.json

BENCH_5.json:
	$(MAKE) bench

# Run the HTTP benchmarking service locally (wire contract: docs/API.md).
serve:
	$(GO) run ./cmd/nanobenchd

# End-to-end service smoke: build nanobenchd, start it, diff live
# /v1/healthz and /v1/run responses against the documented examples,
# drive a sweep through the async jobs API, and scrape /metrics.
smoke:
	bash scripts/serve-smoke.sh

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

ci: fmt-check vet build build-bins test-short test
