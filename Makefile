# Development and CI entry points. CI (.github/workflows/ci.yml) invokes
# exactly these targets so local runs and the pipeline cannot drift.

GO ?= go

.PHONY: build build-bins test test-short test-race vet lint fuzz-smoke fmt fmt-check ci bench bench-compare profile serve smoke

build:
	$(GO) build ./...

# Link every cmd/* and examples/* binary (output discarded): facade
# refactors can never silently break the CLIs or examples.
build-bins:
	@for d in ./cmd/* ./examples/*; do \
		echo "build $$d"; \
		$(GO) build -o /dev/null $$d || exit 1; \
	done

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# Invariant linting (docs/LINTS.md): the in-tree nanolint suite always
# runs; staticcheck and govulncheck join in when installed (they are not
# vendored, so offline environments skip them rather than fail).
lint:
	$(GO) run ./cmd/nanolint ./...
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "lint: staticcheck not installed, skipped"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "lint: govulncheck not installed, skipped"; \
	fi

# Short-budget fuzz pass over every hostile-input parser (docs/LINTS.md).
# Each target also runs its seed corpus as a plain test in `make test`.
FUZZTIME ?= 5s
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzConfigUnmarshalJSON$$' -fuzztime $(FUZZTIME) ./internal/nano
	$(GO) test -run '^$$' -fuzz '^FuzzParseQLRU$$' -fuzztime $(FUZZTIME) ./internal/sim/policy
	$(GO) test -run '^$$' -fuzz '^FuzzParseMode$$' -fuzztime $(FUZZTIME) ./internal/sim/machine
	$(GO) test -run '^$$' -fuzz '^FuzzTraceMatchesStep$$' -fuzztime $(FUZZTIME) ./internal/sim/machine
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME) ./internal/perfcfg

# One pass over every benchmark (no test functions) plus stable
# multi-iteration measurements of the gated headlines (step throughput,
# the per-engine trace-mode series, the batch policy kernels, and the
# cache-policy benchmarks), folded into the BENCH_10.json artifact CI
# uploads and gates on. On repeated measurements of one benchmark the
# fastest run wins, so the artifact is comparable across noisy machines.
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./... > bench.txt; st=$$?; cat bench.txt; [ $$st -eq 0 ]
	$(GO) test -bench 'BenchmarkStepThroughput|BenchmarkEngineThroughput' -benchtime 2s -count 3 -run '^$$' ./internal/sim/machine > bench-step.txt; st=$$?; cat bench-step.txt; [ $$st -eq 0 ]
	$(GO) test -bench 'BenchmarkPolicyEngineBatch' -benchtime 1s -count 3 -run '^$$' ./internal/sim/policy > bench-batch.txt; st=$$?; cat bench-batch.txt; [ $$st -eq 0 ]
	$(GO) test -bench 'BenchmarkTableIPolicies|BenchmarkFigure1AgeGraph|BenchmarkSetDueling|BenchmarkPolicyCampaign' -benchtime 1x -count 3 -run '^$$' . > bench-cache.txt; st=$$?; cat bench-cache.txt; [ $$st -eq 0 ]
	$(GO) run ./scripts/benchjson -in bench.txt -in bench-step.txt -in bench-batch.txt -in bench-cache.txt -out BENCH_10.json

# Gate: fail on a >10% regression against the committed baseline
# (bench/BENCH_BASELINE.json — see bench/README.md) in step throughput
# (ns/instr, including the per-engine trace-mode series), the batch
# policy kernels, and the wall time (ns/op) of the cache-policy
# simulation benchmarks. The step baseline is the PR 9 trace-engine
# capture, so the gate catches any slide back toward per-µop dispatch;
# the cache and batch baselines are the PR 10 capture (batch probing +
# seq-replay fast path), guarding the campaign-scale speedups.
bench-compare: BENCH_10.json
	$(GO) run ./scripts/benchjson -baseline bench/BENCH_BASELINE.json -against BENCH_10.json \
		-bench BenchmarkStepThroughput \
		-bench BenchmarkEngineThroughput \
		-bench BenchmarkPolicyEngineBatch \
		-bench BenchmarkTableIPolicies \
		-bench BenchmarkFigure1AgeGraph \
		-bench BenchmarkSetDueling \
		-bench BenchmarkPolicyCampaign

BENCH_10.json:
	$(MAKE) bench

# CPU and allocation profiles of the two hot paths — the cache-policy
# sweeps and the µop step loop — written to bench/profiles/ next to the
# test binaries pprof needs for symbols. Reading them: docs/PROFILING.md.
profile:
	mkdir -p bench/profiles
	$(GO) test -bench 'BenchmarkTableIPolicies|BenchmarkFigure1AgeGraph|BenchmarkSetDueling' \
		-benchtime 1x -run '^$$' -o bench/profiles/cache.test \
		-cpuprofile bench/profiles/cache.cpu.pprof \
		-memprofile bench/profiles/cache.alloc.pprof .
	$(GO) test -bench BenchmarkStepThroughput -benchtime 2s -run '^$$' \
		-o bench/profiles/step.test \
		-cpuprofile bench/profiles/step.cpu.pprof \
		-memprofile bench/profiles/step.alloc.pprof ./internal/sim/machine

# Run the HTTP benchmarking service locally (wire contract: docs/API.md).
serve:
	$(GO) run ./cmd/nanobenchd

# End-to-end service smoke: build nanobenchd, start it, diff live
# /v1/healthz and /v1/run responses against the documented examples,
# drive a sweep through the async jobs API, and scrape /metrics.
smoke:
	bash scripts/serve-smoke.sh

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

ci: fmt-check vet lint build build-bins test-short test
