# Development and CI entry points. CI (.github/workflows/ci.yml) invokes
# exactly these targets so local runs and the pipeline cannot drift.

GO ?= go

.PHONY: build build-bins test test-short test-race vet fmt fmt-check ci bench serve smoke

build:
	$(GO) build ./...

# Link every cmd/* and examples/* binary (output discarded): facade
# refactors can never silently break the CLIs or examples.
build-bins:
	@for d in ./cmd/* ./examples/*; do \
		echo "build $$d"; \
		$(GO) build -o /dev/null $$d || exit 1; \
	done

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

test-race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

# One pass over every benchmark (no test functions): the perf baseline CI
# uploads as an artifact. Use -benchtime with more iterations for stable
# local comparisons.
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' ./...

# Run the HTTP benchmarking service locally (wire contract: docs/API.md).
serve:
	$(GO) run ./cmd/nanobenchd

# End-to-end service smoke: build nanobenchd, start it, and diff live
# /v1/healthz and /v1/run responses against the documented examples.
smoke:
	bash scripts/serve-smoke.sh

fmt:
	gofmt -w .

fmt-check:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

ci: fmt-check vet build build-bins test-short test
